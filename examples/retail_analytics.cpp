// Retail analytics: the paper's running example (§2) at a realistic size —
// a Sales cube over Product (type -> category), Store (city -> region) and
// Time (month -> quarter) — exercised with the full query repertoire:
// consolidations at several hierarchy levels, drill-down via selection, and
// a comparison of all four engines on the same queries.
#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "query/engine.h"
#include "schema/database.h"

using namespace paradise;  // NOLINT(build/namespaces)

namespace {

struct Hierarchy {
  std::vector<std::string> fine;    // per member: level-1 value
  std::vector<std::string> coarse;  // per member: level-2 value
};

/// Products: 60 members, 12 types, 4 categories.
Hierarchy MakeProducts() {
  const char* categories[] = {"food", "drink", "home", "outdoors"};
  Hierarchy h;
  for (int p = 0; p < 60; ++p) {
    const int type = p % 12;
    h.fine.push_back("type" + std::to_string(type));
    h.coarse.push_back(categories[type % 4]);
  }
  return h;
}

/// Stores: 30 members, 10 cities, 3 regions.
Hierarchy MakeStores() {
  const char* regions[] = {"west", "midwest", "east"};
  Hierarchy h;
  for (int s = 0; s < 30; ++s) {
    const int city = s % 10;
    h.fine.push_back("city" + std::to_string(city));
    h.coarse.push_back(regions[city % 3]);
  }
  return h;
}

/// Time: 24 months over 8 quarters.
Hierarchy MakeMonths() {
  Hierarchy h;
  for (int t = 0; t < 24; ++t) {
    h.fine.push_back("m" + std::to_string(t));
    h.coarse.push_back("q" + std::to_string(t / 3));
  }
  return h;
}

Status LoadDimension(Database* db, size_t d, const Schema& schema,
                     const Hierarchy& h) {
  for (size_t key = 0; key < h.fine.size(); ++key) {
    Tuple row(&schema);
    row.SetInt32(0, static_cast<int32_t>(key));
    PARADISE_RETURN_IF_ERROR(row.SetString(1, h.fine[key]));
    PARADISE_RETURN_IF_ERROR(row.SetString(2, h.coarse[key]));
    PARADISE_RETURN_IF_ERROR(db->AppendDimensionRow(d, row));
  }
  return Status::OK();
}

void PrintResult(Database* db, const query::ConsolidationQuery& q,
                 const query::GroupedResult& result, size_t max_rows) {
  for (const std::string& c : result.group_columns()) {
    std::printf("%-18s", c.c_str());
  }
  std::printf("%s\n", "sum(volume)");
  size_t shown = 0;
  for (const query::ResultRow& row : result.rows()) {
    if (shown++ >= max_rows) {
      std::printf("  ... (%zu more groups)\n", result.rows().size() - max_rows);
      break;
    }
    size_t g = 0;
    for (size_t d = 0; d < q.dims.size(); ++d) {
      if (!q.dims[d].group_by_col.has_value()) continue;
      auto dict = db->dim(d).Dictionary(*q.dims[d].group_by_col);
      PARADISE_CHECK_OK(dict.status());
      std::printf("%-18s", (*dict)->code_to_display[row.group[g]].c_str());
      ++g;
    }
    std::printf("%lld\n", static_cast<long long>(row.agg.sum));
  }
}

void RunAndReport(Database* db, const char* title,
                  const query::ConsolidationQuery& q, size_t max_rows = 8) {
  std::printf("\n=== %s ===\n", title);
  auto array = RunQuery(db, EngineKind::kArray, q);
  PARADISE_CHECK_OK(array.status());
  PrintResult(db, q, array->result, max_rows);
  // Cross-check with every applicable relational engine.
  std::printf("[array %.2f ms", array->stats.seconds * 1e3);
  for (EngineKind kind : {EngineKind::kStarJoin, EngineKind::kLeftDeep,
                          EngineKind::kBitmap}) {
    if (kind == EngineKind::kBitmap && !q.HasSelection()) continue;
    auto exec = RunQuery(db, kind, q);
    PARADISE_CHECK_OK(exec.status());
    std::printf(" | %s %.2f ms%s",
                std::string(EngineKindToString(kind)).c_str(),
                exec->stats.seconds * 1e3,
                exec->result.SameAs(array->result) ? "" : " (MISMATCH!)");
  }
  std::printf("]\n");
}

}  // namespace

int main() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "paradise_retail.db").string();
  std::remove(path.c_str());

  StarSchema schema;
  schema.cube_name = "sales";
  schema.measures = {"volume", "revenue"};
  schema.dims = {
      DimensionSpec{"product",
                    {{"pid", ColumnType::kInt32},
                     {"type", ColumnType::kString16},
                     {"category", ColumnType::kString16}}},
      DimensionSpec{"store",
                    {{"sid", ColumnType::kInt32},
                     {"city", ColumnType::kString16},
                     {"region", ColumnType::kString16}}},
      DimensionSpec{"time",
                    {{"tid", ColumnType::kInt32},
                     {"month", ColumnType::kString16},
                     {"quarter", ColumnType::kString16}}},
  };

  auto db = Database::Create(path, schema, DatabaseOptions{});
  PARADISE_CHECK_OK(db.status());
  PARADISE_CHECK_OK(
      LoadDimension(db->get(), 0, schema.dims[0].ToSchema(), MakeProducts()));
  PARADISE_CHECK_OK(
      LoadDimension(db->get(), 1, schema.dims[1].ToSchema(), MakeStores()));
  PARADISE_CHECK_OK(
      LoadDimension(db->get(), 2, schema.dims[2].ToSchema(), MakeMonths()));

  // Facts: ~15 % of the 60x30x24 cube sells, uniformly. Two measures per
  // cell (§2's M = {m_1..m_p}): units sold and revenue.
  PARADISE_CHECK_OK((*db)->BeginFacts());
  Random rng(2026);
  uint64_t facts = 0;
  for (int32_t p = 0; p < 60; ++p) {
    for (int32_t s = 0; s < 30; ++s) {
      for (int32_t t = 0; t < 24; ++t) {
        if (!rng.Bernoulli(0.15)) continue;
        const int64_t volume = rng.UniformRange(1, 500);
        const int64_t unit_price = rng.UniformRange(2, 40);
        PARADISE_CHECK_OK(
            (*db)->AppendFact({p, s, t}, {volume, volume * unit_price}));
        ++facts;
      }
    }
  }
  PARADISE_CHECK_OK((*db)->FinishLoad());
  std::printf("loaded %llu facts into a 60x30x24 cube (%.1f%% dense)\n",
              static_cast<unsigned long long>(facts),
              100.0 * static_cast<double>(facts) / (60 * 30 * 24));

  // Q1: revenue by category and region.
  query::ConsolidationQuery by_cat_region;
  by_cat_region.dims.resize(3);
  by_cat_region.dims[0].group_by_col = 2;  // category
  by_cat_region.dims[1].group_by_col = 2;  // region
  RunAndReport(db->get(), "volume by category x region (time collapsed)",
               by_cat_region, 12);

  // Q2: quarterly trend for one category.
  query::ConsolidationQuery trend;
  trend.dims.resize(3);
  trend.dims[0].selections.push_back(
      query::Selection{2, {query::Literal{std::string("drink")}}});
  trend.dims[2].group_by_col = 2;  // quarter
  RunAndReport(db->get(), "drink volume by quarter", trend, 10);

  // Q3: drill down — type breakdown within one region and one quarter.
  query::ConsolidationQuery drill;
  drill.dims.resize(3);
  drill.dims[0].group_by_col = 1;  // type
  drill.dims[1].selections.push_back(
      query::Selection{2, {query::Literal{std::string("west")}}});
  drill.dims[2].selections.push_back(
      query::Selection{2, {query::Literal{std::string("q3")}}});
  RunAndReport(db->get(), "type breakdown in the west during q3", drill, 12);

  // Q4: the second measure — revenue instead of unit volume.
  query::ConsolidationQuery revenue;
  revenue.dims.resize(3);
  revenue.dims[0].group_by_col = 2;  // category
  revenue.measure = 1;               // "revenue"
  RunAndReport(db->get(), "REVENUE by category (measure #2)", revenue, 6);

  // Q5: multi-value selection (IN-list) over two regions.
  query::ConsolidationQuery inlist;
  inlist.dims.resize(3);
  inlist.dims[1].group_by_col = 1;  // city
  inlist.dims[1].selections.push_back(query::Selection{
      2,
      {query::Literal{std::string("west")}, query::Literal{std::string("east")}}});
  inlist.dims[2].group_by_col = 2;  // quarter
  RunAndReport(db->get(), "city x quarter volume for west+east regions",
               inlist, 6);

  std::remove(path.c_str());
  return 0;
}
