// Quickstart: build a tiny sales cube under both physical designs, run one
// consolidation with the OLAP Array ADT and with the relational star join,
// and check they agree.
//
//   $ ./quickstart
//
// The public API in five steps:
//   1. Describe the star schema (schema/star_schema.h).
//   2. Create a Database and load dimensions, then facts (schema/database.h).
//   3. Describe a query (query/query.h).
//   4. Run it with any engine (query/engine.h).
//   5. Read the GroupedResult (query/result.h).
#include <cstdio>
#include <filesystem>

#include "query/engine.h"
#include "schema/database.h"

using namespace paradise;  // NOLINT(build/namespaces)

int main() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "paradise_quickstart.db")
          .string();
  std::remove(path.c_str());

  // 1. A 2-dimensional cube: product x store, measuring sales volume.
  StarSchema schema;
  schema.cube_name = "sales";
  schema.dims = {
      DimensionSpec{"product",
                    {{"pid", ColumnType::kInt32},
                     {"category", ColumnType::kString16}}},
      DimensionSpec{"store",
                    {{"sid", ColumnType::kInt32},
                     {"region", ColumnType::kString16}}},
  };

  // 2. Load: dimensions first, then facts.
  DatabaseOptions options;
  auto db = Database::Create(path, schema, options);
  PARADISE_CHECK_OK(db.status());

  const Schema product = schema.dims[0].ToSchema();
  const Schema store = schema.dims[1].ToSchema();
  const char* categories[] = {"snacks", "snacks", "drinks", "drinks"};
  for (int32_t pid = 0; pid < 4; ++pid) {
    Tuple row(&product);
    row.SetInt32(0, pid);
    PARADISE_CHECK_OK(row.SetString(1, categories[pid]));
    PARADISE_CHECK_OK((*db)->AppendDimensionRow(0, row));
  }
  const char* regions[] = {"west", "east", "west"};
  for (int32_t sid = 0; sid < 3; ++sid) {
    Tuple row(&store);
    row.SetInt32(0, sid);
    PARADISE_CHECK_OK(row.SetString(1, regions[sid]));
    PARADISE_CHECK_OK((*db)->AppendDimensionRow(1, row));
  }

  PARADISE_CHECK_OK((*db)->BeginFacts());
  // (pid, sid) -> volume; a sparse cube, not every combination sells.
  const int32_t facts[][3] = {{0, 0, 10}, {0, 1, 5},  {1, 0, 7},
                              {2, 2, 20}, {3, 1, 2},  {3, 2, 8}};
  for (const auto& f : facts) {
    PARADISE_CHECK_OK((*db)->AppendFact({f[0], f[1]}, f[2]));
  }
  PARADISE_CHECK_OK((*db)->FinishLoad());

  // 3. SELECT category, region, SUM(volume) GROUP BY category, region.
  query::ConsolidationQuery q;
  q.dims.resize(2);
  q.dims[0].group_by_col = 1;  // product.category
  q.dims[1].group_by_col = 1;  // store.region

  // 4. Run with the OLAP Array ADT and with the relational star join.
  auto array_exec = RunQuery(db->get(), EngineKind::kArray, q);
  PARADISE_CHECK_OK(array_exec.status());
  auto star_exec = RunQuery(db->get(), EngineKind::kStarJoin, q);
  PARADISE_CHECK_OK(star_exec.status());

  // 5. Print, resolving dense group codes to display strings.
  std::printf("category      region        sum(volume)\n");
  for (const query::ResultRow& row : array_exec->result.rows()) {
    auto cat = (*db)->dim(0).Dictionary(1);
    auto reg = (*db)->dim(1).Dictionary(1);
    PARADISE_CHECK_OK(cat.status());
    PARADISE_CHECK_OK(reg.status());
    std::printf("%-13s %-13s %lld\n",
                (*cat)->code_to_display[row.group[0]].c_str(),
                (*reg)->code_to_display[row.group[1]].c_str(),
                static_cast<long long>(row.agg.sum));
  }
  std::printf("\nengines agree: %s\n",
              array_exec->result.SameAs(star_exec->result) ? "yes" : "NO");
  std::printf("array: %.1f ms, %llu page reads | star join: %.1f ms, %llu "
              "page reads\n",
              array_exec->stats.seconds * 1e3,
              static_cast<unsigned long long>(
                  array_exec->stats.io.logical_reads),
              star_exec->stats.seconds * 1e3,
              static_cast<unsigned long long>(
                  star_exec->stats.io.logical_reads));
  std::remove(path.c_str());
  return 0;
}
