// olap_shell: an interactive SQL shell over a synthetic cube — the
// SQL-on-arrays integration the paper names as its main open problem (§1).
// Each statement is parsed, bound, planned (the planner explains its engine
// choice and estimated selectivity), executed, and printed.
//
//   $ ./olap_shell                 # builds a demo cube, reads SQL lines
//   sql> select sum(volume), dim0.h01 from cube group by dim0.h01;
//   sql> select count(volume) from cube where dim1.h12 = 'BH2C000';
//   sql> \schema                   # shows tables/columns
//   sql> \quit
//
// A statement may also be passed as argv[1] for one-shot use.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "gen/datasets.h"
#include "query/planner.h"
#include "schema/loader.h"

using namespace paradise;  // NOLINT(build/namespaces)

namespace {

void PrintSchema(const Database& db) {
  std::printf("cube '%s' (measure: %s)\n", db.schema().cube_name.c_str(),
              db.schema().measure_name().c_str());
  for (const DimensionSpec& d : db.schema().dims) {
    std::printf("  %s(", d.name.c_str());
    for (size_t c = 0; c < d.attrs.size(); ++c) {
      std::printf("%s%s %s", c == 0 ? "" : ", ", d.attrs[c].name.c_str(),
                  std::string(ColumnTypeToString(d.attrs[c].type)).c_str());
    }
    std::printf(")\n");
  }
  std::printf(
      "example: select sum(volume), dim0.h01 from cube group by dim0.h01;\n");
}

void RunStatement(Database* db, const std::string& sql) {
  Result<SqlExecution> result = RunSql(db, sql);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  const SqlExecution& exec = *result;
  // Header.
  for (const std::string& col : exec.execution.result.group_columns()) {
    std::printf("%-20s", col.c_str());
  }
  std::printf("%s\n", "aggregate");
  size_t shown = 0;
  for (const query::ResultRow& row : exec.execution.result.rows()) {
    if (shown++ >= 25) {
      std::printf("... (%zu more rows)\n",
                  exec.execution.result.rows().size() - 25);
      break;
    }
    size_t g = 0;
    // Resolve group codes to display values via the dimension dictionaries.
    for (size_t d = 0; d < db->schema().num_dims(); ++d) {
      // Column order matches dimension order of grouped dims.
      (void)d;
    }
    for (int32_t code : row.group) {
      // Find the dictionary for this grouped column.
      // group_columns are "<dim>.<attr>" in dimension order.
      const std::string& label =
          exec.execution.result.group_columns()[g];
      const size_t dot = label.find('.');
      const std::string dim_name = label.substr(0, dot);
      const std::string attr_name = label.substr(dot + 1);
      bool printed = false;
      for (size_t d = 0; d < db->schema().num_dims(); ++d) {
        if (db->schema().dims[d].name != dim_name) continue;
        Result<size_t> col =
            db->dim(d).schema().ColumnIndex(attr_name);
        if (!col.ok()) break;
        Result<const AttributeDictionary*> dict = db->dim(d).Dictionary(*col);
        if (dict.ok() && code >= 0 &&
            code < (*dict)->cardinality()) {
          std::printf("%-20s", (*dict)->code_to_display[code].c_str());
          printed = true;
        }
        break;
      }
      if (!printed) std::printf("%-20d", code);
      ++g;
    }
    std::printf("%.2f\n", row.agg.Finalize(query::AggFunc::kSum));
  }
  std::printf("-- %zu groups | plan: %s (%s) | %.2f ms, %llu page reads\n",
              exec.execution.result.num_groups(),
              std::string(EngineKindToString(exec.plan.engine)).c_str(),
              exec.plan.reason.c_str(), exec.execution.stats.seconds * 1e3,
              static_cast<unsigned long long>(
                  exec.execution.stats.io.logical_reads));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "paradise_shell.db").string();
  std::remove(path.c_str());

  std::printf("building a demo cube (20x20x20x50, 5%% dense)...\n");
  gen::GenConfig config;
  config.dims.resize(4);
  const uint32_t sizes[4] = {20, 20, 20, 50};
  for (size_t d = 0; d < 4; ++d) {
    config.dims[d].name = "dim" + std::to_string(d);
    config.dims[d].size = sizes[d];
    config.dims[d].level_cardinalities = {8, 3};
  }
  config.num_valid_cells = 20000;
  config.seed = 11;
  config.chunk_extents = {10, 10, 10, 10};
  auto db = BuildDatabaseFromConfig(path, config, DatabaseOptions{});
  PARADISE_CHECK_OK(db.status());
  PrintSchema(**db);

  if (argc > 1) {
    RunStatement(db->get(), argv[1]);
    std::remove(path.c_str());
    return 0;
  }

  std::string line;
  std::printf("sql> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (line == "\\quit" || line == "\\q" || line == "exit") break;
    if (line == "\\schema") {
      PrintSchema(**db);
    } else if (!line.empty()) {
      RunStatement(db->get(), line);
    }
    std::printf("sql> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  std::remove(path.c_str());
  return 0;
}
