// ADT function tour (paper §3.5): the OLAP Array ADT's full function set —
// cell read/write by dimension keys, slicing, subset summation, and
// materializing a consolidation as a new persistent array — on a small
// inventory cube, including reopening the database to show persistence.
#include <cstdio>
#include <filesystem>

#include "core/consolidate.h"
#include "core/slice.h"
#include "gen/generator.h"
#include "query/engine.h"
#include "schema/loader.h"

using namespace paradise;  // NOLINT(build/namespaces)

int main() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "paradise_adt.db").string();
  std::remove(path.c_str());

  // A 12x8x16 cube, ~30 % dense, two hierarchy levels per dimension.
  gen::GenConfig config;
  config.dims.resize(3);
  const uint32_t sizes[3] = {12, 8, 16};
  const uint32_t cards[3] = {4, 4, 4};
  for (size_t d = 0; d < 3; ++d) {
    config.dims[d].name = "dim" + std::to_string(d);
    config.dims[d].size = sizes[d];
    config.dims[d].level_cardinalities = {cards[d], 2};
  }
  config.num_valid_cells = 460;
  config.seed = 7;

  {
    auto db = BuildDatabaseFromConfig(path, config, DatabaseOptions{});
    PARADISE_CHECK_OK(db.status());
    PARADISE_CHECK_OK((*db)->storage()->Close());
  }

  // Reopen from disk: every ADT structure persists.
  auto db = Database::Open(path, DatabaseOptions{});
  PARADISE_CHECK_OK(db.status());
  OlapArray* cube = (*db)->olap();
  std::printf("reopened cube '%s': %zu dimensions, %llu valid cells, "
              "%llu chunks\n",
              cube->name().c_str(), cube->num_dims(),
              static_cast<unsigned long long>(cube->array().num_valid_cells()),
              static_cast<unsigned long long>(
                  cube->array().layout().num_chunks()));

  // --- Read function: probe a cell by its dimension keys. ---
  auto cell = cube->ReadCellByKeys({3, 2, 5});
  PARADISE_CHECK_OK(cell.status());
  std::printf("cell (3,2,5): %s\n",
              cell->has_value() ? std::to_string(**cell).c_str() : "invalid");

  // --- Write function: update a cell and read it back. ---
  PARADISE_CHECK_OK(cube->WriteCellByKeys({3, 2, 5}, 777));
  cell = cube->ReadCellByKeys({3, 2, 5});
  PARADISE_CHECK_OK(cell.status());
  std::printf("cell (3,2,5) after write: %lld\n",
              static_cast<long long>(**cell));

  // --- Slice function: fix dim0 = key 3. ---
  auto slice = ArraySlice(*cube, 0, 3);
  PARADISE_CHECK_OK(slice.status());
  std::printf("slice dim0=3: %zu valid cells; first few:", slice->size());
  for (size_t i = 0; i < 4 && i < slice->size(); ++i) {
    std::printf(" (%u,%u,%u)=%lld", (*slice)[i].coords[0],
                (*slice)[i].coords[1], (*slice)[i].coords[2],
                static_cast<long long>((*slice)[i].value));
  }
  std::printf("\n");

  // --- Subset-sum function: aggregate a coordinate box. ---
  auto box_sum = ArraySumSubset(*cube, {{0, 6}, {0, 8}, {4, 12}});
  PARADISE_CHECK_OK(box_sum.status());
  std::printf("sum over box [0,6)x[0,8)x[4,12): sum=%lld count=%llu "
              "min=%lld max=%lld avg=%.2f\n",
              static_cast<long long>(box_sum->sum),
              static_cast<unsigned long long>(box_sum->count),
              static_cast<long long>(box_sum->min),
              static_cast<long long>(box_sum->max),
              box_sum->Finalize(query::AggFunc::kAvg));

  // --- Consolidation function: result is another array instance (§4.1). ---
  query::ConsolidationQuery q;
  q.dims.resize(3);
  q.dims[0].group_by_col = 1;
  q.dims[1].group_by_col = 1;
  auto consolidated =
      MaterializeConsolidation((*db)->storage(), *cube, q, ArrayOptions{});
  PARADISE_CHECK_OK(consolidated.status());
  std::printf("materialized consolidation: %s, %llu groups stored\n",
              consolidated->layout().ToString().c_str(),
              static_cast<unsigned long long>(
                  consolidated->num_valid_cells()));

  // The materialized array agrees with the query engine cell by cell.
  auto exec = RunQuery(db->get(), EngineKind::kArray, q);
  PARADISE_CHECK_OK(exec.status());
  bool all_match = true;
  for (const query::ResultRow& row : exec->result.rows()) {
    auto v = consolidated->GetCell(
        {static_cast<uint32_t>(row.group[0]),
         static_cast<uint32_t>(row.group[1])});
    PARADISE_CHECK_OK(v.status());
    if (!v->has_value() || **v != row.agg.sum) all_match = false;
  }
  std::printf("materialized cells match the query result: %s\n",
              all_match ? "yes" : "NO");

  // Aggregate sweep on the same grouping.
  for (query::AggFunc agg :
       {query::AggFunc::kSum, query::AggFunc::kCount, query::AggFunc::kMin,
        query::AggFunc::kMax, query::AggFunc::kAvg}) {
    query::ConsolidationQuery aq = q;
    aq.agg = agg;
    auto e = RunQuery(db->get(), EngineKind::kArray, aq);
    PARADISE_CHECK_OK(e.status());
    std::printf("  %-5s of first group = %.2f\n",
                std::string(query::AggFuncToString(agg)).c_str(),
                e->result.rows()[0].agg.Finalize(agg));
  }

  std::remove(path.c_str());
  return 0;
}
