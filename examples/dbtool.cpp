// dbtool: inspect a paradise database file — catalog, schema, storage
// accounting, array chunk map, and index inventory. Works on any database
// the library built; creates a small demo database when run without
// arguments.
//
//   $ ./dbtool [path/to/database.db]
#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "gen/datasets.h"
#include "schema/loader.h"

using namespace paradise;  // NOLINT(build/namespaces)

namespace {

void Inspect(const std::string& path) {
  DatabaseOptions options;
  auto db = Database::Open(path, options);
  PARADISE_CHECK_OK(db.status());
  Database& d = **db;

  std::printf("=== %s ===\n", path.c_str());
  std::printf("file size: %.2f MB (%zu-byte pages)\n",
              static_cast<double>(d.storage()->FileSizeBytes()) / 1e6,
              d.storage()->options().page_size);

  std::printf("\n--- catalog ---\n");
  for (const auto& [name, value] : d.storage()->catalog()) {
    std::printf("  %-28s -> %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }

  std::printf("\n--- schema ---\n");
  std::printf("cube '%s', measures:", d.schema().cube_name.c_str());
  for (const std::string& m : d.schema().measures) {
    std::printf(" %s", m.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < d.schema().num_dims(); ++i) {
    const DimensionSpec& spec = d.schema().dims[i];
    std::printf("  %s: %u members;", spec.name.c_str(), d.dim(i).num_rows());
    for (size_t c = 1; c < spec.attrs.size(); ++c) {
      auto dict = d.dim(i).Dictionary(c);
      PARADISE_CHECK_OK(dict.status());
      std::printf(" %s(%d)", spec.attrs[c].name.c_str(),
                  (*dict)->cardinality());
    }
    std::printf("\n");
  }
  std::printf("fact file: %llu tuples of %u bytes (%llu data pages)\n",
              static_cast<unsigned long long>(d.fact()->num_tuples()),
              d.fact()->record_size(),
              static_cast<unsigned long long>(d.fact()->used_data_pages()));

  if (d.has_olap()) {
    std::printf("\n--- OLAP array ---\n");
    const OlapArray& cube = *d.olap();
    std::printf("%s; %zu measure array(s)\n",
                cube.layout().ToString().c_str(), cube.num_measures());
    const ChunkedArray& array = cube.array();
    uint64_t non_empty = 0, min_valid = UINT64_MAX, max_valid = 0;
    for (uint64_t c = 0; c < array.layout().num_chunks(); ++c) {
      const uint32_t v = array.ChunkValidCount(c);
      if (v == 0) continue;
      ++non_empty;
      min_valid = std::min<uint64_t>(min_valid, v);
      max_valid = std::max<uint64_t>(max_valid, v);
    }
    std::printf("%llu valid cells in %llu/%llu chunks "
                "(%llu..%llu cells per non-empty chunk)\n",
                static_cast<unsigned long long>(array.num_valid_cells()),
                static_cast<unsigned long long>(non_empty),
                static_cast<unsigned long long>(array.layout().num_chunks()),
                static_cast<unsigned long long>(
                    non_empty == 0 ? 0 : min_valid),
                static_cast<unsigned long long>(max_valid));
  }

  std::printf("\n--- storage report ---\n");
  auto report = d.ReportStorage();
  PARADISE_CHECK_OK(report.status());
  std::printf("fact file       : %10.2f KB\n",
              static_cast<double>(report->fact_file_bytes) / 1e3);
  std::printf("compressed array: %10.2f KB\n",
              static_cast<double>(report->array_data_bytes) / 1e3);
  std::printf("bitmap indexes  : %10.2f KB\n",
              static_cast<double>(report->bitmap_bytes) / 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    Inspect(argv[1]);
    return 0;
  }
  // No path given: build a demo database and inspect that.
  const std::string path =
      (std::filesystem::temp_directory_path() / "paradise_dbtool_demo.db")
          .string();
  std::remove(path.c_str());
  std::printf("no database given; building a demo at %s\n\n", path.c_str());
  {
    auto db = BuildDatabaseFromConfig(path, gen::DataSet2(0.02),
                                      DatabaseOptions{});
    PARADISE_CHECK_OK(db.status());
    PARADISE_CHECK_OK((*db)->storage()->Close());
  }
  Inspect(path);
  std::remove(path.c_str());
  return 0;
}
