// Storage explorer: walks the §3.2/§3.3 storage story interactively — how
// the fact file, the uncompressed array, and the chunk-offset-compressed
// array trade space as density changes, and what each chunk looks like.
#include <cstdio>
#include <filesystem>

#include "gen/datasets.h"
#include "schema/loader.h"

using namespace paradise;  // NOLINT(build/namespaces)

namespace {

void Explore(double density) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "paradise_explorer.db")
          .string();
  std::remove(path.c_str());
  gen::GenConfig config = gen::DataSet2(density);
  auto db = BuildDatabaseFromConfig(path, config, DatabaseOptions{});
  PARADISE_CHECK_OK(db.status());

  auto report = (*db)->ReportStorage();
  PARADISE_CHECK_OK(report.status());
  const uint64_t cells = (*db)->olap()->layout().total_cells();
  const uint64_t tuples = (*db)->fact()->num_tuples();
  const uint64_t dense_bytes = cells * 8;

  std::printf("\n--- 40x40x40x100 cube at %.1f%% density (%llu tuples) ---\n",
              density * 100, static_cast<unsigned long long>(tuples));
  std::printf("fact file          : %8.2f MB (%u-byte records, no slotted "
              "pages)\n",
              static_cast<double>(report->fact_file_bytes) / 1e6,
              (*db)->fact()->record_size());
  std::printf("array, uncompressed: %8.2f MB (every cell materialized)\n",
              static_cast<double>(dense_bytes) / 1e6);
  std::printf("array, chunk-offset: %8.2f MB (valid cells only: "
              "12 B/cell + per-chunk headers)\n",
              static_cast<double>(report->array_data_bytes) / 1e6);
  std::printf("bitmap join indexes: %8.2f MB\n",
              static_cast<double>(report->bitmap_bytes) / 1e6);
  std::printf("array/table ratio  : %8.2f\n",
              static_cast<double>(report->array_data_bytes) /
                  static_cast<double>(report->fact_file_bytes));

  // Chunk-level view of the first few chunks.
  const ChunkedArray& array = (*db)->olap()->array();
  std::printf("chunks: %llu total, showing the first 5:\n",
              static_cast<unsigned long long>(array.layout().num_chunks()));
  for (uint64_t c = 0; c < 5 && c < array.layout().num_chunks(); ++c) {
    auto blob = array.ReadChunkBlob(c);
    PARADISE_CHECK_OK(blob.status());
    std::printf("  chunk %llu: %5u/%u valid cells, %6zu bytes stored\n",
                static_cast<unsigned long long>(c), array.ChunkValidCount(c),
                array.layout().ChunkCellCount(c), blob->size());
  }
  std::remove(path.c_str());
}

}  // namespace

int main() {
  std::printf("The paper's §3.2 break-even: with n=4 dimensions and p=1 "
              "measure,\nan UNCOMPRESSED array only beats the relational "
              "table above\ndensity p/(n+p) = 20%% — but chunk-offset "
              "compression (§3.3) stores\nonly valid cells, so the array "
              "wins at every density below too.\n");
  for (double density : {0.005, 0.01, 0.05, 0.10, 0.20}) {
    Explore(density);
  }
  return 0;
}
