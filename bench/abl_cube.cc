// Ablation: the CUBE operator ([ZDN97], cited by §1) vs running the 2^n
// consolidations independently. The lattice scheme computes coarse cuboids
// from their smallest parent instead of rescanning the array, so it reads
// the array once instead of 2^n times.
#include "bench_json.h"
#include "bench_util.h"
#include "core/consolidate.h"
#include "core/cube.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

int main() {
  std::printf("# Ablation — CUBE (all 16 cuboids) vs 16 consolidations\n");
  std::printf("dataset,method,seconds,chunks_read,aggregate_ops\n");
  BenchReport report("abl_cube",
                     "CUBE (all 16 cuboids) vs 16 independent consolidations");
  for (uint32_t last : {100u, 1000u}) {
    BenchFile file("abl_cube");
    std::unique_ptr<Database> db =
        MustBuild(file.path(), gen::DataSet1(last), PaperOptions());
    const std::string dataset = "40x40x40x" + std::to_string(last);

    // One-pass CUBE.
    {
      PARADISE_CHECK_OK(db->DropCaches());
      CubeQuery cube;
      cube.level_cols.assign(4, 1);
      CubeStats stats;
      Stopwatch watch;
      Result<std::vector<Cuboid>> cuboids =
          ArrayCube(*db->olap(), cube, nullptr, &stats);
      PARADISE_CHECK_OK(cuboids.status());
      const double seconds = watch.ElapsedSeconds();
      std::printf("%s,cube,%.4f,%llu,%llu\n", dataset.c_str(), seconds,
                  static_cast<unsigned long long>(stats.chunks_read),
                  static_cast<unsigned long long>(stats.aggregate_ops));
      ExecutionStats exec_stats;
      exec_stats.seconds = seconds;
      exec_stats.aux = stats.chunks_read;
      report.Add({{"dataset", dataset}, {"method", "cube"}}, "array",
                 cuboids->size(), exec_stats,
                 {{"aggregate_ops", static_cast<double>(stats.aggregate_ops)}});
    }

    // Sixteen independent consolidations.
    {
      PARADISE_CHECK_OK(db->DropCaches());
      Stopwatch watch;
      uint64_t chunks = 0, ops = 0;
      for (uint32_t mask = 0; mask < 16; ++mask) {
        query::ConsolidationQuery q;
        q.dims.resize(4);
        for (size_t d = 0; d < 4; ++d) {
          if ((mask >> d) & 1) q.dims[d].group_by_col = 1;
        }
        ArrayConsolidateStats stats;
        Result<query::GroupedResult> r =
            ArrayConsolidate(*db->olap(), q, nullptr, &stats);
        PARADISE_CHECK_OK(r.status());
        chunks += stats.chunks_read;
        ops += stats.cells_scanned;
      }
      const double seconds = watch.ElapsedSeconds();
      std::printf("%s,independent,%.4f,%llu,%llu\n", dataset.c_str(), seconds,
                  static_cast<unsigned long long>(chunks),
                  static_cast<unsigned long long>(ops));
      ExecutionStats exec_stats;
      exec_stats.seconds = seconds;
      exec_stats.aux = chunks;
      report.Add({{"dataset", dataset}, {"method", "independent"}}, "array",
                 16, exec_stats, {{"aggregate_ops", static_cast<double>(ops)}});
    }
  }
  report.WriteFile();
  return 0;
}
