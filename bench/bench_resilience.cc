// Resilience bench: the serving stack under deadlines, cancels and network
// faults. Two passes over the same server and workload:
//
//   clean    healthy clients only — the baseline latency distribution;
//   faulted  the same healthy clients, now sharing the server with chaos
//            clients whose sockets inject short reads/writes, stalls,
//            mid-frame disconnects and truncations (server/fault_socket.h),
//            while a slice of all traffic carries 1 ms deadlines or races a
//            kCancel.
//
// Reported per pass: p50/p99/p999 of the healthy clients' latencies, QPS,
// and the full error taxonomy (ok / timeout / cancelled / busy / transport
// / faults injected). Every successful reply is byte-compared against the
// single-threaded goldens — the bench dies on the first divergence, so a
// passing run proves isolation: a hostile network degrades its own
// connections, not the answers (or liveness) of healthy ones.
//
// Besides the CSV, writes BENCH_resilience.json in the shared bench schema.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "common/random.h"
#include "gen/generator.h"
#include "query/planner.h"
#include "schema/demo_cube.h"
#include "server/client.h"
#include "server/fault_socket.h"
#include "server/server.h"
#include "server/wire.h"

using namespace paradise;         // NOLINT(build/namespaces)
using namespace paradise::bench;  // NOLINT(build/namespaces)

namespace {

void Die(const Status& st) {
  std::fprintf(stderr, "bench_resilience: %s\n", st.ToString().c_str());
  std::exit(1);
}

std::vector<std::string> Workload() {
  return {
      "select sum(volume), dim0.h01, dim1.h11, dim2.h21 from cube "
      "group by dim0.h01, dim1.h11, dim2.h21",
      "select sum(volume), dim0.h02, dim2.h22 from cube "
      "group by dim0.h02, dim2.h22",
      "select sum(volume), dim0.h01 from cube "
      "where dim1.h12 = '" + gen::AttrValue(1, 2, 0) + "' group by dim0.h01",
      "select avg(volume), dim1.h11 from cube "
      "where dim2.h22 = '" + gen::AttrValue(2, 2, 1) + "' group by dim1.h11",
  };
}

std::vector<std::string> Goldens(Database* db,
                                 const std::vector<std::string>& workload) {
  std::vector<std::string> goldens;
  for (const std::string& sql : workload) {
    Result<SqlExecution> exec = RunSql(db, sql);
    if (!exec.ok()) Die(exec.status());
    exec->execution.result.SortCanonical();
    std::string bytes;
    server::AppendGroupedResult(exec->execution.result, &bytes);
    goldens.push_back(std::move(bytes));
  }
  return goldens;
}

struct Tally {
  std::vector<uint64_t> latency_micros;
  uint64_t ok = 0;
  uint64_t err_timeout = 0;
  uint64_t err_cancelled = 0;
  uint64_t err_busy = 0;
  uint64_t err_transport = 0;
  uint64_t divergences = 0;
  uint64_t faults_injected = 0;

  void Accumulate(const Tally& other) {
    latency_micros.insert(latency_micros.end(), other.latency_micros.begin(),
                          other.latency_micros.end());
    ok += other.ok;
    err_timeout += other.err_timeout;
    err_cancelled += other.err_cancelled;
    err_busy += other.err_busy;
    err_transport += other.err_transport;
    divergences += other.divergences;
    faults_injected += other.faults_injected;
  }
};

/// One healthy client: OlapClient with busy retries; a slice of queries
/// carries a 1 ms deadline or races a cancel. Latencies are recorded for
/// clean successes only, so the percentiles compare like with like across
/// passes.
Tally RunHealthyClient(const std::string& host, uint16_t port,
                       const std::vector<std::string>& workload,
                       const std::vector<std::string>& goldens, size_t id,
                       size_t queries, uint64_t seed) {
  Tally tally;
  Random rng(seed * 7919 + id);
  server::ClientOptions options;
  options.call_timeout_ms = 30'000;
  options.busy_retries = 8;
  options.retry_seed = seed * 31 + id;
  Result<std::unique_ptr<server::OlapClient>> client_or =
      server::OlapClient::Connect(host, port, options);
  if (!client_or.ok()) Die(client_or.status());
  std::unique_ptr<server::OlapClient> client = std::move(client_or).value();

  tally.latency_micros.reserve(queries);
  for (size_t i = 0; i < queries; ++i) {
    const size_t w = rng.Uniform(workload.size());
    server::QueryRequest request;
    request.sql = workload[w];
    request.num_threads = 1 + static_cast<uint32_t>(rng.Uniform(4));
    const bool with_deadline = rng.Bernoulli(0.10);
    const bool with_cancel = !with_deadline && rng.Bernoulli(0.10);
    if (with_deadline) request.deadline_ms = 1;

    if (with_cancel) {
      Status sent = client->SendRaw(server::EncodeFrame(
          server::FrameType::kQuery, server::EncodeQueryRequest(request)));
      if (sent.ok()) sent = client->Cancel();
      if (!sent.ok()) Die(sent);
      Result<server::Frame> frame = client->ReadFrame();
      if (!frame.ok()) Die(frame.status());
      if (frame->type == server::FrameType::kResult) {
        Result<server::ResultReply> result =
            server::DecodeResultReply(frame->payload);
        if (!result.ok()) Die(result.status());
        ++tally.ok;
        std::string bytes;
        server::AppendGroupedResult(result->result, &bytes);
        if (bytes != goldens[w]) ++tally.divergences;
      } else {
        ++tally.err_cancelled;
      }
      continue;
    }

    const auto start = std::chrono::steady_clock::now();
    Result<server::OlapClient::Reply> reply = client->QueryWithRetry(request);
    const auto end = std::chrono::steady_clock::now();
    if (!reply.ok()) Die(reply.status());
    if (reply->ok) {
      ++tally.ok;
      std::string bytes;
      server::AppendGroupedResult(reply->result.result, &bytes);
      if (bytes != goldens[w]) ++tally.divergences;
      if (!with_deadline) {
        tally.latency_micros.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(end - start)
                .count()));
      }
    } else if (reply->error.error == server::WireError::kQueryTimeout) {
      ++tally.err_timeout;
    } else if (reply->error.error == server::WireError::kCancelled) {
      ++tally.err_cancelled;
    } else if (reply->error.error == server::WireError::kServerBusy) {
      ++tally.err_busy;
    } else {
      Die(server::ErrorReplyToStatus(reply->error));
    }
  }
  return tally;
}

/// One chaos client: the wire protocol spoken over a fault-injecting socket
/// (~30% of operations carry an injected fault). Transport errors reconnect
/// and continue; successful replies still must match the goldens.
Tally RunChaosClient(const std::string& host, uint16_t port,
                     const std::vector<std::string>& workload,
                     const std::vector<std::string>& goldens, size_t id,
                     size_t queries, uint64_t seed) {
  Tally tally;
  Random rng(seed * 104729 + id);
  server::SocketFaultOptions faults;
  faults.seed = seed * 1299709 + id;
  faults.short_read_probability = 0.10;
  faults.short_write_probability = 0.10;
  faults.stall_probability = 0.05;
  faults.stall_ms = 2;
  faults.disconnect_probability = 0.05;
  faults.truncate_write_probability = 0.05;

  std::unique_ptr<server::FaultSocket> sock;
  std::unique_ptr<server::FrameDecoder> decoder;
  char buf[16 * 1024];

  const auto read_frame = [&]() -> Result<server::Frame> {
    for (;;) {
      PARADISE_ASSIGN_OR_RETURN(std::optional<server::Frame> frame,
                                decoder->Next());
      if (frame.has_value()) return std::move(*frame);
      PARADISE_ASSIGN_OR_RETURN(size_t n, sock->Recv(buf, sizeof(buf)));
      if (n == 0) return Status::IOError("server closed the connection");
      decoder->Append(buf, n);
    }
  };
  const auto reconnect = [&]() -> bool {
    if (sock != nullptr) tally.faults_injected += sock->injected_faults();
    faults.seed += 1;
    Result<std::unique_ptr<server::FaultSocket>> dialed =
        server::FaultSocket::Dial(host, port, faults);
    if (!dialed.ok()) return false;
    sock = std::move(dialed).value();
    decoder = std::make_unique<server::FrameDecoder>();
    Result<server::Frame> hello = read_frame();
    return hello.ok() && hello->type == server::FrameType::kHello;
  };
  if (!reconnect()) {
    ++tally.err_transport;
    return tally;
  }

  for (size_t i = 0; i < queries; ++i) {
    if (sock == nullptr || sock->closed()) {
      if (!reconnect()) {
        ++tally.err_transport;
        break;
      }
    }
    const size_t w = rng.Uniform(workload.size());
    server::QueryRequest request;
    request.sql = workload[w];
    request.num_threads = 1 + static_cast<uint32_t>(rng.Uniform(4));
    if (rng.Bernoulli(0.10)) request.deadline_ms = 1;

    Status sent = sock->Send(server::EncodeFrame(
        server::FrameType::kQuery, server::EncodeQueryRequest(request)));
    if (sent.ok() && rng.Bernoulli(0.10)) {
      sent = sock->Send(server::EncodeFrame(server::FrameType::kCancel, ""));
    }
    if (!sent.ok()) {
      ++tally.err_transport;
      sock->Close();
      continue;
    }
    Result<server::Frame> frame = read_frame();
    if (!frame.ok()) {
      ++tally.err_transport;
      sock->Close();
      continue;
    }
    if (frame->type == server::FrameType::kResult) {
      Result<server::ResultReply> result =
          server::DecodeResultReply(frame->payload);
      if (!result.ok()) {
        ++tally.err_transport;
        sock->Close();
        continue;
      }
      ++tally.ok;
      std::string bytes;
      server::AppendGroupedResult(result->result, &bytes);
      if (bytes != goldens[w]) ++tally.divergences;
    } else if (frame->type == server::FrameType::kError) {
      Result<server::ErrorReply> error =
          server::DecodeErrorReply(frame->payload);
      if (!error.ok()) {
        ++tally.err_transport;
        sock->Close();
        continue;
      }
      switch (error->error) {
        case server::WireError::kQueryTimeout:
          ++tally.err_timeout;
          break;
        case server::WireError::kCancelled:
          ++tally.err_cancelled;
          break;
        case server::WireError::kServerBusy:
          ++tally.err_busy;
          break;
        default:
          ++tally.err_transport;
          break;
      }
    } else {
      ++tally.err_transport;
      sock->Close();
    }
  }
  if (sock != nullptr) tally.faults_injected += sock->injected_faults();
  return tally;
}

uint64_t Percentile(const std::vector<uint64_t>& sorted_micros, double p) {
  if (sorted_micros.empty()) return 0;
  const size_t idx = std::min(
      sorted_micros.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_micros.size())));
  return sorted_micros[idx];
}

}  // namespace

int main() {
  std::printf("# bench_resilience — olapd under deadlines, cancels and "
              "injected network faults (demo cube, loopback TCP)\n");
  std::printf("mode,queries,seconds,qps,p50_ms,p99_ms,p999_ms,ok,"
              "err_timeout,err_cancelled,err_busy,err_transport,"
              "faults_injected,divergences\n");

  BenchFile file("resilience");
  Result<std::unique_ptr<Database>> built = BuildDemoCube(file.path());
  if (!built.ok()) Die(built.status());
  std::unique_ptr<Database> db = std::move(built).value();

  const std::vector<std::string> workload = Workload();
  const std::vector<std::string> goldens = Goldens(db.get(), workload);

  server::ServerOptions options;
  options.max_inflight =
      std::max<size_t>(4, std::thread::hardware_concurrency());
  options.max_queued = 1024;
  options.read_timeout_ms = 2'000;  // reap truncated/stalled chaos frames
  server::OlapServer olapd(db.get(), options);
  if (Status st = olapd.Start(); !st.ok()) Die(st);

  BenchReport report(
      "resilience",
      "olapd under fire: healthy clients' latency distribution and error "
      "taxonomy with and without co-resident fault-injecting chaos clients; "
      "all successful replies byte-compared against single-threaded "
      "goldens");

  constexpr size_t kHealthyClients = 8;
  constexpr size_t kChaosClients = 8;
  constexpr size_t kQueriesPerClient = 150;
  constexpr uint64_t kSeed = 1;
  uint64_t total_divergences = 0;

  for (const bool faulted : {false, true}) {
    std::vector<Tally> tallies(kHealthyClients + (faulted ? kChaosClients : 0));
    std::vector<std::thread> threads;
    threads.reserve(tallies.size());
    const auto start = std::chrono::steady_clock::now();
    for (size_t c = 0; c < kHealthyClients; ++c) {
      threads.emplace_back([&, c] {
        tallies[c] = RunHealthyClient(olapd.host(), olapd.port(), workload,
                                      goldens, c, kQueriesPerClient, kSeed);
      });
    }
    if (faulted) {
      for (size_t c = 0; c < kChaosClients; ++c) {
        threads.emplace_back([&, c] {
          tallies[kHealthyClients + c] =
              RunChaosClient(olapd.host(), olapd.port(), workload, goldens, c,
                             kQueriesPerClient, kSeed);
        });
      }
    }
    for (std::thread& t : threads) t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    Tally total;
    for (const Tally& tally : tallies) total.Accumulate(tally);
    std::sort(total.latency_micros.begin(), total.latency_micros.end());
    const uint64_t p50 = Percentile(total.latency_micros, 0.50);
    const uint64_t p99 = Percentile(total.latency_micros, 0.99);
    const uint64_t p999 = Percentile(total.latency_micros, 0.999);
    const uint64_t attempted =
        kQueriesPerClient * (kHealthyClients + (faulted ? kChaosClients : 0));
    const double qps =
        seconds > 0 ? static_cast<double>(attempted) / seconds : 0;
    total_divergences += total.divergences;

    const char* mode = faulted ? "faulted" : "clean";
    std::printf(
        "%s,%llu,%.3f,%.0f,%.3f,%.3f,%.3f,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%llu\n",
        mode, static_cast<unsigned long long>(attempted), seconds, qps,
        static_cast<double>(p50) / 1000.0, static_cast<double>(p99) / 1000.0,
        static_cast<double>(p999) / 1000.0,
        static_cast<unsigned long long>(total.ok),
        static_cast<unsigned long long>(total.err_timeout),
        static_cast<unsigned long long>(total.err_cancelled),
        static_cast<unsigned long long>(total.err_busy),
        static_cast<unsigned long long>(total.err_transport),
        static_cast<unsigned long long>(total.faults_injected),
        static_cast<unsigned long long>(total.divergences));
    std::fflush(stdout);

    ExecutionStats stats;
    stats.seconds = seconds;
    report.Add({{"mode", mode}}, "server", total.ok, stats,
               {{"qps", qps},
                {"p50_ms", static_cast<double>(p50) / 1000.0},
                {"p99_ms", static_cast<double>(p99) / 1000.0},
                {"p999_ms", static_cast<double>(p999) / 1000.0},
                {"ok", static_cast<double>(total.ok)},
                {"err_timeout", static_cast<double>(total.err_timeout)},
                {"err_cancelled", static_cast<double>(total.err_cancelled)},
                {"err_busy", static_cast<double>(total.err_busy)},
                {"err_transport", static_cast<double>(total.err_transport)},
                {"faults_injected",
                 static_cast<double>(total.faults_injected)},
                {"divergences", static_cast<double>(total.divergences)}});
  }

  olapd.Stop();
  const server::OlapServer::Stats stats = olapd.stats();
  std::printf("# server: %llu connections, %llu ok, %llu timeouts "
              "(%llu shed while queued), %llu cancelled, %llu read timeouts, "
              "%llu protocol errors\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.queries_ok),
              static_cast<unsigned long long>(stats.timeouts),
              static_cast<unsigned long long>(stats.shed_expired),
              static_cast<unsigned long long>(stats.cancelled),
              static_cast<unsigned long long>(stats.read_timeouts),
              static_cast<unsigned long long>(stats.protocol_errors));
  report.WriteFile();

  if (total_divergences > 0) {
    std::fprintf(stderr,
                 "bench_resilience: %llu replies diverged from the "
                 "single-threaded goldens\n",
                 static_cast<unsigned long long>(total_divergences));
    return 1;
  }
  return 0;
}
