// Storage comparison (paper §3.2 and §5.5.1): compressed-array size vs fact
// file size as density varies on the Data Set 2 shape, plus the 40x40x40x1000
// point the paper quotes (§5.5.1: fact file ~18.5 MB vs compressed array
// ~6.5 MB at 1 % density — our fact record is 24 B instead of their 20 B, so
// absolute sizes shift, but the ratio and the break-even shape carry over).
// Also prints the §3.2 break-even prediction: an *uncompressed* array beats
// the table only when density > p/(n+p).
#include "bench_util.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

namespace {

void Report(const char* label, Database* db, double density) {
  auto report = db->ReportStorage();
  if (!report.ok()) {
    std::fprintf(stderr, "storage report failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  const uint64_t cells = db->olap()->layout().total_cells();
  const uint64_t dense_array_bytes = cells * 8;  // uncompressed, 8 B cells
  std::printf("%s,%.3f,%llu,%llu,%llu,%llu,%llu\n", label, density * 100.0,
              static_cast<unsigned long long>(report->fact_file_bytes),
              static_cast<unsigned long long>(report->array_data_bytes),
              static_cast<unsigned long long>(dense_array_bytes),
              static_cast<unsigned long long>(report->bitmap_bytes),
              static_cast<unsigned long long>(report->file_bytes));
}

}  // namespace

int main() {
  std::printf(
      "# Storage table — §3.2/§5.5.1: fact file vs compressed array size\n");
  std::printf(
      "dataset,density_percent,fact_file_bytes,compressed_array_bytes,"
      "uncompressed_array_bytes,bitmap_bytes,db_file_bytes\n");
  for (double pct : {0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 20.0}) {
    BenchFile file("tab_storage");
    std::unique_ptr<Database> db =
        MustBuild(file.path(), gen::DataSet2(pct / 100.0), PaperOptions());
    Report("ds2_40x40x40x100", db.get(), pct / 100.0);
  }
  // The paper's quoted §5.5.1 point: 40x40x40x1000 at 1 % density.
  {
    BenchFile file("tab_storage_d1000");
    std::unique_ptr<Database> db =
        MustBuild(file.path(), gen::DataSet1(1000), PaperOptions());
    Report("ds1_40x40x40x1000", db.get(), 0.01);
  }
  std::printf(
      "# break-even (§3.2): uncompressed array beats table only when "
      "density > p/(n+p) = 1/(4+1) = 20%% by field count; chunk-offset "
      "compression moves the array below the fact file at every density "
      "above.\n");
  return 0;
}
