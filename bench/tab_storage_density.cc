// Storage comparison (paper §3.2 and §5.5.1): compressed-array size vs fact
// file size as density varies on the Data Set 2 shape, plus the 40x40x40x1000
// point the paper quotes (§5.5.1: fact file ~18.5 MB vs compressed array
// ~6.5 MB at 1 % density — our fact record is 24 B instead of their 20 B, so
// absolute sizes shift, but the ratio and the break-even shape carry over).
// Per-format array sizes come from Chunk::SerializedBytes — the same exact
// closed-form arithmetic kAuto selects by — so the dense/diffseq/bitpacked
// columns are what those codecs *would* store for this data, computed
// without rebuilding the database per format. Also prints the §3.2
// break-even prediction: an *uncompressed* array beats the table only when
// density > p/(n+p).
#include "array/chunk.h"
#include "array/chunked_array.h"
#include "bench_util.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

namespace {

void Report(const char* label, Database* db, double density) {
  auto report = db->ReportStorage();
  if (!report.ok()) {
    std::fprintf(stderr, "storage report failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  // Exact per-format sizes of this array's chunks, from the single
  // estimator the codec auto-selection uses.
  uint64_t dense_bytes = 0, diffseq_bytes = 0, bitpacked_bytes = 0,
           auto_bytes = 0;
  const Status scanned = db->olap()->array().ScanChunks(
      [&](uint64_t, const Chunk& chunk) {
        dense_bytes += chunk.SerializedBytes(ChunkFormat::kDense);
        diffseq_bytes += chunk.SerializedBytes(ChunkFormat::kDiffSequence);
        bitpacked_bytes += chunk.SerializedBytes(ChunkFormat::kBitPacked);
        auto_bytes += chunk.SerializedBytes(ChunkFormat::kAuto);
        return Status::OK();
      });
  if (!scanned.ok()) {
    std::fprintf(stderr, "chunk scan failed: %s\n",
                 scanned.ToString().c_str());
    std::exit(1);
  }
  std::printf("%s,%.3f,%llu,%llu,%llu,%llu,%llu,%llu,%llu\n", label,
              density * 100.0,
              static_cast<unsigned long long>(report->fact_file_bytes),
              static_cast<unsigned long long>(report->array_data_bytes),
              static_cast<unsigned long long>(dense_bytes),
              static_cast<unsigned long long>(diffseq_bytes),
              static_cast<unsigned long long>(bitpacked_bytes),
              static_cast<unsigned long long>(auto_bytes),
              static_cast<unsigned long long>(report->file_bytes));
}

}  // namespace

int main() {
  std::printf(
      "# Storage table — §3.2/§5.5.1: fact file vs compressed array size\n");
  std::printf(
      "dataset,density_percent,fact_file_bytes,stored_array_bytes,"
      "dense_array_bytes,diffseq_array_bytes,bitpacked_array_bytes,"
      "auto_array_bytes,db_file_bytes\n");
  for (double pct : {0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 20.0}) {
    BenchFile file("tab_storage");
    std::unique_ptr<Database> db =
        MustBuild(file.path(), gen::DataSet2(pct / 100.0), PaperOptions());
    Report("ds2_40x40x40x100", db.get(), pct / 100.0);
  }
  // The paper's quoted §5.5.1 point: 40x40x40x1000 at 1 % density.
  {
    BenchFile file("tab_storage_d1000");
    std::unique_ptr<Database> db =
        MustBuild(file.path(), gen::DataSet1(1000), PaperOptions());
    Report("ds1_40x40x40x1000", db.get(), 0.01);
  }
  std::printf(
      "# break-even (§3.2): uncompressed array beats table only when "
      "density > p/(n+p) = 1/(4+1) = 20%% by field count; chunk-offset "
      "compression moves the array below the fact file at every density "
      "above, and the v5 packed codecs (diffseq/bitpacked columns) cut "
      "another ~75-85%% off the offset-compressed size.\n");
  return 0;
}
