// Figure 7 (paper §5.6): same Query 2 selectivity sweep as Figure 6, on the
// 40x40x40x100 array (Data Set 1, 10 % dense).
#include "bench_json.h"
#include "bench_util.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

int main() {
  PrintHeader("Figure 7", "Query 2 on 40x40x40x100 (selectivity sweep)",
              "per_dim_selectivity");
  BenchReport report("fig07", "Query 2 on 40x40x40x100 (selectivity sweep)");
  const query::ConsolidationQuery q = gen::Query2(4);
  for (uint32_t card : {2u, 3u, 4u, 5u, 8u, 10u}) {
    BenchFile file("fig07");
    std::unique_ptr<Database> db = MustBuild(
        file.path(), gen::DataSet1(100, /*select_cardinality=*/card),
        PaperOptions());
    for (EngineKind kind : {EngineKind::kArray, EngineKind::kBitmap}) {
      const Execution exec = MustRun(db.get(), kind, q);
      PrintRow("1/" + std::to_string(card), kind, exec);
      report.Add({{"per_dim_selectivity", "1/" + std::to_string(card)}}, kind,
                 exec);
    }
  }
  report.WriteFile();
  return 0;
}
