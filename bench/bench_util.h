// Shared plumbing for the figure benches: database construction from a
// generator config, cold-run query execution, and uniform CSV-ish output so
// every bench prints the same columns the paper's figures plot.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "query/engine.h"
#include "schema/loader.h"

namespace paradise::bench {

/// Temp database file removed on destruction.
class BenchFile {
 public:
  explicit BenchFile(const std::string& tag) {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             ("paradise_bench_" + tag + "_" + std::to_string(::getpid()) +
              "_" + std::to_string(counter++)))
                .string();
    std::remove(path_.c_str());
  }
  ~BenchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Paper-faithful defaults: 8 KiB pages, 16 MB buffer pool (§5.3).
inline DatabaseOptions PaperOptions() {
  DatabaseOptions options;
  options.storage.page_size = 8192;
  options.storage.buffer_pool_pages = 2048;
  options.storage.pages_per_extent = 32;
  return options;
}

/// Builds a database or dies; benches treat build failure as fatal.
inline std::unique_ptr<Database> MustBuild(const std::string& path,
                                           const gen::GenConfig& config,
                                           DatabaseOptions options) {
  Result<std::unique_ptr<Database>> db =
      BuildDatabaseFromConfig(path, config, std::move(options));
  if (!db.ok()) {
    std::fprintf(stderr, "bench: database build failed: %s\n",
                 db.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(db).value();
}

/// Runs a cold query or dies.
inline Execution MustRun(Database* db, EngineKind kind,
                         const query::ConsolidationQuery& q,
                         bool cold = true) {
  Result<Execution> exec = RunQuery(db, kind, q, cold);
  if (!exec.ok()) {
    std::fprintf(stderr, "bench: %s query failed: %s\n",
                 std::string(EngineKindToString(kind)).c_str(),
                 exec.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(exec).value();
}

/// Standard result row shared by every figure bench. `modeled_seconds` is
/// the disk-bound estimate under the paper's 1997 hardware (IoModel1997) —
/// the column whose shape tracks the paper's figures, since our database
/// file is RAM-cached and `seconds` reflects CPU only.
inline void PrintHeader(const char* figure, const char* description,
                        const char* sweep_column) {
  std::printf("# %s — %s\n", figure, description);
  std::printf(
      "%s,engine,seconds,modeled_seconds,logical_reads,disk_reads,"
      "seq_reads,rand_reads,groups,aux\n",
      sweep_column);
}

inline void PrintRow(const std::string& sweep_value, EngineKind kind,
                     const Execution& exec) {
  std::printf("%s,%s,%.4f,%.3f,%llu,%llu,%llu,%llu,%zu,%llu\n",
              sweep_value.c_str(),
              std::string(EngineKindToString(kind)).c_str(),
              exec.stats.seconds, exec.stats.ModeledSeconds(),
              static_cast<unsigned long long>(exec.stats.io.logical_reads),
              static_cast<unsigned long long>(exec.stats.io.disk_reads),
              static_cast<unsigned long long>(exec.stats.io.seq_disk_reads),
              static_cast<unsigned long long>(exec.stats.io.rand_disk_reads),
              exec.result.num_groups(),
              static_cast<unsigned long long>(exec.stats.aux));
}

}  // namespace paradise::bench
