// Ablation: the incremental ingest path (DESIGN.md choice 15). Three
// measurements over one cube:
//
//   ingest      write/commit throughput (cells/s) across delta generations,
//               then one timed compaction merging them all;
//   quiesced    pinned-reader latency distribution with the writers idle —
//               the baseline p50/p99;
//   churn       the same pinned readers while a background thread commits
//               fresh generations and compacts continuously;
//   matched     the readers against a thread with the writer's measured
//               duty cycle (spin + sleep) doing NO database work — on a
//               small box the scheduler charges readers for any busy
//               neighbor, so this is the fair baseline. MVCC promise:
//               pinned readers run against their epoch untouched, so churn
//               p99 must stay within a few percent of matched p99 — any
//               excess is database-level interference (locks, version
//               churn), not timeslicing.
//
// Every reader result is compared against the pin-time answer of its own
// snapshot — the bench dies on the first divergence, so a passing churn run
// proves snapshot isolation, not just liveness (the quiesced pass is
// additionally checked against the live array's golden). Writes
// BENCH_ingest.json in the shared bench schema.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "core/consolidate.h"
#include "gen/datasets.h"
#include "gen/generator.h"
#include "ingest/ingest.h"
#include "query/query.h"
#include "schema/database.h"

using namespace paradise;         // NOLINT(build/namespaces)
using namespace paradise::bench;  // NOLINT(build/namespaces)

namespace {

void Die(const Status& st) {
  std::fprintf(stderr, "abl_ingest: %s\n", st.ToString().c_str());
  std::exit(1);
}

gen::GenConfig IngestConfig() {
  gen::GenConfig config;
  config.dims.resize(3);
  const uint32_t sizes[3] = {24, 24, 30};
  for (size_t d = 0; d < 3; ++d) {
    config.dims[d].name = "dim" + std::to_string(d);
    config.dims[d].size = sizes[d];
    config.dims[d].level_cardinalities = {6, 3};
  }
  config.num_valid_cells = 8000;
  config.seed = 20260809;
  config.chunk_extents = {6, 6, 6};
  return config;
}

uint64_t Percentile(const std::vector<uint64_t>& sorted_micros, double p) {
  if (sorted_micros.empty()) return 0;
  const size_t idx = std::min(
      sorted_micros.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_micros.size())));
  return sorted_micros[idx];
}

struct LatencyPass {
  double p50_ms = 0;
  double p99_ms = 0;
  double seconds = 0;
  uint64_t queries = 0;
};

/// Runs `queries` serial consolidations against one pinned snapshot. The pin
/// is taken once up front, like a server session's connect-time pin, and the
/// pin-time answer becomes the reference every later query must reproduce —
/// under churn the pin may already include post-golden commits, so snapshot
/// isolation means stability against the pin, not against older state. When
/// `expect` is non-null (quiesced pass) the reference itself must also match
/// it.
LatencyPass RunPinnedReaders(const Database* db,
                             const query::ConsolidationQuery& q,
                             const query::GroupedResult* expect,
                             size_t queries) {
  LatencyPass pass;
  const Database::PinnedArray pin = db->PinArray();
  Result<query::GroupedResult> ref_or = ArrayConsolidate(pin.array, q);
  if (!ref_or.ok()) Die(ref_or.status());
  const query::GroupedResult ref = std::move(ref_or).value();
  if (expect != nullptr && !ref.SameAs(*expect)) {
    Die(Status::Internal(
        "quiesced pin-time answer diverged from the live golden"));
  }
  std::vector<uint64_t> micros;
  micros.reserve(queries);
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < queries; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    Result<query::GroupedResult> r = ArrayConsolidate(pin.array, q);
    const auto t1 = std::chrono::steady_clock::now();
    if (!r.ok()) Die(r.status());
    if (!r->SameAs(ref)) {
      Die(Status::Internal("pinned reader diverged from its pin-time "
                           "reference at query " + std::to_string(i)));
    }
    micros.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count()));
  }
  pass.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::sort(micros.begin(), micros.end());
  pass.p50_ms = static_cast<double>(Percentile(micros, 0.50)) / 1000.0;
  pass.p99_ms = static_cast<double>(Percentile(micros, 0.99)) / 1000.0;
  pass.queries = queries;
  return pass;
}

}  // namespace

int main() {
  std::printf("# abl_ingest — incremental ingest throughput and pinned-"
              "reader latency under compaction churn\n");

  BenchFile file("ingest");
  const gen::GenConfig config = IngestConfig();
  Result<gen::SyntheticDataset> data_or = gen::Generate(config);
  if (!data_or.ok()) Die(data_or.status());
  const gen::SyntheticDataset data = std::move(data_or).value();
  // Paper-faithful page size, but a pool large enough that the pinned
  // readers' working set survives the churn writer's allocations: the
  // measurement isolates the MVCC read path, not cache-capacity eviction
  // (abl_cache covers that axis).
  DatabaseOptions options = PaperOptions();
  options.storage.buffer_pool_pages = 8192;
  std::unique_ptr<Database> db = MustBuild(file.path(), config, options);
  if (db->ingest() == nullptr) Die(Status::Internal("no ingest manager"));

  BenchReport report(
      "ingest",
      "incremental ingest: write/commit/compact throughput, then pinned-"
      "reader p50/p99 quiesced vs under continuous commit+compaction churn; "
      "every reader reply compared against its snapshot's pin-time answer");

  const query::ConsolidationQuery q = gen::Query1(3);

  // --- Pass 1: ingest throughput. kGenerations batches of kBatch upserts,
  // each committed as its own delta generation, then one compaction.
  constexpr size_t kGenerations = 16;
  constexpr size_t kBatch = 512;
  size_t cursor = 0;
  double write_seconds = 0;
  double commit_seconds = 0;
  for (size_t g = 0; g < kGenerations; ++g) {
    const auto w0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kBatch; ++i) {
      const uint64_t gi =
          data.cell_global_indices[cursor++ % data.cell_global_indices.size()];
      if (Status st = db->ingest()->Write(
              data.CellKeys(gi), {static_cast<int64_t>(1000 + g)});
          !st.ok()) {
        Die(st);
      }
    }
    const auto w1 = std::chrono::steady_clock::now();
    if (Status st = db->ingest()->Commit(); !st.ok()) Die(st);
    const auto w2 = std::chrono::steady_clock::now();
    write_seconds += std::chrono::duration<double>(w1 - w0).count();
    commit_seconds += std::chrono::duration<double>(w2 - w1).count();
  }
  const IngestManager::Stats pre_compact = db->ingest()->stats();
  const auto c0 = std::chrono::steady_clock::now();
  if (Status st = db->ingest()->Compact(); !st.ok()) Die(st);
  const double compact_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - c0)
          .count();

  const double cells = static_cast<double>(kGenerations * kBatch);
  std::printf("phase,cells,seconds,cells_per_sec\n");
  std::printf("write,%zu,%.4f,%.0f\n", kGenerations * kBatch, write_seconds,
              cells / write_seconds);
  std::printf("commit,%zu,%.4f,%.0f\n", kGenerations * kBatch, commit_seconds,
              cells / commit_seconds);
  std::printf("compact,%zu,%.4f,%.0f\n", kGenerations * kBatch,
              compact_seconds, cells / compact_seconds);
  {
    ExecutionStats stats;
    stats.seconds = write_seconds + commit_seconds + compact_seconds;
    report.Add({{"phase", "ingest"}}, "ingest", kGenerations * kBatch, stats,
               {{"write_cells_per_sec", cells / write_seconds},
                {"commit_cells_per_sec", cells / commit_seconds},
                {"compact_seconds", compact_seconds},
                {"generations", static_cast<double>(kGenerations)},
                {"overlay_cells_pre_compact",
                 static_cast<double>(pre_compact.overlay_cells)}});
  }

  // --- Pass 2: pinned-reader latency, quiesced baseline. The golden is the
  // live post-compaction answer; the quiesced pin must reproduce it exactly.
  Result<query::GroupedResult> golden_or = ArrayConsolidate(*db->olap(), q);
  if (!golden_or.ok()) Die(golden_or.status());
  const query::GroupedResult golden = std::move(golden_or).value();

  constexpr size_t kReaderQueries = 2000;
  const LatencyPass quiesced =
      RunPinnedReaders(db.get(), q, &golden, kReaderQueries);

  // --- Pass 3: the same readers while a writer thread commits a fresh
  // generation per round and compacts every fourth round.
  std::atomic<bool> done{false};
  std::atomic<uint64_t> churn_commits{0};
  std::atomic<uint64_t> churn_compactions{0};
  std::atomic<uint64_t> writer_busy_micros{0};
  std::atomic<uint64_t> writer_rounds{0};
  std::thread writer([&] {
    size_t wcursor = 0;
    uint64_t round = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto r0 = std::chrono::steady_clock::now();
      for (size_t i = 0; i < kBatch; ++i) {
        const uint64_t gi =
            data.cell_global_indices[wcursor++ %
                                     data.cell_global_indices.size()];
        if (Status st = db->ingest()->Write(
                data.CellKeys(gi), {static_cast<int64_t>(round)});
            !st.ok()) {
          Die(st);
        }
      }
      if (Status st = db->ingest()->Commit(); !st.ok()) Die(st);
      churn_commits.fetch_add(1, std::memory_order_relaxed);
      if (round % 4 == 3) {
        if (Status st = db->ingest()->Compact(); !st.ok()) Die(st);
        churn_compactions.fetch_add(1, std::memory_order_relaxed);
      }
      ++round;
      writer_busy_micros.fetch_add(
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - r0)
                  .count()),
          std::memory_order_relaxed);
      writer_rounds.fetch_add(1, std::memory_order_relaxed);
      // Pace the rounds so "continuous" churn still leaves the readers
      // runnable on a single-CPU box; dozens of commits and compactions
      // land inside the reader window regardless.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  // No `expect`: the pin lands mid-churn, at whatever epoch is current —
  // the isolation claim is that its answer never changes from there on.
  const LatencyPass churn =
      RunPinnedReaders(db.get(), q, nullptr, kReaderQueries);
  done.store(true, std::memory_order_release);
  writer.join();

  // --- Pass 4: matched-load baseline. Replay the writer's measured duty
  // cycle (busy-spin the mean round time, sleep the same 2 ms) without any
  // database calls, under the same readers. The scheduler cost of a busy
  // neighbor is identical; only ingest's database-level interference is
  // absent — so churn/matched isolates what MVCC actually costs readers.
  const uint64_t rounds = std::max<uint64_t>(1, writer_rounds.load());
  const std::chrono::microseconds spin(writer_busy_micros.load() / rounds);
  std::atomic<bool> matched_done{false};
  std::thread dummy([&] {
    while (!matched_done.load(std::memory_order_acquire)) {
      const auto until = std::chrono::steady_clock::now() + spin;
      while (std::chrono::steady_clock::now() < until) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  const LatencyPass matched =
      RunPinnedReaders(db.get(), q, nullptr, kReaderQueries);
  matched_done.store(true, std::memory_order_release);
  dummy.join();

  const double ratio_quiesced =
      quiesced.p99_ms > 0 ? churn.p99_ms / quiesced.p99_ms : 0;
  const double ratio_matched =
      matched.p99_ms > 0 ? churn.p99_ms / matched.p99_ms : 0;
  std::printf("mode,queries,seconds,p50_ms,p99_ms,commits,compactions\n");
  std::printf("quiesced,%llu,%.3f,%.3f,%.3f,0,0\n",
              static_cast<unsigned long long>(quiesced.queries),
              quiesced.seconds, quiesced.p50_ms, quiesced.p99_ms);
  std::printf("matched,%llu,%.3f,%.3f,%.3f,0,0\n",
              static_cast<unsigned long long>(matched.queries),
              matched.seconds, matched.p50_ms, matched.p99_ms);
  std::printf("churn,%llu,%.3f,%.3f,%.3f,%llu,%llu\n",
              static_cast<unsigned long long>(churn.queries), churn.seconds,
              churn.p50_ms, churn.p99_ms,
              static_cast<unsigned long long>(churn_commits.load()),
              static_cast<unsigned long long>(churn_compactions.load()));
  std::printf("# churn/quiesced p99 ratio: %.3f (scheduler included)\n",
              ratio_quiesced);
  std::printf("# churn/matched-load p99 ratio: %.3f (target < 1.10; matched "
              "= equal CPU duty cycle, no database)\n",
              ratio_matched);

  const LatencyPass* passes[] = {&quiesced, &matched, &churn};
  const char* names[] = {"quiesced", "matched", "churn"};
  for (size_t i = 0; i < 3; ++i) {
    const LatencyPass& pass = *passes[i];
    const bool is_churn = i == 2;
    ExecutionStats stats;
    stats.seconds = pass.seconds;
    report.Add({{"mode", names[i]}}, "array", golden.num_groups(), stats,
               {{"p50_ms", pass.p50_ms},
                {"p99_ms", pass.p99_ms},
                {"queries", static_cast<double>(pass.queries)},
                {"p99_ratio_vs_quiesced", is_churn ? ratio_quiesced : 1.0},
                {"p99_ratio_vs_matched", is_churn ? ratio_matched : 1.0},
                {"commits", static_cast<double>(
                     is_churn ? churn_commits.load() : 0)},
                {"compactions", static_cast<double>(
                     is_churn ? churn_compactions.load() : 0)}});
  }
  report.WriteFile();
  return 0;
}
