// Ablation: chunk-size sweep (DESIGN.md §3). The paper keeps chunk
// dimensions constant and observes that the 40x40x40x1000 array's 800 small
// chunks scan slower than the x100 array's 80 larger chunks despite equal
// compressed bytes (§5.5.1). Here we sweep the chunk extent of the fourth
// dimension on a fixed array and measure Query 1 (sequential scan) and
// Query 2 (selective probing): bigger chunks help scans, smaller chunks help
// selective reads.
#include "bench_json.h"
#include "bench_util.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

int main() {
  std::printf("# Ablation — chunk size on 40x40x40x100 (10%% dense)\n");
  PrintHeader("chunk-size ablation",
              "Query 1 and Query 2 vs chunk extents (array engine)",
              "chunk_extents_query");
  BenchReport report("abl_chunk_size",
                     "Query 1 and Query 2 vs chunk extents (array engine)");
  for (uint32_t extent : {5u, 10u, 20u, 40u}) {
    gen::GenConfig config = gen::DataSet1(100);
    config.chunk_extents = {extent, extent, extent, 10};
    BenchFile file("abl_chunksize");
    std::unique_ptr<Database> db =
        MustBuild(file.path(), config, PaperOptions());
    const std::string label = std::to_string(extent) + "^3x10";
    {
      const Execution exec =
          MustRun(db.get(), EngineKind::kArray, gen::Query1(4));
      PrintRow(label + "_Q1", EngineKind::kArray, exec);
      report.Add({{"chunk_extents", label}, {"query", "Q1"}},
                 EngineKind::kArray, exec);
    }
    {
      const Execution exec =
          MustRun(db.get(), EngineKind::kArray, gen::Query2(4));
      PrintRow(label + "_Q2", EngineKind::kArray, exec);
      report.Add({{"chunk_extents", label}, {"query", "Q2"}},
                 EngineKind::kArray, exec);
    }
  }
  report.WriteFile();
  return 0;
}
