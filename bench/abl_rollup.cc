// Ablation: answering roll-up queries from a materialized consolidation
// (the §4.1 "result is another ADT instance" design) vs re-consolidating the
// base cube. The consolidated ADT is orders of magnitude smaller, so
// repeated coarse queries become nearly free — the aggregate-table pattern
// the paper's ADT output design enables.
#include "bench_json.h"
#include "bench_util.h"
#include "core/consolidate.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

int main() {
  std::printf("# Ablation — roll-up from a materialized consolidation\n");
  std::printf("query,source,seconds,disk_reads\n");
  BenchReport report("abl_rollup",
                     "roll-up from a materialized consolidation vs base cube");
  BenchFile file("abl_rollup");
  std::unique_ptr<Database> db =
      MustBuild(file.path(), gen::DataSet1(1000), PaperOptions());

  // Materialize the (h1, h1, h1, h1) consolidation once as a new ADT.
  query::ConsolidationQuery mid_q = gen::Query1(4);
  Stopwatch build_watch;
  Result<OlapArray> mid =
      ConsolidateToOlapArray(db->storage(), *db->olap(), db->DimPointers(),
                             mid_q, "agg_h1", ArrayOptions{});
  PARADISE_CHECK_OK(mid.status());
  std::printf("# materialization cost: %.4f s (one-time)\n",
              build_watch.ElapsedSeconds());

  // Roll-up: group every dimension at the coarser h2 level.
  for (int run = 0; run < 2; ++run) {
    // From the base cube (h2 is column 2 of the base dimensions).
    {
      PARADISE_CHECK_OK(db->DropCaches());
      query::ConsolidationQuery q;
      q.dims.resize(4);
      for (auto& d : q.dims) d.group_by_col = 2;
      const auto before = db->storage()->pool()->stats();
      Stopwatch watch;
      Result<query::GroupedResult> r = ArrayConsolidate(*db->olap(), q);
      PARADISE_CHECK_OK(r.status());
      ExecutionStats exec_stats;
      exec_stats.seconds = watch.ElapsedSeconds();
      exec_stats.io = db->storage()->pool()->stats().Delta(before);
      std::printf("h2_rollup_run%d,base_cube,%.4f,%llu\n", run,
                  exec_stats.seconds,
                  static_cast<unsigned long long>(exec_stats.io.disk_reads));
      report.Add({{"query", "h2_rollup_run" + std::to_string(run)},
                  {"source", "base_cube"}},
                 "array", r->num_groups(), exec_stats);
    }
    // From the materialized ADT (h2 is column 2 of the result dimensions,
    // whose members are h1 values).
    {
      PARADISE_CHECK_OK(db->DropCaches());
      query::ConsolidationQuery q;
      q.dims.resize(4);
      for (auto& d : q.dims) d.group_by_col = 2;
      const auto before = db->storage()->pool()->stats();
      Stopwatch watch;
      Result<query::GroupedResult> r = ArrayConsolidate(*mid, q);
      PARADISE_CHECK_OK(r.status());
      ExecutionStats exec_stats;
      exec_stats.seconds = watch.ElapsedSeconds();
      exec_stats.io = db->storage()->pool()->stats().Delta(before);
      std::printf("h2_rollup_run%d,materialized,%.4f,%llu\n", run,
                  exec_stats.seconds,
                  static_cast<unsigned long long>(exec_stats.io.disk_reads));
      report.Add({{"query", "h2_rollup_run" + std::to_string(run)},
                  {"source", "materialized"}},
                 "array", r->num_groups(), exec_stats);
    }
  }
  report.WriteFile();
  return 0;
}
