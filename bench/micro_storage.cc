// Microbenchmarks for the storage substrate: buffer-pool hit/miss paths and
// large-object create/read.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "storage/storage_manager.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

namespace {

struct StorageFixture {
  StorageFixture() : file("micro_storage") {
    StorageOptions options;
    options.page_size = 8192;
    options.buffer_pool_pages = 1024;
    PARADISE_CHECK_OK(storage.Create(file.path(), options));
  }
  BenchFile file;
  StorageManager storage;
};

void BM_BufferPoolHit(benchmark::State& state) {
  StorageFixture f;
  PageId id = kInvalidPageId;
  {
    Result<PageGuard> g = f.storage.pool()->NewPage();
    PARADISE_CHECK_OK(g.status());
    id = g->page_id();
  }
  for (auto _ : state) {
    Result<PageGuard> g = f.storage.pool()->FetchPage(id);
    benchmark::DoNotOptimize(g->data());
  }
}
BENCHMARK(BM_BufferPoolHit);

void BM_BufferPoolMissEvict(benchmark::State& state) {
  StorageFixture f;
  // Twice as many pages as frames: every fetch in the cycle misses.
  const size_t n = 2048;
  std::vector<PageId> ids;
  for (size_t i = 0; i < n; ++i) {
    Result<PageGuard> g = f.storage.pool()->NewPage();
    PARADISE_CHECK_OK(g.status());
    ids.push_back(g->page_id());
  }
  PARADISE_CHECK_OK(f.storage.pool()->FlushAndEvictAll());
  size_t i = 0;
  for (auto _ : state) {
    Result<PageGuard> g = f.storage.pool()->FetchPage(ids[i]);
    benchmark::DoNotOptimize(g->data());
    i = (i + 997) % n;  // stride to defeat the pool
  }
}
BENCHMARK(BM_BufferPoolMissEvict);

void BM_LargeObjectCreate(benchmark::State& state) {
  StorageFixture f;
  const std::string blob(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    Result<ObjectId> oid = f.storage.objects()->Create(blob);
    PARADISE_CHECK_OK(oid.status());
    PARADISE_CHECK_OK(f.storage.objects()->Free(*oid));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LargeObjectCreate)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_LargeObjectRead(benchmark::State& state) {
  StorageFixture f;
  const std::string blob(static_cast<size_t>(state.range(0)), 'x');
  Result<ObjectId> oid = f.storage.objects()->Create(blob);
  PARADISE_CHECK_OK(oid.status());
  for (auto _ : state) {
    Result<std::string> data = f.storage.objects()->Read(*oid);
    benchmark::DoNotOptimize(data->size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LargeObjectRead)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

}  // namespace

BENCHMARK_MAIN();
