// Ablation: the left-deep pipelined hash-join strawman of paper §4.3 vs the
// fused star-join consolidation operator. The paper argues the conventional
// plan pays for materializing a growing intermediate at every stage; this
// bench shows that cost directly (aux = total materialized rows).
#include "bench_json.h"
#include "bench_util.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

int main() {
  PrintHeader("Ablation",
              "star-join operator vs left-deep hash-join pipeline (Query 1)",
              "density_percent");
  BenchReport report(
      "abl_leftdeep_join",
      "star-join operator vs left-deep hash-join pipeline (Query 1)");
  const query::ConsolidationQuery q = gen::Query1(4);
  for (double pct : {1.0, 5.0, 10.0, 20.0}) {
    BenchFile file("abl_leftdeep");
    std::unique_ptr<Database> db =
        MustBuild(file.path(), gen::DataSet2(pct / 100.0), PaperOptions());
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f", pct);
    for (EngineKind kind : {EngineKind::kStarJoin, EngineKind::kLeftDeep,
                            EngineKind::kArray}) {
      const Execution exec = MustRun(db.get(), kind, q);
      PrintRow(label, kind, exec);
      report.Add({{"density_percent", label}}, kind, exec);
    }
  }
  report.WriteFile();
  return 0;
}
