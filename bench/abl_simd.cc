// Ablation: vectorized consolidation kernels (core/kernels/) — the scalar
// magic-reciprocal decode vs the AVX2 one, forced via ForceIsa on the same
// binary, so the delta is exactly the decode implementation. Three
// configurations per ISA:
//
//   decode_batch    pure offset->flat-index decode on synthetic offsets
//                   (the vectorized step in isolation)
//   array_serial    ArrayConsolidate, Query 1, warm pool
//   array_parallel  ParallelArrayConsolidate at 4 workers, warm pool
//   array_select    ArrayConsolidateWithSelection, Query 2, warm pool
//
// Writes BENCH_simd.json (shared bench schema) with a speedup_vs_scalar
// extra per run, so the scalar->vector ratio is one jq expression away.
#include <algorithm>
#include <cinttypes>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "core/consolidate.h"
#include "core/consolidate_select.h"
#include "core/kernels/consolidate_kernel.h"
#include "core/parallel.h"
#include "gen/datasets.h"

using namespace paradise;         // NOLINT(build/namespaces)
using namespace paradise::bench;  // NOLINT(build/namespaces)

namespace {

void Die(const Status& st) {
  std::fprintf(stderr, "%s\n", st.ToString().c_str());
  std::exit(1);
}

/// Best-of-reps wall time of `fn`.
template <typename Fn>
double BestSeconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

/// The decode microbenchmark: DataSet 1's 20x20x20x10 chunk shape, all four
/// dimensions grouped at the hX1 cardinality, a large batch of valid
/// offsets. Returns decoded offsets per second.
double DecodeThroughput(kernels::Isa isa) {
  const std::vector<uint32_t> dims = {20, 20, 20, 10};
  std::vector<std::pair<size_t, std::vector<uint64_t>>> grouped;
  uint64_t stride = 1;
  for (size_t d = dims.size(); d-- > 0;) {
    std::vector<uint64_t> contribution(dims[d]);
    for (size_t i = 0; i < contribution.size(); ++i) {
      contribution[i] = (i % gen::kGroupByCardinality) * stride;
    }
    grouped.insert(grouped.begin(), {d, std::move(contribution)});
    stride *= gen::kGroupByCardinality;
  }
  kernels::KernelTables tables;
  tables.BuildRaw(dims, grouped);

  constexpr size_t kOffsets = 1u << 16;
  constexpr int kInnerReps = 64;
  std::vector<uint32_t> offsets(kOffsets);
  std::mt19937 rng(12345);
  const uint32_t capacity = 20 * 20 * 20 * 10;
  for (uint32_t& off : offsets) off = rng() % capacity;
  std::vector<uint64_t> flat_idx(kOffsets);

  kernels::ForceIsa(isa);
  kernels::DecodeBatchFn decode = kernels::ActiveDecodeBatch();
  uint64_t sink = 0;
  const double seconds = BestSeconds(5, [&] {
    for (int rep = 0; rep < kInnerReps; ++rep) {
      decode(offsets.data(), offsets.size(), tables, flat_idx.data());
      sink += flat_idx[rep % kOffsets];
    }
  });
  kernels::ForceIsa(std::nullopt);
  if (sink == 0xdeadbeef) std::printf("#");  // keep the work observable
  return static_cast<double>(kOffsets) * kInnerReps / seconds;
}

struct ConfigResult {
  double seconds = 0.0;
  uint64_t groups = 0;
};

}  // namespace

int main() {
  kernels::Isa detected;
  {
    kernels::ForceIsa(std::nullopt);
    detected = kernels::ActiveIsa();
  }
  const std::vector<kernels::Isa> isas =
      detected == kernels::Isa::kScalar
          ? std::vector<kernels::Isa>{kernels::Isa::kScalar}
          : std::vector<kernels::Isa>{kernels::Isa::kScalar, detected};

  std::printf("# Ablation — consolidation kernel ISA (detected: %s)\n",
              std::string(kernels::IsaName(detected)).c_str());
  std::printf("config,isa,seconds,speedup_vs_scalar,throughput_cells_per_s\n");

  BenchReport report(
      "simd", "scalar vs vectorized consolidation kernels (ForceIsa on one "
              "binary; DataSet1(100), warm pool; detected isa: " +
                  std::string(kernels::IsaName(detected)) + ")");

  // --- decode_batch: the vectorized step in isolation. -------------------
  {
    double scalar_rate = 0.0;
    for (const kernels::Isa isa : isas) {
      const double rate = DecodeThroughput(isa);
      if (isa == kernels::Isa::kScalar) scalar_rate = rate;
      const double speedup = scalar_rate > 0 ? rate / scalar_rate : 1.0;
      std::printf("decode_batch,%s,%.4f,%.2f,%.3e\n",
                  std::string(kernels::IsaName(isa)).c_str(),
                  (1u << 16) * 64 / rate, speedup, rate);
      ExecutionStats stats;
      stats.seconds = (1u << 16) * 64 / rate;
      stats.kernel_isa = std::string(kernels::IsaName(isa));
      report.Add({{"config", "decode_batch"},
                  {"isa", std::string(kernels::IsaName(isa))}},
                 "kernel", 0, stats,
                 {{"speedup_vs_scalar", speedup},
                  {"throughput_cells_per_s", rate}});
    }
  }

  // --- engine configurations on DataSet 1 (40x40x40x100), warm pool. -----
  BenchFile file("abl_simd");
  std::unique_ptr<Database> db =
      MustBuild(file.path(), gen::DataSet1(100), PaperOptions());
  const query::ConsolidationQuery q1 = gen::Query1(4);
  const query::ConsolidationQuery q2 = gen::Query2(4);
  // Warm the buffer pool once; every timed run below hits memory, so the
  // ISA delta is CPU, not disk.
  if (auto r = ArrayConsolidate(*db->olap(), q1); !r.ok()) Die(r.status());

  struct EngineConfig {
    const char* name;
    std::function<ConfigResult()> run;
  };
  const std::vector<EngineConfig> configs = {
      {"array_serial",
       [&] {
         Result<query::GroupedResult> r = ArrayConsolidate(*db->olap(), q1);
         if (!r.ok()) Die(r.status());
         return ConfigResult{0.0, r->num_groups()};
       }},
      {"array_parallel4",
       [&] {
         Result<query::GroupedResult> r =
             ParallelArrayConsolidate(*db->olap(), q1, 4);
         if (!r.ok()) Die(r.status());
         return ConfigResult{0.0, r->num_groups()};
       }},
      {"array_select",
       [&] {
         Result<query::GroupedResult> r =
             ArrayConsolidateWithSelection(*db->olap(), q2);
         if (!r.ok()) Die(r.status());
         return ConfigResult{0.0, r->num_groups()};
       }},
  };

  for (const EngineConfig& config : configs) {
    double scalar_seconds = 0.0;
    for (const kernels::Isa isa : isas) {
      kernels::ForceIsa(isa);
      uint64_t groups = 0;
      const double seconds =
          BestSeconds(3, [&] { groups = config.run().groups; });
      kernels::ForceIsa(std::nullopt);
      if (isa == kernels::Isa::kScalar) scalar_seconds = seconds;
      const double speedup = seconds > 0 ? scalar_seconds / seconds : 1.0;
      std::printf("%s,%s,%.4f,%.2f,-\n", config.name,
                  std::string(kernels::IsaName(isa)).c_str(), seconds,
                  speedup);
      ExecutionStats stats;
      stats.seconds = seconds;
      stats.kernel_isa = std::string(kernels::IsaName(isa));
      report.Add({{"config", config.name},
                  {"isa", std::string(kernels::IsaName(isa))}},
                 "array", groups, stats, {{"speedup_vs_scalar", speedup}});
    }
  }

  report.WriteFile();
  return 0;
}
