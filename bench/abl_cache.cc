// Ablation: the consolidation result cache (query/result_cache.h) on the
// paper's Query 1 workload. Measures the three cache paths against the
// uncached engine run: an exact-signature hit (repeat query), a roll-up
// derivation (coarser group-by answered from the cached finer result via
// the hierarchy's IndexToIndex maps), and the miss overhead the cache adds
// when it cannot help. The acceptance bar: hits are >= 10x faster than the
// warm uncached run, and the miss path adds < 2% overhead.
#include <algorithm>
#include <string>

#include "bench_json.h"
#include "bench_util.h"
#include "gen/datasets.h"
#include "query/result_cache.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

namespace {

constexpr int kHitRuns = 5;

Execution MustRunCached(Database* db, EngineKind kind,
                        const query::ConsolidationQuery& q,
                        query::ConsolidationResultCache* cache) {
  RunQueryOptions options;
  options.cold = false;
  options.cache = cache;
  Result<Execution> exec = RunQuery(db, kind, q, options);
  PARADISE_CHECK_OK(exec.status());
  return std::move(exec).value();
}

void PrintCacheRow(const std::string& mode, const Execution& exec) {
  std::printf("%s,%s,%.6f,%llu,%zu\n", mode.c_str(),
              std::string(CacheOutcomeToString(exec.stats.cache_outcome))
                  .c_str(),
              exec.stats.seconds,
              static_cast<unsigned long long>(exec.stats.io.logical_reads),
              exec.result.num_groups());
}

}  // namespace

int main() {
  std::printf("# Ablation — consolidation result cache\n");
  std::printf("mode,cache_outcome,seconds,logical_reads,groups\n");
  BenchReport report("cache",
                     "consolidation result cache: exact hit, roll-up "
                     "derivation, and miss overhead on Query 1");
  BenchFile file("cache");
  std::unique_ptr<Database> db =
      MustBuild(file.path(), gen::DataSet1(100, 5), PaperOptions());

  const query::ConsolidationQuery q1 = gen::Query1(4);
  // The coarser follow-up: group every dimension by hX2 (column 2, 5
  // members) instead of hX1 (column 1, 10 members). The generator aligns
  // the two levels, so the cached Query 1 result derives it by roll-up.
  query::ConsolidationQuery coarse = q1;
  for (auto& d : coarse.dims) d.group_by_col = 2;

  // Uncached baselines: the paper's cold protocol and a warm re-run (the
  // fair comparison point for a cache hit, which never touches storage).
  const Execution uncached_cold = MustRun(db.get(), EngineKind::kArray, q1,
                                          /*cold=*/true);
  PrintCacheRow("uncached_cold", uncached_cold);
  report.Add({{"query", "query1"}, {"mode", "uncached_cold"}},
             EngineKind::kArray, uncached_cold);
  const Execution uncached_warm = MustRun(db.get(), EngineKind::kArray, q1,
                                          /*cold=*/false);
  PrintCacheRow("uncached_warm", uncached_warm);
  report.Add({{"query", "query1"}, {"mode", "uncached_warm"}},
             EngineKind::kArray, uncached_warm);
  const Execution coarse_uncached = MustRun(db.get(), EngineKind::kArray,
                                            coarse, /*cold=*/false);
  PrintCacheRow("coarse_uncached", coarse_uncached);
  report.Add({{"query", "coarse"}, {"mode", "uncached_warm"}},
             EngineKind::kArray, coarse_uncached);

  query::ConsolidationResultCache cache;  // default 64 MB budget

  // First cached run: a miss that runs the engine and inserts the result.
  // Its seconds vs uncached_warm bound the overhead the cache adds.
  const Execution miss = MustRunCached(db.get(), EngineKind::kArray, q1,
                                       &cache);
  PrintCacheRow("cached_miss", miss);
  const double overhead =
      uncached_warm.stats.seconds > 0.0
          ? miss.stats.seconds / uncached_warm.stats.seconds - 1.0
          : 0.0;
  report.Add({{"query", "query1"}, {"mode", "cached_miss"}},
             EngineKind::kArray, miss,
             {{"overhead_vs_uncached_warm", overhead}});

  // Repeated identical query: exact-signature hits. Report the best of a
  // few runs (hit latency is lookup + copy, well under a millisecond).
  Execution hit = MustRunCached(db.get(), EngineKind::kArray, q1, &cache);
  for (int i = 1; i < kHitRuns; ++i) {
    Execution again = MustRunCached(db.get(), EngineKind::kArray, q1, &cache);
    if (again.stats.seconds < hit.stats.seconds) hit = std::move(again);
  }
  PrintCacheRow("cached_hit", hit);
  const double hit_seconds = std::max(hit.stats.seconds, 1e-9);
  report.Add({{"query", "query1"}, {"mode", "cached_hit"}},
             EngineKind::kArray, hit,
             {{"speedup_vs_uncached_warm",
               uncached_warm.stats.seconds / hit_seconds},
              {"speedup_vs_uncached_cold",
               uncached_cold.stats.seconds / hit_seconds}});

  // Coarser follow-up: served by rolling up the cached Query 1 result
  // through the hX1 -> hX2 IndexToIndex maps instead of scanning the cube.
  const Execution derived = MustRunCached(db.get(), EngineKind::kArray,
                                          coarse, &cache);
  PrintCacheRow("cached_derived", derived);
  const double derived_seconds = std::max(derived.stats.seconds, 1e-9);
  report.Add(
      {{"query", "coarse"}, {"mode", "cached_derived"}}, EngineKind::kArray,
      derived,
      {{"derived", derived.stats.cache_outcome == CacheOutcome::kDerived
                       ? 1.0
                       : 0.0},
       {"source_rows", static_cast<double>(derived.stats.cache_source_rows)},
       {"speedup_vs_uncached_warm",
        coarse_uncached.stats.seconds / derived_seconds}});

  // Final cache snapshot, attached to a repeat of the derived query (now an
  // exact hit on the inserted roll-up result).
  const Execution coarse_hit = MustRunCached(db.get(), EngineKind::kArray,
                                             coarse, &cache);
  PrintCacheRow("coarse_hit", coarse_hit);
  const query::ResultCacheStats stats = cache.stats();
  report.Add({{"query", "coarse"}, {"mode", "cached_hit"}},
             EngineKind::kArray, coarse_hit,
             {{"cache_hits", static_cast<double>(stats.hits)},
              {"cache_misses", static_cast<double>(stats.misses)},
              {"cache_derived_hits", static_cast<double>(stats.derived_hits)},
              {"cache_entries", static_cast<double>(stats.entries)},
              {"cache_bytes_in_use", static_cast<double>(stats.bytes_in_use)}});

  report.WriteFile();
  return 0;
}
