// Codec ablation (DESIGN.md §4.3/§16): per-chunk storage format across the
// Data Set 2 density sweep. The paper always uses chunk-offset compression;
// we compare it against dense chunks, LZW-wrapped dense, the two v5
// bit-packed codecs (kDiffSequence, kBitPacked) and the kAuto selector,
// reporting stored bytes (absolute, per chunk, and the reduction against
// the offset-compressed baseline), raw decode throughput over the stored
// chunks, and the Figure 4 (Query 1) / Figure 8 (Query 2, low selectivity)
// scan times. Query results are asserted identical across formats — the
// codec must change the bytes, never the answer.
#include <chrono>

#include "array/chunked_array.h"
#include "bench_json.h"
#include "bench_util.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

namespace {

/// Full decode pass over every stored chunk via the scan path queries use:
/// returns cells decoded per second (best of three passes).
double DecodeThroughput(const ChunkedArray& array) {
  double best_seconds = 1e30;
  uint64_t cells = 0;
  for (int pass = 0; pass < 3; ++pass) {
    cells = 0;
    int64_t sink = 0;
    const auto start = std::chrono::steady_clock::now();
    const Status st = array.ScanChunkViews([&](uint64_t, const ChunkView& v) {
      v.ForEach([&](uint32_t off, int64_t value) {
        sink += value + off;
        ++cells;
      });
      return Status::OK();
    });
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!st.ok()) {
      std::fprintf(stderr, "bench: decode scan failed: %s\n",
                   st.ToString().c_str());
      std::exit(1);
    }
    // Keep the sink observable so the loop cannot be discarded.
    if (sink == 0x7fffffffffffffff) std::printf("#\n");
    if (seconds < best_seconds) best_seconds = seconds;
  }
  return best_seconds > 0 ? static_cast<double>(cells) / best_seconds : 0.0;
}

}  // namespace

int main() {
  std::printf("# Codec ablation — chunk format vs density on 40x40x40x100\n");
  std::printf(
      "density_percent,format,array_bytes,bytes_per_chunk,"
      "reduction_vs_offset_pct,decode_cells_per_sec,q1_seconds,q2_seconds,"
      "q1_disk_reads\n");
  BenchReport report(
      "codec",
      "chunk codec ablation on 40x40x40x100: stored bytes, decode "
      "throughput, and Figure 4/8 scan times per format");
  for (double pct : {0.5, 2.0, 10.0}) {
    uint64_t offset_bytes = 0;
    uint64_t baseline_groups = 0;
    for (ChunkFormat format :
         {ChunkFormat::kOffsetCompressed, ChunkFormat::kDense,
          ChunkFormat::kAuto, ChunkFormat::kLzwDense,
          ChunkFormat::kDiffSequence, ChunkFormat::kBitPacked}) {
      DatabaseOptions options = PaperOptions();
      options.array.chunk_format = format;
      BenchFile file("abl_codec");
      std::unique_ptr<Database> db =
          MustBuild(file.path(), gen::DataSet2(pct / 100.0), options);
      const Execution q1 = MustRun(db.get(), EngineKind::kArray,
                                   gen::Query1(4));
      const Execution q2 = MustRun(db.get(), EngineKind::kArray,
                                   gen::Query2(4));
      if (format == ChunkFormat::kOffsetCompressed) {
        baseline_groups = q1.result.num_groups();
      } else if (q1.result.num_groups() != baseline_groups) {
        std::fprintf(stderr, "bench: format changed the answer\n");
        std::exit(1);
      }
      const ChunkedArray& array = db->olap()->array();
      const uint64_t array_bytes = array.TotalDataBytes();
      uint64_t chunks = 0;
      for (uint64_t c = 0; c < db->olap()->layout().num_chunks(); ++c) {
        if (!array.ChunkIsEmpty(c)) ++chunks;
      }
      if (format == ChunkFormat::kOffsetCompressed) {
        offset_bytes = array_bytes;
      }
      const double reduction =
          offset_bytes > 0
              ? 100.0 * (1.0 - static_cast<double>(array_bytes) /
                                   static_cast<double>(offset_bytes))
              : 0.0;
      const double bytes_per_chunk =
          chunks > 0 ? static_cast<double>(array_bytes) /
                           static_cast<double>(chunks)
                     : 0.0;
      const double decode_rate = DecodeThroughput(array);
      char density[32];
      std::snprintf(density, sizeof(density), "%.1f", pct);
      std::printf("%.1f,%s,%llu,%.1f,%.1f,%.3e,%.4f,%.4f,%llu\n", pct,
                  std::string(ChunkFormatToString(format)).c_str(),
                  static_cast<unsigned long long>(array_bytes),
                  bytes_per_chunk, reduction, decode_rate, q1.stats.seconds,
                  q2.stats.seconds,
                  static_cast<unsigned long long>(q1.stats.io.disk_reads));
      report.Add({{"density_percent", density},
                  {"format", std::string(ChunkFormatToString(format))},
                  {"query", "q1"}},
                 EngineKind::kArray, q1,
                 {{"array_bytes", static_cast<double>(array_bytes)},
                  {"bytes_per_chunk", bytes_per_chunk},
                  {"reduction_vs_offset_pct", reduction},
                  {"decode_cells_per_sec", decode_rate}});
      report.Add({{"density_percent", density},
                  {"format", std::string(ChunkFormatToString(format))},
                  {"query", "q2"}},
                 EngineKind::kArray, q2);
    }
  }
  report.WriteFile();
  return 0;
}
