// Ablation: per-chunk storage format (DESIGN.md §4.3). The paper always uses
// chunk-offset compression; we compare it against dense chunks and the
// auto-selected format across the density range, reporting both the stored
// bytes and the Query 1 scan time.
#include "bench_json.h"
#include "bench_util.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

int main() {
  std::printf("# Ablation — chunk format vs density on 40x40x40x100\n");
  std::printf(
      "density_percent,format,array_bytes,q1_seconds,q1_disk_reads\n");
  BenchReport report("abl_chunk_format",
                     "chunk format vs density on 40x40x40x100 (Query 1)");
  for (double pct : {0.5, 2.0, 10.0, 20.0, 50.0}) {
    for (ChunkFormat format :
         {ChunkFormat::kOffsetCompressed, ChunkFormat::kDense,
          ChunkFormat::kAuto, ChunkFormat::kLzwDense}) {
      DatabaseOptions options = PaperOptions();
      options.array.chunk_format = format;
      BenchFile file("abl_chunkfmt");
      std::unique_ptr<Database> db =
          MustBuild(file.path(), gen::DataSet2(pct / 100.0), options);
      const Execution exec =
          MustRun(db.get(), EngineKind::kArray, gen::Query1(4));
      const uint64_t array_bytes = db->olap()->array().TotalDataBytes();
      char density[32];
      std::snprintf(density, sizeof(density), "%.1f", pct);
      std::printf("%.1f,%s,%llu,%.4f,%llu\n", pct,
                  std::string(ChunkFormatToString(format)).c_str(),
                  static_cast<unsigned long long>(array_bytes),
                  exec.stats.seconds,
                  static_cast<unsigned long long>(exec.stats.io.disk_reads));
      report.Add({{"density_percent", density},
                  {"format", std::string(ChunkFormatToString(format))}},
                 EngineKind::kArray, exec,
                 {{"array_bytes", static_cast<double>(array_bytes)}});
    }
  }
  report.WriteFile();
  return 0;
}
