// Ablation: §4.2 optimization 1 — skipping chunks that overlap no
// cross-product element — toggled off. Reports Query 2 time and chunk reads
// with and without the skip, across selectivities on the 40x40x40x1000
// array, where chunk skipping matters most (800 chunks, few selected).
#include "bench_json.h"
#include "bench_util.h"
#include "core/consolidate_select.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

int main() {
  std::printf("# Ablation — chunk skipping in the selection algorithm\n");
  std::printf(
      "per_dim_selectivity,skip,seconds,chunks_read,chunks_skipped,"
      "candidates,hits\n");
  BenchReport report("abl_chunk_skip",
                     "chunk skipping in the selection algorithm (Query 2)");
  for (uint32_t card : {2u, 5u, 10u}) {
    BenchFile file("abl_chunkskip");
    std::unique_ptr<Database> db = MustBuild(
        file.path(), gen::DataSet1(1000, /*select_cardinality=*/card),
        PaperOptions());
    const query::ConsolidationQuery q = gen::Query2(4);
    for (bool skip : {true, false}) {
      if (auto st = db->DropCaches(); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      ArraySelectOptions options;
      options.skip_non_overlapping_chunks = skip;
      ArraySelectStats stats;
      Stopwatch watch;
      Result<query::GroupedResult> result = ArrayConsolidateWithSelection(
          *db->olap(), q, nullptr, &stats, options);
      const double seconds = watch.ElapsedSeconds();
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      std::printf("1/%u,%s,%.4f,%llu,%llu,%llu,%llu\n", card,
                  skip ? "on" : "off", seconds,
                  static_cast<unsigned long long>(stats.chunks_read),
                  static_cast<unsigned long long>(stats.chunks_skipped),
                  static_cast<unsigned long long>(stats.candidates),
                  static_cast<unsigned long long>(stats.hits));
      // This bench times the core algorithm directly, so it assembles the
      // shared stats object itself (aux = chunks read, the §4.2 convention).
      ExecutionStats exec_stats;
      exec_stats.seconds = seconds;
      exec_stats.aux = stats.chunks_read;
      report.Add({{"per_dim_selectivity", "1/" + std::to_string(card)},
                  {"skip", skip ? "on" : "off"}},
                 "array", result->num_groups(), exec_stats,
                 {{"chunks_skipped", static_cast<double>(stats.chunks_skipped)},
                  {"candidates", static_cast<double>(stats.candidates)},
                  {"hits", static_cast<double>(stats.hits)}});
    }
  }
  report.WriteFile();
  return 0;
}
