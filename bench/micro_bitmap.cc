// Microbenchmarks for bitmaps: AND, population count, and set-bit iteration
// at fact-table scale (the §4.5 plan ANDs several and iterates one).
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "index/bitmap.h"

using namespace paradise;  // NOLINT(build/namespaces)

namespace {

Bitmap MakeBitmap(uint64_t bits, double density, uint64_t seed) {
  Bitmap b(bits);
  Random rng(seed);
  const auto count = static_cast<uint64_t>(density * static_cast<double>(bits));
  for (uint64_t i = 0; i < count; ++i) b.Set(rng.Uniform(bits));
  return b;
}

void BM_BitmapAnd(benchmark::State& state) {
  const uint64_t bits = static_cast<uint64_t>(state.range(0));
  Bitmap a = MakeBitmap(bits, 0.1, 1);
  const Bitmap b = MakeBitmap(bits, 0.1, 2);
  for (auto _ : state) {
    Bitmap tmp = a;
    benchmark::DoNotOptimize(tmp.And(b).ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bits / 8));
}
BENCHMARK(BM_BitmapAnd)->Arg(640000)->Arg(10000000);

void BM_BitmapCount(benchmark::State& state) {
  const Bitmap b =
      MakeBitmap(static_cast<uint64_t>(state.range(0)), 0.1, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.CountOnes());
  }
}
BENCHMARK(BM_BitmapCount)->Arg(640000)->Arg(10000000);

void BM_BitmapIterate(benchmark::State& state) {
  const uint64_t bits = 640000;
  const double density = static_cast<double>(state.range(0)) / 10000.0;
  const Bitmap b = MakeBitmap(bits, density, 4);
  for (auto _ : state) {
    uint64_t sum = 0;
    for (BitmapIterator it(&b); it.Valid(); it.Next()) sum += it.bit();
    benchmark::DoNotOptimize(sum);
  }
}
// densities 0.01 %, 1 %, 10 %
BENCHMARK(BM_BitmapIterate)->Arg(1)->Arg(100)->Arg(1000);

void BM_BitmapSerialize(benchmark::State& state) {
  const Bitmap b = MakeBitmap(640000, 0.1, 5);
  for (auto _ : state) {
    const std::string blob = b.Serialize();
    benchmark::DoNotOptimize(blob.size());
  }
}
BENCHMARK(BM_BitmapSerialize);

}  // namespace

BENCHMARK_MAIN();
