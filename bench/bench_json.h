// BenchReport: the machine-readable twin of the CSV every bench prints.
// Collects one record per measured run and writes BENCH_<name>.json into the
// working directory, so the scaling curves and regressions can be tracked
// across commits with one parser.
//
// Every bench emits the same schema (schema_version 1):
//
//   {"bench": "<name>", "schema_version": 1, "description": "...",
//    "runs": [{"sweep": {"<param>": "<value>", ...},    // strings
//              "engine": "<engine or method name>",
//              "groups": <result group count>,
//              "extra": {"<metric>": <number>, ...},    // optional
//              "stats": <ExecutionStats::ToJson()>}]}
//
// The "stats" object is identical in shape to the "query.stats" object
// printed by tools/dbstats (see ExecutionStats::ToJson in query/engine.h);
// the CI smoke step validates both against the same checker.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "query/engine.h"

namespace paradise::bench {

class BenchReport {
 public:
  /// Sweep parameters identifying one point ({{"last_dim_size", "50"}, ...}).
  using Sweep = std::vector<std::pair<std::string, std::string>>;
  /// Bench-specific numeric results that have no ExecutionStats home
  /// (speedups, byte footprints, ...).
  using Extra = std::vector<std::pair<std::string, double>>;

  BenchReport(std::string name, std::string description)
      : name_(std::move(name)), description_(std::move(description)) {}

  /// Records a run measured through the engine entry point.
  void Add(const Sweep& sweep, EngineKind kind, const Execution& exec,
           const Extra& extra = {}) {
    Add(sweep, std::string(EngineKindToString(kind)),
        exec.result.num_groups(), exec.stats, extra);
  }

  /// Records a run whose stats the bench assembled itself (timed around a
  /// core algorithm rather than RunQuery); `engine` then names the method.
  void Add(const Sweep& sweep, const std::string& engine, uint64_t groups,
           const ExecutionStats& stats, const Extra& extra = {}) {
    JsonWriter w;
    w.BeginObject();
    w.Key("sweep");
    w.BeginObject();
    for (const auto& [k, v] : sweep) w.KV(k, v);
    w.EndObject();
    w.KV("engine", engine);
    w.KV("groups", groups);
    if (!extra.empty()) {
      w.Key("extra");
      w.BeginObject();
      for (const auto& [k, v] : extra) w.KV(k, v);
      w.EndObject();
    }
    w.Key("stats");
    w.Raw(stats.ToJson());
    w.EndObject();
    runs_.push_back(std::move(w).Take());
  }

  /// Writes BENCH_<name>.json. Returns false (with a note on stderr) when
  /// the file cannot be written; benches treat that as a warning, not death,
  /// so a read-only working directory doesn't kill the CSV output.
  bool WriteFile() const {
    JsonWriter w;
    w.BeginObject();
    w.KV("bench", name_);
    w.KV("schema_version", uint64_t{1});
    w.KV("description", description_);
    w.Key("runs");
    w.BeginArray();
    for (const std::string& run : runs_) w.Raw(run);
    w.EndArray();
    w.EndObject();
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    const std::string& doc = w.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("# wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::string description_;
  std::vector<std::string> runs_;  // pre-rendered run objects
};

}  // namespace paradise::bench
