// Phase breakdown (paper §5.5.1): where the time goes in Query 1 on Data
// Set 1's 40x40x40x1000 array. The paper reports the fact-file scan alone
// costing ~3x the whole array algorithm, and relational value-based
// aggregation costing several times the array's position-based aggregation.
// This bench prints each engine's per-phase seconds so that split is
// directly visible.
#include "bench_util.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

namespace {

void PrintPhases(const char* dataset, EngineKind kind, const Execution& exec) {
  for (const auto& [phase, micros] : exec.stats.phases.phases()) {
    std::printf("%s,%s,%s,%.4f\n", dataset,
                std::string(EngineKindToString(kind)).c_str(), phase.c_str(),
                static_cast<double>(micros) * 1e-6);
  }
  std::printf("%s,%s,total,%.4f\n", dataset,
              std::string(EngineKindToString(kind)).c_str(),
              exec.stats.seconds);
}

}  // namespace

int main() {
  std::printf("# Phase breakdown — §5.5.1 scan/aggregate cost split\n");
  std::printf("dataset,engine,phase,seconds\n");
  for (uint32_t last : {100u, 1000u}) {
    BenchFile file("tab_phases");
    std::unique_ptr<Database> db =
        MustBuild(file.path(), gen::DataSet1(last), PaperOptions());
    const std::string dataset = "40x40x40x" + std::to_string(last);
    const query::ConsolidationQuery q1 = gen::Query1(4);
    PrintPhases(dataset.c_str(), EngineKind::kArray,
                MustRun(db.get(), EngineKind::kArray, q1));
    PrintPhases(dataset.c_str(), EngineKind::kStarJoin,
                MustRun(db.get(), EngineKind::kStarJoin, q1));
    const query::ConsolidationQuery q2 = gen::Query2(4);
    PrintPhases(dataset.c_str(), EngineKind::kArray,
                MustRun(db.get(), EngineKind::kArray, q2));
    PrintPhases(dataset.c_str(), EngineKind::kBitmap,
                MustRun(db.get(), EngineKind::kBitmap, q2));
  }
  return 0;
}
