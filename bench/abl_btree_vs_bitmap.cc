// Ablation: B-tree join indexes vs bitmap join indexes for selection
// (paper §4.4: "our tests showed that [bitmap indexing] dominated the other
// techniques over the full range of queries tested"). Query 2 selectivity
// sweep on the 40x40x40x100 array, both relational selection plans plus the
// array algorithm.
#include "bench_json.h"
#include "bench_util.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

int main() {
  PrintHeader("Ablation", "bitmap vs B-tree join-index selection (Query 2)",
              "per_dim_selectivity");
  BenchReport report("abl_btree_vs_bitmap",
                     "bitmap vs B-tree join-index selection (Query 2)");
  const query::ConsolidationQuery q = gen::Query2(4);
  for (uint32_t card : {2u, 5u, 10u}) {
    DatabaseOptions options = PaperOptions();
    options.build_btree_join_indexes = true;
    BenchFile file("abl_btreesel");
    std::unique_ptr<Database> db = MustBuild(
        file.path(), gen::DataSet1(100, /*select_cardinality=*/card),
        options);
    for (EngineKind kind : {EngineKind::kBitmap, EngineKind::kBTreeSelect,
                            EngineKind::kArray}) {
      const Execution exec = MustRun(db.get(), kind, q);
      PrintRow("1/" + std::to_string(card), kind, exec);
      report.Add({{"per_dim_selectivity", "1/" + std::to_string(card)}}, kind,
                 exec);
    }
  }
  report.WriteFile();
  return 0;
}
