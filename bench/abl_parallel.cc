// Ablation: parallel array consolidation (the paper's §6 future work) —
// Query 1 (no selection) and Query 2 (selection, §4.2) on Data Set 1's
// 40x40x40x1000 array across worker counts. Workers run the full per-chunk
// pipeline — fetch through the sharded buffer pool, decode, aggregate —
// with chunk read-ahead on the storage manager's background I/O pool.
//
// Besides the CSV, the bench writes BENCH_abl_parallel.json in the shared
// bench schema (per path, threads → seconds / speedup plus buffer-pool
// counters) so the scaling curve can be tracked across commits.
#include <algorithm>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "core/parallel.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

namespace {

struct RunPoint {
  size_t threads = 0;
  double seconds = 0.0;
  double speedup = 1.0;
  BufferPoolStats io;
};

/// One scaling curve: warm the pool once, then time each thread count on the
/// warm pool (the CPU-scaling measurement; cold runs would time the disk).
/// Each point is the best of `kReps` runs to damp scheduler noise.
template <typename RunFn>
std::vector<RunPoint> Sweep(Database* db, const std::vector<size_t>& counts,
                            RunFn&& run) {
  constexpr int kReps = 3;
  std::vector<RunPoint> points;
  double baseline = 0.0;
  for (size_t threads : counts) {
    RunPoint p;
    p.threads = threads;
    p.seconds = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      BufferPool* pool = db->storage()->pool();
      const BufferPoolStats before = pool->stats();
      Stopwatch watch;
      run(threads);
      const double seconds = watch.ElapsedSeconds();
      if (seconds < p.seconds) {
        p.seconds = seconds;
        p.io = pool->stats().Delta(before);
      }
    }
    if (threads == counts.front()) baseline = p.seconds;
    p.speedup = p.seconds > 0 ? baseline / p.seconds : 1.0;
    points.push_back(p);
  }
  return points;
}

void PrintCsv(const char* path_name, const std::vector<RunPoint>& points) {
  for (const RunPoint& p : points) {
    std::printf("%s,%zu,%.4f,%.2f,%llu,%llu,%llu,%llu\n", path_name, p.threads,
                p.seconds, p.speedup,
                static_cast<unsigned long long>(p.io.logical_reads),
                static_cast<unsigned long long>(p.io.disk_reads),
                static_cast<unsigned long long>(p.io.prefetched),
                static_cast<unsigned long long>(p.io.prefetch_hits));
  }
}

void Report(BenchReport* report, const char* path_name,
            const std::vector<RunPoint>& points) {
  for (const RunPoint& p : points) {
    ExecutionStats stats;
    stats.seconds = p.seconds;
    stats.io = p.io;
    report->Add({{"path", path_name}, {"threads", std::to_string(p.threads)}},
                "array", 0, stats, {{"speedup", p.speedup}});
  }
}

void Die(const Status& st) {
  std::fprintf(stderr, "%s\n", st.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  std::printf(
      "# Ablation — parallel consolidation (Data Set 1, 40x40x40x1000)\n");
  std::printf(
      "path,threads,seconds,speedup_vs_1,logical_reads,disk_reads,"
      "prefetched,prefetch_hits\n");
  BenchFile file("abl_parallel");
  std::unique_ptr<Database> db =
      MustBuild(file.path(), gen::DataSet1(1000), PaperOptions());

  std::vector<size_t> counts;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    if (threads > 2 * hw) break;
    counts.push_back(threads);
  }

  // No-selection path (§4.1 parallelized): Query 1, grouped on every dim.
  const query::ConsolidationQuery q1 = gen::Query1(4);
  if (auto st = db->DropCaches(); !st.ok()) Die(st);
  if (auto r = ParallelArrayConsolidate(*db->olap(), q1, 2); !r.ok()) {
    Die(r.status());  // warm-up: populate the pool once
  }
  const std::vector<RunPoint> no_sel = Sweep(db.get(), counts, [&](size_t t) {
    Result<query::GroupedResult> r = ParallelArrayConsolidate(*db->olap(), q1, t);
    if (!r.ok()) Die(r.status());
  });
  PrintCsv("no_selection", no_sel);

  // Selection path (§4.2 parallelized): Query 2, equality selection on hX2
  // of every dimension.
  const query::ConsolidationQuery q2 = gen::Query2(4);
  if (auto st = db->DropCaches(); !st.ok()) Die(st);
  if (auto r = ParallelArrayConsolidateWithSelection(*db->olap(), q2, 2);
      !r.ok()) {
    Die(r.status());  // warm-up
  }
  const std::vector<RunPoint> sel = Sweep(db.get(), counts, [&](size_t t) {
    Result<query::GroupedResult> r =
        ParallelArrayConsolidateWithSelection(*db->olap(), q2, t);
    if (!r.ok()) Die(r.status());
  });
  PrintCsv("selection", sel);

  // Skewed chunk layout: the same cube tiled into a handful of huge chunks,
  // the shape whole-chunk scheduling cannot balance — with more workers than
  // chunks, the extra threads idle. Morsel scheduling (core/morsel.h) splits
  // each chunk into cell ranges workers steal, so 8 threads stay busy on 2
  // chunks. min_cells = UINT32_MAX degenerates to the old whole-chunk
  // cursor; the default splits.
  std::printf("# skewed layout: 2 chunks of 1.6M cells, 8 workers\n");
  gen::GenConfig skew_config = gen::DataSet1(50);
  skew_config.chunk_extents = {40, 40, 40, 25};  // 2 chunks total
  BenchFile skew_file("abl_parallel_skew");
  std::unique_ptr<Database> skew_db =
      MustBuild(skew_file.path(), skew_config, PaperOptions());
  if (auto r = ParallelArrayConsolidate(*skew_db->olap(), q1, 2); !r.ok()) {
    Die(r.status());  // warm-up
  }
  const size_t skew_threads = 8;
  MorselOptions chunk_cursor;
  chunk_cursor.min_cells = UINT32_MAX;
  std::vector<RunPoint> skew_points;
  ParallelConsolidateStats last_stats;
  for (const bool morsels : {false, true}) {
    const MorselOptions& mo = morsels ? MorselOptions{} : chunk_cursor;
    RunPoint p;
    p.threads = skew_threads;
    p.seconds = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch watch;
      ParallelConsolidateStats stats;
      Result<query::GroupedResult> r = ParallelArrayConsolidate(
          *skew_db->olap(), q1, skew_threads, nullptr, &stats, nullptr, mo);
      if (!r.ok()) Die(r.status());
      const double seconds = watch.ElapsedSeconds();
      if (seconds < p.seconds) {
        p.seconds = seconds;
        last_stats = stats;
      }
    }
    p.speedup = skew_points.empty()
                    ? 1.0
                    : skew_points.front().seconds / p.seconds;
    std::printf("%s,%zu,%.4f,%.2f,%llu,%llu,%llu,%llu\n",
                morsels ? "skewed_morsel" : "skewed_chunk_cursor",
                skew_threads, p.seconds, p.speedup,
                static_cast<unsigned long long>(last_stats.chunks_read),
                static_cast<unsigned long long>(last_stats.morsels),
                static_cast<unsigned long long>(last_stats.morsel_splits),
                static_cast<unsigned long long>(last_stats.morsel_steals));
    skew_points.push_back(p);
  }

  // Serial §4.2 reference at the same warm pool, for the parallel-vs-serial
  // comparison the JSON carries.
  double serial_select_seconds = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    Result<query::GroupedResult> r =
        ArrayConsolidateWithSelection(*db->olap(), q2);
    if (!r.ok()) Die(r.status());
    serial_select_seconds = std::min(serial_select_seconds,
                                     watch.ElapsedSeconds());
  }
  std::printf("selection_serial,1,%.4f,1.00,0,0,0,0\n", serial_select_seconds);

  BenchReport report("abl_parallel",
                     "parallel consolidation scaling (DataSet1(1000), warm "
                     "pool, hardware_threads=" + std::to_string(hw) + ")");
  Report(&report, "no_selection", no_sel);
  Report(&report, "selection", sel);
  for (size_t i = 0; i < skew_points.size(); ++i) {
    ExecutionStats stats;
    stats.seconds = skew_points[i].seconds;
    report.Add({{"path", i == 0 ? "skewed_chunk_cursor" : "skewed_morsel"},
                {"threads", std::to_string(skew_threads)}},
               "array", 0, stats,
               {{"speedup_vs_chunk_cursor", skew_points[i].speedup}});
  }
  {
    ExecutionStats stats;
    stats.seconds = serial_select_seconds;
    report.Add({{"path", "selection_serial"}, {"threads", "1"}}, "array", 0,
               stats);
  }
  report.WriteFile();
  return 0;
}
