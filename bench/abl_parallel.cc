// Ablation: parallel array consolidation (the paper's §6 future work) —
// Query 1 on Data Set 1's 40x40x40x1000 array across worker counts. Chunk
// reads stay serial (one storage manager, as in the paper); decode +
// position-based aggregation parallelize.
#include <thread>

#include "bench_util.h"
#include "core/parallel.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

int main() {
  std::printf("# Ablation — parallel consolidation (Query 1, 40x40x40x1000)\n");
  std::printf("threads,seconds,speedup_vs_1\n");
  BenchFile file("abl_parallel");
  std::unique_ptr<Database> db =
      MustBuild(file.path(), gen::DataSet1(1000), PaperOptions());
  const query::ConsolidationQuery q = gen::Query1(4);

  double baseline = 0.0;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    if (threads > 2 * hw) break;
    // Warm run then measured run, to time CPU scaling rather than cold I/O.
    for (int warm = 0; warm < 2; ++warm) {
      if (auto st = db->DropCaches(); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      Stopwatch watch;
      Result<query::GroupedResult> result =
          ParallelArrayConsolidate(*db->olap(), q, threads);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      if (warm == 1) {
        const double seconds = watch.ElapsedSeconds();
        if (threads == 1) baseline = seconds;
        std::printf("%zu,%.4f,%.2f\n", threads, seconds,
                    baseline > 0 ? baseline / seconds : 1.0);
      }
    }
  }
  return 0;
}
