// Microbenchmarks for the B+tree: insert, point lookup, and range iteration
// at several tree sizes.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/random.h"
#include "index/btree.h"
#include "storage/storage_manager.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

namespace {

struct TreeFixture {
  TreeFixture() : file("micro_btree") {
    StorageOptions options;
    options.page_size = 8192;
    options.buffer_pool_pages = 4096;
    PARADISE_CHECK_OK(storage.Create(file.path(), options));
  }
  BenchFile file;
  StorageManager storage;
};

void BM_BTreeInsertSequential(benchmark::State& state) {
  TreeFixture f;
  Result<BTree> tree = BTree::Create(f.storage.pool());
  PARADISE_CHECK_OK(tree.status());
  int64_t key = 0;
  for (auto _ : state) {
    PARADISE_CHECK_OK(tree->Insert(key, key));
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeInsertSequential);

void BM_BTreeInsertRandom(benchmark::State& state) {
  TreeFixture f;
  Result<BTree> tree = BTree::Create(f.storage.pool());
  PARADISE_CHECK_OK(tree.status());
  Random rng(1);
  int64_t i = 0;
  for (auto _ : state) {
    PARADISE_CHECK_OK(
        tree->Insert(static_cast<int64_t>(rng.Next() >> 1), i++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeInsertRandom);

void BM_BTreeLookup(benchmark::State& state) {
  TreeFixture f;
  Result<BTree> tree = BTree::Create(f.storage.pool());
  PARADISE_CHECK_OK(tree.status());
  const int64_t n = state.range(0);
  for (int64_t k = 0; k < n; ++k) PARADISE_CHECK_OK(tree->Insert(k, k));
  Random rng(2);
  for (auto _ : state) {
    Result<std::optional<int64_t>> v =
        tree->GetFirst(static_cast<int64_t>(rng.Uniform(n)));
    benchmark::DoNotOptimize(v->has_value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_BTreeFullScan(benchmark::State& state) {
  TreeFixture f;
  Result<BTree> tree = BTree::Create(f.storage.pool());
  PARADISE_CHECK_OK(tree.status());
  const int64_t n = state.range(0);
  for (int64_t k = 0; k < n; ++k) PARADISE_CHECK_OK(tree->Insert(k, k));
  for (auto _ : state) {
    Result<BTreeIterator> it = tree->Begin();
    PARADISE_CHECK_OK(it.status());
    int64_t sum = 0;
    while (it->Valid()) {
      sum += it->value();
      PARADISE_CHECK_OK(it->Next());
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeFullScan)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
