// Figure 5 (paper §5.5.1): Query 1 on Data Set 2 — 40x40x40x100 with the
// valid-cell count swept so density covers 0.5 %..20 %. Array consolidation
// vs relational star-join consolidation, cold buffers.
//
// Expected shape (paper): the array wins across the density range; the
// relational time grows linearly with tuple count while the array's
// compressed size (and so its scan time) grows with the same slope but a
// smaller constant.
#include "bench_json.h"
#include "bench_util.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

int main() {
  PrintHeader("Figure 5", "Query 1 on Data Set 2 (density sweep)",
              "density_percent");
  BenchReport report("fig05", "Query 1 on Data Set 2 (density sweep)");
  const query::ConsolidationQuery q = gen::Query1(4);
  for (double pct : {0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 20.0}) {
    BenchFile file("fig05");
    std::unique_ptr<Database> db =
        MustBuild(file.path(), gen::DataSet2(pct / 100.0), PaperOptions());
    for (EngineKind kind : {EngineKind::kArray, EngineKind::kStarJoin}) {
      const Execution exec = MustRun(db.get(), kind, q);
      char label[32];
      std::snprintf(label, sizeof(label), "%.1f", pct);
      PrintRow(label, kind, exec);
      report.Add({{"density_percent", label}}, kind, exec);
    }
  }
  report.WriteFile();
  return 0;
}
