// Microbenchmarks for the chunk layer: serialization in both formats,
// binary-search probing (the §4.2 inner loop), and layout arithmetic.
#include <benchmark/benchmark.h>

#include "array/chunk.h"
#include "array/chunk_layout.h"
#include "common/random.h"

using namespace paradise;  // NOLINT(build/namespaces)

namespace {

Chunk MakeChunk(uint32_t capacity, double density, uint64_t seed) {
  Chunk chunk(capacity);
  Random rng(seed);
  for (uint32_t off = 0; off < capacity; ++off) {
    if (rng.Bernoulli(density)) {
      (void)chunk.AppendSorted(off, rng.UniformRange(1, 100));
    }
  }
  return chunk;
}

void BM_ChunkSerializeSparse(benchmark::State& state) {
  const Chunk chunk = MakeChunk(80000, 0.01, 1);
  for (auto _ : state) {
    const std::string blob = chunk.Serialize(ChunkFormat::kOffsetCompressed);
    benchmark::DoNotOptimize(blob.size());
  }
}
BENCHMARK(BM_ChunkSerializeSparse);

void BM_ChunkSerializeDense(benchmark::State& state) {
  const Chunk chunk = MakeChunk(80000, 0.5, 2);
  for (auto _ : state) {
    const std::string blob = chunk.Serialize(ChunkFormat::kDense);
    benchmark::DoNotOptimize(blob.size());
  }
}
BENCHMARK(BM_ChunkSerializeDense);

void BM_ChunkDeserialize(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  const std::string blob =
      MakeChunk(80000, density, 3).Serialize(ChunkFormat::kOffsetCompressed);
  for (auto _ : state) {
    Result<Chunk> chunk = Chunk::Deserialize(blob);
    benchmark::DoNotOptimize(chunk->num_valid());
  }
}
BENCHMARK(BM_ChunkDeserialize)->Arg(1)->Arg(10)->Arg(50);

void BM_ChunkProbe(benchmark::State& state) {
  const Chunk chunk = MakeChunk(80000, 0.01, 4);
  Random rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chunk.Get(static_cast<uint32_t>(rng.Uniform(80000))).has_value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChunkProbe);

void BM_LayoutArithmetic(benchmark::State& state) {
  Result<ChunkLayout> layout =
      ChunkLayout::Make({40, 40, 40, 1000}, {20, 20, 20, 10});
  Random rng(6);
  CellCoords coords(4);
  for (auto _ : state) {
    coords[0] = static_cast<uint32_t>(rng.Uniform(40));
    coords[1] = static_cast<uint32_t>(rng.Uniform(40));
    coords[2] = static_cast<uint32_t>(rng.Uniform(40));
    coords[3] = static_cast<uint32_t>(rng.Uniform(1000));
    benchmark::DoNotOptimize(layout->CoordsToChunk(coords));
    benchmark::DoNotOptimize(layout->CoordsToOffset(coords));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LayoutArithmetic);

}  // namespace

BENCHMARK_MAIN();
