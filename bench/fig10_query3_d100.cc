// Figure 10 (paper §5.6): Query 3 — selection and group-by on three of the
// four dimensions, the fourth collapsed — on the 40x40x40x100 array. The
// paper's observation: dropping one dimension's selection barely changes the
// relational algorithm's time (one less bitmap fetch/AND, but the dominant
// cost — retrieving the selected tuples — stays), because 90 % of its time
// is tuple retrieval.
#include "bench_json.h"
#include "bench_util.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

int main() {
  PrintHeader("Figure 10", "Query 3 on 40x40x40x100 (3-dim selection sweep)",
              "per_dim_selectivity");
  BenchReport report("fig10",
                     "Query 3 on 40x40x40x100 (3-dim selection sweep)");
  const query::ConsolidationQuery q = gen::Query3(4, 3);
  for (uint32_t card : {2u, 3u, 4u, 5u, 8u, 10u}) {
    BenchFile file("fig10");
    std::unique_ptr<Database> db = MustBuild(
        file.path(), gen::DataSet1(100, /*select_cardinality=*/card),
        PaperOptions());
    for (EngineKind kind : {EngineKind::kArray, EngineKind::kBitmap}) {
      const Execution exec = MustRun(db.get(), kind, q);
      PrintRow("1/" + std::to_string(card), kind, exec);
      report.Add({{"per_dim_selectivity", "1/" + std::to_string(card)}}, kind,
                 exec);
    }
  }
  report.WriteFile();
  return 0;
}
