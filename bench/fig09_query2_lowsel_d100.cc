// Figure 9 (paper §5.6): the low-selectivity regime of Query 2 on the
// 40x40x40x100 array, the companion of Figure 8.
#include "bench_json.h"
#include "bench_util.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

int main() {
  PrintHeader("Figure 9",
              "Query 2 low-selectivity regime on 40x40x40x100 (crossover)",
              "per_dim_selectivity");
  BenchReport report(
      "fig09", "Query 2 low-selectivity regime on 40x40x40x100 (crossover)");
  const query::ConsolidationQuery q = gen::Query2(4);
  for (uint32_t card : {5u, 8u, 10u, 13u, 16u, 20u}) {
    BenchFile file("fig09");
    std::unique_ptr<Database> db = MustBuild(
        file.path(), gen::DataSet1(100, /*select_cardinality=*/card),
        PaperOptions());
    for (EngineKind kind : {EngineKind::kArray, EngineKind::kBitmap}) {
      const Execution exec = MustRun(db.get(), kind, q);
      PrintRow("1/" + std::to_string(card), kind, exec);
      report.Add({{"per_dim_selectivity", "1/" + std::to_string(card)}}, kind,
                 exec);
    }
  }
  report.WriteFile();
  return 0;
}
