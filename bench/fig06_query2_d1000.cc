// Figure 6 (paper §5.6): Query 2 — Query 1 plus an equality selection on the
// hX2 attribute of every dimension — on the 40x40x40x1000 array (Data Set 1,
// 1 % dense). The hX2 cardinality sweeps {2,3,4,5,8,10}, giving per-
// dimension selectivity s = 1/2..1/10 and star selectivity S = s^4 from
// 0.0625 down to 0.0001. OLAP Array selection algorithm vs bitmap+fact-file.
//
// Expected shape (paper): the array wins while S > ~0.00024; at the very
// lowest selectivities the bitmap plan edges ahead because the few
// qualifying cells are scattered across almost as many array chunks.
#include "bench_json.h"
#include "bench_util.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

int main() {
  PrintHeader("Figure 6", "Query 2 on 40x40x40x1000 (selectivity sweep)",
              "per_dim_selectivity");
  BenchReport report("fig06", "Query 2 on 40x40x40x1000 (selectivity sweep)");
  const query::ConsolidationQuery q = gen::Query2(4);
  for (uint32_t card : {2u, 3u, 4u, 5u, 8u, 10u}) {
    BenchFile file("fig06");
    std::unique_ptr<Database> db = MustBuild(
        file.path(), gen::DataSet1(1000, /*select_cardinality=*/card),
        PaperOptions());
    for (EngineKind kind : {EngineKind::kArray, EngineKind::kBitmap}) {
      const Execution exec = MustRun(db.get(), kind, q);
      PrintRow("1/" + std::to_string(card), kind, exec);
      report.Add({{"per_dim_selectivity", "1/" + std::to_string(card)}}, kind,
                 exec);
    }
  }
  report.WriteFile();
  return 0;
}
