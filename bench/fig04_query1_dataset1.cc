// Figure 4 (paper §5.5.1): Query 1 — full consolidation, group by hX1 on all
// four dimensions — on Data Set 1: 40x40x40x{50,100,1000}, 640 000 valid
// cells (densities 20 %, 10 %, 1 %). Array consolidation vs relational
// star-join consolidation, cold buffers.
//
// Expected shape (paper): the array algorithm wins by a wide margin at every
// size; its time grows mildly with the fourth dimension because the same
// data spreads over more, smaller chunks (40 -> 80 -> 800 chunks).
#include "bench_json.h"
#include "bench_util.h"
#include "gen/datasets.h"

using namespace paradise;        // NOLINT(build/namespaces)
using namespace paradise::bench; // NOLINT(build/namespaces)

int main() {
  PrintHeader("Figure 4", "Query 1 on Data Set 1 (array vs star-join)",
              "last_dim_size");
  BenchReport report("fig04", "Query 1 on Data Set 1 (array vs star-join)");
  const query::ConsolidationQuery q = gen::Query1(4);
  for (uint32_t last : {50u, 100u, 1000u}) {
    BenchFile file("fig04_" + std::to_string(last));
    std::unique_ptr<Database> db =
        MustBuild(file.path(), gen::DataSet1(last), PaperOptions());
    for (EngineKind kind : {EngineKind::kArray, EngineKind::kStarJoin}) {
      const Execution exec = MustRun(db.get(), kind, q);
      PrintRow(std::to_string(last), kind, exec);
      report.Add({{"last_dim_size", std::to_string(last)}}, kind, exec);
    }
  }
  report.WriteFile();
  return 0;
}
