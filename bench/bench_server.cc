// Server load bench: drives olapd's serving stack (server/server.h) with
// 1 → 256 concurrent clients over the shared demo cube and reports p50/p99
// latency and QPS per client count, plus the cost of admission control
// (SERVER_BUSY retries). Every reply is byte-compared against a golden
// serialization produced by the single-threaded engine before the server
// starts — the bench dies on the first divergence, so a passing run is a
// correctness statement about the concurrent path, not just a timing.
//
// The server runs in-process (loopback TCP, ephemeral port), so the numbers
// include the full wire round-trip: frame encode, socket, admission queue,
// epoch-pinned session, engine or result cache, frame decode.
//
// Besides the CSV, writes BENCH_server.json in the shared bench schema
// (sweep: clients → seconds + extras qps/p50_ms/p99_ms/busy_retries).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "gen/generator.h"
#include "query/planner.h"
#include "schema/demo_cube.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"

using namespace paradise;         // NOLINT(build/namespaces)
using namespace paradise::bench;  // NOLINT(build/namespaces)

namespace {

void Die(const Status& st) {
  std::fprintf(stderr, "bench_server: %s\n", st.ToString().c_str());
  std::exit(1);
}

/// The mixed workload: Query 1-style full roll-ups at two granularities plus
/// two selection queries, so planner, array engine, bitmap-eligible paths
/// and the result cache all see concurrent traffic.
std::vector<std::string> Workload() {
  return {
      "select sum(volume), dim0.h01, dim1.h11, dim2.h21 from cube "
      "group by dim0.h01, dim1.h11, dim2.h21",
      "select sum(volume), dim0.h02, dim2.h22 from cube "
      "group by dim0.h02, dim2.h22",
      "select sum(volume), dim0.h01 from cube "
      "where dim1.h12 = '" + gen::AttrValue(1, 2, 0) + "' group by dim0.h01",
      "select avg(volume), dim1.h11 from cube "
      "where dim2.h22 = '" + gen::AttrValue(2, 2, 1) + "' "
      "and dim0.h02 = '" + gen::AttrValue(0, 2, 2) + "' group by dim1.h11",
  };
}

/// Golden bytes per workload query from the single-threaded engine, via the
/// same serializer the wire uses.
std::vector<std::string> Goldens(Database* db,
                                 const std::vector<std::string>& workload) {
  std::vector<std::string> goldens;
  for (const std::string& sql : workload) {
    Result<SqlExecution> exec = RunSql(db, sql);
    if (!exec.ok()) Die(exec.status());
    exec->execution.result.SortCanonical();
    std::string bytes;
    server::AppendGroupedResult(exec->execution.result, &bytes);
    goldens.push_back(std::move(bytes));
  }
  return goldens;
}

struct ClientTally {
  std::vector<uint64_t> latency_micros;
  uint64_t busy_retries = 0;
  uint64_t divergences = 0;
  uint64_t err_timeout = 0;
  uint64_t err_cancelled = 0;
  uint64_t err_other = 0;
};

/// One client: its own connection, `queries` requests round-robin over the
/// workload (phase-shifted by client id), SERVER_BUSY retried with a small
/// exponential backoff.
ClientTally RunClient(const std::string& host, uint16_t port,
                      const std::vector<std::string>& workload,
                      const std::vector<std::string>& goldens, size_t id,
                      size_t queries) {
  ClientTally tally;
  Result<std::unique_ptr<server::OlapClient>> client_or =
      server::OlapClient::Connect(host, port);
  if (!client_or.ok()) Die(client_or.status());
  std::unique_ptr<server::OlapClient> client = std::move(client_or).value();

  tally.latency_micros.reserve(queries);
  for (size_t i = 0; i < queries; ++i) {
    const size_t w = (id + i) % workload.size();
    const auto start = std::chrono::steady_clock::now();
    server::OlapClient::Reply reply;
    uint32_t backoff_us = 50;
    for (;;) {
      Result<server::OlapClient::Reply> reply_or =
          client->Query(workload[w]);
      if (!reply_or.ok()) Die(reply_or.status());
      reply = std::move(reply_or).value();
      if (reply.ok ||
          reply.error.error != server::WireError::kServerBusy) {
        break;
      }
      ++tally.busy_retries;
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us = std::min<uint32_t>(backoff_us * 2, 5000);
    }
    const auto end = std::chrono::steady_clock::now();
    if (!reply.ok) {
      // Typed errors are tallied per code rather than fatal: with deadlines
      // and cancellation in the protocol they are expected outcomes, and the
      // bench's job is to report their frequency, not crash on them.
      switch (reply.error.error) {
        case server::WireError::kQueryTimeout: ++tally.err_timeout; break;
        case server::WireError::kCancelled: ++tally.err_cancelled; break;
        default: ++tally.err_other; break;
      }
      continue;
    }

    std::string bytes;
    server::AppendGroupedResult(reply.result.result, &bytes);
    if (bytes != goldens[w]) ++tally.divergences;

    tally.latency_micros.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(end - start)
            .count()));
  }
  return tally;
}

uint64_t Percentile(std::vector<uint64_t>* sorted_micros, double p) {
  if (sorted_micros->empty()) return 0;
  const size_t idx = std::min(
      sorted_micros->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_micros->size())));
  return (*sorted_micros)[idx];
}

}  // namespace

int main() {
  std::printf("# bench_server — concurrent clients vs olapd serving stack "
              "(demo cube, loopback TCP)\n");
  std::printf("clients,queries,seconds,qps,p50_ms,p99_ms,p999_ms,"
              "busy_retries,err_timeout,err_cancelled,err_other,"
              "divergences\n");

  BenchFile file("server");
  Result<std::unique_ptr<Database>> built = BuildDemoCube(file.path());
  if (!built.ok()) Die(built.status());
  std::unique_ptr<Database> db = std::move(built).value();

  const std::vector<std::string> workload = Workload();
  const std::vector<std::string> goldens = Goldens(db.get(), workload);

  server::ServerOptions options;
  // A deep queue: the bench measures queueing latency, not rejection, but
  // any SERVER_BUSY that does occur is retried and reported.
  options.max_inflight = std::max<size_t>(
      4, std::thread::hardware_concurrency());
  options.max_queued = 1024;
  server::OlapServer olapd(db.get(), options);
  if (Status st = olapd.Start(); !st.ok()) Die(st);

  BenchReport report(
      "server",
      "olapd serving stack: concurrent clients over loopback TCP on the "
      "demo cube; every reply byte-compared against single-threaded engine "
      "goldens");

  constexpr size_t kQueriesPerClient = 40;
  uint64_t total_divergences = 0;
  for (size_t clients : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    std::vector<ClientTally> tallies(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    const auto start = std::chrono::steady_clock::now();
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        tallies[c] = RunClient(olapd.host(), olapd.port(), workload, goldens,
                               c, kQueriesPerClient);
      });
    }
    for (std::thread& t : threads) t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    std::vector<uint64_t> latencies;
    uint64_t busy_retries = 0;
    uint64_t divergences = 0;
    uint64_t err_timeout = 0;
    uint64_t err_cancelled = 0;
    uint64_t err_other = 0;
    for (const ClientTally& tally : tallies) {
      latencies.insert(latencies.end(), tally.latency_micros.begin(),
                       tally.latency_micros.end());
      busy_retries += tally.busy_retries;
      divergences += tally.divergences;
      err_timeout += tally.err_timeout;
      err_cancelled += tally.err_cancelled;
      err_other += tally.err_other;
    }
    std::sort(latencies.begin(), latencies.end());
    const uint64_t p50 = Percentile(&latencies, 0.50);
    const uint64_t p99 = Percentile(&latencies, 0.99);
    const uint64_t p999 = Percentile(&latencies, 0.999);
    const double qps =
        seconds > 0 ? static_cast<double>(latencies.size()) / seconds : 0;
    total_divergences += divergences;

    std::printf("%zu,%zu,%.3f,%.0f,%.3f,%.3f,%.3f,%llu,%llu,%llu,%llu,"
                "%llu\n",
                clients, latencies.size(), seconds, qps,
                static_cast<double>(p50) / 1000.0,
                static_cast<double>(p99) / 1000.0,
                static_cast<double>(p999) / 1000.0,
                static_cast<unsigned long long>(busy_retries),
                static_cast<unsigned long long>(err_timeout),
                static_cast<unsigned long long>(err_cancelled),
                static_cast<unsigned long long>(err_other),
                static_cast<unsigned long long>(divergences));
    std::fflush(stdout);

    ExecutionStats stats;
    stats.seconds = seconds;
    report.Add({{"clients", std::to_string(clients)}}, "server",
               static_cast<uint64_t>(latencies.size()), stats,
               {{"qps", qps},
                {"p50_ms", static_cast<double>(p50) / 1000.0},
                {"p99_ms", static_cast<double>(p99) / 1000.0},
                {"p999_ms", static_cast<double>(p999) / 1000.0},
                {"busy_retries", static_cast<double>(busy_retries)},
                {"err_timeout", static_cast<double>(err_timeout)},
                {"err_cancelled", static_cast<double>(err_cancelled)},
                {"err_other", static_cast<double>(err_other)},
                {"divergences", static_cast<double>(divergences)}});
  }

  olapd.Stop();
  const server::OlapServer::Stats stats = olapd.stats();
  std::printf("# served %llu connections, %llu ok queries, %llu busy "
              "replies\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.queries_ok),
              static_cast<unsigned long long>(stats.busy_replies));
  report.WriteFile();

  if (total_divergences > 0) {
    std::fprintf(stderr,
                 "bench_server: %llu replies diverged from the "
                 "single-threaded goldens\n",
                 static_cast<unsigned long long>(total_divergences));
    return 1;
  }
  return 0;
}
