// olapq: command-line client for olapd (server/client.h).
//
//   olapq [flags] "<sql>"
//   olapq [flags] --ping
//
// Connects, sends one query (or a ping), prints the result table plus the
// server's execution stats JSON, and exits. Typed server errors (engine
// failures, SERVER_BUSY, SNAPSHOT_GONE) print the wire-error class and the
// engine's message verbatim.
//
// Flags:
//   --host ADDR    server address (default 127.0.0.1)
//   --port N       server port (required)
//   --engine NAME  force array|starjoin|bitmap|leftdeep|btreeselect
//                  (default: let the server's planner choose)
//   --threads N    array-engine worker threads (default 1)
//   --trace        request an ExecutionTrace in the stats JSON
//   --no-cache     bypass the server's result cache
//   --timeout-ms N query deadline: the server aborts the query and replies
//                  QUERY_TIMEOUT once N ms elapse; the client also gives up
//                  (and closes the connection) if no reply arrives within
//                  4*N ms of wire budget (default 0 = no deadline)
//   --retries N    retry budget for transient failures: connect refusals
//                  and SERVER_BUSY replies, with exponential backoff +
//                  jitter (default 0 = fail fast)
//   --ping         round-trip a Ping frame instead of a query
//   --quiet        print only the stats JSON, not the result table
//   --repeat N     send the query N times over the SAME connection (same
//                  epoch-pinned session), printing each reply; used by the
//                  CI smoke test to hold a pinned snapshot across server-side
//                  ingest churn (default 1)
//   --sleep-ms N   sleep N ms between --repeat iterations (default 0)
//   --expect-snapshot-gone
//                  with --repeat: also treat SNAPSHOT_GONE as success — the
//                  typed reply IS the correct outcome for an epoch-pinned
//                  session whose snapshot was evicted by ingest churn
//
// Exit codes: 0 = result received (or pong), 2 = transport/usage error,
// 3 = typed server error, 4 = deadline exceeded or cancelled (the query
// was aborted, not failed — safe to retry with a larger --timeout-ms).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "query/engine.h"
#include "query/query.h"
#include "server/client.h"

namespace paradise {
namespace {

struct Args {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string sql;
  server::QueryRequest request;
  uint32_t retries = 0;
  uint32_t repeat = 1;
  uint32_t sleep_ms = 0;
  bool ping = false;
  bool quiet = false;
  bool expect_snapshot_gone = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host ADDR] --port N [--engine NAME] "
               "[--threads N] [--trace] [--no-cache] [--timeout-ms N] "
               "[--retries N] [--quiet] [--repeat N] [--sleep-ms N] "
               "[--expect-snapshot-gone] (\"<sql>\" | --ping)\n",
               argv0);
  return 2;
}

bool ParseEngine(const std::string& name, uint8_t* out) {
  if (name == "array") *out = static_cast<uint8_t>(EngineKind::kArray) + 1;
  else if (name == "starjoin")
    *out = static_cast<uint8_t>(EngineKind::kStarJoin) + 1;
  else if (name == "bitmap")
    *out = static_cast<uint8_t>(EngineKind::kBitmap) + 1;
  else if (name == "leftdeep")
    *out = static_cast<uint8_t>(EngineKind::kLeftDeep) + 1;
  else if (name == "btreeselect")
    *out = static_cast<uint8_t>(EngineKind::kBTreeSelect) + 1;
  else
    return false;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ping") {
      args->ping = true;
    } else if (arg == "--trace") {
      args->request.trace = true;
    } else if (arg == "--no-cache") {
      args->request.no_cache = true;
    } else if (arg == "--quiet") {
      args->quiet = true;
    } else if (arg == "--host" && i + 1 < argc) {
      args->host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      args->port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--engine" && i + 1 < argc) {
      if (!ParseEngine(argv[++i], &args->request.engine)) return false;
    } else if (arg == "--threads" && i + 1 < argc) {
      args->request.num_threads =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      args->request.deadline_ms =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--retries" && i + 1 < argc) {
      args->retries =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--repeat" && i + 1 < argc) {
      args->repeat =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--sleep-ms" && i + 1 < argc) {
      args->sleep_ms =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--expect-snapshot-gone") {
      args->expect_snapshot_gone = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else if (args->sql.empty()) {
      args->sql = arg;
    } else {
      return false;
    }
  }
  if (args->port == 0) return false;
  if (args->request.num_threads == 0 || args->repeat == 0) return false;
  // Exactly one of --ping / SQL.
  return args->ping == args->sql.empty();
}

int Run(const Args& args) {
  server::ClientOptions client_options;
  client_options.connect_retries = args.retries;
  client_options.busy_retries = args.retries;
  if (args.request.deadline_ms > 0) {
    // Wire budget: generously above the server-side deadline so the typed
    // QUERY_TIMEOUT reply (which arrives promptly) wins the race, and the
    // client-side cutoff only fires when the connection itself is dead.
    client_options.call_timeout_ms = args.request.deadline_ms * 4;
  }
  Result<std::unique_ptr<server::OlapClient>> client_or =
      server::OlapClient::Connect(args.host, args.port, client_options);
  if (!client_or.ok()) {
    std::fprintf(stderr, "olapq: %s\n", client_or.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<server::OlapClient> client = std::move(client_or).value();

  if (args.ping) {
    const Status st = client->Ping();
    if (!st.ok()) {
      std::fprintf(stderr, "olapq: %s\n", st.ToString().c_str());
      return 2;
    }
    std::printf("pong (cube %s, epoch %llu)\n", client->hello().cube_name.c_str(),
                static_cast<unsigned long long>(client->hello().pinned_epoch));
    return 0;
  }

  server::QueryRequest request = args.request;
  request.sql = args.sql;
  for (uint32_t iteration = 0; iteration < args.repeat; ++iteration) {
    if (iteration > 0 && args.sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(args.sleep_ms));
    }
    Result<server::OlapClient::Reply> reply_or =
        client->QueryWithRetry(request);
    if (!reply_or.ok()) {
      std::fprintf(stderr, "olapq: %s\n",
                   reply_or.status().ToString().c_str());
      return reply_or.status().IsDeadlineExceeded() ? 4 : 2;
    }
    const server::OlapClient::Reply& reply = reply_or.value();
    if (!reply.ok) {
      if (args.expect_snapshot_gone &&
          reply.error.error == server::WireError::kSnapshotGone) {
        // The session outlived its pinned epoch's cached snapshot; the
        // typed reply is this smoke mode's other acceptable outcome.
        std::printf("snapshot_gone (epoch %llu)\n",
                    static_cast<unsigned long long>(
                        client->hello().pinned_epoch));
        continue;
      }
      std::fprintf(stderr, "olapq: %s: %s\n",
                   std::string(server::WireErrorToString(reply.error.error))
                       .c_str(),
                   server::ErrorReplyToStatus(reply.error).ToString().c_str());
      return (reply.error.error == server::WireError::kQueryTimeout ||
              reply.error.error == server::WireError::kCancelled)
                 ? 4
                 : 3;
    }

    const server::ResultReply& result = reply.result;
    if (!args.quiet) {
      std::printf("engine: %s", result.engine.c_str());
      if (!result.plan_reason.empty()) {
        std::printf(" (%s)", result.plan_reason.c_str());
      }
      std::printf("\n%s", result.result
                              .ToString(static_cast<query::AggFunc>(result.agg))
                              .c_str());
    }
    std::printf("%s\n", result.stats_json.c_str());
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace paradise

int main(int argc, char** argv) {
  paradise::Args args;
  if (!paradise::ParseArgs(argc, argv, &args)) return paradise::Usage(argv[0]);
  return paradise::Run(args);
}
