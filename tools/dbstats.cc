// dbstats: observability snapshot for a paradise database file.
//
//   dbstats [flags] <database-file>
//
// Opens the database with metrics enabled, runs one consolidation query
// under tracing, and prints a single JSON document to stdout:
//
//   {"file": {...},             // path, page size, format, page count
//    "storage": {...},          // Database::ReportStorage footprints
//    "array": {...},            // layout summary (when the cube has one)
//    "query": {"engine":..,"threads":..,"groups":..,
//              "stats": <ExecutionStats::ToJson>},   // incl. "trace","cache"
//    "cached_query": {...},     // same query re-run warm through the result
//                               // cache (a hit; resultcache.* counters land
//                               // in the registry below)
//    "registry": <MetricsRegistry::ToJson>}          // process-wide metrics
//
// The "stats" object is the same schema the bench binaries write into their
// BENCH_*.json files, and the recipe in EXPERIMENTS.md uses the trace spans
// to reproduce the paper's §5.5.1 phase breakdown.
//
// Flags:
//   --make-demo      build a small synthetic demo cube at <database-file>
//                    first (overwrites; used by the CI smoke test)
//   --engine NAME    array|starjoin|bitmap|leftdeep (default array)
//   --threads N      array-engine worker threads (default 1)
//   --warm           skip the cold-buffer protocol before the query
//   --no-trace       disable the per-query ExecutionTrace
//   --no-query       snapshot file/storage/registry state only
//   --exercise-server
//                    spin up an in-process olapd on loopback and drive one
//                    timed-out, one cancelled, and one queue-shed query
//                    through it, so the server.timeouts / server.cancelled /
//                    admission.shed_expired resilience counters appear in
//                    the registry snapshot (used by the CI smoke test)
//   --exercise-ingest
//                    write a handful of cells through the incremental ingest
//                    path (commit, compact, then one more uncompacted
//                    commit), so the "ingest" section and the ingest.*
//                    registry counters are non-zero (used by the CI smoke
//                    test; mutates the file)
//
// The "ingest" section is always present when the cube has an OLAP array:
// {"applied_cells","live_generations","overlay_cells","pending_cells",
//  "commits","compactions","retired_pending"}.
//
// Exit codes: 0 = ok, 2 = could not run.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.h"
#include "common/metrics.h"
#include "gen/datasets.h"
#include "gen/generator.h"
#include "ingest/ingest.h"
#include "query/engine.h"
#include "query/result_cache.h"
#include "schema/database.h"
#include "schema/demo_cube.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"

namespace paradise {
namespace {

struct Args {
  std::string path;
  std::string engine = "array";
  size_t threads = 1;
  bool make_demo = false;
  bool warm = false;
  bool trace = true;
  bool run_query = true;
  bool exercise_server = false;
  bool exercise_ingest = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--make-demo] [--engine array|starjoin|bitmap|"
               "leftdeep] [--threads N] [--warm] [--no-trace] [--no-query] "
               "[--exercise-server] [--exercise-ingest] <database-file>\n",
               argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--make-demo") {
      args->make_demo = true;
    } else if (arg == "--warm") {
      args->warm = true;
    } else if (arg == "--no-trace") {
      args->trace = false;
    } else if (arg == "--no-query") {
      args->run_query = false;
    } else if (arg == "--exercise-server") {
      args->exercise_server = true;
    } else if (arg == "--exercise-ingest") {
      args->exercise_ingest = true;
    } else if (arg == "--engine" && i + 1 < argc) {
      args->engine = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      args->threads = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else if (args->path.empty()) {
      args->path = arg;
    } else {
      return false;
    }
  }
  return !args->path.empty() && args->threads > 0;
}

Result<EngineKind> ParseEngine(const std::string& name) {
  if (name == "array") return EngineKind::kArray;
  if (name == "starjoin") return EngineKind::kStarJoin;
  if (name == "bitmap") return EngineKind::kBitmap;
  if (name == "leftdeep") return EngineKind::kLeftDeep;
  if (name == "btreeselect") return EngineKind::kBTreeSelect;
  return Status::InvalidArgument("unknown engine: " + name);
}

/// Starts an in-process olapd on loopback and drives exactly three
/// resilience outcomes through the wire protocol — a query that outlives
/// its deadline, a query cancelled mid-flight, and a query shed from the
/// admission queue after expiring — so the server.timeouts /
/// server.cancelled / admission.shed_expired counters land in the registry
/// snapshot below. The artificial per-query delay makes all three outcomes
/// deterministic regardless of how fast the demo cube evaluates.
Status ExerciseServer(Database* db) {
  server::ServerOptions options;
  options.metrics_enabled = true;
  options.max_inflight = 1;
  options.max_queued = 4;
  options.artificial_query_delay_ms = 200;
  server::OlapServer olapd(db, options);
  PARADISE_RETURN_IF_ERROR(olapd.Start());

  const std::string sql =
      "select sum(volume), dim0.h01 from cube group by dim0.h01";
  const auto expect = [](const Result<server::OlapClient::Reply>& reply,
                         server::WireError want) -> Status {
    PARADISE_RETURN_IF_ERROR(reply.status());
    if (reply->ok || reply->error.error != want) {
      return Status::Internal(
          "exercise-server: expected " +
          std::string(server::WireErrorToString(want)) + ", got " +
          (reply->ok
               ? std::string("a result")
               : std::string(server::WireErrorToString(reply->error.error))));
    }
    return Status::OK();
  };

  PARADISE_ASSIGN_OR_RETURN(
      std::unique_ptr<server::OlapClient> client,
      server::OlapClient::Connect(olapd.host(), olapd.port()));

  // 1. Timeout: a 20 ms deadline against a 200 ms query.
  server::QueryRequest timed;
  timed.sql = sql;
  timed.deadline_ms = 20;
  PARADISE_RETURN_IF_ERROR(
      expect(client->Query(timed), server::WireError::kQueryTimeout));

  // 2. Cancel: fire the query, then race a CANCEL frame into its delay.
  server::QueryRequest plain;
  plain.sql = sql;
  PARADISE_RETURN_IF_ERROR(client->SendRaw(server::EncodeFrame(
      server::FrameType::kQuery, server::EncodeQueryRequest(plain))));
  PARADISE_RETURN_IF_ERROR(client->Cancel());
  {
    PARADISE_ASSIGN_OR_RETURN(server::Frame frame, client->ReadFrame());
    if (frame.type != server::FrameType::kError) {
      return Status::Internal("exercise-server: cancel raced a result");
    }
    PARADISE_ASSIGN_OR_RETURN(server::ErrorReply error,
                              server::DecodeErrorReply(frame.payload));
    if (error.error != server::WireError::kCancelled) {
      return Status::Internal("exercise-server: expected CANCELLED, got " +
                              std::string(
                                  server::WireErrorToString(error.error)));
    }
  }

  // 3. Shed: occupy the single admission slot, then queue a query whose
  // deadline expires while it waits.
  PARADISE_RETURN_IF_ERROR(client->SendRaw(server::EncodeFrame(
      server::FrameType::kQuery, server::EncodeQueryRequest(plain))));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  PARADISE_ASSIGN_OR_RETURN(
      std::unique_ptr<server::OlapClient> second,
      server::OlapClient::Connect(olapd.host(), olapd.port()));
  PARADISE_RETURN_IF_ERROR(
      expect(second->Query(timed), server::WireError::kQueryTimeout));
  PARADISE_ASSIGN_OR_RETURN(server::Frame held, client->ReadFrame());
  if (held.type != server::FrameType::kResult) {
    return Status::Internal("exercise-server: slot-holding query failed");
  }

  olapd.Stop();
  return Status::OK();
}

/// Drives the incremental ingest path end to end — a committed-and-compacted
/// batch, then a second commit left as a live overlay — so the "ingest"
/// section and every ingest.* registry counter carry real values. Keys are
/// taken from the existing dimension rows (ingest never grows dimensions).
Status ExerciseIngest(Database* db) {
  if (!db->has_olap() || db->ingest() == nullptr) {
    return Status::NotSupported("--exercise-ingest requires the OLAP array");
  }
  const size_t num_dims = db->schema().num_dims();
  const size_t num_measures = db->olap()->num_measures();
  auto write_batch = [&](int salt, int count) -> Status {
    for (int i = 0; i < count; ++i) {
      std::vector<int32_t> keys(num_dims);
      for (size_t d = 0; d < num_dims; ++d) {
        const auto& rows = db->dim(d).rows();
        keys[d] = rows[(static_cast<size_t>(salt) + i) % rows.size()]
                      .GetInt32(0);
      }
      std::vector<int64_t> measures(num_measures);
      for (size_t m = 0; m < num_measures; ++m) {
        measures[m] = 1000 * (salt + 1) + i;
      }
      PARADISE_RETURN_IF_ERROR(db->ingest()->Write(keys, measures));
    }
    return Status::OK();
  };
  PARADISE_RETURN_IF_ERROR(write_batch(0, 8));
  PARADISE_RETURN_IF_ERROR(db->ingest()->Commit());
  PARADISE_RETURN_IF_ERROR(db->ingest()->Compact());
  PARADISE_RETURN_IF_ERROR(write_batch(1, 4));
  return db->ingest()->Commit();
}

Status Run(const Args& args) {
  if (args.make_demo) {
    // The demo cube is shared with olapd --make-demo (schema/demo_cube.h).
    PARADISE_RETURN_IF_ERROR(BuildDemoCube(args.path).status());
  }
  PARADISE_ASSIGN_OR_RETURN(StorageOptions storage,
                            ProbeStorageOptions(args.path));
  DatabaseOptions options;
  options.storage = storage;
  options.storage.metrics_enabled = true;
  PARADISE_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                            Database::Open(args.path, options));

  JsonWriter w;
  w.BeginObject();

  w.Key("file");
  w.BeginObject();
  w.KV("path", args.path);
  w.KV("page_size",
       static_cast<uint64_t>(db->storage()->disk()->page_size()));
  w.KV("format_version",
       static_cast<uint64_t>(db->storage()->disk()->format_version()));
  w.KV("page_count", db->storage()->disk()->page_count());
  w.EndObject();

  PARADISE_ASSIGN_OR_RETURN(Database::StorageReport report,
                            db->ReportStorage());
  w.Key("storage");
  w.BeginObject();
  w.KV("fact_file_bytes", report.fact_file_bytes);
  w.KV("array_data_bytes", report.array_data_bytes);
  w.KV("array_pages_bytes", report.array_pages_bytes);
  w.KV("bitmap_bytes", report.bitmap_bytes);
  w.KV("file_bytes", report.file_bytes);
  w.EndObject();

  if (db->has_olap()) {
    const ChunkLayout& layout = db->olap()->layout();
    w.Key("array");
    w.BeginObject();
    w.KV("layout", layout.ToString());
    w.KV("num_chunks", layout.num_chunks());
    w.KV("total_cells", layout.total_cells());
    w.EndObject();
  }

  if (args.run_query) {
    PARADISE_ASSIGN_OR_RETURN(EngineKind kind, ParseEngine(args.engine));
    // The standard template: group by attribute column 1 of every dimension
    // (the paper's Query 1), which exercises plan, scan and aggregate spans
    // on every engine.
    query::ConsolidationQuery q =
        gen::Query1(db->schema().num_dims());
    RunQueryOptions run_options;
    run_options.cold = !args.warm;
    run_options.num_threads = args.threads;
    run_options.trace = args.trace;
    PARADISE_ASSIGN_OR_RETURN(Execution exec,
                              RunQuery(db.get(), kind, q, run_options));
    w.Key("query");
    w.BeginObject();
    w.KV("engine", args.engine);
    w.KV("threads", static_cast<uint64_t>(args.threads));
    w.KV("cold", run_options.cold);
    w.KV("groups", static_cast<uint64_t>(exec.result.num_groups()));
    w.Key("stats");
    w.Raw(exec.stats.ToJson());
    w.EndObject();

    // Run the same query twice through a fresh result cache (miss, then
    // hit) so the snapshot shows the cached-path stats and populates the
    // resultcache.* registry metrics the CI smoke test asserts on.
    query::ConsolidationResultCache::Options cache_options;
    cache_options.metrics_enabled = true;
    query::ConsolidationResultCache cache(cache_options);
    run_options.cache = &cache;
    run_options.cold = false;
    PARADISE_RETURN_IF_ERROR(
        RunQuery(db.get(), kind, q, run_options).status());
    PARADISE_ASSIGN_OR_RETURN(Execution warm,
                              RunQuery(db.get(), kind, q, run_options));
    const query::ResultCacheStats cache_stats = cache.stats();
    w.Key("cached_query");
    w.BeginObject();
    w.KV("engine", args.engine);
    w.KV("groups", static_cast<uint64_t>(warm.result.num_groups()));
    w.KV("hits", cache_stats.hits);
    w.KV("misses", cache_stats.misses);
    w.KV("bytes_in_use", cache_stats.bytes_in_use);
    w.Key("stats");
    w.Raw(warm.stats.ToJson());
    w.EndObject();
  }

  if (args.exercise_server) {
    PARADISE_RETURN_IF_ERROR(ExerciseServer(db.get()));
  }

  if (args.exercise_ingest) {
    PARADISE_RETURN_IF_ERROR(ExerciseIngest(db.get()));
  }

  if (db->ingest() != nullptr) {
    const IngestManager::Stats is = db->ingest()->stats();
    w.Key("ingest");
    w.BeginObject();
    w.KV("applied_cells", is.applied_cells);
    w.KV("live_generations", is.live_generations);
    w.KV("overlay_cells", is.overlay_cells);
    w.KV("pending_cells", is.pending_cells);
    w.KV("commits", is.commits);
    w.KV("compactions", is.compactions);
    w.KV("retired_pending", is.retired_pending);
    w.EndObject();
  }

  w.Key("registry");
  w.Raw(MetricsRegistry::Default().ToJson());
  w.EndObject();

  std::printf("%s\n", w.str().c_str());
  return Status::OK();
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);
  const Status st = Run(args);
  if (!st.ok()) {
    std::fprintf(stderr, "dbstats: %s\n", st.ToString().c_str());
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace paradise

int main(int argc, char** argv) { return paradise::Main(argc, argv); }
