// dbverify: offline consistency checker for paradise database files.
//
//   dbverify <database-file>
//
// Walks every page (verifying CRC32C checksums), validates the commit
// manifest and free list, and cross-checks the catalog and fact-file extent
// map. Never writes to the file.
//
// Exit codes: 0 = consistent, 1 = findings reported, 2 = could not run.
#include <cstdio>

#include "schema/db_verify.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <database-file>\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  paradise::Result<paradise::VerifyReport> result =
      paradise::VerifyDatabaseFile(path);
  if (!result.ok()) {
    std::fprintf(stderr, "dbverify: %s\n", result.status().ToString().c_str());
    return 2;
  }
  const paradise::VerifyReport& report = result.value();
  std::printf("%s: %llu pages, %llu catalog entries, %llu fact tuples\n",
              path.c_str(),
              static_cast<unsigned long long>(report.page_count),
              static_cast<unsigned long long>(report.catalog_entries),
              static_cast<unsigned long long>(report.fact_tuples));
  const std::vector<std::string> issues = report.AllIssues();
  for (const std::string& issue : issues) {
    std::printf("ISSUE: %s\n", issue.c_str());
  }
  if (!issues.empty()) {
    std::printf("%zu issue(s) found\n", issues.size());
    return 1;
  }
  std::printf("ok\n");
  return 0;
}
