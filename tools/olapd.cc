// olapd: the multi-client OLAP server (ROADMAP item 1).
//
//   olapd [flags] <database-file>
//
// Opens the database, binds a TCP listener, and serves the framed wire
// protocol (server/wire.h): SQL in, serialized GroupedResult + execution
// stats out. One thread per connection; an admission controller sized
// against the storage I/O pool bounds in-flight queries, and every session
// reads a snapshot pinned to the commit epoch at connect time. Prints one
// line to stdout when ready:
//
//   olapd: listening on 127.0.0.1:PORT
//
// and exits 0 on SIGINT/SIGTERM after a clean shutdown (all sessions
// joined, all sockets closed).
//
// Flags:
//   --make-demo        build the shared demo cube (schema/demo_cube.h) at
//                      <database-file> first (overwrites; CI smoke test)
//   --host ADDR        bind address (default 127.0.0.1)
//   --port N           TCP port (default 0 = OS-assigned; see --port-file)
//   --port-file PATH   write the bound port to PATH once listening, so
//                      scripts using --port 0 can find the server
//   --max-inflight N   admission slots (default 0 = derived from the
//                      storage I/O pool)
//   --max-queued N     admission wait-queue depth (default 0 = derived)
//   --threads N        max array-engine worker threads per query (default 8)
//   --cache-mb N       result-cache budget in MiB (default 64)
//   --no-cache         disable the shared result cache (epoch-pinned
//                      sessions then fail with SNAPSHOT_GONE once the epoch
//                      moves)
//   --default-deadline-ms N
//                      cap every query at N ms even when the client sends
//                      no deadline; explicit client deadlines still tighten
//                      (never loosen) the cap (default 0 = unlimited)
//   --read-timeout-ms N
//                      close connections that leave a frame unfinished for
//                      N ms (slow-loris reaping; default 30000)
//   --delay-ms N       testing aid: hold every query for N ms inside its
//                      admission slot before executing, so deadlines,
//                      cancellation and shedding can be exercised from
//                      scripts (default 0)
//   --ingest-loop-ms N testing aid: run a background thread that ingests a
//                      small batch through the incremental write path every
//                      N ms (commit each batch, compact every 4th), so
//                      scripts can race epoch-pinned sessions against epoch
//                      churn (default 0 = off; requires the OLAP array)
//
// Exit codes: 0 = clean shutdown, 2 = could not start.
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ingest/ingest.h"
#include "schema/database.h"
#include "schema/demo_cube.h"
#include "server/server.h"
#include "storage/disk_manager.h"

namespace paradise {
namespace {

struct Args {
  std::string path;
  std::string port_file;
  server::ServerOptions server;
  bool make_demo = false;
  uint32_t ingest_loop_ms = 0;
};

/// Background epoch churn for the CI smoke test: every `interval_ms`, write
/// a small batch of cells to existing dimension keys and commit it; every
/// 4th tick also compact. Any error stops the loop (reported at shutdown) —
/// the server itself keeps serving its pinned snapshots regardless.
class IngestLoop {
 public:
  IngestLoop(Database* db, uint32_t interval_ms)
      : db_(db), interval_ms_(interval_ms) {
    thread_ = std::thread([this] { Run(); });
  }

  ~IngestLoop() { Stop(); }

  void Stop() {
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
  }

  Status status() const { return status_; }
  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  void Run() {
    uint64_t tick = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms_));
      if (stop_.load(std::memory_order_relaxed)) break;
      Status st = Tick(tick++);
      if (!st.ok()) {
        status_ = st;
        return;
      }
      ticks_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  Status Tick(uint64_t tick) {
    const size_t num_dims = db_->schema().num_dims();
    const size_t num_measures = db_->olap()->num_measures();
    for (int i = 0; i < 4; ++i) {
      std::vector<int32_t> keys(num_dims);
      for (size_t d = 0; d < num_dims; ++d) {
        const auto& rows = db_->dim(d).rows();
        keys[d] = rows[(tick + static_cast<uint64_t>(i)) % rows.size()]
                      .GetInt32(0);
      }
      std::vector<int64_t> measures(num_measures);
      for (size_t m = 0; m < num_measures; ++m) {
        measures[m] = static_cast<int64_t>(tick * 10 + i);
      }
      PARADISE_RETURN_IF_ERROR(db_->ingest()->Write(keys, measures));
    }
    PARADISE_RETURN_IF_ERROR(db_->ingest()->Commit());
    if (tick % 4 == 3) {
      PARADISE_RETURN_IF_ERROR(db_->ingest()->Compact());
    }
    return Status::OK();
  }

  Database* db_;
  const uint32_t interval_ms_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> ticks_{0};
  std::thread thread_;
  Status status_;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--make-demo] [--host ADDR] [--port N] "
               "[--port-file PATH] [--max-inflight N] [--max-queued N] "
               "[--threads N] [--cache-mb N] [--no-cache] "
               "[--default-deadline-ms N] [--read-timeout-ms N] "
               "[--delay-ms N] [--ingest-loop-ms N] <database-file>\n",
               argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--make-demo") {
      args->make_demo = true;
    } else if (arg == "--no-cache") {
      args->server.enable_result_cache = false;
    } else if (arg == "--host" && i + 1 < argc) {
      args->server.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      args->server.port =
          static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--port-file" && i + 1 < argc) {
      args->port_file = argv[++i];
    } else if (arg == "--max-inflight" && i + 1 < argc) {
      args->server.max_inflight =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--max-queued" && i + 1 < argc) {
      args->server.max_queued =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--threads" && i + 1 < argc) {
      args->server.max_query_threads =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--cache-mb" && i + 1 < argc) {
      args->server.cache_byte_budget =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10)) << 20;
    } else if (arg == "--default-deadline-ms" && i + 1 < argc) {
      args->server.default_deadline_ms =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--read-timeout-ms" && i + 1 < argc) {
      args->server.read_timeout_ms =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--delay-ms" && i + 1 < argc) {
      args->server.artificial_query_delay_ms =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--ingest-loop-ms" && i + 1 < argc) {
      args->ingest_loop_ms =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else if (args->path.empty()) {
      args->path = arg;
    } else {
      return false;
    }
  }
  return !args->path.empty() && args->server.max_query_threads > 0;
}

Status Run(const Args& args) {
  if (args.make_demo) {
    PARADISE_RETURN_IF_ERROR(BuildDemoCube(args.path).status());
  }
  PARADISE_ASSIGN_OR_RETURN(StorageOptions storage,
                            ProbeStorageOptions(args.path));
  DatabaseOptions options;
  options.storage = storage;
  options.storage.metrics_enabled = true;
  PARADISE_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                            Database::Open(args.path, options));

  // Block SIGINT/SIGTERM before spawning server threads so every thread
  // inherits the mask and sigwait below is the only consumer.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  server::ServerOptions server_options = args.server;
  server_options.metrics_enabled = true;
  server::OlapServer olapd(db.get(), server_options);
  PARADISE_RETURN_IF_ERROR(olapd.Start());

  std::unique_ptr<IngestLoop> ingest_loop;
  if (args.ingest_loop_ms > 0) {
    if (!db->has_olap() || db->ingest() == nullptr) {
      olapd.Stop();
      return Status::NotSupported("--ingest-loop-ms requires the OLAP array");
    }
    ingest_loop = std::make_unique<IngestLoop>(db.get(), args.ingest_loop_ms);
  }

  std::printf("olapd: listening on %s:%u\n", olapd.host().c_str(),
              static_cast<unsigned>(olapd.port()));
  std::fflush(stdout);
  if (!args.port_file.empty()) {
    std::FILE* f = std::fopen(args.port_file.c_str(), "w");
    if (f == nullptr) {
      olapd.Stop();
      return Status::IOError("cannot write port file: " + args.port_file);
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(olapd.port()));
    std::fclose(f);
  }

  int sig = 0;
  while (sigwait(&mask, &sig) != 0) {
  }
  std::fprintf(stderr, "olapd: caught %s, shutting down\n", strsignal(sig));
  if (ingest_loop != nullptr) {
    ingest_loop->Stop();
    std::fprintf(stderr, "olapd: ingest loop ran %llu ticks%s%s\n",
                 static_cast<unsigned long long>(ingest_loop->ticks()),
                 ingest_loop->status().ok() ? "" : ", stopped on error: ",
                 ingest_loop->status().ok()
                     ? ""
                     : ingest_loop->status().ToString().c_str());
    if (!ingest_loop->status().ok()) {
      olapd.Stop();
      return ingest_loop->status();
    }
  }
  olapd.Stop();

  const server::OlapServer::Stats stats = olapd.stats();
  std::fprintf(stderr,
               "olapd: served %llu connections, %llu ok / %llu failed "
               "queries, %llu busy, %llu protocol errors, %llu timeouts "
               "(%llu shed while queued), %llu cancelled, %llu read "
               "timeouts\n",
               static_cast<unsigned long long>(stats.connections),
               static_cast<unsigned long long>(stats.queries_ok),
               static_cast<unsigned long long>(stats.queries_failed),
               static_cast<unsigned long long>(stats.busy_replies),
               static_cast<unsigned long long>(stats.protocol_errors),
               static_cast<unsigned long long>(stats.timeouts),
               static_cast<unsigned long long>(stats.shed_expired),
               static_cast<unsigned long long>(stats.cancelled),
               static_cast<unsigned long long>(stats.read_timeouts));
  return Status::OK();
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);
  const Status st = Run(args);
  if (!st.ok()) {
    std::fprintf(stderr, "olapd: %s\n", st.ToString().c_str());
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace paradise

int main(int argc, char** argv) { return paradise::Main(argc, argv); }
