// Wire-protocol tests for the olapd server (server/wire.h): known-answer
// frame encodings, incremental decoder behavior, exhaustive malformed-input
// sweeps over the payload codecs, and a live-server sweep feeding truncated,
// oversized, zero-length and bit-flipped frames to a real listener — every
// case must produce a typed error reply or a clean disconnect, never a
// crash or a hang (CI runs this suite under ASan/UBSan and TSan).
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"
#include "server/net_util.h"
#include "server/server.h"
#include "server/wire.h"
#include "test_util.h"

namespace paradise::server {
namespace {

using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

std::string Bytes(std::initializer_list<unsigned char> bytes) {
  std::string out;
  for (unsigned char b : bytes) out.push_back(static_cast<char>(b));
  return out;
}

// --- known-answer encodings ------------------------------------------------

TEST(WireFrameTest, PingFrameGoldenBytes) {
  // magic "OLPQ" | payload_len 0 | type kPing | 3 zero pad bytes.
  EXPECT_EQ(EncodeFrame(FrameType::kPing, ""),
            Bytes({0x4F, 0x4C, 0x50, 0x51, 0x00, 0x00, 0x00, 0x00, 0x05, 0x00,
                   0x00, 0x00}));
}

TEST(WireFrameTest, QueryFrameGoldenBytes) {
  QueryRequest request;
  request.engine = 2;  // kStarJoin + 1
  request.trace = true;
  request.num_threads = 3;
  request.deadline_ms = 500;
  request.sql = "q";
  // engine | flags(trace) | 2 pad | u32 num_threads | u32 deadline_ms |
  // u32 len | "q".
  const std::string payload = EncodeQueryRequest(request);
  EXPECT_EQ(payload, Bytes({0x02, 0x01, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00,
                            0xF4, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
                            'q'}));
  const std::string frame = EncodeFrame(FrameType::kQuery, payload);
  EXPECT_EQ(frame.substr(0, kFrameHeaderBytes),
            Bytes({0x4F, 0x4C, 0x50, 0x51, 0x11, 0x00, 0x00, 0x00, 0x02, 0x00,
                   0x00, 0x00}));
  EXPECT_EQ(frame.substr(kFrameHeaderBytes), payload);
}

TEST(WireFrameTest, CancelFrameGoldenBytes) {
  // kCancel carries no payload: magic | len 0 | type 7 | zero pad.
  EXPECT_EQ(EncodeFrame(FrameType::kCancel, ""),
            Bytes({0x4F, 0x4C, 0x50, 0x51, 0x00, 0x00, 0x00, 0x00, 0x07, 0x00,
                   0x00, 0x00}));
  EXPECT_TRUE(IsKnownFrameType(7));
  EXPECT_FALSE(IsKnownFrameType(8));
}

TEST(WireFrameTest, PayloadRoundTrips) {
  HelloReply hello;
  hello.protocol_version = 7;
  hello.pinned_epoch = 0x1122334455667788ull;
  hello.cube_name = "sales";
  auto hello2 = DecodeHello(EncodeHello(hello));
  ASSERT_TRUE(hello2.ok()) << hello2.status().ToString();
  EXPECT_EQ(hello2->protocol_version, 7u);
  EXPECT_EQ(hello2->pinned_epoch, 0x1122334455667788ull);
  EXPECT_EQ(hello2->cube_name, "sales");

  QueryRequest request;
  request.engine = 3;
  request.trace = true;
  request.no_cache = true;
  request.num_threads = 5;
  request.deadline_ms = 0x01020304;
  request.sql = "select sum(v) from f";
  auto request2 = DecodeQueryRequest(EncodeQueryRequest(request));
  ASSERT_TRUE(request2.ok()) << request2.status().ToString();
  EXPECT_EQ(request2->engine, 3);
  EXPECT_TRUE(request2->trace);
  EXPECT_TRUE(request2->no_cache);
  EXPECT_EQ(request2->num_threads, 5u);
  EXPECT_EQ(request2->deadline_ms, 0x01020304u);
  EXPECT_EQ(request2->sql, request.sql);

  // The deadline-bearing error classes round-trip with their status codes.
  for (const auto& [wire, code] :
       {std::pair{WireError::kQueryTimeout, StatusCode::kDeadlineExceeded},
        std::pair{WireError::kCancelled, StatusCode::kCancelled}}) {
    ErrorReply typed;
    typed.error = wire;
    typed.status_code = code;
    typed.message = "late";
    auto typed2 = DecodeErrorReply(EncodeErrorReply(typed));
    ASSERT_TRUE(typed2.ok()) << typed2.status().ToString();
    EXPECT_EQ(typed2->error, wire);
    EXPECT_EQ(typed2->status_code, code);
    const Status st = ErrorReplyToStatus(*typed2);
    EXPECT_TRUE(wire == WireError::kQueryTimeout ? st.IsDeadlineExceeded()
                                                 : st.IsCancelled());
  }

  ErrorReply error;
  error.error = WireError::kQueryFailed;
  error.status_code = StatusCode::kNotFound;
  error.message = "no such table: nonsense";
  auto error2 = DecodeErrorReply(EncodeErrorReply(error));
  ASSERT_TRUE(error2.ok()) << error2.status().ToString();
  EXPECT_EQ(error2->error, WireError::kQueryFailed);
  EXPECT_EQ(error2->status_code, StatusCode::kNotFound);
  EXPECT_EQ(error2->message, error.message);
  const Status st = ErrorReplyToStatus(*error2);
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), error.message);

  ResultReply reply;
  reply.engine = "array";
  reply.plan_reason = "no selection";
  reply.stats_json = "{\"seconds\":0.5}";
  reply.agg = 2;
  reply.result = query::GroupedResult({"dim0.h01", "dim1.h11"});
  query::ResultRow row;
  row.group = {0, -3};
  row.agg.Add(17);
  row.agg.Add(-4);
  reply.result.Add(row);
  auto reply2 = DecodeResultReply(EncodeResultReply(reply));
  ASSERT_TRUE(reply2.ok()) << reply2.status().ToString();
  EXPECT_EQ(reply2->engine, "array");
  EXPECT_EQ(reply2->plan_reason, "no selection");
  EXPECT_EQ(reply2->stats_json, reply.stats_json);
  EXPECT_EQ(reply2->agg, 2);
  ASSERT_TRUE(reply2->result.SameAs(reply.result));
}

// --- incremental decoder ---------------------------------------------------

TEST(WireFrameTest, DecoderReassemblesByteAtATime) {
  const std::string frame =
      EncodeFrame(FrameType::kQuery, EncodeQueryRequest([] {
        QueryRequest q;
        q.sql = "select sum(v) from f";
        return q;
      }()));
  FrameDecoder decoder;
  for (size_t i = 0; i < frame.size(); ++i) {
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok());
    EXPECT_FALSE(next->has_value()) << "frame complete after " << i
                                    << " of " << frame.size() << " bytes";
    decoder.Append(frame.data() + i, 1);
  }
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((*next)->type, FrameType::kQuery);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(WireFrameTest, DecoderYieldsBackToBackFrames) {
  std::string stream = EncodeFrame(FrameType::kPing, "");
  stream += EncodeFrame(FrameType::kPong, "");
  stream += EncodeFrame(FrameType::kError,
                        EncodeErrorReply({WireError::kServerBusy,
                                          StatusCode::kOk, "busy"}));
  FrameDecoder decoder;
  decoder.Append(stream.data(), stream.size());
  const FrameType expected[3] = {FrameType::kPing, FrameType::kPong,
                                 FrameType::kError};
  for (FrameType type : expected) {
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
    EXPECT_EQ((*next)->type, type);
  }
  auto done = decoder.Next();
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(done->has_value());
}

TEST(WireFrameTest, DecoderRejectsMalformedHeaders) {
  // Bad magic.
  {
    FrameDecoder decoder;
    const std::string garbage = "GET / HTTP/1.1\r\n";
    decoder.Append(garbage.data(), garbage.size());
    EXPECT_TRUE(decoder.Next().status().IsCorruption());
  }
  // Unknown frame type.
  {
    FrameDecoder decoder;
    std::string frame = EncodeFrame(FrameType::kPing, "");
    frame[8] = 99;
    decoder.Append(frame.data(), frame.size());
    EXPECT_TRUE(decoder.Next().status().IsCorruption());
  }
  // Nonzero pad byte.
  {
    FrameDecoder decoder;
    std::string frame = EncodeFrame(FrameType::kPing, "");
    frame[10] = 1;
    decoder.Append(frame.data(), frame.size());
    EXPECT_TRUE(decoder.Next().status().IsCorruption());
  }
  // Declared payload above the limit fails before any buffering.
  {
    FrameDecoder decoder(/*max_payload=*/16);
    std::string frame = EncodeFrame(FrameType::kQuery, std::string(17, 'x'));
    decoder.Append(frame.data(), kFrameHeaderBytes);
    EXPECT_TRUE(decoder.Next().status().IsCorruption());
  }
}

TEST(WireFrameTest, EveryHeaderBitFlipIsRejectedOrIncomplete) {
  const std::string good = EncodeFrame(FrameType::kPing, "");
  for (size_t byte = 0; byte < kFrameHeaderBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string frame = good;
      frame[byte] = static_cast<char>(frame[byte] ^ (1 << bit));
      FrameDecoder decoder;
      decoder.Append(frame.data(), frame.size());
      auto next = decoder.Next();
      if (!next.ok()) continue;  // rejected: good
      // The only survivable flips change payload_len or the type into
      // another known type; a changed length must leave the decoder waiting
      // (incomplete), never yield a fake Ping.
      if (next->has_value()) {
        EXPECT_NE((*next)->type, FrameType::kPing)
            << "bit flip at byte " << byte << " bit " << bit
            << " produced an unchanged frame";
      }
    }
  }
}

// --- malformed payload sweep ----------------------------------------------

/// Every strict prefix of a valid payload must decode to an error (catches
/// over-reads under ASan), and one trailing byte must be rejected too.
template <typename DecodeFn>
void SweepTruncations(const std::string& payload, DecodeFn&& decode) {
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(decode(std::string_view(payload.data(), len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
  const std::string trailing = payload + '\0';
  EXPECT_FALSE(decode(trailing).ok()) << "trailing garbage decoded";
}

TEST(WirePayloadTest, TruncationSweep) {
  HelloReply hello;
  hello.cube_name = "cube";
  SweepTruncations(EncodeHello(hello), DecodeHello);

  QueryRequest request;
  request.sql = "select sum(v) from f";
  request.deadline_ms = 250;  // the deadline bytes sweep like any others
  SweepTruncations(EncodeQueryRequest(request), DecodeQueryRequest);

  ErrorReply error;
  error.error = WireError::kSnapshotGone;
  error.message = "gone";
  SweepTruncations(EncodeErrorReply(error), DecodeErrorReply);

  ResultReply reply;
  reply.engine = "array";
  reply.stats_json = "{}";
  reply.result = query::GroupedResult({"c"});
  query::ResultRow row;
  row.group = {1};
  row.agg.Add(5);
  reply.result.Add(row);
  SweepTruncations(EncodeResultReply(reply), DecodeResultReply);
}

TEST(WirePayloadTest, QueryRequestValidation) {
  QueryRequest request;
  request.sql = "select sum(v) from f";
  std::string good = EncodeQueryRequest(request);

  // Zero worker threads.
  {
    QueryRequest bad = request;
    bad.num_threads = 0;
    EXPECT_FALSE(DecodeQueryRequest(EncodeQueryRequest(bad)).ok());
  }
  // Empty SQL.
  {
    QueryRequest bad = request;
    bad.sql.clear();
    EXPECT_FALSE(DecodeQueryRequest(EncodeQueryRequest(bad)).ok());
  }
  // Unknown flag bits.
  {
    std::string bytes = good;
    bytes[1] = static_cast<char>(0x80);
    EXPECT_FALSE(DecodeQueryRequest(bytes).ok());
  }
  // Nonzero pad bytes.
  for (size_t pad : {size_t{2}, size_t{3}}) {
    std::string bytes = good;
    bytes[pad] = 1;
    EXPECT_FALSE(DecodeQueryRequest(bytes).ok());
  }
}

TEST(WirePayloadTest, ErrorReplyValidation) {
  ErrorReply error;
  error.error = WireError::kBadRequest;
  const std::string good = EncodeErrorReply(error);
  // Error class 0 and out-of-range classes/status codes are rejected
  // (classes 7 and 8 became QUERY_TIMEOUT / CANCELLED; 9 is the first
  // unassigned value).
  for (unsigned char byte0 : {0, 9, 200}) {
    std::string bytes = good;
    bytes[0] = static_cast<char>(byte0);
    EXPECT_FALSE(DecodeErrorReply(bytes).ok());
  }
  {
    std::string bytes = good;
    bytes[1] = static_cast<char>(250);  // StatusCode out of range
    EXPECT_FALSE(DecodeErrorReply(bytes).ok());
  }
}

TEST(WirePayloadTest, ResultReplyRejectsLyingCounts) {
  ResultReply reply;
  reply.engine = "array";
  reply.result = query::GroupedResult({"c"});
  std::string good = EncodeResultReply(reply);

  // A huge declared column count on a short payload fails fast instead of
  // allocating.
  {
    std::string bytes;
    bytes.append(Bytes({0x00, 0x00, 0x00, 0x00}));  // engine ""
    bytes.append(Bytes({0x00, 0x00, 0x00, 0x00}));  // plan_reason ""
    bytes.append(Bytes({0x00, 0x00, 0x00, 0x00}));  // stats ""
    bytes.push_back('\0');                          // agg
    bytes.append(Bytes({0xFF, 0xFF, 0xFF, 0xFF}));  // num_columns
    EXPECT_FALSE(DecodeResultReply(bytes).ok());
  }
  // A huge declared row count against a short remainder fails fast too.
  {
    std::string bytes;
    bytes.append(Bytes({0x00, 0x00, 0x00, 0x00}));
    bytes.append(Bytes({0x00, 0x00, 0x00, 0x00}));
    bytes.append(Bytes({0x00, 0x00, 0x00, 0x00}));
    bytes.push_back('\0');
    bytes.append(Bytes({0x00, 0x00, 0x00, 0x00}));  // 0 columns
    bytes.append(
        Bytes({0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}));  // rows
    EXPECT_FALSE(DecodeResultReply(bytes).ok());
  }
}

// --- live-server malformed sweep ------------------------------------------

/// A raw TCP connection to the server with a receive timeout, for speaking
/// deliberately malformed bytes. Consumes the Hello frame on connect.
class RawConn {
 public:
  static std::unique_ptr<RawConn> Open(uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return nullptr;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      return nullptr;
    }
    timeval tv{};
    tv.tv_sec = 10;  // a hung server fails the test, it doesn't stall ctest
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    auto conn = std::unique_ptr<RawConn>(new RawConn(fd));
    auto hello = conn->ReadFrame();
    if (!hello.has_value() || hello->type != FrameType::kHello) return nullptr;
    return conn;
  }

  ~RawConn() { ::close(fd_); }

  bool Send(std::string_view bytes) { return SendAll(fd_, bytes).ok(); }
  void ShutWrite() { ::shutdown(fd_, SHUT_WR); }

  /// The next frame, or nullopt on disconnect/timeout/corrupt stream.
  std::optional<Frame> ReadFrame() {
    char buf[4096];
    for (;;) {
      auto next = decoder_.Next();
      if (!next.ok()) return std::nullopt;
      if (next->has_value()) return std::move(**next);
      const ssize_t n = RecvSome(fd_, buf, sizeof(buf));
      if (n <= 0) return std::nullopt;
      decoder_.Append(buf, static_cast<size_t>(n));
    }
  }

  /// Drains until the server closes the connection. False if the 10 s
  /// receive timeout fires first — i.e. the server hung instead of closing.
  bool DrainUntilClosed() {
    char buf[4096];
    for (;;) {
      const ssize_t n = RecvSome(fd_, buf, sizeof(buf));
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

 private:
  explicit RawConn(int fd) : fd_(fd) {}
  int fd_;
  FrameDecoder decoder_;
};

class ServerMalformedInputTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("server_proto");
    ASSERT_OK_AND_ASSIGN(auto data, gen::Generate(TinyConfig(150, 11)));
    ASSERT_OK_AND_ASSIGN(
        db_, BuildDatabaseFromDataset(file_->path(), data, SmallDbOptions()));
    ServerOptions options;
    server_ = std::make_unique<OlapServer>(db_.get(), options);
    ASSERT_OK(server_->Start());
  }

  void TearDown() override {
    server_->Stop();
    EXPECT_EQ(server_->stats().queries_failed, 0u);
  }

  /// The server is still alive and serving well-formed traffic.
  void AssertServerHealthy() {
    ASSERT_OK_AND_ASSIGN(auto client,
                         OlapClient::Connect("127.0.0.1", server_->port()));
    ASSERT_OK(client->Ping());
    ASSERT_OK_AND_ASSIGN(
        auto reply,
        client->Query("select sum(volume), dim0.h01 from cube "
                      "group by dim0.h01"));
    ASSERT_TRUE(reply.ok) << reply.error.message;
    EXPECT_GT(reply.result.result.num_groups(), 0u);
  }

  std::unique_ptr<TempFile> file_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<OlapServer> server_;
};

TEST_F(ServerMalformedInputTest, GarbageBytesGetTypedErrorThenDisconnect) {
  auto conn = RawConn::Open(server_->port());
  ASSERT_NE(conn, nullptr);
  ASSERT_TRUE(conn->Send("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
  auto reply = conn->ReadFrame();
  ASSERT_TRUE(reply.has_value()) << "no error reply before disconnect";
  ASSERT_EQ(reply->type, FrameType::kError);
  auto error = DecodeErrorReply(reply->payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->error, WireError::kBadRequest);
  EXPECT_TRUE(conn->DrainUntilClosed());
  AssertServerHealthy();
}

TEST_F(ServerMalformedInputTest, TruncatedFrameDisconnectsCleanly) {
  const std::string frame = EncodeFrame(
      FrameType::kQuery, EncodeQueryRequest([] {
        QueryRequest q;
        q.sql = "select sum(volume) from cube";
        return q;
      }()));
  // Every strict prefix: the server must wait, then treat our half-close as
  // a clean disconnect — no reply owed, and no crash.
  for (size_t len : {size_t{1}, size_t{7}, kFrameHeaderBytes,
                     frame.size() - 1}) {
    auto conn = RawConn::Open(server_->port());
    ASSERT_NE(conn, nullptr);
    ASSERT_TRUE(conn->Send(std::string_view(frame.data(), len)));
    conn->ShutWrite();
    EXPECT_TRUE(conn->DrainUntilClosed()) << "prefix of " << len << " bytes";
  }
  AssertServerHealthy();
}

TEST_F(ServerMalformedInputTest, ZeroLengthQueryIsRejected) {
  auto conn = RawConn::Open(server_->port());
  ASSERT_NE(conn, nullptr);
  // A kQuery frame with an empty payload is structurally complete but an
  // invalid request.
  ASSERT_TRUE(conn->Send(EncodeFrame(FrameType::kQuery, "")));
  auto reply = conn->ReadFrame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, FrameType::kError);
  auto error = DecodeErrorReply(reply->payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->error, WireError::kBadRequest);
  EXPECT_TRUE(conn->DrainUntilClosed());
  AssertServerHealthy();
}

TEST_F(ServerMalformedInputTest, OversizedFrameIsRejected) {
  auto conn = RawConn::Open(server_->port());
  ASSERT_NE(conn, nullptr);
  // A header declaring a payload over the limit; the body never follows.
  std::string header = EncodeFrame(FrameType::kQuery, "");
  header[4] = static_cast<char>(0xFF);
  header[5] = static_cast<char>(0xFF);
  header[6] = static_cast<char>(0xFF);
  header[7] = static_cast<char>(0x7F);
  ASSERT_TRUE(conn->Send(header));
  auto reply = conn->ReadFrame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, FrameType::kError);
  EXPECT_TRUE(conn->DrainUntilClosed());
  AssertServerHealthy();
}

TEST_F(ServerMalformedInputTest, ClientOnlyFrameTypesAreRejected) {
  for (FrameType type : {FrameType::kHello, FrameType::kResult,
                         FrameType::kError, FrameType::kPong}) {
    auto conn = RawConn::Open(server_->port());
    ASSERT_NE(conn, nullptr);
    const std::string payload =
        type == FrameType::kError
            ? EncodeErrorReply({WireError::kBadRequest, StatusCode::kOk, ""})
            : std::string();
    ASSERT_TRUE(conn->Send(EncodeFrame(type, payload)));
    auto reply = conn->ReadFrame();
    if (reply.has_value()) {
      EXPECT_EQ(reply->type, FrameType::kError);
    }
    EXPECT_TRUE(conn->DrainUntilClosed());
  }
  AssertServerHealthy();
}

TEST_F(ServerMalformedInputTest, HeaderBitFlipSweep) {
  // Flip each bit of a Ping header in turn. Whatever the flip produces —
  // bad magic, lying length, foreign type, dirty pad — the server must
  // answer with a typed error or just close; our half-close guarantees it
  // never waits forever for a payload we won't send.
  const std::string good = EncodeFrame(FrameType::kPing, "");
  for (size_t byte = 0; byte < kFrameHeaderBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string frame = good;
      frame[byte] = static_cast<char>(frame[byte] ^ (1 << bit));
      auto conn = RawConn::Open(server_->port());
      ASSERT_NE(conn, nullptr) << "byte " << byte << " bit " << bit;
      ASSERT_TRUE(conn->Send(frame));
      conn->ShutWrite();
      EXPECT_TRUE(conn->DrainUntilClosed())
          << "server hung on flip at byte " << byte << " bit " << bit;
    }
  }
  AssertServerHealthy();
}

TEST_F(ServerMalformedInputTest, UnknownEngineIdIsBadRequest) {
  ASSERT_OK_AND_ASSIGN(auto client,
                       OlapClient::Connect("127.0.0.1", server_->port()));
  QueryRequest request;
  request.engine = 200;
  request.sql = "select sum(volume) from cube";
  ASSERT_OK_AND_ASSIGN(auto reply, client->Query(request));
  ASSERT_FALSE(reply.ok);
  EXPECT_EQ(reply.error.error, WireError::kBadRequest);
  AssertServerHealthy();
}

TEST_F(ServerMalformedInputTest, IdleCancelIsSilentlyIgnored) {
  // A kCancel with no query in flight gets no reply of its own — the
  // one-reply-per-request contract holds — and the connection stays usable.
  auto conn = RawConn::Open(server_->port());
  ASSERT_NE(conn, nullptr);
  ASSERT_TRUE(conn->Send(EncodeFrame(FrameType::kCancel, "")));
  ASSERT_TRUE(conn->Send(EncodeFrame(FrameType::kPing, "")));
  auto reply = conn->ReadFrame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kPong);
  AssertServerHealthy();
}

TEST_F(ServerMalformedInputTest, CancelWithPayloadIsBadRequest) {
  auto conn = RawConn::Open(server_->port());
  ASSERT_NE(conn, nullptr);
  ASSERT_TRUE(conn->Send(EncodeFrame(FrameType::kCancel, "x")));
  auto reply = conn->ReadFrame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, FrameType::kError);
  auto error = DecodeErrorReply(reply->payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->error, WireError::kBadRequest);
  EXPECT_TRUE(conn->DrainUntilClosed());
  AssertServerHealthy();
}

TEST_F(ServerMalformedInputTest, TruncatedCancelAfterQueryStillGetsReply) {
  // The watcher reads the socket while a query runs; a cancel frame cut off
  // mid-header must not wedge it — the pending query still gets exactly one
  // reply.
  auto conn = RawConn::Open(server_->port());
  ASSERT_NE(conn, nullptr);
  QueryRequest request;
  request.sql = "select sum(volume), dim0.h01 from cube group by dim0.h01";
  ASSERT_TRUE(
      conn->Send(EncodeFrame(FrameType::kQuery, EncodeQueryRequest(request))));
  const std::string cancel = EncodeFrame(FrameType::kCancel, "");
  ASSERT_TRUE(conn->Send(std::string_view(cancel.data(), 5)));
  auto reply = conn->ReadFrame();
  ASSERT_TRUE(reply.has_value()) << "query reply lost to a truncated cancel";
  EXPECT_TRUE(reply->type == FrameType::kResult ||
              reply->type == FrameType::kError);
  AssertServerHealthy();
}

}  // namespace
}  // namespace paradise::server
