// Allocator-level crash consistency: extent directories recovered after a
// power cut always describe whole, in-bounds extents from the last committed
// checkpoint; the disk free list rejects double frees, reserved-page frees
// and corrupted links; and a page that is simultaneously on the free list
// and inside a committed fact extent is caught by the dbverify cross-check.
#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/coding.h"
#include "schema/db_verify.h"
#include "storage/disk_manager.h"
#include "storage/extent_allocator.h"
#include "storage/fault_injection.h"
#include "storage/page.h"
#include "storage/storage_manager.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

StorageOptions ExtOptions() {
  StorageOptions options;
  options.page_size = 4096;
  options.buffer_pool_pages = 64;
  options.pages_per_extent = 4;
  options.read_retry_backoff_micros = 0;
  return options;
}

/// Grows an extent directory in checkpointed rounds on a disk whose
/// power-loss countdown is armed at `halt` (0 = never). Reports how far the
/// workload got and what the last *successful* checkpoint covered.
struct ExtentWorkloadOutcome {
  bool committed_root = false;
  uint64_t committed_capacity = 0;
  bool power_lost = false;
  uint64_t total_ops = 0;
};

constexpr uint64_t kGrowthRounds = 6;

ExtentWorkloadOutcome RunExtentWorkload(const std::string& path,
                                        uint64_t halt) {
  StorageOptions options = ExtOptions();
  FaultInjectingDiskManager* faults = nullptr;
  FaultInjectionOptions fi;
  fi.power_loss_after_ops = halt;
  options.wrap_disk = [&faults, fi](std::unique_ptr<Disk> inner) {
    auto wrapped = std::make_unique<FaultInjectingDiskManager>(
        std::move(inner), fi);
    faults = wrapped.get();
    return std::unique_ptr<Disk>(std::move(wrapped));
  };
  ExtentWorkloadOutcome out;
  StorageManager sm;
  if (!sm.Create(path, options).ok()) return out;
  ExtentAllocator ext(sm.pool(), sm.disk());
  [&] {
    auto root_or = ext.Create(options.pages_per_extent);
    if (!root_or.ok()) return;
    if (!sm.SetRoot("extents", root_or.value()).ok()) return;
    if (!sm.Checkpoint().ok()) return;
    out.committed_root = true;
    for (uint64_t k = 1; k <= kGrowthRounds; ++k) {
      const uint64_t target = k * options.pages_per_extent;
      if (!ext.EnsureCapacity(target).ok()) return;
      if (!sm.Checkpoint().ok()) return;
      out.committed_capacity = target;
    }
  }();
  out.power_lost = faults->power_lost();
  (void)sm.Close();
  out.total_ops = faults->ops_seen();
  return out;
}

/// Crash-point sweep over a grow-and-checkpoint allocator workload: at every
/// sampled halt point the reopened directory must be exactly a committed
/// prefix — either the last checkpoint's capacity or the next round's fully
/// committed capacity (when the crash landed after Commit but before the
/// stale-catalog recycling) — with every extent whole and inside the file.
TEST(ExtentRecoveryTest, AllocateCrashReopenSweep) {
  // Trace run to size the sweep.
  uint64_t total_ops = 0;
  {
    TempFile file("extent_trace");
    const ExtentWorkloadOutcome trace = RunExtentWorkload(file.path(), 0);
    ASSERT_TRUE(trace.committed_root);
    ASSERT_EQ(trace.committed_capacity, kGrowthRounds * 4);
    ASSERT_FALSE(trace.power_lost);
    total_ops = trace.total_ops;
  }
  ASSERT_GT(total_ops, 10u);

  uint64_t max_points = 60;
  if (const char* env = std::getenv("PARADISE_CRASH_SWEEP_MAX_POINTS")) {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) max_points = parsed;
  }
  const uint64_t stride = std::max<uint64_t>(1, total_ops / max_points);

  bool saw_partial = false;
  bool saw_full = false;
  for (uint64_t halt = 1; halt <= total_ops; halt += stride) {
    TempFile file("extent_crash");
    const ExtentWorkloadOutcome run = RunExtentWorkload(file.path(), halt);

    StorageManager sm;
    ASSERT_OK(sm.Open(file.path(), ExtOptions()));
    const uint64_t page_count = sm.disk()->page_count();
    const PageId first_user =
        page_header::FirstUserPage(sm.disk()->format_version());
    if (sm.HasRoot("extents")) {
      ASSERT_OK_AND_ASSIGN(uint64_t root, sm.GetRoot("extents"));
      ExtentAllocator ext(sm.pool(), sm.disk());
      ASSERT_OK(ext.Open(static_cast<PageId>(root)));
      EXPECT_EQ(ext.pages_per_extent(), 4u) << "halt " << halt;
      const uint64_t capacity = ext.logical_page_capacity();
      // Exactly old-or-new: the last checkpoint the workload saw succeed,
      // or one more round whose Commit landed before the crash.
      EXPECT_TRUE(capacity == run.committed_capacity ||
                  capacity == run.committed_capacity + 4)
          << "halt " << halt << ": recovered capacity " << capacity
          << " vs committed " << run.committed_capacity;
      for (const PageId first : ext.extent_firsts()) {
        EXPECT_GE(first, first_user) << "halt " << halt;
        EXPECT_LE(first + ext.pages_per_extent(), page_count)
            << "halt " << halt << ": extent at page " << first
            << " sticks out of a " << page_count << "-page file";
      }
      for (uint64_t logical = 0; logical < capacity; ++logical) {
        ASSERT_OK_AND_ASSIGN(PageId physical,
                             ext.LogicalToPhysical(logical));
        EXPECT_LT(physical, page_count) << "halt " << halt;
      }
      if (capacity < kGrowthRounds * 4) saw_partial = true;
      if (capacity == kGrowthRounds * 4) saw_full = true;
    } else {
      // Crash before the directory root ever committed.
      EXPECT_FALSE(run.committed_root) << "halt " << halt;
      saw_partial = true;
    }
    ASSERT_OK(sm.Close());
  }
  EXPECT_TRUE(saw_partial) << "the sweep never interrupted the workload";
  EXPECT_TRUE(saw_full) << "the sweep never recovered the full directory";
}

TEST(ExtentRecoveryTest, DoubleFreeIsReportedAsCorruption) {
  TempFile file("extent_doublefree");
  const StorageOptions options = ExtOptions();
  DiskManager disk;
  ASSERT_OK(disk.Create(file.path(), options));
  ASSERT_OK_AND_ASSIGN(PageId a, disk.AllocatePage());
  std::vector<char> page(options.page_size, 'a');
  ASSERT_OK(disk.WritePage(a, page.data()));
  ASSERT_OK(disk.FreePage(a));
  const Status st = disk.FreePage(a);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("double free"), std::string::npos)
      << st.ToString();
  // Reallocating the page clears the tombstone: it can be freed again.
  ASSERT_OK_AND_ASSIGN(PageId b, disk.AllocatePage());
  EXPECT_EQ(b, a);
  ASSERT_OK(disk.FreePage(b));
  ASSERT_OK(disk.Close());
}

TEST(ExtentRecoveryTest, ReservedPagesCannotBeFreed) {
  TempFile file("extent_reserved");
  const StorageOptions options = ExtOptions();
  DiskManager disk;
  ASSERT_OK(disk.Create(file.path(), options));
  const PageId first_user = page_header::FirstUserPage(disk.format_version());
  for (PageId id = 0; id < first_user; ++id) {
    const Status st = disk.FreePage(id);
    EXPECT_TRUE(st.IsInvalidArgument()) << "page " << id << ": "
                                        << st.ToString();
  }
  ASSERT_OK(disk.Close());
}

/// A free page whose next-link was overwritten (with a valid checksum, so
/// only link validation can notice) must fail allocation with a free-list
/// diagnosis instead of handing out an insane page id.
TEST(ExtentRecoveryTest, CorruptedFreeListLinkIsDetectedOnAllocate) {
  TempFile file("extent_freelist");
  const StorageOptions options = ExtOptions();
  DiskManager disk;
  ASSERT_OK(disk.Create(file.path(), options));
  ASSERT_OK_AND_ASSIGN(PageId a, disk.AllocatePage());
  ASSERT_OK_AND_ASSIGN(PageId b, disk.AllocatePage());
  std::vector<char> page(options.page_size, 'z');
  ASSERT_OK(disk.WritePage(a, page.data()));
  ASSERT_OK(disk.WritePage(b, page.data()));
  ASSERT_OK(disk.FreePage(b));
  ASSERT_OK(disk.FreePage(a));  // free list: a -> b
  // Clobber a's link through the normal write path: checksum stays valid.
  std::vector<char> bogus(options.page_size, 0);
  EncodeFixed64(bogus.data(), 0x7fffffff);
  ASSERT_OK(disk.WritePage(a, bogus.data()));
  auto r = disk.AllocatePage();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("free list"), std::string::npos)
      << r.status().ToString();
}

/// The allocator-vs-catalog cross-check dbverify runs: a page that sits on
/// the free list while a committed fact extent still owns it is an
/// inconsistency the page-level checksums cannot see.
TEST(ExtentRecoveryTest, PageOnFreeListInsideExtentIsFlaggedByVerify) {
  TempFile file("extent_overlap");
  const gen::GenConfig config = TinyConfig(40, 3);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  PageId victim = kInvalidPageId;
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<Database> db,
        BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
    const std::vector<PageId>& firsts =
        db->fact()->extent_allocator().extent_firsts();
    ASSERT_FALSE(firsts.empty());
    victim = firsts.front();
  }
  ASSERT_NE(victim, kInvalidPageId);
  {
    ASSERT_OK_AND_ASSIGN(VerifyReport before, VerifyDatabaseFile(file.path()));
    ASSERT_TRUE(before.clean());
  }
  // Free the extent page behind the catalog's back and commit.
  {
    DiskManager disk;
    ASSERT_OK(disk.Open(file.path(), SmallDbOptions().storage));
    ASSERT_OK(disk.FreePage(victim));
    ASSERT_OK(disk.Close());
  }
  ASSERT_OK_AND_ASSIGN(VerifyReport report, VerifyDatabaseFile(file.path()));
  EXPECT_FALSE(report.clean());
  bool mentioned = false;
  for (const std::string& issue : report.AllIssues()) {
    if (issue.find("free list") != std::string::npos) mentioned = true;
  }
  EXPECT_TRUE(mentioned) << "no issue mentions the free-list overlap";
}

}  // namespace
}  // namespace paradise
