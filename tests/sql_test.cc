// SQL front-end tests: lexer/parser shapes and errors, binder resolution
// against a star schema, planner rules, and RunSql end to end against the
// typed-query path — plus a round-trip through olapd's wire protocol
// asserting engine error strings survive the wire intact.
#include <gtest/gtest.h>

#include "query/planner.h"
#include "query/sql.h"
#include "server/client.h"
#include "server/server.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;
using query::AggFunc;
using query::CompileSql;
using query::ParseSql;
using query::SqlQuery;

StarSchema RetailSchema() {
  StarSchema schema;
  schema.cube_name = "sales";
  schema.measures = {"volume"};
  schema.dims = {
      DimensionSpec{"product",
                    {{"pid", ColumnType::kInt32},
                     {"type", ColumnType::kString16},
                     {"category", ColumnType::kString16}}},
      DimensionSpec{"store",
                    {{"sid", ColumnType::kInt32},
                     {"city", ColumnType::kString16},
                     {"region", ColumnType::kString16}}},
  };
  return schema;
}

TEST(SqlParserTest, MinimalQuery) {
  ASSERT_OK_AND_ASSIGN(SqlQuery q, ParseSql("SELECT sum(volume) FROM sales"));
  EXPECT_EQ(q.agg, AggFunc::kSum);
  EXPECT_EQ(q.agg_argument, "volume");
  EXPECT_EQ(q.tables, std::vector<std::string>{"sales"});
  EXPECT_TRUE(q.predicates.empty());
  EXPECT_TRUE(q.group_by.empty());
}

TEST(SqlParserTest, FullQueryShape) {
  ASSERT_OK_AND_ASSIGN(
      SqlQuery q,
      ParseSql("select avg(volume), product.category, store.region "
               "from sales, product, store "
               "where sales.pid = product.pid and product.type = 'type3' "
               "  and store.city in ('city1', 'city2') "
               "group by product.category, store.region;"));
  EXPECT_EQ(q.agg, AggFunc::kAvg);
  EXPECT_EQ(q.select_columns.size(), 2u);
  EXPECT_EQ(q.select_columns[0].table, std::optional<std::string>("product"));
  EXPECT_EQ(q.tables.size(), 3u);
  ASSERT_EQ(q.predicates.size(), 3u);
  EXPECT_TRUE(q.predicates[0].rhs_column.has_value());  // join predicate
  EXPECT_EQ(q.predicates[1].values.size(), 1u);
  EXPECT_EQ(q.predicates[2].values.size(), 2u);  // IN list
  EXPECT_EQ(q.group_by.size(), 2u);
}

TEST(SqlParserTest, AllAggregates) {
  for (const auto& [name, agg] :
       std::vector<std::pair<std::string, AggFunc>>{
           {"sum", AggFunc::kSum},
           {"COUNT", AggFunc::kCount},
           {"Min", AggFunc::kMin},
           {"max", AggFunc::kMax},
           {"AVG", AggFunc::kAvg}}) {
    ASSERT_OK_AND_ASSIGN(SqlQuery q,
                         ParseSql("select " + name + "(volume) from f"));
    EXPECT_EQ(q.agg, agg) << name;
  }
}

TEST(SqlParserTest, IntegerLiterals) {
  ASSERT_OK_AND_ASSIGN(
      SqlQuery q, ParseSql("select sum(v) from f where d.a = -42"));
  ASSERT_EQ(q.predicates.size(), 1u);
  EXPECT_EQ(query::NormalizeLiteral(q.predicates[0].values[0]), -42);
}

TEST(SqlParserTest, SyntaxErrors) {
  EXPECT_TRUE(ParseSql("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("SELEKT sum(v) FROM f").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("select v from f").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseSql("select sum(v) from f where").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("select sum(v) from f where a = ")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseSql("select sum(v) from f where a in ()")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseSql("select sum(v) from f group volume")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseSql("select sum(v) from f extra tokens")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseSql("select sum(v) from f where a = 'unterminated")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseSql("select sum(v), count(v) from f")
                  .status()
                  .IsInvalidArgument());
}

TEST(SqlParserTest, MalformedSelectionLists) {
  // Every truncation or mangling of an IN list / aggregate argument is a
  // clean InvalidArgument, never a crash or an accepted query.
  const char* bad[] = {
      "select sum(v) from f where a in",
      "select sum(v) from f where a in (",
      "select sum(v) from f where a in (1,",
      "select sum(v) from f where a in (1, 2",
      "select sum(v) from f where a in (1 2)",
      "select sum(v) from f where a in (1,,2)",
      "select sum(v) from f where a in 1, 2",
      "select sum(v) from f where a = 1 and",
      "select sum(v) from f where and a = 1",
      "select sum(v) from f where a in (sum)",
      "select sum() from f",
      "select sum(v q) from f",
      "select sum from f",
  };
  for (const char* sql : bad) {
    const Status st = ParseSql(sql).status();
    EXPECT_TRUE(st.IsInvalidArgument()) << sql << " -> " << st.ToString();
    EXPECT_FALSE(st.ToString().empty()) << sql;
  }
}

TEST(SqlParserTest, EmptyGroupByIsAnError) {
  EXPECT_TRUE(
      ParseSql("select sum(v) from f group by").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("select sum(v) from f group by ;")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseSql("select sum(v) from f where a = 1 group by")
                  .status()
                  .IsInvalidArgument());
  // A trailing comma leaves the list dangling.
  EXPECT_TRUE(ParseSql("select sum(v) from f group by a,")
                  .status()
                  .IsInvalidArgument());
}

TEST(SqlBinderTest, UnknownDimensionAndAttributeNames) {
  const StarSchema schema = RetailSchema();
  // Unknown dimension qualifier in a selection.
  EXPECT_TRUE(
      CompileSql("select sum(volume) from sales where warehouse.city = 'x'",
                 schema)
          .status()
          .IsNotFound());
  // Known dimension, unknown attribute.
  EXPECT_TRUE(
      CompileSql("select sum(volume) from sales where product.color = 'red'",
                 schema)
          .status()
          .IsNotFound());
  // Unknown dimension in GROUP BY (select list repeats it, as required).
  EXPECT_TRUE(CompileSql("select sum(volume), warehouse.city from sales "
                         "group by warehouse.city",
                         schema)
                  .status()
                  .IsNotFound());
  // Known dimension, unknown attribute in GROUP BY.
  EXPECT_TRUE(CompileSql("select sum(volume), product.color from sales "
                         "group by product.color",
                         schema)
                  .status()
                  .IsNotFound());
  // Unqualified name that matches nothing anywhere.
  EXPECT_TRUE(CompileSql("select sum(volume) from sales where nothing = 1",
                         schema)
                  .status()
                  .IsNotFound());
}

TEST(SqlBinderTest, BindsGroupBySelectionsAndJoins) {
  ASSERT_OK_AND_ASSIGN(
      query::ConsolidationQuery q,
      CompileSql("select sum(volume), product.category, store.region "
                 "from sales, product, store "
                 "where sales.pid = product.pid and sales.sid = store.sid "
                 "  and product.type = 'type3' "
                 "group by product.category, store.region",
                 RetailSchema()));
  EXPECT_EQ(q.agg, AggFunc::kSum);
  EXPECT_EQ(q.dims[0].group_by_col, 2u);  // product.category
  EXPECT_EQ(q.dims[1].group_by_col, 2u);  // store.region
  ASSERT_EQ(q.dims[0].selections.size(), 1u);
  EXPECT_EQ(q.dims[0].selections[0].attr_col, 1u);  // product.type
  EXPECT_TRUE(q.dims[1].selections.empty());
}

TEST(SqlBinderTest, UnqualifiedColumnsResolveWhenUnique) {
  ASSERT_OK_AND_ASSIGN(
      query::ConsolidationQuery q,
      CompileSql("select sum(volume), category from sales "
                 "where region = 'west' group by category",
                 RetailSchema()));
  EXPECT_EQ(q.dims[0].group_by_col, 2u);
  ASSERT_EQ(q.dims[1].selections.size(), 1u);
  EXPECT_EQ(q.dims[1].selections[0].attr_col, 2u);
}

TEST(SqlBinderTest, BindErrors) {
  const StarSchema schema = RetailSchema();
  // Unknown table.
  EXPECT_TRUE(CompileSql("select sum(volume) from nonsense", schema)
                  .status()
                  .IsNotFound());
  // Unknown column.
  EXPECT_TRUE(CompileSql("select sum(volume) from sales where bogus = 1",
                         schema)
                  .status()
                  .IsNotFound());
  // Aggregate over a non-measure.
  EXPECT_TRUE(CompileSql("select sum(category) from sales", schema)
                  .status()
                  .IsInvalidArgument());
  // Select column missing from GROUP BY.
  EXPECT_TRUE(CompileSql(
                  "select sum(volume), product.category from sales", schema)
                  .status()
                  .IsInvalidArgument());
  // Selection on the key column is rejected by validation.
  EXPECT_TRUE(CompileSql("select sum(volume) from sales where product.pid = 1",
                         schema)
                  .status()
                  .IsInvalidArgument());
  // Grouping one dimension at two levels.
  EXPECT_TRUE(
      CompileSql("select sum(volume) from sales "
                 "group by product.category, product.type",
                 schema)
          .status()
          .IsNotSupported());
  // Non-star join predicate.
  EXPECT_TRUE(CompileSql(
                  "select sum(volume) from sales where product.type = "
                  "store.city",
                  schema)
                  .status()
                  .IsNotSupported());
}

class SqlEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("sql_e2e");
    ASSERT_OK_AND_ASSIGN(data_, gen::Generate(TinyConfig(300, 41)));
    ASSERT_OK_AND_ASSIGN(
        db_, BuildDatabaseFromDataset(file_->path(), data_,
                                      SmallDbOptions()));
  }

  std::unique_ptr<TempFile> file_;
  gen::SyntheticDataset data_;
  std::unique_ptr<Database> db_;
};

TEST_F(SqlEndToEndTest, SqlMatchesTypedQuery) {
  // TinyConfig dims are dim0/dim1/dim2 with attrs h01/h02, h11/h12, h21/h22.
  ASSERT_OK_AND_ASSIGN(
      SqlExecution sql,
      RunSql(db_.get(),
             "select sum(volume), dim0.h01, dim1.h11, dim2.h21 "
             "from cube, dim0, dim1, dim2 "
             "group by dim0.h01, dim1.h11, dim2.h21"));
  EXPECT_TRUE(sql.execution.result.SameAs(BruteForce(data_, gen::Query1(3))));
  EXPECT_EQ(sql.plan.engine, EngineKind::kArray);
}

TEST_F(SqlEndToEndTest, SqlSelectionQuery) {
  const std::string value = gen::AttrValue(1, 2, 0);
  ASSERT_OK_AND_ASSIGN(
      SqlExecution sql,
      RunSql(db_.get(),
             "select sum(volume), dim0.h01 from cube "
             "where dim1.h12 = '" + value + "' group by dim0.h01"));
  query::ConsolidationQuery expected_q;
  expected_q.dims.resize(3);
  expected_q.dims[0].group_by_col = 1;
  expected_q.dims[1].selections.push_back(
      query::Selection{2, {query::Literal{value}}});
  EXPECT_TRUE(sql.execution.result.SameAs(BruteForce(data_, expected_q)));
}

TEST_F(SqlEndToEndTest, PlannerRules) {
  // No selection -> array.
  ASSERT_OK_AND_ASSIGN(PlanChoice no_sel,
                       ChoosePlan(*db_, gen::Query1(3)));
  EXPECT_EQ(no_sel.engine, EngineKind::kArray);

  // Moderate selectivity (1/2 per dim on 3 dims => S = 0.125) -> array.
  ASSERT_OK_AND_ASSIGN(PlanChoice mid, ChoosePlan(*db_, gen::Query2(3)));
  EXPECT_EQ(mid.engine, EngineKind::kArray);
  EXPECT_NEAR(mid.estimated_selectivity, 0.125, 1e-9);

  // Force the crossover: raise the threshold above the estimate -> bitmap.
  PlannerOptions options;
  options.bitmap_crossover = 0.5;
  ASSERT_OK_AND_ASSIGN(PlanChoice low,
                       ChoosePlan(*db_, gen::Query2(3), options));
  EXPECT_EQ(low.engine, EngineKind::kBitmap);
  EXPECT_FALSE(low.reason.empty());
}

TEST_F(SqlEndToEndTest, PlannerFallsBackWithoutArray) {
  TempFile lean_file("sql_lean");
  DatabaseOptions options = SmallDbOptions();
  options.build_array = false;
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> lean,
      BuildDatabaseFromDataset(lean_file.path(), data_, options));
  ASSERT_OK_AND_ASSIGN(PlanChoice no_sel, ChoosePlan(*lean, gen::Query1(3)));
  EXPECT_EQ(no_sel.engine, EngineKind::kStarJoin);
  ASSERT_OK_AND_ASSIGN(PlanChoice sel, ChoosePlan(*lean, gen::Query2(3)));
  EXPECT_EQ(sel.engine, EngineKind::kBitmap);
}

TEST_F(SqlEndToEndTest, SqlErrorsSurface) {
  EXPECT_TRUE(RunSql(db_.get(), "select nonsense").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunSql(db_.get(), "select sum(volume) from nowhere")
                  .status()
                  .IsNotFound());
}

TEST_F(SqlEndToEndTest, ErrorStringsSurviveTheWire) {
  // Parse, bind and execution errors crossing olapd's wire protocol must
  // reconstruct to the exact Status (code AND message) a local call returns.
  server::OlapServer olapd(db_.get(), server::ServerOptions{});
  ASSERT_OK(olapd.Start());
  ASSERT_OK_AND_ASSIGN(auto client,
                       server::OlapClient::Connect("127.0.0.1", olapd.port()));

  auto wire_status = [&](const std::string& sql,
                         uint8_t engine = 0) -> Status {
    server::QueryRequest request;
    request.sql = sql;
    request.engine = engine;
    Result<server::OlapClient::Reply> reply = client->Query(request);
    if (!reply.ok()) return reply.status();
    if (reply->ok) return Status::OK();
    EXPECT_EQ(reply->error.error, server::WireError::kQueryFailed);
    return server::ErrorReplyToStatus(reply->error);
  };

  // Parse error.
  {
    const Status local = CompileSql("select nonsense", db_->schema()).status();
    const Status wire = wire_status("select nonsense");
    ASSERT_FALSE(local.ok());
    EXPECT_EQ(wire.code(), local.code());
    EXPECT_EQ(wire.message(), local.message());
  }
  // Bind error (unknown table).
  {
    const std::string sql = "select sum(volume) from nowhere";
    const Status local = CompileSql(sql, db_->schema()).status();
    const Status wire = wire_status(sql);
    ASSERT_TRUE(local.IsNotFound());
    EXPECT_EQ(wire.code(), local.code());
    EXPECT_EQ(wire.message(), local.message());
  }
  // Execution error: the bitmap engine rejects selection-free queries, so
  // forcing it reproduces a RunQuery-stage failure. The server runs warm,
  // so the local reference must too.
  {
    const std::string sql =
        "select sum(volume), dim0.h01 from cube group by dim0.h01";
    ASSERT_OK_AND_ASSIGN(query::ConsolidationQuery q,
                         CompileSql(sql, db_->schema()));
    RunQueryOptions warm;
    warm.cold = false;
    const Status local =
        RunQuery(db_.get(), EngineKind::kBitmap, q, warm).status();
    const Status wire = wire_status(
        sql, static_cast<uint8_t>(EngineKind::kBitmap) + 1);
    ASSERT_FALSE(local.ok());
    EXPECT_EQ(wire.code(), local.code());
    EXPECT_EQ(wire.message(), local.message());
  }

  olapd.Stop();
}

}  // namespace
}  // namespace paradise
