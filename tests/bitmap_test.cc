// Bitmap and bitmap-join-index tests: bit algebra, iteration, serialization,
// and the per-attribute-value index over fact tuples.
#include <gtest/gtest.h>

#include "common/random.h"
#include "index/bitmap.h"
#include "index/bitmap_index.h"
#include "storage/storage_manager.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::TempFile;

TEST(BitmapTest, SetTestClear) {
  Bitmap b(130);
  EXPECT_EQ(b.num_bits(), 130u);
  EXPECT_EQ(b.CountOnes(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.CountOnes(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.CountOnes(), 2u);
}

TEST(BitmapTest, AllOnes) {
  Bitmap b = Bitmap::AllOnes(70);
  EXPECT_EQ(b.CountOnes(), 70u);
  for (uint64_t i = 0; i < 70; ++i) EXPECT_TRUE(b.Test(i));
}

TEST(BitmapTest, AndOrNot) {
  Bitmap a(100), b(100);
  a.Set(1);
  a.Set(2);
  a.Set(3);
  b.Set(2);
  b.Set(3);
  b.Set(4);
  Bitmap anded = a;
  ASSERT_OK(anded.And(b));
  EXPECT_EQ(anded.CountOnes(), 2u);
  EXPECT_TRUE(anded.Test(2));
  EXPECT_TRUE(anded.Test(3));

  Bitmap ored = a;
  ASSERT_OK(ored.Or(b));
  EXPECT_EQ(ored.CountOnes(), 4u);

  Bitmap notted = a;
  notted.Not();
  EXPECT_EQ(notted.CountOnes(), 97u);
  EXPECT_FALSE(notted.Test(1));
  EXPECT_TRUE(notted.Test(0));
  // Trailing bits beyond num_bits stay zero after Not.
  notted.Not();
  EXPECT_EQ(notted.CountOnes(), 3u);
}

TEST(BitmapTest, SizeMismatchRejected) {
  Bitmap a(10), b(11);
  EXPECT_TRUE(a.And(b).IsInvalidArgument());
  EXPECT_TRUE(a.Or(b).IsInvalidArgument());
}

TEST(BitmapTest, FindNextSet) {
  Bitmap b(200);
  b.Set(5);
  b.Set(63);
  b.Set(64);
  b.Set(199);
  EXPECT_EQ(b.FindNextSet(0), 5u);
  EXPECT_EQ(b.FindNextSet(5), 5u);
  EXPECT_EQ(b.FindNextSet(6), 63u);
  EXPECT_EQ(b.FindNextSet(64), 64u);
  EXPECT_EQ(b.FindNextSet(65), 199u);
  EXPECT_EQ(b.FindNextSet(200), 200u);  // past the end
  Bitmap empty(50);
  EXPECT_EQ(empty.FindNextSet(0), 50u);
}

TEST(BitmapTest, IteratorVisitsAllSetBits) {
  Bitmap b(500);
  Random rng(3);
  std::set<uint64_t> expected;
  for (int i = 0; i < 60; ++i) {
    const uint64_t bit = rng.Uniform(500);
    b.Set(bit);
    expected.insert(bit);
  }
  std::set<uint64_t> seen;
  for (BitmapIterator it(&b); it.Valid(); it.Next()) seen.insert(it.bit());
  EXPECT_EQ(seen, expected);
}

TEST(BitmapTest, SerializeRoundTrip) {
  Bitmap b(333);
  Random rng(9);
  for (int i = 0; i < 40; ++i) b.Set(rng.Uniform(333));
  ASSERT_OK_AND_ASSIGN(Bitmap back, Bitmap::Deserialize(b.Serialize()));
  EXPECT_TRUE(back == b);
  EXPECT_EQ(b.SerializedBytes(), b.Serialize().size());
}

TEST(BitmapTest, DeserializeRejectsBadBlobs) {
  EXPECT_TRUE(Bitmap::Deserialize("abc").status().IsCorruption());
  std::string blob = Bitmap(64).Serialize();
  blob.pop_back();
  EXPECT_TRUE(Bitmap::Deserialize(blob).status().IsCorruption());
}

TEST(BitmapTest, ZeroBitBitmap) {
  Bitmap b(0);
  EXPECT_EQ(b.CountOnes(), 0u);
  EXPECT_EQ(b.FindNextSet(0), 0u);
  ASSERT_OK_AND_ASSIGN(Bitmap back, Bitmap::Deserialize(b.Serialize()));
  EXPECT_EQ(back.num_bits(), 0u);
}

class BitmapIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("bmidx");
    StorageOptions options;
    options.page_size = 4096;
    options.buffer_pool_pages = 64;
    ASSERT_OK(storage_.Create(file_->path(), options));
  }

  std::unique_ptr<TempFile> file_;
  StorageManager storage_;
};

TEST_F(BitmapIndexTest, BuildAndLookup) {
  // 100 tuples; attribute value = tuple % 4.
  BitmapJoinIndex::Builder builder(100);
  for (uint64_t t = 0; t < 100; ++t) builder.Add(static_cast<int64_t>(t % 4), t);
  ASSERT_OK_AND_ASSIGN(ObjectId dir, builder.Finish(storage_.objects()));
  ASSERT_OK_AND_ASSIGN(BitmapJoinIndex index,
                       BitmapJoinIndex::Open(storage_.objects(), dir));
  EXPECT_EQ(index.num_tuples(), 100u);
  EXPECT_EQ(index.num_values(), 4u);
  ASSERT_OK_AND_ASSIGN(Bitmap b2, index.Lookup(2));
  EXPECT_EQ(b2.CountOnes(), 25u);
  for (uint64_t t = 0; t < 100; ++t) EXPECT_EQ(b2.Test(t), t % 4 == 2);
}

TEST_F(BitmapIndexTest, AbsentValueIsAllZero) {
  BitmapJoinIndex::Builder builder(10);
  builder.Add(1, 0);
  ASSERT_OK_AND_ASSIGN(ObjectId dir, builder.Finish(storage_.objects()));
  ASSERT_OK_AND_ASSIGN(BitmapJoinIndex index,
                       BitmapJoinIndex::Open(storage_.objects(), dir));
  ASSERT_OK_AND_ASSIGN(Bitmap missing, index.Lookup(999));
  EXPECT_EQ(missing.CountOnes(), 0u);
  EXPECT_EQ(missing.num_bits(), 10u);
}

TEST_F(BitmapIndexTest, LookupAnyOrsValues) {
  BitmapJoinIndex::Builder builder(30);
  for (uint64_t t = 0; t < 30; ++t) builder.Add(static_cast<int64_t>(t % 3), t);
  ASSERT_OK_AND_ASSIGN(ObjectId dir, builder.Finish(storage_.objects()));
  ASSERT_OK_AND_ASSIGN(BitmapJoinIndex index,
                       BitmapJoinIndex::Open(storage_.objects(), dir));
  ASSERT_OK_AND_ASSIGN(Bitmap merged, index.LookupAny({0, 2}));
  EXPECT_EQ(merged.CountOnes(), 20u);
}

TEST_F(BitmapIndexTest, ValuesSortedAndBytesAccounted) {
  BitmapJoinIndex::Builder builder(8);
  builder.Add(5, 0);
  builder.Add(-3, 1);
  builder.Add(9, 2);
  ASSERT_OK_AND_ASSIGN(ObjectId dir, builder.Finish(storage_.objects()));
  ASSERT_OK_AND_ASSIGN(BitmapJoinIndex index,
                       BitmapJoinIndex::Open(storage_.objects(), dir));
  const std::vector<int64_t> values = index.Values();
  EXPECT_EQ(values, (std::vector<int64_t>{-3, 5, 9}));
  ASSERT_OK_AND_ASSIGN(uint64_t bytes, index.TotalBitmapBytes());
  EXPECT_EQ(bytes, 3 * Bitmap(8).SerializedBytes());
}

TEST_F(BitmapIndexTest, SurvivesColdReopen) {
  BitmapJoinIndex::Builder builder(50);
  for (uint64_t t = 0; t < 50; ++t) builder.Add(static_cast<int64_t>(t / 10), t);
  ASSERT_OK_AND_ASSIGN(ObjectId dir, builder.Finish(storage_.objects()));
  ASSERT_OK(storage_.FlushAndEvictAll());
  ASSERT_OK_AND_ASSIGN(BitmapJoinIndex index,
                       BitmapJoinIndex::Open(storage_.objects(), dir));
  ASSERT_OK_AND_ASSIGN(Bitmap b, index.Lookup(3));
  EXPECT_EQ(b.CountOnes(), 10u);
  EXPECT_TRUE(b.Test(30));
  EXPECT_TRUE(b.Test(39));
  EXPECT_FALSE(b.Test(40));
}

}  // namespace
}  // namespace paradise
