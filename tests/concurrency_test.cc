// Concurrency suite for the sharded storage path: multi-threaded buffer
// pool torture (distinct pages, same-page races, eviction pressure), the
// background I/O pool, chunk read-ahead accounting, quiesced cache drops,
// and fault injection under concurrency — a parallel query over a faulty
// disk must return either the exact fault-free answer or a non-OK Status,
// never a silently wrong result.
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/consolidate.h"
#include "core/parallel.h"
#include "query/engine.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "storage/io_pool.h"
#include "storage/storage_manager.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

// ---------------------------------------------------------------- IoPool --

TEST(IoPoolTest, RunsAllSubmittedTasks) {
  IoPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), 100);
}

TEST(IoPoolTest, DrainOnIdlePoolReturns) {
  IoPool pool(2);
  pool.Drain();  // must not hang
}

TEST(IoPoolTest, ShutdownRefusesNewWorkAndIsIdempotent) {
  IoPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([&ran] { ran.fetch_add(1); }));
  pool.Shutdown();  // second call is a no-op
  pool.Drain();     // after shutdown, trivially idle
  EXPECT_LE(ran.load(), 1);
}

// ------------------------------------------------- sharded pool, torture --

struct PoolFixture {
  TempFile file{"conc_pool"};
  DiskManager disk;
  std::unique_ptr<BufferPool> pool;
  std::vector<PageId> pages;

  /// Creates `num_pages` pages, each filled with a byte derived from its
  /// PageId so any cross-wired read is detectable.
  void Build(const StorageOptions& options, size_t num_pages) {
    ASSERT_OK(disk.Create(file.path(), options));
    pool = std::make_unique<BufferPool>(&disk, options);
    for (size_t i = 0; i < num_pages; ++i) {
      ASSERT_OK_AND_ASSIGN(PageGuard g, pool->NewPage());
      std::memset(g.mutable_data(), static_cast<char>(g.page_id() & 0xff),
                  options.page_size);
      pages.push_back(g.page_id());
    }
    ASSERT_OK(pool->FlushAndEvictAll());
  }
};

TEST(ConcurrentBufferPool, ParallelFetchesSeeCorrectBytes) {
  StorageOptions options;
  options.page_size = 4096;
  options.buffer_pool_pages = 256;  // 8 shards * 32 frames
  options.pool_shards = 8;
  PoolFixture fx;
  fx.Build(options, 128);
  ASSERT_GT(fx.pool->num_shards(), 1u);

  constexpr size_t kThreads = 8;
  constexpr size_t kItersPerThread = 2000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(t + 1);
      for (size_t i = 0; i < kItersPerThread; ++i) {
        const PageId id = fx.pages[rng.Uniform(fx.pages.size())];
        Result<PageGuard> g = fx.pool->FetchPage(id);
        if (!g.ok()) {
          failures.fetch_add(1);
          return;
        }
        const char expect = static_cast<char>(id & 0xff);
        const char* data = g.value().data();
        for (size_t b = 0; b < 16; ++b) {
          if (data[b] != expect) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(fx.pool->pinned_frames(), 0u);
  const BufferPoolStats stats = fx.pool->stats();
  // Every fetch was counted, none lost to races.
  EXPECT_EQ(stats.logical_reads, kThreads * kItersPerThread);
  EXPECT_EQ(stats.hits + stats.disk_reads, stats.logical_reads);
}

TEST(ConcurrentBufferPool, EvictionPressureKeepsContentsRight) {
  StorageOptions options;
  options.page_size = 4096;
  // More pages than frames: every thread constantly evicts other shards'
  // tenants' pages while they are being verified.
  options.buffer_pool_pages = 64;
  options.pool_shards = 2;
  PoolFixture fx;
  fx.Build(options, 256);

  constexpr size_t kThreads = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(100 + t);
      for (size_t i = 0; i < 1000; ++i) {
        const PageId id = fx.pages[rng.Uniform(fx.pages.size())];
        Result<PageGuard> g = fx.pool->FetchPage(id);
        if (!g.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (g.value().data()[0] != static_cast<char>(id & 0xff)) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(fx.pool->pinned_frames(), 0u);
  EXPECT_GT(fx.pool->stats().evictions, 0u);
}

TEST(ConcurrentBufferPool, SamePageStampedeReadsOnce) {
  StorageOptions options;
  options.page_size = 4096;
  options.buffer_pool_pages = 256;
  options.pool_shards = 8;
  PoolFixture fx;
  fx.Build(options, 4);
  fx.pool->ResetStats();

  // All threads hammer one page: the io_in_progress protocol must coalesce
  // the misses into a single disk read.
  const PageId id = fx.pages[0];
  constexpr size_t kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < 500; ++i) {
        Result<PageGuard> g = fx.pool->FetchPage(id);
        if (!g.ok() || g.value().data()[1] != static_cast<char>(id & 0xff)) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const BufferPoolStats stats = fx.pool->stats();
  EXPECT_EQ(stats.disk_reads, 1u);
  EXPECT_EQ(stats.logical_reads, kThreads * 500u);
}

TEST(ConcurrentBufferPool, SmallPoolsCollapseToOneShard) {
  StorageOptions options;
  options.page_size = 4096;
  options.buffer_pool_pages = 16;  // < 2 * kMinFramesPerShard
  options.pool_shards = 8;
  TempFile file("conc_one_shard");
  DiskManager disk;
  ASSERT_OK(disk.Create(file.path(), options));
  BufferPool pool(&disk, options);
  EXPECT_EQ(pool.num_shards(), 1u);
  EXPECT_EQ(pool.capacity(), 16u);
}

// ----------------------------------------------- read-ahead + cache drops --

TEST(ChunkReadAheadTest, ParallelRunRecordsPrefetches) {
  TempFile file("conc_prefetch");
  DatabaseOptions options = SmallDbOptions();
  options.storage.prefetch_depth = 4;
  options.storage.io_pool_threads = 2;
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(400, 23)));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, options));
  ASSERT_NE(db->storage()->io_pool(), nullptr);

  ASSERT_OK(db->DropCaches());
  db->storage()->pool()->ResetStats();
  const query::ConsolidationQuery q = gen::Query1(3);
  ASSERT_OK_AND_ASSIGN(query::GroupedResult result,
                       ParallelArrayConsolidate(*db->olap(), q, 2));
  EXPECT_TRUE(result.SameAs(BruteForce(data, q)));
  const BufferPoolStats stats = db->storage()->pool()->stats();
  // The read-ahead window covers every chunk after the first claim.
  EXPECT_GT(stats.prefetched, 0u);
}

TEST(ChunkReadAheadTest, DisabledPoolStillCorrect) {
  TempFile file("conc_noprefetch");
  DatabaseOptions options = SmallDbOptions();
  options.storage.io_pool_threads = 0;  // no pool, no read-ahead
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(300, 29)));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, options));
  EXPECT_EQ(db->storage()->io_pool(), nullptr);
  const query::ConsolidationQuery q = gen::Query1(3);
  ASSERT_OK_AND_ASSIGN(query::GroupedResult result,
                       ParallelArrayConsolidate(*db->olap(), q, 4));
  EXPECT_TRUE(result.SameAs(BruteForce(data, q)));
  EXPECT_EQ(db->storage()->pool()->stats().prefetched, 0u);
}

TEST(ChunkReadAheadTest, DropCachesBetweenParallelRunsIsSafe) {
  TempFile file("conc_dropcaches");
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(350, 31)));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
  const query::ConsolidationQuery q = gen::Query2(3);
  const query::GroupedResult expected = BruteForce(data, q);
  // Alternate parallel queries with cache drops: DropCaches quiesces the
  // prefetcher (idle-parked between queries) before evicting, so the
  // background pool can never re-warm or race the sweep.
  for (int round = 0; round < 5; ++round) {
    ASSERT_OK(db->DropCaches());
    ASSERT_OK_AND_ASSIGN(
        query::GroupedResult result,
        ParallelArrayConsolidateWithSelection(*db->olap(), q, 4));
    ASSERT_TRUE(result.SameAs(expected)) << "round " << round;
  }
  ASSERT_OK(db->DropCaches());
  EXPECT_EQ(db->storage()->pool()->pinned_frames(), 0u);
}

// ------------------------------------------- faults under concurrency --

struct FaultedDb {
  TempFile file{"conc_fault"};
  gen::SyntheticDataset data;
  FaultInjectingDiskManager* faults = nullptr;
  std::unique_ptr<Database> db;
};

void BuildFaultedDb(FaultedDb* out, size_t read_retry_limit) {
  ASSERT_OK_AND_ASSIGN(out->data, gen::Generate(TinyConfig(200, 5)));
  DatabaseOptions options = SmallDbOptions();
  options.storage.read_retry_limit = read_retry_limit;
  options.storage.read_retry_backoff_micros = 0;
  FaultInjectingDiskManager** slot = &out->faults;
  options.storage.wrap_disk = [slot](std::unique_ptr<Disk> inner) {
    auto wrapped =
        std::make_unique<FaultInjectingDiskManager>(std::move(inner));
    *slot = wrapped.get();
    return std::unique_ptr<Disk>(std::move(wrapped));
  };
  ASSERT_OK_AND_ASSIGN(
      out->db, BuildDatabaseFromDataset(out->file.path(), out->data, options));
  ASSERT_NE(out->faults, nullptr);
}

TEST(ConcurrentFaults, TransientReadFaultsRetryToExactAnswer) {
  FaultedDb f;
  BuildFaultedDb(&f, /*read_retry_limit=*/4);
  if (::testing::Test::HasFatalFailure()) return;
  const query::ConsolidationQuery q = gen::Query1(3);
  const query::GroupedResult expected = BruteForce(f.data, q);

  // A bounded burst of probabilistic read errors: retries must absorb every
  // one of them, concurrently, and produce the exact answer.
  for (int round = 0; round < 4; ++round) {
    ASSERT_OK(f.db->DropCaches());
    FaultInjectionOptions faults;
    faults.seed = 1000 + round;
    faults.read_error_probability = 0.05;
    faults.max_injected_faults = 3;  // transient: retry always succeeds
    f.faults->Arm(faults);
    ASSERT_OK_AND_ASSIGN(query::GroupedResult result,
                         ParallelArrayConsolidate(*f.db->olap(), q, 4));
    f.faults->Arm(FaultInjectionOptions{});  // disarm
    EXPECT_TRUE(result.SameAs(expected)) << "round " << round;
  }
}

TEST(ConcurrentFaults, HeavyFaultsNeverYieldWrongAnswer) {
  FaultedDb f;
  BuildFaultedDb(&f, /*read_retry_limit=*/0);  // no retries: errors surface
  if (::testing::Test::HasFatalFailure()) return;

  const query::ConsolidationQuery queries[] = {gen::Query1(3), gen::Query2(3)};
  const query::GroupedResult expected[] = {BruteForce(f.data, queries[0]),
                                           BruteForce(f.data, queries[1])};
  int failures_seen = 0;
  for (int round = 0; round < 12; ++round) {
    const size_t qi = round % 2;
    ASSERT_OK(f.db->DropCaches());
    FaultInjectionOptions faults;
    faults.seed = 7000 + round;
    // Unbounded fault budget and no retries: some reads fail outright, so
    // the query may (and sometimes must) error — but it must never be wrong.
    faults.read_error_probability = 0.06;
    f.faults->Arm(faults);
    Result<query::GroupedResult> result =
        qi == 0 ? ParallelArrayConsolidate(*f.db->olap(), queries[qi], 4)
                : ParallelArrayConsolidateWithSelection(*f.db->olap(),
                                                        queries[qi], 4);
    f.faults->Arm(FaultInjectionOptions{});  // disarm
    if (result.ok()) {
      EXPECT_TRUE(result.value().SameAs(expected[qi]))
          << "round " << round << ": fault produced a wrong answer";
    } else {
      ++failures_seen;
      EXPECT_FALSE(result.status().ToString().empty());
    }
  }
  // Statistically certain with these probabilities; documents that the
  // error path (not just the retry path) was exercised.
  EXPECT_GT(failures_seen, 0);
}

TEST(ConcurrentFaults, ConcurrentQueriesOverOneFaultyPool) {
  FaultedDb f;
  BuildFaultedDb(&f, /*read_retry_limit=*/2);
  if (::testing::Test::HasFatalFailure()) return;
  const query::ConsolidationQuery q = gen::Query1(3);
  const query::GroupedResult expected = BruteForce(f.data, q);

  FaultInjectionOptions faults;
  faults.seed = 77;
  faults.read_error_probability = 0.02;
  f.faults->Arm(faults);

  // Several serial consolidations racing on one pool — queries only read,
  // so they may overlap freely; each must be exact or an error.
  constexpr size_t kThreads = 4;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 3; ++i) {
        Result<query::GroupedResult> result =
            ArrayConsolidate(*f.db->olap(), q);
        if (result.ok() && !result.value().SameAs(expected)) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  f.faults->Arm(FaultInjectionOptions{});
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(f.db->storage()->pool()->pinned_frames(), 0u);
}

}  // namespace
}  // namespace paradise
