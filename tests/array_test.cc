// Tests for the chunked-array substrate: layout geometry (with
// parameterized round-trip sweeps), chunk formats including chunk-offset
// compression, and the persistent ChunkedArray.
#include <gtest/gtest.h>

#include "array/chunk.h"
#include "array/chunk_layout.h"
#include "array/chunked_array.h"
#include "common/options.h"
#include "common/random.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::TempFile;

TEST(ChunkLayoutTest, BasicCounts) {
  ASSERT_OK_AND_ASSIGN(ChunkLayout layout,
                       ChunkLayout::Make({40, 40, 40, 100}, {20, 20, 20, 10}));
  EXPECT_EQ(layout.num_dims(), 4u);
  EXPECT_EQ(layout.total_cells(), 40ULL * 40 * 40 * 100);
  EXPECT_EQ(layout.num_chunks(), 2ULL * 2 * 2 * 10);  // = 80, as in the paper
  EXPECT_EQ(layout.chunks_per_dim(),
            (std::vector<uint32_t>{2, 2, 2, 10}));
}

TEST(ChunkLayoutTest, PaperChunkCounts) {
  // §5.5.1: 40x40x40x{50,100,1000} with constant chunk dims give 40/80/800
  // chunks.
  for (const auto& [last, expected] :
       std::vector<std::pair<uint32_t, uint64_t>>{{50, 40}, {100, 80},
                                                  {1000, 800}}) {
    ASSERT_OK_AND_ASSIGN(
        ChunkLayout layout,
        ChunkLayout::Make({40, 40, 40, last}, {20, 20, 20, 10}));
    EXPECT_EQ(layout.num_chunks(), expected) << "last dim " << last;
  }
}

TEST(ChunkLayoutTest, RejectsBadArguments) {
  EXPECT_TRUE(ChunkLayout::Make({}, {}).status().IsInvalidArgument());
  EXPECT_TRUE(ChunkLayout::Make({4}, {4, 4}).status().IsInvalidArgument());
  EXPECT_TRUE(ChunkLayout::Make({0}, {1}).status().IsInvalidArgument());
  EXPECT_TRUE(ChunkLayout::Make({4}, {0}).status().IsInvalidArgument());
  // Chunk of 2^33 cells overflows the uint32 offset space.
  EXPECT_TRUE(ChunkLayout::Make({1u << 17, 1u << 17}, {1u << 17, 1u << 16})
                  .status()
                  .IsInvalidArgument());
}

TEST(ChunkLayoutTest, RejectsChunkCellCountThatWrapsUint64) {
  // Three 2^22 extents give 2^66 cells per chunk; the old validation's own
  // uint64 product wrapped to 4 and the layout was accepted, so every
  // CoordsToOffset/ChunkOffsetToCoords stored colliding uint32 offsets.
  EXPECT_TRUE(ChunkLayout::Make({1u << 22, 1u << 22, 1u << 22},
                                {1u << 22, 1u << 22, 1u << 22})
                  .status()
                  .IsInvalidArgument());
  // Even nastier: 2^16 * 2^16 * 2^32-shaped products. Five 2^13 extents are
  // 2^65 cells — wraps uint64 to 2, previously accepted.
  EXPECT_TRUE(ChunkLayout::Make({1u << 13, 1u << 13, 1u << 13, 1u << 13,
                                 1u << 13},
                                {1u << 13, 1u << 13, 1u << 13, 1u << 13,
                                 1u << 13})
                  .status()
                  .IsInvalidArgument());
  // A large-but-legal chunk (just under 2^32 cells) must stay accepted.
  ASSERT_OK_AND_ASSIGN(
      ChunkLayout layout,
      ChunkLayout::Make({1u << 16, 1u << 15}, {1u << 16, 1u << 15}));
  EXPECT_EQ(layout.num_chunks(), 1u);
  // Huge total arrays with small chunks are fine as long as the uint64 cell
  // index space holds: 2^63 total cells, 32^3-cell chunks.
  EXPECT_OK(ChunkLayout::Make({1u << 21, 1u << 21, 1u << 21}, {32, 32, 32})
                .status());
  // A total cell count past 2^64 cannot be indexed by uint64 globals and is
  // rejected even when each chunk is small.
  EXPECT_TRUE(ChunkLayout::Make({1u << 22, 1u << 22, 1u << 22}, {32, 32, 32})
                  .status()
                  .IsInvalidArgument());
}

TEST(ChunkLayoutTest, GlobalRoundTrip) {
  ASSERT_OK_AND_ASSIGN(ChunkLayout layout,
                       ChunkLayout::Make({3, 5, 7}, {2, 2, 3}));
  for (uint64_t g = 0; g < layout.total_cells(); ++g) {
    const CellCoords c = layout.GlobalToCoords(g);
    EXPECT_EQ(layout.CoordsToGlobal(c), g);
  }
}

TEST(ChunkLayoutTest, ChunkOffsetRoundTrip) {
  ASSERT_OK_AND_ASSIGN(ChunkLayout layout,
                       ChunkLayout::Make({5, 7}, {2, 3}));
  // Every cell maps to a unique (chunk, offset) and back.
  std::set<std::pair<uint64_t, uint32_t>> seen;
  for (uint32_t i = 0; i < 5; ++i) {
    for (uint32_t j = 0; j < 7; ++j) {
      const CellCoords c{i, j};
      const uint64_t chunk = layout.CoordsToChunk(c);
      const uint32_t offset = layout.CoordsToOffset(c);
      EXPECT_LT(chunk, layout.num_chunks());
      EXPECT_LT(offset, layout.ChunkCellCount(chunk));
      EXPECT_TRUE(seen.emplace(chunk, offset).second);
      EXPECT_EQ(layout.ChunkOffsetToCoords(chunk, offset), c);
    }
  }
  EXPECT_EQ(seen.size(), layout.total_cells());
}

TEST(ChunkLayoutTest, BorderChunksAreClipped) {
  ASSERT_OK_AND_ASSIGN(ChunkLayout layout, ChunkLayout::Make({5}, {3}));
  EXPECT_EQ(layout.num_chunks(), 2u);
  EXPECT_EQ(layout.ChunkCellCount(0), 3u);
  EXPECT_EQ(layout.ChunkCellCount(1), 2u);  // clipped border chunk
  EXPECT_EQ(layout.ChunkBase(1), (CellCoords{3}));
  EXPECT_EQ(layout.ChunkDims(1), (CellCoords{2}));
}

TEST(ChunkLayoutTest, SerializeRoundTrip) {
  ASSERT_OK_AND_ASSIGN(ChunkLayout layout,
                       ChunkLayout::Make({6, 8, 10}, {3, 4, 5}));
  size_t consumed = 0;
  ASSERT_OK_AND_ASSIGN(ChunkLayout back,
                       ChunkLayout::Deserialize(layout.Serialize(), &consumed));
  EXPECT_TRUE(back == layout);
  EXPECT_EQ(consumed, layout.Serialize().size());
}

// Parameterized geometry sweep over assorted shapes, including shapes where
// extents do not divide sizes.
struct LayoutCase {
  std::vector<uint32_t> dims;
  std::vector<uint32_t> extents;
};

class ChunkLayoutSweep : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(ChunkLayoutSweep, EveryCellRoundTrips) {
  const LayoutCase& tc = GetParam();
  ASSERT_OK_AND_ASSIGN(ChunkLayout layout,
                       ChunkLayout::Make(tc.dims, tc.extents));
  uint64_t cells_via_chunks = 0;
  for (uint64_t c = 0; c < layout.num_chunks(); ++c) {
    cells_via_chunks += layout.ChunkCellCount(c);
  }
  EXPECT_EQ(cells_via_chunks, layout.total_cells());
  for (uint64_t g = 0; g < layout.total_cells(); ++g) {
    const CellCoords coords = layout.GlobalToCoords(g);
    const uint64_t chunk = layout.CoordsToChunk(coords);
    const uint32_t offset = layout.CoordsToOffset(coords);
    ASSERT_EQ(layout.ChunkOffsetToCoords(chunk, offset), coords)
        << "global " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ChunkLayoutSweep,
    ::testing::Values(LayoutCase{{1}, {1}}, LayoutCase{{17}, {4}},
                      LayoutCase{{8, 8}, {8, 8}},
                      LayoutCase{{7, 11}, {3, 5}},
                      LayoutCase{{4, 6, 5}, {4, 2, 3}},
                      LayoutCase{{3, 3, 3, 3}, {2, 2, 2, 2}},
                      LayoutCase{{2, 9, 2, 5}, {1, 4, 2, 5}}));

TEST(ChunkTest, PutGetErase) {
  Chunk chunk(100);
  EXPECT_TRUE(chunk.empty());
  ASSERT_OK(chunk.Put(50, 500));
  ASSERT_OK(chunk.Put(10, 100));
  ASSERT_OK(chunk.Put(50, 555));  // overwrite
  EXPECT_EQ(chunk.num_valid(), 2u);
  EXPECT_EQ(chunk.Get(50), std::optional<int64_t>(555));
  EXPECT_EQ(chunk.Get(10), std::optional<int64_t>(100));
  EXPECT_FALSE(chunk.Get(11).has_value());
  chunk.Erase(10);
  EXPECT_FALSE(chunk.Get(10).has_value());
  chunk.Erase(10);  // idempotent
  EXPECT_EQ(chunk.num_valid(), 1u);
  EXPECT_TRUE(chunk.Put(100, 1).IsOutOfRange());
}

TEST(ChunkTest, EntriesStaySorted) {
  Chunk chunk(1000);
  Random rng(2);
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(chunk.Put(static_cast<uint32_t>(rng.Uniform(1000)), i));
  }
  for (size_t i = 1; i < chunk.entries().size(); ++i) {
    EXPECT_LT(chunk.entries()[i - 1].offset, chunk.entries()[i].offset);
  }
}

TEST(ChunkTest, AppendSortedEnforcesOrder) {
  Chunk chunk(10);
  ASSERT_OK(chunk.AppendSorted(1, 10));
  ASSERT_OK(chunk.AppendSorted(5, 50));
  EXPECT_TRUE(chunk.AppendSorted(5, 51).IsInvalidArgument());
  EXPECT_TRUE(chunk.AppendSorted(2, 20).IsInvalidArgument());
  EXPECT_TRUE(chunk.AppendSorted(10, 1).IsOutOfRange());
}

TEST(ChunkTest, SparseSerializeRoundTrip) {
  Chunk chunk(500);
  Random rng(8);
  for (int i = 0; i < 60; ++i) {
    ASSERT_OK(chunk.Put(static_cast<uint32_t>(rng.Uniform(500)),
                        rng.UniformRange(-1000, 1000)));
  }
  const std::string blob = chunk.Serialize(ChunkFormat::kOffsetCompressed);
  EXPECT_EQ(blob.size(), Chunk::SparseBytes(chunk.num_valid()));
  EXPECT_EQ(blob.size(),
            chunk.SerializedBytes(ChunkFormat::kOffsetCompressed));
  ASSERT_OK_AND_ASSIGN(Chunk back, Chunk::Deserialize(blob));
  EXPECT_TRUE(back == chunk);
}

TEST(ChunkTest, DenseSerializeRoundTrip) {
  Chunk chunk(64);
  ASSERT_OK(chunk.Put(0, -5));
  ASSERT_OK(chunk.Put(63, 7));
  ASSERT_OK(chunk.Put(32, 0));  // zero values must stay distinguishable
  const std::string blob = chunk.Serialize(ChunkFormat::kDense);
  EXPECT_EQ(blob.size(), Chunk::DenseBytes(64));
  EXPECT_EQ(blob.size(), chunk.SerializedBytes(ChunkFormat::kDense));
  ASSERT_OK_AND_ASSIGN(Chunk back, Chunk::Deserialize(blob));
  EXPECT_TRUE(back == chunk);
  EXPECT_EQ(back.Get(32), std::optional<int64_t>(0));
  EXPECT_FALSE(back.Get(31).has_value());
}

TEST(ChunkTest, AutoPicksSmallerFormat) {
  // With the packed codecs off the table (pre-v5 files), kAuto is the
  // legacy sparse-vs-dense rule, ties to offset-compressed.
  Chunk sparse(1000);
  ASSERT_OK(sparse.Put(3, 1));
  EXPECT_EQ(sparse.ResolveFormat(ChunkFormat::kAuto, /*allow_packed=*/false),
            ChunkFormat::kOffsetCompressed);

  Chunk dense(10);
  for (uint32_t i = 0; i < 10; ++i) ASSERT_OK(dense.Put(i, i));
  EXPECT_EQ(dense.ResolveFormat(ChunkFormat::kAuto, /*allow_packed=*/false),
            ChunkFormat::kDense);
  // Auto serialization round-trips either way.
  ASSERT_OK_AND_ASSIGN(
      Chunk back,
      Chunk::Deserialize(dense.Serialize(ChunkFormat::kAuto,
                                         /*allow_packed=*/false)));
  EXPECT_TRUE(back == dense);
}

TEST(ChunkTest, AutoPrefersPackedFormatsWhenSmaller) {
  // Both example chunks bit-pack far below the legacy encodings, so the
  // full kAuto rule picks a packed codec — and never one that is larger
  // than what the legacy rule would have chosen. (A near-empty chunk is
  // different: below ~2 cells the packed header + anchor floor of 23 bytes
  // exceeds the 9+12n sparse layout and kAuto keeps the legacy pick.)
  Chunk sparse(1000);
  for (uint32_t off = 3; off < 1000; off += 20) ASSERT_OK(sparse.Put(off, 1));
  const ChunkFormat picked = sparse.ResolveFormat(ChunkFormat::kAuto);
  EXPECT_TRUE(picked == ChunkFormat::kBitPacked ||
              picked == ChunkFormat::kDiffSequence)
      << ChunkFormatToString(picked);
  for (ChunkFormat f :
       {ChunkFormat::kDense, ChunkFormat::kOffsetCompressed,
        ChunkFormat::kDiffSequence, ChunkFormat::kBitPacked}) {
    EXPECT_LE(sparse.SerializedBytes(picked), sparse.SerializedBytes(f));
  }
  const std::string blob = sparse.Serialize(ChunkFormat::kAuto);
  EXPECT_EQ(blob.size(), sparse.SerializedBytes(ChunkFormat::kAuto));
  ASSERT_OK_AND_ASSIGN(Chunk back, Chunk::Deserialize(blob));
  EXPECT_TRUE(back == sparse);

  Chunk dense(10);
  for (uint32_t i = 0; i < 10; ++i) ASSERT_OK(dense.Put(i, i));
  const ChunkFormat dense_pick = dense.ResolveFormat(ChunkFormat::kAuto);
  EXPECT_LE(dense.SerializedBytes(dense_pick),
            dense.SerializedBytes(ChunkFormat::kDense));
  ASSERT_OK_AND_ASSIGN(
      Chunk dense_back,
      Chunk::Deserialize(dense.Serialize(ChunkFormat::kAuto)));
  EXPECT_TRUE(dense_back == dense);
}

TEST(ChunkTest, DeserializeRejectsGarbage) {
  EXPECT_TRUE(Chunk::Deserialize("abc").status().IsCorruption());
  std::string blob = Chunk(5).Serialize(ChunkFormat::kOffsetCompressed);
  blob[0] = 9;  // unknown tag
  EXPECT_TRUE(Chunk::Deserialize(blob).status().IsCorruption());
}

TEST(ChunkViewTest, SparseViewMatchesChunk) {
  Chunk chunk(5000);
  Random rng(21);
  for (int i = 0; i < 300; ++i) {
    ASSERT_OK(chunk.Put(static_cast<uint32_t>(rng.Uniform(5000)),
                        rng.UniformRange(-50, 50)));
  }
  const std::string blob = chunk.Serialize(ChunkFormat::kOffsetCompressed);
  ASSERT_OK_AND_ASSIGN(ChunkView view, ChunkView::Make(blob));
  EXPECT_TRUE(view.sparse());
  EXPECT_EQ(view.capacity(), 5000u);
  EXPECT_EQ(view.num_valid(), chunk.num_valid());
  for (uint32_t off = 0; off < 5000; ++off) {
    ASSERT_EQ(view.Get(off), chunk.Get(off)) << "offset " << off;
  }
}

TEST(ChunkViewTest, DenseViewMatchesChunk) {
  Chunk chunk(512);
  Random rng(22);
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(chunk.Put(static_cast<uint32_t>(rng.Uniform(512)),
                        rng.UniformRange(0, 9)));
  }
  const std::string blob = chunk.Serialize(ChunkFormat::kDense);
  ASSERT_OK_AND_ASSIGN(ChunkView view, ChunkView::Make(blob));
  EXPECT_FALSE(view.sparse());
  EXPECT_EQ(view.num_valid(), chunk.num_valid());
  for (uint32_t off = 0; off < 512; ++off) {
    ASSERT_EQ(view.Get(off), chunk.Get(off));
  }
}

TEST(ChunkViewTest, ForEachVisitsInOffsetOrder) {
  Chunk chunk(100);
  ASSERT_OK(chunk.Put(40, 4));
  ASSERT_OK(chunk.Put(10, 1));
  ASSERT_OK(chunk.Put(90, 9));
  for (ChunkFormat fmt :
       {ChunkFormat::kOffsetCompressed, ChunkFormat::kDense}) {
    const std::string blob = chunk.Serialize(fmt);
    ASSERT_OK_AND_ASSIGN(ChunkView view, ChunkView::Make(blob));
    std::vector<std::pair<uint32_t, int64_t>> seen;
    view.ForEach([&](uint32_t off, int64_t v) { seen.emplace_back(off, v); });
    EXPECT_EQ(seen, (std::vector<std::pair<uint32_t, int64_t>>{
                        {10, 1}, {40, 4}, {90, 9}}));
  }
}

TEST(ChunkViewTest, SparseLowerBoundMonotoneProbing) {
  Chunk chunk(1000);
  for (uint32_t off = 5; off < 1000; off += 10) ASSERT_OK(chunk.Put(off, off));
  const std::string blob = chunk.Serialize(ChunkFormat::kOffsetCompressed);
  ASSERT_OK_AND_ASSIGN(ChunkView view, ChunkView::Make(blob));
  uint32_t pos = 0;
  for (uint32_t probe = 0; probe < 1000; probe += 7) {
    pos = view.SparseLowerBound(probe, pos);
    if (pos < view.num_valid()) {
      EXPECT_GE(view.SparseEntry(pos).offset, probe);
      if (pos > 0) EXPECT_LT(view.SparseEntry(pos - 1).offset, probe);
    }
  }
  EXPECT_EQ(view.SparseLowerBound(996, 0), view.num_valid());
}

TEST(ChunkViewTest, RejectsMalformedBlobs) {
  EXPECT_TRUE(ChunkView::Make("ab").status().IsCorruption());
  std::string blob = Chunk(5).Serialize(ChunkFormat::kOffsetCompressed);
  blob[0] = 7;
  EXPECT_TRUE(ChunkView::Make(blob).status().IsCorruption());
  blob = Chunk(64).Serialize(ChunkFormat::kDense);
  blob.pop_back();
  EXPECT_TRUE(ChunkView::Make(blob).status().IsCorruption());
}

TEST(ChunkViewTest, OutOfRangeGetIsInvalid) {
  Chunk chunk(10);
  ASSERT_OK(chunk.Put(3, 33));
  ASSERT_OK_AND_ASSIGN(
      ChunkView view,
      ChunkView::Make(chunk.Serialize(ChunkFormat::kOffsetCompressed)));
  EXPECT_FALSE(view.Get(10).has_value());
  EXPECT_FALSE(view.Get(4096).has_value());
}

class ChunkedArrayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("carray");
    StorageOptions options;
    options.page_size = 4096;
    options.buffer_pool_pages = 64;
    ASSERT_OK(storage_.Create(file_->path(), options));
  }

  Result<ChunkedArray> BuildSmall(ChunkFormat format) {
    PARADISE_ASSIGN_OR_RETURN(ChunkLayout layout,
                              ChunkLayout::Make({6, 8}, {3, 4}));
    ArrayOptions options;
    options.chunk_format = format;
    ChunkedArray::Builder builder(&storage_, layout, options);
    // Diagonal plus a few extras.
    for (uint32_t i = 0; i < 6; ++i) {
      PARADISE_RETURN_IF_ERROR(
          builder.Put({i, i}, static_cast<int64_t>(i) * 10));
    }
    PARADISE_RETURN_IF_ERROR(builder.Put({0, 7}, -1));
    return builder.Finish();
  }

  std::unique_ptr<TempFile> file_;
  StorageManager storage_;
};

TEST_F(ChunkedArrayTest, BuildAndReadCells) {
  ASSERT_OK_AND_ASSIGN(ChunkedArray array,
                       BuildSmall(ChunkFormat::kOffsetCompressed));
  EXPECT_EQ(array.num_valid_cells(), 7u);
  ASSERT_OK_AND_ASSIGN(std::optional<int64_t> v, array.GetCell({3, 3}));
  EXPECT_EQ(v, std::optional<int64_t>(30));
  ASSERT_OK_AND_ASSIGN(v, array.GetCell({0, 7}));
  EXPECT_EQ(v, std::optional<int64_t>(-1));
  ASSERT_OK_AND_ASSIGN(v, array.GetCell({1, 2}));
  EXPECT_FALSE(v.has_value());
}

TEST_F(ChunkedArrayTest, BuilderValidatesCoords) {
  ASSERT_OK_AND_ASSIGN(ChunkLayout layout, ChunkLayout::Make({4}, {2}));
  ChunkedArray::Builder builder(&storage_, layout, ArrayOptions{});
  EXPECT_TRUE(builder.Put({4}, 1).IsOutOfRange());
  EXPECT_TRUE(builder.Put({0, 0}, 1).IsInvalidArgument());
  EXPECT_TRUE(builder.PutGlobal(4, 1).IsOutOfRange());
}

TEST_F(ChunkedArrayTest, ScanVisitsNonEmptyChunksInOrder) {
  ASSERT_OK_AND_ASSIGN(ChunkedArray array,
                       BuildSmall(ChunkFormat::kOffsetCompressed));
  uint64_t prev = 0;
  bool first = true;
  uint64_t total = 0;
  ASSERT_OK(array.ScanChunks([&](uint64_t chunk_no, const Chunk& chunk) {
    if (!first) EXPECT_GT(chunk_no, prev);
    first = false;
    prev = chunk_no;
    EXPECT_GT(chunk.num_valid(), 0u);
    total += chunk.num_valid();
    return Status::OK();
  }));
  EXPECT_EQ(total, 7u);
}

TEST_F(ChunkedArrayTest, PutCellAndEraseCell) {
  ASSERT_OK_AND_ASSIGN(ChunkedArray array,
                       BuildSmall(ChunkFormat::kOffsetCompressed));
  ASSERT_OK(array.PutCell({1, 2}, 99));
  ASSERT_OK_AND_ASSIGN(std::optional<int64_t> v, array.GetCell({1, 2}));
  EXPECT_EQ(v, std::optional<int64_t>(99));
  ASSERT_OK(array.PutCell({1, 2}, 100));  // overwrite
  ASSERT_OK_AND_ASSIGN(v, array.GetCell({1, 2}));
  EXPECT_EQ(v, std::optional<int64_t>(100));
  ASSERT_OK(array.EraseCell({1, 2}));
  ASSERT_OK_AND_ASSIGN(v, array.GetCell({1, 2}));
  EXPECT_FALSE(v.has_value());
  EXPECT_EQ(array.num_valid_cells(), 7u);
}

TEST_F(ChunkedArrayTest, PersistsAcrossReopen) {
  ObjectId meta = kInvalidObjectId;
  {
    ASSERT_OK_AND_ASSIGN(ChunkedArray array,
                         BuildSmall(ChunkFormat::kOffsetCompressed));
    ASSERT_OK(array.PutCell({5, 0}, 77));
    ASSERT_OK(array.Sync());
    meta = array.meta_oid();
  }
  ASSERT_OK(storage_.FlushAndEvictAll());
  ASSERT_OK_AND_ASSIGN(ChunkedArray array, ChunkedArray::Open(&storage_, meta));
  EXPECT_EQ(array.num_valid_cells(), 8u);
  ASSERT_OK_AND_ASSIGN(std::optional<int64_t> v, array.GetCell({5, 0}));
  EXPECT_EQ(v, std::optional<int64_t>(77));
  ASSERT_OK_AND_ASSIGN(v, array.GetCell({4, 4}));
  EXPECT_EQ(v, std::optional<int64_t>(40));
}

TEST_F(ChunkedArrayTest, DenseAndSparseFormatsAgree) {
  ASSERT_OK_AND_ASSIGN(ChunkedArray sparse,
                       BuildSmall(ChunkFormat::kOffsetCompressed));
  ASSERT_OK_AND_ASSIGN(ChunkedArray dense, BuildSmall(ChunkFormat::kDense));
  for (uint32_t i = 0; i < 6; ++i) {
    for (uint32_t j = 0; j < 8; ++j) {
      ASSERT_OK_AND_ASSIGN(std::optional<int64_t> a, sparse.GetCell({i, j}));
      ASSERT_OK_AND_ASSIGN(std::optional<int64_t> b, dense.GetCell({i, j}));
      EXPECT_EQ(a, b) << "(" << i << "," << j << ")";
    }
  }
  // Dense chunks are bigger for this sparse data — unless a forced global
  // format (the CI codec-matrix job) has collapsed both arrays onto one
  // codec, in which case the sizes are legitimately equal.
  if (!ForcedChunkFormatFromEnv().has_value()) {
    EXPECT_LT(sparse.TotalDataBytes(), dense.TotalDataBytes());
  }
}

TEST_F(ChunkedArrayTest, EmptyChunksCostNothing) {
  ASSERT_OK_AND_ASSIGN(ChunkLayout layout,
                       ChunkLayout::Make({100, 100}, {10, 10}));
  ChunkedArray::Builder builder(&storage_, layout, ArrayOptions{});
  ASSERT_OK(builder.Put({0, 0}, 1));  // exactly one chunk populated
  ASSERT_OK_AND_ASSIGN(ChunkedArray array, builder.Finish());
  EXPECT_FALSE(array.ChunkIsEmpty(0));
  EXPECT_EQ(array.ChunkValidCount(0), 1u);
  for (uint64_t c = 1; c < array.layout().num_chunks(); ++c) {
    EXPECT_TRUE(array.ChunkIsEmpty(c));
  }
  // Reading an empty chunk returns an empty chunk without I/O.
  storage_.pool()->ResetStats();
  ASSERT_OK_AND_ASSIGN(std::optional<int64_t> v, array.GetCell({99, 99}));
  EXPECT_FALSE(v.has_value());
  EXPECT_EQ(storage_.pool()->stats().logical_reads, 0u);
}

TEST_F(ChunkedArrayTest, StorageAccounting) {
  ASSERT_OK_AND_ASSIGN(ChunkedArray array,
                       BuildSmall(ChunkFormat::kOffsetCompressed));
  // 4 non-empty chunks of the 6x8/3x4 grid hold the diagonal + (0,7).
  EXPECT_GT(array.TotalDataBytes(), 0u);
  ASSERT_OK_AND_ASSIGN(uint64_t pages, array.TotalPages());
  EXPECT_GT(pages, 0u);
}

}  // namespace
}  // namespace paradise
