// Snowflake mapping tests (§2.2): normalize (with FD validation), persist,
// load, denormalize, and rebuild a star DimensionTable that matches the
// original.
#include <gtest/gtest.h>

#include "schema/snowflake.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::TempFile;

class SnowflakeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("snowflake");
    StorageOptions options;
    options.page_size = 4096;
    options.buffer_pool_pages = 64;
    ASSERT_OK(storage_.Create(file_->path(), options));
    schema_ = Schema({{"pid", ColumnType::kInt32},
                      {"type", ColumnType::kString16},
                      {"category", ColumnType::kString16}});
  }

  /// A strictly hierarchical product dimension: 18 products, 6 types,
  /// 3 categories; type t belongs to category t % 3.
  Result<DimensionTable> MakeFlat() {
    PARADISE_ASSIGN_OR_RETURN(
        DimensionTable flat,
        DimensionTable::Create(storage_.pool(), "product", schema_));
    for (int32_t pid = 0; pid < 18; ++pid) {
      Tuple row(&schema_);
      row.SetInt32(0, pid);
      const int type = pid % 6;
      PARADISE_RETURN_IF_ERROR(
          row.SetString(1, "type" + std::to_string(type)));
      PARADISE_RETURN_IF_ERROR(
          row.SetString(2, "cat" + std::to_string(type % 3)));
      PARADISE_RETURN_IF_ERROR(flat.Append(row));
    }
    return flat;
  }

  std::unique_ptr<TempFile> file_;
  StorageManager storage_;
  Schema schema_;
};

TEST_F(SnowflakeTest, NormalizeBuildsLevelTables) {
  ASSERT_OK_AND_ASSIGN(DimensionTable flat, MakeFlat());
  ASSERT_OK_AND_ASSIGN(SnowflakeDimension snow,
                       SnowflakeDimension::Normalize(flat));
  EXPECT_EQ(snow.num_levels(), 2u);
  EXPECT_EQ(snow.level_names(),
            (std::vector<std::string>{"type", "category"}));
  EXPECT_EQ(snow.base().size(), 18u);
  EXPECT_EQ(snow.level(0).size(), 6u);   // types
  EXPECT_EQ(snow.level(1).size(), 3u);   // categories
  // FK chain: type t -> category t % 3 (codes follow first appearance).
  for (const SnowflakeLevelRow& row : snow.level(0)) {
    EXPECT_EQ(row.parent_id, row.id % 3) << row.value;
  }
  for (const SnowflakeLevelRow& row : snow.level(1)) {
    EXPECT_EQ(row.parent_id, -1);  // top level has no parent
  }
}

TEST_F(SnowflakeTest, NormalizeRejectsFdViolation) {
  ASSERT_OK_AND_ASSIGN(
      DimensionTable flat,
      DimensionTable::Create(storage_.pool(), "broken", schema_));
  // Two members share type "t0" but disagree on category: not a snowflake.
  for (int i = 0; i < 2; ++i) {
    Tuple row(&schema_);
    row.SetInt32(0, i);
    ASSERT_OK(row.SetString(1, "t0"));
    ASSERT_OK(row.SetString(2, "cat" + std::to_string(i)));
    ASSERT_OK(flat.Append(row));
  }
  Result<SnowflakeDimension> snow = SnowflakeDimension::Normalize(flat);
  ASSERT_FALSE(snow.ok());
  EXPECT_TRUE(snow.status().IsInvalidArgument());
  EXPECT_NE(snow.status().message().find("not a snowflake"),
            std::string::npos);
}

TEST_F(SnowflakeTest, DenormalizeMatchesOriginal) {
  ASSERT_OK_AND_ASSIGN(DimensionTable flat, MakeFlat());
  ASSERT_OK_AND_ASSIGN(SnowflakeDimension snow,
                       SnowflakeDimension::Normalize(flat));
  ASSERT_OK_AND_ASSIGN(std::vector<std::vector<std::string>> values,
                       snow.Denormalize());
  ASSERT_EQ(values.size(), flat.num_rows());
  for (uint32_t m = 0; m < flat.num_rows(); ++m) {
    EXPECT_EQ(values[m][0], flat.rows()[m].GetString(1));
    EXPECT_EQ(values[m][1], flat.rows()[m].GetString(2));
  }
}

TEST_F(SnowflakeTest, PersistLoadRoundTrip) {
  ASSERT_OK_AND_ASSIGN(DimensionTable flat, MakeFlat());
  ASSERT_OK_AND_ASSIGN(SnowflakeDimension snow,
                       SnowflakeDimension::Normalize(flat));
  ASSERT_OK(snow.Persist(&storage_));
  ASSERT_OK(storage_.FlushAndEvictAll());
  ASSERT_OK_AND_ASSIGN(
      SnowflakeDimension loaded,
      SnowflakeDimension::Load(&storage_, "product", {"type", "category"}));
  EXPECT_EQ(loaded.base().size(), snow.base().size());
  for (size_t l = 0; l < 2; ++l) {
    ASSERT_EQ(loaded.level(l).size(), snow.level(l).size());
    for (size_t i = 0; i < snow.level(l).size(); ++i) {
      EXPECT_EQ(loaded.level(l)[i].value, snow.level(l)[i].value);
      EXPECT_EQ(loaded.level(l)[i].parent_id, snow.level(l)[i].parent_id);
    }
  }
}

TEST_F(SnowflakeTest, ToDimensionTableRebuildsStarForm) {
  ASSERT_OK_AND_ASSIGN(DimensionTable flat, MakeFlat());
  ASSERT_OK_AND_ASSIGN(SnowflakeDimension snow,
                       SnowflakeDimension::Normalize(flat));
  ASSERT_OK_AND_ASSIGN(DimensionTable rebuilt,
                       snow.ToDimensionTable(storage_.pool(), schema_));
  ASSERT_EQ(rebuilt.num_rows(), flat.num_rows());
  for (uint32_t m = 0; m < flat.num_rows(); ++m) {
    EXPECT_EQ(rebuilt.rows()[m].GetInt32(0), flat.rows()[m].GetInt32(0));
    EXPECT_EQ(rebuilt.rows()[m].GetString(1), flat.rows()[m].GetString(1));
    EXPECT_EQ(rebuilt.rows()[m].GetString(2), flat.rows()[m].GetString(2));
  }
  // Dictionaries (and so dense codes) also agree.
  ASSERT_OK_AND_ASSIGN(const AttributeDictionary* a, flat.Dictionary(1));
  ASSERT_OK_AND_ASSIGN(const AttributeDictionary* b, rebuilt.Dictionary(1));
  EXPECT_EQ(a->code_to_display, b->code_to_display);
}

TEST_F(SnowflakeTest, SingleLevelDimension) {
  const Schema one_level({{"k", ColumnType::kInt32},
                          {"name", ColumnType::kString16}});
  ASSERT_OK_AND_ASSIGN(
      DimensionTable flat,
      DimensionTable::Create(storage_.pool(), "simple", one_level));
  for (int32_t k = 0; k < 4; ++k) {
    Tuple row(&one_level);
    row.SetInt32(0, k);
    ASSERT_OK(row.SetString(1, "n" + std::to_string(k % 2)));
    ASSERT_OK(flat.Append(row));
  }
  ASSERT_OK_AND_ASSIGN(SnowflakeDimension snow,
                       SnowflakeDimension::Normalize(flat));
  EXPECT_EQ(snow.num_levels(), 1u);
  ASSERT_OK_AND_ASSIGN(auto values, snow.Denormalize());
  EXPECT_EQ(values[3][0], "n1");
}

TEST_F(SnowflakeTest, LoadMissingDimensionFails) {
  EXPECT_TRUE(SnowflakeDimension::Load(&storage_, "ghost", {"l"})
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace paradise
