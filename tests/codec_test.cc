// Codec conformance harness: every chunk format must be an invisible
// storage detail. Each adversarial chunk round-trips through every
// ChunkFormat, and ChunkView probing (Get), iteration (ForEach), monotone
// lower-bound walks, and the batch aggregation kernels must produce results
// cell-for-cell identical to the kOffsetCompressed baseline. A seeded fuzz
// mode sweeps random shapes, checked-in golden byte fixtures pin the
// serialized layouts, and the compat tests prove pre-v5 files keep the
// legacy encodings (and reject the packed ones) exactly as PR 1/2 wrote
// them.
#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "array/chunk.h"
#include "array/chunk_layout.h"
#include "array/chunked_array.h"
#include "common/options.h"
#include "common/random.h"
#include "core/kernels/consolidate_kernel.h"
#include "query/result.h"
#include "storage/page.h"
#include "storage/storage_manager.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::TempFile;

// All policy-level formats a caller can request.
const std::vector<ChunkFormat> kAllFormats = {
    ChunkFormat::kDense,        ChunkFormat::kOffsetCompressed,
    ChunkFormat::kAuto,         ChunkFormat::kLzwDense,
    ChunkFormat::kDiffSequence, ChunkFormat::kBitPacked,
};

// The concrete (storable) formats used for golden fixtures — kAuto and
// kLzwDense-as-policy resolve to these or to the LZW wrapping of kDense.
const std::vector<ChunkFormat> kConcreteFormats = {
    ChunkFormat::kDense,        ChunkFormat::kOffsetCompressed,
    ChunkFormat::kLzwDense,     ChunkFormat::kDiffSequence,
    ChunkFormat::kBitPacked,
};

std::string FormatTag(ChunkFormat f) {
  switch (f) {
    case ChunkFormat::kDense: return "dense";
    case ChunkFormat::kOffsetCompressed: return "offset";
    case ChunkFormat::kAuto: return "auto";
    case ChunkFormat::kLzwDense: return "lzw";
    case ChunkFormat::kDiffSequence: return "diffseq";
    case ChunkFormat::kBitPacked: return "bitpacked";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Adversarial chunk battery.

struct NamedChunk {
  std::string name;
  Chunk chunk;
};

Chunk MakeChunk(uint32_t capacity,
                const std::vector<ChunkEntry>& entries) {
  Chunk chunk(capacity);
  for (const ChunkEntry& e : entries) {
    EXPECT_OK(chunk.AppendSorted(e.offset, e.value));
  }
  return chunk;
}

std::vector<NamedChunk> AdversarialChunks() {
  std::vector<NamedChunk> cases;
  cases.push_back({"empty", Chunk(100)});
  cases.push_back({"single_at_zero", MakeChunk(100, {{0, 42}})});
  cases.push_back({"single_cell_cap1", MakeChunk(1, {{0, -7}})});
  cases.push_back({"single_at_max_offset", MakeChunk(100, {{99, 1234567}})});
  {
    // Every cell valid: the dense encoding's home turf; the packed codecs
    // must still reproduce it (gap bits collapse to zero under diffseq).
    Chunk full(64);
    for (uint32_t i = 0; i < 64; ++i) {
      EXPECT_OK(full.AppendSorted(i, static_cast<int64_t>(i) * 3 - 50));
    }
    cases.push_back({"full_dense", std::move(full)});
  }
  {
    // Clustered runs: stretches of consecutive offsets separated by long
    // gaps — the shape difference-sequence compression is built for, and
    // the one that stresses the per-block anchors (a run can straddle a
    // block boundary).
    Chunk clustered(4096);
    uint32_t off = 5;
    int64_t v = -1000;
    while (off + 40 < 4096) {
      for (uint32_t i = 0; i < 37; ++i) {
        EXPECT_OK(clustered.AppendSorted(off + i, v++));
      }
      off += 37 + 300;
    }
    cases.push_back({"clustered_runs", std::move(clustered)});
  }
  {
    // Uniform sparse: constant stride, so every diffseq gap packs to the
    // same width; exercises multi-block directories (585 entries).
    Chunk uniform(4096);
    for (uint32_t off = 0; off < 4096; off += 7) {
      EXPECT_OK(uniform.AppendSorted(off, static_cast<int64_t>(off) * 11));
    }
    cases.push_back({"uniform_sparse", std::move(uniform)});
  }
  {
    // Max widths: 65536-capacity chunk whose offsets need the full 16 bits
    // and whose values span INT64_MIN..INT64_MAX, forcing val_bits = 64 and
    // exercising the two's-complement-safe min/max subtraction.
    Chunk wide(65536);
    EXPECT_OK(wide.AppendSorted(0, std::numeric_limits<int64_t>::min()));
    EXPECT_OK(wide.AppendSorted(1, 0));
    EXPECT_OK(wide.AppendSorted(32768, -1));
    EXPECT_OK(wide.AppendSorted(65535, std::numeric_limits<int64_t>::max()));
    cases.push_back({"max_width", std::move(wide)});
  }
  {
    // All-equal values pack to val_bits = 0: the value stream vanishes.
    Chunk constant(512);
    for (uint32_t off = 3; off < 512; off += 5) {
      EXPECT_OK(constant.AppendSorted(off, -123456789));
    }
    cases.push_back({"constant_values", std::move(constant)});
  }
  {
    // Exactly one full block plus one overflow entry: the directory's
    // smallest multi-block shape.
    Chunk edge(2048);
    for (uint32_t i = 0; i < kPackedChunkBlock + 1; ++i) {
      EXPECT_OK(edge.AppendSorted(i * 3, static_cast<int64_t>(i) - 64));
    }
    cases.push_back({"block_boundary", std::move(edge)});
  }
  return cases;
}

// ---------------------------------------------------------------------------
// Conformance checks: every format against the kOffsetCompressed baseline.

ChunkView MustView(const std::string& blob) {
  Result<std::string> unwrapped = UnwrapChunkBlob(blob);
  if (!unwrapped.ok()) {
    ADD_FAILURE() << "unwrap failed: " << unwrapped.status().ToString();
    std::abort();
  }
  // Views borrow the buffer; stash it for the test's lifetime (a deque so
  // growth never relocates earlier blobs out from under live views).
  static std::deque<std::string>* arena = new std::deque<std::string>();
  arena->push_back(std::move(unwrapped).value());
  Result<ChunkView> view = ChunkView::Make(arena->back());
  if (!view.ok()) {
    ADD_FAILURE() << "view rejected: " << view.status().ToString();
    std::abort();
  }
  return *view;
}

// Aggregates `view` as a 1-D chunk grouped into `groups` buckets
// (offset % groups) via the batch kernels, plus a split at an arbitrary
// morsel boundary to exercise partial-block slicing in the packed decode.
std::vector<query::AggState> KernelAggregate(const ChunkView& view,
                                             uint32_t groups) {
  kernels::KernelTables tables;
  std::vector<uint64_t> contribution(view.capacity());
  for (uint32_t i = 0; i < view.capacity(); ++i) contribution[i] = i % groups;
  tables.BuildRaw({view.capacity()}, {{0, contribution}});
  std::vector<query::AggState> flat(groups);
  kernels::AggregateView(view, tables, flat.data());

  // The same range split into three uneven morsels must agree.
  std::vector<query::AggState> split(groups);
  const uint32_t total = kernels::PositionCount(view);
  const uint32_t a = total / 3, b = total - total / 5;
  uint64_t cells = 0;
  cells += kernels::AggregateRange(view, 0, a, tables, split.data());
  cells += kernels::AggregateRange(view, a, b, tables, split.data());
  cells += kernels::AggregateRange(view, b, total, tables, split.data());
  EXPECT_EQ(cells, view.num_valid());
  for (uint32_t g = 0; g < groups; ++g) {
    EXPECT_EQ(flat[g].sum, split[g].sum) << "morsel split diverges, group "
                                         << g;
    EXPECT_EQ(flat[g].count, split[g].count);
    EXPECT_EQ(flat[g].min, split[g].min);
    EXPECT_EQ(flat[g].max, split[g].max);
  }
  return flat;
}

std::vector<ChunkEntry> Collect(const ChunkView& view) {
  std::vector<ChunkEntry> out;
  view.ForEach([&](uint32_t off, int64_t v) { out.push_back({off, v}); });
  return out;
}

// `probe_all`: sweep Get over every offset (quadratic-ish on huge chunks, so
// the fuzz loop samples instead for big capacities).
void CheckChunkAcrossFormats(const Chunk& chunk, bool probe_all = true) {
  const std::string baseline_blob =
      chunk.Serialize(ChunkFormat::kOffsetCompressed);
  const ChunkView baseline = MustView(baseline_blob);
  ASSERT_EQ(baseline.num_valid(), chunk.num_valid());
  const std::vector<ChunkEntry> expect = Collect(baseline);
  ASSERT_EQ(expect.size(), chunk.entries().size());
  const std::vector<query::AggState> expect_agg =
      chunk.capacity() > 0 ? KernelAggregate(baseline, 16)
                           : std::vector<query::AggState>();

  for (ChunkFormat fmt : kAllFormats) {
    SCOPED_TRACE("format " + FormatTag(fmt));
    const std::string blob = chunk.Serialize(fmt);
    // The single size estimator callers rely on must be exact.
    EXPECT_EQ(blob.size(), chunk.SerializedBytes(fmt));

    const ChunkView view = MustView(blob);
    ASSERT_EQ(view.capacity(), chunk.capacity());
    ASSERT_EQ(view.num_valid(), chunk.num_valid());

    // Iteration: cell-for-cell identical, in offset order.
    const std::vector<ChunkEntry> got = Collect(view);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(got[i].offset, expect[i].offset) << "entry " << i;
      EXPECT_EQ(got[i].value, expect[i].value) << "entry " << i;
    }

    // Probing: every offset answers exactly as the baseline does.
    if (probe_all) {
      for (uint32_t off = 0; off < chunk.capacity(); ++off) {
        EXPECT_EQ(view.Get(off), baseline.Get(off)) << "offset " << off;
      }
    } else {
      for (const ChunkEntry& e : chunk.entries()) {
        EXPECT_EQ(view.Get(e.offset), std::optional<int64_t>(e.value));
        if (e.offset + 1 < chunk.capacity()) {
          EXPECT_EQ(view.Get(e.offset + 1), baseline.Get(e.offset + 1));
        }
      }
    }
    EXPECT_FALSE(view.Get(chunk.capacity()).has_value());

    // Sparse encodings: the §4.2 monotone probe walk — SparseLowerBound
    // fed its own previous result must visit every entry in order, and
    // SparseEntry(i) must match.
    if (view.sparse()) {
      uint32_t pos = 0;
      for (size_t i = 0; i < expect.size(); ++i) {
        pos = view.SparseLowerBound(expect[i].offset, pos);
        ASSERT_EQ(pos, i) << "lower bound walked off course";
        const ChunkEntry e = view.SparseEntry(pos);
        EXPECT_EQ(e.offset, expect[i].offset);
        EXPECT_EQ(e.value, expect[i].value);
      }
      EXPECT_EQ(view.SparseLowerBound(chunk.capacity(), 0),
                chunk.num_valid());
    }

    // Batch kernels: grouped aggregation byte-identical across formats,
    // whole-chunk and morsel-split.
    if (chunk.capacity() > 0) {
      const std::vector<query::AggState> agg = KernelAggregate(view, 16);
      for (size_t g = 0; g < agg.size(); ++g) {
        EXPECT_EQ(agg[g].sum, expect_agg[g].sum) << "group " << g;
        EXPECT_EQ(agg[g].count, expect_agg[g].count) << "group " << g;
        EXPECT_EQ(agg[g].min, expect_agg[g].min) << "group " << g;
        EXPECT_EQ(agg[g].max, expect_agg[g].max) << "group " << g;
      }
    }

    // Full materializing round-trip.
    Result<Chunk> back = Chunk::Deserialize(blob);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(*back == chunk);
  }
}

TEST(CodecConformanceTest, AdversarialChunksAgreeAcrossAllFormats) {
  for (NamedChunk& c : AdversarialChunks()) {
    SCOPED_TRACE("case " + c.name);
    CheckChunkAcrossFormats(c.chunk);
  }
}

TEST(CodecConformanceTest, AutoResolvesToTheSmallestConcreteFormat) {
  for (NamedChunk& c : AdversarialChunks()) {
    SCOPED_TRACE("case " + c.name);
    const ChunkFormat picked = c.chunk.ResolveFormat(ChunkFormat::kAuto);
    EXPECT_NE(picked, ChunkFormat::kAuto);
    const uint64_t picked_bytes = c.chunk.SerializedBytes(picked);
    for (ChunkFormat fmt :
         {ChunkFormat::kDense, ChunkFormat::kOffsetCompressed,
          ChunkFormat::kDiffSequence, ChunkFormat::kBitPacked}) {
      EXPECT_LE(picked_bytes, c.chunk.SerializedBytes(fmt))
          << "kAuto picked " << FormatTag(picked) << " but "
          << FormatTag(fmt) << " is smaller";
    }
    // Legacy-restricted kAuto (pre-v5 files) never picks a packed codec.
    const ChunkFormat legacy =
        c.chunk.ResolveFormat(ChunkFormat::kAuto, /*allow_packed=*/false);
    EXPECT_TRUE(legacy == ChunkFormat::kDense ||
                legacy == ChunkFormat::kOffsetCompressed);
  }
}

TEST(CodecConformanceTest, PackedFormatsRejectTruncationAndBadHeaders) {
  Chunk chunk = MakeChunk(4096, {});
  for (uint32_t off = 0; off < 4096; off += 9) {
    ASSERT_OK(chunk.AppendSorted(off, static_cast<int64_t>(off)));
  }
  for (ChunkFormat fmt :
       {ChunkFormat::kDiffSequence, ChunkFormat::kBitPacked}) {
    SCOPED_TRACE(FormatTag(fmt));
    const std::string blob = chunk.Serialize(fmt);
    // Every proper prefix must be rejected cleanly, never read past the
    // end or crash — dbverify feeds exactly these bytes through here.
    for (size_t len : {size_t{0}, size_t{1}, size_t{10}, size_t{18},
                       size_t{19}, blob.size() / 2, blob.size() - 1}) {
      Result<ChunkView> view = ChunkView::Make(blob.substr(0, len));
      EXPECT_FALSE(view.ok()) << "prefix of " << len << " bytes accepted";
    }
    // Count beyond capacity (count is the fixed32 at bytes [5, 9)).
    std::string bad = blob;
    bad[5] = static_cast<char>(0xff);
    bad[6] = static_cast<char>(0xff);
    EXPECT_FALSE(ChunkView::Make(bad).ok());
    EXPECT_FALSE(Chunk::Deserialize(bad).ok());
    // Absurd field widths.
    bad = blob;
    bad[9] = static_cast<char>(64);
    EXPECT_FALSE(ChunkView::Make(bad).ok());
  }
  // An unknown tag byte is a typed rejection.
  std::string unknown(32, '\0');
  unknown[0] = static_cast<char>(0x7f);
  Result<ChunkView> view = ChunkView::Make(unknown);
  ASSERT_FALSE(view.ok());
  EXPECT_NE(view.status().ToString().find("unknown chunk format tag"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Fuzz mode: seeded random shapes, replayable via PARADISE_CODEC_SEED.

TEST(CodecFuzzTest, RandomChunksAgreeAcrossAllFormats) {
  uint64_t seed = 0xC0DECull;
  if (const char* env = std::getenv("PARADISE_CODEC_SEED");
      env != nullptr && *env != '\0') {
    seed = std::strtoull(env, nullptr, 0);
  }
  Random rng(seed);
  SCOPED_TRACE("replay with PARADISE_CODEC_SEED=" + std::to_string(seed));
  for (int iter = 0; iter < 60; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const uint32_t capacity =
        static_cast<uint32_t>(1 + rng.Uniform(iter % 3 == 0 ? 65536 : 2048));
    const double density = rng.NextDouble();
    uint64_t valid = static_cast<uint64_t>(density * capacity);
    if (valid > capacity) valid = capacity;
    Chunk chunk(capacity);
    // Three value regimes: narrow (tiny val_bits), full-range 64-bit, and
    // offset-correlated (compresses under every codec differently).
    const int regime = static_cast<int>(rng.Uniform(3));
    for (uint64_t off : SampleSortedDistinct(capacity, valid, &rng)) {
      int64_t v;
      switch (regime) {
        case 0: v = rng.UniformRange(-50, 50); break;
        case 1: v = static_cast<int64_t>(rng.Next()); break;
        default: v = static_cast<int64_t>(off) * 1000 - 7; break;
      }
      ASSERT_OK(chunk.AppendSorted(static_cast<uint32_t>(off), v));
    }
    CheckChunkAcrossFormats(chunk, /*probe_all=*/capacity <= 2048);
    if (HasFailure()) break;
  }
}

// ---------------------------------------------------------------------------
// Golden byte fixtures: the serialized layouts are an on-disk contract.
// Regenerate with PARADISE_UPDATE_GOLDEN=1 after a deliberate format bump
// (which also requires a storage format-version bump).

std::string HexEncode(const std::string& bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2 + bytes.size() / 32 + 1);
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (i > 0 && i % 32 == 0) out.push_back('\n');
    const uint8_t b = static_cast<uint8_t>(bytes[i]);
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  out.push_back('\n');
  return out;
}

Result<std::string> HexDecode(const std::string& text) {
  std::string out;
  int hi = -1;
  for (char c : text) {
    int nibble;
    if (c >= '0' && c <= '9') nibble = c - '0';
    else if (c >= 'a' && c <= 'f') nibble = c - 'a' + 10;
    else if (c == '\n' || c == '\r' || c == ' ') continue;
    else return Status::InvalidArgument("bad hex character");
    if (hi < 0) {
      hi = nibble;
    } else {
      out.push_back(static_cast<char>((hi << 4) | nibble));
      hi = -1;
    }
  }
  if (hi >= 0) return Status::InvalidArgument("odd hex length");
  return out;
}

std::vector<NamedChunk> GoldenChunks() {
  std::vector<NamedChunk> cases;
  cases.push_back(
      {"small_sparse", MakeChunk(60, {{2, -5}, {7, 0}, {11, 900}, {59, 42}})});
  {
    Chunk dense(16);
    for (uint32_t i = 0; i < 16; ++i) {
      EXPECT_OK(dense.AppendSorted(i, static_cast<int64_t>(i * i) - 8));
    }
    cases.push_back({"full_16", std::move(dense)});
  }
  {
    Chunk multi(1024);
    for (uint32_t i = 0; i < 300; ++i) {
      EXPECT_OK(multi.AppendSorted(i * 3 + 1, static_cast<int64_t>(i) % 17));
    }
    cases.push_back({"multi_block", std::move(multi)});
  }
  return cases;
}

TEST(CodecGoldenTest, SerializedBytesMatchCheckedInFixtures) {
  const std::filesystem::path dir = PARADISE_GOLDEN_DIR;
  const bool update = std::getenv("PARADISE_UPDATE_GOLDEN") != nullptr;
  if (update) std::filesystem::create_directories(dir);
  for (NamedChunk& c : GoldenChunks()) {
    for (ChunkFormat fmt : kConcreteFormats) {
      const std::filesystem::path file =
          dir / ("chunk_" + c.name + "_" + FormatTag(fmt) + ".hex");
      const std::string blob = c.chunk.Serialize(fmt);
      if (update) {
        std::ofstream out(file);
        out << HexEncode(blob);
        ASSERT_TRUE(out.good()) << "cannot write " << file;
        continue;
      }
      SCOPED_TRACE(file.string());
      std::ifstream in(file);
      ASSERT_TRUE(in.good())
          << "missing golden fixture — run codec_test once with "
             "PARADISE_UPDATE_GOLDEN=1 and check the files in";
      std::stringstream text;
      text << in.rdbuf();
      ASSERT_OK_AND_ASSIGN(std::string want, HexDecode(text.str()));
      // Writer side: today's serializer emits the pinned bytes.
      EXPECT_EQ(blob, want) << "serialized layout drifted for "
                            << FormatTag(fmt)
                            << " — this breaks files on disk";
      // Reader side: the pinned bytes (written by the build that created
      // the fixture) still decode to the same cells.
      Result<Chunk> back = Chunk::Deserialize(want);
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      EXPECT_TRUE(*back == c.chunk);
    }
  }
}

// ---------------------------------------------------------------------------
// Storage-format compatibility: packed codecs are v5-only; v2-v4 files keep
// the exact legacy behavior.

class CodecCompatTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CodecCompatTest, PreV5FilesKeepLegacyEncodings) {
  if (std::optional<ChunkFormat> forced = ForcedChunkFormatFromEnv();
      forced && *forced != ChunkFormat::kDiffSequence &&
      *forced != ChunkFormat::kBitPacked) {
    GTEST_SKIP() << "a forced legacy format bypasses the packed-codec "
                    "version gate this test exercises";
  }
  const uint32_t version = GetParam();
  TempFile file("codec_compat_v" + std::to_string(version));
  StorageManager storage;
  StorageOptions sopt;
  sopt.page_size = 4096;
  sopt.buffer_pool_pages = 64;
  sopt.format_version = version;
  ASSERT_OK(storage.Create(file.path(), sopt));

  ASSERT_OK_AND_ASSIGN(ChunkLayout layout, ChunkLayout::Make({4096}, {4096}));
  // So sparse that v5 kAuto would pick a packed codec; a pre-v5 file must
  // restrict the choice to the legacy dense/offset pair.
  ArrayOptions aopt;
  aopt.chunk_format = ChunkFormat::kAuto;
  ChunkedArray::Builder builder(&storage, layout, aopt);
  ASSERT_OK(builder.Put({10}, 7));
  ASSERT_OK(builder.Put({2000}, -7));
  ASSERT_OK_AND_ASSIGN(ChunkedArray array, builder.Finish());
  EXPECT_FALSE(array.allow_packed_codecs());

  ASSERT_OK_AND_ASSIGN(std::string blob, array.ReadChunkBlob(0));
  ASSERT_FALSE(blob.empty());
  EXPECT_LE(static_cast<uint8_t>(blob[0]), 2u)
      << "packed tag written into a v" << version << " file";

  // In-place updates must stay legacy too.
  ASSERT_OK(array.PutCell({30}, 9));
  ASSERT_OK_AND_ASSIGN(blob, array.ReadChunkBlob(0));
  EXPECT_LE(static_cast<uint8_t>(blob[0]), 2u);

  // Explicitly requesting a packed codec on a pre-v5 file is a typed error,
  // not silent corruption.
  for (ChunkFormat fmt :
       {ChunkFormat::kDiffSequence, ChunkFormat::kBitPacked}) {
    ArrayOptions packed;
    packed.chunk_format = fmt;
    ChunkedArray::Builder bad(&storage, layout, packed);
    ASSERT_OK(bad.Put({1}, 1));
    const Status st = bad.Finish().status();
    EXPECT_TRUE(st.IsNotSupported()) << st.ToString();
  }

  // Reopen: data intact, format byte still legacy.
  ASSERT_OK(array.Sync());
  const ObjectId meta = array.meta_oid();
  ASSERT_OK(storage.FlushAndEvictAll());
  ASSERT_OK_AND_ASSIGN(ChunkedArray reopened,
                       ChunkedArray::Open(&storage, meta));
  ASSERT_OK_AND_ASSIGN(std::optional<int64_t> v, reopened.GetCell({2000}));
  EXPECT_EQ(v, std::optional<int64_t>(-7));
  ASSERT_OK(storage.Close());
}

INSTANTIATE_TEST_SUITE_P(Versions, CodecCompatTest,
                         ::testing::Values(2u, 3u, 4u));

TEST(CodecCompatV5Test, V5FilesUsePackedCodecsUnderAuto) {
  if (std::optional<ChunkFormat> forced = ForcedChunkFormatFromEnv();
      forced && *forced != ChunkFormat::kDiffSequence &&
      *forced != ChunkFormat::kBitPacked) {
    GTEST_SKIP() << "a forced legacy format keeps kAuto from picking a packed "
                    "codec on this v5 file";
  }
  TempFile file("codec_v5");
  StorageManager storage;
  StorageOptions sopt;
  sopt.page_size = 4096;
  sopt.buffer_pool_pages = 64;
  ASSERT_EQ(sopt.format_version, page_header::kFormatCodecs);
  ASSERT_OK(storage.Create(file.path(), sopt));
  ASSERT_OK_AND_ASSIGN(ChunkLayout layout, ChunkLayout::Make({4096}, {4096}));
  ArrayOptions aopt;
  aopt.chunk_format = ChunkFormat::kAuto;
  ChunkedArray::Builder builder(&storage, layout, aopt);
  ASSERT_OK(builder.Put({10}, 7));
  ASSERT_OK(builder.Put({2000}, -7));
  ASSERT_OK_AND_ASSIGN(ChunkedArray array, builder.Finish());
  EXPECT_TRUE(array.allow_packed_codecs());
  ASSERT_OK_AND_ASSIGN(std::string blob, array.ReadChunkBlob(0));
  ASSERT_FALSE(blob.empty());
  EXPECT_GE(static_cast<uint8_t>(blob[0]), 3u)
      << "two cells in 4096 should pick a packed codec under kAuto";
  ASSERT_OK_AND_ASSIGN(std::optional<int64_t> v, array.GetCell({2000}));
  EXPECT_EQ(v, std::optional<int64_t>(-7));
  ASSERT_OK(storage.Close());
}

TEST(CodecCompatTestEnv, ForcedChunkFormatEnvParsesAllSpellings) {
  const std::map<std::string, ChunkFormat> spellings = {
      {"dense", ChunkFormat::kDense},
      {"offset", ChunkFormat::kOffsetCompressed},
      {"offset-compressed", ChunkFormat::kOffsetCompressed},
      {"auto", ChunkFormat::kAuto},
      {"lzw", ChunkFormat::kLzwDense},
      {"lzw-dense", ChunkFormat::kLzwDense},
      {"diffseq", ChunkFormat::kDiffSequence},
      {"diff-sequence", ChunkFormat::kDiffSequence},
      {"bitpacked", ChunkFormat::kBitPacked},
      {"bit-packed", ChunkFormat::kBitPacked},
  };
  for (const auto& [name, want] : spellings) {
    ChunkFormat got;
    EXPECT_TRUE(ChunkFormatFromString(name, &got)) << name;
    EXPECT_EQ(got, want) << name;
  }
  ChunkFormat ignored;
  EXPECT_FALSE(ChunkFormatFromString("zstd", &ignored));
  EXPECT_FALSE(ChunkFormatFromString("", &ignored));

  ::setenv("PARADISE_FORCE_CHUNK_FORMAT", "diffseq", 1);
  EXPECT_EQ(ForcedChunkFormatFromEnv(),
            std::optional<ChunkFormat>(ChunkFormat::kDiffSequence));
  ::setenv("PARADISE_FORCE_CHUNK_FORMAT", "nonsense", 1);
  EXPECT_EQ(ForcedChunkFormatFromEnv(), std::nullopt);
  ::unsetenv("PARADISE_FORCE_CHUNK_FORMAT");
  EXPECT_EQ(ForcedChunkFormatFromEnv(), std::nullopt);
}

}  // namespace
}  // namespace paradise
