// Multi-measure cube tests (§2's M = {m_1..m_p}): both physical designs
// store p measures per cell; every engine aggregates the measure a query
// names; SQL resolves measures by name.
#include <gtest/gtest.h>

#include "common/random.h"
#include "query/planner.h"
#include "query/sql.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;

class MultiMeasureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("multimeasure");
    schema_.cube_name = "sales";
    schema_.measures = {"volume", "revenue"};
    schema_.dims = {
        DimensionSpec{"product",
                      {{"pid", ColumnType::kInt32},
                       {"category", ColumnType::kString16}}},
        DimensionSpec{"store",
                      {{"sid", ColumnType::kInt32},
                       {"region", ColumnType::kString16}}},
    };
    ASSERT_OK_AND_ASSIGN(
        db_, Database::Create(file_->path(), schema_, SmallDbOptions()));
    const Schema product = schema_.dims[0].ToSchema();
    const Schema store = schema_.dims[1].ToSchema();
    for (int32_t pid = 0; pid < 8; ++pid) {
      Tuple row(&product);
      row.SetInt32(0, pid);
      ASSERT_OK(row.SetString(1, "cat" + std::to_string(pid % 3)));
      ASSERT_OK(db_->AppendDimensionRow(0, row));
    }
    for (int32_t sid = 0; sid < 6; ++sid) {
      Tuple row(&store);
      row.SetInt32(0, sid);
      ASSERT_OK(row.SetString(1, "reg" + std::to_string(sid % 2)));
      ASSERT_OK(db_->AppendDimensionRow(1, row));
    }
    ASSERT_OK(db_->BeginFacts());
    Random rng(5);
    for (int32_t pid = 0; pid < 8; ++pid) {
      for (int32_t sid = 0; sid < 6; ++sid) {
        if (!rng.Bernoulli(0.6)) continue;
        const int64_t volume = rng.UniformRange(1, 20);
        const int64_t revenue = volume * rng.UniformRange(5, 9);
        facts_.push_back({pid, sid, volume, revenue});
        ASSERT_OK(db_->AppendFact({pid, sid}, {volume, revenue}));
      }
    }
    ASSERT_OK(db_->FinishLoad());
  }

  /// Brute-force sums of measure `m` grouped by (category, region) codes.
  std::map<std::pair<int32_t, int32_t>, int64_t> Expected(size_t m) const {
    std::map<std::pair<int32_t, int32_t>, int64_t> out;
    for (const auto& f : facts_) {
      const int32_t cat = static_cast<int32_t>(f[0] % 3);
      const int32_t reg = static_cast<int32_t>(f[1] % 2);
      out[{cat, reg}] += f[2 + m];
    }
    return out;
  }

  std::unique_ptr<TempFile> file_;
  StarSchema schema_;
  std::unique_ptr<Database> db_;
  std::vector<std::array<int64_t, 4>> facts_;  // pid, sid, volume, revenue
};

TEST_F(MultiMeasureTest, SchemaShape) {
  EXPECT_EQ(db_->fact_schema().num_columns(), 4u);  // 2 keys + 2 measures
  EXPECT_EQ(db_->fact_schema().record_size(), 2 * 4 + 2 * 8u);
  EXPECT_EQ(db_->olap()->num_measures(), 2u);
  ASSERT_OK_AND_ASSIGN(size_t idx, schema_.MeasureIndex("revenue"));
  EXPECT_EQ(idx, 1u);
  EXPECT_TRUE(schema_.MeasureIndex("nope").status().IsNotFound());
}

TEST_F(MultiMeasureTest, EveryEngineAggregatesTheNamedMeasure) {
  // Codes: cat codes follow first appearance (pid order: cat0,cat1,cat2),
  // reg codes likewise — matching our % formulas directly.
  for (size_t m = 0; m < 2; ++m) {
    query::ConsolidationQuery q;
    q.dims.resize(2);
    q.dims[0].group_by_col = 1;
    q.dims[1].group_by_col = 1;
    q.measure = m;
    const auto expected = Expected(m);
    for (EngineKind kind : {EngineKind::kArray, EngineKind::kStarJoin,
                            EngineKind::kLeftDeep}) {
      ASSERT_OK_AND_ASSIGN(Execution exec, RunQuery(db_.get(), kind, q));
      ASSERT_EQ(exec.result.num_groups(), expected.size())
          << EngineKindToString(kind) << " measure " << m;
      for (const query::ResultRow& row : exec.result.rows()) {
        const auto it = expected.find({row.group[0], row.group[1]});
        ASSERT_NE(it, expected.end());
        EXPECT_EQ(row.agg.sum, it->second)
            << EngineKindToString(kind) << " measure " << m;
      }
    }
  }
}

TEST_F(MultiMeasureTest, MeasuresDiffer) {
  // Sanity: the two measures genuinely produce different totals.
  query::ConsolidationQuery q;
  q.dims.resize(2);
  q.measure = 0;
  ASSERT_OK_AND_ASSIGN(Execution volume,
                       RunQuery(db_.get(), EngineKind::kArray, q));
  q.measure = 1;
  ASSERT_OK_AND_ASSIGN(Execution revenue,
                       RunQuery(db_.get(), EngineKind::kArray, q));
  EXPECT_GT(revenue.result.rows()[0].agg.sum,
            volume.result.rows()[0].agg.sum);
}

TEST_F(MultiMeasureTest, SelectionEnginesHonorMeasure) {
  query::ConsolidationQuery q;
  q.dims.resize(2);
  q.dims[0].group_by_col = 1;
  q.dims[1].selections.push_back(
      query::Selection{1, {query::Literal{std::string("reg1")}}});
  q.measure = 1;
  ASSERT_OK_AND_ASSIGN(Execution array,
                       RunQuery(db_.get(), EngineKind::kArray, q));
  ASSERT_OK_AND_ASSIGN(Execution bitmap,
                       RunQuery(db_.get(), EngineKind::kBitmap, q));
  EXPECT_TRUE(array.result.SameAs(bitmap.result));
  int64_t expected = 0;
  for (const auto& f : facts_) {
    if (f[1] % 2 == 1) expected += f[3];
  }
  EXPECT_EQ(array.result.TotalSum(), expected);
}

TEST_F(MultiMeasureTest, SqlResolvesMeasureByName) {
  ASSERT_OK_AND_ASSIGN(
      SqlExecution volume,
      RunSql(db_.get(), "select sum(volume) from sales"));
  ASSERT_OK_AND_ASSIGN(
      SqlExecution revenue,
      RunSql(db_.get(), "select sum(revenue) from sales"));
  int64_t expected_volume = 0, expected_revenue = 0;
  for (const auto& f : facts_) {
    expected_volume += f[2];
    expected_revenue += f[3];
  }
  EXPECT_EQ(volume.execution.result.TotalSum(), expected_volume);
  EXPECT_EQ(revenue.execution.result.TotalSum(), expected_revenue);
  EXPECT_TRUE(RunSql(db_.get(), "select sum(profit) from sales")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(MultiMeasureTest, AdtCellFunctionsPerMeasure) {
  const std::vector<int32_t> keys = {facts_[0][0] < 8 ? (int32_t)facts_[0][0]
                                                      : 0,
                                     (int32_t)facts_[0][1]};
  ASSERT_OK_AND_ASSIGN(std::optional<int64_t> volume,
                       db_->olap()->ReadCellByKeys(keys, 0));
  ASSERT_OK_AND_ASSIGN(std::optional<int64_t> revenue,
                       db_->olap()->ReadCellByKeys(keys, 1));
  ASSERT_TRUE(volume.has_value());
  ASSERT_TRUE(revenue.has_value());
  EXPECT_EQ(*volume, facts_[0][2]);
  EXPECT_EQ(*revenue, facts_[0][3]);
  // Write one measure without disturbing the other.
  ASSERT_OK(db_->olap()->WriteCellByKeys(keys, 999, 1));
  ASSERT_OK_AND_ASSIGN(revenue, db_->olap()->ReadCellByKeys(keys, 1));
  EXPECT_EQ(*revenue, 999);
  ASSERT_OK_AND_ASSIGN(volume, db_->olap()->ReadCellByKeys(keys, 0));
  EXPECT_EQ(*volume, facts_[0][2]);
  EXPECT_TRUE(
      db_->olap()->ReadCellByKeys(keys, 5).status().IsInvalidArgument());
}

TEST_F(MultiMeasureTest, SurvivesReopen) {
  ASSERT_OK(db_->storage()->Close());
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> reopened,
                       Database::Open(file_->path(), SmallDbOptions()));
  EXPECT_EQ(reopened->schema().measures,
            (std::vector<std::string>{"volume", "revenue"}));
  EXPECT_EQ(reopened->olap()->num_measures(), 2u);
  query::ConsolidationQuery q;
  q.dims.resize(2);
  q.measure = 1;
  ASSERT_OK_AND_ASSIGN(Execution exec,
                       RunQuery(reopened.get(), EngineKind::kArray, q));
  int64_t expected = 0;
  for (const auto& f : facts_) expected += f[3];
  EXPECT_EQ(exec.result.TotalSum(), expected);
}

TEST_F(MultiMeasureTest, AppendFactValidatesMeasureArity) {
  TempFile file2("mm_arity");
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db2,
      Database::Create(file2.path(), schema_, SmallDbOptions()));
  const Schema product = schema_.dims[0].ToSchema();
  const Schema store = schema_.dims[1].ToSchema();
  Tuple p(&product);
  p.SetInt32(0, 0);
  ASSERT_OK(p.SetString(1, "c"));
  ASSERT_OK(db2->AppendDimensionRow(0, p));
  Tuple s(&store);
  s.SetInt32(0, 0);
  ASSERT_OK(s.SetString(1, "r"));
  ASSERT_OK(db2->AppendDimensionRow(1, s));
  ASSERT_OK(db2->BeginFacts());
  EXPECT_TRUE(db2->AppendFact({0, 0}, {1}).IsInvalidArgument());
  EXPECT_TRUE(db2->AppendFact({0, 0}, {1, 2, 3}).IsInvalidArgument());
  ASSERT_OK(db2->AppendFact({0, 0}, {1, 2}));
}

}  // namespace
}  // namespace paradise
