// Incremental-ingest suite (DESIGN.md choice 15): epoch-MVCC visibility,
// byte-parity of overlay reads with a from-scratch load, crash-safe delta
// compaction, pinned-reader survival, recovery across reopen, cancellation,
// and the relational-engine gate. The load-bearing invariant everywhere:
// querying the ingested database at its newest epoch must be
// indistinguishable — down to the serialized chunk bytes — from loading a
// fresh database that contained the merged data all along.
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/ingest.h"
#include "query/engine.h"
#include "query/planner.h"
#include "query/result_cache.h"
#include "schema/db_verify.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

/// Query 1 over the tiny 3-d cube plus a selection variant, exercising both
/// the no-selection and the selection array paths.
query::ConsolidationQuery GroupQuery() { return gen::Query1(3); }

query::ConsolidationQuery SelectQuery() {
  query::ConsolidationQuery q;
  q.dims.resize(3);
  q.dims[0].group_by_col = 1;
  q.dims[1].selections.push_back(
      query::Selection{1,
                       {query::Literal{gen::AttrValue(1, 1, 0)},
                        query::Literal{gen::AttrValue(1, 1, 2)}}});
  q.dims[2].group_by_col = 1;
  return q;
}

/// The dataset `base` with `upserts` (global index -> value) applied — what
/// a from-scratch load "as of" the ingested state looks like.
gen::SyntheticDataset Merged(const gen::SyntheticDataset& base,
                             const std::map<uint64_t, int64_t>& upserts) {
  std::map<uint64_t, int64_t> cells;
  for (size_t i = 0; i < base.cell_global_indices.size(); ++i) {
    cells[base.cell_global_indices[i]] = base.measures[i];
  }
  for (const auto& [gi, v] : upserts) cells[gi] = v;
  gen::SyntheticDataset out = base;
  out.cell_global_indices.clear();
  out.measures.clear();
  for (const auto& [gi, v] : cells) {
    out.cell_global_indices.push_back(gi);
    out.measures.push_back(v);
  }
  return out;
}

/// Ingests `upserts` through the incremental write path (no commit).
void WriteUpserts(Database* db, const gen::SyntheticDataset& data,
                  const std::map<uint64_t, int64_t>& upserts) {
  for (const auto& [gi, v] : upserts) {
    ASSERT_OK(db->ingest()->Write(data.CellKeys(gi), {v}));
  }
}

/// A deterministic batch of upserts: `updates` hit existing cells,
/// `inserts` hit empty ones.
std::map<uint64_t, int64_t> MakeUpserts(const gen::SyntheticDataset& data,
                                        size_t updates, size_t inserts,
                                        uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::set<uint64_t> occupied(data.cell_global_indices.begin(),
                              data.cell_global_indices.end());
  const uint64_t total = [&] {
    uint64_t t = 1;
    for (uint32_t s : {6u, 8u, 10u}) t *= s;
    return t;
  }();
  std::map<uint64_t, int64_t> upserts;
  while (updates > 0 || inserts > 0) {
    const uint64_t gi = rng() % total;
    if (upserts.contains(gi)) continue;
    const bool exists = occupied.contains(gi);
    if (exists && updates > 0) {
      upserts[gi] = static_cast<int64_t>(rng() % 1000) - 500;
      --updates;
    } else if (!exists && inserts > 0) {
      upserts[gi] = static_cast<int64_t>(rng() % 1000) - 500;
      --inserts;
    }
  }
  return upserts;
}

/// Asserts every base chunk of `got` serializes to exactly the bytes of the
/// corresponding chunk in `want` — the bit-identity acceptance criterion.
void ExpectChunkBytesEqual(const Database& got, const Database& want,
                           const std::string& label) {
  const ChunkedArray& a = got.olap()->array(0);
  const ChunkedArray& b = want.olap()->array(0);
  ASSERT_EQ(a.layout().num_chunks(), b.layout().num_chunks());
  for (uint64_t c = 0; c < a.layout().num_chunks(); ++c) {
    ASSERT_OK_AND_ASSIGN(std::string blob_a, a.ReadChunkBlob(c));
    ASSERT_OK_AND_ASSIGN(std::string blob_b, b.ReadChunkBlob(c));
    EXPECT_EQ(blob_a, blob_b) << label << ": chunk " << c << " bytes diverge";
  }
}

TEST(IngestTest, PendingWritesInvisibleUntilCommit) {
  TempFile file("ingest_pending");
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(120, 11)));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));

  const query::ConsolidationQuery q = GroupQuery();
  const query::GroupedResult before = BruteForce(data, q);
  const uint64_t epoch_before = db->commit_epoch();

  const std::map<uint64_t, int64_t> upserts = MakeUpserts(data, 5, 5, 1);
  WriteUpserts(db.get(), data, upserts);
  EXPECT_EQ(db->ingest()->pending_cells(), 10u);
  EXPECT_FALSE(db->ingested());

  // Buffered-but-uncommitted writes are invisible; the epoch is unchanged.
  ASSERT_OK_AND_ASSIGN(Execution exec,
                       RunQuery(db.get(), EngineKind::kArray, q, true));
  EXPECT_TRUE(exec.result.SameAs(before));
  EXPECT_EQ(db->commit_epoch(), epoch_before);
}

TEST(IngestTest, CommitMakesWritesVisibleAtNewEpoch) {
  TempFile file("ingest_commit");
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(120, 12)));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
  const uint64_t epoch_before = db->commit_epoch();

  const std::map<uint64_t, int64_t> upserts = MakeUpserts(data, 7, 9, 2);
  WriteUpserts(db.get(), data, upserts);
  ASSERT_OK(db->ingest()->Commit());
  EXPECT_TRUE(db->ingested());
  EXPECT_EQ(db->ingest()->pending_cells(), 0u);
  EXPECT_EQ(db->ingest()->applied_cells(), 16u);
  EXPECT_GT(db->commit_epoch(), epoch_before);

  const gen::SyntheticDataset merged = Merged(data, upserts);
  for (const query::ConsolidationQuery& q : {GroupQuery(), SelectQuery()}) {
    const query::GroupedResult expected = BruteForce(merged, q);
    for (size_t threads : {size_t{1}, size_t{4}}) {
      RunQueryOptions options;
      options.cold = true;
      options.num_threads = threads;
      ASSERT_OK_AND_ASSIGN(Execution exec,
                           RunQuery(db.get(), EngineKind::kArray, q, options));
      EXPECT_TRUE(exec.result.SameAs(expected)) << "threads " << threads;
    }
  }
}

TEST(IngestTest, OverlayReadsAreByteIdenticalToFromScratchLoad) {
  TempFile file("ingest_bytes_overlay");
  TempFile fresh_file("ingest_bytes_fresh");
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(120, 13)));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
  const std::map<uint64_t, int64_t> upserts = MakeUpserts(data, 10, 10, 3);
  WriteUpserts(db.get(), data, upserts);
  ASSERT_OK(db->ingest()->Commit());

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> fresh,
                       BuildDatabaseFromDataset(
                           fresh_file.path(), Merged(data, upserts),
                           SmallDbOptions()));
  // Before any compaction: overlay-merged decode serves the same bytes a
  // from-scratch load of the merged data packs.
  ExpectChunkBytesEqual(*db, *fresh, "overlay");

  // After compaction: the packed base itself carries those bytes.
  ASSERT_OK(db->ingest()->Compact());
  EXPECT_EQ(db->ingest()->stats().live_generations, 0u);
  EXPECT_EQ(db->olap()->array(0).overlay(), nullptr);
  ExpectChunkBytesEqual(*db, *fresh, "compacted");

  const query::GroupedResult expected =
      BruteForce(Merged(data, upserts), GroupQuery());
  ASSERT_OK_AND_ASSIGN(Execution exec,
                       RunQuery(db.get(), EngineKind::kArray, GroupQuery(),
                                true));
  EXPECT_TRUE(exec.result.SameAs(expected));

  // The file stays verifiable after the full commit+compact cycle.
  db.reset();
  ASSERT_OK_AND_ASSIGN(VerifyReport report, VerifyDatabaseFile(file.path()));
  EXPECT_TRUE(report.clean()) << (report.AllIssues().empty()
                                      ? std::string("?")
                                      : report.AllIssues().front());
}

/// The fuzzed acceptance loop: random interleavings of write / commit /
/// compact; after every commit the array engine (serial, parallel, cached
/// and uncached) must match a from-scratch evaluation of the data as of
/// that epoch.
TEST(IngestTest, FuzzedInterleavingsMatchFromScratchEvaluation) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    TempFile file("ingest_fuzz");
    ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                         gen::Generate(TinyConfig(120, 20 + seed)));
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<Database> db,
        BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
    std::mt19937_64 rng(seed);
    std::map<uint64_t, int64_t> applied;  // all committed upserts so far
    std::map<uint64_t, int64_t> pending;
    query::ConsolidationResultCache cache;

    for (int step = 0; step < 12; ++step) {
      const int action = static_cast<int>(rng() % 4);
      if (action <= 1) {  // write a small batch (2x weight)
        const std::map<uint64_t, int64_t> batch =
            MakeUpserts(data, rng() % 3, 1 + rng() % 3, rng());
        WriteUpserts(db.get(), data, batch);
        for (const auto& [gi, v] : batch) pending[gi] = v;
        continue;
      }
      if (action == 2) {
        ASSERT_OK(db->ingest()->Commit());
        for (const auto& [gi, v] : pending) applied[gi] = v;
        pending.clear();
      } else {
        ASSERT_OK(db->ingest()->Compact());
      }
      const gen::SyntheticDataset merged = Merged(data, applied);
      for (const query::ConsolidationQuery& q :
           {GroupQuery(), SelectQuery()}) {
        const query::GroupedResult expected = BruteForce(merged, q);
        for (size_t threads : {size_t{1}, size_t{4}, size_t{16}}) {
          RunQueryOptions options;
          options.cold = (step % 2 == 0);
          options.num_threads = threads;
          ASSERT_OK_AND_ASSIGN(
              Execution exec,
              RunQuery(db.get(), EngineKind::kArray, q, options));
          ASSERT_TRUE(exec.result.SameAs(expected))
              << "seed " << seed << " step " << step << " threads "
              << threads;
          // Cached path: epoch-keyed, so a result inserted at an older
          // epoch can never answer for the current one.
          options.cache = &cache;
          options.cold = false;
          ASSERT_OK_AND_ASSIGN(
              Execution cached,
              RunQuery(db.get(), EngineKind::kArray, q, options));
          ASSERT_TRUE(cached.result.SameAs(expected))
              << "seed " << seed << " step " << step << " threads "
              << threads << " (cached)";
        }
      }
    }
  }
}

TEST(IngestTest, ReopenRecoversUncompactedGenerations) {
  TempFile file("ingest_reopen");
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(120, 14)));
  std::map<uint64_t, int64_t> first;
  std::map<uint64_t, int64_t> both;
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<Database> db,
        BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
    first = MakeUpserts(data, 4, 4, 5);
    WriteUpserts(db.get(), data, first);
    ASSERT_OK(db->ingest()->Commit());
    const std::map<uint64_t, int64_t> second = MakeUpserts(data, 3, 3, 6);
    WriteUpserts(db.get(), data, second);
    ASSERT_OK(db->ingest()->Commit());
    both = first;
    for (const auto& [gi, v] : second) both[gi] = v;
    ASSERT_OK(db->storage()->Close());
  }
  // Reopen: both generations recover as overlays, results match, and the
  // ingested() gate survives the restart.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(file.path(), SmallDbOptions()));
  EXPECT_TRUE(db->ingested());
  EXPECT_EQ(db->ingest()->applied_cells(), 14u);
  EXPECT_EQ(db->ingest()->stats().live_generations, 2u);
  const query::GroupedResult expected =
      BruteForce(Merged(data, both), GroupQuery());
  ASSERT_OK_AND_ASSIGN(
      Execution exec, RunQuery(db.get(), EngineKind::kArray, GroupQuery(),
                               true));
  EXPECT_TRUE(exec.result.SameAs(expected));

  // Compact, reopen again: same answer from the rewritten base.
  ASSERT_OK(db->ingest()->Compact());
  ASSERT_OK(db->storage()->Close());
  db.reset();
  ASSERT_OK_AND_ASSIGN(db, Database::Open(file.path(), SmallDbOptions()));
  EXPECT_TRUE(db->ingested());
  EXPECT_EQ(db->ingest()->stats().live_generations, 0u);
  ASSERT_OK_AND_ASSIGN(
      Execution exec2, RunQuery(db.get(), EngineKind::kArray, GroupQuery(),
                                true));
  EXPECT_TRUE(exec2.result.SameAs(expected));
  db.reset();
  ASSERT_OK_AND_ASSIGN(VerifyReport report, VerifyDatabaseFile(file.path()));
  EXPECT_TRUE(report.clean()) << (report.AllIssues().empty()
                                      ? std::string("?")
                                      : report.AllIssues().front());
}

TEST(IngestTest, CancelledCompactionLeavesDeltasServable) {
  TempFile file("ingest_cancel");
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(120, 15)));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
  const std::map<uint64_t, int64_t> upserts = MakeUpserts(data, 6, 6, 7);
  WriteUpserts(db.get(), data, upserts);
  ASSERT_OK(db->ingest()->Commit());

  CancellationToken cancel;
  cancel.RequestCancel();
  const Status st = db->ingest()->Compact(&cancel);
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  EXPECT_EQ(db->ingest()->stats().compactions_cancelled, 1u);
  EXPECT_EQ(db->ingest()->stats().live_generations, 1u);

  // The generations are untouched and still serve the merged data.
  const query::GroupedResult expected =
      BruteForce(Merged(data, upserts), GroupQuery());
  ASSERT_OK_AND_ASSIGN(
      Execution exec, RunQuery(db.get(), EngineKind::kArray, GroupQuery(),
                               true));
  EXPECT_TRUE(exec.result.SameAs(expected));

  // A later un-cancelled compaction completes and preserves the answer.
  ASSERT_OK(db->ingest()->Compact());
  EXPECT_EQ(db->ingest()->stats().live_generations, 0u);
  ASSERT_OK_AND_ASSIGN(
      Execution exec2, RunQuery(db.get(), EngineKind::kArray, GroupQuery(),
                                true));
  EXPECT_TRUE(exec2.result.SameAs(expected));
}

/// MVCC: a reader that pinned the array before a compaction keeps reading
/// the pre-compaction objects; the graveyard frees them only once the pin
/// drops.
TEST(IngestTest, PinnedReadersSurviveCompaction) {
  TempFile file("ingest_pin");
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(120, 16)));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
  const std::map<uint64_t, int64_t> first = MakeUpserts(data, 5, 5, 8);
  WriteUpserts(db.get(), data, first);
  ASSERT_OK(db->ingest()->Commit());

  auto pin = std::make_optional(db->PinArray());
  const uint64_t pinned_epoch = pin->epoch;
  // Record what the pinned snapshot should keep saying for a few cells.
  std::vector<std::pair<CellCoords, std::optional<int64_t>>> probes;
  {
    const ChunkLayout& layout = db->olap()->layout();
    for (const auto& [gi, v] : first) {
      probes.emplace_back(layout.GlobalToCoords(gi), v);
    }
  }

  // Second batch + compaction: the newest epoch moves on.
  const std::map<uint64_t, int64_t> second = MakeUpserts(data, 5, 5, 9);
  WriteUpserts(db.get(), data, second);
  ASSERT_OK(db->ingest()->Commit());
  ASSERT_OK(db->ingest()->Compact());
  EXPECT_GT(db->commit_epoch(), pinned_epoch);

  // The old array objects are retired but NOT freed while the pin lives.
  ASSERT_OK(db->ingest()->ReclaimRetired());
  EXPECT_GE(db->ingest()->stats().retired_pending, 1u);
  for (const auto& [coords, want] : probes) {
    ASSERT_OK_AND_ASSIGN(std::optional<int64_t> got,
                         pin->array.array(0).GetCell(coords));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, *want);
  }

  // Dropping the pin lets the graveyard reclaim everything.
  pin.reset();
  ASSERT_OK(db->ingest()->ReclaimRetired());
  EXPECT_EQ(db->ingest()->stats().retired_pending, 0u);

  // And the newest epoch still answers from the compacted base.
  std::map<uint64_t, int64_t> both = first;
  for (const auto& [gi, v] : second) both[gi] = v;
  const query::GroupedResult expected =
      BruteForce(Merged(data, both), GroupQuery());
  ASSERT_OK_AND_ASSIGN(
      Execution exec, RunQuery(db.get(), EngineKind::kArray, GroupQuery(),
                               true));
  EXPECT_TRUE(exec.result.SameAs(expected));
}

TEST(IngestTest, RelationalEnginesGateAfterIngest) {
  TempFile file("ingest_gate");
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(120, 17)));
  DatabaseOptions options = SmallDbOptions();
  options.build_btree_join_indexes = true;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       BuildDatabaseFromDataset(file.path(), data, options));
  const std::map<uint64_t, int64_t> upserts = MakeUpserts(data, 2, 2, 10);
  WriteUpserts(db.get(), data, upserts);
  ASSERT_OK(db->ingest()->Commit());

  const query::ConsolidationQuery q = SelectQuery();
  for (EngineKind kind :
       {EngineKind::kStarJoin, EngineKind::kBitmap, EngineKind::kLeftDeep,
        EngineKind::kBTreeSelect}) {
    const Status st = RunQuery(db.get(), kind, q, true).status();
    EXPECT_TRUE(st.IsNotSupported())
        << EngineKindToString(kind) << ": " << st.ToString();
  }

  // The planner never routes to a gated engine anymore.
  ASSERT_OK_AND_ASSIGN(PlanChoice choice, ChoosePlan(*db, q, {}));
  EXPECT_EQ(choice.engine, EngineKind::kArray);

  // And the array answers correctly through the planner's SQL front door.
  ASSERT_OK_AND_ASSIGN(
      Execution exec, RunQuery(db.get(), choice.engine, q, true));
  EXPECT_TRUE(exec.result.SameAs(BruteForce(Merged(data, upserts), q)));
}

}  // namespace
}  // namespace paradise
