// Tests for the OLAP Array ADT core: IndexToIndex arrays, the ADT's build/
// open/cell functions, both consolidation algorithms against a brute-force
// reference, slicing, subset summation, and consolidation materialization.
#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/consolidate.h"
#include "core/consolidate_select.h"
#include "core/index_to_index.h"
#include "core/olap_array.h"
#include "core/slice.h"
#include "gen/datasets.h"
#include "schema/loader.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

class CoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("core");
    ASSERT_OK_AND_ASSIGN(data_, gen::Generate(TinyConfig()));
    ASSERT_OK_AND_ASSIGN(
        db_, BuildDatabaseFromDataset(file_->path(), data_, SmallDbOptions()));
  }

  std::unique_ptr<TempFile> file_;
  gen::SyntheticDataset data_;
  std::unique_ptr<Database> db_;
};

TEST_F(CoreTest, IndexToIndexMatchesDimensionTable) {
  for (size_t d = 0; d < 3; ++d) {
    const IndexToIndexArray& i2i = db_->olap()->i2i(d);
    EXPECT_EQ(i2i.num_members(), db_->dim(d).num_rows());
    EXPECT_EQ(i2i.num_levels(), 3u);
    EXPECT_EQ(i2i.Cardinality(0),
              static_cast<int32_t>(db_->dim(d).num_rows()));
    for (size_t level = 1; level < 3; ++level) {
      for (uint32_t base = 0; base < i2i.num_members(); ++base) {
        ASSERT_OK_AND_ASSIGN(int32_t code,
                             db_->dim(d).RowAttrCode(base, level));
        EXPECT_EQ(i2i.Map(level, base), code);
      }
      // Level 0 is the identity.
      EXPECT_EQ(i2i.Map(0, 3), 3);
    }
  }
}

TEST_F(CoreTest, IndexToIndexSerializeRoundTrip) {
  const IndexToIndexArray& i2i = db_->olap()->i2i(1);
  size_t consumed = 0;
  ASSERT_OK_AND_ASSIGN(IndexToIndexArray back,
                       IndexToIndexArray::Deserialize(i2i.Serialize(),
                                                      &consumed));
  EXPECT_TRUE(back == i2i);
  EXPECT_EQ(consumed, i2i.Serialize().size());
}

TEST_F(CoreTest, KeyToIndexViaBTree) {
  ASSERT_OK_AND_ASSIGN(std::optional<uint32_t> idx,
                       db_->olap()->KeyToIndex(0, 4));
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 4u);  // keys are row positions in the synthetic data
  ASSERT_OK_AND_ASSIGN(idx, db_->olap()->KeyToIndex(0, 999));
  EXPECT_FALSE(idx.has_value());
}

TEST_F(CoreTest, AttrIndexListMatchesLevelCodes) {
  // Every base index whose level-1 code is 1 on dimension 1.
  std::vector<uint32_t> list;
  ASSERT_OK(db_->olap()->AttrIndexList(
      1, 1, StringPrefixKey(gen::AttrValue(1, 1, 1)), &list));
  std::sort(list.begin(), list.end());
  std::vector<uint32_t> expected;
  for (uint32_t key = 0; key < data_.config.dims[1].size; ++key) {
    if (data_.config.dims[1].LevelCode(1, key) == 1) expected.push_back(key);
  }
  EXPECT_EQ(list, expected);
}

TEST_F(CoreTest, ReadCellByKeysMatchesData) {
  // Probe every generated valid cell plus one invalid one.
  for (size_t i = 0; i < std::min<size_t>(40, data_.measures.size()); ++i) {
    const std::vector<int32_t> keys =
        data_.CellKeys(data_.cell_global_indices[i]);
    ASSERT_OK_AND_ASSIGN(std::optional<int64_t> v,
                         db_->olap()->ReadCellByKeys(keys));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, data_.measures[i]);
  }
  EXPECT_TRUE(
      db_->olap()->ReadCellByKeys({0, 0, 0, 0}).status().IsInvalidArgument());
}

TEST_F(CoreTest, WriteCellByKeysUpdatesArray) {
  const std::vector<int32_t> keys = {1, 2, 3};
  ASSERT_OK(db_->olap()->WriteCellByKeys(keys, 4242));
  ASSERT_OK_AND_ASSIGN(std::optional<int64_t> v,
                       db_->olap()->ReadCellByKeys(keys));
  EXPECT_EQ(v, std::optional<int64_t>(4242));
}

TEST_F(CoreTest, ConsolidateMatchesBruteForce) {
  const query::ConsolidationQuery q = gen::Query1(3);
  ASSERT_OK_AND_ASSIGN(query::GroupedResult got,
                       ArrayConsolidate(*db_->olap(), q));
  const query::GroupedResult expected = BruteForce(data_, q);
  EXPECT_TRUE(got.SameAs(expected))
      << "got:\n" << got.ToString(q.agg) << "expected:\n"
      << expected.ToString(q.agg);
}

TEST_F(CoreTest, ConsolidateGroupingSubsets) {
  // Group only dimension 1 at level 2, collapse the rest.
  query::ConsolidationQuery q;
  q.dims.resize(3);
  q.dims[1].group_by_col = 2;
  ASSERT_OK_AND_ASSIGN(query::GroupedResult got,
                       ArrayConsolidate(*db_->olap(), q));
  EXPECT_TRUE(got.SameAs(BruteForce(data_, q)));
  EXPECT_LE(got.num_groups(), 2u);  // level-2 cardinality of dim1
  EXPECT_EQ(got.group_columns().size(), 1u);
}

TEST_F(CoreTest, ConsolidateFullCollapseIsGrandTotal) {
  query::ConsolidationQuery q;
  q.dims.resize(3);
  ASSERT_OK_AND_ASSIGN(query::GroupedResult got,
                       ArrayConsolidate(*db_->olap(), q));
  ASSERT_EQ(got.num_groups(), 1u);
  int64_t expected_sum = 0;
  for (int64_t m : data_.measures) expected_sum += m;
  EXPECT_EQ(got.rows()[0].agg.sum, expected_sum);
  EXPECT_EQ(got.rows()[0].agg.count, data_.measures.size());
}

TEST_F(CoreTest, ConsolidateRejectsSelectionQueries) {
  EXPECT_TRUE(ArrayConsolidate(*db_->olap(), gen::Query2(3))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ArrayConsolidateWithSelection(*db_->olap(), gen::Query1(3))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CoreTest, ConsolidateWithSelectionMatchesBruteForce) {
  const query::ConsolidationQuery q = gen::Query2(3);
  ArraySelectStats stats;
  ASSERT_OK_AND_ASSIGN(
      query::GroupedResult got,
      ArrayConsolidateWithSelection(*db_->olap(), q, nullptr, &stats));
  const query::GroupedResult expected = BruteForce(data_, q);
  EXPECT_TRUE(got.SameAs(expected))
      << "got:\n" << got.ToString(q.agg) << "expected:\n"
      << expected.ToString(q.agg);
  EXPECT_EQ(stats.hits, expected.rows().empty()
                            ? 0
                            : [&] {
                                uint64_t n = 0;
                                for (const auto& r : expected.rows()) {
                                  n += r.agg.count;
                                }
                                return n;
                              }());
  EXPECT_GT(stats.candidates, 0u);
}

TEST_F(CoreTest, SelectionWithMultipleValuesUnions) {
  query::ConsolidationQuery q = gen::Query1(3);
  q.dims[0].selections.push_back(query::Selection{
      2,
      {query::Literal{gen::AttrValue(0, 2, 0)},
       query::Literal{gen::AttrValue(0, 2, 1)}}});
  ASSERT_OK_AND_ASSIGN(query::GroupedResult got,
                       ArrayConsolidateWithSelection(*db_->olap(), q));
  EXPECT_TRUE(got.SameAs(BruteForce(data_, q)));
}

TEST_F(CoreTest, SelectionAcrossAttributesIntersects) {
  query::ConsolidationQuery q = gen::Query1(3);
  // Two selections on the same dimension, different attributes: ANDed.
  q.dims[2].selections.push_back(
      query::Selection{1, {query::Literal{gen::AttrValue(2, 1, 0)}}});
  q.dims[2].selections.push_back(
      query::Selection{2, {query::Literal{gen::AttrValue(2, 2, 0)}}});
  ASSERT_OK_AND_ASSIGN(query::GroupedResult got,
                       ArrayConsolidateWithSelection(*db_->olap(), q));
  EXPECT_TRUE(got.SameAs(BruteForce(data_, q)));
}

TEST_F(CoreTest, SelectionOfAbsentValueIsEmpty) {
  query::ConsolidationQuery q = gen::Query1(3);
  q.dims[0].selections.push_back(
      query::Selection{1, {query::Literal{std::string("NOPE")}}});
  ASSERT_OK_AND_ASSIGN(query::GroupedResult got,
                       ArrayConsolidateWithSelection(*db_->olap(), q));
  EXPECT_EQ(got.num_groups(), 0u);
}

TEST_F(CoreTest, ChunkSkipAblationSameResultMoreReads) {
  const query::ConsolidationQuery q = gen::Query2(3);
  ArraySelectStats with_skip, without_skip;
  ASSERT_OK_AND_ASSIGN(query::GroupedResult a,
                       ArrayConsolidateWithSelection(*db_->olap(), q, nullptr,
                                                     &with_skip));
  ArraySelectOptions no_skip;
  no_skip.skip_non_overlapping_chunks = false;
  ASSERT_OK_AND_ASSIGN(query::GroupedResult b,
                       ArrayConsolidateWithSelection(*db_->olap(), q, nullptr,
                                                     &without_skip, no_skip));
  EXPECT_TRUE(a.SameAs(b));
  EXPECT_GE(without_skip.chunks_read, with_skip.chunks_read);
  EXPECT_EQ(without_skip.chunks_skipped, 0u);
}

TEST_F(CoreTest, AggregateFunctionsAllConsistent) {
  const query::ConsolidationQuery q = gen::Query1(3);
  ASSERT_OK_AND_ASSIGN(query::GroupedResult got,
                       ArrayConsolidate(*db_->olap(), q));
  for (const query::ResultRow& row : got.rows()) {
    EXPECT_GE(row.agg.count, 1u);
    EXPECT_LE(row.agg.min, row.agg.max);
    EXPECT_GE(row.agg.sum,
              row.agg.min * static_cast<int64_t>(row.agg.count));
    EXPECT_LE(row.agg.sum,
              row.agg.max * static_cast<int64_t>(row.agg.count));
    const double avg = row.agg.Finalize(query::AggFunc::kAvg);
    EXPECT_GE(avg, static_cast<double>(row.agg.min));
    EXPECT_LE(avg, static_cast<double>(row.agg.max));
  }
}

TEST_F(CoreTest, SliceReturnsOnePlane) {
  ASSERT_OK_AND_ASSIGN(std::vector<SliceCell> slice,
                       ArraySlice(*db_->olap(), 0, 2));
  uint64_t expected = 0;
  for (uint64_t g : data_.cell_global_indices) {
    if (data_.CellKeys(g)[0] == 2) ++expected;
  }
  EXPECT_EQ(slice.size(), expected);
  for (const SliceCell& cell : slice) {
    EXPECT_EQ(cell.coords[0], 2u);
  }
  EXPECT_TRUE(ArraySlice(*db_->olap(), 0, 1000).status().IsNotFound());
  EXPECT_TRUE(ArraySlice(*db_->olap(), 9, 0).status().IsInvalidArgument());
}

TEST_F(CoreTest, SumSubsetMatchesBruteForce) {
  const IndexBox box = {{1, 4}, {0, 8}, {2, 9}};
  ASSERT_OK_AND_ASSIGN(query::AggState agg,
                       ArraySumSubset(*db_->olap(), box));
  query::AggState expected;
  for (size_t i = 0; i < data_.cell_global_indices.size(); ++i) {
    const std::vector<int32_t> keys =
        data_.CellKeys(data_.cell_global_indices[i]);
    bool inside = true;
    for (size_t d = 0; d < 3; ++d) {
      const uint32_t k = static_cast<uint32_t>(keys[d]);
      if (k < box[d].first || k >= box[d].second) inside = false;
    }
    if (inside) expected.Add(data_.measures[i]);
  }
  EXPECT_TRUE(agg == expected);
}

TEST_F(CoreTest, SumSubsetWholeArrayIsGrandTotal) {
  IndexBox box;
  for (uint32_t size : db_->olap()->layout().dims()) box.push_back({0, size});
  ASSERT_OK_AND_ASSIGN(query::AggState agg, ArraySumSubset(*db_->olap(), box));
  EXPECT_EQ(agg.count, data_.measures.size());
  EXPECT_TRUE(ArraySumSubset(*db_->olap(), {{0, 1}}).status()
                  .IsInvalidArgument());
}

TEST_F(CoreTest, MaterializeConsolidationWritesResultArray) {
  const query::ConsolidationQuery q = gen::Query1(3);
  ASSERT_OK_AND_ASSIGN(
      ChunkedArray result,
      MaterializeConsolidation(db_->storage(), *db_->olap(), q,
                               ArrayOptions{}));
  ASSERT_OK_AND_ASSIGN(query::GroupedResult expected,
                       ArrayConsolidate(*db_->olap(), q));
  EXPECT_EQ(result.num_valid_cells(), expected.num_groups());
  for (const query::ResultRow& row : expected.rows()) {
    CellCoords coords(row.group.size());
    for (size_t i = 0; i < row.group.size(); ++i) {
      coords[i] = static_cast<uint32_t>(row.group[i]);
    }
    ASSERT_OK_AND_ASSIGN(std::optional<int64_t> v, result.GetCell(coords));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, row.agg.sum);
  }
}

TEST_F(CoreTest, OlapArrayReopens) {
  ASSERT_OK(db_->storage()->Checkpoint());
  ASSERT_OK(db_->DropCaches());
  ASSERT_OK_AND_ASSIGN(OlapArray reopened,
                       OlapArray::Open(db_->storage(), "cube"));
  EXPECT_EQ(reopened.num_dims(), 3u);
  const query::ConsolidationQuery q = gen::Query1(3);
  ASSERT_OK_AND_ASSIGN(query::GroupedResult got, ArrayConsolidate(reopened, q));
  EXPECT_TRUE(got.SameAs(BruteForce(data_, q)));
  EXPECT_TRUE(
      OlapArray::Open(db_->storage(), "missing").status().IsNotFound());
}

TEST_F(CoreTest, GroupSpecValidation) {
  query::ConsolidationQuery q = gen::Query1(3);
  q.dims[0].group_by_col = 9;  // out of range
  EXPECT_TRUE(GroupSpec::Make(*db_->olap(), q).status().IsInvalidArgument());
  q = gen::Query1(3);
  q.dims.pop_back();  // arity mismatch
  EXPECT_TRUE(GroupSpec::Make(*db_->olap(), q).status().IsInvalidArgument());
}

}  // namespace
}  // namespace paradise
