// Parallel consolidation tests: exact agreement with the serial algorithms
// (no-selection §4.1 and selection §4.2) across thread counts
// (parameterized), selection shapes, error handling, and stats.
#include <chrono>
#include <future>
#include <thread>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "core/consolidate.h"
#include "core/consolidate_select.h"
#include "core/parallel.h"
#include "query/engine.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

class ParallelConsolidateTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("parallel");
    ASSERT_OK_AND_ASSIGN(data_, gen::Generate(TinyConfig(400, 61)));
    ASSERT_OK_AND_ASSIGN(
        db_, BuildDatabaseFromDataset(file_->path(), data_,
                                      SmallDbOptions()));
  }

  std::unique_ptr<TempFile> file_;
  gen::SyntheticDataset data_;
  std::unique_ptr<Database> db_;
};

TEST_P(ParallelConsolidateTest, MatchesSerialResult) {
  const size_t threads = GetParam();
  for (int variant = 0; variant < 3; ++variant) {
    query::ConsolidationQuery q;
    q.dims.resize(3);
    if (variant == 0) q = gen::Query1(3);
    if (variant == 1) q.dims[1].group_by_col = 2;
    // variant 2: full collapse.
    ASSERT_OK_AND_ASSIGN(query::GroupedResult serial,
                         ArrayConsolidate(*db_->olap(), q));
    ParallelConsolidateStats stats;
    ASSERT_OK_AND_ASSIGN(
        query::GroupedResult parallel,
        ParallelArrayConsolidate(*db_->olap(), q, threads, nullptr, &stats));
    EXPECT_TRUE(parallel.SameAs(serial)) << "variant " << variant;
    EXPECT_EQ(stats.threads_used, threads);
    EXPECT_GT(stats.chunks_read, 0u);
  }
}

TEST_P(ParallelConsolidateTest, SelectionMatchesSerialResult) {
  const size_t threads = GetParam();
  // Selection shapes: every-dim equality (Query 2), selection+group on a
  // prefix (Query 3), and a multi-value IN selection.
  std::vector<query::ConsolidationQuery> queries;
  queries.push_back(gen::Query2(3));
  queries.push_back(gen::Query3(3, 2));
  {
    query::ConsolidationQuery q = gen::Query1(3);
    query::Selection s;
    s.attr_col = 1;
    s.values = {query::Literal{gen::AttrValue(0, 1, 0)},
                query::Literal{gen::AttrValue(0, 1, 1)}};
    q.dims[0].selections.push_back(std::move(s));
    queries.push_back(std::move(q));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    const query::ConsolidationQuery& q = queries[i];
    ArraySelectStats serial_stats;
    ASSERT_OK_AND_ASSIGN(
        query::GroupedResult serial,
        ArrayConsolidateWithSelection(*db_->olap(), q, nullptr,
                                      &serial_stats));
    ArraySelectStats par_select_stats;
    ParallelConsolidateStats par_stats;
    ASSERT_OK_AND_ASSIGN(
        query::GroupedResult parallel,
        ParallelArrayConsolidateWithSelection(*db_->olap(), q, threads,
                                              nullptr, &par_select_stats,
                                              &par_stats));
    EXPECT_TRUE(parallel.SameAs(serial)) << "query " << i;
    EXPECT_EQ(par_stats.threads_used, threads);
    // The §4.2 work metrics are scheduling-independent: both paths read,
    // skip and probe exactly the same chunks and candidates.
    EXPECT_EQ(par_select_stats.chunks_read, serial_stats.chunks_read);
    EXPECT_EQ(par_select_stats.chunks_skipped, serial_stats.chunks_skipped);
    EXPECT_EQ(par_select_stats.candidates, serial_stats.candidates);
    EXPECT_EQ(par_select_stats.hits, serial_stats.hits);
  }
}

TEST_P(ParallelConsolidateTest, EmptySelectionShortCircuits) {
  const size_t threads = GetParam();
  // A predicate matching no attribute value must produce an empty result
  // WITHOUT enumerating chunk order: the §4.2 early return fires before any
  // chunk I/O, on the serial and the parallel path alike.
  query::ConsolidationQuery q = gen::Query1(3);
  query::Selection s;
  s.attr_col = 1;
  s.values = {query::Literal{"ZZNOSUCHVALUE"}};
  q.dims[0].selections.push_back(std::move(s));

  ArraySelectStats serial_stats;
  ASSERT_OK_AND_ASSIGN(
      query::GroupedResult serial,
      ArrayConsolidateWithSelection(*db_->olap(), q, nullptr, &serial_stats));
  EXPECT_EQ(serial.num_groups(), 0u);
  EXPECT_EQ(serial_stats.chunks_read, 0u);
  EXPECT_EQ(serial_stats.candidates, 0u);

  ArraySelectStats par_select_stats;
  ParallelConsolidateStats par_stats;
  ASSERT_OK_AND_ASSIGN(
      query::GroupedResult parallel,
      ParallelArrayConsolidateWithSelection(*db_->olap(), q, threads, nullptr,
                                            &par_select_stats, &par_stats));
  EXPECT_EQ(parallel.num_groups(), 0u);
  EXPECT_EQ(par_select_stats.chunks_read, 0u);
  EXPECT_EQ(par_select_stats.candidates, 0u);
  EXPECT_TRUE(parallel.SameAs(serial));

  // The same shape through the engine entry point (cold, both thread modes).
  for (size_t engine_threads : {size_t{1}, threads}) {
    RunQueryOptions options;
    options.num_threads = engine_threads;
    ASSERT_OK_AND_ASSIGN(Execution exec,
                         RunQuery(db_.get(), EngineKind::kArray, q, options));
    EXPECT_EQ(exec.result.num_groups(), 0u);
    EXPECT_EQ(exec.stats.aux, 0u);  // chunks_read
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelConsolidateTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ParallelConsolidateErrors, RejectsBadArguments) {
  TempFile file("parallel_err");
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromConfig(file.path(), TinyConfig(50), SmallDbOptions()));
  EXPECT_TRUE(
      ParallelArrayConsolidate(*db->olap(), gen::Query2(3), 2).status()
          .IsInvalidArgument());
  EXPECT_TRUE(
      ParallelArrayConsolidate(*db->olap(), gen::Query1(3), 0).status()
          .IsInvalidArgument());
  EXPECT_TRUE(ParallelArrayConsolidateWithSelection(*db->olap(),
                                                    gen::Query1(3), 2)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParallelArrayConsolidateWithSelection(*db->olap(),
                                                    gen::Query2(3), 0)
                  .status()
                  .IsInvalidArgument());
}

TEST(ParallelEngine, RunQueryThreadsMatchSerial) {
  TempFile file("parallel_engine");
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(300, 17)));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
  for (const query::ConsolidationQuery& q : {gen::Query1(3), gen::Query2(3)}) {
    ASSERT_OK_AND_ASSIGN(Execution serial,
                         RunQuery(db.get(), EngineKind::kArray, q));
    for (size_t threads : {size_t{2}, size_t{4}}) {
      RunQueryOptions options;
      options.num_threads = threads;
      ASSERT_OK_AND_ASSIGN(Execution parallel,
                           RunQuery(db.get(), EngineKind::kArray, q, options));
      EXPECT_TRUE(parallel.result.SameAs(serial.result))
          << "threads=" << threads;
      EXPECT_TRUE(parallel.result.SameAs(BruteForce(data, q)));
    }
  }
  RunQueryOptions zero;
  zero.num_threads = 0;
  EXPECT_TRUE(RunQuery(db.get(), EngineKind::kArray, gen::Query1(3), zero)
                  .status()
                  .IsInvalidArgument());
}

TEST(ParallelConsolidateErrors, MatchesBruteForceAtScale) {
  // A larger cube so several chunks are in flight per worker.
  TempFile file("parallel_scale");
  gen::GenConfig config;
  config.dims.resize(4);
  const uint32_t sizes[4] = {10, 10, 10, 20};
  for (size_t d = 0; d < 4; ++d) {
    config.dims[d].name = "dim" + std::to_string(d);
    config.dims[d].size = sizes[d];
    config.dims[d].level_cardinalities = {5, 2};
  }
  config.num_valid_cells = 4000;
  config.seed = 99;
  config.chunk_extents = {5, 5, 5, 5};
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
  const query::ConsolidationQuery q = gen::Query1(4);
  ASSERT_OK_AND_ASSIGN(query::GroupedResult result,
                       ParallelArrayConsolidate(*db->olap(), q, 4));
  EXPECT_TRUE(result.SameAs(BruteForce(data, q)));
}

/// Hang-detector regression for the morsel-pool shutdown bug: a token fired
/// while workers are parked on the pool's condition variable (waiting for a
/// late fetcher) must still retire every worker — the bounded wait plus the
/// cancel poll at the loop top guarantee the join completes. Each run is
/// raced from a separate thread at staggered fire delays across thread
/// counts 1–16 and must finish well inside the watchdog window, returning
/// either a full (correct) result or the token's typed Cancelled status.
TEST(ParallelCancellation, FiredTokenNeverHangsTheJoin) {
  TempFile file("parallel_cancel_hang");
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(400, 62)));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
  const query::ConsolidationQuery q = gen::Query1(3);
  const query::GroupedResult expected = BruteForce(data, q);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{3}, size_t{4},
                         size_t{8}, size_t{16}}) {
    for (int trial = 0; trial < 4; ++trial) {
      CancellationToken token;
      if (trial == 0) token.RequestCancel();  // fired before the pool starts
      std::future<Result<query::GroupedResult>> fut =
          std::async(std::launch::async, [&] {
            return ParallelArrayConsolidate(*db->olap(), q, threads, nullptr,
                                            nullptr, &token);
          });
      if (trial > 0) {
        // Stagger the fire point across the query's lifetime so some runs
        // catch workers mid-fetch and some catch them parked on the cv.
        std::this_thread::sleep_for(std::chrono::microseconds(trial * 150));
        token.RequestCancel();
      }
      ASSERT_EQ(fut.wait_for(std::chrono::seconds(60)),
                std::future_status::ready)
          << "threads " << threads << " trial " << trial
          << ": cancellation hung the worker join";
      Result<query::GroupedResult> r = fut.get();
      if (r.ok()) {
        EXPECT_TRUE(r.value().SameAs(expected))
            << "threads " << threads << " trial " << trial;
      } else {
        EXPECT_TRUE(r.status().IsCancelled())
            << "threads " << threads << " trial " << trial << ": "
            << r.status().ToString();
      }
    }
  }
}

}  // namespace
}  // namespace paradise
