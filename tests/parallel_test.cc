// Parallel consolidation tests: exact agreement with the serial algorithm
// across thread counts (parameterized), error handling, and stats.
#include <gtest/gtest.h>

#include "core/consolidate.h"
#include "core/parallel.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

class ParallelConsolidateTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("parallel");
    ASSERT_OK_AND_ASSIGN(data_, gen::Generate(TinyConfig(400, 61)));
    ASSERT_OK_AND_ASSIGN(
        db_, BuildDatabaseFromDataset(file_->path(), data_,
                                      SmallDbOptions()));
  }

  std::unique_ptr<TempFile> file_;
  gen::SyntheticDataset data_;
  std::unique_ptr<Database> db_;
};

TEST_P(ParallelConsolidateTest, MatchesSerialResult) {
  const size_t threads = GetParam();
  for (int variant = 0; variant < 3; ++variant) {
    query::ConsolidationQuery q;
    q.dims.resize(3);
    if (variant == 0) q = gen::Query1(3);
    if (variant == 1) q.dims[1].group_by_col = 2;
    // variant 2: full collapse.
    ASSERT_OK_AND_ASSIGN(query::GroupedResult serial,
                         ArrayConsolidate(*db_->olap(), q));
    ParallelConsolidateStats stats;
    ASSERT_OK_AND_ASSIGN(
        query::GroupedResult parallel,
        ParallelArrayConsolidate(*db_->olap(), q, threads, nullptr, &stats));
    EXPECT_TRUE(parallel.SameAs(serial)) << "variant " << variant;
    EXPECT_EQ(stats.threads_used, threads);
    EXPECT_GT(stats.chunks_read, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelConsolidateTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ParallelConsolidateErrors, RejectsBadArguments) {
  TempFile file("parallel_err");
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromConfig(file.path(), TinyConfig(50), SmallDbOptions()));
  EXPECT_TRUE(
      ParallelArrayConsolidate(*db->olap(), gen::Query2(3), 2).status()
          .IsInvalidArgument());
  EXPECT_TRUE(
      ParallelArrayConsolidate(*db->olap(), gen::Query1(3), 0).status()
          .IsInvalidArgument());
}

TEST(ParallelConsolidateErrors, MatchesBruteForceAtScale) {
  // A larger cube so several chunks are in flight per worker.
  TempFile file("parallel_scale");
  gen::GenConfig config;
  config.dims.resize(4);
  const uint32_t sizes[4] = {10, 10, 10, 20};
  for (size_t d = 0; d < 4; ++d) {
    config.dims[d].name = "dim" + std::to_string(d);
    config.dims[d].size = sizes[d];
    config.dims[d].level_cardinalities = {5, 2};
  }
  config.num_valid_cells = 4000;
  config.seed = 99;
  config.chunk_extents = {5, 5, 5, 5};
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
  const query::ConsolidationQuery q = gen::Query1(4);
  ASSERT_OK_AND_ASSIGN(query::GroupedResult result,
                       ParallelArrayConsolidate(*db->olap(), q, 4));
  EXPECT_TRUE(result.SameAs(BruteForce(data, q)));
}

}  // namespace
}  // namespace paradise
