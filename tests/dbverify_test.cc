// Tests for the dbverify library (schema/db_verify.h): clean committed
// databases verify with zero findings and zero file mutation, every
// corrupted fixture — bit flip, truncation, garbage — produces findings (the
// tool's non-zero exit), legacy v1 files verify, and the read-only storage
// mode underpinning it all rejects writes and never commits.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/options.h"
#include "schema/db_verify.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/storage_manager.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

/// XORs one byte of the file at `offset` with `mask`.
void FlipByteInFile(const std::string& path, uint64_t offset, char mask) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  char byte = 0;
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
  byte = static_cast<char>(byte ^ mask);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
  ASSERT_EQ(std::fclose(f), 0);
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void BuildTinyDb(const std::string& path, gen::SyntheticDataset* data,
                 DatabaseOptions options = SmallDbOptions()) {
  const gen::GenConfig config = TinyConfig(70, 13);
  ASSERT_OK_AND_ASSIGN(*data, gen::Generate(config));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       BuildDatabaseFromDataset(path, *data, options));
}

TEST(DbVerifyTest, CleanDatabaseVerifiesWithoutFindings) {
  TempFile file("dbverify_clean");
  gen::SyntheticDataset data;
  DatabaseOptions options = SmallDbOptions();
  options.build_btree_join_indexes = true;
  BuildTinyDb(file.path(), &data, options);

  ASSERT_OK_AND_ASSIGN(VerifyReport report, VerifyDatabaseFile(file.path()));
  EXPECT_TRUE(report.clean())
      << (report.AllIssues().empty() ? std::string("?")
                                     : report.AllIssues().front());
  EXPECT_TRUE(report.AllIssues().empty());
  EXPECT_GT(report.page_count, 4u);
  EXPECT_GT(report.catalog_entries, 0u);
  EXPECT_EQ(report.fact_tuples, data.cell_global_indices.size());
  EXPECT_GT(report.chunks_verified, 0u);
  EXPECT_EQ(report.scrub.pages_scanned,
            report.page_count -
                page_header::FirstUserPage(page_header::kFormatManifest));
  EXPECT_EQ(report.scrub.pages_corrupt, 0u);
}

TEST(DbVerifyTest, VerificationNeverModifiesTheFile) {
  TempFile file("dbverify_readonly");
  gen::SyntheticDataset data;
  BuildTinyDb(file.path(), &data);
  const std::string before = ReadWholeFile(file.path());
  ASSERT_FALSE(before.empty());
  ASSERT_OK_AND_ASSIGN(VerifyReport report, VerifyDatabaseFile(file.path()));
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(ReadWholeFile(file.path()), before)
      << "dbverify mutated the file it was checking";
}

TEST(DbVerifyTest, FlagsASingleBitFlip) {
  TempFile file("dbverify_flip");
  gen::SyntheticDataset data;
  BuildTinyDb(file.path(), &data);
  const StorageOptions storage = SmallDbOptions().storage;
  const uint64_t stride = storage.page_size + page_header::kPageTrailerBytes;
  // Any user page: the first one past the header and the manifest slots.
  const PageId victim = page_header::FirstUserPage(page_header::kFormatManifest);
  FlipByteInFile(file.path(), victim * stride + 700, 0x08);

  ASSERT_OK_AND_ASSIGN(VerifyReport report, VerifyDatabaseFile(file.path()));
  EXPECT_FALSE(report.clean());
  EXPECT_GE(report.scrub.pages_corrupt, 1u);
  bool named = false;
  for (const std::string& issue : report.AllIssues()) {
    if (issue.find("page " + std::to_string(victim)) != std::string::npos) {
      named = true;
    }
  }
  EXPECT_TRUE(named) << "no finding names the corrupted page";
}

TEST(DbVerifyTest, FlagsATruncatedFile) {
  TempFile file("dbverify_trunc");
  gen::SyntheticDataset data;
  BuildTinyDb(file.path(), &data);
  const StorageOptions storage = SmallDbOptions().storage;
  const uint64_t stride = storage.page_size + page_header::kPageTrailerBytes;
  // Keep the header and both manifest slots; chop off the data pages.
  std::filesystem::resize_file(file.path(), 4 * stride);

  ASSERT_OK_AND_ASSIGN(VerifyReport report, VerifyDatabaseFile(file.path()));
  EXPECT_FALSE(report.clean());
  EXPECT_FALSE(report.AllIssues().empty());
}

TEST(DbVerifyTest, GarbageFileCannotBeVerified) {
  TempFile file("dbverify_garbage");
  {
    std::ofstream out(file.path(), std::ios::binary);
    out << "this is not a paradise database file at all";
  }
  auto r = VerifyDatabaseFile(file.path());
  ASSERT_FALSE(r.ok());  // the tool exits 2: it cannot even probe the header
}

TEST(DbVerifyTest, MissingFileCannotBeVerified) {
  auto r = VerifyDatabaseFile("/nonexistent/path/to/nothing.db");
  ASSERT_FALSE(r.ok());
}

TEST(DbVerifyTest, LegacyV1DatabaseVerifiesClean) {
  TempFile file("dbverify_v1");
  gen::SyntheticDataset data;
  DatabaseOptions options = SmallDbOptions();
  options.storage.format_version = page_header::kFormatLegacy;
  BuildTinyDb(file.path(), &data, options);

  ASSERT_OK_AND_ASSIGN(VerifyReport report, VerifyDatabaseFile(file.path()));
  EXPECT_TRUE(report.clean())
      << (report.AllIssues().empty() ? std::string("?")
                                     : report.AllIssues().front());
  EXPECT_EQ(report.fact_tuples, data.cell_global_indices.size());
}

/// The read-only storage mode dbverify relies on: writes are rejected at the
/// disk layer and Close never commits, so the epoch cannot move.
TEST(DbVerifyTest, ReadOnlyStorageRejectsWritesAndNeverCommits) {
  TempFile file("dbverify_ro");
  gen::SyntheticDataset data;
  BuildTinyDb(file.path(), &data);
  uint64_t epoch_before = 0;
  {
    DiskManager disk;
    ASSERT_OK(disk.Open(file.path(), SmallDbOptions().storage));
    epoch_before = disk.commit_epoch();
    disk.Abandon();
  }
  {
    StorageOptions options = SmallDbOptions().storage;
    options.read_only = true;
    StorageManager sm;
    ASSERT_OK(sm.Open(file.path(), options));
    EXPECT_FALSE(sm.disk()->WritePage(
        page_header::FirstUserPage(sm.disk()->format_version()),
        std::string(options.page_size, 'x').data()).ok());
    EXPECT_FALSE(sm.disk()->AllocatePage().ok());
    ASSERT_OK(sm.Close());
  }
  DiskManager disk;
  ASSERT_OK(disk.Open(file.path(), SmallDbOptions().storage));
  EXPECT_EQ(disk.commit_epoch(), epoch_before)
      << "a read-only session advanced the commit epoch";
  disk.Abandon();
  // Creating a file read-only is meaningless and rejected.
  StorageOptions ro = SmallDbOptions().storage;
  ro.read_only = true;
  StorageManager sm2;
  TempFile fresh("dbverify_ro_create");
  const Status create_st = sm2.Create(fresh.path(), ro);
  EXPECT_TRUE(create_st.IsInvalidArgument()) << create_st.ToString();
}

/// Forward-compat tripwire: a file whose header carries a page-format
/// version newer than this build understands must be REJECTED with a typed
/// NotSupported — both by a direct open and by dbverify, which turns the
/// rejection into a finding instead of misreading pages it cannot decode.
TEST(DbVerifyTest, UnknownPageFormatVersionIsATypedRejection) {
  TempFile file("dbverify_future_version");
  gen::SyntheticDataset data;
  BuildTinyDb(file.path(), &data);
  // The version lives as a fixed32 at a fixed header offset; flipping a high
  // bit of its low byte fabricates a far-future format.
  FlipByteInFile(file.path(), page_header::kVersionOffset, 0x40);

  StorageManager sm;
  const Status open_st = sm.Open(file.path(), SmallDbOptions().storage);
  EXPECT_TRUE(open_st.IsNotSupported()) << open_st.ToString();

  ASSERT_OK_AND_ASSIGN(VerifyReport report, VerifyDatabaseFile(file.path()));
  EXPECT_FALSE(report.clean());
  bool typed = false;
  for (const std::string& issue : report.AllIssues()) {
    if (issue.find("file header rejected") != std::string::npos &&
        issue.find("format_version") != std::string::npos) {
      typed = true;
    }
  }
  EXPECT_TRUE(typed) << "no finding carries the typed version rejection";
}

/// Same tripwire one layer down: a chunk-format byte above kMaxChunkFormat
/// in the array meta must surface as a typed rejection, never be cast into
/// ChunkFormat and misdecoded. The corruption is planted through the object
/// store so every page checksum stays valid — only the format byte lies.
TEST(DbVerifyTest, UnknownChunkFormatIsATypedRejection) {
  TempFile file("dbverify_chunk_format");
  gen::SyntheticDataset data;
  BuildTinyDb(file.path(), &data);
  {
    StorageManager sm;
    ASSERT_OK(sm.Open(file.path(), SmallDbOptions().storage));
    std::string olap_root;
    for (const auto& [name, value] : sm.catalog()) {
      if (name.rfind("olap_array.", 0) == 0) olap_root = name;
    }
    ASSERT_FALSE(olap_root.empty());
    ASSERT_OK_AND_ASSIGN(uint64_t meta_oid, sm.GetRoot(olap_root));
    ASSERT_OK_AND_ASSIGN(std::string meta, sm.objects()->Read(meta_oid));
    // The ADT meta ends with fixed32 measure-count + fixed64 per-measure
    // chunked-array meta oid; the tiny cube has exactly one measure.
    ASSERT_GE(meta.size(), 12u);
    ASSERT_EQ(DecodeFixed32(meta.data() + meta.size() - 12), 1u);
    const uint64_t chunk_meta_oid =
        DecodeFixed64(meta.data() + meta.size() - 8);
    ASSERT_OK_AND_ASSIGN(std::string chunk_meta,
                         sm.objects()->Read(chunk_meta_oid));
    ASSERT_GE(chunk_meta.size(), 5u);
    ASSERT_EQ(chunk_meta.substr(0, 4), "CARR");
    chunk_meta[4] = 0x7f;  // a chunk format this build has never heard of
    ASSERT_OK(sm.objects()->Overwrite(chunk_meta_oid, chunk_meta));
    ASSERT_OK(sm.Close());
  }

  auto opened = Database::Open(file.path(), SmallDbOptions());
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsNotSupported()) << opened.status().ToString();

  ASSERT_OK_AND_ASSIGN(VerifyReport report, VerifyDatabaseFile(file.path()));
  EXPECT_FALSE(report.clean());
  bool typed = false;
  for (const std::string& issue : report.AllIssues()) {
    if (issue.find("chunk format") != std::string::npos) typed = true;
  }
  EXPECT_TRUE(typed) << "no finding carries the typed chunk-format rejection";
}

/// Opens the file, walks the catalog to the OLAP array's packed data
/// object, and applies `mutate` to its byte at `index` through the object
/// store — every page checksum stays valid; only the chunk bytes lie. The
/// first non-empty chunk's blob starts at byte 0 of the data object.
void MutateOlapChunkByte(const std::string& path, size_t index,
                         char (*mutate)(char)) {
  StorageManager sm;
  ASSERT_OK(sm.Open(path, SmallDbOptions().storage));
  std::string olap_root;
  for (const auto& [name, value] : sm.catalog()) {
    if (name.rfind("olap_array.", 0) == 0) olap_root = name;
  }
  ASSERT_FALSE(olap_root.empty());
  ASSERT_OK_AND_ASSIGN(uint64_t meta_oid, sm.GetRoot(olap_root));
  ASSERT_OK_AND_ASSIGN(std::string meta, sm.objects()->Read(meta_oid));
  ASSERT_GE(meta.size(), 12u);
  ASSERT_EQ(DecodeFixed32(meta.data() + meta.size() - 12), 1u);
  const uint64_t chunk_meta_oid = DecodeFixed64(meta.data() + meta.size() - 8);
  ASSERT_OK_AND_ASSIGN(std::string chunk_meta,
                       sm.objects()->Read(chunk_meta_oid));
  ASSERT_GE(chunk_meta.size(), 17u);
  ASSERT_EQ(chunk_meta.substr(0, 4), "CARR");
  // CARR meta: data ObjectId lives at bytes [9, 17).
  const uint64_t data_oid = DecodeFixed64(chunk_meta.data() + 9);
  ASSERT_OK_AND_ASSIGN(std::string chunk_data, sm.objects()->Read(data_oid));
  ASSERT_GT(chunk_data.size(), index);
  chunk_data[index] = mutate(chunk_data[index]);
  ASSERT_OK(sm.objects()->Overwrite(data_oid, chunk_data));
  ASSERT_OK(sm.Close());
}

/// An unknown codec id on a CHUNK (as opposed to the array meta above) is
/// invisible to Database::Open, which reads only the directory — the
/// dbverify codec stage must surface it as a typed finding, not a crash and
/// not a clean report.
TEST(DbVerifyTest, UnknownChunkCodecIdIsAFinding) {
  TempFile file("dbverify_chunk_codec_id");
  gen::SyntheticDataset data;
  BuildTinyDb(file.path(), &data);
  // Byte 0 of the packed data object is the first chunk's tag byte.
  MutateOlapChunkByte(file.path(), 0, [](char) { return char{0x7f}; });

  ASSERT_OK(Database::Open(file.path(), SmallDbOptions()).status());

  ASSERT_OK_AND_ASSIGN(VerifyReport report, VerifyDatabaseFile(file.path()));
  EXPECT_FALSE(report.clean());
  bool typed = false;
  for (const std::string& issue : report.AllIssues()) {
    if (issue.find("codec rejected") != std::string::npos &&
        issue.find("unknown chunk format tag") != std::string::npos) {
      typed = true;
    }
  }
  EXPECT_TRUE(typed) << "no finding names the unknown chunk codec id";
}

/// A diff-sequence chunk whose stored cell count disagrees with its stream
/// lengths (the shape a truncation or torn write produces) must become a
/// size-mismatch finding, never an out-of-bounds decode.
TEST(DbVerifyTest, TruncatedDiffSequenceChunkIsAFinding) {
  if (std::optional<ChunkFormat> forced = ForcedChunkFormatFromEnv();
      forced && *forced != ChunkFormat::kDiffSequence) {
    GTEST_SKIP() << "corruption fixture requires diff-sequence encoding, but "
                    "PARADISE_FORCE_CHUNK_FORMAT selects another codec";
  }
  TempFile file("dbverify_diffseq_trunc");
  gen::SyntheticDataset data;
  DatabaseOptions options = SmallDbOptions();
  options.array.chunk_format = ChunkFormat::kDiffSequence;
  BuildTinyDb(file.path(), &data, options);
  // Bytes [5,9) of a packed chunk hold its valid count; bumping it claims
  // one more cell than the gap/value streams actually carry.
  MutateOlapChunkByte(file.path(), 5,
                      [](char c) { return static_cast<char>(c + 1); });

  ASSERT_OK_AND_ASSIGN(VerifyReport report, VerifyDatabaseFile(file.path()));
  EXPECT_FALSE(report.clean());
  bool typed = false;
  for (const std::string& issue : report.AllIssues()) {
    if (issue.find("diff-sequence chunk size mismatch") != std::string::npos) {
      typed = true;
    }
  }
  EXPECT_TRUE(typed) << "no finding flags the inconsistent diff-sequence size";
}

/// scrub_on_open turns a damaged file into a refused Open for applications
/// that opt in, instead of a latent read error later.
TEST(DbVerifyTest, ScrubOnOpenRefusesACorruptFile) {
  TempFile file("dbverify_scrub_open");
  gen::SyntheticDataset data;
  BuildTinyDb(file.path(), &data);
  const StorageOptions storage = SmallDbOptions().storage;
  const uint64_t stride = storage.page_size + page_header::kPageTrailerBytes;
  const PageId victim =
      page_header::FirstUserPage(page_header::kFormatManifest) + 1;
  FlipByteInFile(file.path(), victim * stride + 900, 0x04);

  StorageOptions scrubbed = storage;
  scrubbed.scrub_on_open = true;
  StorageManager sm;
  const Status st = sm.Open(file.path(), scrubbed);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();

  // Without the scrub the open itself still succeeds (lazy detection).
  StorageManager lazy;
  ASSERT_OK(lazy.Open(file.path(), storage));
  lazy.disk()->Abandon();
}

}  // namespace
}  // namespace paradise
