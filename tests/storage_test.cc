// Tests for the storage manager substrate: disk manager, buffer pool,
// extent allocator, large objects and the StorageManager facade.
#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/extent_allocator.h"
#include "storage/large_object.h"
#include "storage/storage_manager.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::TempFile;

StorageOptions SmallOptions() {
  StorageOptions o;
  o.page_size = 4096;
  o.buffer_pool_pages = 16;
  o.pages_per_extent = 4;
  return o;
}

TEST(DiskManagerTest, CreateWriteReadReopen) {
  TempFile file("disk");
  const StorageOptions options = SmallOptions();
  std::vector<char> page(options.page_size, 'x');
  PageId id = kInvalidPageId;
  {
    DiskManager disk;
    ASSERT_OK(disk.Create(file.path(), options));
    ASSERT_OK_AND_ASSIGN(id, disk.AllocatePage());
    EXPECT_GT(id, 0u);
    ASSERT_OK(disk.WritePage(id, page.data()));
    ASSERT_OK(disk.Close());
  }
  {
    DiskManager disk;
    ASSERT_OK(disk.Open(file.path(), options));
    std::vector<char> readback(options.page_size);
    ASSERT_OK(disk.ReadPage(id, readback.data()));
    EXPECT_EQ(readback, page);
  }
}

TEST(DiskManagerTest, CreateRefusesExistingFile) {
  TempFile file("disk_exists");
  StorageOptions options = SmallOptions();
  {
    DiskManager disk;
    ASSERT_OK(disk.Create(file.path(), options));
  }
  DiskManager disk2;
  EXPECT_TRUE(disk2.Create(file.path(), options).IsAlreadyExists());
  options.allow_overwrite = true;
  DiskManager disk3;
  EXPECT_OK(disk3.Create(file.path(), options));
}

TEST(DiskManagerTest, OpenRejectsWrongPageSize) {
  TempFile file("disk_ps");
  StorageOptions options = SmallOptions();
  {
    DiskManager disk;
    ASSERT_OK(disk.Create(file.path(), options));
  }
  options.page_size = 8192;
  DiskManager disk2;
  EXPECT_TRUE(disk2.Open(file.path(), options).IsInvalidArgument());
}

TEST(DiskManagerTest, OpenRejectsGarbageFile) {
  TempFile file("disk_garbage");
  {
    std::FILE* f = std::fopen(file.path().c_str(), "wb");
    std::string junk(8192, 'j');
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
  }
  DiskManager disk;
  EXPECT_TRUE(disk.Open(file.path(), SmallOptions()).IsCorruption());
}

TEST(DiskManagerTest, FreeListReusesPages) {
  TempFile file("disk_free");
  DiskManager disk;
  ASSERT_OK(disk.Create(file.path(), SmallOptions()));
  ASSERT_OK_AND_ASSIGN(PageId a, disk.AllocatePage());
  ASSERT_OK_AND_ASSIGN(PageId b, disk.AllocatePage());
  EXPECT_NE(a, b);
  ASSERT_OK(disk.FreePage(a));
  ASSERT_OK_AND_ASSIGN(PageId c, disk.AllocatePage());
  EXPECT_EQ(c, a);  // reused from the free list
  EXPECT_TRUE(disk.FreePage(0).IsInvalidArgument());  // header protected
}

TEST(DiskManagerTest, FreeListSurvivesReopen) {
  TempFile file("disk_free_reopen");
  PageId freed = kInvalidPageId;
  uint64_t page_count = 0;
  {
    DiskManager disk;
    ASSERT_OK(disk.Create(file.path(), SmallOptions()));
    ASSERT_OK_AND_ASSIGN(freed, disk.AllocatePage());
    ASSERT_OK_AND_ASSIGN(PageId other, disk.AllocatePage());
    (void)other;
    ASSERT_OK(disk.FreePage(freed));
    page_count = disk.page_count();
    ASSERT_OK(disk.Close());
  }
  DiskManager disk;
  ASSERT_OK(disk.Open(file.path(), SmallOptions()));
  EXPECT_EQ(disk.page_count(), page_count);
  ASSERT_OK_AND_ASSIGN(PageId again, disk.AllocatePage());
  EXPECT_EQ(again, freed);
}

TEST(DiskManagerTest, AllocateContiguousIsContiguous) {
  TempFile file("disk_contig");
  DiskManager disk;
  ASSERT_OK(disk.Create(file.path(), SmallOptions()));
  ASSERT_OK_AND_ASSIGN(PageId first, disk.AllocateContiguous(8));
  EXPECT_EQ(disk.page_count(), first + 8);
  // All 8 pages are readable.
  std::vector<char> buf(SmallOptions().page_size);
  for (PageId p = first; p < first + 8; ++p) {
    EXPECT_OK(disk.ReadPage(p, buf.data()));
  }
}

TEST(DiskManagerTest, ReadBeyondEofFails) {
  TempFile file("disk_oob");
  DiskManager disk;
  ASSERT_OK(disk.Create(file.path(), SmallOptions()));
  std::vector<char> buf(SmallOptions().page_size);
  EXPECT_TRUE(disk.ReadPage(99, buf.data()).IsOutOfRange());
  EXPECT_TRUE(disk.ReadPage(kInvalidPageId, buf.data()).IsOutOfRange());
}

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("pool");
    options_ = SmallOptions();
    ASSERT_OK(disk_.Create(file_->path(), options_));
    pool_ = std::make_unique<BufferPool>(&disk_, options_);
  }

  std::unique_ptr<TempFile> file_;
  StorageOptions options_;
  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BufferPoolTest, NewPageIsZeroedAndPinned) {
  ASSERT_OK_AND_ASSIGN(PageGuard g, pool_->NewPage());
  for (size_t i = 0; i < options_.page_size; ++i) {
    ASSERT_EQ(g.data()[i], 0) << "byte " << i;
  }
  EXPECT_EQ(pool_->pinned_frames(), 1u);
  g.Release();
  EXPECT_EQ(pool_->pinned_frames(), 0u);
}

TEST_F(BufferPoolTest, WritesSurviveEviction) {
  PageId id;
  {
    ASSERT_OK_AND_ASSIGN(PageGuard g, pool_->NewPage());
    id = g.page_id();
    g.mutable_data()[0] = 'Z';
  }
  ASSERT_OK(pool_->FlushAndEvictAll());
  ASSERT_OK_AND_ASSIGN(PageGuard g, pool_->FetchPage(id));
  EXPECT_EQ(g.data()[0], 'Z');
}

TEST_F(BufferPoolTest, HitsAreCountedAndCheap) {
  ASSERT_OK_AND_ASSIGN(PageGuard g, pool_->NewPage());
  const PageId id = g.page_id();
  g.Release();
  pool_->ResetStats();
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(PageGuard h, pool_->FetchPage(id));
  }
  EXPECT_EQ(pool_->stats().logical_reads, 5u);
  EXPECT_EQ(pool_->stats().hits, 5u);
  EXPECT_EQ(pool_->stats().disk_reads, 0u);
}

TEST_F(BufferPoolTest, EvictsUnpinnedPagesUnderPressure) {
  // Allocate twice the pool capacity; everything must still round-trip.
  std::vector<PageId> ids;
  for (size_t i = 0; i < options_.buffer_pool_pages * 2; ++i) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, pool_->NewPage());
    g.mutable_data()[0] = static_cast<char>(i);
    ids.push_back(g.page_id());
  }
  EXPECT_GT(pool_->stats().evictions, 0u);
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, pool_->FetchPage(ids[i]));
    EXPECT_EQ(g.data()[0], static_cast<char>(i));
  }
}

TEST_F(BufferPoolTest, AllPinnedIsResourceExhausted) {
  std::vector<PageGuard> guards;
  for (size_t i = 0; i < options_.buffer_pool_pages; ++i) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, pool_->NewPage());
    guards.push_back(std::move(g));
  }
  Result<PageGuard> extra = pool_->NewPage();
  EXPECT_TRUE(extra.status().IsResourceExhausted());
  guards.clear();
  EXPECT_TRUE(pool_->NewPage().ok());
}

TEST_F(BufferPoolTest, DeletePageDropsAndFrees) {
  ASSERT_OK_AND_ASSIGN(PageGuard g, pool_->NewPage());
  const PageId id = g.page_id();
  EXPECT_TRUE(pool_->DeletePage(id).IsInvalidArgument());  // still pinned
  g.Release();
  ASSERT_OK(pool_->DeletePage(id));
  // The freed page is reused by the next allocation.
  ASSERT_OK_AND_ASSIGN(PageGuard g2, pool_->NewPage());
  EXPECT_EQ(g2.page_id(), id);
}

TEST_F(BufferPoolTest, MoveTransfersPin) {
  ASSERT_OK_AND_ASSIGN(PageGuard g, pool_->NewPage());
  PageGuard moved = std::move(g);
  EXPECT_FALSE(g.valid());  // NOLINT(bugprone-use-after-move): testing move
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(pool_->pinned_frames(), 1u);
  moved.Release();
  EXPECT_EQ(pool_->pinned_frames(), 0u);
}

TEST_F(BufferPoolTest, FlushAndEvictEmptiesPool) {
  for (int i = 0; i < 6; ++i) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, pool_->NewPage());
    g.mutable_data()[0] = 1;
  }
  ASSERT_OK(pool_->FlushAndEvictAll());
  pool_->ResetStats();
  ASSERT_OK_AND_ASSIGN(PageGuard g, pool_->FetchPage(1));
  EXPECT_EQ(pool_->stats().disk_reads, 1u);  // cold again
}

TEST(BufferPoolStatsTest, DeltaSaturatesInsteadOfUnderflowing) {
  // The bench harness snapshots stats, runs a warm-up, calls ResetStats(),
  // then snapshots again: the later counters are SMALLER than the earlier
  // ones. A raw unsigned subtract turned every delta into ~2^64.
  BufferPoolStats earlier;
  earlier.logical_reads = 100;
  earlier.hits = 80;
  earlier.disk_reads = 20;
  earlier.seq_disk_reads = 12;
  earlier.rand_disk_reads = 8;
  earlier.disk_writes = 5;
  earlier.evictions = 3;
  earlier.read_retries = 2;
  earlier.coalesced_reads = 4;
  earlier.prefetched = 6;
  earlier.prefetch_hits = 5;
  earlier.prefetch_wasted = 1;
  BufferPoolStats later;  // all zero, as right after ResetStats()
  later.logical_reads = 10;
  later.hits = 4;
  const BufferPoolStats d = later.Delta(earlier);
  EXPECT_EQ(d.logical_reads, 0u);
  EXPECT_EQ(d.hits, 0u);
  EXPECT_EQ(d.disk_reads, 0u);
  EXPECT_EQ(d.seq_disk_reads, 0u);
  EXPECT_EQ(d.rand_disk_reads, 0u);
  EXPECT_EQ(d.disk_writes, 0u);
  EXPECT_EQ(d.evictions, 0u);
  EXPECT_EQ(d.read_retries, 0u);
  EXPECT_EQ(d.coalesced_reads, 0u);
  EXPECT_EQ(d.prefetched, 0u);
  EXPECT_EQ(d.prefetch_hits, 0u);
  EXPECT_EQ(d.prefetch_wasted, 0u);
  // The normal monotonic direction still subtracts exactly.
  const BufferPoolStats forward = earlier.Delta(later);
  EXPECT_EQ(forward.logical_reads, 90u);
  EXPECT_EQ(forward.hits, 76u);
  EXPECT_EQ(forward.disk_reads, 20u);
}

TEST(BufferPoolStatsTest, DeltaAcrossResetStatsStaysSane) {
  TempFile file("pool_delta_reset");
  StorageOptions options = SmallOptions();
  DiskManager disk;
  ASSERT_OK(disk.Create(file.path(), options));
  BufferPool pool(&disk, options);
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, pool.NewPage());
    ids.push_back(g.page_id());
  }
  for (PageId id : ids) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, pool.FetchPage(id));
  }
  const BufferPoolStats before = pool.stats();
  ASSERT_GT(before.logical_reads, 0u);
  pool.ResetStats();
  ASSERT_OK_AND_ASSIGN(PageGuard g, pool.FetchPage(ids[0]));
  const BufferPoolStats delta = pool.stats().Delta(before);
  // One fetch happened since the reset; every field must be small, not 2^64.
  EXPECT_LE(delta.logical_reads, 1u);
  EXPECT_LE(delta.hits, 1u);
  EXPECT_LE(delta.disk_reads, 1u);
}

TEST(BufferPoolLruTest, EvictsLeastRecentlyUsed) {
  TempFile file("pool_lru");
  StorageOptions options = SmallOptions();
  options.buffer_pool_pages = 8;
  options.eviction = EvictionPolicy::kLru;
  DiskManager disk;
  ASSERT_OK(disk.Create(file.path(), options));
  BufferPool pool(&disk, options);

  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, pool.NewPage());
    ids.push_back(g.page_id());
  }
  // Touch everything except ids[2]; ids[2] becomes the LRU page.
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i == 2) continue;
    ASSERT_OK_AND_ASSIGN(PageGuard g, pool.FetchPage(ids[i]));
  }
  // A ninth page must evict exactly ids[2]: everything else still hits.
  ASSERT_OK_AND_ASSIGN(PageGuard g9, pool.NewPage());
  g9.Release();
  pool.ResetStats();
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i == 2) continue;
    ASSERT_OK_AND_ASSIGN(PageGuard g, pool.FetchPage(ids[i]));
    g.Release();
  }
  EXPECT_EQ(pool.stats().disk_reads, 0u);  // none of these were evicted
  pool.ResetStats();
  ASSERT_OK_AND_ASSIGN(PageGuard g2, pool.FetchPage(ids[2]));
  EXPECT_EQ(pool.stats().disk_reads, 1u);  // ids[2] was the victim earlier
}

TEST(BufferPoolLruTest, BothPoliciesSurviveThrashing) {
  for (EvictionPolicy policy : {EvictionPolicy::kClock, EvictionPolicy::kLru}) {
    TempFile file("pool_thrash");
    StorageOptions options = SmallOptions();
    options.buffer_pool_pages = 8;
    options.eviction = policy;
    DiskManager disk;
    ASSERT_OK(disk.Create(file.path(), options));
    BufferPool pool(&disk, options);
    std::vector<PageId> ids;
    for (int i = 0; i < 64; ++i) {
      ASSERT_OK_AND_ASSIGN(PageGuard g, pool.NewPage());
      g.mutable_data()[0] = static_cast<char>(i);
      ids.push_back(g.page_id());
    }
    Random rng(static_cast<uint64_t>(policy) + 7);
    for (int i = 0; i < 500; ++i) {
      const size_t pick = rng.Uniform(ids.size());
      ASSERT_OK_AND_ASSIGN(PageGuard g, pool.FetchPage(ids[pick]));
      ASSERT_EQ(g.data()[0], static_cast<char>(pick));
    }
  }
}

class LargeObjectTest : public BufferPoolTest {
 protected:
  void SetUp() override {
    BufferPoolTest::SetUp();
    store_ = std::make_unique<LargeObjectStore>(pool_.get());
  }
  std::unique_ptr<LargeObjectStore> store_;
};

TEST_F(LargeObjectTest, SmallRoundTrip) {
  ASSERT_OK_AND_ASSIGN(ObjectId oid, store_->Create("hello world"));
  ASSERT_OK_AND_ASSIGN(std::string data, store_->Read(oid));
  EXPECT_EQ(data, "hello world");
  ASSERT_OK_AND_ASSIGN(uint64_t size, store_->Size(oid));
  EXPECT_EQ(size, 11u);
}

TEST_F(LargeObjectTest, EmptyObject) {
  ASSERT_OK_AND_ASSIGN(ObjectId oid, store_->Create(""));
  ASSERT_OK_AND_ASSIGN(std::string data, store_->Read(oid));
  EXPECT_TRUE(data.empty());
  ASSERT_OK_AND_ASSIGN(uint64_t pages, store_->PageFootprint(oid));
  EXPECT_EQ(pages, 1u);  // header only
}

TEST_F(LargeObjectTest, MultiPageRoundTrip) {
  std::string big(options_.page_size * 3 + 123, '\0');
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<char>(i % 251);
  ASSERT_OK_AND_ASSIGN(ObjectId oid, store_->Create(big));
  ASSERT_OK_AND_ASSIGN(std::string data, store_->Read(oid));
  EXPECT_EQ(data, big);
  ASSERT_OK_AND_ASSIGN(uint64_t pages, store_->PageFootprint(oid));
  EXPECT_EQ(pages, 1u + 4u);  // header + 4 data pages
}

TEST_F(LargeObjectTest, ReadRange) {
  std::string big(options_.page_size * 2, '\0');
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<char>(i % 13);
  ASSERT_OK_AND_ASSIGN(ObjectId oid, store_->Create(big));
  // A range straddling the page boundary.
  const uint64_t offset = options_.page_size - 10;
  ASSERT_OK_AND_ASSIGN(std::string range, store_->ReadRange(oid, offset, 20));
  EXPECT_EQ(range, big.substr(offset, 20));
  EXPECT_TRUE(store_->ReadRange(oid, big.size() - 5, 10)
                  .status()
                  .IsOutOfRange());
}

TEST_F(LargeObjectTest, OverwriteChangesSizeAndContent) {
  ASSERT_OK_AND_ASSIGN(ObjectId oid, store_->Create("short"));
  std::string big(options_.page_size + 7, 'Q');
  ASSERT_OK(store_->Overwrite(oid, big));
  ASSERT_OK_AND_ASSIGN(std::string data, store_->Read(oid));
  EXPECT_EQ(data, big);
  ASSERT_OK(store_->Overwrite(oid, "tiny again"));
  ASSERT_OK_AND_ASSIGN(data, store_->Read(oid));
  EXPECT_EQ(data, "tiny again");
}

TEST_F(LargeObjectTest, FreeReturnsPages) {
  const uint64_t before = disk_.page_count();
  ASSERT_OK_AND_ASSIGN(ObjectId oid,
                       store_->Create(std::string(options_.page_size * 2, 'f')));
  ASSERT_OK(store_->Free(oid));
  // Freed pages are reused rather than growing the file.
  ASSERT_OK_AND_ASSIGN(ObjectId oid2,
                       store_->Create(std::string(options_.page_size * 2, 'g')));
  (void)oid2;
  EXPECT_LE(disk_.page_count(), before + 3);
}

TEST_F(LargeObjectTest, ReadOfNonObjectIsCorruption) {
  ASSERT_OK_AND_ASSIGN(PageGuard g, pool_->NewPage());
  const PageId raw = g.page_id();
  g.Release();
  EXPECT_TRUE(store_->Read(raw).status().IsCorruption());
  EXPECT_TRUE(store_->Size(raw).status().IsCorruption());
}

TEST_F(LargeObjectTest, ManyObjectsIndependent) {
  std::vector<ObjectId> oids;
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK_AND_ASSIGN(ObjectId oid,
                         store_->Create("object-" + std::to_string(i)));
    oids.push_back(oid);
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK_AND_ASSIGN(std::string data, store_->Read(oids[i]));
    EXPECT_EQ(data, "object-" + std::to_string(i));
  }
}

class ExtentAllocatorTest : public BufferPoolTest {};

TEST_F(ExtentAllocatorTest, GrowsInWholeExtents) {
  ExtentAllocator extents(pool_.get(), &disk_);
  ASSERT_OK_AND_ASSIGN(PageId root, extents.Create(4));
  (void)root;
  EXPECT_EQ(extents.logical_page_capacity(), 0u);
  ASSERT_OK(extents.EnsureCapacity(1));
  EXPECT_EQ(extents.logical_page_capacity(), 4u);
  ASSERT_OK(extents.EnsureCapacity(5));
  EXPECT_EQ(extents.logical_page_capacity(), 8u);
  EXPECT_EQ(extents.num_extents(), 2u);
}

TEST_F(ExtentAllocatorTest, LogicalToPhysicalContiguousWithinExtent) {
  ExtentAllocator extents(pool_.get(), &disk_);
  ASSERT_OK(extents.Create(4).status());
  ASSERT_OK(extents.EnsureCapacity(8));
  ASSERT_OK_AND_ASSIGN(PageId p0, extents.LogicalToPhysical(0));
  ASSERT_OK_AND_ASSIGN(PageId p3, extents.LogicalToPhysical(3));
  EXPECT_EQ(p3, p0 + 3);  // same extent => physically adjacent
  ASSERT_OK_AND_ASSIGN(PageId p4, extents.LogicalToPhysical(4));
  ASSERT_OK_AND_ASSIGN(PageId p7, extents.LogicalToPhysical(7));
  EXPECT_EQ(p7, p4 + 3);
  EXPECT_TRUE(extents.LogicalToPhysical(8).status().IsOutOfRange());
}

TEST_F(ExtentAllocatorTest, DirectorySurvivesReopen) {
  ExtentAllocator extents(pool_.get(), &disk_);
  ASSERT_OK_AND_ASSIGN(PageId root, extents.Create(4));
  ASSERT_OK(extents.EnsureCapacity(12));
  std::vector<PageId> mapping;
  for (uint64_t i = 0; i < 12; ++i) {
    ASSERT_OK_AND_ASSIGN(PageId p, extents.LogicalToPhysical(i));
    mapping.push_back(p);
  }
  ASSERT_OK(pool_->FlushAndEvictAll());

  ExtentAllocator reopened(pool_.get(), &disk_);
  ASSERT_OK(reopened.Open(root));
  EXPECT_EQ(reopened.pages_per_extent(), 4u);
  EXPECT_EQ(reopened.num_extents(), 3u);
  for (uint64_t i = 0; i < 12; ++i) {
    ASSERT_OK_AND_ASSIGN(PageId p, reopened.LogicalToPhysical(i));
    EXPECT_EQ(p, mapping[i]);
  }
}

TEST(StorageManagerTest, CatalogPersistsAcrossReopen) {
  TempFile file("sm_catalog");
  const StorageOptions options = SmallOptions();
  {
    StorageManager sm;
    ASSERT_OK(sm.Create(file.path(), options));
    ASSERT_OK(sm.SetRoot("alpha", 11));
    ASSERT_OK(sm.SetRoot("beta", 22));
    ASSERT_OK(sm.RemoveRoot("alpha"));
    EXPECT_TRUE(sm.RemoveRoot("alpha").IsNotFound());
    ASSERT_OK(sm.Close());
  }
  StorageManager sm;
  ASSERT_OK(sm.Open(file.path(), options));
  EXPECT_FALSE(sm.HasRoot("alpha"));
  ASSERT_OK_AND_ASSIGN(uint64_t beta, sm.GetRoot("beta"));
  EXPECT_EQ(beta, 22u);
  EXPECT_TRUE(sm.GetRoot("gamma").status().IsNotFound());
}

TEST(StorageManagerTest, ObjectsUsableThroughFacade) {
  TempFile file("sm_objects");
  StorageManager sm;
  ASSERT_OK(sm.Create(file.path(), SmallOptions()));
  ASSERT_OK_AND_ASSIGN(ObjectId oid, sm.objects()->Create("payload"));
  ASSERT_OK(sm.SetRoot("thing", oid));
  ASSERT_OK(sm.Checkpoint());
  ASSERT_OK(sm.FlushAndEvictAll());
  ASSERT_OK_AND_ASSIGN(std::string data, sm.objects()->Read(oid));
  EXPECT_EQ(data, "payload");
  EXPECT_GT(sm.FileSizeBytes(), 0u);
}

TEST(StorageManagerTest, CatalogSurvivesManyEntries) {
  TempFile file("sm_many");
  const StorageOptions options = SmallOptions();
  {
    StorageManager sm;
    ASSERT_OK(sm.Create(file.path(), options));
    for (int i = 0; i < 500; ++i) {
      ASSERT_OK(sm.SetRoot("entry_" + std::to_string(i),
                           static_cast<uint64_t>(i * 3)));
    }
    ASSERT_OK(sm.Close());
  }
  StorageManager sm;
  ASSERT_OK(sm.Open(file.path(), options));
  EXPECT_EQ(sm.catalog().size(), 500u);
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK_AND_ASSIGN(uint64_t v,
                         sm.GetRoot("entry_" + std::to_string(i)));
    EXPECT_EQ(v, static_cast<uint64_t>(i * 3));
  }
}

}  // namespace
}  // namespace paradise
