// Differential fault-testing suite: runs every query engine over a database
// whose disk is wrapped in a FaultInjectingDiskManager, under deterministic
// fault schedules — fail-the-Nth-read, bit-flip a page, torn write, close
// failure — and asserts the storage stack either retries to the exact
// no-fault answer or propagates a descriptive non-OK Status. Never a crash,
// never a silently wrong result.
#include <cstring>

#include <gtest/gtest.h>

#include "query/engine.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "storage/page.h"
#include "storage/storage_manager.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

const EngineKind kAllEngines[] = {EngineKind::kArray, EngineKind::kStarJoin,
                                  EngineKind::kBitmap, EngineKind::kLeftDeep,
                                  EngineKind::kBTreeSelect};

/// Mixed-shape query with both grouping and selections so all five engines
/// (including kBitmap and kBTreeSelect) are applicable.
query::ConsolidationQuery MixedQuery() {
  query::ConsolidationQuery q;
  q.dims.resize(3);
  q.dims[0].group_by_col = 1;
  q.dims[1].selections.push_back(
      query::Selection{1,
                       {query::Literal{gen::AttrValue(1, 1, 0)},
                        query::Literal{gen::AttrValue(1, 1, 2)}}});
  q.dims[2].group_by_col = 2;
  return q;
}

/// A database plus the injector wrapped around its disk.
struct FaultedDb {
  TempFile file{"fault_db"};
  gen::SyntheticDataset data;
  FaultInjectingDiskManager* faults = nullptr;
  std::unique_ptr<Database> db;
};

/// Builds a tiny database with the fault injector installed (quiescent until
/// Arm). `storage_tweak` may adjust StorageOptions (e.g. retry limits).
void BuildFaultedDb(FaultedDb* out,
                    const std::function<void(StorageOptions*)>& storage_tweak =
                        nullptr) {
  const gen::GenConfig config = TinyConfig(80, 3);
  ASSERT_OK_AND_ASSIGN(out->data, gen::Generate(config));
  DatabaseOptions options = SmallDbOptions();
  options.build_btree_join_indexes = true;
  options.storage.read_retry_backoff_micros = 0;  // keep tests fast
  if (storage_tweak) storage_tweak(&options.storage);
  FaultInjectingDiskManager** slot = &out->faults;
  options.storage.wrap_disk = [slot](std::unique_ptr<Disk> inner) {
    auto wrapped =
        std::make_unique<FaultInjectingDiskManager>(std::move(inner));
    *slot = wrapped.get();
    return std::unique_ptr<Disk>(std::move(wrapped));
  };
  ASSERT_OK_AND_ASSIGN(
      out->db, BuildDatabaseFromDataset(out->file.path(), out->data, options));
  ASSERT_NE(out->faults, nullptr);
}

/// BuildFaultedDb + bail out of the calling test on any fatal failure.
#define BUILD_FAULTED_DB(f, ...)            \
  do {                                      \
    BuildFaultedDb(&(f), ##__VA_ARGS__);    \
    ASSERT_NE((f).db, nullptr);             \
  } while (0)

TEST(FaultInjectionTest, TransientReadFaultsRetryToTheCorrectAnswer) {
  FaultedDb f;
  BUILD_FAULTED_DB(f);
  const query::ConsolidationQuery q = MixedQuery();
  const query::GroupedResult expected = BruteForce(f.data, q);
  uint64_t total_injected = 0;
  for (uint64_t nth : {1, 2, 3, 5, 8, 13, 21}) {
    for (EngineKind kind : kAllEngines) {
      FaultInjectionOptions fi;
      fi.fail_nth_read = nth;
      f.faults->Arm(fi);
      ASSERT_OK_AND_ASSIGN(Execution exec,
                           RunQuery(f.db.get(), kind, q, /*cold=*/true));
      EXPECT_TRUE(exec.result.SameAs(expected))
          << "engine " << EngineKindToString(kind) << " diverges with read "
          << nth << " failing";
      total_injected += f.faults->injected_faults();
    }
  }
  // The schedules must actually have fired, and the pool must have retried.
  EXPECT_GT(total_injected, 0u);
  EXPECT_GT(f.db->storage()->pool()->stats().read_retries, 0u);
}

TEST(FaultInjectionTest, ExhaustedRetriesPropagateCleanIOError) {
  FaultedDb f;
  BUILD_FAULTED_DB(f, [](StorageOptions* o) { o->read_retry_limit = 0; });
  const query::ConsolidationQuery q = MixedQuery();
  for (EngineKind kind : kAllEngines) {
    FaultInjectionOptions fi;
    fi.fail_nth_read = 1;
    f.faults->Arm(fi);
    auto r = RunQuery(f.db.get(), kind, q, /*cold=*/true);
    ASSERT_FALSE(r.ok()) << "engine " << EngineKindToString(kind)
                         << " swallowed an unretried read fault";
    const Status st = r.status();
    EXPECT_TRUE(st.IsIOError()) << st.ToString();
    EXPECT_NE(st.ToString().find("injected read fault"), std::string::npos)
        << st.ToString();
    EXPECT_NE(st.ToString().find("engine "), std::string::npos)
        << st.ToString();
  }
  // Disarmed, every engine recovers to the exact answer.
  f.faults->Arm(FaultInjectionOptions{});
  const query::GroupedResult expected = BruteForce(f.data, q);
  for (EngineKind kind : kAllEngines) {
    ASSERT_OK_AND_ASSIGN(Execution exec,
                         RunQuery(f.db.get(), kind, q, /*cold=*/true));
    EXPECT_TRUE(exec.result.SameAs(expected));
  }
}

TEST(FaultInjectionTest, ProbabilisticReadFaultsAreAbsorbedByRetries) {
  FaultedDb f;
  BUILD_FAULTED_DB(f, [](StorageOptions* o) { o->read_retry_limit = 8; });
  const query::ConsolidationQuery q = MixedQuery();
  const query::GroupedResult expected = BruteForce(f.data, q);
  FaultInjectionOptions fi;
  fi.seed = 99;
  fi.read_error_probability = 0.2;
  fi.max_injected_faults = 40;
  f.faults->Arm(fi);
  for (EngineKind kind : kAllEngines) {
    ASSERT_OK_AND_ASSIGN(Execution exec,
                         RunQuery(f.db.get(), kind, q, /*cold=*/true));
    EXPECT_TRUE(exec.result.SameAs(expected))
        << "engine " << EngineKindToString(kind)
        << " diverges under probabilistic read faults";
  }
  EXPECT_GT(f.faults->injected_faults(), 0u);
  EXPECT_GT(f.db->storage()->pool()->stats().read_retries, 0u);
}

/// The ISSUE acceptance sweep: flip one bit of page k on disk; every engine
/// must either return the identical no-fault result (page unused by that
/// plan) or a kCorruption status naming the failing page.
TEST(FaultInjectionTest, BitFlippedPageIsCorrectOrCorruptionNamingPage) {
  FaultedDb f;
  BUILD_FAULTED_DB(f);
  const query::ConsolidationQuery q = MixedQuery();
  const query::GroupedResult expected = BruteForce(f.data, q);
  const uint64_t page_count = f.faults->page_count();
  ASSERT_GT(page_count, 4u);
  uint64_t detections = 0;
  for (PageId id = 1; id < page_count; ++id) {
    constexpr uint64_t kBit = 8 * 1000 + 5;
    ASSERT_OK(f.faults->FlipBitOnDisk(id, kBit));
    for (EngineKind kind : kAllEngines) {
      auto r = RunQuery(f.db.get(), kind, q, /*cold=*/true);
      if (r.ok()) {
        EXPECT_TRUE(r.value().result.SameAs(expected))
            << "engine " << EngineKindToString(kind)
            << " returned a wrong result with page " << id << " corrupted";
      } else {
        const Status st = r.status();
        EXPECT_TRUE(st.IsCorruption())
            << "page " << id << ": " << st.ToString();
        EXPECT_NE(st.ToString().find("page " + std::to_string(id)),
                  std::string::npos)
            << st.ToString();
        ++detections;
      }
    }
    ASSERT_OK(f.faults->FlipBitOnDisk(id, kBit));  // restore
  }
  EXPECT_GT(detections, 0u);
  // All flips restored: everything is correct again.
  for (EngineKind kind : kAllEngines) {
    ASSERT_OK_AND_ASSIGN(Execution exec,
                         RunQuery(f.db.get(), kind, q, /*cold=*/true));
    EXPECT_TRUE(exec.result.SameAs(expected));
  }
}

TEST(FaultInjectionTest, ScheduledBitFlipSurfacesAsCorruption) {
  FaultedDb f;
  BUILD_FAULTED_DB(f);
  const query::ConsolidationQuery q = MixedQuery();
  FaultInjectionOptions fi;
  fi.seed = 4;
  // The tiny database caches dimensions and indexes in memory, so a cold
  // star join performs very few disk reads; trigger on the first one.
  fi.flip_bit_on_nth_read = 1;
  f.faults->Arm(fi);
  auto r = RunQuery(f.db.get(), EngineKind::kStarJoin, q, /*cold=*/true);
  ASSERT_FALSE(r.ok());
  const Status st = r.status();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("page "), std::string::npos) << st.ToString();
}

TEST(FaultInjectionTest, WriteFaultDuringLoadFailsCleanly) {
  TempFile file("fault_load");
  const gen::GenConfig config = TinyConfig(80, 3);
  gen::SyntheticDataset data;
  ASSERT_OK_AND_ASSIGN(data, gen::Generate(config));
  DatabaseOptions options = SmallDbOptions();
  options.build_btree_join_indexes = true;
  options.storage.wrap_disk = [](std::unique_ptr<Disk> inner) {
    FaultInjectionOptions fi;
    fi.fail_nth_write = 10;
    return std::unique_ptr<Disk>(std::make_unique<FaultInjectingDiskManager>(
        std::move(inner), fi));
  };
  auto r = BuildDatabaseFromDataset(file.path(), data, options);
  ASSERT_FALSE(r.ok());
  const Status st = r.status();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_NE(st.ToString().find("injected write fault"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.ToString().find("loading database"), std::string::npos)
      << st.ToString();
}

TEST(FaultInjectionTest, TornWriteIsDetectedOnNextRead) {
  TempFile file("fault_torn");
  StorageOptions options;
  options.page_size = 4096;
  options.buffer_pool_pages = 16;
  FaultInjectingDiskManager* faults = nullptr;
  options.wrap_disk = [&faults](std::unique_ptr<Disk> inner) {
    auto wrapped =
        std::make_unique<FaultInjectingDiskManager>(std::move(inner));
    faults = wrapped.get();
    return std::unique_ptr<Disk>(std::move(wrapped));
  };
  PageId id = kInvalidPageId;
  {
    StorageManager sm;
    ASSERT_OK(sm.Create(file.path(), options));
    ASSERT_NE(faults, nullptr);
    ASSERT_OK_AND_ASSIGN(PageGuard guard, sm.pool()->NewPage());
    id = guard.page_id();
    std::memset(guard.mutable_data(), 'z', options.page_size);
    guard.Release();
    // The flush of the dirty page during Close is torn in half.
    FaultInjectionOptions fi;
    fi.torn_write_on_nth_write = 1;
    faults->Arm(fi);
    ASSERT_OK(sm.Close());
    EXPECT_EQ(faults->injected_faults(), 1u);
  }
  DiskManager disk;
  StorageOptions plain;
  plain.page_size = options.page_size;
  plain.buffer_pool_pages = 16;
  ASSERT_OK(disk.Open(file.path(), plain));
  std::vector<char> buf(options.page_size);
  const Status st = disk.ReadPage(id, buf.data());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("page " + std::to_string(id)),
            std::string::npos)
      << st.ToString();
}

/// Regression for the hardened Close() path: a failure while flushing at
/// close must propagate out of StorageManager::Close instead of being
/// ignored, and the manager must still end up closed.
TEST(FaultInjectionTest, CloseFailurePropagates) {
  TempFile file("fault_close");
  StorageOptions options;
  options.page_size = 4096;
  options.buffer_pool_pages = 16;
  FaultInjectingDiskManager* faults = nullptr;
  options.wrap_disk = [&faults](std::unique_ptr<Disk> inner) {
    auto wrapped =
        std::make_unique<FaultInjectingDiskManager>(std::move(inner));
    faults = wrapped.get();
    return std::unique_ptr<Disk>(std::move(wrapped));
  };
  StorageManager sm;
  ASSERT_OK(sm.Create(file.path(), options));
  ASSERT_OK(sm.SetRoot("tbl", 7));
  FaultInjectionOptions fi;
  fi.fail_on_close = true;
  faults->Arm(fi);
  const Status st = sm.Close();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_NE(st.ToString().find("injected write failure"), std::string::npos)
      << st.ToString();
  EXPECT_FALSE(sm.is_open());
}

TEST(FaultInjectionTest, FaultsRespectPageRangeFilter) {
  FaultedDb f;
  BUILD_FAULTED_DB(f);
  const query::ConsolidationQuery q = MixedQuery();
  const query::GroupedResult expected = BruteForce(f.data, q);
  // Probabilistic faults restricted to an empty range never fire.
  FaultInjectionOptions fi;
  fi.read_error_probability = 1.0;
  fi.min_page = f.faults->page_count() + 100;
  f.faults->Arm(fi);
  ASSERT_OK_AND_ASSIGN(
      Execution exec,
      RunQuery(f.db.get(), EngineKind::kArray, q, /*cold=*/true));
  EXPECT_TRUE(exec.result.SameAs(expected));
  EXPECT_EQ(f.faults->injected_faults(), 0u);
  EXPECT_GT(f.faults->reads_seen(), 0u);
}

}  // namespace
}  // namespace paradise
