// Consolidation kernel tests (core/kernels/): magic-reciprocal division
// exactness, known-answer tests on crafted chunks (empty, single-cell,
// full-dense, max-offset-width) comparing the scalar and dispatched decode
// paths cell-for-cell, range/morsel equivalence on dense bitmaps, and an
// engine-level fuzz asserting parallel-morsel results stay bit-identical to
// serial at thread counts 1-16 and forced morsel sizes down to 1 cell.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "array/chunk.h"
#include "common/metrics.h"
#include "core/consolidate.h"
#include "core/consolidate_select.h"
#include "core/kernels/consolidate_kernel.h"
#include "core/parallel.h"
#include "query/engine.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

// ---------------------------------------------------------------------------
// Magic-reciprocal division: exact floor division for every n < 2^32.

TEST(KernelMagic, MatchesHardwareDivision) {
  const std::vector<uint32_t> divisors = {
      2,     3,     4,     5,    6,    7,    8,    9,     10,    11,  12,
      13,    15,    16,    17,   20,   31,   32,   33,    60,    61,  64,
      97,    100,   255,   256,  257,  1000, 1023, 1024,  4095,  4096,
      65520, 65521, 65535, 65536, 1u << 20, (1u << 31) - 1, 1u << 31,
      0xFFFFFFFEu, 0xFFFFFFFFu};
  std::mt19937 rng(20260808);
  for (const uint32_t d : divisors) {
    const uint64_t magic = kernels::MagicReciprocal(d);
    std::vector<uint32_t> ns = {0,           1,          d - 1,
                                d,           d + 1,      2 * d - 1,
                                0xFFFFFFFFu, 0xFFFFFFFEu};
    for (int i = 0; i < 256; ++i) ns.push_back(rng());
    for (const uint32_t n : ns) {
      ASSERT_EQ(kernels::MagicDivide(n, magic), n / d)
          << "n=" << n << " d=" << d;
    }
  }
}

// ---------------------------------------------------------------------------
// Direct kernel KATs against a per-cell div/mod reference.

// Restores CPUID-based dispatch when a test that forces an ISA exits.
struct IsaGuard {
  ~IsaGuard() { kernels::ForceIsa(std::nullopt); }
};

// The grouped-dimension description BuildRaw takes: dimension index (into
// row-major chunk_dims) -> contribution table of size chunk_dims[d].
using Grouped = std::vector<std::pair<size_t, std::vector<uint64_t>>>;

// Per-cell reference: flat index via hardware div/mod, sequential Add in
// offset order — the exact loop the kernels replaced.
std::vector<query::AggState> ReferenceAggregate(
    const ChunkView& view, const std::vector<uint32_t>& chunk_dims,
    const Grouped& grouped, size_t flat_size) {
  std::vector<uint64_t> stride(chunk_dims.size(), 1);
  for (size_t d = chunk_dims.size(); d-- > 1;) {
    stride[d - 1] = stride[d] * chunk_dims[d];
  }
  std::vector<query::AggState> flat(flat_size);
  view.ForEach([&](uint32_t off, int64_t value) {
    uint64_t idx = 0;
    for (const auto& [d, contribution] : grouped) {
      idx += contribution[(off / stride[d]) % chunk_dims[d]];
    }
    flat[idx].Add(value);
  });
  return flat;
}

// Runs AggregateView under `isa` and returns the flat result array.
std::vector<query::AggState> KernelAggregate(const ChunkView& view,
                                             const std::vector<uint32_t>& dims,
                                             const Grouped& grouped,
                                             size_t flat_size,
                                             kernels::Isa isa) {
  IsaGuard guard;
  kernels::ForceIsa(isa);
  kernels::KernelTables tables;
  tables.BuildRaw(dims, grouped);
  std::vector<query::AggState> flat(flat_size);
  kernels::AggregateView(view, tables, flat.data());
  return flat;
}

// Asserts scalar, dispatched, and reference agree cell-for-cell on `view`.
void ExpectKernelMatchesReference(const ChunkView& view,
                                  const std::vector<uint32_t>& dims,
                                  const Grouped& grouped, size_t flat_size) {
  const std::vector<query::AggState> want =
      ReferenceAggregate(view, dims, grouped, flat_size);
  kernels::Isa detected;
  {
    IsaGuard guard;
    kernels::ForceIsa(std::nullopt);
    detected = kernels::ActiveIsa();
  }
  for (const kernels::Isa isa : {kernels::Isa::kScalar, detected}) {
    const std::vector<query::AggState> got =
        KernelAggregate(view, dims, grouped, flat_size, isa);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i])
          << "flat index " << i << " isa " << kernels::IsaName(isa);
    }
  }
}

// A chunk with `entries` valid cells serialized in `format`, with the blob
// kept alive alongside its view.
struct TestChunk {
  std::string blob;
  std::optional<ChunkView> view;

  TestChunk(uint32_t capacity,
            const std::vector<std::pair<uint32_t, int64_t>>& entries,
            ChunkFormat format) {
    Chunk c(capacity);
    for (const auto& [off, value] : entries) EXPECT_OK(c.Put(off, value));
    blob = c.Serialize(format);
    auto made = ChunkView::Make(blob);
    EXPECT_OK(made.status());
    if (made.ok()) view = *made;
  }
};

// 3x4x5 chunk grouped on dims 0 and 2 — the TinyConfig chunk shape.
const std::vector<uint32_t> kDims345 = {3, 4, 5};
Grouped Grouped345() {
  return {{0, {0, 7, 14}}, {2, {0, 1, 2, 3, 4, 5, 6}}};
}
constexpr size_t kFlat345 = 21;

TEST(KernelKat, EmptyChunkBothFormats) {
  for (const ChunkFormat f : {ChunkFormat::kOffsetCompressed,
                              ChunkFormat::kDense}) {
    TestChunk c(60, {}, f);
    ExpectKernelMatchesReference(*c.view, kDims345, Grouped345(), kFlat345);
    // Nothing aggregated: AggregateView reports zero cells.
    kernels::KernelTables tables;
    tables.BuildRaw(kDims345, Grouped345());
    std::vector<query::AggState> flat(kFlat345);
    EXPECT_EQ(kernels::AggregateView(*c.view, tables, flat.data()), 0u);
    for (const query::AggState& s : flat) EXPECT_EQ(s.count, 0);
  }
}

TEST(KernelKat, SingleCellBothFormats) {
  for (const ChunkFormat f : {ChunkFormat::kOffsetCompressed,
                              ChunkFormat::kDense}) {
    for (const uint32_t off : {0u, 1u, 31u, 59u}) {
      TestChunk c(60, {{off, -1234567890123LL}}, f);
      ExpectKernelMatchesReference(*c.view, kDims345, Grouped345(), kFlat345);
    }
  }
}

TEST(KernelKat, FullDenseChunk) {
  std::vector<std::pair<uint32_t, int64_t>> entries;
  for (uint32_t off = 0; off < 60; ++off) {
    entries.push_back({off, static_cast<int64_t>(off) * 1000003 - 30000});
  }
  TestChunk c(60, entries, ChunkFormat::kDense);
  ASSERT_FALSE(c.view->sparse());
  ExpectKernelMatchesReference(*c.view, kDims345, Grouped345(), kFlat345);
}

TEST(KernelKat, SparseHoleyChunk) {
  std::mt19937 rng(99);
  std::vector<std::pair<uint32_t, int64_t>> entries;
  for (uint32_t off = 0; off < 60; ++off) {
    if (rng() % 3 == 0) {
      entries.push_back({off, static_cast<int64_t>(rng()) - (1LL << 31)});
    }
  }
  TestChunk c(60, entries, ChunkFormat::kOffsetCompressed);
  ASSERT_TRUE(c.view->sparse());
  ExpectKernelMatchesReference(*c.view, kDims345, Grouped345(), kFlat345);
}

TEST(KernelKat, MaxOffsetWidthChunk) {
  // Offsets spanning nearly the full uint32 range: a 65536 x 65521 chunk
  // whose capacity (4 294 639 616) sits just under 2^32. Exercises the
  // magic-division error bound where n*e/d is largest, and the 64-bit loop
  // cursor in the dense/bitmap path cannot be hit (sparse only: a dense
  // blob this size would be 34 GB).
  const std::vector<uint32_t> dims = {65536, 65521};
  const uint32_t capacity = 65536u * 65521u;  // < 2^32
  std::vector<uint64_t> contrib0(65536), contrib1(65521);
  for (size_t i = 0; i < contrib0.size(); ++i) contrib0[i] = (i % 7) * 5;
  for (size_t i = 0; i < contrib1.size(); ++i) contrib1[i] = i % 5;
  const Grouped grouped = {{0, contrib0}, {1, contrib1}};

  std::vector<std::pair<uint32_t, int64_t>> entries;
  std::mt19937_64 rng(4242);
  for (const uint32_t off :
       {0u, 1u, 65520u, 65521u, 65522u, capacity / 2, capacity - 65521,
        capacity - 2, capacity - 1}) {
    entries.push_back({off, static_cast<int64_t>(rng())});
  }
  for (int i = 0; i < 200; ++i) {
    entries.push_back({static_cast<uint32_t>(rng() % capacity),
                       static_cast<int64_t>(rng())});
  }
  TestChunk c(capacity, entries, ChunkFormat::kOffsetCompressed);
  ASSERT_TRUE(c.view->sparse());
  ExpectKernelMatchesReference(*c.view, dims, grouped, 35);
}

TEST(KernelKat, DecodeBatchScalarVsDispatchedCellForCell) {
  // Decode a batch of raw offsets under both ISAs and compare index-for-
  // index — tighter than comparing aggregated results.
  const std::vector<uint32_t> dims = {7, 11, 13};
  Grouped grouped;
  grouped.push_back({0, {}});
  grouped.push_back({1, {}});
  grouped.push_back({2, {}});
  for (size_t d = 0; d < 3; ++d) {
    grouped[d].second.resize(dims[d]);
    for (size_t i = 0; i < dims[d]; ++i) {
      grouped[d].second[i] = i * (d + 1) * 1000;
    }
  }
  kernels::KernelTables tables;
  tables.BuildRaw(dims, grouped);

  std::mt19937 rng(7);
  std::vector<uint32_t> offsets(1003);  // odd length: exercises vector tails
  const uint32_t capacity = 7 * 11 * 13;
  for (auto& off : offsets) off = rng() % capacity;

  std::vector<uint64_t> scalar_idx(offsets.size()), active_idx(offsets.size());
  kernels::DecodeBatchScalar(offsets.data(), offsets.size(), tables,
                             scalar_idx.data());
  kernels::ActiveDecodeBatch()(offsets.data(), offsets.size(), tables,
                               active_idx.data());
  EXPECT_EQ(scalar_idx, active_idx);

  // And the reference decode agrees.
  for (size_t i = 0; i < offsets.size(); ++i) {
    uint64_t want = 0;
    want += grouped[0].second[(offsets[i] / (11 * 13)) % 7];
    want += grouped[1].second[(offsets[i] / 13) % 11];
    want += grouped[2].second[offsets[i] % 13];
    ASSERT_EQ(scalar_idx[i], want) << "offset " << offsets[i];
  }
}

TEST(KernelKat, FullCollapseAndUngroupedDims) {
  // No grouped dimensions at all: every cell lands in flat[0].
  std::vector<std::pair<uint32_t, int64_t>> entries;
  for (uint32_t off = 0; off < 60; off += 7) entries.push_back({off, 1});
  TestChunk c(60, entries, ChunkFormat::kOffsetCompressed);
  ExpectKernelMatchesReference(*c.view, kDims345, {}, 1);
  // Extent-1 grouped dimension folds into flat_base.
  const std::vector<uint32_t> dims = {1, 60};
  const Grouped grouped = {{0, {3}}, {1, std::vector<uint64_t>(60, 0)}};
  ExpectKernelMatchesReference(*c.view, dims, grouped, 4);
}

// ---------------------------------------------------------------------------
// Range splitting: any partition of the position domain aggregates exactly
// like the whole chunk — the invariant morsel scheduling rests on.

void ExpectRangePartitionMatchesWhole(const ChunkView& view,
                                      const std::vector<uint32_t>& dims,
                                      const Grouped& grouped, size_t flat_size,
                                      uint32_t piece) {
  kernels::KernelTables tables;
  tables.BuildRaw(dims, grouped);
  std::vector<query::AggState> whole(flat_size);
  const uint64_t whole_cells =
      kernels::AggregateView(view, tables, whole.data());

  std::vector<query::AggState> pieces(flat_size);
  uint64_t piece_cells = 0;
  const uint32_t positions = kernels::PositionCount(view);
  for (uint32_t begin = 0; begin < positions;) {
    const uint32_t end = static_cast<uint32_t>(
        std::min<uint64_t>(static_cast<uint64_t>(begin) + piece, positions));
    piece_cells +=
        kernels::AggregateRange(view, begin, end, tables, pieces.data());
    begin = end;
  }
  EXPECT_EQ(piece_cells, whole_cells) << "piece=" << piece;
  for (size_t i = 0; i < flat_size; ++i) {
    ASSERT_EQ(pieces[i], whole[i]) << "flat " << i << " piece " << piece;
  }
}

TEST(KernelMorsel, DenseRangesCrossBitmapWords) {
  // Capacity 130 crosses two 64-bit bitmap words; holes stress the
  // begin/end masking of partially-covered words.
  const std::vector<uint32_t> dims = {13, 10};
  std::mt19937 rng(5);
  std::vector<std::pair<uint32_t, int64_t>> entries;
  for (uint32_t off = 0; off < 130; ++off) {
    if (off % 3 != 1 && rng() % 4 != 0) {
      entries.push_back({off, static_cast<int64_t>(rng()) - 12345});
    }
  }
  Grouped grouped = {{0, {0, 3, 6, 9, 12, 15, 18, 21, 24, 27, 30, 33, 36}},
                     {1, {0, 0, 1, 1, 2, 2, 0, 1, 2, 0}}};
  TestChunk c(130, entries, ChunkFormat::kDense);
  ASSERT_FALSE(c.view->sparse());
  for (const uint32_t piece : {1u, 2u, 3u, 63u, 64u, 65u, 129u, 130u, 4096u}) {
    ExpectRangePartitionMatchesWhole(*c.view, dims, grouped, 39, piece);
  }
}

TEST(KernelMorsel, SparseRangesSplitEntries) {
  std::mt19937 rng(6);
  std::vector<std::pair<uint32_t, int64_t>> entries;
  for (uint32_t off = 0; off < 60; ++off) {
    if (rng() % 2 == 0) entries.push_back({off, static_cast<int64_t>(rng())});
  }
  TestChunk c(60, entries, ChunkFormat::kOffsetCompressed);
  ASSERT_TRUE(c.view->sparse());
  for (const uint32_t piece : {1u, 2u, 7u, 59u, 512u}) {
    ExpectRangePartitionMatchesWhole(*c.view, kDims345, Grouped345(), kFlat345,
                                     piece);
  }
}

// ---------------------------------------------------------------------------
// Engine-level fuzz: morsel scheduling and ISA dispatch never change the
// GroupedResult bit pattern.

class KernelMorselFuzz : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("kernel_fuzz");
    ASSERT_OK_AND_ASSIGN(data_, gen::Generate(TinyConfig(400, 61)));
    ASSERT_OK_AND_ASSIGN(
        db_, BuildDatabaseFromDataset(file_->path(), data_, SmallDbOptions()));
  }

  std::unique_ptr<TempFile> file_;
  gen::SyntheticDataset data_;
  std::unique_ptr<Database> db_;
};

TEST_P(KernelMorselFuzz, MorselSizesMatchSerial) {
  const size_t threads = GetParam();
  std::vector<query::ConsolidationQuery> queries;
  queries.push_back(gen::Query1(3));
  {
    query::ConsolidationQuery q;
    q.dims.resize(3);
    q.dims[1].group_by_col = 2;
    queries.push_back(q);
  }
  {
    query::ConsolidationQuery q;
    q.dims.resize(3);  // full collapse
    queries.push_back(q);
  }
  for (const query::ConsolidationQuery& q : queries) {
    ASSERT_OK_AND_ASSIGN(query::GroupedResult serial,
                         ArrayConsolidate(*db_->olap(), q));
    EXPECT_TRUE(serial.SameAs(BruteForce(data_, q)));
    for (const uint32_t min_cells : {1u, 3u, 64u, UINT32_MAX}) {
      MorselOptions mo;
      mo.min_cells = min_cells;
      ParallelConsolidateStats stats;
      ASSERT_OK_AND_ASSIGN(
          query::GroupedResult parallel,
          ParallelArrayConsolidate(*db_->olap(), q, threads, nullptr, &stats,
                                   nullptr, mo));
      EXPECT_TRUE(parallel.SameAs(serial))
          << "threads=" << threads << " min_cells=" << min_cells;
      // Every chunk hands out exactly 1 + splits-from-it morsels.
      EXPECT_EQ(stats.morsels, stats.chunks_read + stats.morsel_splits);
      if (min_cells == UINT32_MAX) {
        EXPECT_EQ(stats.morsel_splits, 0u);  // whole-chunk cursor mode
      }
      if (min_cells == 1 && stats.chunks_read > 0) {
        EXPECT_GT(stats.morsel_splits, 0u);  // 60-cell chunks must split
      }
    }
  }
}

TEST_P(KernelMorselFuzz, SelectionMorselSizesMatchSerial) {
  const size_t threads = GetParam();
  std::vector<query::ConsolidationQuery> queries;
  queries.push_back(gen::Query2(3));
  queries.push_back(gen::Query3(3, 2));
  {
    query::ConsolidationQuery q = gen::Query1(3);
    query::Selection s;
    s.attr_col = 1;
    s.values = {query::Literal{gen::AttrValue(0, 1, 0)},
                query::Literal{gen::AttrValue(0, 1, 1)}};
    q.dims[0].selections.push_back(std::move(s));
    queries.push_back(std::move(q));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    const query::ConsolidationQuery& q = queries[i];
    ArraySelectStats serial_stats;
    ASSERT_OK_AND_ASSIGN(
        query::GroupedResult serial,
        ArrayConsolidateWithSelection(*db_->olap(), q, nullptr,
                                      &serial_stats));
    for (const uint32_t min_cells : {1u, 3u, 64u, UINT32_MAX}) {
      MorselOptions mo;
      mo.min_cells = min_cells;
      ArraySelectStats sel_stats;
      ParallelConsolidateStats stats;
      ASSERT_OK_AND_ASSIGN(
          query::GroupedResult parallel,
          ParallelArrayConsolidateWithSelection(*db_->olap(), q, threads,
                                                nullptr, &sel_stats, &stats,
                                                {}, mo));
      EXPECT_TRUE(parallel.SameAs(serial))
          << "query " << i << " threads=" << threads
          << " min_cells=" << min_cells;
      // Chunk reads and matched cells are split-invariant (candidates are
      // not: sparse early-outs apply per piece).
      EXPECT_EQ(sel_stats.chunks_read, serial_stats.chunks_read);
      EXPECT_EQ(sel_stats.hits, serial_stats.hits);
      EXPECT_EQ(stats.morsels, stats.chunks_read + stats.morsel_splits);
    }
  }
}

TEST_P(KernelMorselFuzz, ForcedScalarMatchesDispatched) {
  const size_t threads = GetParam();
  IsaGuard guard;
  MorselOptions mo;
  mo.min_cells = 5;
  for (const query::ConsolidationQuery& q : {gen::Query1(3), gen::Query2(3)}) {
    std::vector<query::GroupedResult> results;
    for (const bool force_scalar : {true, false}) {
      if (force_scalar) {
        kernels::ForceIsa(kernels::Isa::kScalar);
      } else {
        kernels::ForceIsa(std::nullopt);
      }
      if (q.HasSelection()) {
        ASSERT_OK_AND_ASSIGN(
            query::GroupedResult r,
            ParallelArrayConsolidateWithSelection(*db_->olap(), q, threads,
                                                  nullptr, nullptr, nullptr,
                                                  {}, mo));
        results.push_back(std::move(r));
      } else {
        ASSERT_OK_AND_ASSIGN(query::GroupedResult r,
                             ParallelArrayConsolidate(*db_->olap(), q, threads,
                                                      nullptr, nullptr,
                                                      nullptr, mo));
        results.push_back(std::move(r));
      }
    }
    EXPECT_TRUE(results[0].SameAs(results[1])) << "threads=" << threads;
  }
}

TEST_P(KernelMorselFuzz, MorselCancellationStopsQuery) {
  const size_t threads = GetParam();
  CancellationToken token;
  token.RequestCancel();
  MorselOptions mo;
  mo.min_cells = 1;
  EXPECT_TRUE(ParallelArrayConsolidate(*db_->olap(), gen::Query1(3), threads,
                                       nullptr, nullptr, &token, mo)
                  .status()
                  .IsCancelled());
  ArraySelectOptions sel_options;
  sel_options.cancel = &token;
  EXPECT_TRUE(ParallelArrayConsolidateWithSelection(*db_->olap(),
                                                    gen::Query2(3), threads,
                                                    nullptr, nullptr, nullptr,
                                                    sel_options, mo)
                  .status()
                  .IsCancelled());
}

INSTANTIATE_TEST_SUITE_P(Threads, KernelMorselFuzz,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

// ---------------------------------------------------------------------------
// Observability: kernel_isa in ExecutionStats, dispatch/steal counters in
// the metrics registry.

TEST(KernelDispatchStats, RunQueryReportsIsaAndCounters) {
  TempFile file("kernel_metrics");
  DatabaseOptions options = SmallDbOptions();
  options.storage.metrics_enabled = true;
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(300, 17)));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       BuildDatabaseFromDataset(file.path(), data, options));

  const std::string isa_name(kernels::IsaName(kernels::ActiveIsa()));
  MetricsRegistry& reg = MetricsRegistry::Default();
  const uint64_t dispatch_before =
      reg.GetCounter("kernel.dispatch." + isa_name)->value();
  const uint64_t splits_before = reg.GetCounter("morsel.splits")->value();

  ASSERT_OK_AND_ASSIGN(Execution serial,
                       RunQuery(db.get(), EngineKind::kArray, gen::Query1(3)));
  EXPECT_EQ(serial.stats.kernel_isa, isa_name);
  EXPECT_NE(serial.stats.ToJson().find("\"kernel_isa\":\"" + isa_name + "\""),
            std::string::npos);
  EXPECT_EQ(reg.GetCounter("kernel.dispatch." + isa_name)->value(),
            dispatch_before + 1);

  // A non-array engine never runs the kernels.
  ASSERT_OK_AND_ASSIGN(
      Execution star, RunQuery(db.get(), EngineKind::kStarJoin, gen::Query1(3)));
  EXPECT_EQ(star.stats.kernel_isa, "none");

  // Parallel run with 1-cell morsels: splits must reach the registry.
  ParallelConsolidateStats pstats;
  MorselOptions mo;
  mo.min_cells = 1;
  ASSERT_OK_AND_ASSIGN(query::GroupedResult parallel,
                       ParallelArrayConsolidate(*db->olap(), gen::Query1(3), 2,
                                                nullptr, &pstats, nullptr, mo));
  EXPECT_GT(pstats.morsel_splits, 0u);
  EXPECT_EQ(reg.GetCounter("morsel.splits")->value(),
            splits_before + pstats.morsel_splits);
  EXPECT_TRUE(parallel.SameAs(serial.result));
}

TEST(KernelDispatchStats, ForceIsaRoundTrips) {
  IsaGuard guard;
  kernels::ForceIsa(kernels::Isa::kScalar);
  EXPECT_EQ(kernels::ActiveIsa(), kernels::Isa::kScalar);
  EXPECT_EQ(kernels::IsaName(kernels::Isa::kScalar), "scalar");
  EXPECT_EQ(kernels::IsaName(kernels::Isa::kAvx2), "avx2");
  kernels::ForceIsa(std::nullopt);
  // Detection is environment-dependent; just require a stable answer.
  EXPECT_EQ(kernels::ActiveIsa(), kernels::ActiveIsa());
}

}  // namespace
}  // namespace paradise
