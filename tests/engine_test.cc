// Cross-engine property tests: the OLAP Array algorithms, the star-join
// consolidation, the bitmap+fact-file plan and the left-deep baseline must
// all produce identical GroupedResults — and match the brute-force reference
// — across randomized cubes, densities and query shapes.
#include <gtest/gtest.h>

#include "query/engine.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

struct EngineCase {
  uint64_t seed;
  uint64_t valid_cells;
  int query_kind;  // 0 = Query1, 1 = Query2, 2 = Query3(2 of 3), 3 = custom
};

std::string CaseName(const ::testing::TestParamInfo<EngineCase>& info) {
  return "seed" + std::to_string(info.param.seed) + "_cells" +
         std::to_string(info.param.valid_cells) + "_q" +
         std::to_string(info.param.query_kind);
}

query::ConsolidationQuery MakeQuery(int kind) {
  switch (kind) {
    case 0:
      return gen::Query1(3);
    case 1:
      return gen::Query2(3);
    case 2:
      return gen::Query3(3, 2);
    default: {
      // Mixed shape: group dim0 at level 2, collapse dim1 with a selection,
      // group dim2 at level 1 with a two-value selection.
      query::ConsolidationQuery q;
      q.dims.resize(3);
      q.dims[0].group_by_col = 2;
      q.dims[1].selections.push_back(
          query::Selection{1, {query::Literal{gen::AttrValue(1, 1, 1)}}});
      q.dims[2].group_by_col = 1;
      q.dims[2].selections.push_back(query::Selection{
          2,
          {query::Literal{gen::AttrValue(2, 2, 0)},
           query::Literal{gen::AttrValue(2, 2, 1)}}});
      return q;
    }
  }
}

class EngineAgreementTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineAgreementTest, AllEnginesMatchBruteForce) {
  const EngineCase& tc = GetParam();
  TempFile file("engine_case");
  gen::GenConfig config = TinyConfig(tc.valid_cells, tc.seed);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));

  const query::ConsolidationQuery q = MakeQuery(tc.query_kind);
  const query::GroupedResult expected = BruteForce(data, q);

  std::vector<EngineKind> engines = {EngineKind::kArray, EngineKind::kStarJoin,
                                     EngineKind::kLeftDeep};
  if (q.HasSelection()) engines.push_back(EngineKind::kBitmap);

  for (EngineKind kind : engines) {
    ASSERT_OK_AND_ASSIGN(Execution exec, RunQuery(db.get(), kind, q));
    EXPECT_TRUE(exec.result.SameAs(expected))
        << EngineKindToString(kind) << " diverges:\ngot:\n"
        << exec.result.ToString(q.agg) << "expected:\n"
        << expected.ToString(q.agg);
    EXPECT_GE(exec.stats.seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineAgreementTest,
    ::testing::Values(EngineCase{1, 30, 0}, EngineCase{2, 30, 1},
                      EngineCase{3, 30, 2}, EngineCase{4, 30, 3},
                      EngineCase{5, 200, 0}, EngineCase{6, 200, 1},
                      EngineCase{7, 200, 2}, EngineCase{8, 200, 3},
                      EngineCase{9, 480, 0}, EngineCase{10, 480, 1},
                      EngineCase{11, 480, 2}, EngineCase{12, 480, 3},
                      // Full cube (100 % density) and near-empty cube.
                      EngineCase{13, 480, 1}, EngineCase{14, 1, 0},
                      EngineCase{15, 1, 1}),
    CaseName);

TEST(EngineTest, BitmapRequiresSelection) {
  TempFile file("engine_bitmapsel");
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromConfig(file.path(), TinyConfig(), SmallDbOptions()));
  EXPECT_TRUE(RunQuery(db.get(), EngineKind::kBitmap, gen::Query1(3))
                  .status()
                  .IsInvalidArgument());
}

TEST(EngineTest, ColdRunsDoDiskReads) {
  TempFile file("engine_cold");
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromConfig(file.path(), TinyConfig(400), SmallDbOptions()));
  ASSERT_OK_AND_ASSIGN(
      Execution cold,
      RunQuery(db.get(), EngineKind::kArray, gen::Query1(3), /*cold=*/true));
  EXPECT_GT(cold.stats.io.disk_reads, 0u);
  ASSERT_OK_AND_ASSIGN(
      Execution warm,
      RunQuery(db.get(), EngineKind::kArray, gen::Query1(3), /*cold=*/false));
  EXPECT_EQ(warm.stats.io.disk_reads, 0u);  // everything still buffered
  EXPECT_TRUE(warm.result.SameAs(cold.result));
}

TEST(EngineTest, PhaseTimersPopulated) {
  TempFile file("engine_phases");
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromConfig(file.path(), TinyConfig(300), SmallDbOptions()));
  ASSERT_OK_AND_ASSIGN(Execution array,
                       RunQuery(db.get(), EngineKind::kArray, gen::Query1(3)));
  EXPECT_TRUE(array.stats.phases.phases().contains("scan+aggregate"));
  ASSERT_OK_AND_ASSIGN(
      Execution star,
      RunQuery(db.get(), EngineKind::kStarJoin, gen::Query1(3)));
  EXPECT_TRUE(star.stats.phases.phases().contains("build"));
  EXPECT_TRUE(star.stats.phases.phases().contains("scan+aggregate"));
  ASSERT_OK_AND_ASSIGN(
      Execution bitmap,
      RunQuery(db.get(), EngineKind::kBitmap, gen::Query2(3)));
  EXPECT_TRUE(bitmap.stats.phases.phases().contains("bitmaps"));
  EXPECT_TRUE(bitmap.stats.phases.phases().contains("fetch+aggregate"));
}

TEST(EngineTest, BitmapAuxCountsQualifyingTuples) {
  TempFile file("engine_bits");
  gen::GenConfig config = TinyConfig(480, 21);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
  const query::ConsolidationQuery q = gen::Query2(3);
  ASSERT_OK_AND_ASSIGN(Execution exec,
                       RunQuery(db.get(), EngineKind::kBitmap, q));
  uint64_t qualifying = 0;
  for (const auto& row : BruteForce(data, q).rows()) {
    qualifying += row.agg.count;
  }
  EXPECT_EQ(exec.stats.aux, qualifying);
}

TEST(EngineTest, LeftDeepMaterializesIntermediates) {
  TempFile file("engine_leftdeep");
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromConfig(file.path(), TinyConfig(300), SmallDbOptions()));
  ASSERT_OK_AND_ASSIGN(
      Execution exec,
      RunQuery(db.get(), EngineKind::kLeftDeep, gen::Query1(3)));
  // Stage 0 materializes all 300 facts, then one intermediate per joined
  // dimension (no filtering in Query 1).
  EXPECT_EQ(exec.stats.aux, 300u * 4);
}

TEST(EngineTest, EngineKindNames) {
  EXPECT_EQ(EngineKindToString(EngineKind::kArray), "array");
  EXPECT_EQ(EngineKindToString(EngineKind::kStarJoin), "starjoin");
  EXPECT_EQ(EngineKindToString(EngineKind::kBitmap), "bitmap");
  EXPECT_EQ(EngineKindToString(EngineKind::kLeftDeep), "leftdeep");
}

TEST(EngineTest, AggFuncSweepAgreesAcrossEngines) {
  TempFile file("engine_aggfunc");
  gen::GenConfig config = TinyConfig(350, 31);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
  for (query::AggFunc agg :
       {query::AggFunc::kSum, query::AggFunc::kCount, query::AggFunc::kMin,
        query::AggFunc::kMax, query::AggFunc::kAvg}) {
    query::ConsolidationQuery q = gen::Query1(3);
    q.agg = agg;
    ASSERT_OK_AND_ASSIGN(Execution a,
                         RunQuery(db.get(), EngineKind::kArray, q));
    ASSERT_OK_AND_ASSIGN(Execution r,
                         RunQuery(db.get(), EngineKind::kStarJoin, q));
    ASSERT_TRUE(a.result.SameAs(r.result));
    // Finalized values agree row by row.
    for (size_t i = 0; i < a.result.rows().size(); ++i) {
      EXPECT_DOUBLE_EQ(a.result.rows()[i].agg.Finalize(agg),
                       r.result.rows()[i].agg.Finalize(agg));
    }
  }
}

}  // namespace
}  // namespace paradise
