// End-to-end integration tests: the full Database lifecycle (build, query,
// checkpoint, reopen from disk, query again), storage accounting across the
// density range (§3.2's break-even analysis), and load-protocol errors.
#include <gtest/gtest.h>

#include "common/options.h"
#include "query/engine.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

TEST(IntegrationTest, FullLifecycleSurvivesReopen) {
  TempFile file("lifecycle");
  gen::GenConfig config = TinyConfig(250, 99);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  const query::ConsolidationQuery q1 = gen::Query1(3);
  const query::ConsolidationQuery q2 = gen::Query2(3);
  query::GroupedResult expected1 = BruteForce(data, q1);
  query::GroupedResult expected2 = BruteForce(data, q2);

  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<Database> db,
        BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
    ASSERT_OK_AND_ASSIGN(Execution exec,
                         RunQuery(db.get(), EngineKind::kArray, q1));
    EXPECT_TRUE(exec.result.SameAs(expected1));
    ASSERT_OK(db->storage()->Close());
  }

  // Reopen from disk: every structure must come back.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(file.path(), SmallDbOptions()));
  EXPECT_TRUE(db->has_olap());
  EXPECT_EQ(db->fact()->num_tuples(), 250u);
  EXPECT_EQ(db->schema().num_dims(), 3u);

  for (EngineKind kind :
       {EngineKind::kArray, EngineKind::kStarJoin, EngineKind::kLeftDeep}) {
    ASSERT_OK_AND_ASSIGN(Execution exec, RunQuery(db.get(), kind, q1));
    EXPECT_TRUE(exec.result.SameAs(expected1)) << EngineKindToString(kind);
  }
  for (EngineKind kind : {EngineKind::kArray, EngineKind::kBitmap}) {
    ASSERT_OK_AND_ASSIGN(Execution exec, RunQuery(db.get(), kind, q2));
    EXPECT_TRUE(exec.result.SameAs(expected2)) << EngineKindToString(kind);
  }
}

TEST(IntegrationTest, LoadProtocolErrors) {
  TempFile file("protocol");
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(10)));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      Database::Create(file.path(), data.ToStarSchema(), SmallDbOptions()));
  // Facts before dimensions are rejected.
  EXPECT_TRUE(db->AppendFact({0, 0, 0}, 1).IsInvalidArgument());
  EXPECT_TRUE(db->BeginFacts().IsInvalidArgument());  // dims still empty
  // Load dimensions.
  const StarSchema schema = data.ToStarSchema();
  for (size_t d = 0; d < 3; ++d) {
    const Schema s = schema.dims[d].ToSchema();
    for (uint32_t key = 0; key < data.config.dims[d].size; ++key) {
      Tuple row(&s);
      row.SetInt32(0, static_cast<int32_t>(key));
      ASSERT_OK(row.SetString(
          1, gen::AttrValue(d, 1, data.config.dims[d].LevelCode(1, key))));
      ASSERT_OK(row.SetString(
          2, gen::AttrValue(d, 2, data.config.dims[d].LevelCode(2, key))));
      ASSERT_OK(db->AppendDimensionRow(d, row));
    }
  }
  ASSERT_OK(db->BeginFacts());
  EXPECT_TRUE(db->BeginFacts().IsInvalidArgument());
  // Dimension appends after BeginFacts are rejected.
  const Schema dim0_schema = schema.dims[0].ToSchema();
  Tuple frozen_row(&dim0_schema);
  frozen_row.SetInt32(0, 999);
  EXPECT_TRUE(db->AppendDimensionRow(0, frozen_row).IsInvalidArgument());
  EXPECT_TRUE(db->AppendFact({0, 0}, 1).IsInvalidArgument());  // arity
  ASSERT_OK(db->AppendFact({0, 0, 0}, 5));
  ASSERT_OK(db->FinishLoad());
  EXPECT_TRUE(db->FinishLoad().IsInvalidArgument());
}

TEST(IntegrationTest, StorageReportTracksDensity) {
  // §3.2: dense arrays beat the fact file; very sparse uncompressed arrays
  // would not, but chunk-offset compression keeps the array small.
  if (ForcedChunkFormatFromEnv().has_value()) {
    GTEST_SKIP() << "size expectations assume the configured per-density "
                    "formats, not a PARADISE_FORCE_CHUNK_FORMAT override";
  }
  TempFile low_file("storage_low"), high_file("storage_high");
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> low,
      BuildDatabaseFromConfig(low_file.path(), TinyConfig(24, 3),
                              SmallDbOptions()));  // 5 % dense
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> high,
      BuildDatabaseFromConfig(high_file.path(), TinyConfig(480, 3),
                              SmallDbOptions()));  // 100 % dense
  ASSERT_OK_AND_ASSIGN(Database::StorageReport low_report,
                       low->ReportStorage());
  ASSERT_OK_AND_ASSIGN(Database::StorageReport high_report,
                       high->ReportStorage());
  EXPECT_GT(low_report.fact_file_bytes, 0u);
  EXPECT_GT(low_report.array_data_bytes, 0u);
  EXPECT_GT(high_report.array_data_bytes, low_report.array_data_bytes);
  EXPECT_GT(low_report.bitmap_bytes, 0u);
  EXPECT_GE(low_report.file_bytes, low_report.fact_file_bytes);
  // At 100 % density the compressed array (12 B/cell here: offset+value)
  // stays below the fact-file page footprint (20 B/record + page padding).
  EXPECT_LT(high_report.array_data_bytes, high_report.fact_file_bytes);
}

TEST(IntegrationTest, ArrayOptionalBuild) {
  TempFile file("noarray");
  DatabaseOptions options = SmallDbOptions();
  options.build_array = false;
  options.build_bitmap_indexes = false;
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromConfig(file.path(), TinyConfig(100), SmallDbOptions()));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> lean,
      BuildDatabaseFromConfig(file.path() + ".lean", TinyConfig(100),
                              options));
  EXPECT_TRUE(db->has_olap());
  EXPECT_FALSE(lean->has_olap());
  EXPECT_TRUE(RunQuery(lean.get(), EngineKind::kArray, gen::Query1(3))
                  .status()
                  .IsInvalidArgument());
  // The relational engine still works without the array.
  ASSERT_OK_AND_ASSIGN(
      Execution exec, RunQuery(lean.get(), EngineKind::kStarJoin,
                               gen::Query1(3)));
  ASSERT_OK_AND_ASSIGN(
      Execution full, RunQuery(db.get(), EngineKind::kStarJoin,
                               gen::Query1(3)));
  EXPECT_TRUE(exec.result.SameAs(full.result));
  std::remove((file.path() + ".lean").c_str());
}

TEST(IntegrationTest, ChunkFormatsProduceSameAnswers) {
  TempFile sparse_file("fmt_sparse"), dense_file("fmt_dense"),
      auto_file("fmt_auto");
  gen::GenConfig config = TinyConfig(300, 55);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));

  DatabaseOptions sparse_opts = SmallDbOptions();
  sparse_opts.array.chunk_format = ChunkFormat::kOffsetCompressed;
  DatabaseOptions dense_opts = SmallDbOptions();
  dense_opts.array.chunk_format = ChunkFormat::kDense;
  DatabaseOptions auto_opts = SmallDbOptions();
  auto_opts.array.chunk_format = ChunkFormat::kAuto;

  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> sparse,
      BuildDatabaseFromDataset(sparse_file.path(), data, sparse_opts));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> dense,
      BuildDatabaseFromDataset(dense_file.path(), data, dense_opts));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> autodb,
      BuildDatabaseFromDataset(auto_file.path(), data, auto_opts));

  for (const query::ConsolidationQuery& q :
       {gen::Query1(3), gen::Query2(3), gen::Query3(3, 2)}) {
    ASSERT_OK_AND_ASSIGN(Execution a,
                         RunQuery(sparse.get(), EngineKind::kArray, q));
    ASSERT_OK_AND_ASSIGN(Execution b,
                         RunQuery(dense.get(), EngineKind::kArray, q));
    ASSERT_OK_AND_ASSIGN(Execution c,
                         RunQuery(autodb.get(), EngineKind::kArray, q));
    EXPECT_TRUE(a.result.SameAs(b.result));
    EXPECT_TRUE(a.result.SameAs(c.result));
  }
  // Auto never serializes larger than the better of the two fixed formats.
  ASSERT_OK_AND_ASSIGN(Database::StorageReport rs, sparse->ReportStorage());
  ASSERT_OK_AND_ASSIGN(Database::StorageReport rd, dense->ReportStorage());
  ASSERT_OK_AND_ASSIGN(Database::StorageReport ra, autodb->ReportStorage());
  EXPECT_LE(ra.array_data_bytes, std::min(rs.array_data_bytes,
                                          rd.array_data_bytes));
}

TEST(IntegrationTest, PaperShapedMiniDataset1) {
  // A scaled-down Data Set 1 shape: 10x10x10x25 cells with constant valid
  // count; checks the array engine handles multi-chunk 4-d cubes and the
  // engines agree on Query 1 and Query 2 end to end.
  TempFile file("mini_ds1");
  gen::GenConfig config;
  config.dims.resize(4);
  const uint32_t sizes[4] = {10, 10, 10, 25};
  for (size_t d = 0; d < 4; ++d) {
    config.dims[d].name = "dim" + std::to_string(d);
    config.dims[d].size = sizes[d];
    config.dims[d].level_cardinalities = {5, 2};
  }
  config.num_valid_cells = 2500;  // 10 % dense
  config.seed = 1234;
  config.chunk_extents = {5, 5, 5, 5};
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
  for (const query::ConsolidationQuery& q :
       {gen::Query1(4), gen::Query2(4), gen::Query3(4, 3)}) {
    const query::GroupedResult expected = BruteForce(data, q);
    ASSERT_OK_AND_ASSIGN(Execution array,
                         RunQuery(db.get(), EngineKind::kArray, q));
    EXPECT_TRUE(array.result.SameAs(expected));
    ASSERT_OK_AND_ASSIGN(Execution star,
                         RunQuery(db.get(), EngineKind::kStarJoin, q));
    EXPECT_TRUE(star.result.SameAs(expected));
    if (q.HasSelection()) {
      ASSERT_OK_AND_ASSIGN(Execution bitmap,
                           RunQuery(db.get(), EngineKind::kBitmap, q));
      EXPECT_TRUE(bitmap.result.SameAs(expected));
    }
  }
}

TEST(IntegrationTest, TotalSumInvariantAcrossGroupings) {
  // Grouping choice never changes the total: sum over groups == grand total.
  TempFile file("totalsum");
  gen::GenConfig config = TinyConfig(222, 77);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
  int64_t grand_total = 0;
  for (int64_t m : data.measures) grand_total += m;

  for (int kind = 0; kind < 4; ++kind) {
    query::ConsolidationQuery q;
    q.dims.resize(3);
    // Vary which dims are grouped and at which level.
    for (size_t d = 0; d < 3; ++d) {
      if ((kind >> d) & 1) q.dims[d].group_by_col = 1 + (d % 2);
    }
    ASSERT_OK_AND_ASSIGN(Execution exec,
                         RunQuery(db.get(), EngineKind::kArray, q));
    EXPECT_EQ(exec.result.TotalSum(), grand_total) << "grouping mask " << kind;
  }
}

}  // namespace
}  // namespace paradise
