// LZW codec tests: round-trips (parameterized over input shapes),
// compression effectiveness on array-like data, malformed-stream rejection,
// and the kLzwDense chunk format end to end through the database.
#include <gtest/gtest.h>

#include "array/chunk.h"
#include "common/lzw.h"
#include "common/options.h"
#include "common/random.h"
#include "query/engine.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

TEST(LzwTest, EmptyInput) {
  const std::string compressed = LzwCompress("");
  ASSERT_OK_AND_ASSIGN(std::string back, LzwDecompress(compressed));
  EXPECT_TRUE(back.empty());
}

TEST(LzwTest, SingleByte) {
  ASSERT_OK_AND_ASSIGN(std::string back, LzwDecompress(LzwCompress("x")));
  EXPECT_EQ(back, "x");
}

TEST(LzwTest, KwKwKCase) {
  // The classic aaaa... stream exercises the code-defined-while-used path.
  const std::string input(1000, 'a');
  const std::string compressed = LzwCompress(input);
  EXPECT_LT(compressed.size(), input.size() / 4);
  ASSERT_OK_AND_ASSIGN(std::string back, LzwDecompress(compressed));
  EXPECT_EQ(back, input);
}

TEST(LzwTest, AllByteValues) {
  std::string input;
  for (int round = 0; round < 4; ++round) {
    for (int b = 0; b < 256; ++b) input.push_back(static_cast<char>(b));
  }
  ASSERT_OK_AND_ASSIGN(std::string back, LzwDecompress(LzwCompress(input)));
  EXPECT_EQ(back, input);
}

TEST(LzwTest, CompressesZeroHeavyDenseChunks) {
  // A dense array chunk at low density is mostly zeros — LZW's best case.
  Chunk chunk(10000);
  Random rng(5);
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(chunk.Put(static_cast<uint32_t>(rng.Uniform(10000)),
                        rng.UniformRange(1, 100)));
  }
  const std::string dense = chunk.Serialize(ChunkFormat::kDense);
  const std::string compressed = LzwCompress(dense);
  EXPECT_LT(compressed.size(), dense.size() / 5);
}

TEST(LzwTest, DictionaryResetOnLargeRandomInput) {
  // Random bytes force the dictionary to 65536 entries and through resets.
  Random rng(6);
  std::string input;
  input.reserve(300000);
  for (int i = 0; i < 300000; ++i) {
    input.push_back(static_cast<char>(rng.Uniform(256)));
  }
  ASSERT_OK_AND_ASSIGN(std::string back, LzwDecompress(LzwCompress(input)));
  EXPECT_EQ(back, input);
}

TEST(LzwTest, RejectsMalformedStreams) {
  EXPECT_TRUE(LzwDecompress("abc").status().IsCorruption());  // odd payload
  std::string ok = LzwCompress("hello world hello world");
  std::string truncated = ok.substr(0, ok.size() - 2);
  Result<std::string> r = LzwDecompress(truncated);
  EXPECT_TRUE(!r.ok() || *r != "hello world hello world");
  // Length header mismatch.
  std::string lied = ok;
  lied[0] = static_cast<char>(lied[0] + 1);
  EXPECT_FALSE(LzwDecompress(lied).ok());
}

class LzwRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LzwRoundTrip, RandomStructuredInputs) {
  Random rng(static_cast<uint64_t>(GetParam()));
  // Mix runs, repeats and noise.
  std::string input;
  for (int block = 0; block < 50; ++block) {
    switch (rng.Uniform(3)) {
      case 0:
        input.append(rng.Uniform(200), static_cast<char>(rng.Uniform(256)));
        break;
      case 1:
        for (uint64_t i = 0, n = rng.Uniform(200); i < n; ++i) {
          input.push_back(static_cast<char>(rng.Uniform(4)));
        }
        break;
      default:
        for (uint64_t i = 0, n = rng.Uniform(200); i < n; ++i) {
          input.push_back(static_cast<char>(rng.Uniform(256)));
        }
    }
  }
  ASSERT_OK_AND_ASSIGN(std::string back, LzwDecompress(LzwCompress(input)));
  EXPECT_EQ(back, input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzwRoundTrip, ::testing::Range(1, 9));

TEST(LzwChunkFormatTest, SerializeDeserializeRoundTrip) {
  Chunk chunk(500);
  Random rng(9);
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(chunk.Put(static_cast<uint32_t>(rng.Uniform(500)),
                        rng.UniformRange(-9, 9)));
  }
  const std::string blob = chunk.Serialize(ChunkFormat::kLzwDense);
  ASSERT_OK_AND_ASSIGN(Chunk back, Chunk::Deserialize(blob));
  EXPECT_TRUE(back == chunk);
  // UnwrapChunkBlob produces the dense form ChunkView can read.
  ASSERT_OK_AND_ASSIGN(std::string dense, UnwrapChunkBlob(std::string(blob)));
  ASSERT_OK_AND_ASSIGN(ChunkView view, ChunkView::Make(dense));
  EXPECT_EQ(view.num_valid(), chunk.num_valid());
}

TEST(LzwChunkFormatTest, DatabaseWithLzwChunksAnswersQueriesCorrectly) {
  TempFile file("lzwdb");
  gen::GenConfig config = TinyConfig(250, 17);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  DatabaseOptions options = SmallDbOptions();
  options.array.chunk_format = ChunkFormat::kLzwDense;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       BuildDatabaseFromDataset(file.path(), data, options));
  for (const query::ConsolidationQuery& q :
       {gen::Query1(3), gen::Query2(3)}) {
    ASSERT_OK_AND_ASSIGN(Execution exec,
                         RunQuery(db.get(), EngineKind::kArray, q));
    EXPECT_TRUE(exec.result.SameAs(BruteForce(data, q)));
  }
}

TEST(LzwChunkFormatTest, LzwSmallerThanDenseOnSparseData) {
  if (ForcedChunkFormatFromEnv().has_value()) {
    GTEST_SKIP() << "PARADISE_FORCE_CHUNK_FORMAT overrides the per-array "
                    "formats this size comparison depends on";
  }
  TempFile lzw_file("lzw_sz"), dense_file("dense_sz");
  gen::GenConfig config = TinyConfig(24, 3);  // 5 % dense
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  DatabaseOptions lzw_opts = SmallDbOptions();
  lzw_opts.array.chunk_format = ChunkFormat::kLzwDense;
  DatabaseOptions dense_opts = SmallDbOptions();
  dense_opts.array.chunk_format = ChunkFormat::kDense;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> lzw,
                       BuildDatabaseFromDataset(lzw_file.path(), data,
                                                lzw_opts));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> dense,
                       BuildDatabaseFromDataset(dense_file.path(), data,
                                                dense_opts));
  EXPECT_LT(lzw->olap()->array().TotalDataBytes(),
            dense->olap()->array().TotalDataBytes());
}

}  // namespace
}  // namespace paradise
