// Unit tests for the common runtime: Status/Result, coding, Random,
// sampling, options validation, timers and logging.
#include <set>

#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/logging.h"
#include "common/options.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "storage/page.h"
#include "test_util.h"

namespace paradise {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::IOError("disk gone").ToString(), "IOError: disk gone");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("key 7").WithContext("probing dim0");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "probing dim0: key 7");
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int v) {
  PARADISE_RETURN_IF_ERROR(FailIfNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_TRUE(Propagates(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::OutOfRange("not positive");
  return v * 2;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(ok.status().ok());

  Result<int> bad = ParsePositive(-3);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsOutOfRange());
  EXPECT_EQ(bad.value_or(-1), -1);
}

Result<int> UsesAssignMacro(int v) {
  PARADISE_ASSIGN_OR_RETURN(int doubled, ParsePositive(v));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = UsesAssignMacro(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 11);
  EXPECT_TRUE(UsesAssignMacro(0).status().IsOutOfRange());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 9);
}

TEST(CodingTest, Fixed32RoundTrip) {
  char buf[4];
  for (uint32_t v : {0u, 1u, 255u, 0xDEADBEEFu, UINT32_MAX}) {
    EncodeFixed32(buf, v);
    EXPECT_EQ(DecodeFixed32(buf), v);
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  char buf[8];
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{0xDEADBEEFCAFEF00D},
                     UINT64_MAX}) {
    EncodeFixed64(buf, v);
    EXPECT_EQ(DecodeFixed64(buf), v);
  }
}

TEST(CodingTest, Fixed16RoundTrip) {
  char buf[2];
  for (uint16_t v : {uint16_t{0}, uint16_t{1}, uint16_t{65535}}) {
    EncodeFixed16(buf, v);
    EXPECT_EQ(DecodeFixed16(buf), v);
  }
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int differ = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Next() != b.Next()) ++differ;
  }
  EXPECT_GT(differ, 15);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, UniformCoversAllValues) {
  Random rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(SampleTest, ExactCountSortedDistinct) {
  Random rng(11);
  const auto sample = SampleSortedDistinct(10000, 137, &rng);
  ASSERT_EQ(sample.size(), 137u);
  for (size_t i = 1; i < sample.size(); ++i) {
    EXPECT_LT(sample[i - 1], sample[i]);
  }
  EXPECT_LT(sample.back(), 10000u);
}

TEST(SampleTest, FullPopulation) {
  Random rng(12);
  const auto sample = SampleSortedDistinct(20, 20, &rng);
  ASSERT_EQ(sample.size(), 20u);
  for (size_t i = 0; i < 20; ++i) EXPECT_EQ(sample[i], i);
}

TEST(SampleTest, EmptySample) {
  Random rng(13);
  EXPECT_TRUE(SampleSortedDistinct(100, 0, &rng).empty());
}

TEST(SampleTest, RoughlyUniform) {
  // Sampling half of [0, 100) many times: each element should be picked
  // close to half the time.
  std::vector<int> hits(100, 0);
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Random rng(seed);
    for (uint64_t v : SampleSortedDistinct(100, 50, &rng)) ++hits[v];
  }
  for (int h : hits) {
    EXPECT_GT(h, 60);   // expected 100
    EXPECT_LT(h, 140);
  }
}

TEST(OptionsTest, StorageValidation) {
  StorageOptions o;
  EXPECT_OK(o.Validate());
  o.page_size = 1000;  // not a power of two
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.page_size = 256;  // too small
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.page_size = 8192;
  o.buffer_pool_pages = 2;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.buffer_pool_pages = 64;
  o.pages_per_extent = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.pages_per_extent = 32;
  o.format_version = 0;
  EXPECT_TRUE(o.Validate().IsNotSupported());
  o.format_version = page_header::kMaxSupportedFormat + 1;
  EXPECT_TRUE(o.Validate().IsNotSupported());
  o.format_version = 4;
  EXPECT_OK(o.Validate());
  o.format_version = 3;
  EXPECT_OK(o.Validate());
  o.format_version = 1;
  EXPECT_OK(o.Validate());
  o.read_only = true;
  o.allow_overwrite = true;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.read_only = false;
  o.allow_overwrite = false;
  o.read_retry_limit = 65;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(Crc32cTest, KnownAnswerVectors) {
  // Standard CRC32C check value: "123456789" -> 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  // From the iSCSI RFC 3720 test vectors.
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  const std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "paradise array consolidation";
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t partial = Crc32c(data.data(), split);
    EXPECT_EQ(Crc32cExtend(partial, data.data() + split, data.size() - split),
              Crc32c(data.data(), data.size()))
        << "split at " << split;
  }
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  const uint32_t crc = Crc32c("123456789", 9);
  EXPECT_NE(MaskCrc32c(crc), crc);
  EXPECT_EQ(UnmaskCrc32c(MaskCrc32c(crc)), crc);
  EXPECT_EQ(UnmaskCrc32c(MaskCrc32c(0u)), 0u);
}

TEST(OptionsTest, ArrayValidation) {
  ArrayOptions o;
  EXPECT_OK(o.Validate());
  o.default_chunk_extent = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(OptionsTest, ChunkFormatNames) {
  EXPECT_EQ(ChunkFormatToString(ChunkFormat::kDense), "dense");
  EXPECT_EQ(ChunkFormatToString(ChunkFormat::kOffsetCompressed),
            "offset-compressed");
  EXPECT_EQ(ChunkFormatToString(ChunkFormat::kAuto), "auto");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch w;
  EXPECT_GE(w.ElapsedMicros(), 0);
  const int64_t first = w.ElapsedMicros();
  // Busy-wait a tiny amount.
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x = x + static_cast<uint64_t>(i);
  EXPECT_GE(w.ElapsedMicros(), first);
  w.Reset();
  EXPECT_LT(w.ElapsedSeconds(), 10.0);
}

TEST(PhaseTimerTest, AccumulatesNamedPhases) {
  PhaseTimer timer;
  timer.Add("scan", 100);
  timer.Add("scan", 50);
  timer.Add("aggregate", 25);
  EXPECT_EQ(timer.Micros("scan"), 150);
  EXPECT_EQ(timer.Micros("aggregate"), 25);
  EXPECT_EQ(timer.Micros("absent"), 0);
  EXPECT_DOUBLE_EQ(timer.Seconds("scan"), 150e-6);
  EXPECT_EQ(timer.phases().size(), 2u);
  timer.Clear();
  EXPECT_TRUE(timer.phases().empty());
}

TEST(PhaseTimerTest, ScopedPhaseRecords) {
  PhaseTimer timer;
  {
    ScopedPhase phase(&timer, "work");
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
  }
  EXPECT_GE(timer.Micros("work"), 0);
  EXPECT_EQ(timer.phases().count("work"), 1u);
  // Null timer is a safe no-op.
  { ScopedPhase phase(nullptr, "ignored"); }
}

TEST(LoggingTest, LevelFilter) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  Log(LogLevel::kDebug, "should be suppressed");
  Log(LogLevel::kError, "shown (this is expected test output)");
  SetLogLevel(old_level);
}

}  // namespace
}  // namespace paradise
