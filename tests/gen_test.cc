// Tests for the synthetic data generator and the paper data-set presets.
#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "gen/generator.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::TinyConfig;

TEST(GeneratorTest, DeterministicForSameSeed) {
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset a, gen::Generate(TinyConfig()));
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset b, gen::Generate(TinyConfig()));
  EXPECT_EQ(a.cell_global_indices, b.cell_global_indices);
  EXPECT_EQ(a.measures, b.measures);
}

TEST(GeneratorTest, ExactValidCellCount) {
  gen::GenConfig config = TinyConfig(/*valid=*/333);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  EXPECT_EQ(data.cell_global_indices.size(), 333u);
  EXPECT_EQ(data.measures.size(), 333u);
  // Sorted and distinct, within range.
  for (size_t i = 1; i < data.cell_global_indices.size(); ++i) {
    EXPECT_LT(data.cell_global_indices[i - 1], data.cell_global_indices[i]);
  }
  EXPECT_LT(data.cell_global_indices.back(), config.TotalCells());
}

TEST(GeneratorTest, MeasuresWithinRange) {
  gen::GenConfig config = TinyConfig();
  config.measure_min = 5;
  config.measure_max = 9;
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  for (int64_t m : data.measures) {
    EXPECT_GE(m, 5);
    EXPECT_LE(m, 9);
  }
}

TEST(GeneratorTest, ValidationCatchesBadConfigs) {
  gen::GenConfig config = TinyConfig();
  config.num_valid_cells = config.TotalCells() + 1;
  EXPECT_TRUE(gen::Generate(config).status().IsInvalidArgument());
  config = TinyConfig();
  config.dims[0].level_cardinalities[0] = config.dims[0].size + 1;
  EXPECT_TRUE(gen::Generate(config).status().IsInvalidArgument());
  config = TinyConfig();
  config.measure_min = 10;
  config.measure_max = 1;
  EXPECT_TRUE(gen::Generate(config).status().IsInvalidArgument());
  EXPECT_TRUE(gen::Generate(gen::GenConfig{}).status().IsInvalidArgument());
}

TEST(GeneratorTest, LevelCodesFormBlocks) {
  gen::GenDimension dim;
  dim.size = 12;
  dim.level_cardinalities = {4, 2};
  // Level 1: 12/4 = 3 keys per code; non-decreasing, covering 0..3.
  uint32_t prev = 0;
  std::set<uint32_t> codes;
  for (uint32_t key = 0; key < 12; ++key) {
    const uint32_t code = dim.LevelCode(1, key);
    EXPECT_GE(code, prev);
    prev = code;
    codes.insert(code);
    EXPECT_LT(code, 4u);
  }
  EXPECT_EQ(codes.size(), 4u);
}

TEST(GeneratorTest, AttrValueFormat) {
  EXPECT_EQ(gen::AttrValue(0, 1, 3), "AH1C003");
  EXPECT_EQ(gen::AttrValue(2, 2, 42), "CH2C042");
  EXPECT_LE(gen::AttrValue(25, 2, 999).size(), 8u);
}

TEST(GeneratorTest, CellKeysRoundTrip) {
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(TinyConfig()));
  // keys decode row-major: reconstruct the global index.
  for (size_t i = 0; i < 20 && i < data.cell_global_indices.size(); ++i) {
    const std::vector<int32_t> keys =
        data.CellKeys(data.cell_global_indices[i]);
    uint64_t g = 0;
    for (size_t d = 0; d < keys.size(); ++d) {
      g = g * data.config.dims[d].size + static_cast<uint64_t>(keys[d]);
    }
    EXPECT_EQ(g, data.cell_global_indices[i]);
  }
}

TEST(GeneratorTest, ToStarSchemaShape) {
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(TinyConfig()));
  const StarSchema schema = data.ToStarSchema("mycube");
  EXPECT_EQ(schema.cube_name, "mycube");
  ASSERT_EQ(schema.num_dims(), 3u);
  for (size_t d = 0; d < 3; ++d) {
    EXPECT_EQ(schema.dims[d].attrs.size(), 3u);  // key + 2 levels
    EXPECT_EQ(schema.dims[d].attrs[0].type, ColumnType::kInt32);
    EXPECT_EQ(schema.dims[d].attrs[1].type, ColumnType::kString16);
  }
  const Schema fact = schema.FactSchema();
  EXPECT_EQ(fact.num_columns(), 4u);
  EXPECT_EQ(fact.record_size(), 3 * 4 + 8u);
}

TEST(DatasetsTest, DataSet1Definitions) {
  for (uint32_t last : {50u, 100u, 1000u}) {
    const gen::GenConfig config = gen::DataSet1(last);
    EXPECT_EQ(config.dims.size(), 4u);
    EXPECT_EQ(config.dims[3].size, last);
    EXPECT_EQ(config.num_valid_cells, gen::kDataSet1ValidCells);
    EXPECT_EQ(config.chunk_extents,
              (std::vector<uint32_t>{20, 20, 20, 10}));
    EXPECT_OK(config.Validate());
  }
  // Densities: 20 %, 10 %, 1 %.
  EXPECT_NEAR(gen::DataSet1(50).Density(), 0.20, 1e-9);
  EXPECT_NEAR(gen::DataSet1(100).Density(), 0.10, 1e-9);
  EXPECT_NEAR(gen::DataSet1(1000).Density(), 0.01, 1e-9);
}

TEST(DatasetsTest, DataSet2DensitySweep) {
  for (double density : {0.005, 0.01, 0.05, 0.20}) {
    const gen::GenConfig config = gen::DataSet2(density);
    EXPECT_OK(config.Validate());
    EXPECT_NEAR(config.Density(), density, 1e-6);
    EXPECT_EQ(config.dims[3].size, 100u);
  }
}

TEST(DatasetsTest, QueryTemplates) {
  const query::ConsolidationQuery q1 = gen::Query1(4);
  EXPECT_FALSE(q1.HasSelection());
  for (const auto& d : q1.dims) EXPECT_EQ(d.group_by_col, 1u);

  const query::ConsolidationQuery q2 = gen::Query2(4);
  EXPECT_TRUE(q2.HasSelection());
  for (const auto& d : q2.dims) {
    ASSERT_EQ(d.selections.size(), 1u);
    EXPECT_EQ(d.selections[0].attr_col, 2u);
    EXPECT_EQ(d.selections[0].values.size(), 1u);
  }

  const query::ConsolidationQuery q3 = gen::Query3(4, 3);
  EXPECT_TRUE(q3.HasSelection());
  EXPECT_TRUE(q3.dims[0].group_by_col.has_value());
  EXPECT_TRUE(q3.dims[2].group_by_col.has_value());
  EXPECT_FALSE(q3.dims[3].group_by_col.has_value());
  EXPECT_TRUE(q3.dims[3].selections.empty());
}

TEST(StarSchemaTest, SerializeRoundTrip) {
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(TinyConfig()));
  const StarSchema schema = data.ToStarSchema();
  ASSERT_OK_AND_ASSIGN(StarSchema back,
                       StarSchema::Deserialize(schema.Serialize()));
  EXPECT_EQ(back.cube_name, schema.cube_name);
  EXPECT_EQ(back.measures, schema.measures);
  ASSERT_EQ(back.num_dims(), schema.num_dims());
  for (size_t d = 0; d < schema.num_dims(); ++d) {
    EXPECT_EQ(back.dims[d].name, schema.dims[d].name);
    EXPECT_TRUE(back.dims[d].ToSchema() == schema.dims[d].ToSchema());
  }
}

TEST(StarSchemaTest, ValidationCatchesBadSchemas) {
  StarSchema schema;
  EXPECT_TRUE(schema.Validate().IsInvalidArgument());  // no dims
  schema.dims.push_back(DimensionSpec{
      "d", {{"k", ColumnType::kString16}}});  // key must be int32
  EXPECT_TRUE(schema.Validate().IsInvalidArgument());
}

TEST(QueryTest, LiteralNormalization) {
  EXPECT_EQ(query::NormalizeLiteral(query::Literal{int64_t{42}}), 42);
  EXPECT_EQ(query::NormalizeLiteral(query::Literal{std::string("AB")}),
            StringPrefixKey("AB"));
  EXPECT_EQ(query::LiteralToString(query::Literal{int64_t{7}}), "7");
  EXPECT_EQ(query::LiteralToString(query::Literal{std::string("x")}), "x");
}

TEST(QueryTest, ValidateChecksArityAndColumns) {
  query::ConsolidationQuery q = gen::Query1(3);
  EXPECT_OK(q.Validate({3, 3, 3}));
  EXPECT_TRUE(q.Validate({3, 3}).IsInvalidArgument());
  q.dims[0].group_by_col = 0;  // the key column cannot be a group-by level
  EXPECT_TRUE(q.Validate({3, 3, 3}).IsInvalidArgument());
  q = gen::Query2(3);
  q.dims[1].selections[0].attr_col = 5;
  EXPECT_TRUE(q.Validate({3, 3, 3}).IsInvalidArgument());
  q = gen::Query2(3);
  q.dims[1].selections[0].values.clear();
  EXPECT_TRUE(q.Validate({3, 3, 3}).IsInvalidArgument());
}

TEST(ResultTest, SortAndCompare) {
  query::GroupedResult a({"g"});
  a.Add({{2}, {}});
  a.Add({{1}, {}});
  a.SortCanonical();
  EXPECT_EQ(a.rows()[0].group[0], 1);
  query::GroupedResult b({"g"});
  b.Add({{1}, {}});
  b.Add({{2}, {}});
  b.SortCanonical();
  EXPECT_TRUE(a.SameAs(b));
  query::GroupedResult c({"g"});
  c.Add({{1}, {}});
  c.SortCanonical();
  EXPECT_FALSE(a.SameAs(c));
}

TEST(ResultTest, AggStateFinalize) {
  query::AggState s;
  s.Add(4);
  s.Add(10);
  s.Add(-2);
  EXPECT_EQ(s.Finalize(query::AggFunc::kSum), 12.0);
  EXPECT_EQ(s.Finalize(query::AggFunc::kCount), 3.0);
  EXPECT_EQ(s.Finalize(query::AggFunc::kMin), -2.0);
  EXPECT_EQ(s.Finalize(query::AggFunc::kMax), 10.0);
  EXPECT_EQ(s.Finalize(query::AggFunc::kAvg), 4.0);
  const query::AggState empty;
  EXPECT_EQ(empty.Finalize(query::AggFunc::kAvg), 0.0);
  EXPECT_EQ(empty.Finalize(query::AggFunc::kMin), 0.0);
}

TEST(ResultTest, MergeCombinesStates) {
  query::AggState a, b;
  a.Add(1);
  a.Add(5);
  b.Add(-3);
  a.Merge(b);
  EXPECT_EQ(a.sum, 3);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.min, -3);
  EXPECT_EQ(a.max, 5);
}

}  // namespace
}  // namespace paradise
