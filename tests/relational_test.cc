// Tests for the relational substrate: schemas, tuples, the slotted heap
// file, the extent-based fact file, and dimension tables with dictionaries.
#include <cstring>

#include <gtest/gtest.h>

#include "common/random.h"
#include "index/btree.h"
#include "relational/dimension_table.h"
#include "relational/fact_file.h"
#include "relational/heap_file.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::TempFile;

Schema SalesSchema() {
  return Schema({{"pid", ColumnType::kInt32},
                 {"sid", ColumnType::kInt32},
                 {"volume", ColumnType::kInt64},
                 {"note", ColumnType::kString16}});
}

TEST(SchemaTest, OffsetsAndRecordSize) {
  const Schema s = SalesSchema();
  EXPECT_EQ(s.num_columns(), 4u);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 4u);
  EXPECT_EQ(s.offset(2), 8u);
  EXPECT_EQ(s.offset(3), 16u);
  EXPECT_EQ(s.record_size(), 32u);
}

TEST(SchemaTest, ColumnIndexLookup) {
  const Schema s = SalesSchema();
  ASSERT_OK_AND_ASSIGN(size_t i, s.ColumnIndex("volume"));
  EXPECT_EQ(i, 2u);
  EXPECT_TRUE(s.ColumnIndex("nope").status().IsNotFound());
}

TEST(SchemaTest, SerializeRoundTrip) {
  const Schema s = SalesSchema();
  ASSERT_OK_AND_ASSIGN(Schema back, Schema::Deserialize(s.Serialize()));
  EXPECT_TRUE(back == s);
  EXPECT_EQ(back.record_size(), s.record_size());
}

TEST(SchemaTest, DeserializeRejectsGarbage) {
  EXPECT_TRUE(Schema::Deserialize("ab").status().IsCorruption());
}

TEST(TupleTest, SetGetAllTypes) {
  const Schema s = SalesSchema();
  Tuple t(&s);
  t.SetInt32(0, -7);
  t.SetInt32(1, 42);
  t.SetInt64(2, 123456789012345);
  ASSERT_OK(t.SetString(3, "hello"));
  EXPECT_EQ(t.GetInt32(0), -7);
  EXPECT_EQ(t.GetInt32(1), 42);
  EXPECT_EQ(t.GetInt64(2), 123456789012345);
  EXPECT_EQ(t.GetString(3), "hello");
}

TEST(TupleTest, StringPaddingAndLimit) {
  const Schema s = SalesSchema();
  Tuple t(&s);
  ASSERT_OK(t.SetString(3, "exactly16bytes!!"));
  EXPECT_EQ(t.GetString(3), "exactly16bytes!!");
  EXPECT_TRUE(t.SetString(3, "seventeen bytes!!").IsInvalidArgument());
  ASSERT_OK(t.SetString(3, "short"));
  EXPECT_EQ(t.GetString(3), "short");  // trailing NULs stripped
}

TEST(TupleTest, RefViewsRawBytes) {
  const Schema s = SalesSchema();
  Tuple t(&s);
  t.SetInt32(0, 99);
  TupleRef ref(&s, t.bytes().data());
  EXPECT_EQ(ref.GetInt32(0), 99);
}

class HeapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("heap");
    StorageOptions options;
    options.page_size = 4096;
    options.buffer_pool_pages = 32;
    ASSERT_OK(disk_.Create(file_->path(), options));
    pool_ = std::make_unique<BufferPool>(&disk_, options);
  }

  std::unique_ptr<TempFile> file_;
  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(HeapFileTest, AppendGetScan) {
  ASSERT_OK_AND_ASSIGN(HeapFile heap, HeapFile::Create(pool_.get()));
  std::vector<RecordId> rids;
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK_AND_ASSIGN(RecordId rid,
                         heap.Append("record-" + std::to_string(i)));
    rids.push_back(rid);
  }
  std::string rec;
  ASSERT_OK(heap.Get(rids[42], &rec));
  EXPECT_EQ(rec, "record-42");
  ASSERT_OK_AND_ASSIGN(HeapFileIterator it, heap.Scan());
  int count = 0;
  while (it.Valid()) {
    EXPECT_EQ(it.record(), "record-" + std::to_string(count));
    ++count;
    ASSERT_OK(it.Next());
  }
  EXPECT_EQ(count, 100);
}

TEST_F(HeapFileTest, VariableLengthRecordsSpanPages) {
  ASSERT_OK_AND_ASSIGN(HeapFile heap, HeapFile::Create(pool_.get()));
  Random rng(5);
  std::vector<std::string> records;
  for (int i = 0; i < 300; ++i) {
    records.emplace_back(rng.Uniform(200) + 1, static_cast<char>('a' + i % 26));
    ASSERT_OK(heap.Append(records.back()).status());
  }
  ASSERT_OK_AND_ASSIGN(uint64_t pages, heap.CountPages());
  EXPECT_GT(pages, 1u);
  ASSERT_OK_AND_ASSIGN(uint64_t n, heap.CountRecords());
  EXPECT_EQ(n, 300u);
  ASSERT_OK_AND_ASSIGN(HeapFileIterator it, heap.Scan());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.record(), records[i]);
    ASSERT_OK(it.Next());
  }
  EXPECT_FALSE(it.Valid());
}

TEST_F(HeapFileTest, OversizedRecordRejected) {
  ASSERT_OK_AND_ASSIGN(HeapFile heap, HeapFile::Create(pool_.get()));
  EXPECT_TRUE(heap.Append(std::string(5000, 'x')).status().IsInvalidArgument());
}

TEST_F(HeapFileTest, ReopenResumesAppending) {
  PageId first = kInvalidPageId;
  {
    ASSERT_OK_AND_ASSIGN(HeapFile heap, HeapFile::Create(pool_.get()));
    first = heap.first_page();
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(heap.Append("a" + std::to_string(i)).status());
    }
  }
  ASSERT_OK(pool_->FlushAndEvictAll());
  ASSERT_OK_AND_ASSIGN(HeapFile heap, HeapFile::Open(pool_.get(), first));
  ASSERT_OK(heap.Append("resumed").status());
  ASSERT_OK_AND_ASSIGN(uint64_t n, heap.CountRecords());
  EXPECT_EQ(n, 51u);
}

TEST_F(HeapFileTest, GetBadSlotFails) {
  ASSERT_OK_AND_ASSIGN(HeapFile heap, HeapFile::Create(pool_.get()));
  ASSERT_OK(heap.Append("only").status());
  std::string rec;
  EXPECT_TRUE(heap.Get(RecordId{heap.first_page(), 7}, &rec).IsNotFound());
}

class FactFileTest : public HeapFileTest {};

TEST_F(FactFileTest, AppendGetScan) {
  ASSERT_OK_AND_ASSIGN(FactFile fact,
                       FactFile::Create(pool_.get(), &disk_, 16, 4));
  for (int i = 0; i < 1000; ++i) {
    std::string rec(16, '\0');
    std::memcpy(rec.data(), &i, sizeof(i));
    ASSERT_OK(fact.Append(rec));
  }
  EXPECT_EQ(fact.num_tuples(), 1000u);
  char buf[16];
  ASSERT_OK(fact.Get(777, buf));
  int v = 0;
  std::memcpy(&v, buf, sizeof(v));
  EXPECT_EQ(v, 777);
  EXPECT_TRUE(fact.Get(1000, buf).IsOutOfRange());

  int expected = 0;
  ASSERT_OK(fact.ScanAll([&](uint64_t t, const char* record) -> Status {
    int got = 0;
    std::memcpy(&got, record, sizeof(got));
    EXPECT_EQ(got, expected);
    EXPECT_EQ(t, static_cast<uint64_t>(expected));
    ++expected;
    return Status::OK();
  }));
  EXPECT_EQ(expected, 1000);
}

TEST_F(FactFileTest, WrongRecordSizeRejected) {
  ASSERT_OK_AND_ASSIGN(FactFile fact,
                       FactFile::Create(pool_.get(), &disk_, 16, 4));
  EXPECT_TRUE(fact.Append("short").IsInvalidArgument());
  EXPECT_TRUE(FactFile::Create(pool_.get(), &disk_, 0, 4)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(FactFileTest, FetchBitmapVisitsExactlySetBits) {
  ASSERT_OK_AND_ASSIGN(FactFile fact,
                       FactFile::Create(pool_.get(), &disk_, 8, 4));
  for (uint64_t i = 0; i < 2000; ++i) {
    std::string rec(8, '\0');
    std::memcpy(rec.data(), &i, sizeof(i));
    ASSERT_OK(fact.Append(rec));
  }
  Bitmap bitmap(2000);
  std::set<uint64_t> expected;
  Random rng(17);
  for (int i = 0; i < 100; ++i) {
    const uint64_t t = rng.Uniform(2000);
    bitmap.Set(t);
    expected.insert(t);
  }
  std::set<uint64_t> seen;
  ASSERT_OK(fact.FetchBitmap(bitmap,
                             [&](uint64_t t, const char* record) -> Status {
                               uint64_t v = 0;
                               std::memcpy(&v, record, sizeof(v));
                               EXPECT_EQ(v, t);
                               seen.insert(t);
                               return Status::OK();
                             }));
  EXPECT_EQ(seen, expected);
  // Mismatched bitmap size is rejected.
  Bitmap wrong(5);
  EXPECT_TRUE(fact.FetchBitmap(wrong, [](uint64_t, const char*) {
                    return Status::OK();
                  }).IsInvalidArgument());
}

TEST_F(FactFileTest, ReopenKeepsTuplesAfterSync) {
  PageId meta = kInvalidPageId;
  {
    ASSERT_OK_AND_ASSIGN(FactFile fact,
                         FactFile::Create(pool_.get(), &disk_, 8, 4));
    meta = fact.meta_page();
    for (uint64_t i = 0; i < 500; ++i) {
      std::string rec(8, '\0');
      std::memcpy(rec.data(), &i, sizeof(i));
      ASSERT_OK(fact.Append(rec));
    }
    ASSERT_OK(fact.Sync());
  }
  ASSERT_OK(pool_->FlushAndEvictAll());
  ASSERT_OK_AND_ASSIGN(FactFile fact,
                       FactFile::Open(pool_.get(), &disk_, meta));
  EXPECT_EQ(fact.num_tuples(), 500u);
  char buf[8];
  ASSERT_OK(fact.Get(499, buf));
  uint64_t v = 0;
  std::memcpy(&v, buf, sizeof(v));
  EXPECT_EQ(v, 499u);
}

TEST_F(FactFileTest, NoPerTupleSpaceOverhead) {
  // 16-byte records in 4096-byte pages: exactly 256 per page, no slots.
  ASSERT_OK_AND_ASSIGN(FactFile fact,
                       FactFile::Create(pool_.get(), &disk_, 16, 4));
  EXPECT_EQ(fact.tuples_per_page(), 256u);
  for (int i = 0; i < 256; ++i) {
    ASSERT_OK(fact.Append(std::string(16, 'x')));
  }
  EXPECT_EQ(fact.used_data_pages(), 1u);
  ASSERT_OK(fact.Append(std::string(16, 'y')));
  EXPECT_EQ(fact.used_data_pages(), 2u);
}

Schema DimSchema() {
  return Schema({{"d0", ColumnType::kInt32},
                 {"h01", ColumnType::kString16},
                 {"h02", ColumnType::kString16}});
}

class DimensionTableTest : public HeapFileTest {};

TEST_F(DimensionTableTest, AppendBuildsDictionaries) {
  ASSERT_OK_AND_ASSIGN(
      DimensionTable dim,
      DimensionTable::Create(pool_.get(), "dim0", DimSchema()));
  const Schema schema = DimSchema();
  for (int key = 0; key < 12; ++key) {
    Tuple row(&schema);
    row.SetInt32(0, key);
    ASSERT_OK(row.SetString(1, "L1_" + std::to_string(key / 3)));
    ASSERT_OK(row.SetString(2, "L2_" + std::to_string(key / 6)));
    ASSERT_OK(dim.Append(row));
  }
  EXPECT_EQ(dim.num_rows(), 12u);
  ASSERT_OK_AND_ASSIGN(const AttributeDictionary* d1, dim.Dictionary(1));
  EXPECT_EQ(d1->cardinality(), 4);
  ASSERT_OK_AND_ASSIGN(const AttributeDictionary* d2, dim.Dictionary(2));
  EXPECT_EQ(d2->cardinality(), 2);
  // Codes follow first appearance: key 0..2 -> code 0, 3..5 -> code 1, ...
  ASSERT_OK_AND_ASSIGN(int32_t code, dim.RowAttrCode(7, 1));
  EXPECT_EQ(code, 2);
  EXPECT_EQ(d1->code_to_display[2], "L1_2");
  ASSERT_OK_AND_ASSIGN(uint32_t row, dim.RowOfKey(9));
  EXPECT_EQ(row, 9u);
  EXPECT_TRUE(dim.RowOfKey(99).status().IsNotFound());
}

TEST_F(DimensionTableTest, DuplicateKeyRejected) {
  ASSERT_OK_AND_ASSIGN(
      DimensionTable dim,
      DimensionTable::Create(pool_.get(), "dim0", DimSchema()));
  const Schema schema = DimSchema();
  Tuple row(&schema);
  row.SetInt32(0, 5);
  ASSERT_OK(row.SetString(1, "a"));
  ASSERT_OK(row.SetString(2, "b"));
  ASSERT_OK(dim.Append(row));
  EXPECT_TRUE(dim.Append(row).IsAlreadyExists());
}

TEST_F(DimensionTableTest, ValueCodeLookup) {
  ASSERT_OK_AND_ASSIGN(
      DimensionTable dim,
      DimensionTable::Create(pool_.get(), "dim0", DimSchema()));
  const Schema schema = DimSchema();
  for (int key = 0; key < 6; ++key) {
    Tuple row(&schema);
    row.SetInt32(0, key);
    ASSERT_OK(row.SetString(1, "V" + std::to_string(key % 2)));
    ASSERT_OK(row.SetString(2, "W"));
    ASSERT_OK(dim.Append(row));
  }
  ASSERT_OK_AND_ASSIGN(int32_t code, dim.ValueCode(1, StringPrefixKey("V1")));
  EXPECT_EQ(code, 1);
  EXPECT_TRUE(dim.ValueCode(1, StringPrefixKey("V9")).status().IsNotFound());
  EXPECT_TRUE(dim.ValueCode(0, 0).status().IsInvalidArgument());  // key col
}

TEST_F(DimensionTableTest, LevelMapMatchesRowCodes) {
  ASSERT_OK_AND_ASSIGN(
      DimensionTable dim,
      DimensionTable::Create(pool_.get(), "dim0", DimSchema()));
  const Schema schema = DimSchema();
  for (int key = 0; key < 10; ++key) {
    Tuple row(&schema);
    row.SetInt32(0, key);
    ASSERT_OK(row.SetString(1, "G" + std::to_string(key / 4)));
    ASSERT_OK(row.SetString(2, "H"));
    ASSERT_OK(dim.Append(row));
  }
  ASSERT_OK_AND_ASSIGN(std::vector<int32_t> level, dim.LevelMap(1));
  ASSERT_EQ(level.size(), 10u);
  for (uint32_t row = 0; row < 10; ++row) {
    ASSERT_OK_AND_ASSIGN(int32_t code, dim.RowAttrCode(row, 1));
    EXPECT_EQ(level[row], code);
  }
}

TEST_F(DimensionTableTest, ReopenRebuildsCaches) {
  PageId first = kInvalidPageId;
  const Schema schema = DimSchema();
  {
    ASSERT_OK_AND_ASSIGN(
        DimensionTable dim,
        DimensionTable::Create(pool_.get(), "dim0", DimSchema()));
    first = dim.first_page();
    for (int key = 0; key < 20; ++key) {
      Tuple row(&schema);
      row.SetInt32(0, key);
      ASSERT_OK(row.SetString(1, "X" + std::to_string(key % 5)));
      ASSERT_OK(row.SetString(2, "Y" + std::to_string(key % 2)));
      ASSERT_OK(dim.Append(row));
    }
  }
  ASSERT_OK(pool_->FlushAndEvictAll());
  ASSERT_OK_AND_ASSIGN(
      DimensionTable dim,
      DimensionTable::Open(pool_.get(), "dim0", DimSchema(), first));
  EXPECT_EQ(dim.num_rows(), 20u);
  ASSERT_OK_AND_ASSIGN(const AttributeDictionary* d1, dim.Dictionary(1));
  EXPECT_EQ(d1->cardinality(), 5);
  ASSERT_OK_AND_ASSIGN(uint32_t row, dim.RowOfKey(13));
  EXPECT_EQ(row, 13u);
  ASSERT_OK_AND_ASSIGN(int32_t code, dim.RowAttrCode(13, 1));
  EXPECT_EQ(code, 3);
}

}  // namespace
}  // namespace paradise
