// Shared gtest helpers: temp-file management and small database builders.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/status.h"
#include "gen/datasets.h"
#include "query/result.h"
#include "schema/loader.h"

namespace paradise::testing {

/// gtest-friendly Status assertions.
#define ASSERT_OK(expr)                                 \
  do {                                                  \
    const ::paradise::Status _st = (expr);              \
    ASSERT_TRUE(_st.ok()) << _st.ToString();            \
  } while (0)

#define EXPECT_OK(expr)                                 \
  do {                                                  \
    const ::paradise::Status _st = (expr);              \
    EXPECT_TRUE(_st.ok()) << _st.ToString();            \
  } while (0)

/// Unwraps a Result or fails the test.
#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                          \
  ASSERT_OK_AND_ASSIGN_IMPL(                                      \
      PARADISE_RESULT_CONCAT(_assign_tmp_, __LINE__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, rexpr)                \
  auto tmp = (rexpr);                                             \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();               \
  lhs = std::move(tmp).value()

/// A unique temp file path removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             ("paradise_test_" + tag + "_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter++)))
                .string();
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A tiny 3-dimensional cube config for fast unit tests: dims 6x8x10, two
/// hierarchy levels each, `valid` valid cells.
inline gen::GenConfig TinyConfig(uint64_t valid = 120, uint64_t seed = 7) {
  gen::GenConfig config;
  config.dims.resize(3);
  const uint32_t sizes[3] = {6, 8, 10};
  const uint32_t cards1[3] = {3, 4, 5};
  const uint32_t cards2[3] = {2, 2, 2};
  for (size_t d = 0; d < 3; ++d) {
    config.dims[d].name = "dim" + std::to_string(d);
    config.dims[d].size = sizes[d];
    config.dims[d].level_cardinalities = {cards1[d], cards2[d]};
  }
  config.num_valid_cells = valid;
  config.seed = seed;
  config.chunk_extents = {3, 4, 5};
  return config;
}

inline DatabaseOptions SmallDbOptions() {
  DatabaseOptions options;
  options.storage.page_size = 4096;
  options.storage.buffer_pool_pages = 256;
  options.storage.pages_per_extent = 8;
  return options;
}

/// Brute-force reference evaluation of a consolidation query directly over
/// the generated data, independent of every storage structure and algorithm
/// under test. Group codes match the engines' dictionary codes because the
/// generator's level codes are assigned in first-appearance (key) order.
inline query::GroupedResult BruteForce(const gen::SyntheticDataset& data,
                                       const query::ConsolidationQuery& q) {
  const auto& dims = data.config.dims;
  // The engines label groups with dictionary codes assigned in
  // first-appearance (key) order; replicate that relabeling of the raw
  // generator level codes.
  auto dict_code_map = [&](size_t d, size_t level) {
    const uint32_t card = dims[d].level_cardinalities[level - 1];
    std::vector<int32_t> remap(card, -1);
    int32_t next = 0;
    for (uint32_t key = 0; key < dims[d].size; ++key) {
      const uint32_t code = dims[d].LevelCode(level, key);
      if (remap[code] == -1) remap[code] = next++;
    }
    return remap;
  };
  std::vector<std::vector<std::vector<int32_t>>> remaps(dims.size());
  for (size_t d = 0; d < dims.size(); ++d) {
    if (q.dims[d].group_by_col.has_value()) {
      remaps[d].resize(*q.dims[d].group_by_col + 1);
      remaps[d][*q.dims[d].group_by_col] =
          dict_code_map(d, *q.dims[d].group_by_col);
    }
  }
  // Resolve each selection into the set of accepted level codes.
  std::vector<std::vector<std::set<uint32_t>>> accepted(dims.size());
  for (size_t d = 0; d < dims.size(); ++d) {
    for (const query::Selection& s : q.dims[d].selections) {
      std::set<uint32_t> codes;
      const uint32_t card = dims[d].level_cardinalities[s.attr_col - 1];
      for (uint32_t c = 0; c < card; ++c) {
        const std::string value = gen::AttrValue(d, s.attr_col, c);
        for (const query::Literal& lit : s.values) {
          if (query::LiteralToString(lit) == value) codes.insert(c);
        }
      }
      accepted[d].push_back(std::move(codes));
    }
  }

  std::map<std::vector<int32_t>, query::AggState> groups;
  for (size_t i = 0; i < data.cell_global_indices.size(); ++i) {
    const std::vector<int32_t> keys =
        data.CellKeys(data.cell_global_indices[i]);
    bool pass = true;
    std::vector<int32_t> group;
    for (size_t d = 0; d < dims.size() && pass; ++d) {
      const uint32_t key = static_cast<uint32_t>(keys[d]);
      for (size_t s = 0; s < q.dims[d].selections.size(); ++s) {
        const uint32_t code =
            dims[d].LevelCode(q.dims[d].selections[s].attr_col, key);
        if (!accepted[d][s].contains(code)) {
          pass = false;
          break;
        }
      }
      if (pass && q.dims[d].group_by_col.has_value()) {
        const size_t col = *q.dims[d].group_by_col;
        group.push_back(remaps[d][col][dims[d].LevelCode(col, key)]);
      }
    }
    if (pass) groups[group].Add(data.measures[i]);
  }
  query::GroupedResult result;
  for (const auto& [group, agg] : groups) {
    result.Add(query::ResultRow{group, agg});
  }
  result.SortCanonical();
  return result;
}

}  // namespace paradise::testing
