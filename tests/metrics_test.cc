// Observability-layer tests: histogram bucketing known-answers, registry
// concurrency, trace span nesting, JSON golden output, the PhaseTimer trace
// sink, and the disabled-mode zero-allocation guarantee.
#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json_writer.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "query/engine.h"

// Global allocation counter backing the zero-allocation test. Replacing
// operator new in this TU affects the whole binary, so the override only
// counts — behavior is unchanged.
static std::atomic<uint64_t> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace paradise {
namespace {

// ---------------------------------------------------------------- histogram

TEST(HistogramTest, BucketIndexKnownAnswers) {
  // Bucket 0 holds exactly 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64u);
}

TEST(HistogramTest, BucketBoundsKnownAnswers) {
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(4), 8u);
  EXPECT_EQ(Histogram::BucketUpperBound(4), 15u);
  EXPECT_EQ(Histogram::BucketLowerBound(64), uint64_t{1} << 63);
  EXPECT_EQ(Histogram::BucketUpperBound(64), UINT64_MAX);
  // Every value lands inside its own bucket's bounds.
  const uint64_t probes[] = {0, 1, 2, 100, 4096, UINT64_MAX};
  for (uint64_t v : probes) {
    const size_t i = Histogram::BucketIndex(v);
    EXPECT_GE(v, Histogram::BucketLowerBound(i)) << v;
    EXPECT_LE(v, Histogram::BucketUpperBound(i)) << v;
  }
}

TEST(HistogramTest, RecordAggregates) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  for (uint64_t v : {10ull, 20ull, 30ull, 40ull}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 100u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 40u);
  EXPECT_DOUBLE_EQ(h.Mean(), 25.0);
  // 10 → bucket 4 ([8,16)); 20, 30 → bucket 5 ([16,32)); 40 → bucket 6.
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_EQ(h.bucket_count(5), 2u);
  EXPECT_EQ(h.bucket_count(6), 1u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, PercentileUpperBoundClampsToObservedMax) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(10);
  h.Record(1000);
  // p50 falls in the [8,16) bucket → upper edge 15.
  EXPECT_EQ(h.PercentileUpperBound(0.50), 15u);
  // p99+ falls in 1000's bucket ([512,1024), edge 1023) but is clamped to
  // the observed max.
  EXPECT_EQ(h.PercentileUpperBound(1.0), 1000u);
  EXPECT_EQ(h.PercentileUpperBound(0.0), 15u);
  Histogram empty;
  EXPECT_EQ(empty.PercentileUpperBound(0.5), 0u);
}

// ----------------------------------------------------------------- registry

TEST(MetricsRegistryTest, HandlesAreStableAndNamespaced) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("x");
  EXPECT_EQ(reg.GetCounter("x"), c);
  // Same name, different kind → distinct metric.
  Gauge* g = reg.GetGauge("x");
  Histogram* h = reg.GetHistogram("x");
  EXPECT_NE(static_cast<void*>(c), static_cast<void*>(g));
  c->Increment(3);
  g->Set(-7);
  h->Record(5);
  EXPECT_EQ(reg.FindCounter("x")->value(), 3u);
  EXPECT_EQ(reg.FindGauge("x")->value(), -7);
  EXPECT_EQ(reg.FindHistogram("x")->count(), 1u);
  EXPECT_EQ(reg.FindCounter("absent"), nullptr);
  reg.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.CounterNames(), std::vector<std::string>{"x"});
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndRecording) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        // Mix of shared and per-thread names so registration races with
        // lookup and with recording on already-registered metrics.
        reg.GetCounter("shared")->Increment();
        reg.GetCounter("thread." + std::to_string(t))->Increment();
        reg.GetHistogram("lat")->Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.FindCounter("shared")->value(),
            static_cast<uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.FindCounter("thread." + std::to_string(t))->value(),
              static_cast<uint64_t>(kIters));
  }
  EXPECT_EQ(reg.FindHistogram("lat")->count(),
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistryTest, DefaultIsProcessWide) {
  Counter* a = MetricsRegistry::Default().GetCounter("metrics_test.default");
  Counter* b = MetricsRegistry::Default().GetCounter("metrics_test.default");
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistryTest, ToJsonGolden) {
  MetricsRegistry reg;
  reg.GetCounter("b.count")->Increment(2);
  reg.GetCounter("a.count")->Increment(1);
  reg.GetGauge("pool.pages")->Set(-5);
  Histogram* h = reg.GetHistogram("io.micros");
  h->Record(0);
  h->Record(3);
  h->Record(3);
  // Deterministic byte-for-byte: maps iterate sorted, histogram stats are
  // exact functions of the recorded values.
  EXPECT_EQ(reg.ToJson(),
            "{\"counters\":{\"a.count\":1,\"b.count\":2},"
            "\"gauges\":{\"pool.pages\":-5},"
            "\"histograms\":{\"io.micros\":{"
            "\"count\":3,\"sum\":6,\"min\":0,\"max\":3,\"mean\":2.000000,"
            "\"p50\":3,\"p95\":3,\"p99\":3,"
            "\"buckets\":[[0,1],[2,2]]}}}");
}

// -------------------------------------------------------------- json writer

TEST(JsonWriterTest, EscapesAndNesting) {
  JsonWriter w;
  w.BeginObject();
  w.KV("s", std::string_view("a\"b\\c\nd"));
  w.Key("arr");
  w.BeginArray();
  w.Uint(1);
  w.Int(-2);
  w.Bool(true);
  w.Null();
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"arr\":[1,-2,true,null],"
            "\"nested\":{}}");
}

// -------------------------------------------------------------------- trace

TEST(ExecutionTraceTest, SpansNestUnderInnermostOpen) {
  ExecutionTrace t("query");
  const uint64_t plan = t.BeginSpan("plan");
  t.EndSpan(plan);
  const uint64_t scan = t.BeginSpan("scan");
  const uint64_t chunk = t.BeginSpan("chunk");
  t.EndSpan(chunk);
  t.EndSpan(scan);
  t.Finish();

  TraceSpan root = t.Snapshot();
  EXPECT_EQ(root.name, "query");
  EXPECT_GE(root.duration_micros, 0);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->name, "plan");
  EXPECT_EQ(root.children[1]->name, "scan");
  ASSERT_EQ(root.children[1]->children.size(), 1u);
  EXPECT_EQ(root.children[1]->children[0]->name, "chunk");

  TraceSpan found;
  EXPECT_TRUE(t.FindSpan("chunk", &found));
  EXPECT_GE(found.duration_micros, 0);
  EXPECT_FALSE(t.FindSpan("no-such-span", nullptr));
}

TEST(ExecutionTraceTest, EndSpanClosesForgottenDescendants) {
  ExecutionTrace t;
  const uint64_t outer = t.BeginSpan("outer");
  (void)t.BeginSpan("inner-forgotten");
  t.EndSpan(outer);  // must close "inner-forgotten" too
  TraceSpan inner;
  ASSERT_TRUE(t.FindSpan("inner-forgotten", &inner));
  EXPECT_GE(inner.duration_micros, 0);
  // Double-close and unknown ids are ignored.
  t.EndSpan(outer);
  t.EndSpan(12345);
  t.Finish();
  t.Finish();
  TraceSpan root = t.Snapshot();
  EXPECT_GE(root.duration_micros, 0);
}

TEST(ExecutionTraceTest, CompleteSpansAndJsonShape) {
  ExecutionTrace t("q");
  const uint64_t scan = t.BeginSpan("scan");
  t.AddCompleteSpan("precomputed", 5, 17);
  t.EndSpan(scan);
  t.Finish();
  const std::string json = t.ToJson();
  EXPECT_NE(json.find("\"name\":\"q\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"scan\""), std::string::npos);
  EXPECT_NE(
      json.find("{\"name\":\"precomputed\",\"start_micros\":5,"
                "\"duration_micros\":17}"),
      std::string::npos);
  // Exactly one "children" array under root, one under scan.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(PhaseTimerTest, TraceSinkRecordsSpansAndIsNotCopied) {
  ExecutionTrace trace("q");
  PhaseTimer timer;
  timer.set_trace(&trace);
  {
    ScopedPhase outer(&timer, "scan");
    ScopedPhase inner(&timer, "aggregate");
  }
  PhaseTimer copy(timer);
  EXPECT_EQ(copy.trace(), nullptr);  // copies must not keep feeding spans
  EXPECT_EQ(copy.Micros("scan"), timer.Micros("scan"));
  PhaseTimer assigned;
  assigned = timer;
  EXPECT_EQ(assigned.trace(), nullptr);
  timer.set_trace(nullptr);
  { ScopedPhase after(&timer, "untraced"); }
  trace.Finish();

  TraceSpan root = trace.Snapshot();
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0]->name, "scan");
  ASSERT_EQ(root.children[0]->children.size(), 1u);
  EXPECT_EQ(root.children[0]->children[0]->name, "aggregate");
  EXPECT_FALSE(trace.FindSpan("untraced", nullptr));
  // Flat totals still recorded for all three phases.
  EXPECT_GE(timer.Micros("scan"), 0);
  EXPECT_GE(timer.Micros("untraced"), 0);
}

// ---------------------------------------------------- ExecutionStats schema

TEST(ExecutionStatsTest, ToJsonCarriesDocumentedSchema) {
  ExecutionStats stats;
  stats.seconds = 1.5;
  stats.aux = 42;
  stats.io.logical_reads = 10;
  stats.io.hits = 7;
  stats.io.disk_reads = 3;
  stats.io.seq_disk_reads = 2;
  stats.io.rand_disk_reads = 1;
  stats.phases.Add("scan", 1000);
  const std::string json = stats.ToJson();
  for (const char* key :
       {"\"seconds\":", "\"modeled_seconds\":", "\"aux\":42", "\"io\":",
        "\"logical_reads\":10", "\"hits\":7", "\"disk_reads\":3",
        "\"seq_disk_reads\":2", "\"rand_disk_reads\":1", "\"disk_writes\":0",
        "\"evictions\":0", "\"read_retries\":0", "\"coalesced_reads\":0",
        "\"prefetched\":0", "\"prefetch_hits\":0", "\"prefetch_wasted\":0",
        "\"phases\":", "\"scan\":1000"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // No trace attached → no trace key.
  EXPECT_EQ(json.find("\"trace\":"), std::string::npos);

  stats.trace = std::make_shared<ExecutionTrace>("query:array");
  stats.trace->Finish();
  const std::string traced = stats.ToJson();
  EXPECT_NE(traced.find("\"trace\":{\"name\":\"query:array\""),
            std::string::npos);
}

// ----------------------------------------------------- disabled-mode cost

TEST(DisabledModeTest, RecordingPathsDoNotAllocate) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("hot.counter");
  Gauge* g = reg.GetGauge("hot.gauge");
  Histogram* h = reg.GetHistogram("hot.histogram");
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (uint64_t i = 0; i < 10000; ++i) {
    c->Increment();
    g->Add(1);
    h->Record(i);
  }
  // A null trace makes TraceScope a no-op — the disabled-tracing hot path.
  for (int i = 0; i < 1000; ++i) {
    TraceScope scope(nullptr, "not-traced");
  }
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "metric recording must never allocate";
}

}  // namespace
}  // namespace paradise
