// B-tree join-index selection plan tests: agreement with brute force and
// the bitmap plan, opt-in build behaviour, and persistence across reopen.
#include <gtest/gtest.h>

#include "query/engine.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

DatabaseOptions WithJoinIndexes() {
  DatabaseOptions options = SmallDbOptions();
  options.build_btree_join_indexes = true;
  return options;
}

class BTreeSelectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("btreesel");
    ASSERT_OK_AND_ASSIGN(data_, gen::Generate(TinyConfig(350, 83)));
    ASSERT_OK_AND_ASSIGN(
        db_, BuildDatabaseFromDataset(file_->path(), data_,
                                      WithJoinIndexes()));
  }

  std::unique_ptr<TempFile> file_;
  gen::SyntheticDataset data_;
  std::unique_ptr<Database> db_;
};

TEST_F(BTreeSelectTest, MatchesBruteForceAndBitmap) {
  for (const query::ConsolidationQuery& q :
       {gen::Query2(3), gen::Query3(3, 2)}) {
    const query::GroupedResult expected = BruteForce(data_, q);
    ASSERT_OK_AND_ASSIGN(Execution btree,
                         RunQuery(db_.get(), EngineKind::kBTreeSelect, q));
    EXPECT_TRUE(btree.result.SameAs(expected));
    ASSERT_OK_AND_ASSIGN(Execution bitmap,
                         RunQuery(db_.get(), EngineKind::kBitmap, q));
    EXPECT_TRUE(btree.result.SameAs(bitmap.result));
  }
}

TEST_F(BTreeSelectTest, AuxCountsQualifyingTuples) {
  const query::ConsolidationQuery q = gen::Query2(3);
  ASSERT_OK_AND_ASSIGN(Execution exec,
                       RunQuery(db_.get(), EngineKind::kBTreeSelect, q));
  uint64_t expected = 0;
  for (const auto& row : BruteForce(data_, q).rows()) {
    expected += row.agg.count;
  }
  EXPECT_EQ(exec.stats.aux, expected);
}

TEST_F(BTreeSelectTest, RequiresSelection) {
  EXPECT_TRUE(RunQuery(db_.get(), EngineKind::kBTreeSelect, gen::Query1(3))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(BTreeSelectTest, MultiValueAndMultiAttrSelections) {
  query::ConsolidationQuery q = gen::Query1(3);
  q.dims[0].selections.push_back(query::Selection{
      2,
      {query::Literal{gen::AttrValue(0, 2, 0)},
       query::Literal{gen::AttrValue(0, 2, 1)}}});
  q.dims[2].selections.push_back(
      query::Selection{1, {query::Literal{gen::AttrValue(2, 1, 2)}}});
  q.dims[2].selections.push_back(
      query::Selection{2, {query::Literal{gen::AttrValue(2, 2, 1)}}});
  ASSERT_OK_AND_ASSIGN(Execution exec,
                       RunQuery(db_.get(), EngineKind::kBTreeSelect, q));
  EXPECT_TRUE(exec.result.SameAs(BruteForce(data_, q)));
}

TEST_F(BTreeSelectTest, EmptySelectionYieldsEmptyResult) {
  query::ConsolidationQuery q = gen::Query1(3);
  q.dims[0].selections.push_back(
      query::Selection{1, {query::Literal{std::string("NOPE")}}});
  ASSERT_OK_AND_ASSIGN(Execution exec,
                       RunQuery(db_.get(), EngineKind::kBTreeSelect, q));
  EXPECT_EQ(exec.result.num_groups(), 0u);
  EXPECT_EQ(exec.stats.aux, 0u);
}

TEST_F(BTreeSelectTest, SurvivesReopen) {
  ASSERT_OK(db_->storage()->Close());
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> reopened,
                       Database::Open(file_->path(), WithJoinIndexes()));
  const query::ConsolidationQuery q = gen::Query2(3);
  ASSERT_OK_AND_ASSIGN(
      Execution exec, RunQuery(reopened.get(), EngineKind::kBTreeSelect, q));
  EXPECT_TRUE(exec.result.SameAs(BruteForce(data_, q)));
}

TEST(BTreeSelectOptIn, FailsWithoutBuiltIndexes) {
  TempFile file("btreesel_optout");
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromConfig(file.path(), TinyConfig(100),
                              SmallDbOptions()));  // indexes not built
  EXPECT_TRUE(RunQuery(db.get(), EngineKind::kBTreeSelect, gen::Query2(3))
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace paradise
