// Tests for the page-format-v2 CRC32C checksum layer: round-tripping
// checksummed pages, auto-detecting and reading legacy (seed-format) v1
// files, and detecting single-bit corruption anywhere in a built database
// file — chunk blobs, B-tree nodes, bitmap pages and the catalog alike.
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "query/engine.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/storage_manager.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

StorageOptions SmallOptions() {
  StorageOptions o;
  o.page_size = 4096;
  o.buffer_pool_pages = 16;
  o.pages_per_extent = 4;
  return o;
}

/// XORs one byte of the file at `offset` with `mask`.
void FlipByteInFile(const std::string& path, uint64_t offset, char mask) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  char byte = 0;
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
  byte = static_cast<char>(byte ^ mask);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
  ASSERT_EQ(std::fclose(f), 0);
}

TEST(ChecksumTest, RoundTripChecksummedPages) {
  TempFile file("crc_roundtrip");
  StorageOptions options = SmallOptions();
  // Pin v2: this test covers the plain checksummed layout without the v3
  // manifest pages.
  options.format_version = page_header::kFormatChecksummed;
  std::vector<PageId> ids;
  {
    DiskManager disk;
    ASSERT_OK(disk.Create(file.path(), options));
    EXPECT_EQ(disk.format_version(), page_header::kFormatChecksummed);
    for (int i = 0; i < 5; ++i) {
      ASSERT_OK_AND_ASSIGN(PageId id, disk.AllocatePage());
      std::vector<char> page(options.page_size,
                             static_cast<char>('a' + i));
      ASSERT_OK(disk.WritePage(id, page.data()));
      ids.push_back(id);
    }
    ASSERT_OK(disk.Close());
  }
  DiskManager disk;
  ASSERT_OK(disk.Open(file.path(), options));
  EXPECT_EQ(disk.format_version(), page_header::kFormatChecksummed);
  for (size_t i = 0; i < ids.size(); ++i) {
    std::vector<char> readback(options.page_size);
    ASSERT_OK(disk.ReadPage(ids[i], readback.data()));
    EXPECT_EQ(readback,
              std::vector<char>(options.page_size,
                                static_cast<char>('a' + i)));
  }
}

TEST(ChecksumTest, DetectsSingleBitFlipInDataPage) {
  TempFile file("crc_flip");
  const StorageOptions options = SmallOptions();
  PageId id = kInvalidPageId;
  {
    DiskManager disk;
    ASSERT_OK(disk.Create(file.path(), options));
    ASSERT_OK_AND_ASSIGN(id, disk.AllocatePage());
    std::vector<char> page(options.page_size, 'x');
    ASSERT_OK(disk.WritePage(id, page.data()));
    ASSERT_OK(disk.Close());
  }
  const uint64_t stride = options.page_size + page_header::kPageTrailerBytes;
  FlipByteInFile(file.path(), id * stride + 123, 0x01);

  DiskManager disk;
  ASSERT_OK(disk.Open(file.path(), options));
  std::vector<char> readback(options.page_size);
  const Status st = disk.ReadPage(id, readback.data());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("page " + std::to_string(id)),
            std::string::npos)
      << st.ToString();
}

TEST(ChecksumTest, DetectsCorruptHeaderAtOpen) {
  TempFile file("crc_header");
  const StorageOptions options = SmallOptions();
  {
    DiskManager disk;
    ASSERT_OK(disk.Create(file.path(), options));
    ASSERT_OK(disk.Close());
  }
  // Flip a byte past the structured header fields; only the page checksum
  // can notice it.
  FlipByteInFile(file.path(), page_header::kHeaderBytes + 64, 0x10);
  DiskManager disk;
  const Status st = disk.Open(file.path(), options);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("header"), std::string::npos) << st.ToString();
}

TEST(ChecksumTest, WritesLegacyV1FormatWhenRequested) {
  TempFile file("crc_v1");
  StorageOptions options = SmallOptions();
  options.format_version = page_header::kFormatLegacy;
  PageId id = kInvalidPageId;
  {
    DiskManager disk;
    ASSERT_OK(disk.Create(file.path(), options));
    EXPECT_EQ(disk.format_version(), page_header::kFormatLegacy);
    ASSERT_OK_AND_ASSIGN(id, disk.AllocatePage());
    std::vector<char> page(options.page_size, 'y');
    ASSERT_OK(disk.WritePage(id, page.data()));
    ASSERT_OK(disk.Close());
  }
  // A v1 file is laid out without per-page trailers, exactly page-sized.
  EXPECT_EQ(std::filesystem::file_size(file.path()),
            2 * options.page_size);
  // Open auto-detects the version regardless of what options request.
  options.format_version = page_header::kFormatChecksummed;
  DiskManager disk;
  ASSERT_OK(disk.Open(file.path(), options));
  EXPECT_EQ(disk.format_version(), page_header::kFormatLegacy);
  std::vector<char> readback(options.page_size);
  ASSERT_OK(disk.ReadPage(id, readback.data()));
  EXPECT_EQ(readback, std::vector<char>(options.page_size, 'y'));
}

TEST(ChecksumTest, RejectsFutureFormatVersions) {
  TempFile file("crc_future");
  const StorageOptions options = SmallOptions();
  {
    DiskManager disk;
    ASSERT_OK(disk.Create(file.path(), options));
    ASSERT_OK(disk.Close());
  }
  // Bump the stored version field past every supported format and refresh
  // nothing else; Open must refuse before it misinterprets the layout.
  {
    std::FILE* f = std::fopen(file.path().c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    char version[4] = {page_header::kMaxSupportedFormat + 1, 0, 0, 0};
    ASSERT_EQ(std::fseek(f, page_header::kVersionOffset, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(version, 1, 4, f), 4u);
    ASSERT_EQ(std::fclose(f), 0);
  }
  DiskManager disk;
  const Status st = disk.Open(file.path(), options);
  EXPECT_TRUE(st.IsNotSupported()) << st.ToString();
}

TEST(ChecksumTest, FileSizeAccountsForTrailers) {
  TempFile file("crc_size");
  StorageManager sm;
  ASSERT_OK(sm.Create(file.path(), SmallOptions()));
  ASSERT_OK_AND_ASSIGN(PageGuard guard, sm.pool()->NewPage());
  guard.mutable_data()[0] = 1;
  guard.Release();
  const uint64_t pages = sm.disk()->page_count();
  const uint64_t expected_bytes =
      pages * (sm.disk()->page_size() + page_header::kPageTrailerBytes);
  EXPECT_EQ(sm.FileSizeBytes(), expected_bytes);
  ASSERT_OK(sm.Close());
  EXPECT_EQ(std::filesystem::file_size(file.path()), expected_bytes);
}

/// A database written in the seed's pre-checksum format must keep opening
/// and answering queries correctly with this build.
TEST(ChecksumTest, SeedFormatDatabaseOpensAndQueries) {
  TempFile file("crc_seed_compat");
  const gen::GenConfig config = TinyConfig(90, 11);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  DatabaseOptions options = SmallDbOptions();
  options.storage.format_version = page_header::kFormatLegacy;
  options.build_btree_join_indexes = true;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                         BuildDatabaseFromDataset(file.path(), data, options));
    EXPECT_EQ(db->storage()->disk()->format_version(),
              page_header::kFormatLegacy);
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(file.path(), SmallDbOptions()));
  EXPECT_EQ(db->storage()->disk()->format_version(),
            page_header::kFormatLegacy);
  const query::ConsolidationQuery q = gen::Query3(3, 2);
  const query::GroupedResult expected = BruteForce(data, q);
  for (EngineKind kind :
       {EngineKind::kArray, EngineKind::kStarJoin, EngineKind::kBitmap,
        EngineKind::kLeftDeep}) {
    ASSERT_OK_AND_ASSIGN(Execution exec, RunQuery(db.get(), kind, q));
    EXPECT_TRUE(exec.result.SameAs(expected))
        << EngineKindToString(kind) << " diverges on a v1 file";
  }
}

/// Sweeps a single-bit flip across every page of a fully built database
/// file — covering array chunk blobs, B-tree nodes, bitmap pages, heap
/// pages and the catalog object — and requires the checksum layer to report
/// each one as corruption naming the page.
TEST(ChecksumTest, DetectsBitFlipOnEveryPageOfBuiltDatabase) {
  TempFile file("crc_sweep");
  const gen::GenConfig config = TinyConfig(60, 5);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  DatabaseOptions options = SmallDbOptions();
  options.build_btree_join_indexes = true;
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                         BuildDatabaseFromDataset(file.path(), data, options));
  }
  const StorageOptions storage = options.storage;
  const uint64_t stride =
      storage.page_size + page_header::kPageTrailerBytes;
  uint64_t page_count = 0;
  {
    DiskManager disk;
    ASSERT_OK(disk.Open(file.path(), storage));
    page_count = disk.page_count();
  }
  ASSERT_GT(page_count, 4u);
  std::vector<char> buf(storage.page_size);
  for (PageId id = 1; id < page_count; ++id) {
    const uint64_t offset = id * stride + 1000;
    FlipByteInFile(file.path(), offset, 0x20);
    DiskManager disk;
    ASSERT_OK(disk.Open(file.path(), storage));
    const Status st = disk.ReadPage(id, buf.data());
    EXPECT_TRUE(st.IsCorruption())
        << "page " << id << ": " << st.ToString();
    EXPECT_NE(st.ToString().find("page " + std::to_string(id)),
              std::string::npos)
        << st.ToString();
    ASSERT_OK(disk.Close());
    FlipByteInFile(file.path(), offset, 0x20);  // restore
  }
  // With every flip restored the database must be fully intact again.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(file.path(), options));
  const query::ConsolidationQuery q = gen::Query1(3);
  ASSERT_OK_AND_ASSIGN(Execution exec,
                       RunQuery(db.get(), EngineKind::kArray, q));
  EXPECT_TRUE(exec.result.SameAs(BruteForce(data, q)));
}

}  // namespace
}  // namespace paradise
