// Chaos battery for the olapd resilience stack (DESIGN.md choice 13):
// deadlines, cooperative cancellation, admission shedding, socket read
// timeouts, Stop() interrupts, and the headline ChaosMixedLoad — thousands
// of queries from healthy clients (mixed deadlines and cancels) interleaved
// with clients whose sockets inject short reads/writes, stalls, mid-frame
// disconnects and truncations (server/fault_socket.h). The invariants under
// fire: no hang, no leaked session or worker, every successful reply
// bit-identical to the single-threaded golden, and every abandoned query a
// typed QUERY_TIMEOUT / CANCELLED on a connection that stays open. CI runs
// this suite under ASan and TSan with a fixed seed matrix.
//
// Environment knobs (CI seed matrix / quick local runs):
//   PARADISE_CHAOS_QUERIES  queries per client in ChaosMixedLoad
//   PARADISE_CHAOS_SEED     base PRNG seed for the chaos schedule
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/random.h"
#include "query/planner.h"
#include "query/sql.h"
#include "server/client.h"
#include "server/fault_socket.h"
#include "server/server.h"
#include "server/wire.h"
#include "test_util.h"

namespace paradise::server {
namespace {

using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

std::string ResultBytes(const query::GroupedResult& result) {
  std::string bytes;
  AppendGroupedResult(result, &bytes);
  return bytes;
}

class ServerChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("server_chaos");
    ASSERT_OK_AND_ASSIGN(data_, gen::Generate(TinyConfig(300, 41)));
    ASSERT_OK_AND_ASSIGN(
        db_, BuildDatabaseFromDataset(file_->path(), data_, SmallDbOptions()));
  }

  void StartServer(ServerOptions options) {
    server_ = std::make_unique<OlapServer>(db_.get(), options);
    ASSERT_OK(server_->Start());
  }

  std::unique_ptr<OlapClient> MustConnect(ClientOptions options = {}) {
    Result<std::unique_ptr<OlapClient>> client =
        OlapClient::Connect("127.0.0.1", server_->port(), options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(client).value() : nullptr;
  }

  static std::vector<std::string> Workload() {
    return {
        "select sum(volume), dim0.h01, dim1.h11, dim2.h21 from cube "
        "group by dim0.h01, dim1.h11, dim2.h21",
        "select sum(volume), dim1.h12, dim2.h22 from cube "
        "group by dim1.h12, dim2.h22",
        "select sum(volume), dim0.h01 from cube "
        "where dim1.h12 = '" + gen::AttrValue(1, 2, 0) + "' "
        "group by dim0.h01",
        "select avg(volume), dim2.h21 from cube "
        "where dim0.h02 = '" + gen::AttrValue(0, 2, 1) + "' "
        "group by dim2.h21",
    };
  }

  std::vector<std::string> Goldens(const std::vector<std::string>& workload) {
    std::vector<std::string> goldens;
    for (const std::string& sql : workload) {
      Result<SqlExecution> exec = RunSql(db_.get(), sql);
      EXPECT_TRUE(exec.ok()) << sql << ": " << exec.status().ToString();
      if (!exec.ok()) return {};
      exec->execution.result.SortCanonical();
      goldens.push_back(ResultBytes(exec->execution.result));
    }
    return goldens;
  }

  std::unique_ptr<TempFile> file_;
  gen::SyntheticDataset data_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<OlapServer> server_;
};

// --- engine-level token semantics ------------------------------------------

TEST_F(ServerChaosTest, PreFiredTokensReturnTypedStatusesWithoutRunning) {
  ASSERT_OK_AND_ASSIGN(
      query::ConsolidationQuery q,
      query::CompileSql(Workload()[0], db_->schema()));

  CancellationToken cancelled;
  cancelled.RequestCancel();
  RunQueryOptions options;
  options.cold = false;
  options.cancel = &cancelled;
  Result<Execution> exec = RunQuery(db_.get(), EngineKind::kArray, q, options);
  ASSERT_FALSE(exec.ok());
  EXPECT_TRUE(exec.status().IsCancelled()) << exec.status().ToString();

  CancellationToken expired;
  expired.set_deadline(std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1));
  options.cancel = &expired;
  exec = RunQuery(db_.get(), EngineKind::kArray, q, options);
  ASSERT_FALSE(exec.ok());
  EXPECT_TRUE(exec.status().IsDeadlineExceeded()) << exec.status().ToString();

  // A token armed with a generous deadline does not perturb the result.
  CancellationToken healthy;
  healthy.SetDeadlineAfterMs(60'000);
  options.cancel = &healthy;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    options.num_threads = threads;
    ASSERT_OK_AND_ASSIGN(Execution clean,
                         RunQuery(db_.get(), EngineKind::kArray, q, options));
    clean.result.SortCanonical();
    EXPECT_EQ(ResultBytes(clean.result), Goldens(Workload())[0])
        << "threads=" << threads;
  }
}

// --- wire-level deadline / cancel behavior ---------------------------------

TEST_F(ServerChaosTest, CancelStopsInFlightQuery) {
  ServerOptions options;
  options.artificial_query_delay_ms = 1000;
  StartServer(options);

  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  QueryRequest request;
  request.sql = Workload()[0];

  const auto start = std::chrono::steady_clock::now();
  ASSERT_OK(client->SendRaw(
      EncodeFrame(FrameType::kQuery, EncodeQueryRequest(request))));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_OK(client->Cancel());

  ASSERT_OK_AND_ASSIGN(Frame frame, client->ReadFrame());
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_EQ(frame.type, FrameType::kError);
  ASSERT_OK_AND_ASSIGN(ErrorReply error, DecodeErrorReply(frame.payload));
  EXPECT_EQ(error.error, WireError::kCancelled);
  EXPECT_EQ(error.status_code, StatusCode::kCancelled);
  // The 1000 ms artificial delay was abandoned shortly after the cancel.
  EXPECT_LT(elapsed_ms, 900.0);

  // The connection survives a cancelled query.
  ASSERT_OK(client->Ping());
  EXPECT_GE(server_->stats().cancelled, 1u);
  EXPECT_EQ(server_->stats().queries_failed, 0u);
  server_->Stop();
}

TEST_F(ServerChaosTest, DeadlineExpiresInFlightQuery) {
  ServerOptions options;
  options.artificial_query_delay_ms = 500;
  StartServer(options);

  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  QueryRequest request;
  request.sql = Workload()[0];
  request.deadline_ms = 50;

  const auto start = std::chrono::steady_clock::now();
  ASSERT_OK_AND_ASSIGN(OlapClient::Reply reply, client->Query(request));
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(reply.ok);
  EXPECT_EQ(reply.error.error, WireError::kQueryTimeout);
  EXPECT_EQ(reply.error.status_code, StatusCode::kDeadlineExceeded);
  // Within the deadline plus one slice's grace — nowhere near the 500 ms
  // the query wanted to run for.
  EXPECT_LT(elapsed_ms, 400.0);

  ASSERT_OK(client->Ping());
  EXPECT_GE(server_->stats().timeouts, 1u);
  EXPECT_EQ(server_->stats().queries_failed, 0u);
  server_->Stop();
}

TEST_F(ServerChaosTest, ServerDefaultDeadlineCapsRequests) {
  ServerOptions options;
  options.artificial_query_delay_ms = 500;
  options.default_deadline_ms = 50;
  StartServer(options);

  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  // The request asks for no deadline at all; the server-wide cap applies.
  ASSERT_OK_AND_ASSIGN(OlapClient::Reply reply,
                       client->Query(Workload()[0]));
  ASSERT_FALSE(reply.ok);
  EXPECT_EQ(reply.error.error, WireError::kQueryTimeout);
  server_->Stop();
}

TEST_F(ServerChaosTest, ExpiredWhileQueuedIsShedWithoutASlot) {
  ServerOptions options;
  options.max_inflight = 1;
  options.max_queued = 4;
  options.artificial_query_delay_ms = 400;
  StartServer(options);

  auto holder = MustConnect();
  auto queued = MustConnect();
  ASSERT_NE(holder, nullptr);
  ASSERT_NE(queued, nullptr);

  std::thread holder_thread([&] {
    Result<OlapClient::Reply> reply = holder->Query(Workload()[0]);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_TRUE(reply->ok);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The slot is held for ~400 ms but this deadline expires after 50: the
  // query must be shed from the wait queue, well before a slot frees up.
  QueryRequest request;
  request.sql = Workload()[1];
  request.deadline_ms = 50;
  const auto start = std::chrono::steady_clock::now();
  ASSERT_OK_AND_ASSIGN(OlapClient::Reply reply, queued->Query(request));
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(reply.ok);
  EXPECT_EQ(reply.error.error, WireError::kQueryTimeout);
  EXPECT_LT(elapsed_ms, 300.0);

  holder_thread.join();
  EXPECT_GE(server_->stats().shed_expired, 1u);
  EXPECT_GE(server_->admission().snapshot().shed_expired, 1u);
  EXPECT_EQ(server_->admission().snapshot().queued, 0u);
  server_->Stop();
}

// --- socket timeouts and Stop() interrupts ---------------------------------

TEST_F(ServerChaosTest, SlowLorisReadTimeoutClosesConnection) {
  ServerOptions options;
  options.read_timeout_ms = 100;
  StartServer(options);

  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  // Send only a prefix of a Ping frame's header, then stall forever. The
  // session must reap the connection after read_timeout_ms instead of
  // letting the half-frame pin its thread.
  const std::string frame = EncodeFrame(FrameType::kPing, "");
  ASSERT_OK(client->SendRaw(std::string_view(frame).substr(0, 5)));
  const auto start = std::chrono::steady_clock::now();
  Result<Frame> reply = client->ReadFrame();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(reply.ok());  // closed without a reply
  EXPECT_LT(elapsed_ms, 5'000.0);
  EXPECT_GE(server_->stats().read_timeouts, 1u);

  // A whole, well-formed frame on a fresh connection still round-trips.
  auto healthy = MustConnect();
  ASSERT_NE(healthy, nullptr);
  ASSERT_OK(healthy->Ping());
  server_->Stop();
}

TEST_F(ServerChaosTest, StopInterruptsMidFrameReceive) {
  StartServer(ServerOptions{});  // default read timeout: 30 s — far longer
                                 // than this test is willing to wait
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  const std::string frame = EncodeFrame(FrameType::kPing, "");
  ASSERT_OK(client->SendRaw(std::string_view(frame).substr(0, 5)));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // The session sits mid-frame in a poll-bounded read; Stop() must wake it
  // through the socket shutdown, not wait out the 30 s budget.
  const auto start = std::chrono::steady_clock::now();
  server_->Stop();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(seconds, 5.0) << "Stop() took " << seconds << "s";
}

TEST_F(ServerChaosTest, StopInterruptsInFlightQuery) {
  ServerOptions options;
  options.artificial_query_delay_ms = 5000;
  StartServer(options);

  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  QueryRequest request;
  request.sql = Workload()[0];
  ASSERT_OK(client->SendRaw(
      EncodeFrame(FrameType::kQuery, EncodeQueryRequest(request))));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The query has ~4.9 s of artificial delay left; Stop() flips its token
  // via the watcher's failed recv, so the session unwinds within one
  // slice's work.
  const auto start = std::chrono::steady_clock::now();
  server_->Stop();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(seconds, 4.0) << "Stop() took " << seconds << "s";
}

// --- the chaos harness ------------------------------------------------------

/// What one chaos/healthy client observed; summed across threads and
/// asserted at the end. Divergences and hangs are the only hard failures.
struct ChaosTally {
  uint64_t ok = 0;
  uint64_t divergences = 0;
  uint64_t timeouts = 0;
  uint64_t cancelled = 0;
  uint64_t busy = 0;
  uint64_t other_errors = 0;
  uint64_t transport_errors = 0;
  uint64_t reconnects = 0;
  uint64_t faults_injected = 0;
  uint64_t hangs = 0;

  void Accumulate(const ChaosTally& other) {
    ok += other.ok;
    divergences += other.divergences;
    timeouts += other.timeouts;
    cancelled += other.cancelled;
    busy += other.busy;
    other_errors += other.other_errors;
    transport_errors += other.transport_errors;
    reconnects += other.reconnects;
    faults_injected += other.faults_injected;
    hangs += other.hangs;
  }
};

/// Reads one frame off a FaultSocket with a hard wall-clock budget — the
/// harness's hang detector. Transport faults (injected or real) surface as
/// a non-OK status; a budget overrun is recorded as a hang.
Result<Frame> ReadFrameWithBudget(FaultSocket* sock, FrameDecoder* decoder,
                                  int budget_ms, bool* hung) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  char buf[16 * 1024];
  for (;;) {
    PARADISE_ASSIGN_OR_RETURN(std::optional<Frame> frame, decoder->Next());
    if (frame.has_value()) return std::move(*frame);
    if (std::chrono::steady_clock::now() >= deadline) {
      *hung = true;
      return Status::DeadlineExceeded("chaos hang detector fired");
    }
    PARADISE_ASSIGN_OR_RETURN(size_t n, sock->Recv(buf, sizeof(buf)));
    if (n == 0) return Status::IOError("server closed the connection");
    decoder->Append(buf, n);
  }
}

TEST_F(ServerChaosTest, ChaosMixedLoad) {
  const uint64_t queries_per_client = EnvOr("PARADISE_CHAOS_QUERIES", 1000);
  const uint64_t base_seed = EnvOr("PARADISE_CHAOS_SEED", 1);

  ServerOptions server_options;
  server_options.max_inflight = 8;
  server_options.max_queued = 64;
  server_options.artificial_query_delay_ms = 2;
  server_options.read_timeout_ms = 2'000;
  StartServer(server_options);

  const std::vector<std::string> workload = Workload();
  const std::vector<std::string> goldens = Goldens(workload);
  ASSERT_EQ(goldens.size(), workload.size());

  constexpr size_t kHealthyClients = 6;
  constexpr size_t kChaosClients = 6;
  constexpr int kHangBudgetMs = 20'000;

  std::vector<ChaosTally> tallies(kHealthyClients + kChaosClients);
  std::vector<std::thread> threads;
  threads.reserve(tallies.size());

  // Healthy clients: a plain OlapClient mixing normal queries, tight
  // deadlines (timeout guaranteed by the 2 ms artificial delay) and
  // immediate cancels. Their per-call timeout is the hang detector.
  for (size_t c = 0; c < kHealthyClients; ++c) {
    threads.emplace_back([&, c] {
      ChaosTally& tally = tallies[c];
      Random rng(base_seed * 7919 + c);
      ClientOptions client_options;
      client_options.call_timeout_ms = kHangBudgetMs;
      client_options.busy_retries = 5;
      client_options.retry_seed = base_seed * 31 + c;
      auto client = MustConnect(client_options);
      if (client == nullptr) {
        ++tally.transport_errors;
        return;
      }
      for (uint64_t i = 0; i < queries_per_client; ++i) {
        const size_t w = rng.Uniform(workload.size());
        QueryRequest request;
        request.sql = workload[w];
        request.num_threads = 1 + static_cast<uint32_t>(rng.Uniform(4));
        request.no_cache = rng.Bernoulli(0.3);
        const bool with_deadline = rng.Bernoulli(0.20);
        const bool with_cancel = !with_deadline && rng.Bernoulli(0.15);
        if (with_deadline) request.deadline_ms = 1;

        if (with_cancel) {
          // Split send/cancel/read so the cancel races real execution.
          Status sent = client->SendRaw(
              EncodeFrame(FrameType::kQuery, EncodeQueryRequest(request)));
          if (sent.ok()) sent = client->Cancel();
          if (!sent.ok()) {
            ++tally.transport_errors;
            break;
          }
          Result<Frame> frame = client->ReadFrame();
          if (!frame.ok()) {
            if (frame.status().IsDeadlineExceeded()) ++tally.hangs;
            ++tally.transport_errors;
            break;
          }
          if (frame->type == FrameType::kResult) {
            Result<ResultReply> result = DecodeResultReply(frame->payload);
            if (!result.ok()) {
              ++tally.transport_errors;
              break;
            }
            ++tally.ok;
            if (ResultBytes(result->result) != goldens[w]) ++tally.divergences;
          } else if (frame->type == FrameType::kError) {
            Result<ErrorReply> error = DecodeErrorReply(frame->payload);
            if (!error.ok()) {
              ++tally.transport_errors;
              break;
            }
            if (error->error == WireError::kCancelled) {
              ++tally.cancelled;
            } else {
              ++tally.other_errors;
            }
          }
          continue;
        }

        Result<OlapClient::Reply> reply = client->QueryWithRetry(request);
        if (!reply.ok()) {
          if (reply.status().IsDeadlineExceeded()) ++tally.hangs;
          ++tally.transport_errors;
          break;
        }
        if (reply->ok) {
          ++tally.ok;
          if (ResultBytes(reply->result.result) != goldens[w]) {
            ++tally.divergences;
          }
        } else if (reply->error.error == WireError::kQueryTimeout) {
          ++tally.timeouts;
        } else if (reply->error.error == WireError::kCancelled) {
          ++tally.cancelled;
        } else if (reply->error.error == WireError::kServerBusy) {
          ++tally.busy;
        } else {
          ++tally.other_errors;
        }
      }
    });
  }

  // Chaos clients: the same workload spoken over fault-injecting sockets.
  // Transport failures reconnect and continue; the invariants are no hangs
  // and bit-identical successful replies.
  for (size_t c = 0; c < kChaosClients; ++c) {
    threads.emplace_back([&, c] {
      ChaosTally& tally = tallies[kHealthyClients + c];
      Random rng(base_seed * 104729 + c);
      SocketFaultOptions faults;
      faults.seed = base_seed * 1299709 + c;
      faults.short_read_probability = 0.10;
      faults.short_write_probability = 0.10;
      faults.stall_probability = 0.05;
      faults.stall_ms = 5;
      faults.disconnect_probability = 0.05;
      faults.truncate_write_probability = 0.05;

      std::unique_ptr<FaultSocket> sock;
      std::unique_ptr<FrameDecoder> decoder;
      bool hello_ok = false;
      const auto reconnect = [&]() -> bool {
        if (sock != nullptr) tally.faults_injected += sock->injected_faults();
        faults.seed += 1;  // a fresh fault stream per connection
        Result<std::unique_ptr<FaultSocket>> dialed =
            FaultSocket::Dial("127.0.0.1", server_->port(), faults);
        if (!dialed.ok()) return false;
        sock = std::move(dialed).value();
        decoder = std::make_unique<FrameDecoder>();
        bool hung = false;
        Result<Frame> hello =
            ReadFrameWithBudget(sock.get(), decoder.get(), kHangBudgetMs,
                                &hung);
        if (hung) ++tally.hangs;
        hello_ok = hello.ok() && hello->type == FrameType::kHello;
        return hello_ok;
      };
      if (!reconnect()) {
        ++tally.transport_errors;
        return;
      }

      for (uint64_t i = 0; i < queries_per_client; ++i) {
        if (sock == nullptr || sock->closed() || !hello_ok) {
          ++tally.reconnects;
          if (!reconnect()) {
            ++tally.transport_errors;
            break;
          }
        }
        const size_t w = rng.Uniform(workload.size());
        QueryRequest request;
        request.sql = workload[w];
        request.num_threads = 1 + static_cast<uint32_t>(rng.Uniform(4));
        if (rng.Bernoulli(0.15)) request.deadline_ms = 1;

        Status sent = sock->Send(
            EncodeFrame(FrameType::kQuery, EncodeQueryRequest(request)));
        if (sent.ok() && rng.Bernoulli(0.10)) {
          sent = sock->Send(EncodeFrame(FrameType::kCancel, ""));
        }
        if (!sent.ok()) {
          ++tally.transport_errors;
          sock->Close();
          continue;
        }
        bool hung = false;
        Result<Frame> frame = ReadFrameWithBudget(sock.get(), decoder.get(),
                                                  kHangBudgetMs, &hung);
        if (hung) {
          ++tally.hangs;
          break;
        }
        if (!frame.ok()) {
          ++tally.transport_errors;
          sock->Close();
          continue;
        }
        if (frame->type == FrameType::kResult) {
          Result<ResultReply> result = DecodeResultReply(frame->payload);
          if (!result.ok()) {
            ++tally.transport_errors;
            sock->Close();
            continue;
          }
          ++tally.ok;
          if (ResultBytes(result->result) != goldens[w]) ++tally.divergences;
        } else if (frame->type == FrameType::kError) {
          Result<ErrorReply> error = DecodeErrorReply(frame->payload);
          if (!error.ok()) {
            ++tally.transport_errors;
            sock->Close();
            continue;
          }
          switch (error->error) {
            case WireError::kQueryTimeout:
              ++tally.timeouts;
              break;
            case WireError::kCancelled:
              ++tally.cancelled;
              break;
            case WireError::kServerBusy:
              ++tally.busy;
              break;
            default:
              ++tally.other_errors;
              // BAD_REQUEST closes the connection server-side.
              break;
          }
        } else {
          ++tally.transport_errors;
          sock->Close();
        }
      }
      if (sock != nullptr) tally.faults_injected += sock->injected_faults();
    });
  }

  for (std::thread& t : threads) t.join();

  ChaosTally total;
  for (const ChaosTally& tally : tallies) total.Accumulate(tally);
  const uint64_t attempted =
      queries_per_client * (kHealthyClients + kChaosClients);

  ::testing::Test::RecordProperty("chaos_ok", static_cast<int>(total.ok));
  ::testing::Test::RecordProperty("chaos_faults",
                                  static_cast<int>(total.faults_injected));

  // The hard invariants: nothing hung, nothing returned wrong bytes, and
  // healthy traffic made real progress despite ~30% of chaos operations
  // carrying injected faults.
  EXPECT_EQ(total.hangs, 0u);
  EXPECT_EQ(total.divergences, 0u);
  EXPECT_GT(total.ok, attempted / 4);
  EXPECT_GT(total.timeouts + total.cancelled, 0u);
  if (queries_per_client >= 100) {
    EXPECT_GT(total.faults_injected, 0u);
  }

  // Healthy clients never see a transport error — only chaos sockets do.
  for (size_t c = 0; c < kHealthyClients; ++c) {
    EXPECT_EQ(tallies[c].transport_errors, 0u) << "healthy client " << c;
  }

  const OlapServer::Stats stats = server_->stats();
  EXPECT_GE(stats.queries_ok, total.ok);
  EXPECT_GE(stats.timeouts, total.timeouts);
  EXPECT_GE(stats.cancelled, total.cancelled);

  // Stop() after the storm must still be prompt: no session leaked, no
  // worker wedged.
  const auto start = std::chrono::steady_clock::now();
  server_->Stop();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(seconds, 10.0) << "Stop() took " << seconds << "s";

  const AdmissionController::Snapshot snap = server_->admission().snapshot();
  EXPECT_EQ(snap.inflight, 0u);
  EXPECT_EQ(snap.queued, 0u);
}

}  // namespace
}  // namespace paradise::server
