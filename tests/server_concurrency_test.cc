// Concurrency battery for the olapd serving stack (server/server.h):
// N clients x M mixed queries against a live server with every reply
// byte-compared against single-threaded engine goldens, deterministic
// admission-control overflow (SERVER_BUSY) and queue drain, and
// epoch-pinned sessions that keep reading their snapshot while the commit
// epoch is bumped underneath them. CI runs this suite under TSan.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/ingest.h"
#include "query/planner.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "test_util.h"

namespace paradise::server {
namespace {

using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

/// The canonical wire bytes of a result — the identity under which replies
/// are compared across engines, threads and cache outcomes.
std::string ResultBytes(const query::GroupedResult& result) {
  std::string bytes;
  AppendGroupedResult(result, &bytes);
  return bytes;
}

class ServerConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("server_conc");
    ASSERT_OK_AND_ASSIGN(data_, gen::Generate(TinyConfig(300, 41)));
    ASSERT_OK_AND_ASSIGN(
        db_, BuildDatabaseFromDataset(file_->path(), data_, SmallDbOptions()));
  }

  void StartServer(ServerOptions options) {
    server_ = std::make_unique<OlapServer>(db_.get(), options);
    ASSERT_OK(server_->Start());
  }

  std::unique_ptr<OlapClient> MustConnect() {
    Result<std::unique_ptr<OlapClient>> client =
        OlapClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(client).value() : nullptr;
  }

  /// The mixed workload: roll-ups at two granularities plus two selection
  /// queries, so the array engine, the bitmap-eligible path and the shared
  /// result cache all run concurrently.
  static std::vector<std::string> Workload() {
    return {
        "select sum(volume), dim0.h01, dim1.h11, dim2.h21 from cube "
        "group by dim0.h01, dim1.h11, dim2.h21",
        "select sum(volume), dim1.h12, dim2.h22 from cube "
        "group by dim1.h12, dim2.h22",
        "select sum(volume), dim0.h01 from cube "
        "where dim1.h12 = '" + gen::AttrValue(1, 2, 0) + "' "
        "group by dim0.h01",
        "select avg(volume), dim2.h21 from cube "
        "where dim0.h02 = '" + gen::AttrValue(0, 2, 1) + "' "
        "group by dim2.h21",
    };
  }

  /// Single-threaded engine goldens computed before the server takes
  /// traffic, through the same serializer the wire uses.
  std::vector<std::string> Goldens(const std::vector<std::string>& workload) {
    std::vector<std::string> goldens;
    for (const std::string& sql : workload) {
      Result<SqlExecution> exec = RunSql(db_.get(), sql);
      EXPECT_TRUE(exec.ok()) << sql << ": " << exec.status().ToString();
      if (!exec.ok()) return {};
      exec->execution.result.SortCanonical();
      goldens.push_back(ResultBytes(exec->execution.result));
    }
    return goldens;
  }

  std::unique_ptr<TempFile> file_;
  gen::SyntheticDataset data_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<OlapServer> server_;
};

TEST_F(ServerConcurrencyTest, MixedWorkloadIsBitIdenticalToGolden) {
  StartServer(ServerOptions{});
  const std::vector<std::string> workload = Workload();
  const std::vector<std::string> goldens = Goldens(workload);
  ASSERT_EQ(goldens.size(), workload.size());

  constexpr size_t kClients = 8;
  constexpr size_t kQueriesPerClient = 24;
  std::atomic<uint64_t> divergences{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = MustConnect();
      if (client == nullptr) {
        failures.fetch_add(1);
        return;
      }
      for (size_t i = 0; i < kQueriesPerClient; ++i) {
        const size_t w = (c + i) % workload.size();
        QueryRequest request;
        request.sql = workload[w];
        // Mix thread counts and cache bypasses: every combination must
        // still produce the same bytes.
        request.num_threads = 1 + static_cast<uint32_t>(i % 4);
        request.no_cache = (i % 3) == 0;
        Result<OlapClient::Reply> reply = client->Query(request);
        if (!reply.ok() || !reply->ok) {
          failures.fetch_add(1);
          continue;
        }
        if (ResultBytes(reply->result.result) != goldens[w]) {
          divergences.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(divergences.load(), 0u);

  const OlapServer::Stats stats = server_->stats();
  EXPECT_EQ(stats.connections, kClients);
  EXPECT_EQ(stats.queries_ok, kClients * kQueriesPerClient);
  EXPECT_EQ(stats.queries_failed, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  server_->Stop();
}

TEST_F(ServerConcurrencyTest, ForcedEnginesAgreeOverTheWire) {
  StartServer(ServerOptions{});
  const std::string sql =
      "select sum(volume), dim0.h01 from cube "
      "where dim1.h12 = '" + gen::AttrValue(1, 2, 0) + "' group by dim0.h01";
  ASSERT_OK_AND_ASSIGN(SqlExecution golden_exec, RunSql(db_.get(), sql));
  golden_exec.execution.result.SortCanonical();
  const std::string golden = ResultBytes(golden_exec.execution.result);

  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  for (EngineKind kind : {EngineKind::kArray, EngineKind::kStarJoin,
                          EngineKind::kBitmap, EngineKind::kLeftDeep}) {
    QueryRequest request;
    request.sql = sql;
    request.engine = static_cast<uint8_t>(kind) + 1;
    request.no_cache = true;  // force a real engine run each time
    ASSERT_OK_AND_ASSIGN(OlapClient::Reply reply, client->Query(request));
    ASSERT_TRUE(reply.ok) << reply.error.message;
    EXPECT_EQ(reply.result.engine, EngineKindToString(kind));
    EXPECT_EQ(ResultBytes(reply.result.result), golden)
        << "engine " << EngineKindToString(kind) << " diverged on the wire";
  }
  server_->Stop();
}

TEST_F(ServerConcurrencyTest, AdmissionOverflowRepliesBusyThenDrains) {
  ServerOptions options;
  options.max_inflight = 1;
  options.max_queued = 1;
  // The hold must outlast both staggering sleeps plus scheduling noise on a
  // loaded CI box (the codec-matrix job runs the full suite four extra
  // times); 400 ms left only ~200 ms of slack and flaked under -j load.
  options.artificial_query_delay_ms = 1200;
  StartServer(options);

  const std::string sql =
      "select sum(volume), dim0.h01 from cube group by dim0.h01";

  auto holder = MustConnect();
  auto queued = MustConnect();
  auto rejected = MustConnect();
  ASSERT_NE(holder, nullptr);
  ASSERT_NE(queued, nullptr);
  ASSERT_NE(rejected, nullptr);

  // Holder occupies the single slot; queued fills the one queue seat behind
  // it. Observe the server's own admission snapshot instead of sleeping a
  // fixed interval — on a loaded CI box a client thread can be starved for
  // hundreds of milliseconds, so wall-clock staggering alone flakes.
  const auto wait_until = [&](auto&& pred) {
    for (int i = 0; i < 500 && !pred(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(pred()) << "admission state never reached";
  };
  std::thread holder_thread([&] {
    Result<OlapClient::Reply> reply = holder->Query(sql);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_TRUE(reply->ok);
  });
  wait_until([&] { return server_->admission().snapshot().inflight >= 1; });
  std::thread queued_thread([&] {
    Result<OlapClient::Reply> reply = queued->Query(sql);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_TRUE(reply->ok);
  });
  wait_until([&] { return server_->admission().snapshot().queued >= 1; });

  // Slot taken, queue full: the third client must get a typed SERVER_BUSY
  // on a connection that stays open.
  ASSERT_OK_AND_ASSIGN(OlapClient::Reply busy, rejected->Query(sql));
  ASSERT_FALSE(busy.ok);
  EXPECT_EQ(busy.error.error, WireError::kServerBusy);

  holder_thread.join();
  queued_thread.join();

  // The queue drained; the rejected client's connection still works and the
  // retry is admitted.
  ASSERT_OK_AND_ASSIGN(OlapClient::Reply retry, rejected->Query(sql));
  EXPECT_TRUE(retry.ok) << retry.error.message;

  // The worker decrements inflight after writing the reply bytes, so the
  // client can observe its answer a beat before the counter drops — poll
  // for the drained state instead of asserting an instantaneous zero.
  wait_until([&] {
    const AdmissionController::Snapshot s = server_->admission().snapshot();
    return s.inflight == 0 && s.queued == 0;
  });
  EXPECT_GE(server_->stats().busy_replies, 1u);
  EXPECT_EQ(server_->stats().queries_failed, 0u);
  server_->Stop();
}

TEST_F(ServerConcurrencyTest, EpochPinnedSessionSurvivesEpochBump) {
  StartServer(ServerOptions{});
  const std::string cached_sql =
      "select sum(volume), dim0.h01, dim1.h11, dim2.h21 from cube "
      "group by dim0.h01, dim1.h11, dim2.h21";
  const std::string uncached_sql =
      "select sum(volume), dim2.h22 from cube group by dim2.h22";

  auto pinned = MustConnect();
  ASSERT_NE(pinned, nullptr);
  const uint64_t old_epoch = pinned->hello().pinned_epoch;

  // First run lands in the shared result cache under the pinned epoch.
  ASSERT_OK_AND_ASSIGN(OlapClient::Reply first, pinned->Query(cached_sql));
  ASSERT_TRUE(first.ok) << first.error.message;
  const std::string pinned_bytes = ResultBytes(first.result.result);

  // Mutate one cell and durably commit: the epoch advances underneath the
  // connected session. The server is idle here (the session is blocked in
  // recv), so the write does not race any query.
  const std::vector<int32_t> keys =
      data_.CellKeys(data_.cell_global_indices[0]);
  ASSERT_OK_AND_ASSIGN(std::optional<int64_t> old_value,
                       db_->olap()->ReadCellByKeys(keys));
  ASSERT_TRUE(old_value.has_value());
  ASSERT_OK(db_->olap()->WriteCellByKeys(keys, *old_value + 1000));
  ASSERT_OK(db_->storage()->Checkpoint());
  ASSERT_GT(db_->commit_epoch(), old_epoch);

  // The pinned session keeps reading its snapshot: same query, same bytes,
  // served from the epoch-pinned cache without running an engine.
  ASSERT_OK_AND_ASSIGN(OlapClient::Reply again, pinned->Query(cached_sql));
  ASSERT_TRUE(again.ok) << again.error.message;
  EXPECT_EQ(again.result.engine, "cache");
  EXPECT_EQ(ResultBytes(again.result.result), pinned_bytes);

  // A query the snapshot never cached cannot be answered coherently any
  // more: typed SNAPSHOT_GONE, not a stale/fresh mix.
  ASSERT_OK_AND_ASSIGN(OlapClient::Reply gone, pinned->Query(uncached_sql));
  ASSERT_FALSE(gone.ok);
  EXPECT_EQ(gone.error.error, WireError::kSnapshotGone);

  // A pinned reader must not clobber current-epoch cache state: the pinned
  // session's traffic above used Peek, so a fresh connection (pinned to the
  // new epoch) re-runs the engine and sees the mutation.
  auto fresh = MustConnect();
  ASSERT_NE(fresh, nullptr);
  EXPECT_GT(fresh->hello().pinned_epoch, old_epoch);
  ASSERT_OK_AND_ASSIGN(OlapClient::Reply updated, fresh->Query(cached_sql));
  ASSERT_TRUE(updated.ok) << updated.error.message;
  EXPECT_NE(ResultBytes(updated.result.result), pinned_bytes);
  EXPECT_EQ(updated.result.result.TotalSum(),
            first.result.result.TotalSum() + 1000);

  // The fresh run replaced the cached entry under the new epoch, so the old
  // session's snapshot of this query is now genuinely gone — it degrades to
  // a typed SNAPSHOT_GONE, never a stale/fresh mix.
  ASSERT_OK_AND_ASSIGN(OlapClient::Reply displaced, pinned->Query(cached_sql));
  ASSERT_FALSE(displaced.ok);
  EXPECT_EQ(displaced.error.error, WireError::kSnapshotGone);
  server_->Stop();
}

/// The ingest-path version of the pinned-snapshot guarantee: while the
/// incremental write path commits and compacts underneath a connected
/// session, every reply on that session is either the EXACT bytes of its
/// pinned epoch or a typed SNAPSHOT_GONE — never a stale/fresh mix, never a
/// torn read from a half-published version set.
TEST_F(ServerConcurrencyTest, PinnedSessionDuringIngestServesOldBytesOrGone) {
  StartServer(ServerOptions{});
  const std::string sql =
      "select sum(volume), dim0.h01, dim1.h11, dim2.h21 from cube "
      "group by dim0.h01, dim1.h11, dim2.h21";

  auto pinned = MustConnect();
  ASSERT_NE(pinned, nullptr);
  const uint64_t old_epoch = pinned->hello().pinned_epoch;
  ASSERT_OK_AND_ASSIGN(OlapClient::Reply first, pinned->Query(sql));
  ASSERT_TRUE(first.ok) << first.error.message;
  const std::string pinned_bytes = ResultBytes(first.result.result);

  // Each ingest round upserts a distinct occupied cell to old+1000, so the
  // final total is exactly first_total + kRounds*1000.
  constexpr int kRounds = 8;
  std::vector<std::vector<int32_t>> keys;
  std::vector<int64_t> targets;
  for (int i = 0; i < kRounds; ++i) {
    keys.push_back(data_.CellKeys(data_.cell_global_indices[i]));
    ASSERT_OK_AND_ASSIGN(std::optional<int64_t> old_value,
                         db_->olap()->ReadCellByKeys(keys.back()));
    ASSERT_TRUE(old_value.has_value());
    targets.push_back(*old_value + 1000);
  }

  std::atomic<bool> done{false};
  std::thread ingester([&] {
    for (int i = 0; i < kRounds; ++i) {
      ASSERT_OK(db_->ingest()->Write(keys[i], {targets[i]}));
      ASSERT_OK(db_->ingest()->Commit());
      // Compaction rewrites the array copy-on-write mid-stream; pinned
      // readers must not notice.
      if (i % 4 == 3) ASSERT_OK(db_->ingest()->Compact());
    }
    done.store(true, std::memory_order_relaxed);
  });

  uint64_t old_bytes_served = 0;
  uint64_t snapshot_gone = 0;
  while (!done.load(std::memory_order_relaxed)) {
    ASSERT_OK_AND_ASSIGN(OlapClient::Reply reply, pinned->Query(sql));
    if (reply.ok) {
      EXPECT_EQ(ResultBytes(reply.result.result), pinned_bytes)
          << "pinned session observed bytes from a different epoch";
      ++old_bytes_served;
    } else {
      EXPECT_EQ(reply.error.error, WireError::kSnapshotGone)
          << reply.error.message;
      ++snapshot_gone;
    }
  }
  ingester.join();
  EXPECT_GT(old_bytes_served, 0u);

  // A fresh connection pins the newest epoch and sees every ingested cell.
  auto fresh = MustConnect();
  ASSERT_NE(fresh, nullptr);
  EXPECT_GT(fresh->hello().pinned_epoch, old_epoch);
  ASSERT_OK_AND_ASSIGN(OlapClient::Reply updated, fresh->Query(sql));
  ASSERT_TRUE(updated.ok) << updated.error.message;
  EXPECT_EQ(updated.result.result.TotalSum(),
            first.result.result.TotalSum() + kRounds * 1000);

  // The fresh run displaced the old-epoch cache entry, so the pinned
  // session now degrades to the typed SNAPSHOT_GONE.
  ASSERT_OK_AND_ASSIGN(OlapClient::Reply displaced, pinned->Query(sql));
  ASSERT_FALSE(displaced.ok);
  EXPECT_EQ(displaced.error.error, WireError::kSnapshotGone);
  server_->Stop();
}

TEST_F(ServerConcurrencyTest, StopWakesBlockedSessions) {
  StartServer(ServerOptions{});
  // Park several idle connections (blocked in recv on the server side) and
  // one mid-handshake client, then Stop(): it must return promptly with
  // every session joined.
  std::vector<std::unique_ptr<OlapClient>> idle;
  for (int i = 0; i < 8; ++i) {
    auto client = MustConnect();
    ASSERT_NE(client, nullptr);
    ASSERT_OK(client->Ping());
    idle.push_back(std::move(client));
  }
  const auto start = std::chrono::steady_clock::now();
  server_->Stop();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(seconds, 5.0) << "Stop() took " << seconds << "s";

  // Parked clients observe the disconnect as a transport error.
  for (auto& client : idle) {
    EXPECT_FALSE(client->Ping().ok());
  }
}

}  // namespace
}  // namespace paradise::server
