// CUBE operator tests: every cuboid must equal the corresponding single
// consolidation, across cubes and levels (parameterized).
#include <bit>

#include <gtest/gtest.h>

#include "core/consolidate.h"
#include "core/cube.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

class CubeTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("cube");
    ASSERT_OK_AND_ASSIGN(data_, gen::Generate(TinyConfig(350, 71)));
    ASSERT_OK_AND_ASSIGN(
        db_, BuildDatabaseFromDataset(file_->path(), data_,
                                      SmallDbOptions()));
  }

  std::unique_ptr<TempFile> file_;
  gen::SyntheticDataset data_;
  std::unique_ptr<Database> db_;
};

TEST_P(CubeTest, EveryCuboidMatchesItsConsolidation) {
  const size_t level = GetParam();
  CubeQuery cube;
  cube.level_cols.assign(3, level);
  CubeStats stats;
  ASSERT_OK_AND_ASSIGN(std::vector<Cuboid> cuboids,
                       ArrayCube(*db_->olap(), cube, nullptr, &stats));
  ASSERT_EQ(cuboids.size(), 8u);  // 2^3
  EXPECT_GT(stats.chunks_read, 0u);

  std::set<uint32_t> masks_seen;
  for (const Cuboid& cuboid : cuboids) {
    masks_seen.insert(cuboid.mask);
    query::ConsolidationQuery q;
    q.dims.resize(3);
    for (size_t d = 0; d < 3; ++d) {
      if ((cuboid.mask >> d) & 1) q.dims[d].group_by_col = level;
    }
    ASSERT_OK_AND_ASSIGN(query::GroupedResult expected,
                         ArrayConsolidate(*db_->olap(), q));
    EXPECT_TRUE(cuboid.result.SameAs(expected))
        << "mask " << cuboid.mask << ":\ngot:\n"
        << cuboid.result.ToString(cube.agg) << "expected:\n"
        << expected.ToString(cube.agg);
  }
  EXPECT_EQ(masks_seen.size(), 8u);
}

INSTANTIATE_TEST_SUITE_P(Levels, CubeTest, ::testing::Values(1, 2));

TEST(CubeTestStandalone, MixedLevelsPerDimension) {
  TempFile file("cube_mixed");
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(200, 72)));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
  CubeQuery cube;
  cube.level_cols = {1, 2, 1};
  ASSERT_OK_AND_ASSIGN(std::vector<Cuboid> cuboids,
                       ArrayCube(*db->olap(), cube));
  for (const Cuboid& cuboid : cuboids) {
    query::ConsolidationQuery q;
    q.dims.resize(3);
    for (size_t d = 0; d < 3; ++d) {
      if ((cuboid.mask >> d) & 1) q.dims[d].group_by_col = cube.level_cols[d];
    }
    ASSERT_OK_AND_ASSIGN(query::GroupedResult expected,
                         ArrayConsolidate(*db->olap(), q));
    EXPECT_TRUE(cuboid.result.SameAs(expected)) << "mask " << cuboid.mask;
  }
}

TEST(CubeTestStandalone, OrderIsFinestFirstAndGrandTotalLast) {
  TempFile file("cube_order");
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromConfig(file.path(), TinyConfig(100), SmallDbOptions()));
  CubeQuery cube;
  cube.level_cols = {1, 1, 1};
  ASSERT_OK_AND_ASSIGN(std::vector<Cuboid> cuboids,
                       ArrayCube(*db->olap(), cube));
  for (size_t i = 1; i < cuboids.size(); ++i) {
    EXPECT_GE(std::popcount(cuboids[i - 1].mask),
              std::popcount(cuboids[i].mask));
  }
  EXPECT_EQ(cuboids.front().mask, 7u);
  EXPECT_EQ(cuboids.back().mask, 0u);
  ASSERT_EQ(cuboids.back().result.num_groups(), 1u);
}

TEST(CubeTestStandalone, LatticeCheaperThanNaive) {
  // The lattice scheme's aggregate ops must be far below the naive
  // simultaneous cost of 2^n updates per valid cell.
  TempFile file("cube_cost");
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(480, 73)));  // 100 % dense
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
  CubeQuery cube;
  cube.level_cols = {1, 1, 1};
  CubeStats stats;
  ASSERT_OK(ArrayCube(*db->olap(), cube, nullptr, &stats).status());
  EXPECT_LT(stats.aggregate_ops, 8u * 480u / 2);
}

TEST(CubeTestStandalone, RejectsBadArguments) {
  TempFile file("cube_bad");
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromConfig(file.path(), TinyConfig(50), SmallDbOptions()));
  CubeQuery wrong_arity;
  wrong_arity.level_cols = {1, 1};
  EXPECT_TRUE(
      ArrayCube(*db->olap(), wrong_arity).status().IsInvalidArgument());
  CubeQuery bad_level;
  bad_level.level_cols = {1, 1, 9};
  EXPECT_TRUE(ArrayCube(*db->olap(), bad_level).status().IsInvalidArgument());
  CubeQuery key_level;
  key_level.level_cols = {0, 1, 1};
  EXPECT_TRUE(ArrayCube(*db->olap(), key_level).status().IsInvalidArgument());
}

}  // namespace
}  // namespace paradise
