// Crash-consistency suite: drives the FaultInjectingDiskManager power-loss
// mode through a crash-point sweep — "the machine dies after N disk
// operations" for every N across a full database load — and requires that
// reopening the file always yields either a completely consistent database
// (every engine agrees with the brute-force reference and dbverify finds
// nothing) or a specific incomplete-load / corruption Status. Never a wrong
// answer, never a partially visible load. Also pins the commit-protocol
// ordering contracts: data is fsynced before the manifest commit, a failed
// fsync aborts the checkpoint without advancing the commit epoch, and a torn
// manifest slot falls back to the previous commit.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/ingest.h"
#include "query/engine.h"
#include "schema/db_verify.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "storage/page.h"
#include "storage/storage_manager.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;

const EngineKind kAllEngines[] = {EngineKind::kArray, EngineKind::kStarJoin,
                                  EngineKind::kBitmap, EngineKind::kLeftDeep,
                                  EngineKind::kBTreeSelect};

/// Mixed-shape query with both grouping and selections so all five engines
/// (including kBitmap and kBTreeSelect) are applicable.
query::ConsolidationQuery MixedQuery() {
  query::ConsolidationQuery q;
  q.dims.resize(3);
  q.dims[0].group_by_col = 1;
  q.dims[1].selections.push_back(
      query::Selection{1,
                       {query::Literal{gen::AttrValue(1, 1, 0)},
                        query::Literal{gen::AttrValue(1, 1, 2)}}});
  q.dims[2].group_by_col = 2;
  return q;
}

/// XORs one byte of the file at `offset` with `mask`.
void FlipByteInFile(const std::string& path, uint64_t offset, char mask) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  char byte = 0;
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
  byte = static_cast<char>(byte ^ mask);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
  ASSERT_EQ(std::fclose(f), 0);
}

/// Sweep-size knob: capped by PARADISE_CRASH_SWEEP_MAX_POINTS so CI can run
/// a denser sweep than the default developer loop.
uint64_t MaxSweepPoints(uint64_t fallback) {
  if (const char* env = std::getenv("PARADISE_CRASH_SWEEP_MAX_POINTS")) {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

/// Evenly spaced halt points over [1, total], always including 1 and total.
std::vector<uint64_t> SweepPoints(uint64_t total, uint64_t max_points) {
  const uint64_t stride = std::max<uint64_t>(1, total / max_points);
  std::vector<uint64_t> points;
  for (uint64_t n = 1; n <= total; n += stride) points.push_back(n);
  if (points.back() != total) points.push_back(total);
  return points;
}

struct CrashBuildOutcome {
  bool build_ok = false;
  bool close_ok = false;
  uint64_t total_ops = 0;  // populated only when the build succeeded
};

/// Builds the tiny database at `path` with the power-loss countdown armed
/// from the very first operation (0 = never fires). Returns whether the
/// build and the explicit close survived; a halted close abandons the file
/// in exactly its crash-time state.
CrashBuildOutcome BuildWithPowerLoss(const std::string& path,
                                     const gen::SyntheticDataset& data,
                                     uint64_t halt_after_ops) {
  std::filesystem::remove(path);
  DatabaseOptions options = SmallDbOptions();
  options.build_btree_join_indexes = true;
  options.storage.read_retry_backoff_micros = 0;
  FaultInjectingDiskManager* faults = nullptr;
  FaultInjectionOptions fi;
  fi.power_loss_after_ops = halt_after_ops;
  options.storage.wrap_disk = [&faults, fi](std::unique_ptr<Disk> inner) {
    auto wrapped = std::make_unique<FaultInjectingDiskManager>(
        std::move(inner), fi);
    faults = wrapped.get();
    return std::unique_ptr<Disk>(std::move(wrapped));
  };
  CrashBuildOutcome out;
  auto r = BuildDatabaseFromDataset(path, data, options);
  out.build_ok = r.ok();
  if (r.ok()) {
    std::unique_ptr<Database> db = std::move(r).value();
    out.close_ok = db->storage()->Close().ok();
    out.total_ops = faults->ops_seen();
  }
  return out;
}

/// The tentpole acceptance sweep: cut power after N mutating disk operations
/// for every sampled N across a complete load, reopen with a plain
/// (uninstrumented) stack, and demand one of exactly two outcomes — a fully
/// consistent database every engine answers correctly from, or a clean
/// incomplete-load / corruption / I/O Status. The sweep must produce both
/// outcomes, including at least one durably-marked incomplete load.
TEST(CrashRecoveryTest, PowerLossSweepNeverServesAWrongAnswer) {
  TempFile file("crash_sweep");
  const gen::GenConfig config = TinyConfig(50, 9);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));

  // Trace run: count the mutating-op total of a crash-free build + close.
  const CrashBuildOutcome trace = BuildWithPowerLoss(file.path(), data, 0);
  ASSERT_TRUE(trace.build_ok);
  ASSERT_TRUE(trace.close_ok);
  ASSERT_GT(trace.total_ops, 20u);

  const query::ConsolidationQuery q = MixedQuery();
  const query::GroupedResult expected = BruteForce(data, q);
  uint64_t recovered = 0;
  uint64_t rejected = 0;
  uint64_t incomplete_loads = 0;
  for (const uint64_t halt : SweepPoints(trace.total_ops,
                                         MaxSweepPoints(40))) {
    const CrashBuildOutcome crash =
        BuildWithPowerLoss(file.path(), data, halt);
    auto reopened = Database::Open(file.path(), SmallDbOptions());
    if (reopened.ok()) {
      ++recovered;
      std::unique_ptr<Database> db = std::move(reopened).value();
      for (EngineKind kind : kAllEngines) {
        ASSERT_OK_AND_ASSIGN(Execution exec,
                             RunQuery(db.get(), kind, q, /*cold=*/true));
        EXPECT_TRUE(exec.result.SameAs(expected))
            << "engine " << EngineKindToString(kind)
            << " diverges after a crash at op " << halt;
      }
      db.reset();
      ASSERT_OK_AND_ASSIGN(VerifyReport report,
                           VerifyDatabaseFile(file.path()));
      EXPECT_TRUE(report.clean())
          << "crash at op " << halt << ": "
          << (report.AllIssues().empty() ? std::string("?")
                                         : report.AllIssues().front());
      EXPECT_EQ(report.fact_tuples, data.cell_global_indices.size())
          << "crash at op " << halt;
    } else {
      ++rejected;
      const Status st = reopened.status();
      EXPECT_TRUE(st.IsCorruption() || st.IsIOError())
          << "crash at op " << halt
          << " produced an unrecognized failure class: " << st.ToString();
      if (st.ToString().find("incomplete load") != std::string::npos) {
        ++incomplete_loads;
      }
    }
    // A crash-free pass through the whole workload must recover perfectly.
    if (crash.build_ok && crash.close_ok) EXPECT_GT(recovered, 0u);
  }
  EXPECT_GT(recovered, 0u) << "no halt point ever recovered a full database";
  EXPECT_GT(rejected, 0u) << "no halt point ever interrupted the load";
  EXPECT_GT(incomplete_loads, 0u)
      << "the sweep never hit the durable mid-load window";
}

/// Satellite (b) pinned as a sweep: a crash at ANY point inside Checkpoint()
/// leaves the recovered catalog exactly the old committed state or exactly
/// the new one — never a catalog that names data the file does not hold.
TEST(CrashRecoveryTest, CheckpointCrashLeavesCatalogOldOrNew) {
  const std::string payload_a = "payload-A";
  const std::string payload_b(9000, 'B');
  bool saw_old = false;
  bool saw_new = false;
  bool sweep_complete = false;
  for (uint64_t halt = 1; halt <= 500 && !sweep_complete; ++halt) {
    TempFile file("crash_ckpt");
    StorageOptions options;
    options.page_size = 4096;
    options.buffer_pool_pages = 16;
    FaultInjectingDiskManager* faults = nullptr;
    options.wrap_disk = [&faults](std::unique_ptr<Disk> inner) {
      auto wrapped =
          std::make_unique<FaultInjectingDiskManager>(std::move(inner));
      faults = wrapped.get();
      return std::unique_ptr<Disk>(std::move(wrapped));
    };
    StorageManager sm;
    ASSERT_OK(sm.Create(file.path(), options));
    ASSERT_OK_AND_ASSIGN(ObjectId a, sm.objects()->Create(payload_a));
    ASSERT_OK(sm.SetRoot("alpha", a));
    ASSERT_OK(sm.Checkpoint());  // state OLD is durable

    ASSERT_OK_AND_ASSIGN(ObjectId b, sm.objects()->Create(payload_b));
    ASSERT_OK(sm.SetRoot("beta", b));
    FaultInjectionOptions fi;
    fi.power_loss_after_ops = halt;
    faults->Arm(fi);
    const Status ckpt = sm.Checkpoint();  // state NEW, possibly interrupted
    const bool lost = faults->power_lost();
    (void)sm.Close();

    StorageManager sm2;
    StorageOptions plain;
    plain.page_size = 4096;
    plain.buffer_pool_pages = 16;
    ASSERT_OK(sm2.Open(file.path(), plain));
    ASSERT_OK_AND_ASSIGN(uint64_t a2, sm2.GetRoot("alpha"));
    ASSERT_OK_AND_ASSIGN(std::string got_a, sm2.objects()->Read(a2));
    EXPECT_EQ(got_a, payload_a) << "halt " << halt;
    if (sm2.HasRoot("beta")) {
      saw_new = true;
      ASSERT_OK_AND_ASSIGN(uint64_t b2, sm2.GetRoot("beta"));
      ASSERT_OK_AND_ASSIGN(std::string got_b, sm2.objects()->Read(b2));
      EXPECT_EQ(got_b, payload_b) << "halt " << halt;
    } else {
      saw_old = true;
      // A checkpoint that reported success must never recover without beta.
      EXPECT_FALSE(ckpt.ok()) << "halt " << halt;
    }
    ASSERT_OK(sm2.Close());
    if (ckpt.ok() && !lost) sweep_complete = true;
  }
  EXPECT_TRUE(sweep_complete) << "the checkpoint never ran crash-free";
  EXPECT_TRUE(saw_old);
  EXPECT_TRUE(saw_new);
}

/// A power cut in the middle of the fact load must durably read back as an
/// incomplete load — both from Database::Open and from dbverify — because
/// BeginFacts() checkpointed the kLoadBuilding mark.
TEST(CrashRecoveryTest, PowerLossMidFactLoadReportsIncompleteLoad) {
  TempFile file("crash_midload");
  const gen::GenConfig config = TinyConfig(60, 5);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  DatabaseOptions options = SmallDbOptions();
  options.chunk_extents = data.config.chunk_extents;
  FaultInjectingDiskManager* faults = nullptr;
  options.storage.wrap_disk = [&faults](std::unique_ptr<Disk> inner) {
    FaultInjectionOptions fi;
    // Arm pre-image tracking without ever auto-firing; the test pulls the
    // plug itself, at a point the op countdown cannot express precisely.
    fi.power_loss_after_ops = UINT64_MAX;
    auto wrapped = std::make_unique<FaultInjectingDiskManager>(
        std::move(inner), fi);
    faults = wrapped.get();
    return std::unique_ptr<Disk>(std::move(wrapped));
  };
  StarSchema schema = data.ToStarSchema();
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Create(file.path(), schema, options));
  for (size_t d = 0; d < data.config.dims.size(); ++d) {
    const gen::GenDimension& gd = data.config.dims[d];
    const Schema dim_schema = schema.dims[d].ToSchema();
    for (uint32_t key = 0; key < gd.size; ++key) {
      Tuple row(&dim_schema);
      row.SetInt32(0, static_cast<int32_t>(key));
      for (size_t level = 1; level <= gd.level_cardinalities.size();
           ++level) {
        ASSERT_OK(row.SetString(
            level, gen::AttrValue(d, level, gd.LevelCode(level, key))));
      }
      ASSERT_OK(db->AppendDimensionRow(d, row));
    }
  }
  ASSERT_OK(db->BeginFacts());
  const size_t half = data.cell_global_indices.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_OK(db->AppendFact(data.CellKeys(data.cell_global_indices[i]),
                             data.measures[i]));
  }
  faults->SimulatePowerLoss();
  db.reset();  // the dead disk abandons the handle; nothing commits

  auto reopened = Database::Open(file.path(), SmallDbOptions());
  ASSERT_FALSE(reopened.ok());
  const Status st = reopened.status();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("incomplete load"), std::string::npos)
      << st.ToString();

  ASSERT_OK_AND_ASSIGN(VerifyReport report, VerifyDatabaseFile(file.path()));
  EXPECT_FALSE(report.clean());
  bool mentioned = false;
  for (const std::string& issue : report.AllIssues()) {
    if (issue.find("incomplete load") != std::string::npos) mentioned = true;
  }
  EXPECT_TRUE(mentioned);
}

/// Satellite (b) pinned at the op level: in the recorded operation trace,
/// every manifest commit is separated from the last page write only by
/// flushes and a durability barrier — the catalog/data pages are never left
/// unsynced when the commit record lands.
TEST(CrashRecoveryTest, CheckpointSyncsDataBeforeCommittingManifest) {
  TempFile file("crash_oplog");
  StorageOptions options;
  options.page_size = 4096;
  options.buffer_pool_pages = 16;
  FaultInjectingDiskManager* faults = nullptr;
  options.wrap_disk = [&faults](std::unique_ptr<Disk> inner) {
    auto wrapped =
        std::make_unique<FaultInjectingDiskManager>(std::move(inner));
    faults = wrapped.get();
    return std::unique_ptr<Disk>(std::move(wrapped));
  };
  StorageManager sm;
  ASSERT_OK(sm.Create(file.path(), options));
  FaultInjectionOptions fi;
  fi.record_ops = true;
  faults->Arm(fi);
  ASSERT_OK_AND_ASSIGN(ObjectId oid,
                       sm.objects()->Create(std::string(6000, 'x')));
  ASSERT_OK(sm.SetRoot("x", oid));
  ASSERT_OK(sm.Checkpoint());
  ASSERT_OK(sm.Close());

  const std::vector<std::string>& log = faults->op_log();
  int commits = 0;
  bool any_write = false;
  for (const std::string& op : log) {
    if (op == "commit") ++commits;
    if (op.rfind("write:", 0) == 0) any_write = true;
  }
  ASSERT_GE(commits, 2);  // the explicit checkpoint and the close
  EXPECT_TRUE(any_write);
  for (size_t i = 0; i < log.size(); ++i) {
    if (log[i] != "commit") continue;
    for (size_t j = i; j-- > 0;) {
      if (log[j] == "sync" || log[j] == "commit") break;
      EXPECT_EQ(log[j], "flush")
          << "mutating op '" << log[j]
          << "' between the last durability barrier and a manifest commit";
    }
  }
}

/// A failed fsync must abort the checkpoint without advancing the commit
/// epoch; once the disk recovers, the very next checkpoint commits the full
/// pending state.
TEST(CrashRecoveryTest, FsyncFailureAbortsCheckpointWithoutCommitting) {
  TempFile file("crash_fsync");
  StorageOptions options;
  options.page_size = 4096;
  options.buffer_pool_pages = 16;
  FaultInjectingDiskManager* faults = nullptr;
  options.wrap_disk = [&faults](std::unique_ptr<Disk> inner) {
    auto wrapped =
        std::make_unique<FaultInjectingDiskManager>(std::move(inner));
    faults = wrapped.get();
    return std::unique_ptr<Disk>(std::move(wrapped));
  };
  StorageManager sm;
  ASSERT_OK(sm.Create(file.path(), options));
  ASSERT_OK_AND_ASSIGN(ObjectId a, sm.objects()->Create("payload-A"));
  ASSERT_OK(sm.SetRoot("alpha", a));
  ASSERT_OK(sm.Checkpoint());
  const uint64_t epoch_before = sm.disk()->commit_epoch();

  ASSERT_OK_AND_ASSIGN(ObjectId b, sm.objects()->Create("payload-B"));
  ASSERT_OK(sm.SetRoot("beta", b));
  FaultInjectionOptions fi;
  fi.fail_nth_sync = 1;
  faults->Arm(fi);
  const Status st = sm.Checkpoint();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_NE(st.ToString().find("fsync"), std::string::npos) << st.ToString();
  EXPECT_EQ(sm.disk()->commit_epoch(), epoch_before);

  faults->Arm(FaultInjectionOptions{});
  ASSERT_OK(sm.Checkpoint());
  EXPECT_GT(sm.disk()->commit_epoch(), epoch_before);
  ASSERT_OK(sm.Close());

  StorageManager sm2;
  StorageOptions plain;
  plain.page_size = 4096;
  plain.buffer_pool_pages = 16;
  ASSERT_OK(sm2.Open(file.path(), plain));
  ASSERT_OK_AND_ASSIGN(uint64_t b2, sm2.GetRoot("beta"));
  ASSERT_OK_AND_ASSIGN(std::string got, sm2.objects()->Read(b2));
  EXPECT_EQ(got, "payload-B");
  ASSERT_OK(sm2.Close());
}

/// Dual-slot recovery: damaging the newest manifest slot (a torn commit
/// record) makes Open fall back to the previous commit; the next clean close
/// self-heals the slot. Damaging both slots is unrecoverable and must be
/// reported as a missing commit manifest, not misread.
TEST(CrashRecoveryTest, TornManifestSlotFallsBackToPreviousCommit) {
  TempFile file("crash_torn_manifest");
  StorageOptions options;
  options.page_size = 4096;
  options.buffer_pool_pages = 16;
  {
    StorageManager sm;
    ASSERT_OK(sm.Create(file.path(), options));  // epoch 1 (empty catalog)
    ASSERT_OK_AND_ASSIGN(ObjectId oid,
                         sm.objects()->Create("fallback-payload"));
    ASSERT_OK(sm.SetRoot("k", oid));
    ASSERT_OK(sm.Checkpoint());  // epoch 2: the catalog with "k" commits
    // Dirty the disk without touching the catalog, so the final commit
    // shares its catalog blob with epoch 2 — the situation a crash during
    // CommitManifest() produces, where the superseded catalog has not yet
    // been recycled and fallback can still serve it.
    ASSERT_OK_AND_ASSIGN(PageId scratch, sm.disk()->AllocatePage());
    std::vector<char> zeros(options.page_size, 0);
    ASSERT_OK(sm.disk()->WritePage(scratch, zeros.data()));
    ASSERT_OK(sm.Close());  // epoch 3
  }
  // Probe the newest epoch without committing anything new.
  uint64_t epoch = 0;
  {
    DiskManager disk;
    ASSERT_OK(disk.Open(file.path(), options));
    epoch = disk.commit_epoch();
    disk.Abandon();
  }
  ASSERT_GE(epoch, 2u);
  const uint64_t stride = options.page_size + page_header::kPageTrailerBytes;
  const PageId newest = page_header::ManifestSlotPage(epoch);

  // Tear the newest commit record; Open must fall back one epoch and still
  // serve the committed catalog.
  FlipByteInFile(file.path(),
                 newest * stride + page_header::kManifestEpochOffset, 0x40);
  {
    StorageManager sm;
    ASSERT_OK(sm.Open(file.path(), options));
    EXPECT_LT(sm.disk()->commit_epoch(), epoch);
    ASSERT_OK_AND_ASSIGN(uint64_t oid, sm.GetRoot("k"));
    ASSERT_OK_AND_ASSIGN(std::string payload, sm.objects()->Read(oid));
    EXPECT_EQ(payload, "fallback-payload");
    ASSERT_OK(sm.Close());  // self-heals: commits a fresh manifest
  }
  {
    DiskManager disk;
    ASSERT_OK(disk.Open(file.path(), options));
    disk.Abandon();
  }

  // Both slots dead: the file must be refused with a manifest diagnosis.
  FlipByteInFile(file.path(),
                 page_header::kManifestSlotPages[0] * stride +
                     page_header::kManifestCrcOffset,
                 0x01);
  FlipByteInFile(file.path(),
                 page_header::kManifestSlotPages[1] * stride +
                     page_header::kManifestCrcOffset,
                 0x01);
  StorageManager sm;
  const Status st = sm.Open(file.path(), options);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("manifest"), std::string::npos)
      << st.ToString();
}

/// A fixed, deterministic upsert batch for the ingest crash sweeps: six
/// updates of occupied cells plus six inserts into empty ones.
std::map<uint64_t, int64_t> CrashUpserts(const gen::SyntheticDataset& data) {
  std::map<uint64_t, int64_t> upserts;
  for (size_t i = 0; i < 6 && i < data.cell_global_indices.size(); ++i) {
    const uint64_t gi = data.cell_global_indices[i];
    upserts[gi] = 7000 + static_cast<int64_t>(gi);
  }
  const std::set<uint64_t> occupied(data.cell_global_indices.begin(),
                                    data.cell_global_indices.end());
  uint64_t total = 1;
  for (const gen::GenDimension& d : data.config.dims) total *= d.size;
  size_t inserts = 0;
  for (uint64_t gi = 0; gi < total && inserts < 6; ++gi) {
    if (occupied.contains(gi)) continue;
    upserts[gi] = -static_cast<int64_t>(gi) - 1;
    ++inserts;
  }
  return upserts;
}

/// The dataset `base` with `upserts` applied — the post-commit epoch's
/// content, for brute-force comparison.
gen::SyntheticDataset MergedDataset(const gen::SyntheticDataset& base,
                                    const std::map<uint64_t, int64_t>& ups) {
  std::map<uint64_t, int64_t> cells;
  for (size_t i = 0; i < base.cell_global_indices.size(); ++i) {
    cells[base.cell_global_indices[i]] = base.measures[i];
  }
  for (const auto& [gi, v] : ups) cells[gi] = v;
  gen::SyntheticDataset out = base;
  out.cell_global_indices.clear();
  out.measures.clear();
  for (const auto& [gi, v] : cells) {
    out.cell_global_indices.push_back(gi);
    out.measures.push_back(v);
  }
  return out;
}

struct IngestCrashRig {
  std::unique_ptr<Database> db;
  FaultInjectingDiskManager* faults = nullptr;
};

/// Builds the tiny database cleanly at `path`, then reopens it behind an
/// un-armed fault-injecting disk so the test can pull the plug mid-ingest.
IngestCrashRig OpenIngestRig(const std::string& path,
                             const gen::SyntheticDataset& data) {
  std::filesystem::remove(path);
  {
    auto built = BuildDatabaseFromDataset(path, data, SmallDbOptions());
    EXPECT_OK(built.status());
    if (built.ok()) EXPECT_OK((*built)->storage()->Close());
  }
  IngestCrashRig rig;
  DatabaseOptions options = SmallDbOptions();
  options.storage.read_retry_backoff_micros = 0;
  options.storage.wrap_disk = [&rig](std::unique_ptr<Disk> inner) {
    auto wrapped =
        std::make_unique<FaultInjectingDiskManager>(std::move(inner));
    rig.faults = wrapped.get();
    return std::unique_ptr<Disk>(std::move(wrapped));
  };
  auto opened = Database::Open(path, options);
  EXPECT_OK(opened.status());
  if (opened.ok()) rig.db = std::move(opened).value();
  return rig;
}

void WriteCrashUpserts(Database* db, const gen::SyntheticDataset& data,
                       const std::map<uint64_t, int64_t>& upserts) {
  for (const auto& [gi, v] : upserts) {
    ASSERT_OK(db->ingest()->Write(data.CellKeys(gi), {v}));
  }
}

/// Ingest-commit crash sweep: cut power after N disk operations inside
/// IngestManager::Commit() for every sampled N (covering the delta spill,
/// the state rewrite, and the manifest publication). Reopening must yield
/// exactly the pre-commit epoch or exactly the post-commit epoch — never a
/// half-visible generation — and dbverify must stay clean either way.
TEST(CrashRecoveryTest, IngestCommitCrashRecoversOldOrNewEpoch) {
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(50, 21)));
  const std::map<uint64_t, int64_t> upserts = CrashUpserts(data);
  const query::ConsolidationQuery q = MixedQuery();
  const query::GroupedResult expected_old = BruteForce(data, q);
  const query::GroupedResult expected_new =
      BruteForce(MergedDataset(data, upserts), q);

  // Trace run: how many disk operations a crash-free commit performs.
  uint64_t commit_ops = 0;
  {
    TempFile file("ingest_commit_trace");
    IngestCrashRig rig = OpenIngestRig(file.path(), data);
    ASSERT_NE(rig.db, nullptr);
    WriteCrashUpserts(rig.db.get(), data, upserts);
    const uint64_t before = rig.faults->ops_seen();
    ASSERT_OK(rig.db->ingest()->Commit());
    commit_ops = rig.faults->ops_seen() - before;
  }
  ASSERT_GT(commit_ops, 0u);

  bool saw_old = false;
  bool saw_new = false;
  for (const uint64_t halt : SweepPoints(commit_ops, MaxSweepPoints(25))) {
    TempFile file("ingest_commit_crash");
    IngestCrashRig rig = OpenIngestRig(file.path(), data);
    ASSERT_NE(rig.db, nullptr);
    WriteCrashUpserts(rig.db.get(), data, upserts);
    FaultInjectionOptions fi;
    fi.power_loss_after_ops = halt;
    rig.faults->Arm(fi);
    const Status commit = rig.db->ingest()->Commit();
    rig.db.reset();  // the dead disk abandons the handle

    // An interrupted ingest commit must never brick the file: the previous
    // epoch's manifest is untouched until the new one is durable.
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                         Database::Open(file.path(), SmallDbOptions()));
    if (db->ingested()) {
      saw_new = true;
      EXPECT_EQ(db->ingest()->stats().live_generations, 1u)
          << "halt " << halt;
      ASSERT_OK_AND_ASSIGN(Execution exec,
                           RunQuery(db.get(), EngineKind::kArray, q, true));
      EXPECT_TRUE(exec.result.SameAs(expected_new)) << "halt " << halt;
    } else {
      saw_old = true;
      // A commit that reported success must never recover without its data.
      EXPECT_FALSE(commit.ok()) << "halt " << halt;
      ASSERT_OK_AND_ASSIGN(Execution exec,
                           RunQuery(db.get(), EngineKind::kArray, q, true));
      EXPECT_TRUE(exec.result.SameAs(expected_old)) << "halt " << halt;
    }
    db.reset();
    ASSERT_OK_AND_ASSIGN(VerifyReport report, VerifyDatabaseFile(file.path()));
    EXPECT_TRUE(report.clean())
        << "halt " << halt << ": "
        << (report.AllIssues().empty() ? std::string("?")
                                       : report.AllIssues().front());
  }
  EXPECT_TRUE(saw_old) << "no halt point ever interrupted the commit";
  EXPECT_TRUE(saw_new) << "no halt point ever landed the commit";
}

/// Compaction crash sweep: compaction rewrites the array copy-on-write and
/// only then republishes, so a crash at ANY point (mid-merge, after the
/// manifest slot write, before the old objects are recycled) must recover a
/// database whose content is STILL the merged data — served from the delta
/// generations if the new epoch never landed, from the compacted base if it
/// did — with dbverify clean in both cases.
TEST(CrashRecoveryTest, IngestCompactionCrashAlwaysRecoversMergedContent) {
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(50, 22)));
  const std::map<uint64_t, int64_t> upserts = CrashUpserts(data);
  const query::ConsolidationQuery q = MixedQuery();
  const query::GroupedResult expected =
      BruteForce(MergedDataset(data, upserts), q);

  // Trace run: disk operations of a crash-free compaction.
  uint64_t compact_ops = 0;
  {
    TempFile file("ingest_compact_trace");
    IngestCrashRig rig = OpenIngestRig(file.path(), data);
    ASSERT_NE(rig.db, nullptr);
    WriteCrashUpserts(rig.db.get(), data, upserts);
    ASSERT_OK(rig.db->ingest()->Commit());
    const uint64_t before = rig.faults->ops_seen();
    ASSERT_OK(rig.db->ingest()->Compact());
    compact_ops = rig.faults->ops_seen() - before;
  }
  ASSERT_GT(compact_ops, 0u);

  bool saw_pending = false;
  bool saw_compacted = false;
  for (const uint64_t halt : SweepPoints(compact_ops, MaxSweepPoints(25))) {
    TempFile file("ingest_compact_crash");
    IngestCrashRig rig = OpenIngestRig(file.path(), data);
    ASSERT_NE(rig.db, nullptr);
    WriteCrashUpserts(rig.db.get(), data, upserts);
    ASSERT_OK(rig.db->ingest()->Commit());
    FaultInjectionOptions fi;
    fi.power_loss_after_ops = halt;
    rig.faults->Arm(fi);
    (void)rig.db->ingest()->Compact();
    rig.db.reset();

    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                         Database::Open(file.path(), SmallDbOptions()));
    EXPECT_TRUE(db->ingested()) << "halt " << halt;
    if (db->ingest()->stats().live_generations > 0) {
      saw_pending = true;
    } else {
      saw_compacted = true;
    }
    ASSERT_OK_AND_ASSIGN(Execution exec,
                         RunQuery(db.get(), EngineKind::kArray, q, true));
    EXPECT_TRUE(exec.result.SameAs(expected))
        << "halt " << halt << " lost ingested content";
    db.reset();
    ASSERT_OK_AND_ASSIGN(VerifyReport report, VerifyDatabaseFile(file.path()));
    EXPECT_TRUE(report.clean())
        << "halt " << halt << ": "
        << (report.AllIssues().empty() ? std::string("?")
                                       : report.AllIssues().front());
  }
  EXPECT_TRUE(saw_pending) << "no halt point ever interrupted the compaction";
  EXPECT_TRUE(saw_compacted) << "no halt point ever landed the compaction";
}

}  // namespace
}  // namespace paradise
