// Robustness fuzzing of every deserializer: random and mutated blobs must
// produce a clean Status (never a crash, hang, or huge allocation), and
// valid blobs with single-byte mutations must either round-trip visibly
// differently or fail cleanly.
#include <gtest/gtest.h>

#include "array/chunk.h"
#include "array/chunk_layout.h"
#include "common/lzw.h"
#include "common/random.h"
#include "core/index_to_index.h"
#include "index/bitmap.h"
#include "relational/schema.h"
#include "schema/star_schema.h"
#include "test_util.h"

namespace paradise {
namespace {

std::string RandomBlob(Random* rng, size_t max_len) {
  std::string out;
  const uint64_t len = rng->Uniform(max_len + 1);
  out.reserve(len);
  for (uint64_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng->Uniform(256)));
  }
  return out;
}

class DeserializerFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeserializerFuzz, RandomBlobsNeverCrash) {
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::string blob = RandomBlob(&rng, 512);
    // Every deserializer must return, OK or not, without crashing.
    (void)Chunk::Deserialize(blob);
    (void)ChunkView::Make(blob);
    (void)Bitmap::Deserialize(blob);
    (void)Schema::Deserialize(blob);
    (void)StarSchema::Deserialize(blob);
    (void)LzwDecompress(blob);
    size_t consumed = 0;
    (void)ChunkLayout::Deserialize(blob, &consumed);
    (void)IndexToIndexArray::Deserialize(blob, &consumed);
    (void)UnwrapChunkBlob(std::string(blob));
  }
}

TEST_P(DeserializerFuzz, MutatedValidChunksFailCleanlyOrParse) {
  Random rng(GetParam() + 1000);
  Chunk chunk(200);
  for (int i = 0; i < 40; ++i) {
    (void)chunk.Put(static_cast<uint32_t>(rng.Uniform(200)),
                    rng.UniformRange(-5, 5));
  }
  for (ChunkFormat fmt : {ChunkFormat::kOffsetCompressed, ChunkFormat::kDense,
                          ChunkFormat::kLzwDense}) {
    const std::string valid = chunk.Serialize(fmt);
    for (int trial = 0; trial < 50; ++trial) {
      std::string mutated = valid;
      const size_t pos = rng.Uniform(mutated.size());
      mutated[pos] = static_cast<char>(rng.Uniform(256));
      Result<Chunk> r = Chunk::Deserialize(mutated);
      if (r.ok()) {
        // A parse that succeeds must at least be internally consistent.
        EXPECT_LE(r->num_valid(), r->capacity() == 0 ? r->num_valid()
                                                     : r->capacity());
      }
      // Truncations must fail or parse; never crash.
      if (mutated.size() > 1) {
        (void)Chunk::Deserialize(
            std::string_view(mutated.data(), mutated.size() / 2));
      }
    }
  }
}

TEST_P(DeserializerFuzz, MutatedBitmapsNeverCrash) {
  Random rng(GetParam() + 2000);
  Bitmap bitmap(300);
  for (int i = 0; i < 50; ++i) bitmap.Set(rng.Uniform(300));
  const std::string valid = bitmap.Serialize();
  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = valid;
    mutated[rng.Uniform(mutated.size())] =
        static_cast<char>(rng.Uniform(256));
    Result<Bitmap> r = Bitmap::Deserialize(mutated);
    if (r.ok()) {
      // Iterating a successfully parsed bitmap must terminate.
      uint64_t n = 0;
      for (BitmapIterator it(&*r); it.Valid() && n < 1000000; it.Next()) ++n;
    }
  }
}

TEST_P(DeserializerFuzz, LzwStreamsTerminate) {
  Random rng(GetParam() + 3000);
  const std::string valid = LzwCompress(RandomBlob(&rng, 2000));
  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = valid;
    if (!mutated.empty()) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    Result<std::string> r = LzwDecompress(mutated);
    if (r.ok()) {
      EXPECT_LE(r->size(), 1u << 24);  // bounded by the (mutated) header
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeserializerFuzz,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

TEST(RobustnessTest, OpenRejectsTruncatedDatabase) {
  paradise::testing::TempFile file("trunc");
  {
    auto db = BuildDatabaseFromConfig(file.path(),
                                      paradise::testing::TinyConfig(100),
                                      paradise::testing::SmallDbOptions());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->storage()->Close().ok());
  }
  // Truncate the file to half and try to open it: must fail cleanly.
  {
    std::FILE* f = std::fopen(file.path().c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(file.path().c_str(), size / 2), 0);
  }
  Result<std::unique_ptr<Database>> reopened =
      Database::Open(file.path(), paradise::testing::SmallDbOptions());
  EXPECT_FALSE(reopened.ok());
}

}  // namespace
}  // namespace paradise
