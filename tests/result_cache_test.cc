// ConsolidationResultCache unit + integration tests: canonical-signature
// known answers, LRU eviction under a tiny byte budget, commit-epoch
// invalidation against a real database file, FunctionalRollUp derivability,
// the engine's cache-lookup → derive → full-scan fallback path, and a
// concurrency test intended for the TSan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "core/index_to_index.h"
#include "ingest/ingest.h"
#include "query/engine.h"
#include "query/planner.h"
#include "query/result_cache.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;
using paradise::testing::TinyConfig;
using query::AggFunc;
using query::CanonicalQuery;
using query::ConsolidationQuery;
using query::ConsolidationResultCache;
using query::GroupedResult;
using query::Literal;
using query::ResultCacheStats;
using query::Selection;

ConsolidationQuery ThreeDimQuery() {
  ConsolidationQuery q;
  q.dims.resize(3);
  q.dims[0].group_by_col = 1;
  q.dims[1].group_by_col = 1;
  q.dims[2].group_by_col = 1;
  return q;
}

Selection Sel(size_t col, std::vector<int64_t> values) {
  Selection s;
  s.attr_col = col;
  for (int64_t v : values) s.values.push_back(Literal{v});
  return s;
}

// --- canonical-signature known-answer tests -------------------------------

TEST(CanonicalQueryTest, SignatureKnownAnswer) {
  ConsolidationQuery q = ThreeDimQuery();
  q.dims[1].group_by_col.reset();
  q.dims[2].group_by_col = 2;
  q.dims[0].selections.push_back(Sel(1, {17, 3}));
  q.measure = 0;
  EXPECT_EQ(CanonicalQuery::From(q).Signature(),
            "m0|d0:g1;s1{3,17}|d1:g-|d2:g2");
}

TEST(CanonicalQueryTest, SelectionOrderAndDuplicatesDoNotMatter) {
  ConsolidationQuery a = ThreeDimQuery();
  a.dims[0].selections.push_back(Sel(1, {5, 2, 5, 2}));
  a.dims[0].selections.push_back(Sel(2, {1}));

  ConsolidationQuery b = ThreeDimQuery();
  b.dims[0].selections.push_back(Sel(2, {1, 1}));
  b.dims[0].selections.push_back(Sel(1, {2, 5}));

  EXPECT_EQ(CanonicalQuery::From(a), CanonicalQuery::From(b));
  EXPECT_EQ(CanonicalQuery::From(a).Signature(),
            CanonicalQuery::From(b).Signature());
}

TEST(CanonicalQueryTest, AndOfSameColumnSelectionsIntersects) {
  // (col1 IN {2,5,9}) AND (col1 IN {5,9,11}) == col1 IN {5,9}.
  ConsolidationQuery a = ThreeDimQuery();
  a.dims[0].selections.push_back(Sel(1, {2, 5, 9}));
  a.dims[0].selections.push_back(Sel(1, {5, 9, 11}));

  ConsolidationQuery b = ThreeDimQuery();
  b.dims[0].selections.push_back(Sel(1, {5, 9}));

  EXPECT_EQ(CanonicalQuery::From(a).Signature(),
            CanonicalQuery::From(b).Signature());
}

TEST(CanonicalQueryTest, AggregateFunctionIsExcluded) {
  // Engines always maintain the full AggState, so one cached result answers
  // every AggFunc of the same grouping.
  ConsolidationQuery a = ThreeDimQuery();
  a.agg = AggFunc::kSum;
  ConsolidationQuery b = ThreeDimQuery();
  b.agg = AggFunc::kMin;
  EXPECT_EQ(CanonicalQuery::From(a).Signature(),
            CanonicalQuery::From(b).Signature());
}

TEST(CanonicalQueryTest, MeasureAndGroupingDistinguish) {
  ConsolidationQuery base = ThreeDimQuery();
  ConsolidationQuery other_measure = ThreeDimQuery();
  other_measure.measure = 1;
  ConsolidationQuery other_level = ThreeDimQuery();
  other_level.dims[1].group_by_col = 2;
  ConsolidationQuery collapsed = ThreeDimQuery();
  collapsed.dims[1].group_by_col.reset();

  const std::string sig = CanonicalQuery::From(base).Signature();
  EXPECT_NE(sig, CanonicalQuery::From(other_measure).Signature());
  EXPECT_NE(sig, CanonicalQuery::From(other_level).Signature());
  EXPECT_NE(sig, CanonicalQuery::From(collapsed).Signature());
}

TEST(CanonicalQueryTest, StringAndIntSpellingsNormalizeIdentically) {
  // NormalizeLiteral maps both spellings of the same dictionary key to one
  // int64, so mixed-type value lists canonicalize to one signature.
  ConsolidationQuery a = ThreeDimQuery();
  Selection s1;
  s1.attr_col = 1;
  s1.values.push_back(Literal{int64_t{7}});
  a.dims[0].selections.push_back(s1);

  ConsolidationQuery b = ThreeDimQuery();
  Selection s2;
  s2.attr_col = 1;
  s2.values.push_back(Literal{int64_t{7}});
  s2.values.push_back(Literal{int64_t{7}});
  b.dims[0].selections.push_back(s2);

  EXPECT_EQ(CanonicalQuery::From(a).Signature(),
            CanonicalQuery::From(b).Signature());
}

// --- LRU / stats unit tests ------------------------------------------------

std::shared_ptr<const GroupedResult> MakeResult(size_t rows, int32_t tag) {
  GroupedResult r({"dim0.a1"});
  for (size_t i = 0; i < rows; ++i) {
    query::AggState agg;
    agg.Add(tag + static_cast<int64_t>(i));
    r.Add(query::ResultRow{{static_cast<int32_t>(i)}, agg});
  }
  r.SortCanonical();
  return std::make_shared<const GroupedResult>(std::move(r));
}

CanonicalQuery TaggedQuery(size_t measure) {
  ConsolidationQuery q = ThreeDimQuery();
  q.measure = measure;
  return CanonicalQuery::From(q);
}

TEST(ResultCacheTest, HitMissAndLruRefresh) {
  ConsolidationResultCache cache;
  const CanonicalQuery q0 = TaggedQuery(0);
  EXPECT_EQ(cache.Lookup("db", 1, q0), nullptr);
  cache.Insert("db", 1, q0, MakeResult(4, 100));
  std::shared_ptr<const GroupedResult> hit = cache.Lookup("db", 1, q0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->num_groups(), 4u);
  // Different scope is a different entry space.
  EXPECT_EQ(cache.Lookup("other", 1, q0), nullptr);

  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 3u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes_in_use, 0u);
}

TEST(ResultCacheTest, EpochMismatchInvalidates) {
  ConsolidationResultCache cache;
  const CanonicalQuery q0 = TaggedQuery(0);
  cache.Insert("db", 1, q0, MakeResult(4, 100));
  // A newer epoch never serves the stale entry, and drops it.
  EXPECT_EQ(cache.Lookup("db", 2, q0), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
  // The entry really is gone, even for the original epoch.
  EXPECT_EQ(cache.Lookup("db", 1, q0), nullptr);
}

TEST(ResultCacheTest, LruEvictionUnderTinyBudget) {
  // Measure one entry's accounted size, then budget for two and a half
  // entries so the third insert must evict exactly one.
  ConsolidationResultCache probe;
  probe.Insert("db", 1, TaggedQuery(0), MakeResult(2, 0));
  const uint64_t entry_bytes = probe.stats().bytes_in_use;
  ASSERT_GT(entry_bytes, 0u);

  ConsolidationResultCache::Options options;
  options.byte_budget = entry_bytes * 5 / 2;
  ConsolidationResultCache cache(options);

  cache.Insert("db", 1, TaggedQuery(0), MakeResult(2, 0));
  cache.Insert("db", 1, TaggedQuery(1), MakeResult(2, 10));
  ASSERT_NE(cache.Lookup("db", 1, TaggedQuery(0)), nullptr);  // refresh 0
  cache.Insert("db", 1, TaggedQuery(2), MakeResult(2, 20));   // evicts 1

  EXPECT_NE(cache.Lookup("db", 1, TaggedQuery(0)), nullptr);
  EXPECT_EQ(cache.Lookup("db", 1, TaggedQuery(1)), nullptr);
  EXPECT_NE(cache.Lookup("db", 1, TaggedQuery(2)), nullptr);
  const ResultCacheStats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes_in_use, options.byte_budget);
}

TEST(ResultCacheTest, OversizedEntryIsRejected) {
  ConsolidationResultCache::Options options;
  options.byte_budget = 64;
  ConsolidationResultCache cache(options);
  cache.Insert("db", 1, TaggedQuery(0), MakeResult(1000, 0));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.Lookup("db", 1, TaggedQuery(0)), nullptr);
}

TEST(ResultCacheTest, PeekMismatchIsACleanMissThatLeavesTheEntry) {
  ConsolidationResultCache cache;
  const CanonicalQuery q0 = TaggedQuery(0);
  cache.Insert("db", 1, q0, MakeResult(4, 100));
  // A pinned reader probing a newer (or older) epoch misses cleanly...
  EXPECT_EQ(cache.Peek("db", 2, q0), nullptr);
  // ...without dropping the entry current-epoch traffic is serving from.
  EXPECT_EQ(cache.stats().invalidations, 0u);
  EXPECT_EQ(cache.stats().entries, 1u);
  ASSERT_NE(cache.Peek("db", 1, q0), nullptr);
  ASSERT_NE(cache.Lookup("db", 1, q0), nullptr);
}

TEST(ResultCacheTest, ClearDropsEverything) {
  ConsolidationResultCache cache;
  cache.Insert("db", 1, TaggedQuery(0), MakeResult(2, 0));
  cache.Insert("db", 1, TaggedQuery(1), MakeResult(2, 1));
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes_in_use, 0u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(ResultCacheTest, MetricsRegistryCountersMirrorEvents) {
  MetricsRegistry::Default().ResetAll();
  ConsolidationResultCache::Options options;
  options.metrics_enabled = true;
  ConsolidationResultCache cache(options);
  cache.Insert("db", 1, TaggedQuery(0), MakeResult(2, 0));
  ASSERT_NE(cache.Lookup("db", 1, TaggedQuery(0)), nullptr);
  cache.Lookup("db", 1, TaggedQuery(1));

  MetricsRegistry& reg = MetricsRegistry::Default();
  ASSERT_NE(reg.FindCounter("resultcache.hits"), nullptr);
  EXPECT_EQ(reg.FindCounter("resultcache.hits")->value(), 1u);
  EXPECT_EQ(reg.FindCounter("resultcache.misses")->value(), 1u);
  EXPECT_EQ(reg.FindCounter("resultcache.insertions")->value(), 1u);
  ASSERT_NE(reg.FindGauge("resultcache.entries"), nullptr);
  EXPECT_EQ(reg.FindGauge("resultcache.entries")->value(), 1);
  EXPECT_GT(reg.FindGauge("resultcache.bytes")->value(), 0);
  ASSERT_NE(reg.FindHistogram("resultcache.lookup_micros"), nullptr);
  EXPECT_EQ(reg.FindHistogram("resultcache.lookup_micros")->count(), 2u);
}

// --- derivability: FunctionalRollUp ---------------------------------------

class ResultCacheDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("result_cache");
    config_ = TinyConfig(/*valid=*/200, /*seed=*/11);
    ASSERT_OK_AND_ASSIGN(data_, gen::Generate(config_));
    ASSERT_OK_AND_ASSIGN(
        db_, BuildDatabaseFromDataset(file_->path(), data_, SmallDbOptions()));
  }

  std::unique_ptr<TempFile> file_;
  gen::GenConfig config_;
  gen::SyntheticDataset data_;
  std::unique_ptr<Database> db_;
};

TEST_F(ResultCacheDbTest, FunctionalRollUpMatchesHierarchyShape) {
  // TinyConfig dim1 has size 8 with level cardinalities {4, 2}: level-1
  // blocks of 2 members nest exactly into level-2 blocks of 4, so 1→2 is
  // functional. dim0 (size 6, {3, 2}) splits a level-1 block of 2 across two
  // level-2 blocks of 3 — not functional.
  const IndexToIndexArray& functional = db_->olap()->i2i(1);
  std::optional<std::vector<int32_t>> map = functional.FunctionalRollUp(1, 2);
  ASSERT_TRUE(map.has_value());
  ASSERT_EQ(map->size(), 4u);
  // Spot-check: the composed map equals the direct level-2 map.
  for (uint32_t b = 0; b < functional.num_members(); ++b) {
    EXPECT_EQ((*map)[functional.Map(1, b)], functional.Map(2, b));
  }

  EXPECT_FALSE(db_->olap()->i2i(0).FunctionalRollUp(1, 2).has_value());

  // Level 0 (the identity) rolls up to any level, trivially.
  EXPECT_TRUE(db_->olap()->i2i(0).FunctionalRollUp(0, 2).has_value());
  // Out-of-range levels are rejected, not UB.
  EXPECT_FALSE(functional.FunctionalRollUp(1, 9).has_value());
}

// --- engine integration: hit, derive, fallback, epoch churn ----------------

TEST_F(ResultCacheDbTest, ExactHitIsBitIdenticalAndSkipsTheEngine) {
  ConsolidationResultCache cache;
  RunQueryOptions cached;
  cached.cache = &cache;

  ConsolidationQuery q = ThreeDimQuery();
  const GroupedResult expected = BruteForce(data_, q);

  ASSERT_OK_AND_ASSIGN(Execution miss,
                       RunQuery(db_.get(), EngineKind::kArray, q, cached));
  EXPECT_EQ(miss.stats.cache_outcome, CacheOutcome::kMiss);
  ASSERT_TRUE(miss.result.SameAs(expected));

  ASSERT_OK_AND_ASSIGN(Execution hit,
                       RunQuery(db_.get(), EngineKind::kArray, q, cached));
  EXPECT_EQ(hit.stats.cache_outcome, CacheOutcome::kHit);
  ASSERT_TRUE(hit.result.SameAs(expected));
  // The whole point: a hit performs zero storage reads.
  EXPECT_EQ(hit.stats.io.logical_reads, 0u);

  // The hit is engine-agnostic — a different engine serves the same entry.
  ASSERT_OK_AND_ASSIGN(Execution star,
                       RunQuery(db_.get(), EngineKind::kStarJoin, q, cached));
  EXPECT_EQ(star.stats.cache_outcome, CacheOutcome::kHit);
  ASSERT_TRUE(star.result.SameAs(expected));
}

TEST_F(ResultCacheDbTest, CoarserGroupByIsDerivedFromFinerEntry) {
  ConsolidationResultCache::Options opts;
  opts.derive_row_cost = 0;  // force derivation whenever structurally possible
  ConsolidationResultCache cache(opts);
  RunQueryOptions cached;
  cached.cache = &cache;

  ConsolidationQuery fine = ThreeDimQuery();
  ASSERT_OK_AND_ASSIGN(Execution seeded,
                       RunQuery(db_.get(), EngineKind::kArray, fine, cached));
  EXPECT_EQ(seeded.stats.cache_outcome, CacheOutcome::kMiss);

  // dim1 grouped one level coarser: derivable (functional 1→2 roll-up).
  ConsolidationQuery coarse = fine;
  coarse.dims[1].group_by_col = 2;
  ASSERT_OK_AND_ASSIGN(Execution derived,
                       RunQuery(db_.get(), EngineKind::kArray, coarse, cached));
  EXPECT_EQ(derived.stats.cache_outcome, CacheOutcome::kDerived);
  EXPECT_EQ(derived.stats.cache_source_rows, seeded.result.num_groups());
  ASSERT_TRUE(derived.result.SameAs(BruteForce(data_, coarse)));
  EXPECT_EQ(cache.stats().derived_hits, 1u);

  // Collapsing a dimension entirely is also a roll-up (merge all its rows).
  ConsolidationQuery collapsed = fine;
  collapsed.dims[2].group_by_col.reset();
  ASSERT_OK_AND_ASSIGN(
      Execution merged,
      RunQuery(db_.get(), EngineKind::kArray, collapsed, cached));
  EXPECT_EQ(merged.stats.cache_outcome, CacheOutcome::kDerived);
  ASSERT_TRUE(merged.result.SameAs(BruteForce(data_, collapsed)));

  // The derived result was inserted under its own signature: exact hit now.
  ASSERT_OK_AND_ASSIGN(Execution again,
                       RunQuery(db_.get(), EngineKind::kArray, coarse, cached));
  EXPECT_EQ(again.stats.cache_outcome, CacheOutcome::kHit);
}

TEST_F(ResultCacheDbTest, NonFunctionalHierarchyFallsBackToScan) {
  ConsolidationResultCache::Options opts;
  opts.derive_row_cost = 0;
  ConsolidationResultCache cache(opts);
  RunQueryOptions cached;
  cached.cache = &cache;

  ConsolidationQuery fine = ThreeDimQuery();
  ASSERT_OK_AND_ASSIGN(Execution seeded,
                       RunQuery(db_.get(), EngineKind::kArray, fine, cached));

  // dim0's 1→2 roll-up is NOT functional in TinyConfig: the derivation
  // attempt must detect that and fall back to a correct full scan.
  ConsolidationQuery coarse = fine;
  coarse.dims[0].group_by_col = 2;
  ASSERT_OK_AND_ASSIGN(Execution exec,
                       RunQuery(db_.get(), EngineKind::kArray, coarse, cached));
  EXPECT_EQ(exec.stats.cache_outcome, CacheOutcome::kMiss);
  ASSERT_TRUE(exec.result.SameAs(BruteForce(data_, coarse)));
  EXPECT_EQ(cache.stats().derived_hits, 0u);
}

TEST_F(ResultCacheDbTest, DeriveVsScanCostGate) {
  // With the default cost model a finer result of very few rows derives;
  // an absurdly high per-row cost forces the scan even when structurally
  // derivable.
  const uint64_t cells = db_->olap()->layout().total_cells();
  EXPECT_TRUE(ChoosePlan(*db_, ThreeDimQuery()).ok());  // sanity
  const DeriveDecision cheap = ChooseDeriveOrScan(*db_, 4, 4);
  EXPECT_TRUE(cheap.derive);
  EXPECT_EQ(cheap.scan_cost, cells);
  const DeriveDecision expensive = ChooseDeriveOrScan(*db_, cells, 1000);
  EXPECT_FALSE(expensive.derive);
  EXPECT_FALSE(expensive.reason.empty());
}

TEST_F(ResultCacheDbTest, CommitEpochChurnInvalidatesAcrossReload) {
  ConsolidationResultCache cache;
  RunQueryOptions cached;
  cached.cache = &cache;

  ConsolidationQuery q = ThreeDimQuery();
  ASSERT_OK_AND_ASSIGN(Execution first,
                       RunQuery(db_.get(), EngineKind::kArray, q, cached));
  const uint64_t epoch_before = db_->commit_epoch();

  // Mutate one cell (changing the data!) and durably commit: the manifest
  // epoch advances and the cached entry must never be served again.
  const std::vector<int32_t> keys = data_.CellKeys(data_.cell_global_indices[0]);
  ASSERT_OK_AND_ASSIGN(std::optional<int64_t> old_value,
                       db_->olap()->ReadCellByKeys(keys));
  ASSERT_TRUE(old_value.has_value());
  ASSERT_OK(db_->olap()->WriteCellByKeys(keys, *old_value + 1000));
  ASSERT_OK(db_->storage()->Checkpoint());
  ASSERT_GT(db_->commit_epoch(), epoch_before);

  ASSERT_OK_AND_ASSIGN(Execution after,
                       RunQuery(db_.get(), EngineKind::kArray, q, cached));
  EXPECT_EQ(after.stats.cache_outcome, CacheOutcome::kMiss);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(after.result.TotalSum(), first.result.TotalSum() + 1000);

  // A reload of the committed file keeps the same epoch — the fresh entry
  // keeps serving, which is correct because nothing changed on disk.
  db_.reset();
  ASSERT_OK_AND_ASSIGN(db_, Database::Open(file_->path(), SmallDbOptions()));
  ASSERT_OK_AND_ASSIGN(Execution reloaded,
                       RunQuery(db_.get(), EngineKind::kArray, q, cached));
  EXPECT_EQ(reloaded.stats.cache_outcome, CacheOutcome::kHit);
  ASSERT_TRUE(reloaded.result.SameAs(after.result));
}

TEST_F(ResultCacheDbTest, CachedModeStillRejectsUnservableQueries) {
  ConsolidationResultCache cache;
  RunQueryOptions cached;
  cached.cache = &cache;

  // Seed the cache with a selection-free query via an engine that allows it.
  ConsolidationQuery q = ThreeDimQuery();
  ASSERT_OK(RunQuery(db_.get(), EngineKind::kStarJoin, q, cached).status());
  // The bitmap engine rejects selection-free queries; a cache hit must not
  // mask that error.
  EXPECT_FALSE(RunQuery(db_.get(), EngineKind::kBitmap, q, cached).ok());
  // Same for a structurally invalid query.
  ConsolidationQuery bad = ThreeDimQuery();
  bad.dims[0].group_by_col = 9;
  EXPECT_FALSE(RunQuery(db_.get(), EngineKind::kArray, bad, cached).ok());
}

TEST_F(ResultCacheDbTest, ExecutionStatsJsonCarriesCacheOutcome) {
  ConsolidationResultCache cache;
  RunQueryOptions cached;
  cached.cache = &cache;
  ConsolidationQuery q = ThreeDimQuery();
  ASSERT_OK_AND_ASSIGN(Execution miss,
                       RunQuery(db_.get(), EngineKind::kArray, q, cached));
  EXPECT_NE(miss.stats.ToJson().find("\"cache\":{\"outcome\":\"miss\""),
            std::string::npos);
  ASSERT_OK_AND_ASSIGN(Execution hit,
                       RunQuery(db_.get(), EngineKind::kArray, q, cached));
  EXPECT_NE(hit.stats.ToJson().find("\"cache\":{\"outcome\":\"hit\""),
            std::string::npos);
  // Uncached runs report the outcome as off.
  ASSERT_OK_AND_ASSIGN(Execution off,
                       RunQuery(db_.get(), EngineKind::kArray, q));
  EXPECT_NE(off.stats.ToJson().find("\"cache\":{\"outcome\":\"off\""),
            std::string::npos);
}

// --- concurrency (exercised under TSan in CI) ------------------------------

TEST(ResultCacheConcurrencyTest, ConcurrentLookupInsertDeriveIsRaceFree) {
  ConsolidationResultCache::Options opts;
  opts.byte_budget = 16 * 1024;  // small enough to force evictions mid-test
  ConsolidationResultCache cache(opts);
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::atomic<uint64_t> served{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &served, t] {
      for (int i = 0; i < kIters; ++i) {
        const size_t measure = static_cast<size_t>((t + i) % 6);
        const CanonicalQuery canon = TaggedQuery(measure);
        std::shared_ptr<const GroupedResult> hit =
            cache.Lookup("db", 1, canon);
        if (hit == nullptr) {
          cache.Insert("db", 1, canon, MakeResult(3 + measure, t));
        } else {
          // Read through the shared result while other threads evict.
          served.fetch_add(hit->num_groups(), std::memory_order_relaxed);
        }
        ConsolidationQuery target = ThreeDimQuery();
        target.measure = measure;
        target.dims[1].group_by_col = 2;
        cache.DerivationCandidates("db", 1, CanonicalQuery::From(target));
        if (i % 64 == 0) cache.stats();
        if (i % 128 == 127) cache.Lookup("db", 2, canon);  // invalidate path
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
  EXPECT_GT(served.load(), 0u);
}

/// The epoch-pinned regression for the ingest path (TSan job): readers
/// pinned to a historical epoch Peek while real ingest commits bump the
/// commit epoch and current-epoch Lookups storm the cache with
/// invalidations. A Peek must only ever yield a clean miss (nullptr — the
/// session layer turns that into SNAPSHOT_GONE) or a hit whose result stays
/// fully readable after the entry is concurrently dropped — never a dangling
/// pointer and never an invalidation charged to the pinned reader.
TEST(ResultCacheConcurrencyTest, PinnedPeekSurvivesIngestInvalidationStorm) {
  TempFile file("cache_peek_storm");
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data,
                       gen::Generate(TinyConfig(40, 31)));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
  constexpr size_t kQueries = 4;
  ConsolidationResultCache cache;
  const std::string scope = "db";
  const uint64_t pinned = db->commit_epoch();
  for (size_t m = 0; m < kQueries; ++m) {
    cache.Insert(scope, pinned, TaggedQuery(m),
                 MakeResult(4, static_cast<int32_t>(m)));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> pinned_hits{0};
  std::atomic<uint64_t> clean_misses{0};
  std::atomic<uint64_t> served{0};

  // The storm: each ingest commit advances the epoch; current-epoch lookups
  // then drop every stale entry (including the pinned readers') and refile
  // fresh results under the new epoch.
  std::thread ingester([&] {
    for (int round = 0; round < 24; ++round) {
      const uint64_t gi = data.cell_global_indices[static_cast<size_t>(round) %
                                                   data.cell_global_indices
                                                       .size()];
      ASSERT_OK(db->ingest()->Write(data.CellKeys(gi), {round}));
      ASSERT_OK(db->ingest()->Commit());
      const uint64_t epoch = db->commit_epoch();
      for (size_t m = 0; m < kQueries; ++m) {
        cache.Lookup(scope, epoch, TaggedQuery(m));
        cache.Insert(scope, epoch, TaggedQuery(m),
                     MakeResult(4, static_cast<int32_t>(m)));
      }
    }
    stop.store(true, std::memory_order_relaxed);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t m = (static_cast<size_t>(t) + i++) % kQueries;
        std::shared_ptr<const GroupedResult> hit =
            cache.Peek(scope, pinned, TaggedQuery(m));
        if (hit != nullptr) {
          // Keep reading through the shared result while the storm drops
          // and replaces the entry underneath us.
          served.fetch_add(hit->num_groups(), std::memory_order_relaxed);
          pinned_hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          clean_misses.fetch_add(1, std::memory_order_relaxed);
          // A pinned session refiling its own freshly computed result.
          cache.Insert(scope, pinned, TaggedQuery(m),
                       MakeResult(4, static_cast<int32_t>(m)));
        }
      }
    });
  }
  ingester.join();
  for (std::thread& th : readers) th.join();
  EXPECT_GT(pinned_hits.load(), 0u);
  EXPECT_GT(clean_misses.load(), 0u);
  EXPECT_GT(served.load(), 0u);
}

}  // namespace
}  // namespace paradise
