// B+tree tests: point and range behaviour, duplicate keys, node splits at
// scale (parameterized), deletion, persistence, and structural invariants.
#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "common/random.h"
#include "index/btree.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::TempFile;

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("btree");
    StorageOptions options;
    options.page_size = 4096;
    options.buffer_pool_pages = 64;
    ASSERT_OK(disk_.Create(file_->path(), options));
    pool_ = std::make_unique<BufferPool>(&disk_, options);
  }

  std::unique_ptr<TempFile> file_;
  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BTreeTest, EmptyTree) {
  ASSERT_OK_AND_ASSIGN(BTree tree, BTree::Create(pool_.get()));
  ASSERT_OK_AND_ASSIGN(bool has, tree.Contains(1));
  EXPECT_FALSE(has);
  ASSERT_OK_AND_ASSIGN(uint64_t n, tree.CountEntries());
  EXPECT_EQ(n, 0u);
  ASSERT_OK_AND_ASSIGN(BTreeIterator it, tree.Begin());
  EXPECT_FALSE(it.Valid());
  ASSERT_OK(tree.CheckInvariants());
}

TEST_F(BTreeTest, InsertAndLookup) {
  ASSERT_OK_AND_ASSIGN(BTree tree, BTree::Create(pool_.get()));
  ASSERT_OK(tree.Insert(5, 50));
  ASSERT_OK(tree.Insert(3, 30));
  ASSERT_OK(tree.Insert(9, 90));
  ASSERT_OK_AND_ASSIGN(std::optional<int64_t> v, tree.GetFirst(3));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 30);
  ASSERT_OK_AND_ASSIGN(std::optional<int64_t> missing, tree.GetFirst(4));
  EXPECT_FALSE(missing.has_value());
}

TEST_F(BTreeTest, DuplicateKeysKeepAllValues) {
  ASSERT_OK_AND_ASSIGN(BTree tree, BTree::Create(pool_.get()));
  for (int64_t v = 0; v < 10; ++v) ASSERT_OK(tree.Insert(7, v));
  std::vector<int64_t> values;
  ASSERT_OK(tree.GetValues(7, &values));
  ASSERT_EQ(values.size(), 10u);
  for (int64_t v = 0; v < 10; ++v) EXPECT_EQ(values[v], v);
}

TEST_F(BTreeTest, ExactDuplicatePairRejected) {
  ASSERT_OK_AND_ASSIGN(BTree tree, BTree::Create(pool_.get()));
  ASSERT_OK(tree.Insert(1, 2));
  EXPECT_TRUE(tree.Insert(1, 2).IsAlreadyExists());
  ASSERT_OK(tree.Insert(1, 3));  // same key, different value is fine
}

TEST_F(BTreeTest, IterationIsSorted) {
  ASSERT_OK_AND_ASSIGN(BTree tree, BTree::Create(pool_.get()));
  Random rng(77);
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK(tree.Insert(static_cast<int64_t>(rng.Uniform(100)), i));
  }
  ASSERT_OK_AND_ASSIGN(BTreeIterator it, tree.Begin());
  int64_t prev_key = INT64_MIN;
  int64_t prev_val = INT64_MIN;
  uint64_t count = 0;
  while (it.Valid()) {
    EXPECT_TRUE(it.key() > prev_key ||
                (it.key() == prev_key && it.value() > prev_val));
    prev_key = it.key();
    prev_val = it.value();
    ++count;
    ASSERT_OK(it.Next());
  }
  EXPECT_EQ(count, 500u);
}

TEST_F(BTreeTest, SeekFindsLowerBound) {
  ASSERT_OK_AND_ASSIGN(BTree tree, BTree::Create(pool_.get()));
  for (int64_t k = 0; k < 100; k += 10) ASSERT_OK(tree.Insert(k, k));
  ASSERT_OK_AND_ASSIGN(BTreeIterator it, tree.Seek(25));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 30);
  ASSERT_OK_AND_ASSIGN(it, tree.Seek(30));
  EXPECT_EQ(it.key(), 30);
  ASSERT_OK_AND_ASSIGN(it, tree.Seek(1000));
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeTest, NegativeKeys) {
  ASSERT_OK_AND_ASSIGN(BTree tree, BTree::Create(pool_.get()));
  ASSERT_OK(tree.Insert(-100, 1));
  ASSERT_OK(tree.Insert(0, 2));
  ASSERT_OK(tree.Insert(100, 3));
  ASSERT_OK_AND_ASSIGN(BTreeIterator it, tree.Begin());
  EXPECT_EQ(it.key(), -100);
  ASSERT_OK_AND_ASSIGN(std::optional<int64_t> v, tree.GetFirst(-100));
  EXPECT_EQ(*v, 1);
}

TEST_F(BTreeTest, DeleteExactPair) {
  ASSERT_OK_AND_ASSIGN(BTree tree, BTree::Create(pool_.get()));
  ASSERT_OK(tree.Insert(4, 40));
  ASSERT_OK(tree.Insert(4, 41));
  bool erased = false;
  ASSERT_OK(tree.Delete(4, 40, &erased));
  EXPECT_TRUE(erased);
  ASSERT_OK(tree.Delete(4, 40, &erased));
  EXPECT_FALSE(erased);  // already gone
  std::vector<int64_t> values;
  ASSERT_OK(tree.GetValues(4, &values));
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], 41);
  ASSERT_OK(tree.CheckInvariants());
}

TEST_F(BTreeTest, PersistsAcrossPoolEviction) {
  ASSERT_OK_AND_ASSIGN(BTree tree, BTree::Create(pool_.get()));
  for (int64_t k = 0; k < 2000; ++k) ASSERT_OK(tree.Insert(k, k * 2));
  const PageId root = tree.root();
  ASSERT_OK(pool_->FlushAndEvictAll());
  ASSERT_OK_AND_ASSIGN(BTree reopened, BTree::Open(pool_.get(), root));
  ASSERT_OK_AND_ASSIGN(std::optional<int64_t> v, reopened.GetFirst(1234));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 2468);
  ASSERT_OK_AND_ASSIGN(uint64_t n, reopened.CountEntries());
  EXPECT_EQ(n, 2000u);
  ASSERT_OK(reopened.CheckInvariants());
}

TEST_F(BTreeTest, OpenRejectsNonTreePage) {
  ASSERT_OK_AND_ASSIGN(PageGuard g, pool_->NewPage());
  const PageId raw = g.page_id();
  g.Release();
  EXPECT_TRUE(BTree::Open(pool_.get(), raw).status().IsCorruption());
}

// Parameterized scale sweep: enough entries to force multi-level trees.
class BTreeScaleTest : public BTreeTest,
                       public ::testing::WithParamInterface<int> {};

TEST_P(BTreeScaleTest, RandomInsertLookupInvariants) {
  const int n = GetParam();
  ASSERT_OK_AND_ASSIGN(BTree tree, BTree::Create(pool_.get()));
  Random rng(static_cast<uint64_t>(n));
  std::multimap<int64_t, int64_t> reference;
  for (int i = 0; i < n; ++i) {
    const int64_t key = static_cast<int64_t>(rng.Uniform(n / 2 + 1));
    Status st = tree.Insert(key, i);
    ASSERT_TRUE(st.ok()) << st.ToString();
    reference.emplace(key, i);
  }
  ASSERT_OK(tree.CheckInvariants());
  ASSERT_OK_AND_ASSIGN(uint64_t count, tree.CountEntries());
  EXPECT_EQ(count, reference.size());
  // Height must be logarithmic (leaf capacity ~255 at 4 KiB pages).
  ASSERT_OK_AND_ASSIGN(uint32_t height, tree.Height());
  EXPECT_LE(height, 4u);
  // Spot-check 50 keys.
  for (int probe = 0; probe <= 50; ++probe) {
    const int64_t key = probe * (n / 100 + 1);
    std::vector<int64_t> got;
    ASSERT_OK(tree.GetValues(key, &got));
    auto [lo, hi] = reference.equal_range(key);
    std::vector<int64_t> expected;
    for (auto it = lo; it != hi; ++it) expected.push_back(it->second);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected) << "key " << key;
  }
}

TEST_P(BTreeScaleTest, SequentialInsertStaysBalanced) {
  const int n = GetParam();
  ASSERT_OK_AND_ASSIGN(BTree tree, BTree::Create(pool_.get()));
  for (int i = 0; i < n; ++i) ASSERT_OK(tree.Insert(i, i));
  ASSERT_OK(tree.CheckInvariants());
  ASSERT_OK_AND_ASSIGN(uint64_t count, tree.CountEntries());
  EXPECT_EQ(count, static_cast<uint64_t>(n));
  ASSERT_OK_AND_ASSIGN(BTreeIterator it, tree.Seek(n / 2));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), n / 2);
}

TEST_P(BTreeScaleTest, ReverseInsertStaysBalanced) {
  const int n = GetParam();
  ASSERT_OK_AND_ASSIGN(BTree tree, BTree::Create(pool_.get()));
  for (int i = n - 1; i >= 0; --i) ASSERT_OK(tree.Insert(i, i));
  ASSERT_OK(tree.CheckInvariants());
  ASSERT_OK_AND_ASSIGN(uint64_t count, tree.CountEntries());
  EXPECT_EQ(count, static_cast<uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BTreeScaleTest,
                         ::testing::Values(10, 300, 1000, 5000, 20000));

TEST(StringPrefixKeyTest, PreservesOrder) {
  const std::vector<std::string> sorted = {"",     "A",    "AA1", "AA2",
                                           "AB",   "B",    "BA",  "ZZZZ"};
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LT(StringPrefixKey(sorted[i - 1]), StringPrefixKey(sorted[i]))
        << sorted[i - 1] << " vs " << sorted[i];
  }
}

TEST(StringPrefixKeyTest, DistinctShortStringsDistinctKeys) {
  std::set<int64_t> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.insert(StringPrefixKey("V" + std::to_string(i)));
  }
  EXPECT_EQ(keys.size(), 1000u);
}

TEST(StringPrefixKeyTest, OnlyFirstEightBytesMatter) {
  EXPECT_EQ(StringPrefixKey("12345678"), StringPrefixKey("12345678ZZZ"));
}

}  // namespace
}  // namespace paradise
