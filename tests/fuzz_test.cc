// Randomized end-to-end fuzzing: for each seed, generate a random star
// schema (dimension count, sizes, cardinalities, chunk extents that need
// not divide the sizes, density) and a random query (grouping levels,
// selections with random value lists), then assert that every applicable
// engine matches the brute-force reference exactly.
//
// Reproducing a failure: every test logs its effective seed; re-run the
// whole binary with `--rng-seed=<seed>` (or PARADISE_FUZZ_SEED=<seed>) to
// pin every instance to that one seed regardless of which gtest parameter
// it runs under.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string_view>
#include <thread>

#include "common/cancellation.h"
#include "common/random.h"
#include "query/engine.h"
#include "query/result_cache.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/fault_injection.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;

/// Set by --rng-seed / PARADISE_FUZZ_SEED in main(); overrides every
/// parameterized instance's seed for reproduction runs.
std::optional<uint64_t> g_seed_override;

uint64_t EffectiveSeed(uint64_t param) {
  return g_seed_override.value_or(param);
}

std::string SeedTrace(uint64_t seed) {
  return "fuzz seed " + std::to_string(seed) + " (reproduce with --rng-seed=" +
         std::to_string(seed) + " or PARADISE_FUZZ_SEED=" +
         std::to_string(seed) + ")";
}

gen::GenConfig RandomConfig(Random* rng) {
  gen::GenConfig config;
  const size_t n = 2 + rng->Uniform(3);  // 2..4 dimensions
  config.dims.resize(n);
  uint64_t total = 1;
  for (size_t d = 0; d < n; ++d) {
    config.dims[d].name = "dim" + std::to_string(d);
    config.dims[d].size = static_cast<uint32_t>(3 + rng->Uniform(14));
    const uint32_t c1 =
        static_cast<uint32_t>(1 + rng->Uniform(config.dims[d].size));
    const uint32_t c2 = static_cast<uint32_t>(1 + rng->Uniform(c1));
    config.dims[d].level_cardinalities = {c1, c2};
    config.chunk_extents.push_back(
        static_cast<uint32_t>(1 + rng->Uniform(config.dims[d].size + 2)));
    total *= config.dims[d].size;
  }
  // Density from near-empty to full.
  config.num_valid_cells = 1 + rng->Uniform(total);
  config.seed = rng->Next();
  return config;
}

query::ConsolidationQuery RandomQuery(const gen::GenConfig& config,
                                      Random* rng) {
  query::ConsolidationQuery q;
  q.dims.resize(config.dims.size());
  for (size_t d = 0; d < config.dims.size(); ++d) {
    if (rng->Bernoulli(0.6)) {
      q.dims[d].group_by_col = 1 + rng->Uniform(2);
    }
    const uint64_t num_selections = rng->Uniform(3);  // 0..2 per dimension
    for (uint64_t s = 0; s < num_selections; ++s) {
      const size_t attr = 1 + rng->Uniform(2);
      const uint32_t card = config.dims[d].level_cardinalities[attr - 1];
      query::Selection sel;
      sel.attr_col = attr;
      const uint64_t num_values = 1 + rng->Uniform(3);
      for (uint64_t v = 0; v < num_values; ++v) {
        // Occasionally select a value that does not exist.
        if (rng->Bernoulli(0.1)) {
          sel.values.push_back(query::Literal{std::string("MISSING")});
        } else {
          sel.values.push_back(query::Literal{gen::AttrValue(
              d, attr, static_cast<uint32_t>(rng->Uniform(card)))});
        }
      }
      q.dims[d].selections.push_back(std::move(sel));
    }
  }
  switch (rng->Uniform(5)) {
    case 0:
      q.agg = query::AggFunc::kSum;
      break;
    case 1:
      q.agg = query::AggFunc::kCount;
      break;
    case 2:
      q.agg = query::AggFunc::kMin;
      break;
    case 3:
      q.agg = query::AggFunc::kMax;
      break;
    default:
      q.agg = query::AggFunc::kAvg;
  }
  return q;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, AllEnginesMatchBruteForceOnRandomWorkloads) {
  const uint64_t seed = EffectiveSeed(GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  Random rng(seed);
  TempFile file("fuzz" + std::to_string(GetParam()));
  const gen::GenConfig config = RandomConfig(&rng);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  DatabaseOptions options = SmallDbOptions();
  options.build_btree_join_indexes = true;
  // Exercise every chunk format across seeds.
  const ChunkFormat formats[] = {
      ChunkFormat::kOffsetCompressed, ChunkFormat::kDense, ChunkFormat::kAuto,
      ChunkFormat::kLzwDense};
  options.array.chunk_format = formats[GetParam() % 4];
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       BuildDatabaseFromDataset(file.path(), data, options));

  for (int round = 0; round < 4; ++round) {
    const query::ConsolidationQuery q = RandomQuery(config, &rng);
    const query::GroupedResult expected = BruteForce(data, q);
    std::vector<EngineKind> engines = {EngineKind::kArray,
                                       EngineKind::kStarJoin,
                                       EngineKind::kLeftDeep};
    if (q.HasSelection()) {
      engines.push_back(EngineKind::kBitmap);
      engines.push_back(EngineKind::kBTreeSelect);
    }
    for (EngineKind kind : engines) {
      ASSERT_OK_AND_ASSIGN(Execution exec,
                           RunQuery(db.get(), kind, q, /*cold=*/round == 0));
      ASSERT_TRUE(exec.result.SameAs(expected))
          << "seed " << seed << " round " << round << " engine "
          << EngineKindToString(kind) << "\ngot:\n"
          << exec.result.ToString(q.agg) << "expected:\n"
          << expected.ToString(q.agg);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

/// Fault-fuzzing mode: the same randomized schemas and queries, but with a
/// FaultInjectingDiskManager armed with random probabilistic read faults and
/// on-disk bit flips. The differential invariant is weaker and absolute:
/// every engine either reproduces the brute-force result exactly, or returns
/// a non-OK Status (kIOError / kCorruption) with a message — never a crash
/// and never a silently wrong answer.
class FaultFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultFuzzTest, ResultMatchesBruteForceOrStatusIsNonOk) {
  const uint64_t seed = EffectiveSeed(GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  Random rng(seed * 7919 + 13);
  TempFile file("faultfuzz" + std::to_string(GetParam()));
  const gen::GenConfig config = RandomConfig(&rng);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  DatabaseOptions options = SmallDbOptions();
  options.build_btree_join_indexes = true;
  options.storage.read_retry_limit = rng.Uniform(4);  // 0..3
  options.storage.read_retry_backoff_micros = 0;
  FaultInjectingDiskManager* faults = nullptr;
  options.storage.wrap_disk = [&faults](std::unique_ptr<Disk> inner) {
    auto wrapped =
        std::make_unique<FaultInjectingDiskManager>(std::move(inner));
    faults = wrapped.get();
    return std::unique_ptr<Disk>(std::move(wrapped));
  };
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       BuildDatabaseFromDataset(file.path(), data, options));
  ASSERT_NE(faults, nullptr);

  // Arm faults only after the fault-free load.
  FaultInjectionOptions fi;
  fi.seed = rng.Next();
  fi.read_error_probability = 0.01 * static_cast<double>(rng.Uniform(4));
  fi.read_bit_flip_probability =
      0.002 * static_cast<double>(rng.Uniform(3));
  fi.max_injected_faults = 1 + rng.Uniform(5);
  faults->Arm(fi);

  for (int round = 0; round < 3; ++round) {
    const query::ConsolidationQuery q = RandomQuery(config, &rng);
    const query::GroupedResult expected = BruteForce(data, q);
    std::vector<EngineKind> engines = {EngineKind::kArray,
                                       EngineKind::kStarJoin,
                                       EngineKind::kLeftDeep};
    if (q.HasSelection()) {
      engines.push_back(EngineKind::kBitmap);
      engines.push_back(EngineKind::kBTreeSelect);
    }
    for (EngineKind kind : engines) {
      auto r = RunQuery(db.get(), kind, q, /*cold=*/true);
      if (r.ok()) {
        ASSERT_TRUE(r.value().result.SameAs(expected))
            << "seed " << seed << " round " << round << " engine "
            << EngineKindToString(kind)
            << " silently diverged under faults\ngot:\n"
            << r.value().result.ToString(q.agg) << "expected:\n"
            << expected.ToString(q.agg);
      } else {
        const Status st = r.status();
        EXPECT_TRUE(st.IsIOError() || st.IsCorruption()) << st.ToString();
        EXPECT_FALSE(st.ToString().empty());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

/// Cached-mode fuzzing: the same random query sequences run uncached and
/// through a shared ConsolidationResultCache, asserting bit-identical
/// results on every engine — misses, exact hits, roll-up derivations, and
/// epoch invalidation across a mid-sequence reload all included.
///
/// Random hierarchies are rarely functional (a level-1 block usually
/// straddles level-2 blocks), so to actually exercise the derivation path
/// about half the dimensions are re-dealt with divisibility-aligned
/// hierarchies where level-1 blocks nest exactly into level-2 blocks.
gen::GenConfig CachedRandomConfig(Random* rng) {
  gen::GenConfig config = RandomConfig(rng);
  uint64_t total = 1;
  for (size_t d = 0; d < config.dims.size(); ++d) {
    if (rng->Bernoulli(0.5)) {
      const uint32_t size = 4u * static_cast<uint32_t>(1 + rng->Uniform(3));
      config.dims[d].size = size;
      config.dims[d].level_cardinalities = {size / 2, size / 4};
      config.chunk_extents[d] =
          static_cast<uint32_t>(1 + rng->Uniform(size + 2));
    }
    total *= config.dims[d].size;
  }
  config.num_valid_cells = 1 + rng->Uniform(total);
  return config;
}

class CachedFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CachedFuzzTest, CachedAndUncachedRunsAreBitIdentical) {
  const uint64_t seed = EffectiveSeed(GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  Random rng(seed * 104729 + 17);
  TempFile file("cachedfuzz" + std::to_string(GetParam()));
  const gen::GenConfig config = CachedRandomConfig(&rng);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  DatabaseOptions options = SmallDbOptions();
  options.build_btree_join_indexes = true;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       BuildDatabaseFromDataset(file.path(), data, options));

  query::ConsolidationResultCache::Options cache_opts;
  cache_opts.derive_row_cost = 0;  // derive whenever structurally possible
  query::ConsolidationResultCache cache(cache_opts);
  RunQueryOptions cached;
  cached.cold = false;
  cached.cache = &cache;
  RunQueryOptions uncached;
  uncached.cold = false;

  for (int round = 0; round < 4; ++round) {
    const query::ConsolidationQuery q = RandomQuery(config, &rng);
    const query::GroupedResult expected = BruteForce(data, q);
    std::vector<EngineKind> engines = {EngineKind::kArray,
                                       EngineKind::kStarJoin,
                                       EngineKind::kLeftDeep};
    if (q.HasSelection()) {
      engines.push_back(EngineKind::kBitmap);
      engines.push_back(EngineKind::kBTreeSelect);
    }
    for (EngineKind kind : engines) {
      ASSERT_OK_AND_ASSIGN(Execution plain,
                           RunQuery(db.get(), kind, q, uncached));
      ASSERT_TRUE(plain.result.SameAs(expected))
          << "uncached, seed " << seed << " round " << round << " engine "
          << EngineKindToString(kind);
      ASSERT_OK_AND_ASSIGN(Execution first, RunQuery(db.get(), kind, q, cached));
      ASSERT_TRUE(first.result.SameAs(expected))
          << "cached (" << CacheOutcomeToString(first.stats.cache_outcome)
          << "), seed " << seed << " round " << round << " engine "
          << EngineKindToString(kind);
      ASSERT_OK_AND_ASSIGN(Execution again, RunQuery(db.get(), kind, q, cached));
      EXPECT_EQ(again.stats.cache_outcome, CacheOutcome::kHit);
      ASSERT_TRUE(again.result.SameAs(expected));
    }

    // Coarser follow-up: every level-1 grouping rolled up to level 2. On
    // dimensions with aligned hierarchies this derives from the entry the
    // loop above just cached; on the others it falls back to a scan. Either
    // way it must match brute force and the uncached engine exactly.
    query::ConsolidationQuery coarse = q;
    bool coarsened = false;
    for (query::DimensionQuery& dq : coarse.dims) {
      if (dq.group_by_col == 1u) {
        dq.group_by_col = 2;
        coarsened = true;
      }
    }
    if (coarsened) {
      const query::GroupedResult coarse_expected = BruteForce(data, coarse);
      ASSERT_OK_AND_ASSIGN(
          Execution derived,
          RunQuery(db.get(), EngineKind::kArray, coarse, cached));
      ASSERT_TRUE(derived.result.SameAs(coarse_expected))
          << "coarse cached ("
          << CacheOutcomeToString(derived.stats.cache_outcome) << "), seed "
          << seed << " round " << round;
      ASSERT_OK_AND_ASSIGN(
          Execution plain,
          RunQuery(db.get(), EngineKind::kArray, coarse, uncached));
      ASSERT_TRUE(plain.result.SameAs(coarse_expected));
    }

    if (round == 1) {
      // Mid-sequence reload with epoch churn: rewrite one existing cell with
      // its own value (dirties the file, changes nothing semantically), then
      // close and reopen — the close commits, the manifest epoch advances,
      // and every cached entry must be invalidated, not served.
      const uint64_t epoch_before = db->commit_epoch();
      const std::vector<int32_t> keys =
          data.CellKeys(data.cell_global_indices[0]);
      ASSERT_OK_AND_ASSIGN(std::optional<int64_t> value,
                           db->olap()->ReadCellByKeys(keys));
      ASSERT_TRUE(value.has_value());
      ASSERT_OK(db->olap()->WriteCellByKeys(keys, *value));
      db.reset();
      ASSERT_OK_AND_ASSIGN(db, Database::Open(file.path(), options));
      ASSERT_GT(db->commit_epoch(), epoch_before)
          << "dirtying write + close should advance the commit epoch";
      ASSERT_OK_AND_ASSIGN(Execution after,
                           RunQuery(db.get(), EngineKind::kArray, q, cached));
      EXPECT_EQ(after.stats.cache_outcome, CacheOutcome::kMiss)
          << "stale pre-reload entry served after epoch churn";
      ASSERT_TRUE(after.result.SameAs(expected));
      EXPECT_GT(cache.stats().invalidations, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachedFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

/// Cancellation fuzzing (DESIGN.md choice 13): random workloads run under
/// CancellationTokens fired before, during and never. The invariant is
/// all-or-nothing: a query either completes with the exact brute-force
/// result or fails with the token's typed Status — and a cancelled query
/// retried on a fresh token reproduces the brute-force result bit for bit
/// (no torn state survives the abandoned run).
class CancelFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CancelFuzzTest, CancelledQueriesAreAllOrNothingAndRetryable) {
  const uint64_t seed = EffectiveSeed(GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  Random rng(seed * 15485863 + 29);
  TempFile file("cancelfuzz" + std::to_string(GetParam()));
  const gen::GenConfig config = RandomConfig(&rng);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));

  for (int round = 0; round < 3; ++round) {
    const query::ConsolidationQuery q = RandomQuery(config, &rng);
    const query::GroupedResult expected = BruteForce(data, q);
    const size_t threads = 1 + rng.Uniform(4);

    // Pre-fired tokens short-circuit before touching storage.
    {
      CancellationToken cancelled;
      cancelled.RequestCancel();
      RunQueryOptions options;
      options.cold = false;
      options.num_threads = threads;
      options.cancel = &cancelled;
      auto r = RunQuery(db.get(), EngineKind::kArray, q, options);
      ASSERT_FALSE(r.ok());
      EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
    }
    {
      CancellationToken expired;
      expired.set_deadline(std::chrono::steady_clock::now() -
                           std::chrono::milliseconds(1));
      RunQueryOptions options;
      options.cold = false;
      options.num_threads = threads;
      options.cancel = &expired;
      auto r = RunQuery(db.get(), EngineKind::kArray, q, options);
      ASSERT_FALSE(r.ok());
      EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
    }

    // Mid-run cancel racing real execution: either the query won (exact
    // result) or the token won (typed status) — nothing in between.
    {
      CancellationToken token;
      std::thread canceller([&token, delay_us = rng.Uniform(500)] {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        token.RequestCancel();
      });
      RunQueryOptions options;
      options.cold = false;
      options.num_threads = threads;
      options.cancel = &token;
      auto r = RunQuery(db.get(), EngineKind::kArray, q, options);
      canceller.join();
      if (r.ok()) {
        ASSERT_TRUE(r.value().result.SameAs(expected))
            << "query that outran its cancel diverged, seed " << seed;
      } else {
        EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
      }
      // The retry on a clean token must see no trace of the abandoned run.
      RunQueryOptions clean;
      clean.cold = false;
      clean.num_threads = threads;
      ASSERT_OK_AND_ASSIGN(Execution retried,
                           RunQuery(db.get(), EngineKind::kArray, q, clean));
      ASSERT_TRUE(retried.result.SameAs(expected))
          << "retry after cancel diverged, seed " << seed << " round "
          << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CancelFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

/// Codec sweep (storage format v5): the chunk codec must be invisible to
/// every query path. Each random cube is materialized once per ChunkFormat
/// (forced via PARADISE_FORCE_CHUNK_FORMAT, the same knob the CI codec
/// matrix uses), and the identical workload — serial, 4-thread parallel,
/// cached, and over-the-wire through OlapServer — must produce results
/// bit-identical to the kOffsetCompressed baseline build.
class CodecSweepFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecSweepFuzzTest, QueryResultsAreBitIdenticalAcrossChunkFormats) {
  const uint64_t seed = EffectiveSeed(GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  Random rng(seed * 2654435761ull + 41);
  const gen::GenConfig config = RandomConfig(&rng);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));

  // Frozen workload: every format executes exactly these queries.
  std::vector<query::ConsolidationQuery> queries;
  for (int i = 0; i < 3; ++i) queries.push_back(RandomQuery(config, &rng));
  const std::vector<std::string> sql = {
      "select sum(volume), dim0.h01 from cube group by dim0.h01",
      "select min(volume), dim0.h02 from cube group by dim0.h02",
      "select sum(volume), dim0.h02 from cube where dim0.h01 = '" +
          gen::AttrValue(0, 1, 0) + "' group by dim0.h02",
  };

  struct FormatRun {
    std::string name;
    std::vector<query::GroupedResult> serial;
    std::vector<query::GroupedResult> parallel;
    std::vector<query::GroupedResult> cached;
    std::vector<query::GroupedResult> wire;
  };
  struct EnvGuard {
    ~EnvGuard() { ::unsetenv("PARADISE_FORCE_CHUNK_FORMAT"); }
  } env_guard;

  // name -> expected tag byte as seen through ReadChunkBlob (nullopt =
  // format picks per chunk). LZW-wrapped chunks come back unwrapped to
  // their dense form, so "lzw" reads as the dense tag.
  const std::vector<std::pair<std::string, std::optional<uint8_t>>> formats = {
      {"offset", uint8_t{1}},   {"dense", uint8_t{0}},
      {"auto", std::nullopt},   {"lzw", uint8_t{0}},
      {"diffseq", uint8_t{3}},  {"bitpacked", uint8_t{4}},
  };
  std::vector<FormatRun> runs;
  for (const auto& [name, want_tag] : formats) {
    SCOPED_TRACE("chunk format " + name);
    ::setenv("PARADISE_FORCE_CHUNK_FORMAT", name.c_str(), 1);
    TempFile file("codecsweep_" + name + "_" + std::to_string(GetParam()));
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<Database> db,
        BuildDatabaseFromDataset(file.path(), data, SmallDbOptions()));
    ::unsetenv("PARADISE_FORCE_CHUNK_FORMAT");

    // The sweep is only meaningful if the forced codec actually landed on
    // disk: check the first non-empty chunk's tag byte.
    if (want_tag.has_value()) {
      const ChunkedArray& array = db->olap()->array(0);
      for (uint64_t c = 0; c < db->olap()->layout().num_chunks(); ++c) {
        if (array.ChunkIsEmpty(c)) continue;
        ASSERT_OK_AND_ASSIGN(std::string blob, array.ReadChunkBlob(c));
        ASSERT_FALSE(blob.empty());
        EXPECT_EQ(static_cast<uint8_t>(blob[0]), *want_tag)
            << "forced format " << name << " not stored in chunk " << c;
        break;
      }
    }

    FormatRun run;
    run.name = name;
    query::ConsolidationResultCache cache(
        query::ConsolidationResultCache::Options{});
    RunQueryOptions serial;
    serial.cold = false;
    RunQueryOptions parallel;
    parallel.cold = false;
    parallel.num_threads = 4;
    RunQueryOptions cached;
    cached.cold = false;
    cached.cache = &cache;
    for (const query::ConsolidationQuery& q : queries) {
      ASSERT_OK_AND_ASSIGN(Execution s,
                           RunQuery(db.get(), EngineKind::kArray, q, serial));
      run.serial.push_back(s.result);
      ASSERT_OK_AND_ASSIGN(Execution p,
                           RunQuery(db.get(), EngineKind::kArray, q, parallel));
      run.parallel.push_back(p.result);
      ASSERT_OK_AND_ASSIGN(Execution miss,
                           RunQuery(db.get(), EngineKind::kArray, q, cached));
      ASSERT_OK_AND_ASSIGN(Execution hit,
                           RunQuery(db.get(), EngineKind::kArray, q, cached));
      EXPECT_EQ(hit.stats.cache_outcome, CacheOutcome::kHit);
      ASSERT_TRUE(hit.result.SameAs(miss.result));
      run.cached.push_back(hit.result);
    }

    // Over the wire: same storage served through the framed protocol.
    server::OlapServer olapd(db.get(), server::ServerOptions{});
    ASSERT_OK(olapd.Start());
    {
      ASSERT_OK_AND_ASSIGN(auto client,
                           server::OlapClient::Connect("127.0.0.1",
                                                       olapd.port()));
      for (const std::string& s : sql) {
        ASSERT_OK_AND_ASSIGN(auto reply, client->Query(s));
        ASSERT_TRUE(reply.ok) << reply.error.message;
        run.wire.push_back(reply.result.result);
      }
    }
    olapd.Stop();
    runs.push_back(std::move(run));

    // Ground truth once: the baseline build must match brute force, so a
    // codec bug shared by every format cannot hide in the cross-check.
    if (runs.size() == 1) {
      for (size_t i = 0; i < queries.size(); ++i) {
        const query::GroupedResult expected = BruteForce(data, queries[i]);
        ASSERT_TRUE(runs[0].serial[i].SameAs(expected))
            << "baseline diverges from brute force, query " << i;
      }
    }
  }

  const FormatRun& base = runs.front();
  for (size_t f = 1; f < runs.size(); ++f) {
    SCOPED_TRACE("comparing " + runs[f].name + " against " + base.name);
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE(runs[f].serial[i].SameAs(base.serial[i]))
          << "serial query " << i << " diverges";
      EXPECT_TRUE(runs[f].parallel[i].SameAs(base.parallel[i]))
          << "parallel query " << i << " diverges";
      EXPECT_TRUE(runs[f].cached[i].SameAs(base.cached[i]))
          << "cached query " << i << " diverges";
    }
    for (size_t i = 0; i < sql.size(); ++i) {
      EXPECT_TRUE(runs[f].wire[i].SameAs(base.wire[i]))
          << "over-the-wire query " << i << " diverges";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecSweepFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{7}));

}  // namespace
}  // namespace paradise

/// Custom main so the fuzz binary accepts --rng-seed=<n> (and the
/// PARADISE_FUZZ_SEED environment variable) to replay one seed across every
/// parameterized instance. gtest flags are consumed by InitGoogleTest first;
/// anything left over is ours.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    constexpr std::string_view kFlag = "--rng-seed=";
    if (arg.substr(0, kFlag.size()) == kFlag) {
      paradise::g_seed_override =
          std::strtoull(arg.substr(kFlag.size()).data(), nullptr, 10);
    } else if (arg == "--rng-seed" && i + 1 < argc) {
      paradise::g_seed_override = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  if (!paradise::g_seed_override.has_value()) {
    if (const char* env = std::getenv("PARADISE_FUZZ_SEED")) {
      paradise::g_seed_override = std::strtoull(env, nullptr, 10);
    }
  }
  if (paradise::g_seed_override.has_value()) {
    std::printf("fuzz_test: overriding every instance seed with %llu\n",
                static_cast<unsigned long long>(*paradise::g_seed_override));
  }
  return RUN_ALL_TESTS();
}
