// Randomized end-to-end fuzzing: for each seed, generate a random star
// schema (dimension count, sizes, cardinalities, chunk extents that need
// not divide the sizes, density) and a random query (grouping levels,
// selections with random value lists), then assert that every applicable
// engine matches the brute-force reference exactly.
#include <gtest/gtest.h>

#include "common/random.h"
#include "query/engine.h"
#include "storage/fault_injection.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::BruteForce;
using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;

gen::GenConfig RandomConfig(Random* rng) {
  gen::GenConfig config;
  const size_t n = 2 + rng->Uniform(3);  // 2..4 dimensions
  config.dims.resize(n);
  uint64_t total = 1;
  for (size_t d = 0; d < n; ++d) {
    config.dims[d].name = "dim" + std::to_string(d);
    config.dims[d].size = static_cast<uint32_t>(3 + rng->Uniform(14));
    const uint32_t c1 =
        static_cast<uint32_t>(1 + rng->Uniform(config.dims[d].size));
    const uint32_t c2 = static_cast<uint32_t>(1 + rng->Uniform(c1));
    config.dims[d].level_cardinalities = {c1, c2};
    config.chunk_extents.push_back(
        static_cast<uint32_t>(1 + rng->Uniform(config.dims[d].size + 2)));
    total *= config.dims[d].size;
  }
  // Density from near-empty to full.
  config.num_valid_cells = 1 + rng->Uniform(total);
  config.seed = rng->Next();
  return config;
}

query::ConsolidationQuery RandomQuery(const gen::GenConfig& config,
                                      Random* rng) {
  query::ConsolidationQuery q;
  q.dims.resize(config.dims.size());
  for (size_t d = 0; d < config.dims.size(); ++d) {
    if (rng->Bernoulli(0.6)) {
      q.dims[d].group_by_col = 1 + rng->Uniform(2);
    }
    const uint64_t num_selections = rng->Uniform(3);  // 0..2 per dimension
    for (uint64_t s = 0; s < num_selections; ++s) {
      const size_t attr = 1 + rng->Uniform(2);
      const uint32_t card = config.dims[d].level_cardinalities[attr - 1];
      query::Selection sel;
      sel.attr_col = attr;
      const uint64_t num_values = 1 + rng->Uniform(3);
      for (uint64_t v = 0; v < num_values; ++v) {
        // Occasionally select a value that does not exist.
        if (rng->Bernoulli(0.1)) {
          sel.values.push_back(query::Literal{std::string("MISSING")});
        } else {
          sel.values.push_back(query::Literal{gen::AttrValue(
              d, attr, static_cast<uint32_t>(rng->Uniform(card)))});
        }
      }
      q.dims[d].selections.push_back(std::move(sel));
    }
  }
  switch (rng->Uniform(5)) {
    case 0:
      q.agg = query::AggFunc::kSum;
      break;
    case 1:
      q.agg = query::AggFunc::kCount;
      break;
    case 2:
      q.agg = query::AggFunc::kMin;
      break;
    case 3:
      q.agg = query::AggFunc::kMax;
      break;
    default:
      q.agg = query::AggFunc::kAvg;
  }
  return q;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, AllEnginesMatchBruteForceOnRandomWorkloads) {
  Random rng(GetParam());
  TempFile file("fuzz" + std::to_string(GetParam()));
  const gen::GenConfig config = RandomConfig(&rng);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  DatabaseOptions options = SmallDbOptions();
  options.build_btree_join_indexes = true;
  // Exercise every chunk format across seeds.
  const ChunkFormat formats[] = {
      ChunkFormat::kOffsetCompressed, ChunkFormat::kDense, ChunkFormat::kAuto,
      ChunkFormat::kLzwDense};
  options.array.chunk_format = formats[GetParam() % 4];
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       BuildDatabaseFromDataset(file.path(), data, options));

  for (int round = 0; round < 4; ++round) {
    const query::ConsolidationQuery q = RandomQuery(config, &rng);
    const query::GroupedResult expected = BruteForce(data, q);
    std::vector<EngineKind> engines = {EngineKind::kArray,
                                       EngineKind::kStarJoin,
                                       EngineKind::kLeftDeep};
    if (q.HasSelection()) {
      engines.push_back(EngineKind::kBitmap);
      engines.push_back(EngineKind::kBTreeSelect);
    }
    for (EngineKind kind : engines) {
      ASSERT_OK_AND_ASSIGN(Execution exec,
                           RunQuery(db.get(), kind, q, /*cold=*/round == 0));
      ASSERT_TRUE(exec.result.SameAs(expected))
          << "seed " << GetParam() << " round " << round << " engine "
          << EngineKindToString(kind) << "\ngot:\n"
          << exec.result.ToString(q.agg) << "expected:\n"
          << expected.ToString(q.agg);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

/// Fault-fuzzing mode: the same randomized schemas and queries, but with a
/// FaultInjectingDiskManager armed with random probabilistic read faults and
/// on-disk bit flips. The differential invariant is weaker and absolute:
/// every engine either reproduces the brute-force result exactly, or returns
/// a non-OK Status (kIOError / kCorruption) with a message — never a crash
/// and never a silently wrong answer.
class FaultFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultFuzzTest, ResultMatchesBruteForceOrStatusIsNonOk) {
  Random rng(GetParam() * 7919 + 13);
  TempFile file("faultfuzz" + std::to_string(GetParam()));
  const gen::GenConfig config = RandomConfig(&rng);
  ASSERT_OK_AND_ASSIGN(gen::SyntheticDataset data, gen::Generate(config));
  DatabaseOptions options = SmallDbOptions();
  options.build_btree_join_indexes = true;
  options.storage.read_retry_limit = rng.Uniform(4);  // 0..3
  options.storage.read_retry_backoff_micros = 0;
  FaultInjectingDiskManager* faults = nullptr;
  options.storage.wrap_disk = [&faults](std::unique_ptr<Disk> inner) {
    auto wrapped =
        std::make_unique<FaultInjectingDiskManager>(std::move(inner));
    faults = wrapped.get();
    return std::unique_ptr<Disk>(std::move(wrapped));
  };
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       BuildDatabaseFromDataset(file.path(), data, options));
  ASSERT_NE(faults, nullptr);

  // Arm faults only after the fault-free load.
  FaultInjectionOptions fi;
  fi.seed = rng.Next();
  fi.read_error_probability = 0.01 * static_cast<double>(rng.Uniform(4));
  fi.read_bit_flip_probability =
      0.002 * static_cast<double>(rng.Uniform(3));
  fi.max_injected_faults = 1 + rng.Uniform(5);
  faults->Arm(fi);

  for (int round = 0; round < 3; ++round) {
    const query::ConsolidationQuery q = RandomQuery(config, &rng);
    const query::GroupedResult expected = BruteForce(data, q);
    std::vector<EngineKind> engines = {EngineKind::kArray,
                                       EngineKind::kStarJoin,
                                       EngineKind::kLeftDeep};
    if (q.HasSelection()) {
      engines.push_back(EngineKind::kBitmap);
      engines.push_back(EngineKind::kBTreeSelect);
    }
    for (EngineKind kind : engines) {
      auto r = RunQuery(db.get(), kind, q, /*cold=*/true);
      if (r.ok()) {
        ASSERT_TRUE(r.value().result.SameAs(expected))
            << "seed " << GetParam() << " round " << round << " engine "
            << EngineKindToString(kind)
            << " silently diverged under faults\ngot:\n"
            << r.value().result.ToString(q.agg) << "expected:\n"
            << expected.ToString(q.agg);
      } else {
        const Status st = r.status();
        EXPECT_TRUE(st.IsIOError() || st.IsCorruption()) << st.ToString();
        EXPECT_FALSE(st.ToString().empty());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace paradise
