// Tests for ConsolidateToOlapArray — the §4.1 contract that a
// consolidation's result is a full OLAP Array ADT instance: queryable,
// persistent, selectable, and roll-up-able along the remaining hierarchy.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/consolidate.h"
#include "core/consolidate_select.h"
#include "core/slice.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;

// A strictly hierarchical retail-style cube: type determines category,
// city determines region.
class RollupTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("rollup");
    StarSchema schema;
    schema.cube_name = "sales";
    schema.dims = {
        DimensionSpec{"product",
                      {{"pid", ColumnType::kInt32},
                       {"type", ColumnType::kString16},
                       {"category", ColumnType::kString16}}},
        DimensionSpec{"store",
                      {{"sid", ColumnType::kInt32},
                       {"city", ColumnType::kString16},
                       {"region", ColumnType::kString16}}},
    };
    ASSERT_OK_AND_ASSIGN(
        db_, Database::Create(file_->path(), schema, SmallDbOptions()));
    const Schema product = schema.dims[0].ToSchema();
    const Schema store = schema.dims[1].ToSchema();
    for (int32_t pid = 0; pid < 24; ++pid) {
      Tuple row(&product);
      row.SetInt32(0, pid);
      const int type = pid % 8;
      ASSERT_OK(row.SetString(1, "type" + std::to_string(type)));
      ASSERT_OK(row.SetString(2, "cat" + std::to_string(type % 3)));
      ASSERT_OK(db_->AppendDimensionRow(0, row));
    }
    for (int32_t sid = 0; sid < 12; ++sid) {
      Tuple row(&store);
      row.SetInt32(0, sid);
      const int city = sid % 6;
      ASSERT_OK(row.SetString(1, "city" + std::to_string(city)));
      ASSERT_OK(row.SetString(2, "reg" + std::to_string(city % 2)));
      ASSERT_OK(db_->AppendDimensionRow(1, row));
    }
    ASSERT_OK(db_->BeginFacts());
    Random rng(33);
    for (int32_t pid = 0; pid < 24; ++pid) {
      for (int32_t sid = 0; sid < 12; ++sid) {
        if (!rng.Bernoulli(0.5)) continue;
        ASSERT_OK(db_->AppendFact({pid, sid}, rng.UniformRange(1, 50)));
      }
    }
    ASSERT_OK(db_->FinishLoad());
  }

  Result<OlapArray> Consolidate(const std::string& name, size_t pcol,
                                size_t scol) {
    query::ConsolidationQuery q;
    q.dims.resize(2);
    q.dims[0].group_by_col = pcol;
    q.dims[1].group_by_col = scol;
    return ConsolidateToOlapArray(db_->storage(), *db_->olap(),
                                  db_->DimPointers(), q, name,
                                  ArrayOptions{});
  }

  std::unique_ptr<TempFile> file_;
  std::unique_ptr<Database> db_;
};

TEST_F(RollupTest, ResultAdtShape) {
  ASSERT_OK_AND_ASSIGN(OlapArray result, Consolidate("by_type_city", 1, 1));
  EXPECT_EQ(result.num_dims(), 2u);
  EXPECT_EQ(result.layout().dims(), (std::vector<uint32_t>{8, 6}));
  // Result dimension schemas: key + the grouped level and coarser ones.
  EXPECT_EQ(result.dim_schema(0).num_columns(), 3u);  // pid, type, category
  EXPECT_EQ(result.dim_schema(0).column(1).name, "type");
  EXPECT_EQ(result.dim_schema(0).column(2).name, "category");
  EXPECT_EQ(result.dim_schema(1).column(2).name, "region");
}

TEST_F(RollupTest, ResultCellsAreGroupSums) {
  ASSERT_OK_AND_ASSIGN(OlapArray result, Consolidate("by_type_city2", 1, 1));
  query::ConsolidationQuery q;
  q.dims.resize(2);
  q.dims[0].group_by_col = 1;
  q.dims[1].group_by_col = 1;
  ASSERT_OK_AND_ASSIGN(query::GroupedResult expected,
                       ArrayConsolidate(*db_->olap(), q));
  for (const query::ResultRow& row : expected.rows()) {
    ASSERT_OK_AND_ASSIGN(std::optional<int64_t> cell,
                         result.ReadCellByKeys({row.group[0], row.group[1]}));
    ASSERT_TRUE(cell.has_value());
    EXPECT_EQ(*cell, row.agg.sum);
  }
  EXPECT_EQ(result.array().num_valid_cells(), expected.num_groups());
}

TEST_F(RollupTest, RollUpMatchesDirectConsolidation) {
  // Consolidate to (type, city), then roll the RESULT up to
  // (category, region): must equal consolidating the base cube directly.
  ASSERT_OK_AND_ASSIGN(OlapArray mid, Consolidate("mid_cube", 1, 1));
  query::ConsolidationQuery rollup;
  rollup.dims.resize(2);
  rollup.dims[0].group_by_col = 2;  // category (column 2 of the result dim)
  rollup.dims[1].group_by_col = 2;  // region
  ASSERT_OK_AND_ASSIGN(query::GroupedResult rolled,
                       ArrayConsolidate(mid, rollup));

  query::ConsolidationQuery direct;
  direct.dims.resize(2);
  direct.dims[0].group_by_col = 2;
  direct.dims[1].group_by_col = 2;
  ASSERT_OK_AND_ASSIGN(query::GroupedResult expected,
                       ArrayConsolidate(*db_->olap(), direct));

  // Sums must agree per group; counts differ by construction (the rolled-up
  // input cells are already aggregates), so compare sums only.
  ASSERT_EQ(rolled.num_groups(), expected.num_groups());
  for (size_t i = 0; i < rolled.rows().size(); ++i) {
    EXPECT_EQ(rolled.rows()[i].group, expected.rows()[i].group);
    EXPECT_EQ(rolled.rows()[i].agg.sum, expected.rows()[i].agg.sum);
  }
}

TEST_F(RollupTest, ResultSupportsSelection) {
  ASSERT_OK_AND_ASSIGN(OlapArray mid, Consolidate("sel_cube", 1, 1));
  // Select one category on the result cube.
  query::ConsolidationQuery q;
  q.dims.resize(2);
  q.dims[1].group_by_col = 1;  // city
  q.dims[0].selections.push_back(
      query::Selection{2, {query::Literal{std::string("cat1")}}});
  ASSERT_OK_AND_ASSIGN(query::GroupedResult got,
                       ArrayConsolidateWithSelection(mid, q));
  // Expected from the base cube with the same logical filter.
  query::ConsolidationQuery base_q;
  base_q.dims.resize(2);
  base_q.dims[1].group_by_col = 1;
  base_q.dims[0].selections.push_back(
      query::Selection{2, {query::Literal{std::string("cat1")}}});
  ASSERT_OK_AND_ASSIGN(query::GroupedResult expected,
                       ArrayConsolidateWithSelection(*db_->olap(), base_q));
  ASSERT_EQ(got.num_groups(), expected.num_groups());
  for (size_t i = 0; i < got.rows().size(); ++i) {
    EXPECT_EQ(got.rows()[i].group, expected.rows()[i].group);
    EXPECT_EQ(got.rows()[i].agg.sum, expected.rows()[i].agg.sum);
  }
}

TEST_F(RollupTest, ResultPersistsAndReopens) {
  ASSERT_OK(Consolidate("persisted_cube", 1, 1).status());
  ASSERT_OK(db_->storage()->Checkpoint());
  ASSERT_OK(db_->DropCaches());
  ASSERT_OK_AND_ASSIGN(OlapArray reopened,
                       OlapArray::Open(db_->storage(), "persisted_cube"));
  EXPECT_EQ(reopened.layout().dims(), (std::vector<uint32_t>{8, 6}));
  query::ConsolidationQuery q;
  q.dims.resize(2);
  ASSERT_OK_AND_ASSIGN(query::GroupedResult total, ArrayConsolidate(reopened, q));
  query::ConsolidationQuery base;
  base.dims.resize(2);
  ASSERT_OK_AND_ASSIGN(query::GroupedResult base_total,
                       ArrayConsolidate(*db_->olap(), base));
  EXPECT_EQ(total.TotalSum(), base_total.TotalSum());
}

TEST_F(RollupTest, RejectsFullCollapse) {
  query::ConsolidationQuery q;
  q.dims.resize(2);
  EXPECT_TRUE(ConsolidateToOlapArray(db_->storage(), *db_->olap(),
                                     db_->DimPointers(), q, "bad",
                                     ArrayOptions{})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace paradise
