// Aggregate-registry tests: provenance persistence, the rewrite rules, and
// transparent answering of derivable queries from materialized aggregates.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/aggregate_registry.h"
#include "core/consolidate.h"
#include "core/consolidate_select.h"
#include "query/planner.h"
#include "test_util.h"

namespace paradise {
namespace {

using paradise::testing::SmallDbOptions;
using paradise::testing::TempFile;

// Strictly hierarchical 2-d cube (same setup as rollup_test).
class AggregateRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("aggreg");
    StarSchema schema;
    schema.cube_name = "sales";
    schema.dims = {
        DimensionSpec{"product",
                      {{"pid", ColumnType::kInt32},
                       {"type", ColumnType::kString16},
                       {"category", ColumnType::kString16}}},
        DimensionSpec{"store",
                      {{"sid", ColumnType::kInt32},
                       {"city", ColumnType::kString16},
                       {"region", ColumnType::kString16}}},
    };
    ASSERT_OK_AND_ASSIGN(
        db_, Database::Create(file_->path(), schema, SmallDbOptions()));
    const Schema product = schema.dims[0].ToSchema();
    const Schema store = schema.dims[1].ToSchema();
    for (int32_t pid = 0; pid < 20; ++pid) {
      Tuple row(&product);
      row.SetInt32(0, pid);
      const int type = pid % 5;
      ASSERT_OK(row.SetString(1, "type" + std::to_string(type)));
      ASSERT_OK(row.SetString(2, "cat" + std::to_string(type % 2)));
      ASSERT_OK(db_->AppendDimensionRow(0, row));
    }
    for (int32_t sid = 0; sid < 10; ++sid) {
      Tuple row(&store);
      row.SetInt32(0, sid);
      const int city = sid % 4;
      ASSERT_OK(row.SetString(1, "city" + std::to_string(city)));
      ASSERT_OK(row.SetString(2, "reg" + std::to_string(city % 2)));
      ASSERT_OK(db_->AppendDimensionRow(1, row));
    }
    ASSERT_OK(db_->BeginFacts());
    Random rng(44);
    for (int32_t pid = 0; pid < 20; ++pid) {
      for (int32_t sid = 0; sid < 10; ++sid) {
        if (!rng.Bernoulli(0.6)) continue;
        ASSERT_OK(db_->AppendFact({pid, sid}, rng.UniformRange(1, 30)));
      }
    }
    ASSERT_OK(db_->FinishLoad());

    // Materialize the (type, city) consolidation; this registers it.
    query::ConsolidationQuery q;
    q.dims.resize(2);
    q.dims[0].group_by_col = 1;
    q.dims[1].group_by_col = 1;
    ASSERT_OK(ConsolidateToOlapArray(db_->storage(), *db_->olap(),
                                     db_->DimPointers(), q, "by_type_city",
                                     ArrayOptions{})
                  .status());
  }

  std::unique_ptr<TempFile> file_;
  std::unique_ptr<Database> db_;
};

TEST_F(AggregateRegistryTest, ProvenanceRoundTrip) {
  AggregateProvenance p;
  p.name = "x";
  p.base_cube = "sales";
  p.measure = 3;
  p.grouped = {{0, 1}, {2, 2}};
  ASSERT_OK_AND_ASSIGN(AggregateProvenance back,
                       AggregateProvenance::Deserialize(p.Serialize()));
  EXPECT_EQ(back.name, "x");
  EXPECT_EQ(back.base_cube, "sales");
  EXPECT_EQ(back.measure, 3u);
  ASSERT_EQ(back.grouped.size(), 2u);
  EXPECT_EQ(back.grouped[1].base_dim, 2u);
  EXPECT_EQ(back.grouped[1].level_col, 2u);
}

TEST_F(AggregateRegistryTest, MaterializationRegisters) {
  ASSERT_OK_AND_ASSIGN(std::vector<AggregateProvenance> all,
                       ListAggregates(db_->storage()));
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].name, "by_type_city");
  EXPECT_EQ(all[0].base_cube, "sales");
  ASSERT_EQ(all[0].grouped.size(), 2u);
  EXPECT_EQ(all[0].grouped[0].level_col, 1u);
}

TEST_F(AggregateRegistryTest, RewriteRules) {
  AggregateProvenance agg;
  agg.name = "a";
  agg.base_cube = "cube";
  agg.grouped = {{0, 1}, {1, 1}};

  // Coarser grouping rewrites: base level 2 -> result column 2.
  query::ConsolidationQuery q;
  q.dims.resize(2);
  q.dims[0].group_by_col = 2;
  auto r = RewriteForAggregate(q, agg, 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->dims[0].group_by_col, 2u);
  EXPECT_FALSE(r->dims[1].group_by_col.has_value());

  // Same-level grouping rewrites to column 1.
  q.dims[0].group_by_col = 1;
  r = RewriteForAggregate(q, agg, 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->dims[0].group_by_col, 1u);

  // Non-SUM aggregates are not derivable.
  q.agg = query::AggFunc::kCount;
  EXPECT_FALSE(RewriteForAggregate(q, agg, 2).has_value());
  q.agg = query::AggFunc::kSum;

  // A different measure is not derivable.
  q.measure = 1;
  EXPECT_FALSE(RewriteForAggregate(q, agg, 2).has_value());
  q.measure = 0;

  // Selections rewrite with the same level shift.
  q.dims[1].selections.push_back(
      query::Selection{2, {query::Literal{std::string("reg0")}}});
  r = RewriteForAggregate(q, agg, 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->dims[1].selections[0].attr_col, 2u);

  // An aggregate grouped at a coarser level cannot answer finer queries.
  AggregateProvenance coarse = agg;
  coarse.grouped[0].level_col = 2;
  q = {};
  q.dims.resize(2);
  q.dims[0].group_by_col = 1;
  EXPECT_FALSE(RewriteForAggregate(q, coarse, 2).has_value());

  // A collapsed dimension cannot be grouped or selected.
  AggregateProvenance partial;
  partial.base_cube = "cube";
  partial.grouped = {{0, 1}};
  q = {};
  q.dims.resize(2);
  q.dims[1].group_by_col = 1;
  EXPECT_FALSE(RewriteForAggregate(q, partial, 2).has_value());
  q = {};
  q.dims.resize(2);
  q.dims[0].group_by_col = 1;
  EXPECT_TRUE(RewriteForAggregate(q, partial, 2).has_value());
}

TEST_F(AggregateRegistryTest, AnswersMatchBaseCube) {
  // Every derivable query must produce exactly the base cube's answer.
  std::vector<query::ConsolidationQuery> queries;
  {
    query::ConsolidationQuery q;  // group both at the stored level
    q.dims.resize(2);
    q.dims[0].group_by_col = 1;
    q.dims[1].group_by_col = 1;
    queries.push_back(q);
    q.dims[0].group_by_col = 2;  // coarser on one side
    queries.push_back(q);
    q.dims[1].group_by_col = 2;  // coarser on both
    queries.push_back(q);
    query::ConsolidationQuery sel;  // selection at a rewritable level
    sel.dims.resize(2);
    sel.dims[0].group_by_col = 2;
    sel.dims[1].selections.push_back(
        query::Selection{2, {query::Literal{std::string("reg1")}}});
    queries.push_back(sel);
  }
  for (const query::ConsolidationQuery& q : queries) {
    std::string used;
    ASSERT_OK_AND_ASSIGN(
        std::optional<query::GroupedResult> from_agg,
        AnswerFromAggregates(db_->storage(), "sales", q, &used));
    ASSERT_TRUE(from_agg.has_value());
    EXPECT_EQ(used, "by_type_city");
    Result<query::GroupedResult> direct =
        q.HasSelection()
            ? ArrayConsolidateWithSelection(*db_->olap(), q)
            : ArrayConsolidate(*db_->olap(), q);
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(from_agg->num_groups(), direct->num_groups());
    for (size_t i = 0; i < direct->rows().size(); ++i) {
      EXPECT_EQ(from_agg->rows()[i].group, direct->rows()[i].group);
      EXPECT_EQ(from_agg->rows()[i].agg.sum, direct->rows()[i].agg.sum);
    }
  }
}

TEST_F(AggregateRegistryTest, NonDerivableFallsThrough) {
  // Grouping at the key level is finer than the stored level.
  query::ConsolidationQuery q;
  q.dims.resize(2);
  q.dims[0].group_by_col = 1;
  q.dims[1].group_by_col = 1;
  q.agg = query::AggFunc::kMin;  // not derivable from sums
  ASSERT_OK_AND_ASSIGN(std::optional<query::GroupedResult> r,
                       AnswerFromAggregates(db_->storage(), "sales", q));
  EXPECT_FALSE(r.has_value());
  // Unknown base cube.
  ASSERT_OK_AND_ASSIGN(r, AnswerFromAggregates(db_->storage(), "ghost",
                                               gen::Query1(2)));
  EXPECT_FALSE(r.has_value());
}

TEST_F(AggregateRegistryTest, SmallestApplicableAggregateWins) {
  // Materialize a second, coarser aggregate on one dimension only.
  query::ConsolidationQuery q;
  q.dims.resize(2);
  q.dims[0].group_by_col = 2;  // category only
  ASSERT_OK(ConsolidateToOlapArray(db_->storage(), *db_->olap(),
                                   db_->DimPointers(), q, "by_category",
                                   ArrayOptions{})
                .status());
  std::string used;
  ASSERT_OK_AND_ASSIGN(std::optional<query::GroupedResult> r,
                       AnswerFromAggregates(db_->storage(), "sales", q, &used));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(used, "by_category");  // fewer dimensions than by_type_city
}

TEST_F(AggregateRegistryTest, RunSqlRoutesThroughAggregate) {
  ASSERT_OK_AND_ASSIGN(
      SqlExecution exec,
      RunSql(db_.get(),
             "select sum(volume), product.category from sales "
             "group by product.category"));
  EXPECT_EQ(exec.plan.aggregate, "by_type_city");
  query::ConsolidationQuery direct_q;
  direct_q.dims.resize(2);
  direct_q.dims[0].group_by_col = 2;
  ASSERT_OK_AND_ASSIGN(query::GroupedResult direct,
                       ArrayConsolidate(*db_->olap(), direct_q));
  EXPECT_EQ(exec.execution.result.TotalSum(), direct.TotalSum());

  // COUNT cannot be derived from sums: must fall back to the base cube.
  ASSERT_OK_AND_ASSIGN(
      SqlExecution fallback,
      RunSql(db_.get(),
             "select count(volume), product.category from sales "
             "group by product.category"));
  EXPECT_TRUE(fallback.plan.aggregate.empty());

  // Turning the feature off also falls back.
  PlannerOptions no_agg;
  no_agg.use_materialized_aggregates = false;
  ASSERT_OK_AND_ASSIGN(
      SqlExecution off,
      RunSql(db_.get(),
             "select sum(volume), product.category from sales "
             "group by product.category",
             /*cold=*/true, no_agg));
  EXPECT_TRUE(off.plan.aggregate.empty());
  EXPECT_EQ(off.execution.result.TotalSum(), direct.TotalSum());
}

TEST_F(AggregateRegistryTest, RegistryPersistsAcrossReopen) {
  ASSERT_OK(db_->storage()->Close());
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> reopened,
                       Database::Open(file_->path(), SmallDbOptions()));
  query::ConsolidationQuery q;
  q.dims.resize(2);
  q.dims[0].group_by_col = 2;
  q.dims[1].group_by_col = 2;
  std::string used;
  ASSERT_OK_AND_ASSIGN(
      std::optional<query::GroupedResult> r,
      AnswerFromAggregates(reopened->storage(), "sales", q, &used));
  ASSERT_TRUE(r.has_value());
  ASSERT_OK_AND_ASSIGN(query::GroupedResult direct,
                       ArrayConsolidate(*reopened->olap(), q));
  EXPECT_EQ(r->TotalSum(), direct.TotalSum());
}

}  // namespace
}  // namespace paradise
