#include "index/btree.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"

namespace paradise {

int64_t StringPrefixKey(std::string_view s) {
  unsigned char buf[8] = {0};
  std::memcpy(buf, s.data(), std::min<size_t>(8, s.size()));
  uint64_t v = 0;
  for (unsigned char c : buf) v = (v << 8) | c;
  // Map unsigned order onto signed order.
  return static_cast<int64_t>(v ^ 0x8000000000000000ULL);
}

namespace {

// Node page layout (shared prefix):
//   [0]     node type: 0 = leaf, 1 = internal
//   [1]     magic 0xB7
//   [2,4)   entry count
// Leaf:
//   [4,12)  next-leaf PageId (kInvalidPageId at the end of the chain)
//   [12,..) entries: key(8) value(8)
// Internal (count separators, count+1 children):
//   [4,12)  leftmost child PageId
//   [12,..) entries: key(8) value(8) child(8)
constexpr size_t kTypeOffset = 0;
constexpr size_t kMagicOffset = 1;
constexpr size_t kCountOffset = 2;
constexpr size_t kLinkOffset = 4;  // next-leaf or leftmost child
constexpr size_t kPayloadOffset = 12;
constexpr uint8_t kMagic = 0xB7;
constexpr uint8_t kLeafType = 0;
constexpr uint8_t kInternalType = 1;
constexpr size_t kLeafEntryBytes = 16;
constexpr size_t kInternalEntryBytes = 24;

size_t LeafCapacity(size_t page_size) {
  return (page_size - kPayloadOffset) / kLeafEntryBytes;
}
size_t InternalCapacity(size_t page_size) {
  return (page_size - kPayloadOffset) / kInternalEntryBytes;
}

bool IsLeaf(const char* page) {
  return static_cast<uint8_t>(page[kTypeOffset]) == kLeafType;
}
uint16_t Count(const char* page) { return DecodeFixed16(page + kCountOffset); }
void SetCount(char* page, uint16_t n) { EncodeFixed16(page + kCountOffset, n); }
PageId Link(const char* page) { return DecodeFixed64(page + kLinkOffset); }
void SetLink(char* page, PageId id) { EncodeFixed64(page + kLinkOffset, id); }

Status ValidateNode(const char* page, PageId id) {
  if (static_cast<uint8_t>(page[kMagicOffset]) != kMagic) {
    return Status::Corruption("page " + std::to_string(id) +
                              " is not a B-tree node");
  }
  return Status::OK();
}

BTree::Entry LeafEntry(const char* page, size_t i) {
  const char* p = page + kPayloadOffset + i * kLeafEntryBytes;
  return {static_cast<int64_t>(DecodeFixed64(p)),
          static_cast<int64_t>(DecodeFixed64(p + 8))};
}
void SetLeafEntry(char* page, size_t i, const BTree::Entry& e) {
  char* p = page + kPayloadOffset + i * kLeafEntryBytes;
  EncodeFixed64(p, static_cast<uint64_t>(e.key));
  EncodeFixed64(p + 8, static_cast<uint64_t>(e.value));
}

BTree::Entry InternalEntry(const char* page, size_t i) {
  const char* p = page + kPayloadOffset + i * kInternalEntryBytes;
  return {static_cast<int64_t>(DecodeFixed64(p)),
          static_cast<int64_t>(DecodeFixed64(p + 8))};
}
PageId InternalChild(const char* page, size_t i) {
  const char* p = page + kPayloadOffset + i * kInternalEntryBytes;
  return DecodeFixed64(p + 16);
}
void SetInternalEntry(char* page, size_t i, const BTree::Entry& e,
                      PageId child) {
  char* p = page + kPayloadOffset + i * kInternalEntryBytes;
  EncodeFixed64(p, static_cast<uint64_t>(e.key));
  EncodeFixed64(p + 8, static_cast<uint64_t>(e.value));
  EncodeFixed64(p + 16, child);
}

void InitNode(char* page, size_t page_size, uint8_t type) {
  std::memset(page, 0, page_size);
  page[kTypeOffset] = static_cast<char>(type);
  page[kMagicOffset] = static_cast<char>(kMagic);
  SetCount(page, 0);
  SetLink(page, kInvalidPageId);
}

// Index of the first leaf entry >= e, by binary search.
size_t LeafLowerBound(const char* page, const BTree::Entry& e) {
  size_t lo = 0, hi = Count(page);
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (LeafEntry(page, mid) < e) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child slot to descend into for bound `e`: the largest i such that
// separator[i-1] <= e, with slot 0 meaning the leftmost child.
size_t InternalChildSlot(const char* page, const BTree::Entry& e) {
  size_t lo = 0, hi = Count(page);
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    const BTree::Entry sep = InternalEntry(page, mid);
    if (sep < e || sep == e) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;  // 0 = leftmost child, i>0 = child of separator i-1
}

PageId ChildAtSlot(const char* page, size_t slot) {
  return slot == 0 ? Link(page) : InternalChild(page, slot - 1);
}

constexpr int64_t kMinValue = INT64_MIN;

}  // namespace

Result<BTree> BTree::Create(BufferPool* pool) {
  PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool->NewPage());
  InitNode(g.mutable_data(), pool->page_size(), kLeafType);
  return BTree(pool, g.page_id());
}

Result<BTree> BTree::Open(BufferPool* pool, PageId root) {
  PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool->FetchPage(root));
  PARADISE_RETURN_IF_ERROR(ValidateNode(g.data(), root));
  return BTree(pool, root);
}

Status BTree::Insert(int64_t key, int64_t value) {
  PARADISE_ASSIGN_OR_RETURN(std::optional<Split> split,
                            InsertRecursive(root_, Entry{key, value}));
  if (!split.has_value()) return Status::OK();
  // Root split: allocate a new internal root.
  PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->NewPage());
  char* p = g.mutable_data();
  InitNode(p, pool_->page_size(), kInternalType);
  SetLink(p, root_);
  SetInternalEntry(p, 0, split->separator, split->right);
  SetCount(p, 1);
  root_ = g.page_id();
  return Status::OK();
}

Result<std::optional<BTree::Split>> BTree::InsertRecursive(PageId node,
                                                           const Entry& e) {
  const size_t page_size = pool_->page_size();
  PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(node));
  PARADISE_RETURN_IF_ERROR(ValidateNode(g.data(), node));

  if (IsLeaf(g.data())) {
    const size_t cap = LeafCapacity(page_size);
    const char* rp = g.data();
    const size_t n = Count(rp);
    const size_t pos = LeafLowerBound(rp, e);
    if (pos < n && LeafEntry(rp, pos) == e) {
      return Status::AlreadyExists("duplicate B-tree entry (" +
                                   std::to_string(e.key) + ", " +
                                   std::to_string(e.value) + ")");
    }
    if (n < cap) {
      char* p = g.mutable_data();
      for (size_t i = n; i > pos; --i) SetLeafEntry(p, i, LeafEntry(p, i - 1));
      SetLeafEntry(p, pos, e);
      SetCount(p, static_cast<uint16_t>(n + 1));
      return std::optional<Split>{};
    }
    // Split the full leaf: gather n+1 entries, give the right sibling the
    // upper half, and chain it after this leaf.
    std::vector<Entry> entries;
    entries.reserve(n + 1);
    for (size_t i = 0; i < n; ++i) entries.push_back(LeafEntry(rp, i));
    entries.insert(entries.begin() + static_cast<ptrdiff_t>(pos), e);
    const size_t left_n = entries.size() / 2;

    PARADISE_ASSIGN_OR_RETURN(PageGuard rg, pool_->NewPage());
    char* right = rg.mutable_data();
    InitNode(right, page_size, kLeafType);
    for (size_t i = left_n; i < entries.size(); ++i) {
      SetLeafEntry(right, i - left_n, entries[i]);
    }
    SetCount(right, static_cast<uint16_t>(entries.size() - left_n));

    char* left = g.mutable_data();
    SetLink(right, Link(left));
    SetLink(left, rg.page_id());
    for (size_t i = 0; i < left_n; ++i) SetLeafEntry(left, i, entries[i]);
    SetCount(left, static_cast<uint16_t>(left_n));
    return std::optional<Split>{Split{entries[left_n], rg.page_id()}};
  }

  // Internal node.
  const size_t slot = InternalChildSlot(g.data(), e);
  const PageId child = ChildAtSlot(g.data(), slot);
  g.Release();  // avoid holding a pin across the whole recursion depth
  PARADISE_ASSIGN_OR_RETURN(std::optional<Split> child_split,
                            InsertRecursive(child, e));
  if (!child_split.has_value()) return std::optional<Split>{};

  PARADISE_ASSIGN_OR_RETURN(g, pool_->FetchPage(node));
  const size_t cap = InternalCapacity(page_size);
  const char* rp = g.data();
  const size_t n = Count(rp);
  // The new separator goes at `slot` (all separators after it shift right).
  if (n < cap) {
    char* p = g.mutable_data();
    for (size_t i = n; i > slot; --i) {
      SetInternalEntry(p, i, InternalEntry(p, i - 1), InternalChild(p, i - 1));
    }
    SetInternalEntry(p, slot, child_split->separator, child_split->right);
    SetCount(p, static_cast<uint16_t>(n + 1));
    return std::optional<Split>{};
  }
  // Split the full internal node. Gather separators and children.
  std::vector<Entry> seps;
  std::vector<PageId> children;
  seps.reserve(n + 1);
  children.reserve(n + 2);
  children.push_back(Link(rp));
  for (size_t i = 0; i < n; ++i) {
    seps.push_back(InternalEntry(rp, i));
    children.push_back(InternalChild(rp, i));
  }
  seps.insert(seps.begin() + static_cast<ptrdiff_t>(slot),
              child_split->separator);
  children.insert(children.begin() + static_cast<ptrdiff_t>(slot) + 1,
                  child_split->right);
  // Middle separator moves up; left keeps [0, mid), right keeps (mid, ...).
  const size_t mid = seps.size() / 2;
  const Entry up = seps[mid];

  PARADISE_ASSIGN_OR_RETURN(PageGuard rg, pool_->NewPage());
  char* right = rg.mutable_data();
  InitNode(right, page_size, kInternalType);
  SetLink(right, children[mid + 1]);
  for (size_t i = mid + 1; i < seps.size(); ++i) {
    SetInternalEntry(right, i - (mid + 1), seps[i], children[i + 1]);
  }
  SetCount(right, static_cast<uint16_t>(seps.size() - (mid + 1)));

  char* left = g.mutable_data();
  SetLink(left, children[0]);
  for (size_t i = 0; i < mid; ++i) {
    SetInternalEntry(left, i, seps[i], children[i + 1]);
  }
  SetCount(left, static_cast<uint16_t>(mid));
  return std::optional<Split>{Split{up, rg.page_id()}};
}

Result<PageId> BTree::FindLeaf(const Entry& bound) const {
  PageId node = root_;
  for (;;) {
    PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(node));
    PARADISE_RETURN_IF_ERROR(ValidateNode(g.data(), node));
    if (IsLeaf(g.data())) return node;
    node = ChildAtSlot(g.data(), InternalChildSlot(g.data(), bound));
  }
}

Status BTree::Delete(int64_t key, int64_t value, bool* erased) {
  *erased = false;
  const Entry e{key, value};
  PARADISE_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(e));
  PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(leaf));
  const char* rp = g.data();
  const size_t n = Count(rp);
  const size_t pos = LeafLowerBound(rp, e);
  if (pos >= n || !(LeafEntry(rp, pos) == e)) return Status::OK();
  char* p = g.mutable_data();
  for (size_t i = pos; i + 1 < n; ++i) SetLeafEntry(p, i, LeafEntry(p, i + 1));
  SetCount(p, static_cast<uint16_t>(n - 1));
  *erased = true;
  return Status::OK();
}

Status BTree::GetValues(int64_t key, std::vector<int64_t>* out) const {
  PARADISE_ASSIGN_OR_RETURN(BTreeIterator it, Seek(key));
  while (it.Valid() && it.key() == key) {
    out->push_back(it.value());
    PARADISE_RETURN_IF_ERROR(it.Next());
  }
  return Status::OK();
}

Result<std::optional<int64_t>> BTree::GetFirst(int64_t key) const {
  PARADISE_ASSIGN_OR_RETURN(BTreeIterator it, Seek(key));
  if (it.Valid() && it.key() == key) return std::optional<int64_t>(it.value());
  return std::optional<int64_t>{};
}

Result<bool> BTree::Contains(int64_t key) const {
  PARADISE_ASSIGN_OR_RETURN(std::optional<int64_t> v, GetFirst(key));
  return v.has_value();
}

Result<BTreeIterator> BTree::Seek(int64_t seek_key) const {
  const Entry bound{seek_key, kMinValue};
  PARADISE_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(bound));
  PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(leaf));
  const size_t pos = LeafLowerBound(g.data(), bound);
  g.Release();
  BTreeIterator it(pool_, leaf, static_cast<uint16_t>(pos));
  PARADISE_RETURN_IF_ERROR(it.LoadCurrent());
  return it;
}

Result<BTreeIterator> BTree::Begin() const {
  return Seek(INT64_MIN);
}

Result<uint64_t> BTree::CountEntries() const {
  PARADISE_ASSIGN_OR_RETURN(BTreeIterator it, Begin());
  uint64_t n = 0;
  while (it.Valid()) {
    ++n;
    PARADISE_RETURN_IF_ERROR(it.Next());
  }
  return n;
}

Result<uint32_t> BTree::Height() const {
  uint32_t h = 1;
  PageId node = root_;
  for (;;) {
    PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(node));
    if (IsLeaf(g.data())) return h;
    node = Link(g.data());
    ++h;
  }
}

Status BTree::CheckNode(PageId node, uint32_t depth, uint32_t* leaf_depth,
                        const Entry* lower, const Entry* upper) const {
  PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(node));
  PARADISE_RETURN_IF_ERROR(ValidateNode(g.data(), node));
  const char* p = g.data();
  const size_t n = Count(p);

  auto in_bounds = [&](const Entry& e) {
    if (lower != nullptr && e < *lower) return false;
    if (upper != nullptr && !(e < *upper)) return false;
    return true;
  };

  if (IsLeaf(p)) {
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaf depth mismatch at page " +
                                std::to_string(node));
    }
    for (size_t i = 0; i < n; ++i) {
      const Entry e = LeafEntry(p, i);
      if (i > 0 && !(LeafEntry(p, i - 1) < e)) {
        return Status::Corruption("unsorted leaf " + std::to_string(node));
      }
      if (!in_bounds(e)) {
        return Status::Corruption("leaf entry outside separator bounds in " +
                                  std::to_string(node));
      }
    }
    return Status::OK();
  }

  if (n == 0) {
    return Status::Corruption("internal node with no separators: " +
                              std::to_string(node));
  }
  std::vector<Entry> seps(n);
  std::vector<PageId> children(n + 1);
  children[0] = Link(p);
  for (size_t i = 0; i < n; ++i) {
    seps[i] = InternalEntry(p, i);
    children[i + 1] = InternalChild(p, i);
    if (i > 0 && !(seps[i - 1] < seps[i])) {
      return Status::Corruption("unsorted internal node " +
                                std::to_string(node));
    }
    if (!in_bounds(seps[i])) {
      return Status::Corruption("separator outside bounds in " +
                                std::to_string(node));
    }
  }
  g.Release();
  for (size_t i = 0; i <= n; ++i) {
    const Entry* lo = i == 0 ? lower : &seps[i - 1];
    const Entry* hi = i == n ? upper : &seps[i];
    PARADISE_RETURN_IF_ERROR(CheckNode(children[i], depth + 1, leaf_depth,
                                       lo, hi));
  }
  return Status::OK();
}

Status BTree::CheckInvariants() const {
  uint32_t leaf_depth = 0;
  PARADISE_RETURN_IF_ERROR(
      CheckNode(root_, 1, &leaf_depth, nullptr, nullptr));
  // Leaf chain must be globally sorted.
  PARADISE_ASSIGN_OR_RETURN(BTreeIterator it, Begin());
  bool have_prev = false;
  Entry prev{0, 0};
  while (it.Valid()) {
    const Entry cur{it.key(), it.value()};
    if (have_prev && !(prev < cur)) {
      return Status::Corruption("leaf chain out of order");
    }
    prev = cur;
    have_prev = true;
    PARADISE_RETURN_IF_ERROR(it.Next());
  }
  return Status::OK();
}

Status BTreeIterator::LoadCurrent() {
  for (;;) {
    if (leaf_ == kInvalidPageId) {
      valid_ = false;
      return Status::OK();
    }
    PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(leaf_));
    const char* p = g.data();
    if (index_ < Count(p)) {
      const BTree::Entry e = LeafEntry(p, index_);
      key_ = e.key;
      value_ = e.value;
      valid_ = true;
      return Status::OK();
    }
    leaf_ = Link(p);
    index_ = 0;
  }
}

Status BTreeIterator::Next() {
  if (!valid_) return Status::InvalidArgument("Next() on invalid iterator");
  ++index_;
  return LoadCurrent();
}

}  // namespace paradise
