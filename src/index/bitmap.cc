#include "index/bitmap.h"

#include <bit>
#include <cstring>

#include "common/coding.h"

namespace paradise {

namespace {
constexpr uint64_t kWordBits = 64;
uint64_t WordsFor(uint64_t bits) { return (bits + kWordBits - 1) / kWordBits; }
}  // namespace

Bitmap::Bitmap(uint64_t num_bits)
    : num_bits_(num_bits), words_(WordsFor(num_bits), 0) {}

Bitmap Bitmap::AllOnes(uint64_t num_bits) {
  Bitmap b(num_bits);
  for (uint64_t& w : b.words_) w = ~0ULL;
  b.ClearTrailingBits();
  return b;
}

void Bitmap::ClearTrailingBits() {
  const uint64_t rem = num_bits_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (1ULL << rem) - 1;
  }
}

void Bitmap::Set(uint64_t bit) {
  words_[bit / kWordBits] |= 1ULL << (bit % kWordBits);
}

void Bitmap::Clear(uint64_t bit) {
  words_[bit / kWordBits] &= ~(1ULL << (bit % kWordBits));
}

bool Bitmap::Test(uint64_t bit) const {
  return (words_[bit / kWordBits] >> (bit % kWordBits)) & 1;
}

uint64_t Bitmap::CountOnes() const {
  uint64_t n = 0;
  for (uint64_t w : words_) n += static_cast<uint64_t>(std::popcount(w));
  return n;
}

Status Bitmap::And(const Bitmap& other) {
  if (other.num_bits_ != num_bits_) {
    return Status::InvalidArgument(
        "bitmap size mismatch: " + std::to_string(num_bits_) + " vs " +
        std::to_string(other.num_bits_));
  }
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return Status::OK();
}

Status Bitmap::Or(const Bitmap& other) {
  if (other.num_bits_ != num_bits_) {
    return Status::InvalidArgument(
        "bitmap size mismatch: " + std::to_string(num_bits_) + " vs " +
        std::to_string(other.num_bits_));
  }
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return Status::OK();
}

void Bitmap::Not() {
  for (uint64_t& w : words_) w = ~w;
  ClearTrailingBits();
}

uint64_t Bitmap::FindNextSet(uint64_t from) const {
  if (from >= num_bits_) return num_bits_;
  uint64_t word_idx = from / kWordBits;
  uint64_t w = words_[word_idx] & (~0ULL << (from % kWordBits));
  for (;;) {
    if (w != 0) {
      const uint64_t bit =
          word_idx * kWordBits + static_cast<uint64_t>(std::countr_zero(w));
      return bit < num_bits_ ? bit : num_bits_;
    }
    if (++word_idx >= words_.size()) return num_bits_;
    w = words_[word_idx];
  }
}

std::string Bitmap::Serialize() const {
  std::string out;
  out.resize(8 + words_.size() * 8);
  EncodeFixed64(out.data(), num_bits_);
  std::memcpy(out.data() + 8, words_.data(), words_.size() * 8);
  return out;
}

Result<Bitmap> Bitmap::Deserialize(std::string_view data) {
  if (data.size() < 8) return Status::Corruption("bitmap blob too small");
  const uint64_t num_bits = DecodeFixed64(data.data());
  // Validate against the blob size BEFORE allocating: a corrupt header must
  // not drive a huge allocation.
  if (num_bits / 8 > data.size()) {
    return Status::Corruption("bitmap header claims " +
                              std::to_string(num_bits) + " bits in a " +
                              std::to_string(data.size()) + "-byte blob");
  }
  const uint64_t words = WordsFor(num_bits);
  if (data.size() != 8 + words * 8) {
    return Status::Corruption("bitmap blob size mismatch: " +
                              std::to_string(data.size()) + " bytes for " +
                              std::to_string(num_bits) + " bits");
  }
  Bitmap b(num_bits);
  std::memcpy(b.words_.data(), data.data() + 8, words * 8);
  return b;
}

}  // namespace paradise
