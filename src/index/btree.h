// Disk-resident B+tree over the buffer pool with fixed-size
// (int64 key, int64 value) entries and duplicate keys. The OLAP Array ADT
// keeps one of these per dimension to map dimension keys to array indices
// (paper §3.1), and one per selectable dimension attribute to map attribute
// values to lists of array indices (paper §4.2's "join index" lists).
//
// Ordering is the strict total order on the (key, value) pair, and internal
// separators carry both components, so duplicate keys that straddle a node
// split are still found by Seek(key) = lower_bound((key, INT64_MIN)). The
// (key, value) pair itself must be unique — Insert rejects exact duplicates
// — which keeps the order strict and separators unambiguous.
//
// Deletion removes entries without rebalancing (nodes may underflow); the
// workloads here are build-once/read-many, matching the paper's.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace paradise {

/// Packs the first 8 bytes of a string into an order-preserving int64 key
/// (big-endian, zero-padded, offset so the unsigned order maps onto the
/// signed int64 order). Dimension attribute values in the test schemas are
/// short strings ("AA3"), unique within 8 characters.
int64_t StringPrefixKey(std::string_view s);

class BTreeIterator;

class BTree {
 public:
  /// One (key, value) pair stored in a leaf.
  struct Entry {
    int64_t key;
    int64_t value;
    friend bool operator<(const Entry& a, const Entry& b) {
      return a.key != b.key ? a.key < b.key : a.value < b.value;
    }
    friend bool operator==(const Entry& a, const Entry& b) {
      return a.key == b.key && a.value == b.value;
    }
  };

  BTree() = default;

  /// Creates an empty tree (a single leaf root).
  static Result<BTree> Create(BufferPool* pool);

  /// Opens a tree rooted at `root`.
  static Result<BTree> Open(BufferPool* pool, PageId root);

  /// Inserts one entry. Duplicate keys are allowed; an exact duplicate
  /// (key, value) pair returns AlreadyExists.
  Status Insert(int64_t key, int64_t value);

  /// Removes one exact (key, value) entry. Sets *erased to whether it
  /// existed. No rebalancing.
  Status Delete(int64_t key, int64_t value, bool* erased);

  /// Appends all values stored under `key` to `out`, in value order.
  Status GetValues(int64_t key, std::vector<int64_t>* out) const;

  /// First (smallest) value under `key`, or nullopt. Convenience for
  /// unique-key maps such as dimension-key → array-index.
  Result<std::optional<int64_t>> GetFirst(int64_t key) const;

  /// Whether any entry with `key` exists.
  Result<bool> Contains(int64_t key) const;

  /// Iterator positioned at the first entry with (key, value) >=
  /// (seek_key, INT64_MIN).
  Result<BTreeIterator> Seek(int64_t seek_key) const;

  /// Iterator positioned at the smallest entry.
  Result<BTreeIterator> Begin() const;

  /// Total number of entries (leaf-chain scan).
  Result<uint64_t> CountEntries() const;

  /// Height of the tree (1 = root is a leaf).
  Result<uint32_t> Height() const;

  /// Verifies structural invariants: uniform leaf depth, sorted nodes,
  /// separator consistency, and a sorted leaf chain. Used by the property
  /// tests; returns Corruption on violation.
  Status CheckInvariants() const;

  PageId root() const { return root_; }
  BufferPool* pool() const { return pool_; }

 private:
  BTree(BufferPool* pool, PageId root) : pool_(pool), root_(root) {}

  struct Split {
    Entry separator;  // first entry of the right sibling
    PageId right;
  };

  Result<std::optional<Split>> InsertRecursive(PageId node, const Entry& e);
  Result<PageId> FindLeaf(const Entry& bound) const;
  Status CheckNode(PageId node, uint32_t depth, uint32_t* leaf_depth,
                   const Entry* lower, const Entry* upper) const;

  BufferPool* pool_ = nullptr;
  PageId root_ = kInvalidPageId;
};

/// Forward iterator over leaf entries in (key, value) order. Pins one leaf
/// page at a time.
class BTreeIterator {
 public:
  BTreeIterator() = default;

  bool Valid() const { return valid_; }
  int64_t key() const { return key_; }
  int64_t value() const { return value_; }

  /// Advances to the next entry; invalidates at the end of the leaf chain.
  Status Next();

 private:
  friend class BTree;
  BTreeIterator(BufferPool* pool, PageId leaf, uint16_t index)
      : pool_(pool), leaf_(leaf), index_(index) {}

  /// Loads key_/value_ from the current position, following the leaf chain
  /// past empty leaves; clears valid_ at the end.
  Status LoadCurrent();

  BufferPool* pool_ = nullptr;
  PageId leaf_ = kInvalidPageId;
  uint16_t index_ = 0;
  bool valid_ = false;
  int64_t key_ = 0;
  int64_t value_ = 0;
};

}  // namespace paradise
