#include "index/bitmap_index.h"

#include "common/coding.h"

namespace paradise {

namespace {
// Directory blob: fixed64 num_tuples, fixed32 entry count, then per entry
// fixed64 value + fixed64 bitmap ObjectId.
std::string SerializeDirectory(uint64_t num_tuples,
                               const std::map<int64_t, ObjectId>& dir) {
  std::string out;
  out.resize(12 + dir.size() * 16);
  char* p = out.data();
  EncodeFixed64(p, num_tuples);
  EncodeFixed32(p + 8, static_cast<uint32_t>(dir.size()));
  size_t i = 0;
  for (const auto& [value, oid] : dir) {
    EncodeFixed64(p + 12 + i * 16, static_cast<uint64_t>(value));
    EncodeFixed64(p + 12 + i * 16 + 8, oid);
    ++i;
  }
  return out;
}
}  // namespace

void BitmapJoinIndex::Builder::Add(int64_t value, uint64_t tuple_number) {
  auto [it, inserted] = bitmaps_.try_emplace(value, num_tuples_);
  it->second.Set(tuple_number);
}

Result<ObjectId> BitmapJoinIndex::Builder::Finish(LargeObjectStore* objects) {
  std::map<int64_t, ObjectId> directory;
  for (const auto& [value, bitmap] : bitmaps_) {
    PARADISE_ASSIGN_OR_RETURN(ObjectId oid,
                              objects->Create(bitmap.Serialize()));
    directory[value] = oid;
  }
  return objects->Create(SerializeDirectory(num_tuples_, directory));
}

Result<BitmapJoinIndex> BitmapJoinIndex::Open(LargeObjectStore* objects,
                                              ObjectId directory_oid) {
  PARADISE_ASSIGN_OR_RETURN(std::string blob, objects->Read(directory_oid));
  if (blob.size() < 12) {
    return Status::Corruption("bitmap index directory too small");
  }
  const uint64_t num_tuples = DecodeFixed64(blob.data());
  const uint32_t count = DecodeFixed32(blob.data() + 8);
  if (blob.size() != 12 + static_cast<size_t>(count) * 16) {
    return Status::Corruption("bitmap index directory size mismatch");
  }
  std::map<int64_t, ObjectId> directory;
  for (uint32_t i = 0; i < count; ++i) {
    const int64_t value =
        static_cast<int64_t>(DecodeFixed64(blob.data() + 12 + i * 16));
    const ObjectId oid = DecodeFixed64(blob.data() + 12 + i * 16 + 8);
    directory[value] = oid;
  }
  return BitmapJoinIndex(objects, num_tuples, std::move(directory));
}

Result<Bitmap> BitmapJoinIndex::Lookup(int64_t value) const {
  auto it = directory_.find(value);
  if (it == directory_.end()) return Bitmap(num_tuples_);
  PARADISE_ASSIGN_OR_RETURN(std::string blob, objects_->Read(it->second));
  return Bitmap::Deserialize(blob);
}

Result<Bitmap> BitmapJoinIndex::LookupAny(
    const std::vector<int64_t>& values) const {
  Bitmap acc(num_tuples_);
  for (int64_t v : values) {
    PARADISE_ASSIGN_OR_RETURN(Bitmap b, Lookup(v));
    PARADISE_RETURN_IF_ERROR(acc.Or(b));
  }
  return acc;
}

std::vector<int64_t> BitmapJoinIndex::Values() const {
  std::vector<int64_t> out;
  out.reserve(directory_.size());
  for (const auto& [value, oid] : directory_) out.push_back(value);
  return out;
}

Result<uint64_t> BitmapJoinIndex::TotalBitmapBytes() const {
  uint64_t total = 0;
  for (const auto& [value, oid] : directory_) {
    PARADISE_ASSIGN_OR_RETURN(uint64_t sz, objects_->Size(oid));
    total += sz;
  }
  return total;
}

}  // namespace paradise
