// BitmapJoinIndex: per distinct value of a dimension attribute, a bitmap
// over fact-tuple numbers marking the tuples that join to a dimension row
// with that value — the "join bitmap index" of paper §4.5, created ahead of
// query time. Bitmaps persist as large objects; the value → ObjectId
// directory persists as one more large object whose id the caller records
// in the database catalog.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "index/bitmap.h"
#include "storage/large_object.h"
#include "storage/page.h"

namespace paradise {

class BitmapJoinIndex {
 public:
  /// In-memory builder: mark tuple `tuple_number` as joining to attribute
  /// value `value` (an int64 key; strings go through StringPrefixKey).
  class Builder {
   public:
    explicit Builder(uint64_t num_tuples) : num_tuples_(num_tuples) {}

    void Add(int64_t value, uint64_t tuple_number);

    /// Persists every bitmap plus the directory; returns the directory's
    /// ObjectId.
    Result<ObjectId> Finish(LargeObjectStore* objects);

   private:
    uint64_t num_tuples_;
    std::map<int64_t, Bitmap> bitmaps_;
  };

  /// Opens an index from its directory object.
  static Result<BitmapJoinIndex> Open(LargeObjectStore* objects,
                                      ObjectId directory);

  /// Loads the bitmap for one attribute value. A value absent from the
  /// directory yields an all-zero bitmap (no fact tuple joins to it).
  Result<Bitmap> Lookup(int64_t value) const;

  /// Loads and ORs the bitmaps of several values — the paper's per-dimension
  /// merge of selected-value bitmaps.
  Result<Bitmap> LookupAny(const std::vector<int64_t>& values) const;

  uint64_t num_tuples() const { return num_tuples_; }
  size_t num_values() const { return directory_.size(); }

  /// Distinct attribute values present, in increasing order.
  std::vector<int64_t> Values() const;

  /// Total serialized bytes of all bitmaps (storage accounting).
  Result<uint64_t> TotalBitmapBytes() const;

 private:
  BitmapJoinIndex(LargeObjectStore* objects, uint64_t num_tuples,
                  std::map<int64_t, ObjectId> directory)
      : objects_(objects),
        num_tuples_(num_tuples),
        directory_(std::move(directory)) {}

  LargeObjectStore* objects_;
  uint64_t num_tuples_;
  std::map<int64_t, ObjectId> directory_;
};

}  // namespace paradise
