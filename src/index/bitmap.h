// Bitmap: a word-aligned bit vector over fact-tuple numbers, plus the
// boolean algebra (AND/OR/NOT) the relational selection plan needs
// (paper §4.5: fetch per-value bitmaps, AND them, scan the result).
// Bitmaps are built in memory and persisted as large objects.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace paradise {

class Bitmap {
 public:
  Bitmap() = default;

  /// Creates a bitmap of `num_bits` bits, all zero.
  explicit Bitmap(uint64_t num_bits);

  /// Creates a bitmap of `num_bits` bits, all one.
  static Bitmap AllOnes(uint64_t num_bits);

  uint64_t num_bits() const { return num_bits_; }

  void Set(uint64_t bit);
  void Clear(uint64_t bit);
  bool Test(uint64_t bit) const;

  /// Number of set bits.
  uint64_t CountOnes() const;

  /// In-place boolean ops. The operand must have the same size.
  Status And(const Bitmap& other);
  Status Or(const Bitmap& other);
  void Not();

  /// Index of the first set bit at or after `from`, or num_bits() if none.
  /// Drives the fact-file fetch loop.
  uint64_t FindNextSet(uint64_t from) const;

  /// Serialized form: fixed64 num_bits followed by the raw words.
  std::string Serialize() const;
  static Result<Bitmap> Deserialize(std::string_view data);

  /// Serialized size in bytes, for storage accounting.
  uint64_t SerializedBytes() const { return 8 + words_.size() * 8; }

  bool operator==(const Bitmap& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

 private:
  /// Zeroes any bits in the last word beyond num_bits_ (keeps Not/CountOnes
  /// correct).
  void ClearTrailingBits();

  uint64_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

/// Iterates the set bits of a bitmap in increasing order.
class BitmapIterator {
 public:
  explicit BitmapIterator(const Bitmap* bitmap)
      : bitmap_(bitmap), pos_(bitmap->FindNextSet(0)) {}

  bool Valid() const { return pos_ < bitmap_->num_bits(); }
  uint64_t bit() const { return pos_; }
  void Next() { pos_ = bitmap_->FindNextSet(pos_ + 1); }

 private:
  const Bitmap* bitmap_;
  uint64_t pos_;
};

}  // namespace paradise
