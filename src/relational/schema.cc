#include "relational/schema.h"

#include "common/coding.h"

namespace paradise {

size_t ColumnTypeSize(ColumnType type) {
  switch (type) {
    case ColumnType::kInt32:
      return 4;
    case ColumnType::kInt64:
      return 8;
    case ColumnType::kString16:
      return 16;
  }
  return 0;
}

std::string_view ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kInt32:
      return "int32";
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kString16:
      return "string16";
  }
  return "unknown";
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  size_t off = 0;
  for (const Column& c : columns_) {
    offsets_.push_back(off);
    off += ColumnTypeSize(c.type);
  }
  record_size_ = off;
}

Result<size_t> Schema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + std::string(name) + "'");
}

std::string Schema::Serialize() const {
  std::string out;
  char scratch[4];
  EncodeFixed32(scratch, static_cast<uint32_t>(columns_.size()));
  out.append(scratch, 4);
  for (const Column& c : columns_) {
    EncodeFixed32(scratch, static_cast<uint32_t>(c.name.size()));
    out.append(scratch, 4);
    out.append(c.name);
    out.push_back(static_cast<char>(c.type));
  }
  return out;
}

Result<Schema> Schema::Deserialize(std::string_view data) {
  if (data.size() < 4) return Status::Corruption("schema blob too small");
  const char* p = data.data();
  const char* end = data.data() + data.size();
  const uint32_t count = DecodeFixed32(p);
  p += 4;
  // Each column needs at least 5 bytes; a count beyond that is corrupt, and
  // must not drive a huge reservation.
  if (count > data.size()) {
    return Status::Corruption("schema column count implausible");
  }
  std::vector<Column> columns;
  columns.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (p + 4 > end) return Status::Corruption("truncated schema column");
    const uint32_t name_len = DecodeFixed32(p);
    p += 4;
    if (p + name_len + 1 > end) {
      return Status::Corruption("truncated schema column");
    }
    std::string name(p, name_len);
    p += name_len;
    const auto type = static_cast<ColumnType>(*p++);
    if (type != ColumnType::kInt32 && type != ColumnType::kInt64 &&
        type != ColumnType::kString16) {
      return Status::Corruption("unknown column type in schema blob");
    }
    columns.push_back(Column{std::move(name), type});
  }
  return Schema(std::move(columns));
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace paradise
