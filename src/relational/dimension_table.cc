#include "relational/dimension_table.h"

#include "index/btree.h"

namespace paradise {

namespace {
Status ValidateDimensionSchema(const Schema& schema) {
  if (schema.num_columns() == 0 ||
      schema.column(0).type != ColumnType::kInt32) {
    return Status::InvalidArgument(
        "dimension schema must start with an int32 key column");
  }
  return Status::OK();
}
}  // namespace

Result<DimensionTable> DimensionTable::Create(BufferPool* pool,
                                              std::string name,
                                              Schema schema) {
  PARADISE_RETURN_IF_ERROR(ValidateDimensionSchema(schema));
  PARADISE_ASSIGN_OR_RETURN(HeapFile storage, HeapFile::Create(pool));
  return DimensionTable(pool, std::move(name), std::move(schema),
                        std::move(storage));
}

Result<DimensionTable> DimensionTable::Open(BufferPool* pool,
                                            std::string name, Schema schema,
                                            PageId first_page) {
  PARADISE_RETURN_IF_ERROR(ValidateDimensionSchema(schema));
  PARADISE_ASSIGN_OR_RETURN(HeapFile storage,
                            HeapFile::Open(pool, first_page));
  DimensionTable table(pool, std::move(name), std::move(schema),
                       std::move(storage));
  PARADISE_ASSIGN_OR_RETURN(HeapFileIterator it, table.storage_.Scan());
  while (it.Valid()) {
    if (it.record().size() != table.schema_->record_size()) {
      return Status::Corruption("dimension row size mismatch in table '" +
                                table.name_ + "'");
    }
    Tuple row(table.schema_.get(), it.record());
    PARADISE_RETURN_IF_ERROR(table.IndexRow(row));
    table.rows_.push_back(std::move(row));
    PARADISE_RETURN_IF_ERROR(it.Next());
  }
  return table;
}

Status DimensionTable::Append(const Tuple& row) {
  if (row.bytes().size() != schema_->record_size()) {
    return Status::InvalidArgument("row size mismatch for table '" + name_ +
                                   "'");
  }
  const int32_t key = row.GetInt32(0);
  if (key_to_row_.contains(key)) {
    return Status::AlreadyExists("duplicate dimension key " +
                                 std::to_string(key) + " in table '" + name_ +
                                 "'");
  }
  PARADISE_RETURN_IF_ERROR(storage_.Append(row.bytes()).status());
  PARADISE_RETURN_IF_ERROR(IndexRow(row));
  // Re-bind the cached copy to this table's stable schema: the caller's
  // Tuple may reference a schema that does not outlive the table.
  rows_.push_back(Tuple(schema_.get(), row.bytes()));
  return Status::OK();
}

Status DimensionTable::IndexRow(const Tuple& row) {
  const uint32_t row_idx = static_cast<uint32_t>(rows_.size());
  key_to_row_[row.GetInt32(0)] = row_idx;
  for (size_t col = 1; col < schema_->num_columns(); ++col) {
    PARADISE_ASSIGN_OR_RETURN(int64_t norm, NormalizedValue(row.ref(), col));
    AttributeDictionary& dict = dictionaries_[col];
    auto [it, inserted] =
        dict.value_to_code.try_emplace(norm, dict.cardinality());
    if (inserted) {
      dict.code_to_value.push_back(norm);
      std::string display;
      switch (schema_->column(col).type) {
        case ColumnType::kInt32:
          display = std::to_string(row.GetInt32(col));
          break;
        case ColumnType::kInt64:
          display = std::to_string(row.GetInt64(col));
          break;
        case ColumnType::kString16:
          display = std::string(row.GetString(col));
          break;
      }
      dict.code_to_display.push_back(std::move(display));
    }
    attr_codes_[col].push_back(it->second);
  }
  return Status::OK();
}

Result<uint32_t> DimensionTable::RowOfKey(int32_t key) const {
  auto it = key_to_row_.find(key);
  if (it == key_to_row_.end()) {
    return Status::NotFound("key " + std::to_string(key) +
                            " not in dimension '" + name_ + "'");
  }
  return it->second;
}

Result<const AttributeDictionary*> DimensionTable::Dictionary(
    size_t col) const {
  if (col == 0 || col >= schema_->num_columns()) {
    return Status::InvalidArgument("column " + std::to_string(col) +
                                   " has no dictionary in '" + name_ + "'");
  }
  return &dictionaries_[col];
}

Result<int32_t> DimensionTable::RowAttrCode(uint32_t row, size_t col) const {
  if (col == 0 || col >= schema_->num_columns()) {
    return Status::InvalidArgument("bad attribute column " +
                                   std::to_string(col));
  }
  if (row >= rows_.size()) {
    return Status::OutOfRange("row " + std::to_string(row) + " beyond " +
                              std::to_string(rows_.size()));
  }
  return attr_codes_[col][row];
}

Result<int32_t> DimensionTable::ValueCode(size_t col,
                                          int64_t normalized_value) const {
  PARADISE_ASSIGN_OR_RETURN(const AttributeDictionary* dict, Dictionary(col));
  auto it = dict->value_to_code.find(normalized_value);
  if (it == dict->value_to_code.end()) {
    return Status::NotFound("value not present in attribute '" +
                            schema_->column(col).name + "' of '" + name_ +
                            "'");
  }
  return it->second;
}

Result<int64_t> DimensionTable::NormalizedValue(const TupleRef& row,
                                                size_t col) const {
  switch (schema_->column(col).type) {
    case ColumnType::kInt32:
      return static_cast<int64_t>(row.GetInt32(col));
    case ColumnType::kInt64:
      return row.GetInt64(col);
    case ColumnType::kString16:
      return StringPrefixKey(row.GetString(col));
  }
  return Status::Internal("unreachable column type");
}

Result<std::vector<int32_t>> DimensionTable::LevelMap(size_t col) const {
  if (col == 0 || col >= schema_->num_columns()) {
    return Status::InvalidArgument("bad attribute column " +
                                   std::to_string(col));
  }
  return attr_codes_[col];
}

}  // namespace paradise
