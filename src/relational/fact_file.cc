#include "relational/fact_file.h"

#include <cstring>

#include "common/coding.h"

namespace paradise {

namespace {
// Meta page layout:
//   [0,4)   magic "FACT"
//   [4,8)   record size
//   [8,16)  tuple count
//   [16,24) extent-directory root PageId
constexpr char kMagic[4] = {'F', 'A', 'C', 'T'};
constexpr size_t kMagicOffset = 0;
constexpr size_t kRecordSizeOffset = 4;
constexpr size_t kNumTuplesOffset = 8;
constexpr size_t kExtentRootOffset = 16;
}  // namespace

Result<FactFile> FactFile::Create(BufferPool* pool, Disk* disk,
                                  uint32_t record_size,
                                  uint32_t pages_per_extent) {
  if (record_size == 0 || record_size > pool->page_size()) {
    return Status::InvalidArgument("record size " +
                                   std::to_string(record_size) +
                                   " must be in (0, page_size]");
  }
  ExtentAllocator extents(pool, disk);
  PARADISE_ASSIGN_OR_RETURN(PageId extent_root,
                            extents.Create(pages_per_extent));
  PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool->NewPage());
  char* p = g.mutable_data();
  std::memcpy(p + kMagicOffset, kMagic, sizeof(kMagic));
  EncodeFixed32(p + kRecordSizeOffset, record_size);
  EncodeFixed64(p + kNumTuplesOffset, 0);
  EncodeFixed64(p + kExtentRootOffset, extent_root);
  return FactFile(pool, g.page_id(), record_size, 0, std::move(extents));
}

Result<FactFile> FactFile::Open(BufferPool* pool, Disk* disk,
                                PageId meta_page) {
  uint32_t record_size = 0;
  uint64_t num_tuples = 0;
  PageId extent_root = kInvalidPageId;
  {
    PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool->FetchPage(meta_page));
    const char* p = g.data();
    if (std::memcmp(p + kMagicOffset, kMagic, sizeof(kMagic)) != 0) {
      return Status::Corruption("page " + std::to_string(meta_page) +
                                " is not a fact-file meta page");
    }
    record_size = DecodeFixed32(p + kRecordSizeOffset);
    num_tuples = DecodeFixed64(p + kNumTuplesOffset);
    extent_root = DecodeFixed64(p + kExtentRootOffset);
  }
  if (record_size == 0 || record_size > pool->page_size()) {
    return Status::Corruption("fact file has invalid record size " +
                              std::to_string(record_size));
  }
  ExtentAllocator extents(pool, disk);
  PARADISE_RETURN_IF_ERROR(extents.Open(extent_root));
  return FactFile(pool, meta_page, record_size, num_tuples,
                  std::move(extents));
}

Status FactFile::Append(std::string_view record) {
  if (record.size() != record_size_) {
    return Status::InvalidArgument(
        "record of " + std::to_string(record.size()) + " bytes, expected " +
        std::to_string(record_size_));
  }
  const uint64_t tuple = num_tuples_;
  const uint64_t logical_page = tuple / tuples_per_page_;
  PARADISE_RETURN_IF_ERROR(extents_.EnsureCapacity(logical_page + 1));
  PARADISE_ASSIGN_OR_RETURN(PageId pid,
                            extents_.LogicalToPhysical(logical_page));
  PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(pid));
  const uint64_t slot = tuple % tuples_per_page_;
  std::memcpy(g.mutable_data() + slot * record_size_, record.data(),
              record.size());
  ++num_tuples_;
  return Status::OK();
}

Status FactFile::Get(uint64_t tuple_number, char* out) const {
  if (tuple_number >= num_tuples_) {
    return Status::OutOfRange("tuple " + std::to_string(tuple_number) +
                              " beyond " + std::to_string(num_tuples_));
  }
  const uint64_t logical_page = tuple_number / tuples_per_page_;
  PARADISE_ASSIGN_OR_RETURN(PageId pid,
                            extents_.LogicalToPhysical(logical_page));
  PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(pid));
  const uint64_t slot = tuple_number % tuples_per_page_;
  std::memcpy(out, g.data() + slot * record_size_, record_size_);
  return Status::OK();
}

Status FactFile::Sync() {
  PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(meta_page_));
  EncodeFixed64(g.mutable_data() + kNumTuplesOffset, num_tuples_);
  return Status::OK();
}

uint64_t FactFile::total_pages() const {
  // Meta page + directory pages (>= 1) + all extent pages. The extent
  // directory chain length is proportional to extent count; approximate it
  // as 1 since directories hold ~1000 extents per page.
  return 1 + 1 + extents_.num_extents() * extents_.pages_per_extent();
}

}  // namespace paradise
