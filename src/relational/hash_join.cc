#include "relational/hash_join.h"

#include <unordered_map>

#include "relational/star_join.h"

namespace paradise {

namespace {

/// One materialized intermediate row: the not-yet-joined foreign keys, the
/// group codes accumulated so far, and the measure.
struct JoinRow {
  std::vector<int32_t> pending_keys;
  std::vector<int32_t> group;
  int64_t measure;
};

}  // namespace

Result<query::GroupedResult> LeftDeepJoinConsolidate(
    const LeftDeepJoinParams& params) {
  using star_join_internal::BuildDimTable;
  using star_join_internal::DimProbe;
  const query::ConsolidationQuery& q = *params.query;
  const size_t n = params.dims.size();
  if (q.dims.size() != n) {
    return Status::InvalidArgument("query/dimension count mismatch");
  }
  const size_t measure_col = n + q.measure;
  if (measure_col >= params.fact_schema->num_columns()) {
    return Status::InvalidArgument("measure index out of range");
  }

  std::vector<size_t> joined_dims;
  std::vector<std::string> group_columns;
  for (size_t i = 0; i < n; ++i) {
    if (q.dims[i].group_by_col.has_value() || !q.dims[i].selections.empty()) {
      joined_dims.push_back(i);
    }
    if (q.dims[i].group_by_col.has_value()) {
      group_columns.push_back(
          params.dims[i]->name() + "." +
          params.dims[i]->schema().column(*q.dims[i].group_by_col).name);
    }
  }

  uint64_t intermediates = 0;

  // Stage 0: scan the fact file into the first materialized intermediate.
  std::vector<JoinRow> current;
  {
    ScopedPhase phase(params.timer, "fact-scan");
    current.reserve(params.fact->num_tuples());
    const Schema& fs = *params.fact_schema;
    PARADISE_RETURN_IF_ERROR(params.fact->ScanAll(
        [&](uint64_t /*tuple*/, const char* record) -> Status {
          TupleRef t(&fs, record);
          JoinRow row;
          row.pending_keys.reserve(joined_dims.size());
          for (size_t d : joined_dims) row.pending_keys.push_back(t.GetInt32(d));
          row.measure = t.GetInt64(measure_col);
          current.push_back(std::move(row));
          return Status::OK();
        }));
    intermediates += current.size();
  }

  // One pipeline stage per joined dimension: probe, filter, extend the
  // group vector, materialize the next intermediate.
  for (size_t stage = 0; stage < joined_dims.size(); ++stage) {
    ScopedPhase phase(params.timer,
                      "join-" + params.dims[joined_dims[stage]]->name());
    const size_t d = joined_dims[stage];
    using ProbeTable = std::unordered_map<int32_t, DimProbe>;
    PARADISE_ASSIGN_OR_RETURN(ProbeTable table,
                              BuildDimTable(*params.dims[d], q.dims[d]));
    std::vector<JoinRow> next;
    next.reserve(current.size());
    for (JoinRow& row : current) {
      auto it = table.find(row.pending_keys[stage]);
      if (it == table.end()) {
        return Status::Corruption("fact tuple references unknown key of " +
                                  params.dims[d]->name());
      }
      if (!it->second.passes) continue;
      JoinRow out = std::move(row);
      if (q.dims[d].group_by_col.has_value()) {
        out.group.push_back(it->second.group_code);
      }
      next.push_back(std::move(out));
    }
    current = std::move(next);
    intermediates += current.size();
  }

  // Final hash aggregation over the last intermediate.
  std::unordered_map<std::vector<int32_t>, query::AggState, GroupVectorHash>
      groups;
  {
    ScopedPhase phase(params.timer, "aggregate");
    for (const JoinRow& row : current) {
      groups[row.group].Add(row.measure);
    }
  }
  if (params.intermediate_rows != nullptr) {
    *params.intermediate_rows = intermediates;
  }

  query::GroupedResult result(std::move(group_columns));
  for (auto& [group, agg] : groups) {
    result.Add(query::ResultRow{group, agg});
  }
  result.SortCanonical();
  return result;
}

}  // namespace paradise
