// Left-deep pipelined hash-join baseline — the conventional plan the paper's
// §4.3 argues is a poor fit for star joins (each stage materializes the
// growing join result before the next dimension joins and the final
// aggregation runs). Kept as an ablation so the benches can show the gap the
// fused StarJoinConsolidation closes.
#pragma once

#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "query/query.h"
#include "query/result.h"
#include "relational/dimension_table.h"
#include "relational/fact_file.h"
#include "relational/schema.h"

namespace paradise {

struct LeftDeepJoinParams {
  const FactFile* fact = nullptr;
  const Schema* fact_schema = nullptr;
  std::vector<const DimensionTable*> dims;
  const query::ConsolidationQuery* query = nullptr;
  PhaseTimer* timer = nullptr;

  /// Output: total intermediate rows materialized across all join stages
  /// (the cost driver this baseline demonstrates).
  uint64_t* intermediate_rows = nullptr;
};

/// Joins the fact table with each joined dimension one stage at a time,
/// materializing the intermediate result between stages, then hash-
/// aggregates. Semantics match StarJoinConsolidate.
Result<query::GroupedResult> LeftDeepJoinConsolidate(
    const LeftDeepJoinParams& params);

}  // namespace paradise
