// HeapFile: a classic slotted-page record file, used for dimension tables
// and kept as the slotted-page baseline the paper's fact file is designed to
// beat ("it eliminates the space overhead associated with the slotted page
// structure used in most relational database systems", §4.4). Records may be
// variable length. Pages form a singly linked chain from the first page.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace paradise {

/// Physical record address: page + slot.
struct RecordId {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const RecordId& other) const {
    return page == other.page && slot == other.slot;
  }
};

class HeapFileIterator;

class HeapFile {
 public:
  HeapFile() = default;

  /// Creates an empty heap file; returns it with a fresh first page.
  static Result<HeapFile> Create(BufferPool* pool);

  /// Opens an existing heap file rooted at `first_page`.
  static Result<HeapFile> Open(BufferPool* pool, PageId first_page);

  /// Appends a record (at most page_size - 64 bytes) and returns its id.
  Result<RecordId> Append(std::string_view record);

  /// Copies the record at `rid` into `out`.
  Status Get(RecordId rid, std::string* out) const;

  /// Iterator over all records in physical order.
  Result<HeapFileIterator> Scan() const;

  /// Counts records by scanning.
  Result<uint64_t> CountRecords() const;

  /// Number of pages in the chain.
  Result<uint64_t> CountPages() const;

  PageId first_page() const { return first_page_; }
  BufferPool* pool() const { return pool_; }

 private:
  HeapFile(BufferPool* pool, PageId first, PageId last)
      : pool_(pool), first_page_(first), last_page_(last) {}

  BufferPool* pool_ = nullptr;
  PageId first_page_ = kInvalidPageId;
  PageId last_page_ = kInvalidPageId;
};

/// Scans records front to back, copying each record out (so no pin is held
/// between Next() calls).
class HeapFileIterator {
 public:
  HeapFileIterator() = default;

  bool Valid() const { return valid_; }
  const std::string& record() const { return record_; }
  RecordId record_id() const { return RecordId{page_, slot_}; }

  Status Next();

 private:
  friend class HeapFile;
  HeapFileIterator(BufferPool* pool, PageId page)
      : pool_(pool), page_(page), slot_(0) {}

  /// Loads the record at the current position, advancing across pages and
  /// past empty pages; clears valid_ at the end of the chain.
  Status LoadCurrent();

  BufferPool* pool_ = nullptr;
  PageId page_ = kInvalidPageId;
  uint16_t slot_ = 0;
  bool valid_ = false;
  std::string record_;
};

}  // namespace paradise
