// FactFile: the paper's specialized storage structure for tables of small
// fixed-length records (§4.4). Records are packed back-to-back into pages
// allocated in contiguous extents; a tuple number maps arithmetically to
// (extent, page, offset), so bitmap-driven fetches can jump straight to a
// tuple with no slotted-page indirection and no per-record overhead.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "index/bitmap.h"
#include "storage/buffer_pool.h"
#include "storage/extent_allocator.h"
#include "storage/page.h"

namespace paradise {

class FactFile {
 public:
  FactFile() = default;

  /// Creates an empty fact file for `record_size`-byte records; pages are
  /// grouped into extents of `pages_per_extent` contiguous pages.
  static Result<FactFile> Create(BufferPool* pool, Disk* disk,
                                 uint32_t record_size,
                                 uint32_t pages_per_extent);

  /// Opens a fact file from its meta page.
  static Result<FactFile> Open(BufferPool* pool, Disk* disk,
                               PageId meta_page);

  /// Appends one record. Call Sync() after a batch of appends to persist
  /// the tuple count.
  Status Append(std::string_view record);

  /// Copies tuple `tuple_number` into `out` (record_size() bytes).
  Status Get(uint64_t tuple_number, char* out) const;

  /// Invokes `fn(tuple_number, const char* record)` for every tuple, in
  /// tuple order, one page pin at a time. `fn` returns Status; a non-OK
  /// status aborts the scan.
  template <typename Fn>
  Status ScanAll(Fn&& fn) const;

  /// The paper's bitmap interface: invokes `fn(tuple_number, record)` for
  /// each set bit of `bitmap`, in increasing tuple order (and therefore in
  /// physical page order).
  template <typename Fn>
  Status FetchBitmap(const Bitmap& bitmap, Fn&& fn) const;

  /// Persists the tuple count to the meta page.
  Status Sync();

  uint64_t num_tuples() const { return num_tuples_; }
  uint32_t record_size() const { return record_size_; }
  uint32_t tuples_per_page() const { return tuples_per_page_; }
  PageId meta_page() const { return meta_page_; }

  /// Pages holding tuple data (excludes meta/extent-directory pages).
  uint64_t used_data_pages() const {
    return num_tuples_ == 0
               ? 0
               : (num_tuples_ + tuples_per_page_ - 1) / tuples_per_page_;
  }

  /// Total pages owned, including meta, directory and allocated-but-unused
  /// extent tails — the on-disk footprint reported by the storage benches.
  uint64_t total_pages() const;

  /// Underlying extent allocator (for dbverify's extent cross-checks).
  const ExtentAllocator& extent_allocator() const { return extents_; }

 private:
  FactFile(BufferPool* pool, PageId meta_page, uint32_t record_size,
           uint64_t num_tuples, ExtentAllocator extents)
      : pool_(pool),
        meta_page_(meta_page),
        record_size_(record_size),
        tuples_per_page_(
            static_cast<uint32_t>(pool->page_size() / record_size)),
        num_tuples_(num_tuples),
        extents_(std::move(extents)) {}

  BufferPool* pool_ = nullptr;
  PageId meta_page_ = kInvalidPageId;
  uint32_t record_size_ = 0;
  uint32_t tuples_per_page_ = 0;
  uint64_t num_tuples_ = 0;
  ExtentAllocator extents_{nullptr, nullptr};
};

template <typename Fn>
Status FactFile::ScanAll(Fn&& fn) const {
  uint64_t tuple = 0;
  while (tuple < num_tuples_) {
    const uint64_t logical_page = tuple / tuples_per_page_;
    PARADISE_ASSIGN_OR_RETURN(PageId pid,
                              extents_.LogicalToPhysical(logical_page));
    PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(pid));
    const char* base = g.data();
    const uint64_t page_first = logical_page * tuples_per_page_;
    const uint64_t page_last =
        std::min<uint64_t>(page_first + tuples_per_page_, num_tuples_);
    for (uint64_t t = tuple; t < page_last; ++t) {
      PARADISE_RETURN_IF_ERROR(
          fn(t, base + (t - page_first) * record_size_));
    }
    tuple = page_last;
  }
  return Status::OK();
}

template <typename Fn>
Status FactFile::FetchBitmap(const Bitmap& bitmap, Fn&& fn) const {
  if (bitmap.num_bits() != num_tuples_) {
    return Status::InvalidArgument(
        "bitmap covers " + std::to_string(bitmap.num_bits()) +
        " tuples, fact file has " + std::to_string(num_tuples_));
  }
  uint64_t t = bitmap.FindNextSet(0);
  while (t < num_tuples_) {
    const uint64_t logical_page = t / tuples_per_page_;
    PARADISE_ASSIGN_OR_RETURN(PageId pid,
                              extents_.LogicalToPhysical(logical_page));
    PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(pid));
    const char* base = g.data();
    const uint64_t page_first = logical_page * tuples_per_page_;
    const uint64_t page_end = page_first + tuples_per_page_;
    // Consume every set bit that falls on this page under one pin.
    while (t < num_tuples_ && t < page_end) {
      PARADISE_RETURN_IF_ERROR(fn(t, base + (t - page_first) * record_size_));
      t = bitmap.FindNextSet(t + 1);
    }
  }
  return Status::OK();
}

}  // namespace paradise
