// B-tree join-index selection — the "standard B-tree indexing" baseline of
// paper §4.4, which their tests found dominated by bitmap indexing across
// the board. One B-tree per selectable dimension attribute maps attribute
// values to fact tuple numbers; selection retrieves the tuple-id lists for
// the selected values, intersects them across attributes and dimensions,
// and fetches the survivors through the fact file.
#pragma once

#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "index/btree.h"
#include "query/query.h"
#include "query/result.h"
#include "relational/dimension_table.h"
#include "relational/fact_file.h"
#include "relational/schema.h"
#include "storage/buffer_pool.h"

namespace paradise {

struct BTreeSelectParams {
  const FactFile* fact = nullptr;
  const Schema* fact_schema = nullptr;
  std::vector<const DimensionTable*> dims;
  /// join_index_roots[dim][col]: root page of the value → tuple-number
  /// B-tree, or kInvalidPageId where none was built. Every selected
  /// attribute must have one.
  const std::vector<std::vector<PageId>>* join_index_roots = nullptr;
  BufferPool* pool = nullptr;
  const query::ConsolidationQuery* query = nullptr;
  PhaseTimer* timer = nullptr;

  /// Output: qualifying tuples after all intersections.
  uint64_t* result_tuples = nullptr;
};

/// Runs the B-tree join-index plan. Requires at least one selection;
/// semantics match the other consolidation operators.
Result<query::GroupedResult> BTreeSelectConsolidate(
    const BTreeSelectParams& params);

}  // namespace paradise
