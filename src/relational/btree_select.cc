#include "relational/btree_select.h"

#include <algorithm>
#include <unordered_map>

#include "relational/star_join.h"

namespace paradise {

namespace {

/// Sorted, distinct union of tuple-number lists for one selection's values.
Status SelectionTupleList(BufferPool* pool, PageId root,
                          const query::Selection& selection,
                          std::vector<uint64_t>* out) {
  PARADISE_ASSIGN_OR_RETURN(BTree tree, BTree::Open(pool, root));
  std::vector<int64_t> raw;
  for (const query::Literal& lit : selection.values) {
    PARADISE_RETURN_IF_ERROR(
        tree.GetValues(query::NormalizeLiteral(lit), &raw));
  }
  out->assign(raw.begin(), raw.end());
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return Status::OK();
}

std::vector<uint64_t> Intersect(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

Result<query::GroupedResult> BTreeSelectConsolidate(
    const BTreeSelectParams& params) {
  const query::ConsolidationQuery& q = *params.query;
  const size_t n = params.dims.size();
  if (q.dims.size() != n) {
    return Status::InvalidArgument("query/dimension count mismatch");
  }
  if (!q.HasSelection()) {
    return Status::InvalidArgument(
        "B-tree selection plan requires at least one selection");
  }
  const size_t measure_col = n + q.measure;
  if (measure_col >= params.fact_schema->num_columns()) {
    return Status::InvalidArgument("measure index out of range");
  }

  // Phase 1: per selection, probe the join B-tree and intersect the sorted
  // tuple-number lists.
  std::vector<uint64_t> qualifying;
  bool first = true;
  {
    ScopedPhase phase(params.timer, "index-lookup");
    for (size_t d = 0; d < n; ++d) {
      for (const query::Selection& s : q.dims[d].selections) {
        const auto& per_dim = (*params.join_index_roots)[d];
        if (s.attr_col >= per_dim.size() ||
            per_dim[s.attr_col] == kInvalidPageId) {
          return Status::InvalidArgument(
              "no B-tree join index on dimension " + params.dims[d]->name() +
              " column " + std::to_string(s.attr_col));
        }
        std::vector<uint64_t> list;
        PARADISE_RETURN_IF_ERROR(
            SelectionTupleList(params.pool, per_dim[s.attr_col], s, &list));
        if (first) {
          qualifying = std::move(list);
          first = false;
        } else {
          qualifying = Intersect(qualifying, list);
        }
        if (qualifying.empty()) break;
      }
    }
  }
  if (params.result_tuples != nullptr) {
    *params.result_tuples = qualifying.size();
  }

  // Phase 2: group-by probe tables for the grouped dimensions.
  std::vector<std::unordered_map<int32_t, int32_t>> group_tables(n);
  std::vector<std::string> group_columns;
  {
    ScopedPhase phase(params.timer, "build");
    for (size_t i = 0; i < n; ++i) {
      if (!q.dims[i].group_by_col.has_value()) continue;
      const DimensionTable& dim = *params.dims[i];
      const size_t col = *q.dims[i].group_by_col;
      auto& table = group_tables[i];
      table.reserve(dim.num_rows());
      for (uint32_t row = 0; row < dim.num_rows(); ++row) {
        PARADISE_ASSIGN_OR_RETURN(int32_t code, dim.RowAttrCode(row, col));
        table.emplace(dim.rows()[row].GetInt32(0), code);
      }
      group_columns.push_back(dim.name() + "." +
                              dim.schema().column(col).name);
    }
  }

  // Phase 3: fetch the qualifying tuples (ascending => page locality) and
  // aggregate.
  std::unordered_map<std::vector<int32_t>, query::AggState, GroupVectorHash>
      groups;
  {
    ScopedPhase phase(params.timer, "fetch+aggregate");
    const Schema& fs = *params.fact_schema;
    std::vector<char> record(fs.record_size());
    for (uint64_t tuple : qualifying) {
      PARADISE_RETURN_IF_ERROR(params.fact->Get(tuple, record.data()));
      TupleRef t(&fs, record.data());
      std::vector<int32_t> group;
      group.reserve(group_columns.size());
      for (size_t i = 0; i < n; ++i) {
        if (!q.dims[i].group_by_col.has_value()) continue;
        auto it = group_tables[i].find(t.GetInt32(i));
        if (it == group_tables[i].end()) {
          return Status::Corruption("fact tuple references unknown key " +
                                    std::to_string(t.GetInt32(i)));
        }
        group.push_back(it->second);
      }
      groups[std::move(group)].Add(t.GetInt64(measure_col));
    }
  }

  query::GroupedResult result(std::move(group_columns));
  for (auto& [group, agg] : groups) {
    result.Add(query::ResultRow{group, agg});
  }
  result.SortCanonical();
  return result;
}

}  // namespace paradise
