// DimensionTable: a star-schema dimension stored in a heap file, plus the
// in-memory caches every algorithm in the paper leans on (dimension tables
// "fit in memory", §4.3): the rows, a key → row-position map, and one
// dictionary per non-key attribute assigning dense codes to distinct values
// in first-appearance order — the paper's "m-th distinct element of
// attribute A" enumeration (§3.4), shared by both query engines so their
// group-by outputs are directly comparable.
//
// Column 0 is always the int32 dimension key. The row position of a key in
// table order doubles as the dimension's base array index in the OLAP
// Array ADT.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/heap_file.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace paradise {

/// Dense-code dictionary for one attribute. Values are normalized to int64
/// (ints as-is, strings via StringPrefixKey).
struct AttributeDictionary {
  std::unordered_map<int64_t, int32_t> value_to_code;
  std::vector<int64_t> code_to_value;
  std::vector<std::string> code_to_display;  // original text form

  int32_t cardinality() const {
    return static_cast<int32_t>(code_to_value.size());
  }
};

class DimensionTable {
 public:
  DimensionTable() = default;

  /// Creates an empty dimension table. The schema's column 0 must be an
  /// int32 key.
  static Result<DimensionTable> Create(BufferPool* pool, std::string name,
                                       Schema schema);

  /// Opens an existing table and rebuilds the in-memory caches by scanning.
  static Result<DimensionTable> Open(BufferPool* pool, std::string name,
                                     Schema schema, PageId first_page);

  /// Appends a row and updates the caches. Duplicate keys are rejected.
  Status Append(const Tuple& row);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return *schema_; }
  PageId first_page() const { return storage_.first_page(); }
  uint32_t num_rows() const { return static_cast<uint32_t>(rows_.size()); }

  /// All rows in table order (the cache; cheap to call).
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Row position of a dimension key, or NotFound.
  Result<uint32_t> RowOfKey(int32_t key) const;

  /// Dictionary for attribute column `col` (1-based data columns; col 0 is
  /// the key and has no dictionary).
  Result<const AttributeDictionary*> Dictionary(size_t col) const;

  /// Dense code of row `row`'s value in attribute column `col`.
  Result<int32_t> RowAttrCode(uint32_t row, size_t col) const;

  /// Dense code of a normalized attribute value, or NotFound if the value
  /// never occurs.
  Result<int32_t> ValueCode(size_t col, int64_t normalized_value) const;

  /// Normalizes a row's attribute value to the dictionary's int64 key form.
  Result<int64_t> NormalizedValue(const TupleRef& row, size_t col) const;

  /// The level map for attribute `col`: base index (row position) → dense
  /// attribute code. This is exactly one column of the paper's IndexToIndex
  /// array (§3.4).
  Result<std::vector<int32_t>> LevelMap(size_t col) const;

 private:
  DimensionTable(BufferPool* pool, std::string name, Schema schema,
                 HeapFile storage)
      : pool_(pool),
        name_(std::move(name)),
        // Heap-allocated so cached Tuples can point at it across moves of
        // the DimensionTable itself.
        schema_(std::make_shared<const Schema>(std::move(schema))),
        storage_(std::move(storage)) {
    dictionaries_.resize(schema_->num_columns());
    attr_codes_.resize(schema_->num_columns());
  }

  /// Adds one row's worth of cache state (key map, dictionaries, codes).
  Status IndexRow(const Tuple& row);

  BufferPool* pool_ = nullptr;
  std::string name_;
  std::shared_ptr<const Schema> schema_;
  HeapFile storage_;
  std::vector<Tuple> rows_;
  std::unordered_map<int32_t, uint32_t> key_to_row_;
  // Per column: dictionary (cols >= 1 only) and per-row codes.
  std::vector<AttributeDictionary> dictionaries_;
  std::vector<std::vector<int32_t>> attr_codes_;
};

}  // namespace paradise
