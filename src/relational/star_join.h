// StarJoinConsolidation (paper §4.3): one in-memory hash table per joined
// dimension (key → group code, plus the selection verdict) and one
// aggregation hash table; a single scan of the fact file probes the
// dimension tables and aggregates value-based — the relational algorithm the
// OLAP Array consolidation is compared against.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "query/query.h"
#include "query/result.h"
#include "relational/dimension_table.h"
#include "relational/fact_file.h"
#include "relational/schema.h"

namespace paradise {

/// Hash functor for dense group-code vectors (FNV-1a over the codes).
struct GroupVectorHash {
  size_t operator()(const std::vector<int32_t>& v) const {
    uint64_t h = 1469598103934665603ULL;
    for (int32_t c : v) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(c));
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

struct StarJoinParams {
  const FactFile* fact = nullptr;
  const Schema* fact_schema = nullptr;          // n int32 keys + int64 measure
  std::vector<const DimensionTable*> dims;      // in fact-column order
  const query::ConsolidationQuery* query = nullptr;
  PhaseTimer* timer = nullptr;                  // optional phase breakdown
};

/// Runs the star-join consolidation. Selections are honored by filtering in
/// the per-dimension hash tables (the plain-relational selection baseline;
/// the bitmap algorithm in bitmap_select.h is the paper's optimized one).
Result<query::GroupedResult> StarJoinConsolidate(const StarJoinParams& params);

namespace star_join_internal {

/// Per-dimension probe table entry: whether the key passes this dimension's
/// selections and, if the dimension is grouped, its group code.
struct DimProbe {
  bool passes = true;
  int32_t group_code = 0;
};

/// Builds the key → DimProbe table for one dimension under `dq`.
Result<std::unordered_map<int32_t, DimProbe>> BuildDimTable(
    const DimensionTable& dim, const query::DimensionQuery& dq);

}  // namespace star_join_internal
}  // namespace paradise
