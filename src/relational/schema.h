// Fixed-length record schemas for the relational substrate. OLAP fact and
// dimension tuples are fixed length (paper §4.4 relies on this to build the
// fact file), so columns are int32, int64, or 16-byte padded strings.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace paradise {

enum class ColumnType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kString16 = 2,  // zero-padded, at most 16 bytes
};

size_t ColumnTypeSize(ColumnType type);
std::string_view ColumnTypeToString(ColumnType type);

struct Column {
  std::string name;
  ColumnType type;
};

/// An ordered list of columns with precomputed byte offsets into the
/// fixed-length record.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  size_t offset(size_t i) const { return offsets_[i]; }

  /// Total record size in bytes.
  size_t record_size() const { return record_size_; }

  /// Index of the column named `name`, or NotFound.
  Result<size_t> ColumnIndex(std::string_view name) const;

  /// Serialized form for persistence in table metadata.
  std::string Serialize() const;
  static Result<Schema> Deserialize(std::string_view data);

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
  std::vector<size_t> offsets_;
  size_t record_size_ = 0;
};

}  // namespace paradise
