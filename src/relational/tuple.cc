#include "relational/tuple.h"

#include <cassert>
#include <cstring>

#include "common/coding.h"

namespace paradise {

int32_t TupleRef::GetInt32(size_t col) const {
  assert(schema_->column(col).type == ColumnType::kInt32);
  return static_cast<int32_t>(DecodeFixed32(data_ + schema_->offset(col)));
}

int64_t TupleRef::GetInt64(size_t col) const {
  assert(schema_->column(col).type == ColumnType::kInt64);
  return static_cast<int64_t>(DecodeFixed64(data_ + schema_->offset(col)));
}

std::string_view TupleRef::GetString(size_t col) const {
  assert(schema_->column(col).type == ColumnType::kString16);
  const char* p = data_ + schema_->offset(col);
  size_t len = 16;
  while (len > 0 && p[len - 1] == '\0') --len;
  return {p, len};
}

void Tuple::SetInt32(size_t col, int32_t value) {
  assert(schema_->column(col).type == ColumnType::kInt32);
  EncodeFixed32(bytes_.data() + schema_->offset(col),
                static_cast<uint32_t>(value));
}

void Tuple::SetInt64(size_t col, int64_t value) {
  assert(schema_->column(col).type == ColumnType::kInt64);
  EncodeFixed64(bytes_.data() + schema_->offset(col),
                static_cast<uint64_t>(value));
}

Status Tuple::SetString(size_t col, std::string_view value) {
  assert(schema_->column(col).type == ColumnType::kString16);
  if (value.size() > 16) {
    return Status::InvalidArgument("string too long for string16 column: '" +
                                   std::string(value) + "'");
  }
  char* p = bytes_.data() + schema_->offset(col);
  std::memset(p, 0, 16);
  std::memcpy(p, value.data(), value.size());
  return Status::OK();
}

}  // namespace paradise
