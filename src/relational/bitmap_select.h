// Bitmap-index consolidation with selection (paper §4.5): fetch the bitmaps
// of the selected values per dimension, AND them into a result bitmap, then
// fetch exactly the qualifying tuples through the fact file and aggregate.
#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "index/bitmap_index.h"
#include "query/query.h"
#include "query/result.h"
#include "relational/dimension_table.h"
#include "relational/fact_file.h"
#include "relational/schema.h"

namespace paradise {

struct BitmapSelectParams {
  const FactFile* fact = nullptr;
  const Schema* fact_schema = nullptr;
  std::vector<const DimensionTable*> dims;
  /// bitmap_indexes[dim][attr_col]: join bitmap index on that attribute, or
  /// null if none was built. Every selected attribute must have one.
  const std::vector<std::vector<std::shared_ptr<BitmapJoinIndex>>>*
      bitmap_indexes = nullptr;
  const query::ConsolidationQuery* query = nullptr;
  PhaseTimer* timer = nullptr;

  /// Output: number of set bits in the final ANDed bitmap (the paper quotes
  /// this, e.g. "only 80 non-zero bits at selectivity 0.0001").
  uint64_t* result_bits = nullptr;
};

/// Runs the bitmap-and-fact-file algorithm. Requires at least one selection;
/// group-by and aggregation match StarJoinConsolidate's semantics exactly.
Result<query::GroupedResult> BitmapSelectConsolidate(
    const BitmapSelectParams& params);

}  // namespace paradise
