// Tuple: one fixed-length record under a Schema, plus non-owning accessors
// for reading fields straight out of a page during scans (TupleRef).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "relational/schema.h"

namespace paradise {

/// Read-only view over a record laid out per `schema`. The underlying bytes
/// must outlive the ref (typically a pinned page or a Tuple).
class TupleRef {
 public:
  TupleRef(const Schema* schema, const char* data)
      : schema_(schema), data_(data) {}

  int32_t GetInt32(size_t col) const;
  int64_t GetInt64(size_t col) const;

  /// String value with trailing NULs stripped.
  std::string_view GetString(size_t col) const;

  const Schema& schema() const { return *schema_; }
  const char* raw() const { return data_; }

 private:
  const Schema* schema_;
  const char* data_;
};

/// Owning record. Fields default to zero.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(const Schema* schema)
      : schema_(schema), bytes_(schema->record_size(), '\0') {}

  /// Adopts raw record bytes (must be schema->record_size() long).
  Tuple(const Schema* schema, std::string bytes)
      : schema_(schema), bytes_(std::move(bytes)) {}

  void SetInt32(size_t col, int32_t value);
  void SetInt64(size_t col, int64_t value);

  /// Stores up to 16 bytes; longer strings are rejected.
  Status SetString(size_t col, std::string_view value);

  int32_t GetInt32(size_t col) const { return ref().GetInt32(col); }
  int64_t GetInt64(size_t col) const { return ref().GetInt64(col); }
  std::string_view GetString(size_t col) const { return ref().GetString(col); }

  TupleRef ref() const { return TupleRef(schema_, bytes_.data()); }
  const std::string& bytes() const { return bytes_; }
  const Schema& schema() const { return *schema_; }

 private:
  const Schema* schema_ = nullptr;
  std::string bytes_;
};

}  // namespace paradise
