#include "relational/star_join.h"

#include <unordered_map>
#include <unordered_set>

namespace paradise {

namespace star_join_internal {

Result<std::unordered_map<int32_t, DimProbe>> BuildDimTable(
    const DimensionTable& dim, const query::DimensionQuery& dq) {
  // Normalize the selected values per attribute into code sets once.
  std::vector<std::pair<size_t, std::unordered_set<int32_t>>> selections;
  for (const query::Selection& s : dq.selections) {
    std::unordered_set<int32_t> codes;
    for (const query::Literal& lit : s.values) {
      Result<int32_t> code =
          dim.ValueCode(s.attr_col, query::NormalizeLiteral(lit));
      if (code.ok()) {
        codes.insert(*code);
      }  // A value that never occurs simply selects nothing.
    }
    selections.emplace_back(s.attr_col, std::move(codes));
  }

  std::unordered_map<int32_t, DimProbe> table;
  table.reserve(dim.num_rows());
  for (uint32_t row = 0; row < dim.num_rows(); ++row) {
    DimProbe probe;
    for (const auto& [col, codes] : selections) {
      PARADISE_ASSIGN_OR_RETURN(int32_t c, dim.RowAttrCode(row, col));
      if (!codes.contains(c)) {
        probe.passes = false;
        break;
      }
    }
    if (dq.group_by_col.has_value()) {
      PARADISE_ASSIGN_OR_RETURN(probe.group_code,
                                dim.RowAttrCode(row, *dq.group_by_col));
    }
    table.emplace(dim.rows()[row].GetInt32(0), probe);
  }
  return table;
}

}  // namespace star_join_internal

Result<query::GroupedResult> StarJoinConsolidate(
    const StarJoinParams& params) {
  using star_join_internal::DimProbe;
  const query::ConsolidationQuery& q = *params.query;
  const size_t n = params.dims.size();
  if (q.dims.size() != n) {
    return Status::InvalidArgument("query/dimension count mismatch");
  }
  if (params.fact_schema->num_columns() <= n) {
    return Status::InvalidArgument(
        "fact schema must be n keys + p measures");
  }
  const size_t measure_col = n + q.measure;
  if (measure_col >= params.fact_schema->num_columns()) {
    return Status::InvalidArgument("measure index out of range");
  }

  // Phase 1: build one hash table per dimension that is joined (grouped or
  // selected); purely-collapsed unselected dimensions need no join at all.
  std::vector<std::unordered_map<int32_t, DimProbe>> tables(n);
  std::vector<bool> joined(n, false);
  std::vector<std::string> group_columns;
  {
    ScopedPhase phase(params.timer, "build");
    for (size_t i = 0; i < n; ++i) {
      const query::DimensionQuery& dq = q.dims[i];
      if (dq.group_by_col.has_value() || !dq.selections.empty()) {
        joined[i] = true;
        PARADISE_ASSIGN_OR_RETURN(
            tables[i],
            star_join_internal::BuildDimTable(*params.dims[i], dq));
      }
      if (dq.group_by_col.has_value()) {
        group_columns.push_back(
            params.dims[i]->name() + "." +
            params.dims[i]->schema().column(*dq.group_by_col).name);
      }
    }
  }

  // Phase 2: scan the fact file once; probe, filter, and aggregate
  // value-based into the aggregation hash table.
  std::unordered_map<std::vector<int32_t>, query::AggState, GroupVectorHash>
      groups;
  {
    ScopedPhase phase(params.timer, "scan+aggregate");
    std::vector<int32_t> key(n);
    const Schema& fs = *params.fact_schema;
    PARADISE_RETURN_IF_ERROR(params.fact->ScanAll(
        [&](uint64_t /*tuple*/, const char* record) -> Status {
          TupleRef t(&fs, record);
          std::vector<int32_t> group;
          group.reserve(group_columns.size());
          for (size_t i = 0; i < n; ++i) {
            if (!joined[i]) continue;
            const int32_t fk = t.GetInt32(i);
            auto it = tables[i].find(fk);
            if (it == tables[i].end()) {
              return Status::Corruption(
                  "fact tuple references unknown key " + std::to_string(fk) +
                  " of dimension " + params.dims[i]->name());
            }
            if (!it->second.passes) return Status::OK();  // filtered out
            if (q.dims[i].group_by_col.has_value()) {
              group.push_back(it->second.group_code);
            }
          }
          groups[std::move(group)].Add(t.GetInt64(measure_col));
          return Status::OK();
        }));
  }

  query::GroupedResult result(std::move(group_columns));
  for (auto& [group, agg] : groups) {
    result.Add(query::ResultRow{group, agg});
  }
  result.SortCanonical();
  return result;
}

}  // namespace paradise
