#include "relational/bitmap_select.h"

#include <unordered_map>

#include "relational/star_join.h"

namespace paradise {

Result<query::GroupedResult> BitmapSelectConsolidate(
    const BitmapSelectParams& params) {
  const query::ConsolidationQuery& q = *params.query;
  const size_t n = params.dims.size();
  if (q.dims.size() != n) {
    return Status::InvalidArgument("query/dimension count mismatch");
  }
  if (!q.HasSelection()) {
    return Status::InvalidArgument(
        "bitmap algorithm requires at least one selection");
  }
  const size_t measure_col = n + q.measure;
  if (measure_col >= params.fact_schema->num_columns()) {
    return Status::InvalidArgument("measure index out of range");
  }
  const uint64_t num_tuples = params.fact->num_tuples();

  // Phase 1: retrieve and AND the bitmaps (paper's pseudo-code: start from
  // all-ones, AND in each selected dimension's merged bitmap).
  Bitmap result_bitmap = Bitmap::AllOnes(num_tuples);
  {
    ScopedPhase phase(params.timer, "bitmaps");
    for (size_t i = 0; i < n; ++i) {
      for (const query::Selection& s : q.dims[i].selections) {
        const auto& per_dim = (*params.bitmap_indexes)[i];
        if (s.attr_col >= per_dim.size() || per_dim[s.attr_col] == nullptr) {
          return Status::InvalidArgument(
              "no bitmap index on dimension " + params.dims[i]->name() +
              " column " + std::to_string(s.attr_col));
        }
        std::vector<int64_t> values;
        values.reserve(s.values.size());
        for (const query::Literal& lit : s.values) {
          values.push_back(query::NormalizeLiteral(lit));
        }
        // OR the selected values of one attribute, then AND across
        // attributes/dimensions.
        PARADISE_ASSIGN_OR_RETURN(Bitmap b,
                                  per_dim[s.attr_col]->LookupAny(values));
        PARADISE_RETURN_IF_ERROR(result_bitmap.And(b));
      }
    }
  }
  if (params.result_bits != nullptr) {
    *params.result_bits = result_bitmap.CountOnes();
  }

  // Phase 2: build group-by probe tables for the grouped dimensions only
  // (selection is already fully decided by the bitmap).
  std::vector<std::unordered_map<int32_t, int32_t>> group_tables(n);
  std::vector<std::string> group_columns;
  {
    ScopedPhase phase(params.timer, "build");
    for (size_t i = 0; i < n; ++i) {
      if (!q.dims[i].group_by_col.has_value()) continue;
      const DimensionTable& dim = *params.dims[i];
      const size_t col = *q.dims[i].group_by_col;
      auto& table = group_tables[i];
      table.reserve(dim.num_rows());
      for (uint32_t row = 0; row < dim.num_rows(); ++row) {
        PARADISE_ASSIGN_OR_RETURN(int32_t code, dim.RowAttrCode(row, col));
        table.emplace(dim.rows()[row].GetInt32(0), code);
      }
      group_columns.push_back(dim.name() + "." + dim.schema().column(col).name);
    }
  }

  // Phase 3: fetch qualifying tuples through the fact file and aggregate.
  std::unordered_map<std::vector<int32_t>, query::AggState, GroupVectorHash>
      groups;
  {
    ScopedPhase phase(params.timer, "fetch+aggregate");
    const Schema& fs = *params.fact_schema;
    PARADISE_RETURN_IF_ERROR(params.fact->FetchBitmap(
        result_bitmap, [&](uint64_t /*tuple*/, const char* record) -> Status {
          TupleRef t(&fs, record);
          std::vector<int32_t> group;
          group.reserve(group_columns.size());
          for (size_t i = 0; i < n; ++i) {
            if (!q.dims[i].group_by_col.has_value()) continue;
            auto it = group_tables[i].find(t.GetInt32(i));
            if (it == group_tables[i].end()) {
              return Status::Corruption("fact tuple references unknown key " +
                                        std::to_string(t.GetInt32(i)));
            }
            group.push_back(it->second);
          }
          groups[std::move(group)].Add(t.GetInt64(measure_col));
          return Status::OK();
        }));
  }

  query::GroupedResult result(std::move(group_columns));
  for (auto& [group, agg] : groups) {
    result.Add(query::ResultRow{group, agg});
  }
  result.SortCanonical();
  return result;
}

}  // namespace paradise
