#include "relational/heap_file.h"

#include <cstring>

#include "common/coding.h"

namespace paradise {

namespace {
// Slotted page layout:
//   [0,4)   magic "HEAP"
//   [4,12)  next page id
//   [12,14) slot count
//   [14,16) free-space start offset (grows up from the header)
//   slots grow down from the end of the page: per slot
//   (fixed16 record offset, fixed16 record length)
constexpr char kMagic[4] = {'H', 'E', 'A', 'P'};
constexpr size_t kMagicOffset = 0;
constexpr size_t kNextOffset = 4;
constexpr size_t kSlotCountOffset = 12;
constexpr size_t kFreeStartOffset = 14;
constexpr size_t kHeaderBytes = 16;
constexpr size_t kSlotBytes = 4;

uint16_t SlotCount(const char* p) { return DecodeFixed16(p + kSlotCountOffset); }
uint16_t FreeStart(const char* p) { return DecodeFixed16(p + kFreeStartOffset); }
PageId NextPage(const char* p) { return DecodeFixed64(p + kNextOffset); }

void SlotAt(const char* p, size_t page_size, uint16_t slot, uint16_t* offset,
            uint16_t* length) {
  const char* s = p + page_size - (slot + 1) * kSlotBytes;
  *offset = DecodeFixed16(s);
  *length = DecodeFixed16(s + 2);
}

void SetSlotAt(char* p, size_t page_size, uint16_t slot, uint16_t offset,
               uint16_t length) {
  char* s = p + page_size - (slot + 1) * kSlotBytes;
  EncodeFixed16(s, offset);
  EncodeFixed16(s + 2, length);
}

void InitPage(char* p, size_t page_size) {
  std::memset(p, 0, page_size);
  std::memcpy(p + kMagicOffset, kMagic, sizeof(kMagic));
  EncodeFixed64(p + kNextOffset, kInvalidPageId);
  EncodeFixed16(p + kSlotCountOffset, 0);
  EncodeFixed16(p + kFreeStartOffset, kHeaderBytes);
}

Status ValidatePage(const char* p, PageId id) {
  if (std::memcmp(p + kMagicOffset, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("page " + std::to_string(id) +
                              " is not a heap page");
  }
  return Status::OK();
}

size_t FreeBytes(const char* p, size_t page_size) {
  const size_t slots_end = page_size - SlotCount(p) * kSlotBytes;
  return slots_end - FreeStart(p);
}
}  // namespace

Result<HeapFile> HeapFile::Create(BufferPool* pool) {
  PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool->NewPage());
  InitPage(g.mutable_data(), pool->page_size());
  return HeapFile(pool, g.page_id(), g.page_id());
}

Result<HeapFile> HeapFile::Open(BufferPool* pool, PageId first_page) {
  // Find the last page of the chain so appends can resume.
  PageId page = first_page;
  PageId last = first_page;
  while (page != kInvalidPageId) {
    PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool->FetchPage(page));
    PARADISE_RETURN_IF_ERROR(ValidatePage(g.data(), page));
    last = page;
    page = NextPage(g.data());
  }
  return HeapFile(pool, first_page, last);
}

Result<RecordId> HeapFile::Append(std::string_view record) {
  const size_t page_size = pool_->page_size();
  if (record.size() + kSlotBytes > page_size - kHeaderBytes) {
    return Status::InvalidArgument("record of " +
                                   std::to_string(record.size()) +
                                   " bytes does not fit in one page");
  }
  PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(last_page_));
  if (FreeBytes(g.data(), page_size) < record.size() + kSlotBytes) {
    // Chain a fresh page.
    PARADISE_ASSIGN_OR_RETURN(PageGuard fresh, pool_->NewPage());
    InitPage(fresh.mutable_data(), page_size);
    EncodeFixed64(g.mutable_data() + kNextOffset, fresh.page_id());
    last_page_ = fresh.page_id();
    g = std::move(fresh);
  }
  char* p = g.mutable_data();
  const uint16_t slot = SlotCount(p);
  const uint16_t offset = FreeStart(p);
  std::memcpy(p + offset, record.data(), record.size());
  SetSlotAt(p, page_size, slot, offset,
            static_cast<uint16_t>(record.size()));
  EncodeFixed16(p + kSlotCountOffset, static_cast<uint16_t>(slot + 1));
  EncodeFixed16(p + kFreeStartOffset,
                static_cast<uint16_t>(offset + record.size()));
  return RecordId{g.page_id(), slot};
}

Status HeapFile::Get(RecordId rid, std::string* out) const {
  PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(rid.page));
  PARADISE_RETURN_IF_ERROR(ValidatePage(g.data(), rid.page));
  const char* p = g.data();
  if (rid.slot >= SlotCount(p)) {
    return Status::NotFound("slot " + std::to_string(rid.slot) +
                            " out of range on page " +
                            std::to_string(rid.page));
  }
  uint16_t offset = 0, length = 0;
  SlotAt(p, pool_->page_size(), rid.slot, &offset, &length);
  out->assign(p + offset, length);
  return Status::OK();
}

Result<HeapFileIterator> HeapFile::Scan() const {
  HeapFileIterator it(pool_, first_page_);
  PARADISE_RETURN_IF_ERROR(it.LoadCurrent());
  return it;
}

Result<uint64_t> HeapFile::CountRecords() const {
  uint64_t n = 0;
  PageId page = first_page_;
  while (page != kInvalidPageId) {
    PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(page));
    n += SlotCount(g.data());
    page = NextPage(g.data());
  }
  return n;
}

Result<uint64_t> HeapFile::CountPages() const {
  uint64_t n = 0;
  PageId page = first_page_;
  while (page != kInvalidPageId) {
    PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(page));
    ++n;
    page = NextPage(g.data());
  }
  return n;
}

Status HeapFileIterator::LoadCurrent() {
  for (;;) {
    if (page_ == kInvalidPageId) {
      valid_ = false;
      return Status::OK();
    }
    PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(page_));
    PARADISE_RETURN_IF_ERROR(ValidatePage(g.data(), page_));
    const char* p = g.data();
    if (slot_ < SlotCount(p)) {
      uint16_t offset = 0, length = 0;
      SlotAt(p, pool_->page_size(), slot_, &offset, &length);
      record_.assign(p + offset, length);
      valid_ = true;
      return Status::OK();
    }
    page_ = NextPage(p);
    slot_ = 0;
  }
}

Status HeapFileIterator::Next() {
  if (!valid_) return Status::InvalidArgument("Next() on invalid iterator");
  ++slot_;
  return LoadCurrent();
}

}  // namespace paradise
