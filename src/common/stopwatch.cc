#include "common/stopwatch.h"

// Header-only in practice; this TU anchors the component in the build so a
// future out-of-line addition does not touch the build files.
