// Wall-clock timing helpers for the benchmark harness and the per-phase
// breakdowns the paper reports (§5.5.1 separates scan and aggregation cost).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace paradise {

/// Simple monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase timings (e.g. "scan", "aggregate") so an
/// algorithm can report where its time went.
class PhaseTimer {
 public:
  /// Adds `micros` to the named phase.
  void Add(const std::string& phase, int64_t micros) {
    phases_[phase] += micros;
  }

  /// Total microseconds recorded for `phase` (0 if never recorded).
  int64_t Micros(const std::string& phase) const {
    auto it = phases_.find(phase);
    return it == phases_.end() ? 0 : it->second;
  }

  double Seconds(const std::string& phase) const {
    return static_cast<double>(Micros(phase)) * 1e-6;
  }

  const std::map<std::string, int64_t>& phases() const { return phases_; }

  void Clear() { phases_.clear(); }

 private:
  std::map<std::string, int64_t> phases_;
};

/// RAII guard adding the scope's duration to a PhaseTimer on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer* timer, std::string phase)
      : timer_(timer), phase_(std::move(phase)) {}
  ~ScopedPhase() {
    if (timer_ != nullptr) timer_->Add(phase_, watch_.ElapsedMicros());
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer* timer_;
  std::string phase_;
  Stopwatch watch_;
};

}  // namespace paradise
