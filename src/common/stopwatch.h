// Wall-clock timing helpers for the benchmark harness and the per-phase
// breakdowns the paper reports (§5.5.1 separates scan and aggregation cost).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/trace.h"

namespace paradise {

/// Simple monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase timings (e.g. "scan", "aggregate") so an
/// algorithm can report where its time went. Accumulation is thread-safe:
/// parallel consolidation workers add their per-phase time into the one
/// timer carried by ExecutionStats, so phase totals are CPU-seconds summed
/// across workers (they can exceed wall-clock time at high thread counts).
/// Copyable despite the internal mutex — copies snapshot the totals.
///
/// A timer may carry an ExecutionTrace sink: while one is attached, every
/// ScopedPhase additionally opens/closes a trace span, which is how all the
/// engines gained span-level tracing without signature changes. The sink
/// pointer is borrowed (the engine owns the trace), is deliberately NOT
/// copied by the copy operations (a snapshot copy must not keep feeding
/// spans), and spans are only opened from the coordinator thread — worker
/// threads get a timer with no sink (see RunWorkers call sites).
class PhaseTimer {
 public:
  PhaseTimer() = default;
  PhaseTimer(const PhaseTimer& other) : phases_(other.Snapshot()) {}
  PhaseTimer& operator=(const PhaseTimer& other) {
    if (this != &other) {
      std::map<std::string, int64_t> copy = other.Snapshot();
      std::lock_guard<std::mutex> lock(mu_);
      phases_ = std::move(copy);
    }
    return *this;
  }

  /// Adds `micros` to the named phase. Safe from any thread.
  void Add(const std::string& phase, int64_t micros) {
    std::lock_guard<std::mutex> lock(mu_);
    phases_[phase] += micros;
  }

  /// Merges every phase of `other` into this timer.
  void Merge(const PhaseTimer& other) {
    std::map<std::string, int64_t> theirs = other.Snapshot();
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [phase, micros] : theirs) phases_[phase] += micros;
  }

  /// Total microseconds recorded for `phase` (0 if never recorded).
  int64_t Micros(const std::string& phase) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = phases_.find(phase);
    return it == phases_.end() ? 0 : it->second;
  }

  double Seconds(const std::string& phase) const {
    return static_cast<double>(Micros(phase)) * 1e-6;
  }

  /// Consistent copy of all phase totals.
  std::map<std::string, int64_t> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return phases_;
  }

  /// Phase totals by reference — only safe once concurrent Add()ers have
  /// joined (reporting code reads this after the query returns).
  const std::map<std::string, int64_t>& phases() const { return phases_; }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    phases_.clear();
  }

  /// Attaches (or detaches, with nullptr) a trace sink. Not thread-safe
  /// against concurrent ScopedPhase construction — set it before the query
  /// starts and clear it after the coordinator returns.
  void set_trace(ExecutionTrace* trace) { trace_ = trace; }
  ExecutionTrace* trace() const { return trace_; }

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> phases_;
  ExecutionTrace* trace_ = nullptr;  // borrowed; never copied
};

/// RAII guard adding the scope's duration to a PhaseTimer on destruction.
/// When the timer carries a trace sink, the scope is also a trace span.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer* timer, std::string phase)
      : timer_(timer), phase_(std::move(phase)) {
    if (timer_ != nullptr && timer_->trace() != nullptr) {
      span_id_ = timer_->trace()->BeginSpan(phase_);
      has_span_ = true;
    }
  }
  ~ScopedPhase() {
    if (timer_ != nullptr) {
      timer_->Add(phase_, watch_.ElapsedMicros());
      if (has_span_ && timer_->trace() != nullptr) {
        timer_->trace()->EndSpan(span_id_);
      }
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer* timer_;
  std::string phase_;
  Stopwatch watch_;
  uint64_t span_id_ = 0;
  bool has_span_ = false;
};

}  // namespace paradise
