#include "common/random.h"

#include <cassert>

namespace paradise {

namespace {
// SplitMix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  if (span == UINT64_MAX) return static_cast<int64_t>(Next());
  return lo + static_cast<int64_t>(Uniform(span + 1));
}

double Random::NextDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<uint64_t> SampleSortedDistinct(uint64_t population, uint64_t count,
                                           Random* rng) {
  assert(count <= population);
  std::vector<uint64_t> out;
  out.reserve(count);
  uint64_t remaining_needed = count;
  for (uint64_t i = 0; i < population && remaining_needed > 0; ++i) {
    const uint64_t remaining_population = population - i;
    // P(select i) = needed / remaining — yields exactly `count` picks,
    // uniformly over all subsets, emitted in increasing order.
    if (rng->Uniform(remaining_population) < remaining_needed) {
      out.push_back(i);
      --remaining_needed;
    }
  }
  return out;
}

}  // namespace paradise
