#include "common/trace.h"

#include "common/json_writer.h"

namespace paradise {

namespace {

void WriteSpan(JsonWriter& w, const TraceSpan& span, int64_t now_micros) {
  w.BeginObject();
  w.KV("name", span.name);
  w.KV("start_micros", span.start_micros);
  // Open spans report their live duration so a mid-query snapshot is still
  // well-formed JSON with meaningful numbers.
  const int64_t duration =
      span.open() ? now_micros - span.start_micros : span.duration_micros;
  w.KV("duration_micros", duration);
  if (!span.children.empty()) {
    w.Key("children");
    w.BeginArray();
    for (const auto& child : span.children) {
      WriteSpan(w, *child, now_micros);
    }
    w.EndArray();
  }
  w.EndObject();
}

void CopySpan(const TraceSpan& src, TraceSpan* dst, int64_t now_micros) {
  dst->name = src.name;
  dst->start_micros = src.start_micros;
  dst->duration_micros =
      src.open() ? now_micros - src.start_micros : src.duration_micros;
  dst->children.reserve(src.children.size());
  for (const auto& child : src.children) {
    auto copy = std::make_unique<TraceSpan>();
    CopySpan(*child, copy.get(), now_micros);
    dst->children.push_back(std::move(copy));
  }
}

const TraceSpan* FindDfs(const TraceSpan& span, std::string_view name) {
  if (span.name == name) return &span;
  for (const auto& child : span.children) {
    if (const TraceSpan* found = FindDfs(*child, name)) return found;
  }
  return nullptr;
}

}  // namespace

ExecutionTrace::ExecutionTrace(std::string root_name)
    : epoch_(Clock::now()) {
  root_.name = std::move(root_name);
  root_.start_micros = 0;
  open_stack_.push_back(&root_);
  by_id_.push_back(&root_);
}

uint64_t ExecutionTrace::BeginSpan(std::string_view name) {
  const int64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  // After Finish() the stack is empty; re-root late spans under the root so
  // a stray scope cannot crash or dangle.
  TraceSpan* parent = open_stack_.empty() ? &root_ : open_stack_.back();
  auto span = std::make_unique<TraceSpan>();
  span->name = std::string(name);
  span->start_micros = now;
  TraceSpan* raw = span.get();
  parent->children.push_back(std::move(span));
  if (!open_stack_.empty()) open_stack_.push_back(raw);
  by_id_.push_back(raw);
  return by_id_.size() - 1;
}

void ExecutionTrace::EndSpan(uint64_t id) {
  const int64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= by_id_.size()) return;
  TraceSpan* span = by_id_[id];
  if (!span->open()) return;
  // Pop the stack down to (and including) this span, closing any still-open
  // descendants a caller forgot about on the way.
  while (!open_stack_.empty()) {
    TraceSpan* top = open_stack_.back();
    open_stack_.pop_back();
    if (top->open()) top->duration_micros = now - top->start_micros;
    if (top == span) return;
    if (open_stack_.empty()) break;
  }
  // `span` was not on the stack (e.g. created after Finish()); close it
  // directly. The root is never popped by an ordinary EndSpan because the
  // loop above stops once the stack empties.
  if (span->open()) span->duration_micros = now - span->start_micros;
}

void ExecutionTrace::AddCompleteSpan(std::string_view name,
                                     int64_t start_micros,
                                     int64_t duration_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan* parent = open_stack_.empty() ? &root_ : open_stack_.back();
  auto span = std::make_unique<TraceSpan>();
  span->name = std::string(name);
  span->start_micros = start_micros;
  span->duration_micros = duration_micros < 0 ? 0 : duration_micros;
  by_id_.push_back(span.get());
  parent->children.push_back(std::move(span));
}

void ExecutionTrace::Finish() {
  const int64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  while (!open_stack_.empty()) {
    TraceSpan* top = open_stack_.back();
    open_stack_.pop_back();
    if (top->open()) top->duration_micros = now - top->start_micros;
  }
}

int64_t ExecutionTrace::ElapsedMicros() const { return NowMicros(); }

TraceSpan ExecutionTrace::Snapshot() const {
  const int64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan copy;
  CopySpan(root_, &copy, now);
  return copy;
}

std::string ExecutionTrace::ToJson() const {
  const int64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  WriteSpan(w, root_, now);
  return w.Take();
}

bool ExecutionTrace::FindSpan(std::string_view name, TraceSpan* out) const {
  TraceSpan snapshot = Snapshot();
  const TraceSpan* found = FindDfs(snapshot, name);
  if (found == nullptr) return false;
  if (out != nullptr) {
    out->name = found->name;
    out->start_micros = found->start_micros;
    out->duration_micros = found->duration_micros;
    out->children.clear();
    for (const auto& child : found->children) {
      auto copy = std::make_unique<TraceSpan>();
      CopySpan(*child, copy.get(), 0);
      out->children.push_back(std::move(copy));
    }
  }
  return true;
}

}  // namespace paradise
