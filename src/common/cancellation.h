// CancellationToken: the deadline/cancellation spine threaded from the
// serving layer down to the consolidation loops (DESIGN.md choice 13). One
// token accompanies one query: the session arms it with the request's
// deadline (capped by the server-wide default) and a watcher thread flips
// the cancel flag when the client sends a CANCEL frame or disconnects; the
// engines poll it at chunk boundaries, so an abandoned query stops within
// one chunk's work and returns a typed Status — never a torn result or a
// leaked worker (the parallel engines already join every worker on the
// first non-OK status).
//
// Thread contract: set_deadline/SetDeadlineAfterMs are called before the
// token is shared (the deadline is immutable once visible to other
// threads); RequestCancel and all the readers are safe from any thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace paradise {

class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Arms the deadline. Must happen before the token is shared across
  /// threads; the deadline never changes afterwards.
  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void SetDeadlineAfterMs(uint64_t ms) {
    set_deadline(Clock::now() + std::chrono::milliseconds(ms));
  }

  /// Flips the cancel flag. Idempotent; safe from any thread.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  bool expired() const { return has_deadline_ && Clock::now() >= deadline_; }

  /// True once the work should stop for either reason. Cheap enough to call
  /// per chunk: one relaxed load plus (with a deadline) one clock read.
  bool ShouldStop() const { return cancel_requested() || expired(); }

  /// OK while the work may continue; otherwise the typed Status the query
  /// must surface. An explicit cancel wins over a deadline that also
  /// expired — the client asked for exactly this outcome.
  Status Check() const {
    if (cancel_requested()) {
      return Status::Cancelled("query cancelled");
    }
    if (expired()) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

}  // namespace paradise
