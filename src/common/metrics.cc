#include "common/metrics.h"

#include <bit>

#include "common/json_writer.h"

namespace paradise {

void Histogram::Record(uint64_t value) {
  counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::PercentileUpperBound(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the percentile sample, 1-based; walk buckets until reached.
  const uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += bucket_count(i);
    if (seen >= rank) {
      // Clamp to the observed max so a sparse top bucket does not report a
      // bound far beyond any recorded sample.
      const uint64_t upper = BucketUpperBound(i);
      const uint64_t observed_max = max();
      return upper < observed_max ? upper : observed_max;
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

size_t Histogram::BucketIndex(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

uint64_t Histogram::BucketLowerBound(size_t i) {
  if (i <= 1) return 0;
  return uint64_t{1} << (i - 1);
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked singleton: metric handles stay valid through static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

template <typename T>
T* GetOrCreate(std::mutex& mu,
               std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
               std::string_view name) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return it->second.get();
}

template <typename T>
const T* Find(std::mutex& mu,
              const std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
              std::string_view name) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  return it == map.end() ? nullptr : it->second.get();
}

template <typename T>
std::vector<std::string> Names(
    std::mutex& mu,
    const std::map<std::string, std::unique_ptr<T>, std::less<>>& map) {
  std::lock_guard<std::mutex> lock(mu);
  std::vector<std::string> out;
  out.reserve(map.size());
  for (const auto& [name, metric] : map) out.push_back(name);
  return out;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  return GetOrCreate(mu_, counters_, name);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  return GetOrCreate(mu_, gauges_, name);
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return GetOrCreate(mu_, histograms_, name);
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  return Find(mu_, counters_, name);
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  return Find(mu_, gauges_, name);
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  return Find(mu_, histograms_, name);
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  return Names(mu_, counters_);
}

std::vector<std::string> MetricsRegistry::GaugeNames() const {
  return Names(mu_, gauges_);
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  return Names(mu_, histograms_);
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, c] : counters_) w.KV(name, c->value());
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, g] : gauges_) w.KV(name, g->value());
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name);
    w.BeginObject();
    const uint64_t n = h->count();
    w.KV("count", n);
    w.KV("sum", h->sum());
    w.KV("min", n == 0 ? uint64_t{0} : h->min());
    w.KV("max", h->max());
    w.KV("mean", h->Mean());
    w.KV("p50", h->PercentileUpperBound(0.50));
    w.KV("p95", h->PercentileUpperBound(0.95));
    w.KV("p99", h->PercentileUpperBound(0.99));
    w.Key("buckets");
    w.BeginArray();
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t c = h->bucket_count(i);
      if (c == 0) continue;
      w.BeginArray();
      w.Uint(Histogram::BucketLowerBound(i));
      w.Uint(c);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace paradise
