// Status: error-code-plus-message return type used by every fallible API in
// the library. Modeled on the RocksDB/Arrow idiom: no exceptions cross a
// public boundary; callers either propagate (PARADISE_RETURN_IF_ERROR) or
// assert success (PARADISE_CHECK_OK).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace paradise {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kNotSupported,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
};

/// Returns a human-readable name for a status code ("OK", "IOError", ...).
std::string_view StatusCodeToString(StatusCode code);

class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Prepends context to the message of a non-OK status; no-op on OK.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace paradise

// Propagates a non-OK Status out of the current function.
#define PARADISE_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::paradise::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                          \
  } while (0)

// Aborts the process if the expression is not OK. For callers (tests,
// benches, examples) where an error is a programming bug, never for the
// library's own data-dependent failures.
#define PARADISE_CHECK_OK(expr)                                        \
  do {                                                                 \
    ::paradise::Status _st = (expr);                                   \
    if (!_st.ok()) {                                                   \
      ::paradise::internal::CheckOkFailed(__FILE__, __LINE__, _st);    \
    }                                                                  \
  } while (0)

namespace paradise::internal {
[[noreturn]] void CheckOkFailed(const char* file, int line, const Status& s);
}  // namespace paradise::internal
