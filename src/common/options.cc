#include "common/options.h"

#include <cstdlib>

#include "storage/page.h"

namespace paradise {

namespace {
bool IsPowerOfTwo(size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Status StorageOptions::Validate() const {
  if (page_size < 512 || !IsPowerOfTwo(page_size)) {
    return Status::InvalidArgument(
        "page_size must be a power of two >= 512, got " +
        std::to_string(page_size));
  }
  if (buffer_pool_pages < 8) {
    return Status::InvalidArgument("buffer_pool_pages must be >= 8, got " +
                                   std::to_string(buffer_pool_pages));
  }
  if (pages_per_extent == 0) {
    return Status::InvalidArgument("pages_per_extent must be > 0");
  }
  if (format_version < 1 ||
      format_version > page_header::kMaxSupportedFormat) {
    // NotSupported (not InvalidArgument) so tooling can tell a file from a
    // future format apart from a nonsense option value — the dbverify
    // forward-compat tripwire keys on this code.
    return Status::NotSupported(
        "format_version must be between 1 and " +
        std::to_string(page_header::kMaxSupportedFormat) + ", got " +
        std::to_string(format_version));
  }
  if (read_only && allow_overwrite) {
    return Status::InvalidArgument(
        "read_only and allow_overwrite are mutually exclusive");
  }
  if (read_retry_limit > 64) {
    return Status::InvalidArgument("read_retry_limit must be <= 64, got " +
                                   std::to_string(read_retry_limit));
  }
  if (pool_shards == 0) {
    return Status::InvalidArgument("pool_shards must be >= 1");
  }
  if (pool_shards > 256) {
    return Status::InvalidArgument("pool_shards must be <= 256, got " +
                                   std::to_string(pool_shards));
  }
  if (io_pool_threads > 64) {
    return Status::InvalidArgument("io_pool_threads must be <= 64, got " +
                                   std::to_string(io_pool_threads));
  }
  return Status::OK();
}

std::string_view EvictionPolicyToString(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kClock:
      return "clock";
    case EvictionPolicy::kLru:
      return "lru";
  }
  return "unknown";
}

std::string_view ChunkFormatToString(ChunkFormat format) {
  switch (format) {
    case ChunkFormat::kDense:
      return "dense";
    case ChunkFormat::kOffsetCompressed:
      return "offset-compressed";
    case ChunkFormat::kAuto:
      return "auto";
    case ChunkFormat::kLzwDense:
      return "lzw-dense";
    case ChunkFormat::kDiffSequence:
      return "diff-sequence";
    case ChunkFormat::kBitPacked:
      return "bit-packed";
  }
  return "unknown";
}

bool ChunkFormatFromString(std::string_view name, ChunkFormat* out) {
  if (name == "dense") {
    *out = ChunkFormat::kDense;
  } else if (name == "offset" || name == "offset-compressed") {
    *out = ChunkFormat::kOffsetCompressed;
  } else if (name == "auto") {
    *out = ChunkFormat::kAuto;
  } else if (name == "lzw" || name == "lzw-dense") {
    *out = ChunkFormat::kLzwDense;
  } else if (name == "diffseq" || name == "diff-sequence") {
    *out = ChunkFormat::kDiffSequence;
  } else if (name == "bitpacked" || name == "bit-packed") {
    *out = ChunkFormat::kBitPacked;
  } else {
    return false;
  }
  return true;
}

std::optional<ChunkFormat> ForcedChunkFormatFromEnv() {
  const char* env = std::getenv("PARADISE_FORCE_CHUNK_FORMAT");
  if (env == nullptr || env[0] == '\0') return std::nullopt;
  ChunkFormat format;
  if (!ChunkFormatFromString(env, &format)) return std::nullopt;
  return format;
}

Status ArrayOptions::Validate() const {
  if (default_chunk_extent == 0) {
    return Status::InvalidArgument("default_chunk_extent must be > 0");
  }
  if (static_cast<uint8_t>(chunk_format) > kMaxChunkFormat) {
    return Status::NotSupported(
        "unknown chunk format " +
        std::to_string(static_cast<unsigned>(chunk_format)) +
        " (max supported is " + std::to_string(kMaxChunkFormat) + ")");
  }
  return Status::OK();
}

}  // namespace paradise
