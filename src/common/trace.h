// ExecutionTrace: a per-query tree of timed spans — plan, index lookup,
// chunk scan/probe, aggregate, merge, emit — the structured counterpart of
// PhaseTimer's flat totals (DESIGN.md choice 10). The paper's §5.5.1
// argument rests on separating scan cost from aggregation cost; a trace
// makes that separation visible per query, with nesting and start times.
//
// Concurrency contract: spans are opened and closed by the coordinating
// thread only (every ScopedPhase in the engines runs on it). The API is
// nevertheless mutex-guarded so a worker reading ToJson() mid-query, or a
// misplaced span, corrupts nothing. Parallel workers contribute CPU-second
// totals through PhaseTimer, not spans; the "probe+aggregate" span brackets
// their whole fork/join region in wall-clock terms.
//
// Tracing is opt-in per query (RunQueryOptions::trace). When off, no
// ExecutionTrace exists and the ScopedPhase hook is one null test.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace paradise {

/// One node of the span tree. `start_micros` is relative to the trace
/// epoch (its construction); `duration_micros` is -1 while the span is
/// still open.
struct TraceSpan {
  std::string name;
  int64_t start_micros = 0;
  int64_t duration_micros = -1;
  std::vector<std::unique_ptr<TraceSpan>> children;

  bool open() const { return duration_micros < 0; }
};

class ExecutionTrace {
 public:
  /// The root span (named `root_name`) opens immediately.
  explicit ExecutionTrace(std::string root_name = "query");

  ExecutionTrace(const ExecutionTrace&) = delete;
  ExecutionTrace& operator=(const ExecutionTrace&) = delete;

  /// Opens a child of the innermost open span and returns its id.
  uint64_t BeginSpan(std::string_view name);

  /// Closes span `id` (and, defensively, any still-open spans nested inside
  /// it). Unknown or already-closed ids are ignored.
  void EndSpan(uint64_t id);

  /// Adds an already-measured closed span under the innermost open span —
  /// for timings captured elsewhere (e.g. PhaseTimer totals of engines that
  /// only report aggregates).
  void AddCompleteSpan(std::string_view name, int64_t start_micros,
                       int64_t duration_micros);

  /// Closes every span that is still open, the root included. Idempotent.
  void Finish();

  /// Microseconds since trace construction.
  int64_t ElapsedMicros() const;

  /// Deep copy of the root span (open spans report their live duration).
  TraceSpan Snapshot() const;

  /// The span tree as one JSON object:
  ///   {"name":..,"start_micros":..,"duration_micros":..,
  ///    "children":[...]}        ("children" omitted when empty)
  std::string ToJson() const;

  /// First span with `name` in depth-first order, or nullopt-like empty
  /// span copy check via found flag. Intended for tests.
  bool FindSpan(std::string_view name, TraceSpan* out) const;

 private:
  using Clock = std::chrono::steady_clock;

  int64_t NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 epoch_)
        .count();
  }

  mutable std::mutex mu_;
  TraceSpan root_;
  Clock::time_point epoch_;
  std::vector<TraceSpan*> open_stack_;  // root at [0]; innermost at back
  std::vector<TraceSpan*> by_id_;       // id -> node (root = 0)
};

/// RAII span guard; a null trace makes it a no-op.
class TraceScope {
 public:
  TraceScope(ExecutionTrace* trace, std::string_view name) : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->BeginSpan(name);
  }
  ~TraceScope() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  ExecutionTrace* trace_;
  uint64_t id_ = 0;
};

}  // namespace paradise
