// Tunable knobs for the storage manager and the OLAP array, gathered in
// options structs (RocksDB idiom) so tests and benches can sweep them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace paradise {

/// Buffer-pool victim selection policy.
enum class EvictionPolicy : uint8_t {
  /// Second-chance clock (default; what most systems of the paper's era ran).
  kClock = 0,
  /// Exact least-recently-used (O(frames) victim scan; ablation).
  kLru = 1,
};

std::string_view EvictionPolicyToString(EvictionPolicy policy);

/// Storage-manager configuration.
struct StorageOptions {
  /// Size of one disk page in bytes. Must be a power of two >= 512.
  size_t page_size = 8192;

  /// Buffer-pool replacement policy.
  EvictionPolicy eviction = EvictionPolicy::kClock;

  /// Buffer-pool capacity in pages. The paper's Paradise runs used a 16 MB
  /// pool; 2048 8 KiB pages matches that default.
  size_t buffer_pool_pages = 2048;

  /// Pages per extent for extent-based files (the fact file).
  size_t pages_per_extent = 32;

  /// If true, CreateDatabase() truncates an existing file.
  bool allow_overwrite = false;

  /// Validates the option values.
  Status Validate() const;
};

/// Per-chunk physical format of the OLAP array.
enum class ChunkFormat : uint8_t {
  /// All cells materialized; invalid cells hold the sentinel.
  kDense = 0,
  /// Chunk-offset compression (paper §3.3): sorted (offset, value) pairs for
  /// valid cells only.
  kOffsetCompressed = 1,
  /// Pick per chunk whichever of the above serializes smaller.
  kAuto = 2,
  /// LZW-compressed dense chunk — the generic Paradise tile compression the
  /// OLAP ADT replaced (paper §3.1); kept as an ablation.
  kLzwDense = 3,
};

std::string_view ChunkFormatToString(ChunkFormat format);

/// OLAP-array configuration.
struct ArrayOptions {
  /// Storage format for chunks. The paper always uses offset compression;
  /// kAuto is our ablation (DESIGN.md §4.3).
  ChunkFormat chunk_format = ChunkFormat::kOffsetCompressed;

  /// Chunk side length used for every dimension when the caller does not
  /// give explicit per-dimension chunk extents. The paper keeps chunk
  /// dimensions constant across array sizes (§5.5.1).
  uint32_t default_chunk_extent = 10;

  Status Validate() const;
};

}  // namespace paradise
