// Tunable knobs for the storage manager and the OLAP array, gathered in
// options structs (RocksDB idiom) so tests and benches can sweep them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"

namespace paradise {

class Disk;

/// Buffer-pool victim selection policy.
enum class EvictionPolicy : uint8_t {
  /// Second-chance clock (default; what most systems of the paper's era ran).
  kClock = 0,
  /// Exact least-recently-used (O(frames) victim scan; ablation).
  kLru = 1,
};

std::string_view EvictionPolicyToString(EvictionPolicy policy);

/// Storage-manager configuration.
struct StorageOptions {
  /// Size of one disk page in bytes. Must be a power of two >= 512.
  size_t page_size = 8192;

  /// Buffer-pool replacement policy.
  EvictionPolicy eviction = EvictionPolicy::kClock;

  /// Buffer-pool capacity in pages. The paper's Paradise runs used a 16 MB
  /// pool; 2048 8 KiB pages matches that default.
  size_t buffer_pool_pages = 2048;

  /// Number of independently latched buffer-pool partitions. Pages hash to a
  /// shard by PageId, each shard owning its own frames, page table, clock
  /// hand and statistics, so concurrent fetches of distinct pages proceed in
  /// parallel. The effective count is clamped so every shard keeps at least
  /// kMinFramesPerShard frames (small pools degrade to a single shard, which
  /// preserves the exact eviction order the single-threaded pool had).
  size_t pool_shards = 8;

  /// Chunk read-ahead depth: scan-shaped algorithms keep up to this many
  /// chunk blobs in flight ahead of the consuming thread(s) via the storage
  /// manager's background I/O pool. 0 disables read-ahead (all chunk reads
  /// happen synchronously on the consuming thread).
  size_t prefetch_depth = 4;

  /// Worker threads in the background I/O pool that serves chunk read-ahead.
  /// 0 disables the pool (and with it all read-ahead) regardless of
  /// prefetch_depth.
  size_t io_pool_threads = 2;

  /// Pages per extent for extent-based files (the fact file).
  size_t pages_per_extent = 32;

  /// If true, CreateDatabase() truncates an existing file.
  bool allow_overwrite = false;

  /// On-disk page-format version written by Create(). Version 5 (default)
  /// shares version 4's physical layout but marks the file as possibly
  /// containing bit-packed chunk codecs (kDiffSequence / kBitPacked), which
  /// pre-v5 readers must reject rather than misdecode; version 4 marks files
  /// that may carry incremental-ingest delta state (src/ingest/); version 3
  /// adds the dual-slot commit manifest used for crash-consistent commits;
  /// version 2 appends a CRC32C trailer to every physical page; version 1 is
  /// the legacy checksumless seed format, kept writable for compatibility
  /// testing. Open() always auto-detects the file's version.
  uint32_t format_version = 5;

  /// Open the file for reading only: Create() is rejected, all mutating page
  /// operations fail, and Close() releases the handle without committing.
  /// Used by verification tooling (dbverify) so that inspecting a damaged
  /// file can never modify it.
  bool read_only = false;

  /// If true, StorageManager::Open() runs the storage scrub (storage/scrub.h)
  /// right after recovery and fails with kCorruption when it finds issues.
  bool scrub_on_open = false;

  /// Transient-read-fault handling in the buffer pool: a failed disk read
  /// (kIOError) is retried up to this many additional times before the
  /// error propagates. Checksum failures (kCorruption) are never retried.
  size_t read_retry_limit = 2;

  /// Base backoff before the first read retry; doubles per attempt.
  uint64_t read_retry_backoff_micros = 100;

  /// Test/tooling hook: if set, the StorageManager passes its freshly
  /// constructed DiskManager through this decorator (e.g. wrapping it in a
  /// FaultInjectingDiskManager) before any I/O happens.
  std::function<std::unique_ptr<Disk>(std::unique_ptr<Disk>)> wrap_disk;

  /// Mirror storage-layer events into the process-wide MetricsRegistry
  /// (bufferpool.* counters, disk.*_micros latency histograms, prefetch.*).
  /// Components resolve their registry handles once, at construction, only
  /// when this is set; disabled (the default) costs one null test per event.
  bool metrics_enabled = false;

  /// Validates the option values.
  Status Validate() const;
};

/// Per-chunk physical format of the OLAP array.
enum class ChunkFormat : uint8_t {
  /// All cells materialized; invalid cells hold the sentinel.
  kDense = 0,
  /// Chunk-offset compression (paper §3.3): sorted (offset, value) pairs for
  /// valid cells only.
  kOffsetCompressed = 1,
  /// Pick per chunk whichever of the above serializes smaller.
  kAuto = 2,
  /// LZW-compressed dense chunk — the generic Paradise tile compression the
  /// OLAP ADT replaced (paper §3.1); kept as an ablation.
  kLzwDense = 3,
  /// Difference-sequence compression (Szépkúti): the sorted offsets are
  /// delta-encoded and the gaps bit-packed to the chunk's measured gap
  /// width, with per-block anchors so probes stay sub-linear. Requires
  /// storage format v5 (page_header::kFormatCodecs).
  kDiffSequence = 4,
  /// Absolute offsets and values bit-packed to their measured widths, with
  /// a per-block skip directory for O(log) probes. Requires storage format
  /// v5 (page_header::kFormatCodecs).
  kBitPacked = 5,
};

/// Highest ChunkFormat value a reader of this build understands. A stored
/// chunk-format byte above it is a corrupt or future-format file and must be
/// rejected with a typed error, never cast and silently misdecoded.
inline constexpr uint8_t kMaxChunkFormat =
    static_cast<uint8_t>(ChunkFormat::kBitPacked);

std::string_view ChunkFormatToString(ChunkFormat format);

/// Parses a chunk-format name ("dense", "offset", "offset-compressed",
/// "auto", "lzw", "lzw-dense", "diffseq", "diff-sequence", "bitpacked",
/// "bit-packed"). Returns true and sets *out on a match.
bool ChunkFormatFromString(std::string_view name, ChunkFormat* out);

/// The chunk format forced by the PARADISE_FORCE_CHUNK_FORMAT environment
/// variable (test/CI hook: the codec-matrix CI job runs the whole tier-1
/// suite once per codec). nullopt when unset, empty, or unrecognized.
std::optional<ChunkFormat> ForcedChunkFormatFromEnv();

/// OLAP-array configuration.
struct ArrayOptions {
  /// Storage format for chunks. The paper always uses offset compression;
  /// kAuto is our ablation (DESIGN.md §4.3).
  ChunkFormat chunk_format = ChunkFormat::kOffsetCompressed;

  /// Chunk side length used for every dimension when the caller does not
  /// give explicit per-dimension chunk extents. The paper keeps chunk
  /// dimensions constant across array sizes (§5.5.1).
  uint32_t default_chunk_extent = 10;

  Status Validate() const;
};

}  // namespace paradise
