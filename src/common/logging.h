// Minimal leveled logging to stderr. Quiet by default so tests and benches
// stay clean; benches raise the level when diagnosing.
#pragma once

#include <string>

namespace paradise {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level that is emitted. Default: kWarn.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits `message` at `level` if it passes the global threshold.
void Log(LogLevel level, const std::string& message);

}  // namespace paradise

#define PARADISE_LOG_DEBUG(msg) \
  ::paradise::Log(::paradise::LogLevel::kDebug, (msg))
#define PARADISE_LOG_INFO(msg) ::paradise::Log(::paradise::LogLevel::kInfo, (msg))
#define PARADISE_LOG_WARN(msg) ::paradise::Log(::paradise::LogLevel::kWarn, (msg))
#define PARADISE_LOG_ERROR(msg) \
  ::paradise::Log(::paradise::LogLevel::kError, (msg))
