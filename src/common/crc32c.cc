#include "common/crc32c.h"

#include <array>

namespace paradise {

namespace {

// Reflected CRC32C polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

struct Crc32cTables {
  // tables[k][b]: CRC contribution of byte b seen k positions before the end
  // of an 8-byte group (slice-by-8).
  uint32_t t[8][256];

  Crc32cTables() {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][b] = crc;
    }
    for (uint32_t b = 0; b < 256; ++b) {
      for (int k = 1; k < 8; ++k) {
        t[k][b] = (t[k - 1][b] >> 8) ^ t[0][t[k - 1][b] & 0xff];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const char* data, size_t n) {
  const auto& tb = Tables();
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xffffffffu;
  while (n >= 8) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    c = tb.t[7][c & 0xff] ^ tb.t[6][(c >> 8) & 0xff] ^
        tb.t[5][(c >> 16) & 0xff] ^ tb.t[4][c >> 24] ^ tb.t[3][p[4]] ^
        tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = (c >> 8) ^ tb.t[0][(c ^ *p++) & 0xff];
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32c(const char* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace paradise
