// Result<T>: value-or-Status, the library's return type for fallible
// functions that produce a value (Arrow's arrow::Result idiom).
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace paradise {

template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit so
  /// `return Status::NotFound(...)` works).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK() if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Access the held value. Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? value() : fallback; }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace paradise

// Assigns the value of a Result expression to `lhs`, or propagates its error.
// Usage: PARADISE_ASSIGN_OR_RETURN(auto page, pool.Fetch(id));
#define PARADISE_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  PARADISE_ASSIGN_OR_RETURN_IMPL(                                     \
      PARADISE_RESULT_CONCAT(_result_tmp_, __LINE__), lhs, rexpr)

#define PARADISE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define PARADISE_RESULT_CONCAT_INNER(a, b) a##b
#define PARADISE_RESULT_CONCAT(a, b) PARADISE_RESULT_CONCAT_INNER(a, b)
