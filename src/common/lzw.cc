#include "common/lzw.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/coding.h"

namespace paradise {

namespace {
// Code space: [0,256) literal bytes, 256 = dictionary reset, [257, 65536)
// learned sequences.
constexpr uint32_t kResetCode = 256;
constexpr uint32_t kFirstCode = 257;
constexpr uint32_t kMaxCodes = 65536;

void EmitCode(std::string* out, uint32_t code) {
  char buf[2];
  EncodeFixed16(buf, static_cast<uint16_t>(code));
  out->append(buf, 2);
}
}  // namespace

std::string LzwCompress(std::string_view input) {
  std::string out;
  out.resize(4);
  EncodeFixed32(out.data(), static_cast<uint32_t>(input.size()));
  if (input.empty()) return out;

  // Dictionary: (prefix code << 8 | next byte) -> code.
  std::unordered_map<uint64_t, uint32_t> dict;
  dict.reserve(kMaxCodes);
  uint32_t next_code = kFirstCode;

  uint32_t current = static_cast<uint8_t>(input[0]);
  for (size_t i = 1; i < input.size(); ++i) {
    const uint8_t byte = static_cast<uint8_t>(input[i]);
    const uint64_t key = (static_cast<uint64_t>(current) << 8) | byte;
    auto it = dict.find(key);
    if (it != dict.end()) {
      current = it->second;
      continue;
    }
    EmitCode(&out, current);
    if (next_code < kMaxCodes) {
      dict.emplace(key, next_code++);
    } else {
      EmitCode(&out, kResetCode);
      dict.clear();
      next_code = kFirstCode;
    }
    current = byte;
  }
  EmitCode(&out, current);
  return out;
}

Result<std::string> LzwDecompress(std::string_view compressed) {
  if (compressed.size() < 4 || (compressed.size() - 4) % 2 != 0) {
    return Status::Corruption("malformed LZW stream");
  }
  const uint32_t expected = DecodeFixed32(compressed.data());
  std::string out;
  // Don't trust the header for the reservation: a corrupt length must not
  // drive a huge allocation. The final size check still enforces it.
  out.reserve(std::min<size_t>(expected, compressed.size() * 16));
  if (expected == 0) {
    if (compressed.size() != 4) {
      return Status::Corruption("trailing bytes in empty LZW stream");
    }
    return out;
  }

  // Dictionary: code -> (prefix code, first byte, last byte); literals are
  // implicit. Strings are reconstructed by walking prefixes.
  struct Entry {
    uint32_t prefix;
    uint8_t last;
  };
  std::vector<Entry> dict;
  dict.reserve(kMaxCodes - kFirstCode);
  uint32_t next_code = kFirstCode;

  auto append_string = [&](uint32_t code, std::string* dst) -> Status {
    // Walk the prefix chain, then reverse the emitted run.
    const size_t start = dst->size();
    while (code >= kFirstCode) {
      const Entry& e = dict[code - kFirstCode];
      dst->push_back(static_cast<char>(e.last));
      code = e.prefix;
    }
    if (code >= 256) return Status::Corruption("bad LZW code chain");
    dst->push_back(static_cast<char>(code));
    std::reverse(dst->begin() + static_cast<ptrdiff_t>(start), dst->end());
    return Status::OK();
  };
  auto first_byte = [&](uint32_t code) -> uint8_t {
    while (code >= kFirstCode) code = dict[code - kFirstCode].prefix;
    return static_cast<uint8_t>(code);
  };

  const size_t num_codes = (compressed.size() - 4) / 2;
  uint32_t prev = UINT32_MAX;
  for (size_t i = 0; i < num_codes; ++i) {
    const uint32_t code = DecodeFixed16(compressed.data() + 4 + i * 2);
    if (code == kResetCode) {
      dict.clear();
      next_code = kFirstCode;
      prev = UINT32_MAX;
      continue;
    }
    if (prev == UINT32_MAX) {
      if (code >= 256) return Status::Corruption("LZW stream starts mid-run");
      out.push_back(static_cast<char>(code));
      prev = code;
      continue;
    }
    if (code < kFirstCode + dict.size()) {
      // Known code: emit it, learn prev + first(code).
      PARADISE_RETURN_IF_ERROR(append_string(code, &out));
      if (next_code < kMaxCodes) {
        dict.push_back(Entry{prev, first_byte(code)});
        ++next_code;
      }
    } else if (code == kFirstCode + dict.size() && next_code < kMaxCodes) {
      // KwKwK: the code being defined right now.
      const uint8_t fb = first_byte(prev);
      dict.push_back(Entry{prev, fb});
      ++next_code;
      PARADISE_RETURN_IF_ERROR(append_string(code, &out));
    } else {
      return Status::Corruption("LZW code beyond dictionary");
    }
    prev = code;
  }
  if (out.size() != expected) {
    return Status::Corruption("LZW length mismatch: got " +
                              std::to_string(out.size()) + ", expected " +
                              std::to_string(expected));
  }
  return out;
}

}  // namespace paradise
