// CRC32C (Castagnoli) checksums for on-disk page integrity. Software
// slice-by-8 implementation; the polynomial's error-detection properties are
// what storage systems standardized on (iSCSI, ext4, leveldb). Stored CRCs
// are masked (leveldb idiom) so checksumming a buffer that itself contains
// an embedded CRC does not degenerate.
#pragma once

#include <cstddef>
#include <cstdint>

namespace paradise {

/// CRC32C of `data[0, n)`, seeded with the standard initial value.
uint32_t Crc32c(const char* data, size_t n);

/// Extends `crc` (a value previously returned by Crc32c/Crc32cExtend) with
/// `data[0, n)`, as if the two buffers had been concatenated.
uint32_t Crc32cExtend(uint32_t crc, const char* data, size_t n);

/// Masks a CRC before storing it alongside the data it covers.
inline uint32_t MaskCrc32c(uint32_t crc) {
  // Rotate right by 15 bits and add a constant (leveldb's kMaskDelta).
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

/// Inverse of MaskCrc32c.
inline uint32_t UnmaskCrc32c(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace paradise
