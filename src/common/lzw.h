// LZW codec [Wel84] — the generic tile compression the Paradise array type
// used before the OLAP Array ADT replaced it with chunk-offset compression
// (paper §3.1: "The OLAP Array ADT does not use LZW compression, and uses
// instead a compression method that is specific to arrays"). Implemented
// here so the ablation benches can quantify that design choice.
//
// Encoding: fixed 16-bit codes, dictionary seeded with all 256 single
// bytes, grown to 65 536 entries and then reset (emitting a reserved reset
// code), classic KwKwK handling on decode.
#pragma once

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace paradise {

/// Compresses `input`. Output begins with a fixed32 of the input length.
std::string LzwCompress(std::string_view input);

/// Inverse of LzwCompress. Fails with Corruption on malformed input.
Result<std::string> LzwDecompress(std::string_view compressed);

}  // namespace paradise
