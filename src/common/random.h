// Deterministic pseudo-random utilities used by the data generator and the
// property tests. A small xoshiro256** core keeps generation reproducible
// across standard libraries (std::mt19937 streams are portable, but the
// distributions are not).
#pragma once

#include <cstdint>
#include <vector>

namespace paradise {

/// Reproducible 64-bit PRNG (xoshiro256**).
class Random {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Random(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

/// Draws exactly `count` distinct values from [0, population), returned in
/// increasing order, via sequential selection sampling (Vitter's Method S).
/// Runs in O(population) time and O(count) space; used to pick the valid
/// cells of a synthetic array at an exact density.
std::vector<uint64_t> SampleSortedDistinct(uint64_t population, uint64_t count,
                                           Random* rng);

}  // namespace paradise
