// JsonWriter: a minimal append-only JSON emitter shared by every surface
// that speaks the observability schema (ExecutionStats::ToJson, the metrics
// registry snapshot, tools/dbstats and the bench BENCH_*.json files), so all
// of them stay structurally valid and byte-stable without a JSON dependency.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace paradise {

class JsonWriter {
 public:
  JsonWriter() { stack_.reserve(8); }

  void BeginObject() {
    Comma();
    out_.push_back('{');
    stack_.push_back(true);
  }
  void EndObject() {
    out_.push_back('}');
    stack_.pop_back();
  }
  void BeginArray() {
    Comma();
    out_.push_back('[');
    stack_.push_back(true);
  }
  void EndArray() {
    out_.push_back(']');
    stack_.pop_back();
  }

  /// Emits `"name":` — must be followed by exactly one value call.
  void Key(std::string_view name) {
    Comma();
    AppendEscaped(name);
    out_.push_back(':');
    key_pending_ = true;
  }

  void String(std::string_view v) {
    Comma();
    AppendEscaped(v);
  }
  void Uint(uint64_t v) {
    Comma();
    out_.append(std::to_string(v));
  }
  void Int(int64_t v) {
    Comma();
    out_.append(std::to_string(v));
  }
  void Double(double v) {
    Comma();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    out_.append(buf);
  }
  void Bool(bool v) {
    Comma();
    out_.append(v ? "true" : "false");
  }
  void Null() {
    Comma();
    out_.append("null");
  }

  /// Splices a pre-rendered JSON value (e.g. a nested ToJson() result).
  void Raw(std::string_view json) {
    Comma();
    out_.append(json);
  }

  // Key+value conveniences.
  void KV(std::string_view k, std::string_view v) { Key(k), String(v); }
  void KV(std::string_view k, uint64_t v) { Key(k), Uint(v); }
  void KV(std::string_view k, int64_t v) { Key(k), Int(v); }
  void KV(std::string_view k, double v) { Key(k), Double(v); }
  void KV(std::string_view k, bool v) { Key(k), Bool(v); }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  /// Emits the separating comma before a sibling value and marks the
  /// enclosing container non-empty. A value directly after Key() never
  /// takes a comma.
  void Comma() {
    if (key_pending_) {
      key_pending_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (!stack_.back()) out_.push_back(',');
      stack_.back() = false;
    }
  }

  void AppendEscaped(std::string_view s) {
    out_.push_back('"');
    for (char c : s) {
      switch (c) {
        case '"':
          out_.append("\\\"");
          break;
        case '\\':
          out_.append("\\\\");
          break;
        case '\n':
          out_.append("\\n");
          break;
        case '\r':
          out_.append("\\r");
          break;
        case '\t':
          out_.append("\\t");
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_.append(buf);
          } else {
            out_.push_back(c);
          }
      }
    }
    out_.push_back('"');
  }

  std::string out_;
  // One entry per open container; true while it is still empty.
  std::vector<bool> stack_;
  bool key_pending_ = false;
};

}  // namespace paradise
