// Little-endian fixed-width encode/decode helpers for on-disk structures
// (page headers, chunk directories, B-tree nodes). memcpy-based so they are
// alignment-safe and well-defined.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace paradise {

inline void EncodeFixed32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline uint64_t DecodeFixed64(const char* src) {
  uint64_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline void AppendFixed32(std::string* out, uint32_t value) {
  char buf[4];
  EncodeFixed32(buf, value);
  out->append(buf, sizeof(buf));
}

inline void AppendFixed64(std::string* out, uint64_t value) {
  char buf[8];
  EncodeFixed64(buf, value);
  out->append(buf, sizeof(buf));
}

inline void EncodeFixed16(char* dst, uint16_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

}  // namespace paradise
