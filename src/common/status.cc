#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace paradise {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

namespace internal {

void CheckOkFailed(const char* file, int line, const Status& s) {
  std::fprintf(stderr, "%s:%d: PARADISE_CHECK_OK failed: %s\n", file, line,
               s.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace paradise
