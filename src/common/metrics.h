// MetricsRegistry: process-wide named counters, gauges and log-scale latency
// histograms — the single observability surface the storage and query layers
// report into (DESIGN.md choice 10). The paper's evaluation (§5.5.1) hinges
// on knowing where time goes; the registry is how this library answers that
// question for itself.
//
// Design constraints:
//  - Recording is lock-free: counters and histogram buckets are relaxed
//    atomics. The registry mutex guards registration only; metric objects
//    are node-stable (held by unique_ptr), so a handle obtained once is
//    valid and contention-free for the process lifetime.
//  - Recording never allocates. Components resolve their handles at
//    construction (and only when StorageOptions::metrics_enabled is set);
//    the disabled configuration leaves the handles null, so the hot-path
//    cost of disabled metrics is one pointer test.
//  - Snapshots are advisory: they read each atomic individually, so totals
//    observed while writers are running can be momentarily inconsistent
//    with one another (same contract as BufferPool::stats()).
//
// Naming scheme: "<component>.<event>[_micros]" — e.g. "bufferpool.hits",
// "disk.read_micros", "prefetch.wasted", "faults.injected". The "_micros"
// suffix marks histograms of microsecond latencies.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace paradise {

/// Monotonic event counter. All operations are relaxed atomics.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-written level (buffer-pool occupancy, open file count, ...).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log-scale (power-of-two bucketed) histogram for latency distributions.
/// Bucket 0 holds the value 0; bucket i (1 <= i <= 64) holds values in
/// [2^(i-1), 2^i). Recording is three relaxed atomic adds plus two bounded
/// CAS loops for min/max; no allocation, no locks.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// UINT64_MAX / 0 while empty.
  uint64_t min() const { return min_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  double Mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// Upper-bound estimate of the p-th percentile (p in [0, 1]): the
  /// inclusive upper edge of the bucket containing the p-th sample. Exact
  /// for single-valued buckets (0 and 1), within 2x above.
  uint64_t PercentileUpperBound(double p) const;

  void Reset();

  /// Bucket index of `value`: 0 for 0, else bit_width(value).
  static size_t BucketIndex(uint64_t value);

  /// Smallest value landing in bucket `i` (0 for buckets 0 and 1).
  static uint64_t BucketLowerBound(size_t i);

  /// Largest value landing in bucket `i`.
  static uint64_t BucketUpperBound(size_t i);

 private:
  std::atomic<uint64_t> counts_[kNumBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  /// The process-wide registry every component reports into.
  static MetricsRegistry& Default();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, creating it on first use. The returned
  /// pointer is stable for the registry's lifetime. Counters, gauges and
  /// histograms live in separate namespaces.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Look up without creating (nullptr if absent) — for tools and tests.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  /// Zeroes every registered metric (registration survives).
  void ResetAll();

  /// Registered names per kind, sorted (snapshot).
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;
  std::vector<std::string> HistogramNames() const;

  /// Full registry snapshot as one JSON object:
  ///   {"counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {"count":..,"sum":..,"min":..,"max":..,
  ///                          "mean":..,"p50":..,"p95":..,"p99":..,
  ///                          "buckets": [[lower_bound, count], ...]}, ...}}
  /// Histogram "buckets" lists only non-empty buckets. Zero-count metrics
  /// are included; percentiles are PercentileUpperBound estimates.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;  // guards the maps, never the metrics themselves
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace paradise
