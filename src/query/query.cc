#include "query/query.h"

#include "index/btree.h"

namespace paradise::query {

int64_t NormalizeLiteral(const Literal& lit) {
  if (const auto* i = std::get_if<int64_t>(&lit)) return *i;
  return StringPrefixKey(std::get<std::string>(lit));
}

std::string LiteralToString(const Literal& lit) {
  if (const auto* i = std::get_if<int64_t>(&lit)) return std::to_string(*i);
  return std::get<std::string>(lit);
}

std::string_view AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "unknown";
}

bool ConsolidationQuery::HasSelection() const {
  for (const DimensionQuery& d : dims) {
    if (!d.selections.empty()) return true;
  }
  return false;
}

Status ConsolidationQuery::Validate(
    const std::vector<size_t>& dim_num_columns) const {
  if (dims.size() != dim_num_columns.size()) {
    return Status::InvalidArgument(
        "query has " + std::to_string(dims.size()) + " dimensions, cube has " +
        std::to_string(dim_num_columns.size()));
  }
  for (size_t i = 0; i < dims.size(); ++i) {
    const DimensionQuery& d = dims[i];
    if (d.group_by_col.has_value() &&
        (*d.group_by_col == 0 || *d.group_by_col >= dim_num_columns[i])) {
      return Status::InvalidArgument("bad group-by column " +
                                     std::to_string(*d.group_by_col) +
                                     " on dimension " + std::to_string(i));
    }
    for (const Selection& s : d.selections) {
      if (s.attr_col == 0 || s.attr_col >= dim_num_columns[i]) {
        return Status::InvalidArgument("bad selection column " +
                                       std::to_string(s.attr_col) +
                                       " on dimension " + std::to_string(i));
      }
      if (s.values.empty()) {
        return Status::InvalidArgument(
            "empty selection value list on dimension " + std::to_string(i));
      }
    }
  }
  return Status::OK();
}

ConsolidationQuery ConsolidationQuery::GroupByAll(size_t n, size_t col,
                                                  AggFunc agg) {
  ConsolidationQuery q;
  q.dims.resize(n);
  for (DimensionQuery& d : q.dims) d.group_by_col = col;
  q.agg = agg;
  return q;
}

}  // namespace paradise::query
