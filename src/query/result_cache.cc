#include "query/result_cache.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "core/index_to_index.h"

namespace paradise::query {

namespace {

/// Sorted distinct normalized values of one selection's OR-list.
std::vector<int64_t> NormalizedSet(const Selection& sel) {
  std::vector<int64_t> out;
  out.reserve(sel.values.size());
  for (const Literal& lit : sel.values) out.push_back(NormalizeLiteral(lit));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<int64_t> Intersect(const std::vector<int64_t>& a,
                               const std::vector<int64_t>& b) {
  std::vector<int64_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

CanonicalQuery CanonicalQuery::From(const ConsolidationQuery& q) {
  CanonicalQuery canon;
  canon.measure = q.measure;
  canon.dims.resize(q.dims.size());
  for (size_t d = 0; d < q.dims.size(); ++d) {
    CanonicalDimension& cd = canon.dims[d];
    cd.group_by_col = q.dims[d].group_by_col;
    // ANDed selections on the same attribute column intersect: a value
    // satisfies both OR-lists iff it is in both. Dictionary codes map 1:1 to
    // normalized values, so intersecting value sets is exact.
    std::map<size_t, std::vector<int64_t>> merged;
    for (const Selection& sel : q.dims[d].selections) {
      std::vector<int64_t> values = NormalizedSet(sel);
      auto it = merged.find(sel.attr_col);
      if (it == merged.end()) {
        merged.emplace(sel.attr_col, std::move(values));
      } else {
        it->second = Intersect(it->second, values);
      }
    }
    cd.selections.assign(merged.begin(), merged.end());
  }
  return canon;
}

std::string CanonicalQuery::Signature() const {
  std::string out = "m" + std::to_string(measure);
  for (size_t d = 0; d < dims.size(); ++d) {
    const CanonicalDimension& cd = dims[d];
    out += "|d" + std::to_string(d) + ":g";
    out += cd.group_by_col ? std::to_string(*cd.group_by_col) : "-";
    for (const auto& [col, values] : cd.selections) {
      out += ";s" + std::to_string(col) + "{";
      for (size_t i = 0; i < values.size(); ++i) {
        if (i != 0) out += ",";
        out += std::to_string(values[i]);
      }
      out += "}";
    }
  }
  return out;
}

bool CanonicalQuery::SameSelectionFamily(const CanonicalQuery& o) const {
  if (measure != o.measure || dims.size() != o.dims.size()) return false;
  for (size_t d = 0; d < dims.size(); ++d) {
    if (dims[d].selections != o.dims[d].selections) return false;
  }
  return true;
}

ConsolidationResultCache::ConsolidationResultCache()
    : ConsolidationResultCache(Options{}) {}

ConsolidationResultCache::ConsolidationResultCache(Options options)
    : options_(options) {
  if (options_.metrics_enabled) {
    MetricsRegistry& reg = MetricsRegistry::Default();
    m_hits_ = reg.GetCounter("resultcache.hits");
    m_misses_ = reg.GetCounter("resultcache.misses");
    m_derived_ = reg.GetCounter("resultcache.derived");
    m_insertions_ = reg.GetCounter("resultcache.insertions");
    m_evictions_ = reg.GetCounter("resultcache.evictions");
    m_invalidations_ = reg.GetCounter("resultcache.invalidations");
    m_bytes_ = reg.GetGauge("resultcache.bytes");
    m_entries_ = reg.GetGauge("resultcache.entries");
    m_lookup_micros_ = reg.GetHistogram("resultcache.lookup_micros");
  }
}

std::shared_ptr<const GroupedResult> ConsolidationResultCache::Lookup(
    const std::string& scope, uint64_t epoch, const CanonicalQuery& canon) {
  Stopwatch watch;
  const std::string key = scope + "\n" + canon.Signature();
  std::shared_ptr<const GroupedResult> result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.lookups;
    auto it = index_.find(key);
    if (it != index_.end()) {
      if (it->second->epoch != epoch) {
        EraseLocked(it->second, /*invalidation=*/true);
      } else {
        lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
        result = it->second->result;
        ++stats_.hits;
      }
    }
    if (result == nullptr) ++stats_.misses;
  }
  if (result != nullptr) {
    if (m_hits_ != nullptr) m_hits_->Increment();
  } else {
    if (m_misses_ != nullptr) m_misses_->Increment();
  }
  if (m_lookup_micros_ != nullptr) {
    m_lookup_micros_->Record(static_cast<uint64_t>(watch.ElapsedMicros()));
  }
  return result;
}

std::shared_ptr<const GroupedResult> ConsolidationResultCache::Peek(
    const std::string& scope, uint64_t epoch, const CanonicalQuery& canon) {
  const std::string key = scope + "\n" + canon.Signature();
  std::shared_ptr<const GroupedResult> result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.lookups;
    auto it = index_.find(key);
    if (it != index_.end() && it->second->epoch == epoch) {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      result = it->second->result;
      ++stats_.hits;
    } else {
      ++stats_.misses;
    }
  }
  if (result != nullptr) {
    if (m_hits_ != nullptr) m_hits_->Increment();
  } else {
    if (m_misses_ != nullptr) m_misses_->Increment();
  }
  return result;
}

void ConsolidationResultCache::Insert(
    const std::string& scope, uint64_t epoch, const CanonicalQuery& canon,
    std::shared_ptr<const GroupedResult> result) {
  if (result == nullptr) return;
  std::string key = scope + "\n" + canon.Signature();
  const size_t bytes = EntryBytes(key, *result);
  if (bytes > options_.byte_budget) return;  // would evict everything else
  int64_t bytes_delta = 0;
  int64_t entries_delta = 0;
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) EraseLocked(it->second, /*invalidation=*/false);
    const uint64_t before_evictions = stats_.evictions;
    const uint64_t before_bytes = stats_.bytes_in_use;
    const uint64_t before_entries = stats_.entries;
    EvictToFitLocked(bytes);
    lru_.push_front(Entry{key, scope, epoch, canon, std::move(result), bytes});
    index_[std::move(key)] = lru_.begin();
    stats_.bytes_in_use += bytes;
    ++stats_.entries;
    ++stats_.insertions;
    evicted = stats_.evictions - before_evictions;
    bytes_delta = static_cast<int64_t>(stats_.bytes_in_use) -
                  static_cast<int64_t>(before_bytes);
    entries_delta = static_cast<int64_t>(stats_.entries) -
                    static_cast<int64_t>(before_entries);
  }
  if (m_insertions_ != nullptr) m_insertions_->Increment();
  if (m_evictions_ != nullptr && evicted > 0) m_evictions_->Increment(evicted);
  if (m_bytes_ != nullptr) m_bytes_->Add(bytes_delta);
  if (m_entries_ != nullptr) m_entries_->Add(entries_delta);
}

std::vector<ConsolidationResultCache::Candidate>
ConsolidationResultCache::DerivationCandidates(const std::string& scope,
                                               uint64_t epoch,
                                               const CanonicalQuery& target) {
  std::vector<Candidate> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : lru_) {
      if (e.scope != scope || e.epoch != epoch) continue;
      if (!e.canon.SameSelectionFamily(target)) continue;
      if (e.canon == target) continue;  // exact hits go through Lookup
      // Every dimension the target groups must be grouped in the source
      // (at some level — level derivability is checked by the caller
      // against the IndexToIndex maps); every dimension the target
      // collapses may be grouped or collapsed in the source (grouped rows
      // just merge into one).
      bool compatible = true;
      for (size_t d = 0; d < target.dims.size(); ++d) {
        if (target.dims[d].group_by_col.has_value() &&
            !e.canon.dims[d].group_by_col.has_value()) {
          compatible = false;
          break;
        }
      }
      if (compatible) out.push_back(Candidate{e.canon, e.result});
    }
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return a.result->num_groups() < b.result->num_groups();
  });
  return out;
}

void ConsolidationResultCache::NoteDerivedHit() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.derived_hits;
  }
  if (m_derived_ != nullptr) m_derived_->Increment();
}

ResultCacheStats ConsolidationResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ConsolidationResultCache::Clear() {
  int64_t bytes_delta = 0;
  int64_t entries_delta = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bytes_delta = -static_cast<int64_t>(stats_.bytes_in_use);
    entries_delta = -static_cast<int64_t>(stats_.entries);
    stats_.invalidations += stats_.entries;
    stats_.bytes_in_use = 0;
    stats_.entries = 0;
    index_.clear();
    lru_.clear();
  }
  if (m_invalidations_ != nullptr && entries_delta != 0) {
    m_invalidations_->Increment(static_cast<uint64_t>(-entries_delta));
  }
  if (m_bytes_ != nullptr) m_bytes_->Add(bytes_delta);
  if (m_entries_ != nullptr) m_entries_->Add(entries_delta);
}

size_t ConsolidationResultCache::EntryBytes(const std::string& key,
                                            const GroupedResult& r) {
  size_t bytes = sizeof(Entry) + key.size() * 2;  // key lives in entry + index
  bytes += r.rows().capacity() * sizeof(ResultRow);
  for (const ResultRow& row : r.rows()) {
    bytes += row.group.capacity() * sizeof(int32_t);
  }
  for (const std::string& col : r.group_columns()) {
    bytes += sizeof(std::string) + col.capacity();
  }
  return bytes;
}

void ConsolidationResultCache::EvictToFitLocked(size_t incoming_bytes) {
  while (!lru_.empty() &&
         stats_.bytes_in_use + incoming_bytes > options_.byte_budget) {
    auto victim = std::prev(lru_.end());
    ++stats_.evictions;
    EraseLocked(victim, /*invalidation=*/false);
  }
}

void ConsolidationResultCache::EraseLocked(LruList::iterator it,
                                           bool invalidation) {
  stats_.bytes_in_use -= it->bytes;
  --stats_.entries;
  if (invalidation) ++stats_.invalidations;
  const int64_t bytes = static_cast<int64_t>(it->bytes);
  index_.erase(it->key);
  lru_.erase(it);
  // Mirror under the lock is fine — relaxed atomics, no allocation.
  if (m_bytes_ != nullptr) m_bytes_->Add(-bytes);
  if (m_entries_ != nullptr) m_entries_->Add(-1);
  if (invalidation && m_invalidations_ != nullptr) {
    m_invalidations_->Increment();
  }
}

std::optional<GroupedResult> RollUpCachedResult(
    const CanonicalQuery& target,
    const ConsolidationResultCache::Candidate& candidate,
    const std::vector<const IndexToIndexArray*>& i2i,
    std::vector<std::string> columns) {
  const CanonicalQuery& source = candidate.canon;
  if (source.dims.size() != target.dims.size() ||
      i2i.size() != target.dims.size()) {
    return std::nullopt;
  }
  // For each source-grouped dimension: its position among the source's group
  // columns, and how to remap its codes — keep (same level), roll up through
  // a functional map, or drop (target collapses the dimension).
  struct DimPlan {
    size_t source_pos = 0;
    bool kept = false;                    // contributes a target group column
    std::vector<int32_t> rollup;          // empty when codes pass through
  };
  std::vector<DimPlan> plans;
  size_t source_pos = 0;
  for (size_t d = 0; d < target.dims.size(); ++d) {
    const auto& src_col = source.dims[d].group_by_col;
    const auto& tgt_col = target.dims[d].group_by_col;
    if (!src_col.has_value()) {
      if (tgt_col.has_value()) return std::nullopt;  // can't refine
      continue;
    }
    DimPlan plan;
    plan.source_pos = source_pos++;
    if (tgt_col.has_value()) {
      plan.kept = true;
      if (*tgt_col != *src_col) {
        if (i2i[d] == nullptr) return std::nullopt;
        std::optional<std::vector<int32_t>> map =
            i2i[d]->FunctionalRollUp(*src_col, *tgt_col);
        if (!map.has_value()) return std::nullopt;  // not functional: rescan
        plan.rollup = std::move(*map);
      }
    }
    plans.push_back(std::move(plan));
  }

  // Re-aggregate through an ordered map so the derived result comes out in
  // canonical (sorted) group order, exactly like FlatToGroupedResult.
  std::map<std::vector<int32_t>, AggState> groups;
  std::vector<int32_t> key;
  for (const ResultRow& row : candidate.result->rows()) {
    key.clear();
    for (const DimPlan& plan : plans) {
      if (!plan.kept) continue;
      int32_t code = row.group[plan.source_pos];
      if (!plan.rollup.empty()) {
        if (code < 0 || static_cast<size_t>(code) >= plan.rollup.size()) {
          return std::nullopt;  // cached row outside the map: stale shape
        }
        code = plan.rollup[code];
      }
      key.push_back(code);
    }
    groups[key].Merge(row.agg);
  }

  GroupedResult out(std::move(columns));
  for (auto& [group, agg] : groups) {
    out.Add(ResultRow{group, agg});
  }
  return out;
}

}  // namespace paradise::query
