// RunQuery: one entry point executing a ConsolidationQuery with any of the
// four implemented algorithms over the same database, with uniform timing,
// buffer-pool I/O accounting, and the paper's cold-buffer protocol.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "query/query.h"
#include "query/result.h"
#include "schema/database.h"
#include "storage/buffer_pool.h"

namespace paradise {

namespace query {
class ConsolidationResultCache;
}  // namespace query

enum class EngineKind : uint8_t {
  /// OLAP Array ADT algorithms (§4.1 / §4.2, chosen by HasSelection()).
  kArray = 0,
  /// Star-join consolidation over the fact file (§4.3).
  kStarJoin,
  /// Bitmap join indexes + fact file (§4.5); requires a selection.
  kBitmap,
  /// Left-deep pipelined hash join (the §4.3 strawman).
  kLeftDeep,
  /// B-tree join indexes + fact file (the §4.4 baseline bitmap dominated);
  /// requires a selection and build_btree_join_indexes at load time.
  kBTreeSelect,
};

std::string_view EngineKindToString(EngineKind kind);

/// Cost model of the paper's 1997 I/O hardware (200 MHz Pentium Pro with a
/// 2 GB Quantum Fireball, §5.3). Our database file sits in the OS page
/// cache, so wall time reflects CPU only; this model translates the
/// buffer-pool miss counts back into disk-bound time: a sequential page read
/// moves 8 KiB at ~4 MB/s, a random one adds seek + rotation. DESIGN.md
/// lists this as an explicit substitution.
struct IoModel1997 {
  double seq_read_seconds = 0.002;
  double rand_read_seconds = 0.012;
};

/// I/O-bound elapsed-time estimate for a query's miss counts.
inline double ModeledIoSeconds(const BufferPoolStats& io,
                               const IoModel1997& model = IoModel1997{}) {
  return static_cast<double>(io.seq_disk_reads) * model.seq_read_seconds +
         static_cast<double>(io.rand_disk_reads) * model.rand_read_seconds;
}

/// How the result cache participated in one execution. kOff when no cache
/// was attached; kHit = exact-signature hit, kDerived = answered by rolling
/// up a cached finer-level result (query/result_cache.h), kMiss = cache was
/// consulted but the engine ran.
enum class CacheOutcome : uint8_t { kOff = 0, kMiss, kHit, kDerived };

std::string_view CacheOutcomeToString(CacheOutcome outcome);

struct ExecutionStats {
  double seconds = 0.0;
  BufferPoolStats io;   // delta over the query
  PhaseTimer phases;
  /// Algorithm-specific: array+selection = chunks read; bitmap = set bits in
  /// the final bitmap; left-deep = materialized intermediate rows.
  uint64_t aux = 0;
  /// Span tree of the query (plan → scan/probe → aggregate → merge), present
  /// when the query ran with RunQueryOptions::trace. Shared so copies of the
  /// stats stay cheap.
  std::shared_ptr<ExecutionTrace> trace;

  /// Result-cache participation (kOff unless RunQueryOptions::cache is set).
  CacheOutcome cache_outcome = CacheOutcome::kOff;
  /// Rows of the cached source result a hit or derivation was served from.
  uint64_t cache_source_rows = 0;

  /// Decode kernel the array engine dispatched ("scalar" or "avx2",
  /// core/kernels/consolidate_kernel.h); "none" for the relational engines
  /// and cache hits, which never run the consolidation kernels.
  std::string kernel_isa = "none";

  /// Disk-bound time estimate under the paper's hardware (see IoModel1997).
  double ModeledSeconds() const { return ModeledIoSeconds(io); }

  /// The stats as one JSON object — the schema every observability surface
  /// (tools/dbstats, the bench BENCH_*.json files) shares:
  ///   {"seconds":..,"modeled_seconds":..,"aux":..,"kernel_isa":"..",
  ///    "io":{"logical_reads":..,"hits":..,"disk_reads":..,
  ///          "seq_disk_reads":..,"rand_disk_reads":..,"disk_writes":..,
  ///          "evictions":..,"read_retries":..,"coalesced_reads":..,
  ///          "prefetched":..,"prefetch_hits":..,"prefetch_wasted":..},
  ///    "phases":{name:micros,...},
  ///    "cache":{"outcome":"off|miss|hit|derived","source_rows":..},
  ///    "trace":{...}}            ("trace" omitted when not traced)
  std::string ToJson() const;
};

struct Execution {
  query::GroupedResult result;
  ExecutionStats stats;
};

struct RunQueryOptions {
  /// Cold-buffer protocol (the paper's §5 default): flush and drop all
  /// buffered pages before the query.
  bool cold = true;
  /// Worker threads for the array engine (core/parallel.h); 1 = the serial
  /// algorithms. Other engines ignore this and run serially. Parallel runs
  /// produce bit-identical results to serial ones.
  size_t num_threads = 1;
  /// Collect an ExecutionTrace (span per engine phase) into
  /// ExecutionStats::trace. Off by default: tracing costs one span
  /// allocation per ScopedPhase on the coordinator thread.
  bool trace = false;
  /// Consolidation result cache (borrowed; may be shared across databases
  /// and threads). When set, RunQuery tries an exact-signature hit, then a
  /// roll-up derivation from a cached finer-level result, and only then runs
  /// the engine — inserting the fresh result afterwards. A hit skips the
  /// cold-buffer drop: the whole point of a result cache is not touching the
  /// storage layer. Cached answers are bit-identical to engine runs.
  query::ConsolidationResultCache* cache = nullptr;

  /// Pin result-cache lookups and inserts to this commit epoch instead of
  /// the database's current one. Used by epoch-pinned server sessions
  /// (server/session.h): if a checkpoint advances the epoch mid-query, the
  /// fresh result is still filed under the epoch the session connected at,
  /// so it can never poison the newer epoch's cache. No effect without
  /// `cache`; nullopt (the default) uses Database::commit_epoch().
  std::optional<uint64_t> cache_pin_epoch;

  /// Deadline/cancellation token (borrowed; may be flipped from another
  /// thread). Checked once before dispatch and then at every chunk boundary
  /// of the array engine's scan/probe loops (serial and parallel), so a
  /// fired token stops the query within one chunk's work and RunQuery
  /// returns the token's typed Status (kDeadlineExceeded / kCancelled) with
  /// no torn result and no leaked worker. The non-array engines check only
  /// at dispatch — they exist as paper baselines, not serving paths
  /// (DESIGN.md choice 13).
  const CancellationToken* cancel = nullptr;
};

/// Runs `q` with engine `kind`. With `cold` (the default, matching the
/// paper's protocol) all buffered pages are flushed and dropped first.
Result<Execution> RunQuery(Database* db, EngineKind kind,
                           const query::ConsolidationQuery& q,
                           bool cold = true);

/// Options-struct overload: adds intra-query parallelism for the array
/// engine.
Result<Execution> RunQuery(Database* db, EngineKind kind,
                           const query::ConsolidationQuery& q,
                           const RunQueryOptions& options);

}  // namespace paradise
