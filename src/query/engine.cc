#include "query/engine.h"

#include "common/json_writer.h"
#include "common/metrics.h"
#include "core/aggregate.h"
#include "core/consolidate.h"
#include "core/consolidate_select.h"
#include "core/kernels/consolidate_kernel.h"
#include "core/parallel.h"
#include "query/planner.h"
#include "query/result_cache.h"
#include "relational/bitmap_select.h"
#include "relational/btree_select.h"
#include "relational/hash_join.h"
#include "relational/star_join.h"

namespace paradise {

std::string_view EngineKindToString(EngineKind kind) {
  switch (kind) {
    case EngineKind::kArray:
      return "array";
    case EngineKind::kStarJoin:
      return "starjoin";
    case EngineKind::kBitmap:
      return "bitmap";
    case EngineKind::kLeftDeep:
      return "leftdeep";
    case EngineKind::kBTreeSelect:
      return "btreeselect";
  }
  return "unknown";
}

std::string_view CacheOutcomeToString(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kOff:
      return "off";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kDerived:
      return "derived";
  }
  return "unknown";
}

namespace {

/// Whether the uncached `kind` run would accept this query at all. A cached
/// answer must never mask the error an engine run would have reported —
/// e.g. the bitmap plan rejects selection-free queries and queries on
/// unindexed columns even though the cached result would be correct.
Status CachedQueryServable(Database* db, EngineKind kind,
                           const query::ConsolidationQuery& q) {
  std::vector<size_t> dim_cols;
  dim_cols.reserve(db->schema().dims.size());
  for (const DimensionSpec& d : db->schema().dims) {
    dim_cols.push_back(d.attrs.size());
  }
  PARADISE_RETURN_IF_ERROR(q.Validate(dim_cols));
  const size_t measure_col = q.dims.size() + q.measure;
  if (measure_col >= db->fact_schema().num_columns()) {
    return Status::InvalidArgument("measure index out of range");
  }
  switch (kind) {
    case EngineKind::kArray:
      if (!db->has_olap()) {
        return Status::InvalidArgument("database has no OLAP array");
      }
      break;
    case EngineKind::kBitmap: {
      if (!q.HasSelection()) {
        return Status::InvalidArgument(
            "bitmap algorithm requires at least one selection");
      }
      for (size_t d = 0; d < q.dims.size(); ++d) {
        for (const query::Selection& s : q.dims[d].selections) {
          if (d >= db->bitmap_indexes().size() ||
              s.attr_col >= db->bitmap_indexes()[d].size() ||
              db->bitmap_indexes()[d][s.attr_col] == nullptr) {
            return Status::InvalidArgument(
                "no bitmap index on dimension " + db->dim(d).name() +
                " column " + std::to_string(s.attr_col));
          }
        }
      }
      break;
    }
    case EngineKind::kBTreeSelect: {
      if (!q.HasSelection()) {
        return Status::InvalidArgument(
            "B-tree selection plan requires at least one selection");
      }
      for (size_t d = 0; d < q.dims.size(); ++d) {
        for (const query::Selection& s : q.dims[d].selections) {
          if (d >= db->btree_join_roots().size() ||
              s.attr_col >= db->btree_join_roots()[d].size() ||
              db->btree_join_roots()[d][s.attr_col] == kInvalidPageId) {
            return Status::InvalidArgument(
                "no B-tree join index on dimension " + db->dim(d).name() +
                " column " + std::to_string(s.attr_col));
          }
        }
      }
      break;
    }
    case EngineKind::kStarJoin:
    case EngineKind::kLeftDeep:
      break;
  }
  return Status::OK();
}

Result<Execution> RunQueryImpl(Database* db, EngineKind kind,
                               const query::ConsolidationQuery& q,
                               const RunQueryOptions& options) {
  if (options.num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (options.cancel != nullptr) {
    // A query that is already cancelled or expired must not touch the
    // storage layer at all (not even the cold-buffer drop).
    PARADISE_RETURN_IF_ERROR(options.cancel->Check());
  }
  if (kind != EngineKind::kArray && db->ingested()) {
    // Incremental ingest maintains the OLAP array only; the relational fact
    // file stopped reflecting the data at the first ingest commit. Refuse
    // loudly rather than aggregate stale tuples. Placed before the cache
    // path so a cached pre-ingest answer cannot mask the gate either.
    return Status::NotSupported(
        "engine '" + std::string(EngineKindToString(kind)) +
        "' reads the relational fact file, which is stale after incremental "
        "ingest; use the array engine");
  }
  // Pin the (epoch, array-version) snapshot once per query: everything
  // below — cache keying, scan planning, chunk decoding — reads this copy,
  // so concurrent ingest commits and compactions can publish freely without
  // ever tearing or blocking this query.
  std::optional<Database::PinnedArray> pin;
  if (kind == EngineKind::kArray && db->has_olap()) {
    pin.emplace(db->PinArray());
  }
  Execution exec;
  if (options.trace) {
    exec.stats.trace = std::make_shared<ExecutionTrace>(
        "query:" + std::string(EngineKindToString(kind)));
    // Every ScopedPhase the engines open on the coordinator thread now also
    // records a trace span; worker threads use sink-less scratch timers.
    exec.stats.phases.set_trace(exec.stats.trace.get());
  }
  query::ConsolidationResultCache* const cache = options.cache;
  std::string cache_scope;
  uint64_t cache_epoch = 0;
  query::CanonicalQuery canon;
  if (cache != nullptr) {
    PARADISE_RETURN_IF_ERROR(CachedQueryServable(db, kind, q));
    cache_scope = db->CacheScope();
    // Key cache traffic by the epoch the result is actually computed
    // against. With a pin that is pin->epoch — even when the caller asked
    // for cache_pin_epoch: if a commit slipped in between the caller's
    // epoch check and PinArray(), filing the (new-epoch) result under the
    // caller's older epoch would poison pinned-snapshot reads.
    cache_epoch = pin.has_value()
                      ? pin->epoch
                      : options.cache_pin_epoch.value_or(db->commit_epoch());
    canon = query::CanonicalQuery::From(q);
    Stopwatch cache_watch;
    exec.stats.cache_outcome = CacheOutcome::kMiss;
    std::shared_ptr<const query::GroupedResult> hit;
    {
      ScopedPhase phase(&exec.stats.phases, "cache-lookup");
      hit = cache->Lookup(cache_scope, cache_epoch, canon);
    }
    if (hit == nullptr && db->has_olap()) {
      // Roll-up derivation: re-aggregate a cached finer-level result of the
      // same selection family through the IndexToIndex maps. Candidates come
      // cheapest-first, so the first one past the cost gate that proves
      // functional wins; a too-expensive candidate ends the scan.
      ScopedPhase phase(&exec.stats.phases, "cache-derive");
      std::vector<const IndexToIndexArray*> i2i;
      for (size_t d = 0; d < db->olap()->num_dims(); ++d) {
        i2i.push_back(&db->olap()->i2i(d));
      }
      for (const query::ConsolidationResultCache::Candidate& cand :
           cache->DerivationCandidates(cache_scope, cache_epoch, canon)) {
        const DeriveDecision decision = ChooseDeriveOrScan(
            *db, cand.result->num_groups(), cache->options().derive_row_cost);
        if (!decision.derive) break;
        Result<GroupSpec> spec = GroupSpec::Make(*db->olap(), q);
        if (!spec.ok()) break;
        std::optional<query::GroupedResult> derived =
            query::RollUpCachedResult(canon, cand, i2i,
                                      spec->GroupColumnNames(*db->olap()));
        if (!derived.has_value()) continue;  // not functional at this level
        cache->NoteDerivedHit();
        auto shared = std::make_shared<const query::GroupedResult>(
            std::move(*derived));
        cache->Insert(cache_scope, cache_epoch, canon, shared);
        hit = std::move(shared);
        exec.stats.cache_outcome = CacheOutcome::kDerived;
        exec.stats.cache_source_rows = cand.result->num_groups();
        break;
      }
    }
    if (hit != nullptr) {
      exec.result = *hit;
      if (exec.stats.cache_outcome != CacheOutcome::kDerived) {
        exec.stats.cache_outcome = CacheOutcome::kHit;
        exec.stats.cache_source_rows = hit->num_groups();
      }
      // A cache hit never touches the storage layer: no cold drop, zero
      // buffer-pool delta.
      exec.stats.seconds = cache_watch.ElapsedSeconds();
      if (exec.stats.trace != nullptr) {
        exec.stats.phases.set_trace(nullptr);
        exec.stats.trace->Finish();
      }
      return exec;
    }
  }
  if (options.cold) {
    TraceScope drop_span(exec.stats.trace.get(), "drop-caches");
    PARADISE_RETURN_IF_ERROR(db->DropCaches());
  }
  const BufferPoolStats before = db->storage()->pool()->stats();
  Stopwatch watch;

  switch (kind) {
    case EngineKind::kArray: {
      if (!db->has_olap()) {
        return Status::InvalidArgument("database has no OLAP array");
      }
      // Record which decode kernel this query's consolidation dispatches —
      // in the stats, as a zero-length marker span in the trace, and (when
      // metrics are on) as a kernel.dispatch.<isa> counter — so a speedup
      // or a regression is attributable to the ISA from any surface.
      const kernels::Isa isa = kernels::ActiveIsa();
      exec.stats.kernel_isa = std::string(kernels::IsaName(isa));
      { TraceScope kernel_span(exec.stats.trace.get(),
                               "kernel:" + exec.stats.kernel_isa); }
      if (db->storage()->options().metrics_enabled) {
        MetricsRegistry::Default()
            .GetCounter("kernel.dispatch." + exec.stats.kernel_isa)
            ->Increment();
      }
      // All array engines run against the pinned snapshot, never the live
      // Database instance.
      const OlapArray& olap = pin->array;
      const size_t threads = options.num_threads;
      if (q.HasSelection()) {
        ArraySelectStats stats;
        ArraySelectOptions select_options;
        select_options.cancel = options.cancel;
        if (threads > 1) {
          PARADISE_ASSIGN_OR_RETURN(
              exec.result, ParallelArrayConsolidateWithSelection(
                               olap, q, threads, &exec.stats.phases,
                               &stats, nullptr, select_options));
        } else {
          PARADISE_ASSIGN_OR_RETURN(
              exec.result, ArrayConsolidateWithSelection(
                               olap, q, &exec.stats.phases, &stats,
                               select_options));
        }
        exec.stats.aux = stats.chunks_read;
      } else if (threads > 1) {
        ParallelConsolidateStats stats;
        PARADISE_ASSIGN_OR_RETURN(
            exec.result, ParallelArrayConsolidate(olap, q, threads,
                                                  &exec.stats.phases, &stats,
                                                  options.cancel));
        exec.stats.aux = stats.chunks_read;
      } else {
        ArrayConsolidateStats stats;
        PARADISE_ASSIGN_OR_RETURN(
            exec.result,
            ArrayConsolidate(olap, q, &exec.stats.phases, &stats,
                             options.cancel));
        exec.stats.aux = stats.chunks_read;
      }
      break;
    }
    case EngineKind::kStarJoin: {
      StarJoinParams params;
      params.fact = db->fact();
      params.fact_schema = &db->fact_schema();
      params.dims = db->DimPointers();
      params.query = &q;
      params.timer = &exec.stats.phases;
      PARADISE_ASSIGN_OR_RETURN(exec.result, StarJoinConsolidate(params));
      break;
    }
    case EngineKind::kBitmap: {
      BitmapSelectParams params;
      params.fact = db->fact();
      params.fact_schema = &db->fact_schema();
      params.dims = db->DimPointers();
      params.bitmap_indexes = &db->bitmap_indexes();
      params.query = &q;
      params.timer = &exec.stats.phases;
      params.result_bits = &exec.stats.aux;
      PARADISE_ASSIGN_OR_RETURN(exec.result, BitmapSelectConsolidate(params));
      break;
    }
    case EngineKind::kLeftDeep: {
      LeftDeepJoinParams params;
      params.fact = db->fact();
      params.fact_schema = &db->fact_schema();
      params.dims = db->DimPointers();
      params.query = &q;
      params.timer = &exec.stats.phases;
      params.intermediate_rows = &exec.stats.aux;
      PARADISE_ASSIGN_OR_RETURN(exec.result, LeftDeepJoinConsolidate(params));
      break;
    }
    case EngineKind::kBTreeSelect: {
      BTreeSelectParams params;
      params.fact = db->fact();
      params.fact_schema = &db->fact_schema();
      params.dims = db->DimPointers();
      params.join_index_roots = &db->btree_join_roots();
      params.pool = db->storage()->pool();
      params.query = &q;
      params.timer = &exec.stats.phases;
      params.result_tuples = &exec.stats.aux;
      PARADISE_ASSIGN_OR_RETURN(exec.result, BTreeSelectConsolidate(params));
      break;
    }
  }

  exec.stats.seconds = watch.ElapsedSeconds();
  exec.stats.io = db->storage()->pool()->stats().Delta(before);
  if (cache != nullptr) {
    cache->Insert(cache_scope, cache_epoch, canon,
                  std::make_shared<const query::GroupedResult>(exec.result));
  }
  if (exec.stats.trace != nullptr) {
    exec.stats.phases.set_trace(nullptr);
    exec.stats.trace->Finish();
  }
  return exec;
}

}  // namespace

std::string ExecutionStats::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.KV("seconds", seconds);
  w.KV("modeled_seconds", ModeledSeconds());
  w.KV("aux", aux);
  w.KV("kernel_isa", kernel_isa);
  w.Key("io");
  w.BeginObject();
  w.KV("logical_reads", io.logical_reads);
  w.KV("hits", io.hits);
  w.KV("disk_reads", io.disk_reads);
  w.KV("seq_disk_reads", io.seq_disk_reads);
  w.KV("rand_disk_reads", io.rand_disk_reads);
  w.KV("disk_writes", io.disk_writes);
  w.KV("evictions", io.evictions);
  w.KV("read_retries", io.read_retries);
  w.KV("coalesced_reads", io.coalesced_reads);
  w.KV("prefetched", io.prefetched);
  w.KV("prefetch_hits", io.prefetch_hits);
  w.KV("prefetch_wasted", io.prefetch_wasted);
  w.EndObject();
  w.Key("phases");
  w.BeginObject();
  for (const auto& [phase, micros] : phases.Snapshot()) w.KV(phase, micros);
  w.EndObject();
  w.Key("cache");
  w.BeginObject();
  w.KV("outcome", CacheOutcomeToString(cache_outcome));
  w.KV("source_rows", cache_source_rows);
  w.EndObject();
  if (trace != nullptr) {
    w.Key("trace");
    w.Raw(trace->ToJson());
  }
  w.EndObject();
  return w.Take();
}

Result<Execution> RunQuery(Database* db, EngineKind kind,
                           const query::ConsolidationQuery& q, bool cold) {
  RunQueryOptions options;
  options.cold = cold;
  return RunQuery(db, kind, q, options);
}

Result<Execution> RunQuery(Database* db, EngineKind kind,
                           const query::ConsolidationQuery& q,
                           const RunQueryOptions& options) {
  Result<Execution> r = RunQueryImpl(db, kind, q, options);
  if (!r.ok()) {
    // Name the failing engine so a fault deep in the storage stack is
    // attributable from the top-level status alone. Corruption means the
    // file itself is damaged — point the operator at the offline checker.
    Status st = r.status().WithContext("engine " +
                                       std::string(EngineKindToString(kind)));
    if (st.IsCorruption()) {
      st = st.WithContext("database appears damaged; run `dbverify` on it");
    }
    return st;
  }
  return r;
}

}  // namespace paradise
