#include "query/engine.h"

#include "core/consolidate.h"
#include "core/consolidate_select.h"
#include "core/parallel.h"
#include "relational/bitmap_select.h"
#include "relational/btree_select.h"
#include "relational/hash_join.h"
#include "relational/star_join.h"

namespace paradise {

std::string_view EngineKindToString(EngineKind kind) {
  switch (kind) {
    case EngineKind::kArray:
      return "array";
    case EngineKind::kStarJoin:
      return "starjoin";
    case EngineKind::kBitmap:
      return "bitmap";
    case EngineKind::kLeftDeep:
      return "leftdeep";
    case EngineKind::kBTreeSelect:
      return "btreeselect";
  }
  return "unknown";
}

namespace {

Result<Execution> RunQueryImpl(Database* db, EngineKind kind,
                               const query::ConsolidationQuery& q,
                               const RunQueryOptions& options) {
  if (options.cold) {
    PARADISE_RETURN_IF_ERROR(db->DropCaches());
  }
  if (options.num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  const BufferPoolStats before = db->storage()->pool()->stats();
  Execution exec;
  Stopwatch watch;

  switch (kind) {
    case EngineKind::kArray: {
      if (!db->has_olap()) {
        return Status::InvalidArgument("database has no OLAP array");
      }
      const size_t threads = options.num_threads;
      if (q.HasSelection()) {
        ArraySelectStats stats;
        if (threads > 1) {
          PARADISE_ASSIGN_OR_RETURN(
              exec.result, ParallelArrayConsolidateWithSelection(
                               *db->olap(), q, threads, &exec.stats.phases,
                               &stats));
        } else {
          PARADISE_ASSIGN_OR_RETURN(
              exec.result, ArrayConsolidateWithSelection(
                               *db->olap(), q, &exec.stats.phases, &stats));
        }
        exec.stats.aux = stats.chunks_read;
      } else if (threads > 1) {
        ParallelConsolidateStats stats;
        PARADISE_ASSIGN_OR_RETURN(
            exec.result, ParallelArrayConsolidate(*db->olap(), q, threads,
                                                  &exec.stats.phases, &stats));
        exec.stats.aux = stats.chunks_read;
      } else {
        ArrayConsolidateStats stats;
        PARADISE_ASSIGN_OR_RETURN(
            exec.result,
            ArrayConsolidate(*db->olap(), q, &exec.stats.phases, &stats));
        exec.stats.aux = stats.chunks_read;
      }
      break;
    }
    case EngineKind::kStarJoin: {
      StarJoinParams params;
      params.fact = db->fact();
      params.fact_schema = &db->fact_schema();
      params.dims = db->DimPointers();
      params.query = &q;
      params.timer = &exec.stats.phases;
      PARADISE_ASSIGN_OR_RETURN(exec.result, StarJoinConsolidate(params));
      break;
    }
    case EngineKind::kBitmap: {
      BitmapSelectParams params;
      params.fact = db->fact();
      params.fact_schema = &db->fact_schema();
      params.dims = db->DimPointers();
      params.bitmap_indexes = &db->bitmap_indexes();
      params.query = &q;
      params.timer = &exec.stats.phases;
      params.result_bits = &exec.stats.aux;
      PARADISE_ASSIGN_OR_RETURN(exec.result, BitmapSelectConsolidate(params));
      break;
    }
    case EngineKind::kLeftDeep: {
      LeftDeepJoinParams params;
      params.fact = db->fact();
      params.fact_schema = &db->fact_schema();
      params.dims = db->DimPointers();
      params.query = &q;
      params.timer = &exec.stats.phases;
      params.intermediate_rows = &exec.stats.aux;
      PARADISE_ASSIGN_OR_RETURN(exec.result, LeftDeepJoinConsolidate(params));
      break;
    }
    case EngineKind::kBTreeSelect: {
      BTreeSelectParams params;
      params.fact = db->fact();
      params.fact_schema = &db->fact_schema();
      params.dims = db->DimPointers();
      params.join_index_roots = &db->btree_join_roots();
      params.pool = db->storage()->pool();
      params.query = &q;
      params.timer = &exec.stats.phases;
      params.result_tuples = &exec.stats.aux;
      PARADISE_ASSIGN_OR_RETURN(exec.result, BTreeSelectConsolidate(params));
      break;
    }
  }

  exec.stats.seconds = watch.ElapsedSeconds();
  exec.stats.io = db->storage()->pool()->stats().Delta(before);
  return exec;
}

}  // namespace

Result<Execution> RunQuery(Database* db, EngineKind kind,
                           const query::ConsolidationQuery& q, bool cold) {
  RunQueryOptions options;
  options.cold = cold;
  return RunQuery(db, kind, q, options);
}

Result<Execution> RunQuery(Database* db, EngineKind kind,
                           const query::ConsolidationQuery& q,
                           const RunQueryOptions& options) {
  Result<Execution> r = RunQueryImpl(db, kind, q, options);
  if (!r.ok()) {
    // Name the failing engine so a fault deep in the storage stack is
    // attributable from the top-level status alone. Corruption means the
    // file itself is damaged — point the operator at the offline checker.
    Status st = r.status().WithContext("engine " +
                                       std::string(EngineKindToString(kind)));
    if (st.IsCorruption()) {
      st = st.WithContext("database appears damaged; run `dbverify` on it");
    }
    return st;
  }
  return r;
}

}  // namespace paradise
