#include "query/engine.h"

#include "common/json_writer.h"
#include "core/consolidate.h"
#include "core/consolidate_select.h"
#include "core/parallel.h"
#include "relational/bitmap_select.h"
#include "relational/btree_select.h"
#include "relational/hash_join.h"
#include "relational/star_join.h"

namespace paradise {

std::string_view EngineKindToString(EngineKind kind) {
  switch (kind) {
    case EngineKind::kArray:
      return "array";
    case EngineKind::kStarJoin:
      return "starjoin";
    case EngineKind::kBitmap:
      return "bitmap";
    case EngineKind::kLeftDeep:
      return "leftdeep";
    case EngineKind::kBTreeSelect:
      return "btreeselect";
  }
  return "unknown";
}

namespace {

Result<Execution> RunQueryImpl(Database* db, EngineKind kind,
                               const query::ConsolidationQuery& q,
                               const RunQueryOptions& options) {
  if (options.num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  Execution exec;
  if (options.trace) {
    exec.stats.trace = std::make_shared<ExecutionTrace>(
        "query:" + std::string(EngineKindToString(kind)));
    // Every ScopedPhase the engines open on the coordinator thread now also
    // records a trace span; worker threads use sink-less scratch timers.
    exec.stats.phases.set_trace(exec.stats.trace.get());
  }
  if (options.cold) {
    TraceScope drop_span(exec.stats.trace.get(), "drop-caches");
    PARADISE_RETURN_IF_ERROR(db->DropCaches());
  }
  const BufferPoolStats before = db->storage()->pool()->stats();
  Stopwatch watch;

  switch (kind) {
    case EngineKind::kArray: {
      if (!db->has_olap()) {
        return Status::InvalidArgument("database has no OLAP array");
      }
      const size_t threads = options.num_threads;
      if (q.HasSelection()) {
        ArraySelectStats stats;
        if (threads > 1) {
          PARADISE_ASSIGN_OR_RETURN(
              exec.result, ParallelArrayConsolidateWithSelection(
                               *db->olap(), q, threads, &exec.stats.phases,
                               &stats));
        } else {
          PARADISE_ASSIGN_OR_RETURN(
              exec.result, ArrayConsolidateWithSelection(
                               *db->olap(), q, &exec.stats.phases, &stats));
        }
        exec.stats.aux = stats.chunks_read;
      } else if (threads > 1) {
        ParallelConsolidateStats stats;
        PARADISE_ASSIGN_OR_RETURN(
            exec.result, ParallelArrayConsolidate(*db->olap(), q, threads,
                                                  &exec.stats.phases, &stats));
        exec.stats.aux = stats.chunks_read;
      } else {
        ArrayConsolidateStats stats;
        PARADISE_ASSIGN_OR_RETURN(
            exec.result,
            ArrayConsolidate(*db->olap(), q, &exec.stats.phases, &stats));
        exec.stats.aux = stats.chunks_read;
      }
      break;
    }
    case EngineKind::kStarJoin: {
      StarJoinParams params;
      params.fact = db->fact();
      params.fact_schema = &db->fact_schema();
      params.dims = db->DimPointers();
      params.query = &q;
      params.timer = &exec.stats.phases;
      PARADISE_ASSIGN_OR_RETURN(exec.result, StarJoinConsolidate(params));
      break;
    }
    case EngineKind::kBitmap: {
      BitmapSelectParams params;
      params.fact = db->fact();
      params.fact_schema = &db->fact_schema();
      params.dims = db->DimPointers();
      params.bitmap_indexes = &db->bitmap_indexes();
      params.query = &q;
      params.timer = &exec.stats.phases;
      params.result_bits = &exec.stats.aux;
      PARADISE_ASSIGN_OR_RETURN(exec.result, BitmapSelectConsolidate(params));
      break;
    }
    case EngineKind::kLeftDeep: {
      LeftDeepJoinParams params;
      params.fact = db->fact();
      params.fact_schema = &db->fact_schema();
      params.dims = db->DimPointers();
      params.query = &q;
      params.timer = &exec.stats.phases;
      params.intermediate_rows = &exec.stats.aux;
      PARADISE_ASSIGN_OR_RETURN(exec.result, LeftDeepJoinConsolidate(params));
      break;
    }
    case EngineKind::kBTreeSelect: {
      BTreeSelectParams params;
      params.fact = db->fact();
      params.fact_schema = &db->fact_schema();
      params.dims = db->DimPointers();
      params.join_index_roots = &db->btree_join_roots();
      params.pool = db->storage()->pool();
      params.query = &q;
      params.timer = &exec.stats.phases;
      params.result_tuples = &exec.stats.aux;
      PARADISE_ASSIGN_OR_RETURN(exec.result, BTreeSelectConsolidate(params));
      break;
    }
  }

  exec.stats.seconds = watch.ElapsedSeconds();
  exec.stats.io = db->storage()->pool()->stats().Delta(before);
  if (exec.stats.trace != nullptr) {
    exec.stats.phases.set_trace(nullptr);
    exec.stats.trace->Finish();
  }
  return exec;
}

}  // namespace

std::string ExecutionStats::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.KV("seconds", seconds);
  w.KV("modeled_seconds", ModeledSeconds());
  w.KV("aux", aux);
  w.Key("io");
  w.BeginObject();
  w.KV("logical_reads", io.logical_reads);
  w.KV("hits", io.hits);
  w.KV("disk_reads", io.disk_reads);
  w.KV("seq_disk_reads", io.seq_disk_reads);
  w.KV("rand_disk_reads", io.rand_disk_reads);
  w.KV("disk_writes", io.disk_writes);
  w.KV("evictions", io.evictions);
  w.KV("read_retries", io.read_retries);
  w.KV("coalesced_reads", io.coalesced_reads);
  w.KV("prefetched", io.prefetched);
  w.KV("prefetch_hits", io.prefetch_hits);
  w.KV("prefetch_wasted", io.prefetch_wasted);
  w.EndObject();
  w.Key("phases");
  w.BeginObject();
  for (const auto& [phase, micros] : phases.Snapshot()) w.KV(phase, micros);
  w.EndObject();
  if (trace != nullptr) {
    w.Key("trace");
    w.Raw(trace->ToJson());
  }
  w.EndObject();
  return w.Take();
}

Result<Execution> RunQuery(Database* db, EngineKind kind,
                           const query::ConsolidationQuery& q, bool cold) {
  RunQueryOptions options;
  options.cold = cold;
  return RunQuery(db, kind, q, options);
}

Result<Execution> RunQuery(Database* db, EngineKind kind,
                           const query::ConsolidationQuery& q,
                           const RunQueryOptions& options) {
  Result<Execution> r = RunQueryImpl(db, kind, q, options);
  if (!r.ok()) {
    // Name the failing engine so a fault deep in the storage stack is
    // attributable from the top-level status alone. Corruption means the
    // file itself is damaged — point the operator at the offline checker.
    Status st = r.status().WithContext("engine " +
                                       std::string(EngineKindToString(kind)));
    if (st.IsCorruption()) {
      st = st.WithContext("database appears damaged; run `dbverify` on it");
    }
    return st;
  }
  return r;
}

}  // namespace paradise
