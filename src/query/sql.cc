#include "query/sql.h"

#include <cctype>
#include <unordered_map>

namespace paradise::query {

namespace {

// ---------------------------------------------------------------- lexer ---

enum class TokenKind {
  kIdent,
  kString,
  kInteger,
  kComma,
  kDot,
  kLParen,
  kRParen,
  kEquals,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   // identifier (original case) or string contents
  int64_t integer = 0;
  size_t position = 0;  // byte offset, for error messages
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    for (;;) {
      SkipWhitespace();
      const size_t at = pos_;
      if (pos_ >= input_.size()) {
        tokens.push_back(Token{TokenKind::kEnd, "", 0, at});
        return tokens;
      }
      const char c = input_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdentifier());
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' &&
                  pos_ + 1 < input_.size() &&
                  std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
        PARADISE_ASSIGN_OR_RETURN(Token t, LexInteger());
        tokens.push_back(t);
      } else if (c == '\'' || c == '"') {
        PARADISE_ASSIGN_OR_RETURN(Token t, LexString());
        tokens.push_back(t);
      } else {
        TokenKind kind;
        switch (c) {
          case ',':
            kind = TokenKind::kComma;
            break;
          case '.':
            kind = TokenKind::kDot;
            break;
          case '(':
            kind = TokenKind::kLParen;
            break;
          case ')':
            kind = TokenKind::kRParen;
            break;
          case '=':
            kind = TokenKind::kEquals;
            break;
          case ';':
            kind = TokenKind::kSemicolon;
            break;
          default:
            return Status::InvalidArgument(
                "unexpected character '" + std::string(1, c) +
                "' at position " + std::to_string(at));
        }
        ++pos_;
        tokens.push_back(Token{kind, std::string(1, c), 0, at});
      }
    }
  }

 private:
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  Token LexIdentifier() {
    const size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    return Token{TokenKind::kIdent,
                 std::string(input_.substr(start, pos_ - start)), 0, start};
  }

  Result<Token> LexInteger() {
    const size_t start = pos_;
    if (input_[pos_] == '-') ++pos_;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    Token t{TokenKind::kInteger,
            std::string(input_.substr(start, pos_ - start)), 0, start};
    try {
      t.integer = std::stoll(t.text);
    } catch (...) {
      return Status::InvalidArgument("integer literal out of range at " +
                                     std::to_string(start));
    }
    return t;
  }

  Result<Token> LexString() {
    const char quote = input_[pos_];
    const size_t start = pos_++;
    std::string contents;
    while (pos_ < input_.size() && input_[pos_] != quote) {
      contents.push_back(input_[pos_++]);
    }
    if (pos_ >= input_.size()) {
      return Status::InvalidArgument("unterminated string literal at " +
                                     std::to_string(start));
    }
    ++pos_;  // closing quote
    return Token{TokenKind::kString, std::move(contents), 0, start};
  }

  std::string_view input_;
  size_t pos_ = 0;
};

std::string Lowered(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

// --------------------------------------------------------------- parser ---

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlQuery> Parse() {
    SqlQuery q;
    PARADISE_RETURN_IF_ERROR(ExpectKeyword("select"));
    PARADISE_RETURN_IF_ERROR(ParseSelectList(&q));
    PARADISE_RETURN_IF_ERROR(ExpectKeyword("from"));
    PARADISE_RETURN_IF_ERROR(ParseTableList(&q));
    if (AcceptKeyword("where")) {
      PARADISE_RETURN_IF_ERROR(ParseWhere(&q));
    }
    if (AcceptKeyword("group")) {
      PARADISE_RETURN_IF_ERROR(ExpectKeyword("by"));
      PARADISE_RETURN_IF_ERROR(ParseGroupBy(&q));
    }
    (void)Accept(TokenKind::kSemicolon);
    if (Peek().kind != TokenKind::kEnd) {
      return Unexpected("end of statement");
    }
    return q;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }

  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AcceptKeyword(std::string_view word) {
    if (Peek().kind == TokenKind::kIdent && Lowered(Peek().text) == word) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view word) {
    if (!AcceptKeyword(word)) {
      return Unexpected("'" + std::string(word) + "'");
    }
    return Status::OK();
  }

  Status Expect(TokenKind kind, const char* what) {
    if (!Accept(kind)) return Unexpected(what);
    return Status::OK();
  }

  Status Unexpected(const std::string& expected) const {
    return Status::InvalidArgument(
        "expected " + expected + " at position " +
        std::to_string(Peek().position) + ", found '" + Peek().text + "'");
  }

  Result<SqlColumn> ParseColumn() {
    if (Peek().kind != TokenKind::kIdent) {
      return Unexpected("a column name");
    }
    SqlColumn col;
    col.column = Peek().text;
    ++pos_;
    if (Accept(TokenKind::kDot)) {
      if (Peek().kind != TokenKind::kIdent) {
        return Unexpected("a column name after '.'");
      }
      col.table = col.column;
      col.column = Peek().text;
      ++pos_;
    }
    return col;
  }

  static std::optional<AggFunc> AggFromName(std::string_view name) {
    const std::string lower = Lowered(name);
    if (lower == "sum") return AggFunc::kSum;
    if (lower == "count") return AggFunc::kCount;
    if (lower == "min") return AggFunc::kMin;
    if (lower == "max") return AggFunc::kMax;
    if (lower == "avg") return AggFunc::kAvg;
    return std::nullopt;
  }

  Status ParseSelectList(SqlQuery* q) {
    bool saw_agg = false;
    do {
      if (Peek().kind == TokenKind::kIdent &&
          pos_ + 1 < tokens_.size() &&
          tokens_[pos_ + 1].kind == TokenKind::kLParen &&
          AggFromName(Peek().text).has_value()) {
        if (saw_agg) {
          return Status::InvalidArgument(
              "only one aggregate is supported in the select list");
        }
        saw_agg = true;
        q->agg = *AggFromName(Peek().text);
        ++pos_;  // agg name
        ++pos_;  // '('
        if (Peek().kind != TokenKind::kIdent) {
          return Unexpected("the measure column inside the aggregate");
        }
        q->agg_argument = Peek().text;
        ++pos_;
        PARADISE_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      } else {
        PARADISE_ASSIGN_OR_RETURN(SqlColumn col, ParseColumn());
        q->select_columns.push_back(std::move(col));
      }
    } while (Accept(TokenKind::kComma));
    if (!saw_agg) {
      return Status::InvalidArgument(
          "select list must contain one aggregate, e.g. sum(volume)");
    }
    return Status::OK();
  }

  Status ParseTableList(SqlQuery* q) {
    do {
      if (Peek().kind != TokenKind::kIdent) return Unexpected("a table name");
      q->tables.push_back(Peek().text);
      ++pos_;
    } while (Accept(TokenKind::kComma));
    return Status::OK();
  }

  Result<Literal> ParseLiteral() {
    if (Peek().kind == TokenKind::kString) {
      Literal lit{tokens_[pos_].text};
      ++pos_;
      return lit;
    }
    if (Peek().kind == TokenKind::kInteger) {
      Literal lit{tokens_[pos_].integer};
      ++pos_;
      return lit;
    }
    return Unexpected("a literal");
  }

  Status ParseWhere(SqlQuery* q) {
    do {
      SqlPredicate pred;
      PARADISE_ASSIGN_OR_RETURN(pred.lhs, ParseColumn());
      if (AcceptKeyword("in")) {
        PARADISE_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
        do {
          PARADISE_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
          pred.values.push_back(std::move(lit));
        } while (Accept(TokenKind::kComma));
        PARADISE_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      } else {
        PARADISE_RETURN_IF_ERROR(Expect(TokenKind::kEquals, "'=' or IN"));
        if (Peek().kind == TokenKind::kIdent) {
          PARADISE_ASSIGN_OR_RETURN(SqlColumn rhs, ParseColumn());
          pred.rhs_column = std::move(rhs);
        } else {
          PARADISE_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
          pred.values.push_back(std::move(lit));
        }
      }
      q->predicates.push_back(std::move(pred));
    } while (AcceptKeyword("and"));
    return Status::OK();
  }

  Status ParseGroupBy(SqlQuery* q) {
    do {
      PARADISE_ASSIGN_OR_RETURN(SqlColumn col, ParseColumn());
      q->group_by.push_back(std::move(col));
    } while (Accept(TokenKind::kComma));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// --------------------------------------------------------------- binder ---

/// Resolved location of a column: dimension index + column index, or the
/// measure, or a fact foreign-key column.
struct ResolvedColumn {
  enum class Kind { kDimensionAttr, kDimensionKey, kMeasure, kFactKey };
  Kind kind;
  size_t dim = 0;  // for kDimensionAttr / kDimensionKey / kFactKey
  size_t col = 0;  // for kDimensionAttr (column within the dimension schema)
};

class Binder {
 public:
  explicit Binder(const StarSchema& schema) : schema_(schema) {
    for (size_t d = 0; d < schema.dims.size(); ++d) {
      dim_by_name_[Lowered(schema.dims[d].name)] = d;
    }
  }

  Result<ConsolidationQuery> Bind(const SqlQuery& parsed) {
    PARADISE_RETURN_IF_ERROR(CheckTables(parsed));
    ConsolidationQuery q;
    q.dims.resize(schema_.dims.size());
    q.agg = parsed.agg;

    bool measure_found = false;
    for (size_t m = 0; m < schema_.measures.size(); ++m) {
      if (Lowered(parsed.agg_argument) == Lowered(schema_.measures[m])) {
        q.measure = m;
        measure_found = true;
        break;
      }
    }
    if (!measure_found) {
      return Status::InvalidArgument("aggregate argument '" +
                                     parsed.agg_argument +
                                     "' is not a measure of the cube");
    }

    for (const SqlColumn& col : parsed.group_by) {
      PARADISE_ASSIGN_OR_RETURN(ResolvedColumn r, Resolve(col));
      if (r.kind != ResolvedColumn::Kind::kDimensionAttr) {
        return Status::InvalidArgument("GROUP BY column " + col.ToString() +
                                       " is not a dimension attribute");
      }
      if (q.dims[r.dim].group_by_col.has_value() &&
          *q.dims[r.dim].group_by_col != r.col) {
        return Status::NotSupported(
            "grouping one dimension at two levels is not supported");
      }
      q.dims[r.dim].group_by_col = r.col;
    }

    for (const SqlPredicate& pred : parsed.predicates) {
      PARADISE_ASSIGN_OR_RETURN(ResolvedColumn lhs, Resolve(pred.lhs));
      if (pred.rhs_column.has_value()) {
        PARADISE_RETURN_IF_ERROR(CheckJoin(pred, lhs));
        continue;  // the star join is implicit
      }
      if (lhs.kind != ResolvedColumn::Kind::kDimensionAttr) {
        return Status::InvalidArgument(
            "selection on " + pred.lhs.ToString() +
            ", which is not a dimension attribute");
      }
      q.dims[lhs.dim].selections.push_back(
          Selection{lhs.col, pred.values});
    }

    // Every plain select column must be grouped (SQL's usual rule).
    for (const SqlColumn& col : parsed.select_columns) {
      PARADISE_ASSIGN_OR_RETURN(ResolvedColumn r, Resolve(col));
      if (r.kind != ResolvedColumn::Kind::kDimensionAttr ||
          q.dims[r.dim].group_by_col != r.col) {
        return Status::InvalidArgument("select column " + col.ToString() +
                                       " does not appear in GROUP BY");
      }
    }

    std::vector<size_t> dim_cols;
    for (const DimensionSpec& d : schema_.dims) {
      dim_cols.push_back(d.attrs.size());
    }
    PARADISE_RETURN_IF_ERROR(q.Validate(dim_cols));
    return q;
  }

 private:
  Status CheckTables(const SqlQuery& parsed) const {
    for (const std::string& table : parsed.tables) {
      const std::string lower = Lowered(table);
      if (lower == Lowered(schema_.cube_name) || lower == "fact" ||
          dim_by_name_.contains(lower)) {
        continue;
      }
      return Status::NotFound("unknown table '" + table + "'");
    }
    return Status::OK();
  }

  Result<ResolvedColumn> Resolve(const SqlColumn& col) const {
    const std::string name = Lowered(col.column);
    if (col.table.has_value()) {
      const std::string table = Lowered(*col.table);
      if (table == Lowered(schema_.cube_name) || table == "fact") {
        return ResolveFactColumn(name, col);
      }
      auto it = dim_by_name_.find(table);
      if (it == dim_by_name_.end()) {
        return Status::NotFound("unknown table '" + *col.table + "'");
      }
      return ResolveInDimension(it->second, name, col);
    }
    // Unqualified: measure, else search all dimensions; must be unique.
    for (size_t m = 0; m < schema_.measures.size(); ++m) {
      if (name == Lowered(schema_.measures[m])) {
        return ResolvedColumn{ResolvedColumn::Kind::kMeasure, 0, m};
      }
    }
    std::optional<ResolvedColumn> found;
    for (size_t d = 0; d < schema_.dims.size(); ++d) {
      Result<ResolvedColumn> r = ResolveInDimension(d, name, col);
      if (!r.ok()) continue;
      if (found.has_value()) {
        return Status::InvalidArgument("ambiguous column '" + col.column +
                                       "'; qualify it with a table name");
      }
      found = *r;
    }
    if (!found.has_value()) {
      return Status::NotFound("unknown column '" + col.column + "'");
    }
    return *found;
  }

  Result<ResolvedColumn> ResolveFactColumn(const std::string& name,
                                           const SqlColumn& col) const {
    for (size_t m = 0; m < schema_.measures.size(); ++m) {
      if (name == Lowered(schema_.measures[m])) {
        return ResolvedColumn{ResolvedColumn::Kind::kMeasure, 0, m};
      }
    }
    for (size_t d = 0; d < schema_.dims.size(); ++d) {
      if (Lowered(schema_.dims[d].attrs[0].name) == name) {
        return ResolvedColumn{ResolvedColumn::Kind::kFactKey, d, 0};
      }
    }
    return Status::NotFound("unknown fact column '" + col.column + "'");
  }

  Result<ResolvedColumn> ResolveInDimension(size_t d, const std::string& name,
                                            const SqlColumn& col) const {
    const DimensionSpec& spec = schema_.dims[d];
    for (size_t c = 0; c < spec.attrs.size(); ++c) {
      if (Lowered(spec.attrs[c].name) == name) {
        return ResolvedColumn{c == 0 ? ResolvedColumn::Kind::kDimensionKey
                                     : ResolvedColumn::Kind::kDimensionAttr,
                              d, c};
      }
    }
    return Status::NotFound("no column '" + col.column + "' in dimension '" +
                            spec.name + "'");
  }

  Status CheckJoin(const SqlPredicate& pred, const ResolvedColumn& lhs) const {
    PARADISE_ASSIGN_OR_RETURN(ResolvedColumn rhs, Resolve(*pred.rhs_column));
    auto is_key = [](const ResolvedColumn& r) {
      return r.kind == ResolvedColumn::Kind::kFactKey ||
             r.kind == ResolvedColumn::Kind::kDimensionKey;
    };
    if (!is_key(lhs) || !is_key(rhs) || lhs.dim != rhs.dim ||
        lhs.kind == rhs.kind) {
      return Status::NotSupported(
          "only star-join predicates (fact key = dimension key) are "
          "supported: " + pred.lhs.ToString() + " = " +
          pred.rhs_column->ToString());
    }
    return Status::OK();
  }

  const StarSchema& schema_;
  std::unordered_map<std::string, size_t> dim_by_name_;
};

}  // namespace

Result<SqlQuery> ParseSql(std::string_view sql) {
  Lexer lexer(sql);
  PARADISE_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<ConsolidationQuery> BindSql(const SqlQuery& parsed,
                                   const StarSchema& schema) {
  Binder binder(schema);
  return binder.Bind(parsed);
}

Result<ConsolidationQuery> CompileSql(std::string_view sql,
                                      const StarSchema& schema) {
  PARADISE_ASSIGN_OR_RETURN(SqlQuery parsed, ParseSql(sql));
  return BindSql(parsed, schema);
}

}  // namespace paradise::query
