// GroupedResult: the canonical result container both engines produce, keyed
// by dense group codes (one int32 per grouped dimension, in dimension
// order). The integration tests assert byte-for-byte equality between the
// array engine and the relational engines on the same query.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "query/query.h"

namespace paradise::query {

/// Running aggregate state. All of SUM/COUNT/MIN/MAX are maintained so one
/// pass serves every AggFunc; Finalize picks the requested one.
struct AggState {
  int64_t sum = 0;
  uint64_t count = 0;
  int64_t min = std::numeric_limits<int64_t>::max();
  int64_t max = std::numeric_limits<int64_t>::min();

  void Add(int64_t v) {
    sum += v;
    ++count;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  void Merge(const AggState& o) {
    sum += o.sum;
    count += o.count;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }

  /// The requested aggregate as a double (AVG is fractional).
  double Finalize(AggFunc f) const;

  bool operator==(const AggState& o) const {
    return sum == o.sum && count == o.count && min == o.min && max == o.max;
  }
};

struct ResultRow {
  std::vector<int32_t> group;  // dense codes, one per grouped dimension
  AggState agg;
};

class GroupedResult {
 public:
  GroupedResult() = default;
  explicit GroupedResult(std::vector<std::string> group_columns)
      : group_columns_(std::move(group_columns)) {}

  void Add(ResultRow row) { rows_.push_back(std::move(row)); }

  /// Sorts rows lexicographically by group vector; call before comparing.
  void SortCanonical();

  const std::vector<ResultRow>& rows() const { return rows_; }
  std::vector<ResultRow>* mutable_rows() { return &rows_; }
  const std::vector<std::string>& group_columns() const {
    return group_columns_;
  }
  size_t num_groups() const { return rows_.size(); }

  /// Exact equality of groups and full aggregate state. Both results must
  /// already be in canonical order.
  bool SameAs(const GroupedResult& other) const;

  /// Human-readable table, at most `max_rows` rows.
  std::string ToString(AggFunc f, size_t max_rows = 20) const;

  /// Grand total of sums across groups (cheap sanity invariant: equals the
  /// sum over all selected cells regardless of grouping).
  int64_t TotalSum() const;

 private:
  std::vector<std::string> group_columns_;
  std::vector<ResultRow> rows_;
};

}  // namespace paradise::query
