// ConsolidationResultCache: a memory-bounded, epoch-invalidated result cache
// for consolidation queries — the query-level caching layer Szépkúti's
// "Caching in Multidimensional Databases" motivates for OLAP workloads
// dominated by repeated and hierarchically related consolidations.
//
// Three ideas, layered:
//   1. Canonical signatures. Every ConsolidationQuery is normalized into a
//      CanonicalQuery (selections merged per attribute column, value lists
//      normalized/deduped/sorted, the aggregate function dropped — engines
//      maintain the full AggState, so SUM/COUNT/MIN/MAX/AVG of the same
//      grouping share one cached result). Equivalent spellings of a query
//      hash to the same signature.
//   2. Roll-up derivability. A cached result at a finer hierarchy level can
//      answer any coarser group-by of the same selection/measure by
//      re-aggregating its rows through the per-dimension IndexToIndex maps
//      (paper §3.4), when the data satisfies the finer→coarser functional
//      dependency (IndexToIndexArray::FunctionalRollUp). Because AggState
//      carries SUM/COUNT/MIN/MAX exactly, derived results are bit-identical
//      to a full scan.
//   3. Invalidation by commit epoch. Entries are scoped to a database
//      identity string and the commit epoch of the manifest that was current
//      when they were inserted (storage/page.h, PR 2). Any durable change
//      advances the epoch, so a lookup after a reload/checkpoint of modified
//      data can never serve a stale result.
//
// The cache is thread-safe (one mutex guards the LRU list and index; cached
// results are immutable shared_ptrs) and memory-bounded: entries are charged
// an approximate byte cost and the least recently used entries are evicted
// once the budget is exceeded. Hit/miss/derivation/eviction counts feed the
// process-wide MetricsRegistry under "resultcache.*".
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "query/query.h"
#include "query/result.h"

namespace paradise {
class Counter;
class Gauge;
class Histogram;
class IndexToIndexArray;
}  // namespace paradise

namespace paradise::query {

/// One dimension of a canonicalized query: the group-by column plus the
/// selections merged per attribute column. Multiple ANDed selections on the
/// same column intersect to one normalized, sorted, deduplicated value set
/// (an empty set after intersection is kept — it selects nothing, exactly
/// like the engines' AND of disjoint value lists).
struct CanonicalDimension {
  std::optional<size_t> group_by_col;
  /// (attr_col, sorted distinct normalized values), sorted by attr_col.
  std::vector<std::pair<size_t, std::vector<int64_t>>> selections;

  bool operator==(const CanonicalDimension& o) const = default;
};

/// Canonical form of a ConsolidationQuery. Two queries with equal canonical
/// forms produce byte-identical GroupedResults on every engine.
struct CanonicalQuery {
  size_t measure = 0;
  std::vector<CanonicalDimension> dims;

  static CanonicalQuery From(const ConsolidationQuery& q);

  /// Deterministic textual signature; equal signatures iff equal canonical
  /// queries. Human-readable on purpose (shows up in tests and traces):
  ///   "m0|d0:g1;s1{3,17};s2{5}|d1:g-|d2:g2"
  std::string Signature() const;

  /// True when this query's selections and measure equal `o`'s — the
  /// precondition for answering one from the other by roll-up.
  bool SameSelectionFamily(const CanonicalQuery& o) const;

  bool operator==(const CanonicalQuery& o) const = default;
};

/// Monotonic cache statistics (snapshot; advisory under concurrency).
struct ResultCacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t derived_hits = 0;   // answered by roll-up from a finer entry
  uint64_t insertions = 0;
  uint64_t evictions = 0;      // LRU byte-budget evictions
  uint64_t invalidations = 0;  // entries dropped on commit-epoch mismatch
  uint64_t bytes_in_use = 0;
  uint64_t entries = 0;
};

class ConsolidationResultCache {
 public:
  struct Options {
    /// LRU byte budget over the approximate cost of all cached results.
    size_t byte_budget = 64ull << 20;

    /// Cost model factor for the planner's derive-vs-scan decision: deriving
    /// re-aggregates one cached row for roughly this many cell-scan units.
    /// 0 means "always derive when structurally possible" (used by the
    /// equivalence tests to force the derivation path).
    uint64_t derive_row_cost = 4;

    /// Mirror cache events into MetricsRegistry::Default() under
    /// "resultcache.*" (handles resolved once, at construction).
    bool metrics_enabled = false;
  };

  ConsolidationResultCache();
  explicit ConsolidationResultCache(Options options);

  ConsolidationResultCache(const ConsolidationResultCache&) = delete;
  ConsolidationResultCache& operator=(const ConsolidationResultCache&) =
      delete;

  /// Exact-signature lookup. `scope` identifies the database+cube the query
  /// runs against; `epoch` is its current commit epoch. An entry whose
  /// epoch differs is dropped (counted as an invalidation) and the lookup
  /// misses. A hit refreshes LRU order and returns the immutable result.
  std::shared_ptr<const GroupedResult> Lookup(const std::string& scope,
                                              uint64_t epoch,
                                              const CanonicalQuery& canon);

  /// Like Lookup, but an epoch mismatch leaves the entry in place instead of
  /// dropping it. For readers pinned to a historical epoch (olapd's
  /// epoch-pinned sessions, server/session.h): a pinned reader must never
  /// invalidate the entry current-epoch traffic is using, and its own
  /// entries are reclaimed by normal Lookup invalidation or LRU pressure.
  std::shared_ptr<const GroupedResult> Peek(const std::string& scope,
                                            uint64_t epoch,
                                            const CanonicalQuery& canon);

  /// Inserts (or replaces) the result for a canonical query. Entries larger
  /// than the whole budget are rejected silently; otherwise LRU entries are
  /// evicted until the new entry fits.
  void Insert(const std::string& scope, uint64_t epoch,
              const CanonicalQuery& canon,
              std::shared_ptr<const GroupedResult> result);

  /// A cached entry that could answer `target` by roll-up: same scope,
  /// epoch, measure and selections, and grouped on every dimension `target`
  /// groups (at any level — the caller checks level derivability against the
  /// IndexToIndex maps). Ordered cheapest first (fewest rows).
  struct Candidate {
    CanonicalQuery canon;
    std::shared_ptr<const GroupedResult> result;
  };
  std::vector<Candidate> DerivationCandidates(const std::string& scope,
                                              uint64_t epoch,
                                              const CanonicalQuery& target);

  /// Records a successful derivation (metrics + counters only; the derived
  /// result itself is Insert()ed under its own signature by the caller).
  void NoteDerivedHit();

  ResultCacheStats stats() const;
  const Options& options() const { return options_; }

  /// Drops every entry (counts them as invalidations).
  void Clear();

 private:
  struct Entry {
    std::string key;  // scope + '\n' + signature
    std::string scope;
    uint64_t epoch = 0;
    CanonicalQuery canon;
    std::shared_ptr<const GroupedResult> result;
    size_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  /// Approximate heap footprint of a cached result (rows, group vectors,
  /// key). The bound is deliberately simple — the budget is a guardrail,
  /// not an allocator.
  static size_t EntryBytes(const std::string& key, const GroupedResult& r);

  void EvictToFitLocked(size_t incoming_bytes);
  void EraseLocked(LruList::iterator it, bool invalidation);

  const Options options_;

  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  ResultCacheStats stats_;

  // Registry handles, null unless options_.metrics_enabled.
  Counter* m_hits_ = nullptr;
  Counter* m_misses_ = nullptr;
  Counter* m_derived_ = nullptr;
  Counter* m_insertions_ = nullptr;
  Counter* m_evictions_ = nullptr;
  Counter* m_invalidations_ = nullptr;
  Gauge* m_bytes_ = nullptr;
  Gauge* m_entries_ = nullptr;
  Histogram* m_lookup_micros_ = nullptr;
};

/// Re-aggregates a cached finer-level result to answer `target`.
/// `candidate` must come from DerivationCandidates for `target`; `i2i[d]`
/// are the source cube's per-dimension IndexToIndex maps. Returns nullopt
/// when some grouped dimension's finer→coarser map is not functional (the
/// caller then falls back to a full scan). `columns` become the derived
/// result's group column labels, in grouped-dimension order.
std::optional<GroupedResult> RollUpCachedResult(
    const CanonicalQuery& target,
    const ConsolidationResultCache::Candidate& candidate,
    const std::vector<const IndexToIndexArray*>& i2i,
    std::vector<std::string> columns);

}  // namespace paradise::query
