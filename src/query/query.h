// ConsolidationQuery: the typed description of the paper's query template
// (§2.1) — a star join of the fact data with every dimension, per-dimension
// equality selections, a GROUP BY on one hierarchy attribute per dimension,
// and an aggregate over the measure. Both query engines execute this same
// description, which is how the paper's experiments are specified without a
// SQL front end (the paper's own ADT functions are invoked directly too).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace paradise::query {

/// A constant in a selection predicate: an integer or a string (strings are
/// normalized with StringPrefixKey when matched against dictionaries).
using Literal = std::variant<int64_t, std::string>;

/// Normalizes a literal to the int64 dictionary key form.
int64_t NormalizeLiteral(const Literal& lit);

std::string LiteralToString(const Literal& lit);

/// Equality selection on one dimension attribute: attribute = v1 OR ... OR
/// attribute = vk. Multiple Selections on the same dimension are ANDed.
struct Selection {
  size_t attr_col = 0;  // column index in the dimension schema (>= 1)
  std::vector<Literal> values;
};

/// Per-dimension part of a consolidation query.
struct DimensionQuery {
  /// Attribute column to group by. nullopt collapses (fully aggregates) the
  /// dimension, as Query 3 does with its fourth dimension.
  std::optional<size_t> group_by_col;

  /// Conjunction of equality selections on this dimension's attributes.
  std::vector<Selection> selections;
};

enum class AggFunc : uint8_t { kSum = 0, kCount, kMin, kMax, kAvg };

std::string_view AggFuncToString(AggFunc f);

struct ConsolidationQuery {
  /// One entry per dimension of the cube, in dimension order.
  std::vector<DimensionQuery> dims;

  AggFunc agg = AggFunc::kSum;

  /// Which of the cube's p measures (§2's m_1..m_p) to aggregate.
  size_t measure = 0;

  /// True if any dimension carries a selection (chooses between the plain
  /// consolidation algorithms and the selection algorithms).
  bool HasSelection() const;

  /// Checks dimension count and column indices against per-dimension column
  /// counts.
  Status Validate(const std::vector<size_t>& dim_num_columns) const;

  /// Convenience: group by attribute `col` on every one of `n` dimensions,
  /// no selections (the paper's Query 1).
  static ConsolidationQuery GroupByAll(size_t n, size_t col,
                                       AggFunc agg = AggFunc::kSum);
};

}  // namespace paradise::query
