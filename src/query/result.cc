#include "query/result.h"

#include <algorithm>
#include <sstream>

namespace paradise::query {

double AggState::Finalize(AggFunc f) const {
  switch (f) {
    case AggFunc::kSum:
      return static_cast<double>(sum);
    case AggFunc::kCount:
      return static_cast<double>(count);
    case AggFunc::kMin:
      return count == 0 ? 0.0 : static_cast<double>(min);
    case AggFunc::kMax:
      return count == 0 ? 0.0 : static_cast<double>(max);
    case AggFunc::kAvg:
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
  }
  return 0.0;
}

void GroupedResult::SortCanonical() {
  std::sort(rows_.begin(), rows_.end(),
            [](const ResultRow& a, const ResultRow& b) {
              return a.group < b.group;
            });
}

bool GroupedResult::SameAs(const GroupedResult& other) const {
  if (rows_.size() != other.rows_.size()) return false;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].group != other.rows_[i].group ||
        !(rows_[i].agg == other.rows_[i].agg)) {
      return false;
    }
  }
  return true;
}

std::string GroupedResult::ToString(AggFunc f, size_t max_rows) const {
  std::ostringstream os;
  for (const std::string& c : group_columns_) os << c << '\t';
  os << AggFuncToString(f) << '\n';
  size_t shown = 0;
  for (const ResultRow& r : rows_) {
    if (shown++ >= max_rows) {
      os << "... (" << rows_.size() - max_rows << " more rows)\n";
      break;
    }
    for (int32_t g : r.group) os << g << '\t';
    os << r.agg.Finalize(f) << '\n';
  }
  return os.str();
}

int64_t GroupedResult::TotalSum() const {
  int64_t total = 0;
  for (const ResultRow& r : rows_) total += r.agg.sum;
  return total;
}

}  // namespace paradise::query
