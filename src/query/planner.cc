#include "query/planner.h"

#include "core/aggregate_registry.h"
#include "query/sql.h"

namespace paradise {

namespace {

/// Fraction of one dimension's members a selection keeps: matched distinct
/// values / attribute cardinality (uniform-members assumption, the same one
/// the paper's S = s^r analysis makes).
Result<double> SelectionFraction(const DimensionTable& dim,
                                 const query::Selection& s) {
  PARADISE_ASSIGN_OR_RETURN(const AttributeDictionary* dict,
                            dim.Dictionary(s.attr_col));
  if (dict->cardinality() == 0) return 1.0;
  size_t matched = 0;
  for (const query::Literal& lit : s.values) {
    if (dict->value_to_code.contains(query::NormalizeLiteral(lit))) {
      ++matched;
    }
  }
  return static_cast<double>(matched) /
         static_cast<double>(dict->cardinality());
}

}  // namespace

Result<PlanChoice> ChoosePlan(const Database& db,
                              const query::ConsolidationQuery& q,
                              const PlannerOptions& options) {
  std::vector<size_t> dim_cols;
  for (const DimensionSpec& d : db.schema().dims) {
    dim_cols.push_back(d.attrs.size());
  }
  PARADISE_RETURN_IF_ERROR(q.Validate(dim_cols));

  PlanChoice choice;
  if (db.ingested()) {
    // After any incremental ingest commit the relational fact file is
    // stale; only the array sees the merged data, so the crossover logic
    // below no longer applies.
    if (!db.has_olap()) {
      return Status::NotSupported(
          "database has ingested data but no OLAP array");
    }
    choice.engine = EngineKind::kArray;
    choice.reason = "ingested data: only the array reflects it";
    return choice;
  }
  if (!q.HasSelection()) {
    if (db.has_olap()) {
      choice.engine = EngineKind::kArray;
      choice.reason = "no selection: array consolidation always wins (Fig 4/5)";
    } else {
      choice.engine = EngineKind::kStarJoin;
      choice.reason = "no selection and no OLAP array: star join";
    }
    return choice;
  }

  double selectivity = 1.0;
  for (size_t d = 0; d < q.dims.size(); ++d) {
    for (const query::Selection& s : q.dims[d].selections) {
      PARADISE_ASSIGN_OR_RETURN(double f, SelectionFraction(db.dim(d), s));
      selectivity *= f;
    }
  }
  choice.estimated_selectivity = selectivity;

  const bool bitmap_available = [&] {
    for (size_t d = 0; d < q.dims.size(); ++d) {
      for (const query::Selection& s : q.dims[d].selections) {
        const auto& per_dim = db.bitmap_indexes()[d];
        if (s.attr_col >= per_dim.size() || per_dim[s.attr_col] == nullptr) {
          return false;
        }
      }
    }
    return true;
  }();

  if (selectivity < options.bitmap_crossover && bitmap_available) {
    choice.engine = EngineKind::kBitmap;
    choice.reason = "S=" + std::to_string(selectivity) +
                    " below the crossover: bitmap + fact file (Fig 8/9)";
  } else if (db.has_olap()) {
    choice.engine = EngineKind::kArray;
    choice.reason = "S=" + std::to_string(selectivity) +
                    " above the crossover: array selection (Fig 6/7)";
  } else if (bitmap_available) {
    choice.engine = EngineKind::kBitmap;
    choice.reason = "no OLAP array: bitmap + fact file";
  } else {
    choice.engine = EngineKind::kStarJoin;
    choice.reason = "no OLAP array or bitmap indexes: filtered star join";
  }
  return choice;
}

DeriveDecision ChooseDeriveOrScan(const Database& db, uint64_t candidate_rows,
                                  uint64_t derive_row_cost) {
  DeriveDecision d;
  d.derive_cost = candidate_rows * derive_row_cost;
  d.scan_cost = db.has_olap() ? db.olap()->layout().total_cells()
                              : db.fact()->num_tuples();
  d.derive = d.derive_cost < d.scan_cost;
  d.reason = "derive=" + std::to_string(d.derive_cost) +
             " vs scan=" + std::to_string(d.scan_cost) +
             (d.derive ? ": roll up the cached result"
                       : ": cached result too wide, rescan");
  return d;
}

Result<SqlExecution> RunSql(Database* db, std::string_view sql, bool cold,
                            const PlannerOptions& options) {
  PARADISE_ASSIGN_OR_RETURN(query::ConsolidationQuery q,
                            query::CompileSql(sql, db->schema()));
  SqlExecution out;

  // Transparent acceleration (§1's open problem): a derivable SUM query is
  // answered from a registered materialized aggregate.
  if (options.use_materialized_aggregates) {
    if (cold) {
      PARADISE_RETURN_IF_ERROR(db->DropCaches());
    }
    const BufferPoolStats before = db->storage()->pool()->stats();
    Stopwatch watch;
    std::string used;
    PARADISE_ASSIGN_OR_RETURN(
        std::optional<query::GroupedResult> result,
        AnswerFromAggregates(db->storage(), db->schema().cube_name, q,
                             &used));
    if (result.has_value()) {
      out.plan.engine = EngineKind::kArray;
      out.plan.aggregate = used;
      out.plan.reason =
          "rewritten onto materialized aggregate '" + used + "'";
      out.execution.result = std::move(*result);
      out.execution.stats.seconds = watch.ElapsedSeconds();
      out.execution.stats.io = db->storage()->pool()->stats().Delta(before);
      return out;
    }
  }

  PARADISE_ASSIGN_OR_RETURN(out.plan, ChoosePlan(*db, q, options));
  RunQueryOptions run_options;
  run_options.cold = cold;
  run_options.num_threads = options.num_threads;
  run_options.cache = options.cache;
  PARADISE_ASSIGN_OR_RETURN(out.execution,
                            RunQuery(db, out.plan.engine, q, run_options));
  return out;
}

}  // namespace paradise
