// A SQL front end for the paper's consolidation query class (§2.1):
//
//   SELECT sum(volume), dim0.h01, dim1.h11
//   FROM   fact, dim0, dim1
//   WHERE  fact.d0 = dim0.d0 AND fact.d1 = dim1.d1
//     AND  dim0.h02 = 'AH2C000' AND dim1.h12 IN ('BH2C000', 'BH2C001')
//   GROUP BY dim0.h01, dim1.h11
//
// The paper leaves SQL integration as its main open problem ("queries can
// be run by invoking appropriate methods on the ADT ... but this is not
// transparent", §1); this front end closes that gap for the query class the
// paper evaluates: parse → bind against the StarSchema → a
// query::ConsolidationQuery any engine can run. Star-join predicates
// (fact.fk = dim.key) are recognized and checked, then dropped — the cube
// join is implicit in both physical designs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "query/query.h"
#include "schema/star_schema.h"

namespace paradise::query {

/// `dim.col` or bare `col` as written in the statement.
struct SqlColumn {
  std::optional<std::string> table;
  std::string column;

  std::string ToString() const {
    return table.has_value() ? *table + "." + column : column;
  }
};

/// One WHERE conjunct.
struct SqlPredicate {
  SqlColumn lhs;
  /// Equality to constant(s): one literal for '=', several for IN.
  std::vector<Literal> values;
  /// Column-to-column equality (a join predicate) when set.
  std::optional<SqlColumn> rhs_column;
};

/// The parsed (unbound) statement.
struct SqlQuery {
  AggFunc agg = AggFunc::kSum;
  std::string agg_argument;          // measure column name
  std::vector<SqlColumn> select_columns;  // non-aggregate select items
  std::vector<std::string> tables;
  std::vector<SqlPredicate> predicates;
  std::vector<SqlColumn> group_by;
};

/// Parses one SELECT statement. Grammar (case-insensitive keywords):
///   SELECT (agg '(' ident ')' | column) (',' ...)*
///   FROM ident (',' ident)*
///   [WHERE pred (AND pred)*]     pred := col '=' (literal | col)
///                                      | col IN '(' literal (',' lit)* ')'
///   [GROUP BY col (',' col)*] [';']
Result<SqlQuery> ParseSql(std::string_view sql);

/// Binds a parsed statement against a star schema, producing an executable
/// ConsolidationQuery. Validates table names, resolves columns (bare names
/// must be unambiguous), checks the aggregate argument is the measure, and
/// verifies join predicates connect fact foreign keys to dimension keys.
Result<ConsolidationQuery> BindSql(const SqlQuery& parsed,
                                   const StarSchema& schema);

/// ParseSql + BindSql.
Result<ConsolidationQuery> CompileSql(std::string_view sql,
                                      const StarSchema& schema);

}  // namespace paradise::query
