// A rule-based planner choosing the physical algorithm for a consolidation
// query — the role the paper assigns to the query optimizer once arrays are
// integrated with SQL processing (§1). Rules distilled from the paper's own
// findings:
//   * no selection          -> array consolidation (Fig. 4/5: always wins),
//                              or the star join if no array was built;
//   * selection             -> estimate the star selectivity S as the
//                              product of per-selection selected fractions;
//                              below the crossover (the paper's S ~= 2.4e-4)
//                              use the bitmap plan, above it the array.
#pragma once

#include <string>

#include "common/result.h"
#include "query/engine.h"
#include "query/query.h"
#include "schema/database.h"

namespace paradise {

struct PlanChoice {
  EngineKind engine = EngineKind::kArray;
  /// Estimated star selectivity (1.0 when there is no selection).
  double estimated_selectivity = 1.0;
  /// Human-readable rule trace for EXPLAIN-style output.
  std::string reason;
  /// Set when the query was rewritten onto a materialized aggregate.
  std::string aggregate;
};

struct PlannerOptions {
  /// Crossover selectivity below which the bitmap plan is chosen; default
  /// is the paper's measured crossover (§5.6).
  double bitmap_crossover = 2.4e-4;

  /// Try to answer SUM queries from registered materialized aggregates
  /// (core/aggregate_registry.h) before touching the base cube.
  bool use_materialized_aggregates = true;

  /// Worker threads for array-engine plans (forwarded to
  /// RunQueryOptions::num_threads); 1 = serial. Parallel plans return
  /// bit-identical results.
  size_t num_threads = 1;

  /// Result cache forwarded to RunQueryOptions::cache (borrowed; nullptr =
  /// uncached, the default).
  query::ConsolidationResultCache* cache = nullptr;
};

/// The derive-vs-scan decision for the result cache: answer a query by
/// re-aggregating a cached finer-level result of `candidate_rows` rows, or
/// re-scan the base data. Deriving touches only the cached rows (each
/// costing ~`derive_row_cost` cell-scan units: map lookups plus an ordered
/// re-group); scanning touches every array cell (or fact tuple when no
/// array was built). derive_row_cost == 0 forces derivation whenever it is
/// structurally possible — the equivalence tests use that to pin the path.
struct DeriveDecision {
  bool derive = false;
  uint64_t derive_cost = 0;
  uint64_t scan_cost = 0;
  /// Human-readable rule trace, same spirit as PlanChoice::reason.
  std::string reason;
};
DeriveDecision ChooseDeriveOrScan(const Database& db, uint64_t candidate_rows,
                                  uint64_t derive_row_cost);

/// Picks an engine for `q` over `db`. Fails if the query is invalid for the
/// database's schema.
Result<PlanChoice> ChoosePlan(const Database& db,
                              const query::ConsolidationQuery& q,
                              const PlannerOptions& options = {});

/// Compiles a SQL string against the database's schema, plans it, and runs
/// it. The returned Execution carries the chosen plan's stats.
struct SqlExecution {
  PlanChoice plan;
  Execution execution;
};
Result<SqlExecution> RunSql(Database* db, std::string_view sql,
                            bool cold = true,
                            const PlannerOptions& options = {});

}  // namespace paradise
