// Synthetic star-schema generator (paper §5.1, §5.4): n dimensions, each
// with two hierarchically structured, uniformly distributed string
// attributes (hX1, hX2), and a fact population drawn uniformly without
// replacement over the cube's cells at an exact target count. The table
// representation is derived from the array representation — one tuple per
// valid cell — exactly as the paper generates it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "schema/star_schema.h"

namespace paradise::gen {

/// One generated dimension: keys are 0..size-1; attribute level l (1-based)
/// has `level_cardinalities[l-1]` distinct values. Codes are assigned in
/// contiguous blocks of a (seeded) random permutation of the keys, so the
/// attributes are uniformly distributed over the keys (paper §5.1) while
/// coarser levels still roll finer ones up.
struct GenDimension {
  std::string name;
  uint32_t size = 0;
  std::vector<uint32_t> level_cardinalities;  // finest first

  /// Key scrambling filled in by Generate(); identity if empty.
  std::vector<uint32_t> perm;

  /// Dense code of key `key` at 1-based level `level`.
  uint32_t LevelCode(size_t level, uint32_t key) const {
    const uint32_t k = perm.empty() ? key : perm[key];
    const uint64_t card = level_cardinalities[level - 1];
    return static_cast<uint32_t>(static_cast<uint64_t>(k) * card / size);
  }
};

/// Attribute value string for (dimension index, 1-based level, code):
/// e.g. "AH1C003". Fits the 8-byte order-preserving string-key prefix.
std::string AttrValue(size_t dim, size_t level, uint32_t code);

struct GenConfig {
  std::vector<GenDimension> dims;
  uint64_t num_valid_cells = 0;
  uint64_t seed = 42;
  int64_t measure_min = 1;
  int64_t measure_max = 100;
  /// Chunk extents for the array build; empty = library default.
  std::vector<uint32_t> chunk_extents;

  /// If true (default, matching the paper's uniform attributes), Generate()
  /// fills each dimension's key permutation so attribute values are
  /// scattered over the key space instead of forming contiguous key ranges.
  bool shuffle_hierarchy = true;

  Status Validate() const;

  /// Total cells of the cube.
  uint64_t TotalCells() const;

  double Density() const {
    return static_cast<double>(num_valid_cells) /
           static_cast<double>(TotalCells());
  }
};

/// Fully generated data set: the valid cells (as sorted row-major global
/// indices) and their measures.
struct SyntheticDataset {
  GenConfig config;
  std::vector<uint64_t> cell_global_indices;  // sorted, distinct
  std::vector<int64_t> measures;              // parallel to the above

  /// The logical star schema this data populates (dim key + one string16
  /// column per hierarchy level).
  StarSchema ToStarSchema(const std::string& cube_name = "cube") const;

  /// Decodes global index i into per-dimension keys (= coordinates, since
  /// key k is row k of its dimension table).
  std::vector<int32_t> CellKeys(uint64_t global_index) const;
};

/// Generates the data set deterministically from config.seed.
Result<SyntheticDataset> Generate(const GenConfig& config);

}  // namespace paradise::gen
