#include "gen/datasets.h"

namespace paradise::gen {

namespace {
GenConfig FourDimConfig(uint32_t last_dim_size, uint64_t valid_cells,
                        uint32_t select_cardinality, uint64_t seed) {
  GenConfig config;
  config.dims.resize(4);
  const uint32_t sizes[4] = {40, 40, 40, last_dim_size};
  for (size_t d = 0; d < 4; ++d) {
    config.dims[d].name = "dim" + std::to_string(d);
    config.dims[d].size = sizes[d];
    config.dims[d].level_cardinalities = {kGroupByCardinality,
                                          select_cardinality};
  }
  config.num_valid_cells = valid_cells;
  config.seed = seed;
  // 20x20x20x10 tiles: constant chunk dimensions across array sizes, as in
  // the paper (§5.5.1).
  config.chunk_extents = {20, 20, 20, 10};
  return config;
}
}  // namespace

GenConfig DataSet1(uint32_t last_dim_size, uint32_t select_cardinality,
                   uint64_t seed) {
  return FourDimConfig(last_dim_size, kDataSet1ValidCells, select_cardinality,
                       seed);
}

GenConfig DataSet2(double density, uint32_t select_cardinality,
                   uint64_t seed) {
  const uint64_t total = 40ULL * 40 * 40 * 100;
  const auto valid = static_cast<uint64_t>(density * static_cast<double>(total));
  return FourDimConfig(100, valid, select_cardinality, seed);
}

query::ConsolidationQuery Query1(size_t num_dims) {
  // Column 1 of each dimension schema is hX1.
  return query::ConsolidationQuery::GroupByAll(num_dims, 1);
}

query::ConsolidationQuery Query2(size_t num_dims) {
  query::ConsolidationQuery q = Query1(num_dims);
  for (size_t d = 0; d < num_dims; ++d) {
    // Column 2 is hX2; select its first member (code 0).
    q.dims[d].selections.push_back(
        query::Selection{2, {query::Literal{AttrValue(d, 2, 0)}}});
  }
  return q;
}

query::ConsolidationQuery Query3(size_t num_dims, size_t selected_dims) {
  query::ConsolidationQuery q;
  q.dims.resize(num_dims);
  for (size_t d = 0; d < num_dims; ++d) {
    if (d < selected_dims) {
      q.dims[d].group_by_col = 1;
      q.dims[d].selections.push_back(
          query::Selection{2, {query::Literal{AttrValue(d, 2, 0)}}});
    }
    // Dimensions >= selected_dims are collapsed: no group-by, no selection.
  }
  return q;
}

}  // namespace paradise::gen
