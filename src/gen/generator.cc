#include "gen/generator.h"

#include <cstdio>
#include <utility>

namespace paradise::gen {

std::string AttrValue(size_t dim, size_t level, uint32_t code) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%cH%zuC%03u",
                static_cast<char>('A' + dim % 26), level, code);
  return buf;
}

Status GenConfig::Validate() const {
  if (dims.empty()) {
    return Status::InvalidArgument("generator needs at least one dimension");
  }
  for (size_t d = 0; d < dims.size(); ++d) {
    const GenDimension& dim = dims[d];
    if (dim.size == 0) {
      return Status::InvalidArgument("dimension size must be positive");
    }
    for (uint32_t card : dim.level_cardinalities) {
      if (card == 0 || card > dim.size) {
        return Status::InvalidArgument(
            "level cardinality must be in [1, size] on dimension " +
            std::to_string(d));
      }
      if (card > 999) {
        return Status::InvalidArgument(
            "level cardinality above 999 does not fit the attribute value "
            "format");
      }
    }
  }
  if (num_valid_cells > TotalCells()) {
    return Status::InvalidArgument("more valid cells than cube cells");
  }
  if (measure_min > measure_max) {
    return Status::InvalidArgument("measure_min > measure_max");
  }
  return Status::OK();
}

uint64_t GenConfig::TotalCells() const {
  uint64_t total = 1;
  for (const GenDimension& d : dims) total *= d.size;
  return total;
}

StarSchema SyntheticDataset::ToStarSchema(const std::string& cube_name) const {
  StarSchema schema;
  schema.cube_name = cube_name;
  schema.measures = {"volume"};
  for (size_t d = 0; d < config.dims.size(); ++d) {
    const GenDimension& gd = config.dims[d];
    DimensionSpec spec;
    spec.name = gd.name.empty() ? "dim" + std::to_string(d) : gd.name;
    spec.attrs.push_back(
        Column{"d" + std::to_string(d), ColumnType::kInt32});
    for (size_t l = 1; l <= gd.level_cardinalities.size(); ++l) {
      spec.attrs.push_back(Column{
          "h" + std::to_string(d) + std::to_string(l), ColumnType::kString16});
    }
    schema.dims.push_back(std::move(spec));
  }
  return schema;
}

std::vector<int32_t> SyntheticDataset::CellKeys(uint64_t global_index) const {
  std::vector<int32_t> keys(config.dims.size());
  for (size_t i = config.dims.size(); i > 0; --i) {
    keys[i - 1] = static_cast<int32_t>(global_index % config.dims[i - 1].size);
    global_index /= config.dims[i - 1].size;
  }
  return keys;
}

Result<SyntheticDataset> Generate(const GenConfig& config) {
  PARADISE_RETURN_IF_ERROR(config.Validate());
  SyntheticDataset out;
  out.config = config;
  Random rng(config.seed);
  if (config.shuffle_hierarchy) {
    for (gen::GenDimension& dim : out.config.dims) {
      if (!dim.perm.empty()) continue;  // caller-provided scrambling wins
      dim.perm.resize(dim.size);
      for (uint32_t i = 0; i < dim.size; ++i) dim.perm[i] = i;
      // Fisher-Yates with the data-set seed: deterministic per config.
      for (uint32_t i = dim.size - 1; i > 0; --i) {
        const uint32_t j = static_cast<uint32_t>(rng.Uniform(i + 1));
        std::swap(dim.perm[i], dim.perm[j]);
      }
    }
  }
  out.cell_global_indices =
      SampleSortedDistinct(config.TotalCells(), config.num_valid_cells, &rng);
  out.measures.reserve(config.num_valid_cells);
  for (uint64_t i = 0; i < config.num_valid_cells; ++i) {
    out.measures.push_back(
        rng.UniformRange(config.measure_min, config.measure_max));
  }
  return out;
}

}  // namespace paradise::gen
