// The paper's two experiment data-set families (§5.4) and the standard
// query templates of §5.2, ready for the benches and integration tests.
//
// Data Set 1: three 4-d arrays, 40x40x40x{50,100,1000}, each with exactly
//             640 000 valid cells (densities 20 %, 10 %, 1 %).
// Data Set 2: 40x40x40x100, valid-cell count swept so density covers
//             0.5 %..20 %.
// Chunk extents are 20x20x20x10 throughout, matching the paper's chunk
// counts (40x40x40x50 -> 40 chunks, x100 -> 80, x1000 -> 800; §5.5.1).
//
// Every dimension has two string attributes: hX1 (the Query 1/2/3 group-by
// attribute, 10 distinct values) and hX2 (the Query 2/3 selection
// attribute, whose cardinality the Query 2 sweep varies over
// {2,3,4,5,8,10} to set per-dimension selectivity 1/2..1/10).
#pragma once

#include <cstdint>

#include "gen/generator.h"
#include "query/query.h"

namespace paradise::gen {

inline constexpr uint32_t kGroupByCardinality = 10;  // hX1
inline constexpr uint64_t kDataSet1ValidCells = 640000;

/// Data Set 1. `last_dim_size` must be 50, 100 or 1000 to match the paper;
/// other values are allowed for extensions. `select_cardinality` sets the
/// hX2 cardinality (use one of the Query 2 sweep values).
GenConfig DataSet1(uint32_t last_dim_size, uint32_t select_cardinality = 10,
                   uint64_t seed = 42);

/// Data Set 2: density in (0, 1].
GenConfig DataSet2(double density, uint32_t select_cardinality = 10,
                   uint64_t seed = 42);

/// Query 1 (§5.2): full consolidation, group by hX1 on every dimension.
query::ConsolidationQuery Query1(size_t num_dims);

/// Query 2: Query 1 plus an equality selection on hX2 of every dimension
/// (value = the first hX2 member of each dimension, i.e. code 0).
query::ConsolidationQuery Query2(size_t num_dims);

/// Query 3: selection + group-by on the first `selected_dims` dimensions,
/// the remaining dimensions collapsed.
query::ConsolidationQuery Query3(size_t num_dims, size_t selected_dims);

}  // namespace paradise::gen
