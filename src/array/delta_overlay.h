// DeltaOverlay: the in-memory read-side of incremental ingest. Committed
// ingest generations (src/ingest/) fold down to one immutable per-measure
// overlay — for each chunk, the sorted (offsetInChunk, value) upserts that
// supersede the packed base chunk. ChunkedArray consults the overlay in its
// chunk decode path: a read of a chunk with deltas materializes the base
// chunk, applies the upserts last-write-wins, and re-serializes, so every
// consumer (serial scan, read-ahead cursor, morsel pools, GetCell probes)
// sees exactly the bytes a from-scratch load of the merged data would have
// produced. Overlays are immutable and shared by shared_ptr: publishing a
// new one never blocks or tears in-flight readers, which keep the overlay
// (and base version) they pinned at query start.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "array/chunk.h"
#include "common/options.h"
#include "common/result.h"

namespace paradise {

/// Upserts for one chunk, sorted by offset (unique offsets; later ingest
/// generations already folded in, last write wins).
struct ChunkDelta {
  std::vector<ChunkEntry> cells;
};

/// One measure's merged view of every committed-but-uncompacted delta.
class DeltaOverlay {
 public:
  /// The delta for `chunk_no`, or nullptr if the chunk has none.
  const ChunkDelta* Find(uint64_t chunk_no) const {
    auto it = chunks_.find(chunk_no);
    return it == chunks_.end() ? nullptr : &it->second;
  }

  bool empty() const { return chunks_.empty(); }
  size_t num_chunks() const { return chunks_.size(); }

  uint64_t total_cells() const {
    uint64_t n = 0;
    for (const auto& [chunk, delta] : chunks_) n += delta.cells.size();
    return n;
  }

  /// Folds `cells` (any order, duplicates allowed) into `chunk_no`,
  /// overwriting earlier values at the same offset — callers apply
  /// generations in commit order.
  void Apply(uint64_t chunk_no, const std::vector<ChunkEntry>& cells);

  const std::map<uint64_t, ChunkDelta>& chunks() const { return chunks_; }

 private:
  std::map<uint64_t, ChunkDelta> chunks_;
};

/// Serialized merge: base chunk bytes (empty string = empty base chunk) +
/// delta -> the merged chunk re-serialized in `format`, byte-identical to
/// what a bulk load of the merged cells would pack. `capacity` is the
/// chunk's cell count from the layout. Returns the merged blob and writes
/// the merged valid-cell count to `merged_valid`. `allow_packed` false
/// restricts a kAuto re-encode to the legacy dense/offset pair — the
/// ChunkedArray passes its storage format v5 gate through so compaction
/// never writes a packed chunk into a pre-v5 file.
Result<std::string> MergeChunkBlob(const std::string& base_blob,
                                   const ChunkDelta& delta, uint32_t capacity,
                                   ChunkFormat format, uint32_t* merged_valid,
                                   bool allow_packed = true);

}  // namespace paradise
