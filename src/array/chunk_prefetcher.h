// ChunkReadAhead: a multi-consumer cursor over a list of chunk numbers that
// keeps up to `depth` chunk blobs in flight on the storage manager's
// background I/O pool, ahead of the consuming thread(s). This is the
// chunk-granular analogue of the sequential-prefetch the paper's Paradise
// runs got from SHORE: the consolidation scan announces its access pattern
// (all candidate chunks, in chunk-number = physical order), so the storage
// layer can overlap the next reads with the current chunk's decode and
// aggregation work.
//
// Usage (each worker thread):
//   ChunkReadAhead cursor(array, chunks, depth, io_pool, pool);
//   uint64_t chunk_no; std::string blob;
//   while (true) {
//     PARADISE_ASSIGN_OR_RETURN(bool more, cursor.Next(&chunk_no, &blob));
//     if (!more) break;
//     ... decode and aggregate blob ...
//   }
//
// Next() hands out chunks strictly in list order. A chunk whose background
// read already finished is taken without blocking (a prefetch hit); one
// still in flight is waited for; one never scheduled (depth or pool
// exhausted, or read-ahead disabled) is read synchronously on the consumer.
// Read failures surface on the consumer that claims the chunk, with the
// same Status the synchronous path would have produced.
//
// Lifetime: background tasks share ownership of the internal state block,
// so a cursor abandoned on an error path cannot dangle; the destructor
// cancels unstarted tasks and waits only for tasks already mid-read (they
// hold the array pointer).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace paradise {

class BufferPool;
class ChunkedArray;
class IoPool;

class ChunkReadAhead {
 public:
  /// `array` must outlive the cursor. `chunks` is the exact claim order.
  /// `io_pool` may be null and `depth` zero — both disable read-ahead and
  /// make every Next() a synchronous read. `pool` (may be null) receives
  /// prefetched / prefetch-hit accounting.
  ChunkReadAhead(const ChunkedArray* array, std::vector<uint64_t> chunks,
                 size_t depth, IoPool* io_pool, BufferPool* pool);
  ~ChunkReadAhead();

  ChunkReadAhead(const ChunkReadAhead&) = delete;
  ChunkReadAhead& operator=(const ChunkReadAhead&) = delete;

  /// Claims the next chunk in order. Returns true with `*chunk_no` and
  /// `*blob` filled, false when the list is exhausted, or the error the
  /// chunk's read produced. Safe to call from multiple threads; each chunk
  /// is handed to exactly one caller.
  Result<bool> Next(uint64_t* chunk_no, std::string* blob);

 private:
  struct Slot {
    enum : uint8_t { kIdle = 0, kScheduled, kReady, kFailed };
    uint8_t state = kIdle;
    std::string blob;
    Status status;
  };

  /// Shared between the cursor and its background tasks (shared_ptr-owned so
  /// in-flight tasks survive cursor destruction).
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    const ChunkedArray* array = nullptr;
    BufferPool* pool = nullptr;
    std::vector<uint64_t> chunks;
    std::vector<Slot> slots;      // parallel to `chunks`
    size_t next_claim = 0;        // next index Next() hands out
    size_t next_schedule = 0;     // first index not yet scheduled
    bool cancelled = false;
    size_t in_flight = 0;         // tasks currently executing
  };

  /// Schedules reads for [next_claim, next_claim + depth) that are still
  /// idle. Called with st->mu held.
  static void ScheduleWindow(const std::shared_ptr<State>& st, size_t depth,
                             IoPool* io_pool);

  std::shared_ptr<State> state_;
  size_t depth_;
  IoPool* io_pool_;
};

}  // namespace paradise
