#include "array/delta_overlay.h"

#include <algorithm>

namespace paradise {

void DeltaOverlay::Apply(uint64_t chunk_no,
                         const std::vector<ChunkEntry>& cells) {
  if (cells.empty()) return;
  ChunkDelta& delta = chunks_[chunk_no];
  // Merge into the sorted vector via a temporary offset map: generations are
  // applied once per commit, never per read, so simplicity beats constant
  // factors here.
  std::map<uint32_t, int64_t> merged;
  for (const ChunkEntry& e : delta.cells) merged[e.offset] = e.value;
  for (const ChunkEntry& e : cells) merged[e.offset] = e.value;
  delta.cells.clear();
  delta.cells.reserve(merged.size());
  for (const auto& [offset, value] : merged) {
    delta.cells.push_back(ChunkEntry{offset, value});
  }
}

Result<std::string> MergeChunkBlob(const std::string& base_blob,
                                   const ChunkDelta& delta, uint32_t capacity,
                                   ChunkFormat format, uint32_t* merged_valid,
                                   bool allow_packed) {
  Chunk chunk(capacity);
  if (!base_blob.empty()) {
    PARADISE_ASSIGN_OR_RETURN(chunk, Chunk::Deserialize(base_blob));
  }
  for (const ChunkEntry& e : delta.cells) {
    PARADISE_RETURN_IF_ERROR(chunk.Put(e.offset, e.value));
  }
  if (merged_valid != nullptr) *merged_valid = chunk.num_valid();
  return chunk.Serialize(format, allow_packed);
}

}  // namespace paradise
