// Chunk: the in-memory form of one array tile — the valid cells as
// (offsetInChunk, value) pairs kept sorted by offset, exactly the order the
// paper's chunk-offset compression stores and binary-searches (§3.3). A
// chunk serializes to one of several formats: the offset-compressed layout,
// a dense layout (all cells materialized plus a validity bitmap), an
// LZW-wrapped dense layout, or the two bit-packed codecs added for storage
// format v5 — kDiffSequence (delta-encoded sorted offsets with bit-packed
// gaps, per Szépkúti) and kBitPacked (absolute offsets and values packed to
// their measured bit widths). kAuto picks per chunk by measured serialized
// size with a decode-cost tiebreak.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/options.h"
#include "common/result.h"
#include "common/status.h"

namespace paradise {

/// One valid cell within a chunk.
struct ChunkEntry {
  uint32_t offset;
  int64_t value;

  friend bool operator==(const ChunkEntry& a, const ChunkEntry& b) {
    return a.offset == b.offset && a.value == b.value;
  }
};

/// Entries per block of the packed codecs: every block starts at a fixed32
/// anchor (kDiffSequence) or skip-directory entry (kBitPacked), so a probe
/// binary-searches the per-block directory and decodes at most one block —
/// the sub-linear access the §4.2 probe loop needs.
inline constexpr uint32_t kPackedChunkBlock = 128;

/// Concrete serialized encoding behind a ChunkView (the blob's tag byte, as
/// distinct from ChunkFormat, which also has the kAuto/kLzwDense policy
/// values that never appear as a stored tag).
enum class ChunkEncoding : uint8_t {
  kDense = 0,
  kSparse = 1,      // offset-compressed (§3.3)
  kDiffSeq = 2,     // delta-encoded offsets, bit-packed gaps
  kBitPacked = 3,   // bit-packed absolute offsets
};

class Chunk {
 public:
  Chunk() = default;

  /// An empty chunk able to hold offsets in [0, capacity).
  explicit Chunk(uint32_t capacity) : capacity_(capacity) {}

  uint32_t capacity() const { return capacity_; }
  uint32_t num_valid() const { return static_cast<uint32_t>(entries_.size()); }
  bool empty() const { return entries_.empty(); }

  /// Valid cells in increasing offset order.
  const std::vector<ChunkEntry>& entries() const { return entries_; }

  /// Inserts or overwrites the cell at `offset`.
  Status Put(uint32_t offset, int64_t value);

  /// Fast build path: offsets must arrive in strictly increasing order.
  Status AppendSorted(uint32_t offset, int64_t value);

  /// Value at `offset` if the cell is valid — the binary-search probe the
  /// selection algorithm uses.
  std::optional<int64_t> Get(uint32_t offset) const;

  /// Marks the cell at `offset` invalid; no-op if it already is.
  void Erase(uint32_t offset);

  /// Serializes in `format` (kAuto picks the smallest encoding; with
  /// `allow_packed` false the kAuto choice is restricted to the legacy
  /// dense/offset pair, for files at storage format < v5).
  std::string Serialize(ChunkFormat format, bool allow_packed = true) const;

  /// The concrete format Serialize would emit for `format`.
  ChunkFormat ResolveFormat(ChunkFormat format, bool allow_packed = true) const;

  static Result<Chunk> Deserialize(std::string_view data);

  /// Exact serialized size of this chunk in `format` — the single estimator
  /// the storage benches and kAuto selection use. For every format except
  /// kLzwDense this is computed from closed-form layout arithmetic without
  /// serializing; kLzwDense compresses (its size is data-dependent).
  uint64_t SerializedBytes(ChunkFormat format) const;

  /// Closed-form sizes of the two legacy encodings, for callers without a
  /// materialized chunk (SerializedBytes is the per-chunk API).
  static uint64_t SparseBytes(uint32_t num_valid) {
    return 9 + static_cast<uint64_t>(num_valid) * 12;
  }
  static uint64_t DenseBytes(uint32_t capacity) {
    return 5 + (static_cast<uint64_t>(capacity) + 7) / 8 +
           static_cast<uint64_t>(capacity) * 8;
  }

  bool operator==(const Chunk& o) const {
    return capacity_ == o.capacity_ && entries_ == o.entries_;
  }

 private:
  uint32_t capacity_ = 0;
  std::vector<ChunkEntry> entries_;  // sorted by offset
};

/// Decompresses an LZW-wrapped chunk blob to its dense form; passes every
/// other format through unchanged. Apply before ChunkView::Make.
Result<std::string> UnwrapChunkBlob(std::string blob);

/// Zero-copy view over a serialized chunk: probing and iteration straight
/// off the stored bytes, no materialization — the paper's selection
/// algorithm binary-searches the sorted compressed chunk as stored (§3.3).
/// The underlying buffer must outlive the view.
class ChunkView {
 public:
  /// Wraps a serialized chunk. Fails on a malformed blob.
  static Result<ChunkView> Make(std::string_view blob);

  uint32_t capacity() const { return capacity_; }
  uint32_t num_valid() const { return num_valid_; }

  /// True for every entry-indexed encoding (everything but dense): entries
  /// are addressed by index in [0, num_valid) and SparseEntry /
  /// SparseLowerBound apply. The morsel planner and kernels key on this.
  bool sparse() const { return encoding_ != ChunkEncoding::kDense; }

  /// The concrete serialized encoding behind this view.
  ChunkEncoding encoding() const { return encoding_; }

  /// Value at `offset` if valid (directory + binary search on sparse
  /// encodings, direct index on dense ones).
  std::optional<int64_t> Get(uint32_t offset) const;

  /// Sparse encodings: the i-th valid entry (i < num_valid()). O(1) for
  /// kSparse and kBitPacked; decodes up to one block for kDiffSeq.
  ChunkEntry SparseEntry(uint32_t i) const;

  /// Sparse encodings: index of the first entry with offset >= `offset`,
  /// searching from entry `from` (monotone probes pass their last position).
  uint32_t SparseLowerBound(uint32_t offset, uint32_t from) const;

  /// Packed encodings (kDiffSeq/kBitPacked): decodes block `b` — entries
  /// [b*kPackedChunkBlock, min(num_valid, (b+1)*kPackedChunkBlock)) — into
  /// `offsets`/`values` (each sized >= kPackedChunkBlock) and returns the
  /// number of entries decoded. The batch kernels' unpack step.
  uint32_t DecodeBlock(uint32_t b, uint32_t* offsets, int64_t* values) const;

  /// Raw serialized regions for the batch kernels (core/kernels/), which
  /// extract whole runs of cells without per-cell accessor calls. Layouts
  /// are documented at the top of chunk.cc; only valid for the matching
  /// encoding() (packed encodings go through DecodeBlock instead).
  const char* SparseEntriesData() const { return data_ + 9; }
  const char* DenseBitmapData() const { return data_ + 5; }
  const char* DenseValuesData() const {
    return data_ + 5 + (static_cast<size_t>(capacity_) + 7) / 8;
  }

  /// Invokes `fn(offset, value)` for every valid cell in offset order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    switch (encoding_) {
      case ChunkEncoding::kSparse:
        for (uint32_t i = 0; i < num_valid_; ++i) {
          const ChunkEntry e = SparseEntry(i);
          fn(e.offset, e.value);
        }
        return;
      case ChunkEncoding::kDense:
        for (uint32_t off = 0; off < capacity_; ++off) {
          if (DenseValid(off)) fn(off, DenseValue(off));
        }
        return;
      case ChunkEncoding::kDiffSeq:
      case ChunkEncoding::kBitPacked: {
        uint32_t offsets[kPackedChunkBlock];
        int64_t values[kPackedChunkBlock];
        const uint32_t blocks =
            (num_valid_ + kPackedChunkBlock - 1) / kPackedChunkBlock;
        for (uint32_t b = 0; b < blocks; ++b) {
          const uint32_t n = DecodeBlock(b, offsets, values);
          for (uint32_t k = 0; k < n; ++k) fn(offsets[k], values[k]);
        }
        return;
      }
    }
  }

 private:
  ChunkView() = default;

  bool DenseValid(uint32_t offset) const;
  int64_t DenseValue(uint32_t offset) const;

  /// Packed encodings: block b's entries' offsets only (no value decode) —
  /// the SparseLowerBound in-block search.
  uint32_t DecodeBlockOffsets(uint32_t b, uint32_t* offsets) const;

  /// Packed encodings: entry i's value.
  int64_t PackedValue(uint32_t i) const;

  /// First offset of block b (the anchor / skip-directory entry).
  uint32_t BlockFirstOffset(uint32_t b) const;

  const char* data_ = nullptr;
  ChunkEncoding encoding_ = ChunkEncoding::kSparse;
  uint32_t capacity_ = 0;
  uint32_t num_valid_ = 0;
  // Packed-encoding header fields, cached by Make.
  uint32_t num_blocks_ = 0;
  unsigned width1_ = 0;    // gap bits (kDiffSeq) or offset bits (kBitPacked)
  unsigned val_bits_ = 0;
  int64_t val_min_ = 0;
  const char* anchors_ = nullptr;  // num_blocks_ fixed32 block-first offsets
  const char* stream1_ = nullptr;  // gap stream / absolute-offset stream
  const char* values_ = nullptr;   // bit-packed (value - val_min) stream
};

}  // namespace paradise
