// Chunk: the in-memory form of one array tile — the valid cells as
// (offsetInChunk, value) pairs kept sorted by offset, exactly the order the
// paper's chunk-offset compression stores and binary-searches (§3.3). A
// chunk serializes to either the offset-compressed format or a dense format
// (all cells materialized plus a validity bitmap); kAuto picks whichever is
// smaller for the chunk's density.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/options.h"
#include "common/result.h"
#include "common/status.h"

namespace paradise {

/// One valid cell within a chunk.
struct ChunkEntry {
  uint32_t offset;
  int64_t value;

  friend bool operator==(const ChunkEntry& a, const ChunkEntry& b) {
    return a.offset == b.offset && a.value == b.value;
  }
};

class Chunk {
 public:
  Chunk() = default;

  /// An empty chunk able to hold offsets in [0, capacity).
  explicit Chunk(uint32_t capacity) : capacity_(capacity) {}

  uint32_t capacity() const { return capacity_; }
  uint32_t num_valid() const { return static_cast<uint32_t>(entries_.size()); }
  bool empty() const { return entries_.empty(); }

  /// Valid cells in increasing offset order.
  const std::vector<ChunkEntry>& entries() const { return entries_; }

  /// Inserts or overwrites the cell at `offset`.
  Status Put(uint32_t offset, int64_t value);

  /// Fast build path: offsets must arrive in strictly increasing order.
  Status AppendSorted(uint32_t offset, int64_t value);

  /// Value at `offset` if the cell is valid — the binary-search probe the
  /// selection algorithm uses.
  std::optional<int64_t> Get(uint32_t offset) const;

  /// Marks the cell at `offset` invalid; no-op if it already is.
  void Erase(uint32_t offset);

  /// Serializes in `format` (kAuto picks the smaller encoding).
  std::string Serialize(ChunkFormat format) const;

  /// The concrete format Serialize would emit for `format`.
  ChunkFormat ResolveFormat(ChunkFormat format) const;

  static Result<Chunk> Deserialize(std::string_view data);

  /// Serialized byte sizes of each encoding, for the storage benches.
  static uint64_t SparseBytes(uint32_t num_valid) {
    return 9 + static_cast<uint64_t>(num_valid) * 12;
  }
  static uint64_t DenseBytes(uint32_t capacity) {
    return 5 + (static_cast<uint64_t>(capacity) + 7) / 8 +
           static_cast<uint64_t>(capacity) * 8;
  }

  bool operator==(const Chunk& o) const {
    return capacity_ == o.capacity_ && entries_ == o.entries_;
  }

 private:
  uint32_t capacity_ = 0;
  std::vector<ChunkEntry> entries_;  // sorted by offset
};

/// Decompresses an LZW-wrapped chunk blob to its dense form; passes every
/// other format through unchanged. Apply before ChunkView::Make.
Result<std::string> UnwrapChunkBlob(std::string blob);

/// Zero-copy view over a serialized chunk: probing and iteration straight
/// off the stored bytes, no materialization — the paper's selection
/// algorithm binary-searches the sorted compressed chunk as stored (§3.3).
/// The underlying buffer must outlive the view.
class ChunkView {
 public:
  /// Wraps a serialized chunk. Fails on a malformed blob.
  static Result<ChunkView> Make(std::string_view blob);

  uint32_t capacity() const { return capacity_; }
  uint32_t num_valid() const { return num_valid_; }
  bool sparse() const { return sparse_; }

  /// Value at `offset` if valid (binary search on sparse chunks, direct
  /// index on dense ones).
  std::optional<int64_t> Get(uint32_t offset) const;

  /// Sparse chunks: the i-th valid entry (i < num_valid()).
  ChunkEntry SparseEntry(uint32_t i) const;

  /// Sparse chunks: index of the first entry with offset >= `offset`,
  /// searching from entry `from` (monotone probes pass their last position).
  uint32_t SparseLowerBound(uint32_t offset, uint32_t from) const;

  /// Raw serialized regions for the batch kernels (core/kernels/), which
  /// extract whole runs of cells without per-cell accessor calls. Layouts
  /// are documented at the top of chunk.cc; only valid for the matching
  /// sparse()/dense state.
  const char* SparseEntriesData() const { return data_ + 9; }
  const char* DenseBitmapData() const { return data_ + 5; }
  const char* DenseValuesData() const {
    return data_ + 5 + (static_cast<size_t>(capacity_) + 7) / 8;
  }

  /// Invokes `fn(offset, value)` for every valid cell in offset order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (sparse_) {
      for (uint32_t i = 0; i < num_valid_; ++i) {
        const ChunkEntry e = SparseEntry(i);
        fn(e.offset, e.value);
      }
      return;
    }
    for (uint32_t off = 0; off < capacity_; ++off) {
      if (DenseValid(off)) fn(off, DenseValue(off));
    }
  }

 private:
  ChunkView(std::string_view blob, bool sparse, uint32_t capacity,
            uint32_t num_valid)
      : data_(blob.data()),
        sparse_(sparse),
        capacity_(capacity),
        num_valid_(num_valid) {}

  bool DenseValid(uint32_t offset) const;
  int64_t DenseValue(uint32_t offset) const;

  const char* data_ = nullptr;
  bool sparse_ = true;
  uint32_t capacity_ = 0;
  uint32_t num_valid_ = 0;
};

}  // namespace paradise
