// ChunkLayout: the pure geometry of an n-dimensional tiled array — cell
// coordinates, row-major global indices, chunk numbers, and offsets within a
// chunk (the "offsetInChunk" of the paper's §3.3 compression). Border chunks
// may be smaller than the nominal chunk extents; offsets are always computed
// against the chunk's *actual* dimensions so compressed chunks stay dense.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace paradise {

/// Cell coordinates, one per dimension.
using CellCoords = std::vector<uint32_t>;

class ChunkLayout {
 public:
  ChunkLayout() = default;

  /// `dims[i]` is the size of dimension i; `chunk_extents[i]` the nominal
  /// chunk side along it (clipped at array borders).
  static Result<ChunkLayout> Make(std::vector<uint32_t> dims,
                                  std::vector<uint32_t> chunk_extents);

  size_t num_dims() const { return dims_.size(); }
  const std::vector<uint32_t>& dims() const { return dims_; }
  const std::vector<uint32_t>& chunk_extents() const { return chunk_extents_; }
  const std::vector<uint32_t>& chunks_per_dim() const {
    return chunks_per_dim_;
  }

  /// Total logical cells in the array.
  uint64_t total_cells() const { return total_cells_; }

  /// Total chunks.
  uint64_t num_chunks() const { return num_chunks_; }

  /// Row-major global index of a cell.
  uint64_t CoordsToGlobal(const CellCoords& c) const;

  /// Inverse of CoordsToGlobal.
  CellCoords GlobalToCoords(uint64_t global) const;

  /// Chunk number (row-major over chunk grid) containing a cell.
  uint64_t CoordsToChunk(const CellCoords& c) const;

  /// Offset of a cell within its chunk (row-major over the chunk's actual
  /// dims).
  uint32_t CoordsToOffset(const CellCoords& c) const;

  /// Chunk-grid coordinates of a chunk number.
  CellCoords ChunkToChunkCoords(uint64_t chunk) const;

  /// First (lowest) cell coordinates of a chunk.
  CellCoords ChunkBase(uint64_t chunk) const;

  /// Actual dimensions of a chunk (smaller at array borders).
  CellCoords ChunkDims(uint64_t chunk) const;

  /// Number of cells in a chunk.
  uint32_t ChunkCellCount(uint64_t chunk) const;

  /// Cell coordinates of (chunk, offset).
  CellCoords ChunkOffsetToCoords(uint64_t chunk, uint32_t offset) const;

  std::string ToString() const;

  bool operator==(const ChunkLayout& o) const {
    return dims_ == o.dims_ && chunk_extents_ == o.chunk_extents_;
  }

  /// Serialization for the array's meta object.
  std::string Serialize() const;
  static Result<ChunkLayout> Deserialize(std::string_view data,
                                         size_t* consumed);

 private:
  ChunkLayout(std::vector<uint32_t> dims, std::vector<uint32_t> chunk_extents);

  std::vector<uint32_t> dims_;
  std::vector<uint32_t> chunk_extents_;
  std::vector<uint32_t> chunks_per_dim_;
  uint64_t total_cells_ = 0;
  uint64_t num_chunks_ = 0;
};

}  // namespace paradise
